"""Autotuner benchmark: predicted vs measured encoding-choice wins.

Runs the compile-time encoding autotuner (:mod:`repro.core.tune`) on the
micro bench subjects under a global refresh chunk, compiles default and
tuned plans, executes both through the real-ciphertext pipeline under a
CountingBackend, and leaves a ``BENCH_tune.json`` artifact (per-layer
chosen encodings, predicted + measured mod_muls, wall times). The CI
``tune-bench`` job runs the same harness via ``repro.perf.bench`` and
gates on the records.
"""

import json

from repro.perf.bench import TUNE_SUBJECTS, run_tune_bench


def test_bench_tune(once, tmp_path):
    out = tmp_path / "BENCH_tune.json"
    records = once(run_tune_bench, out=str(out))
    print("\n" + json.dumps(records, indent=2))
    assert [r["bench"] for r in records] == list(TUNE_SUBJECTS)
    for r in records:
        # The tuner's core guarantee: never worse than the default plan,
        # in the cost model and in executed ops.
        assert (r["predicted_tuned_mod_muls"]
                <= r["predicted_default_mod_muls"]), r
        assert (r["measured_tuned_mod_muls"]
                <= r["measured_default_mod_muls"]), r
        assert r["max_abs_error_tuned"] <= 2, r
        # A non-empty tuning config must change the plan fingerprint
        # (the cache key), an empty one must not.
        assert r["fingerprints_differ"] == bool(r["tuning"]), r
        assert r["layers"], r
    # The headline subject has a strict predicted AND measured win: the
    # tuner opts the conv refresh out of the global chunk cap.
    mnist = records[0]
    assert mnist["tuning"], mnist
    assert (mnist["measured_tuned_mod_muls"]
            < mnist["measured_default_mod_muls"]), mnist
