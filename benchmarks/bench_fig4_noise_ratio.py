"""Fig. 4: per-layer MAC ranges (t rationale) and e_ms error ratios."""

from repro.eval.figures import fig4, render_fig4
from repro.fhe.params import ATHENA


def test_fig4_mac_and_error_ratio(once):
    layers = once(fig4, "resnet20")
    print("\n" + render_fig4("resnet20"))
    # Orange line: t = 65537 holds the max MAC of every layer (w7a7).
    assert all(2 * s.mac_peak < ATHENA.t for s in layers)
    # Blue line: error ratios bounded; most layers in the single digits.
    ratios = [s.error_ratio for s in layers]
    assert max(ratios) < 0.25
    small = sum(1 for r in ratios if r < 0.06)
    assert small >= len(ratios) // 2
