"""Mixed-precision allocator benchmark: accuracy-vs-FHE-cost Pareto points.

Runs the ``repro.quant.mp`` allocator over the TEST_FBS micro subject at a
sweep of accuracy-drop budgets, compiles and executes every allocated plan
through the real-ciphertext pipeline under a CountingBackend, and leaves a
``BENCH_mp.json`` artifact (per-budget chosen bit assignments, calibration
accuracy, predicted + measured mod_muls, wall times) plus a predicted-only
record for the full-size zoo model at ATHENA parameters. The CI
``mp-bench`` job runs the same harness via ``repro.perf.bench`` and gates
on the records.
"""

import json

from repro.perf.bench import run_mp_bench


def test_bench_mp(once, tmp_path):
    out = tmp_path / "BENCH_mp.json"
    records = once(run_mp_bench, out=str(out))
    print("\n" + json.dumps(records, indent=2))

    head_rec = records[0]
    assert head_rec["bench"] == "mnist_cnn"
    head = head_rec["headline"]
    # The allocator's core guarantee: the chosen config beats the uniform
    # baseline in *measured* ops and wall time, within the drop budget.
    assert head["measured_mod_muls"] < head_rec["baseline_measured_mod_muls"]
    assert head["wall_s"] < head_rec["baseline_wall_s"]
    assert head["accuracy_drop"] <= head["budget"] + 1e-12
    for point in head_rec["points"]:
        # Predicted cost never exceeds the uniform baseline: the all-uniform
        # floor (restricted LUTs only) is always admissible.
        assert point["predicted_mod_muls"] < head_rec[
            "baseline_predicted_mod_muls"]
        assert point["round_trip_identical"], point
        assert point["max_abs_error"] <= 64, point

    # Distinct fingerprints per mp config: plan caches / serve key on them.
    fps = {p["fingerprint"] for p in head_rec["points"]}
    assert len(fps) == len({p["mp"] for p in head_rec["points"]})

    zoo = records[1]
    assert zoo["bench"].endswith("_zoo")
    for point in zoo["points"]:
        assert point["predicted_mod_muls"] < zoo["baseline"][
            "predicted_mod_muls"]
        assert point["accuracy_drop"] <= point["budget"] + 1e-12
