"""Fig. 1: Taylor/Chebyshev approximation accuracy vs Delta and order."""

from repro.baselines.approx import sweep
from repro.eval.figures import render_fig1


def test_fig1_approximation_study(once):
    pts = once(sweep)
    print("\n" + render_fig1())
    by = {(p.function, p.method, p.order, p.delta_bits): p.accuracy_bits for p in pts}
    # Delta = 25 collapses to ~2 bits (the paper's headline observation).
    assert by[("relu", "chebyshev", 64, 25)] < 4
    # Larger Delta recovers accuracy; more orders help in plaintext.
    assert by[("sigmoid", "chebyshev", 64, 35)] > by[("sigmoid", "chebyshev", 64, 25)]
    assert by[("sigmoid", "chebyshev", 64, None)] > by[("sigmoid", "chebyshev", 4, None)]
    # A significant gap to the 40-bit ground truth remains, worse for ReLU.
    assert by[("relu", "chebyshev", 64, 35)] < 20
    assert by[("relu", "chebyshev", 64, 35)] < by[("sigmoid", "chebyshev", 64, 35)]
