"""Table 5: plaintext vs ciphertext accuracy for all four benchmarks."""

from repro.eval.tables import render_table5, table5


def test_table5_accuracy(once):
    data = once(table5)
    print("\n" + render_table5())
    for model, row in data.items():
        for label in ("w7a7", "w6a7"):
            gap = row[f"cipher {label}"] - row[f"plain-Q {label}"]
            # Paper: ciphertext inference within ~0.3% of plain-quantized
            # (synthetic datasets + reduced test sets widen the band).
            assert abs(gap) < 0.03, (model, label, gap)
        # Quantization itself costs little relative to plain-G.
        assert row["plain-Q w7a7"] > row["plain-G"] - 0.05
