"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables or figures and prints
the rendered result (run with ``pytest benchmarks/ --benchmark-only -s`` to
see them); the benchmark timing itself measures the cost of regenerating
the experiment. Heavy experiments run with a single round.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def once(benchmark):
    """Run the experiment exactly once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
