"""Fig. 9: execution-time breakdown of the Athena accelerator."""

from repro.eval.figures import fig9, render_fig9


def test_fig9_execution_breakdown(once):
    data = once(fig9)
    print("\n" + render_fig9())
    for model, shares in data.items():
        nonlinear = (
            shares.get("fbs", 0) + shares.get("pooling", 0) + shares.get("softmax", 0)
        )
        # The non-linear part dominates, up to ~72%.
        assert nonlinear > 0.45, model
        assert nonlinear < 0.90, model
        # The coefficient-encoded linear part is nearly free.
        assert shares.get("linear", 0) < 0.05, model
    # LeNet's max-pooling makes its pooling share the largest of the four.
    assert data["lenet"]["pooling"] > data["resnet20"].get("pooling", 0)
