"""Execution-engine benchmark: the ``repro bench`` harness under pytest.

Thin wrapper over :mod:`repro.perf.bench` (the importable implementation
behind the ``repro bench`` CLI command) so the pipeline benchmarks run with
the rest of the ``benchmarks/`` suite and leave a ``BENCH_pipeline.json``
artifact next to the other regenerated outputs.
"""

import json

from repro.perf.bench import BENCH_SCHEMA, run_benches


def test_bench_pipeline(once, tmp_path):
    out = tmp_path / "BENCH_pipeline.json"
    records = once(run_benches, out=str(out), quick=True)
    print("\n" + json.dumps(records, indent=2))
    assert [r["bench"] for r in records] == ["mnist_cnn", "resnet20_block"]
    for record in records:
        assert all(key in record for key in BENCH_SCHEMA)
        assert record["wall_s"] > 0
        assert record["speedup_vs_serial"] is not None
    # The batched RNS path must beat the frozen per-prime loop on the
    # ResNet-20 block microbench (the acceptance target is >= 2x).
    assert records[1]["speedup_vs_serial"] >= 1.5
    # Compile/runtime split: a warm-session request (precompiled plan, no
    # per-request kernel/LUT/S2C derivation) must beat the cold request
    # whose wall time includes the in-span compile phase.
    mnist = records[0]
    assert mnist["compile_s"] > 0
    assert 0 < mnist["warm_run_s"] < mnist["wall_s"]
    assert mnist["phase_s"].get("compile", 0) > 0
    # Executed per-phase op counts: every record carries the primitives the
    # CountingBackend observed, split by pipeline phase. The five-step loop
    # phases must all be present and the FBS phase must dominate cmults.
    for phase in ("linear", "se", "packing", "fbs", "fbs_giant", "s2c"):
        assert phase in mnist["phase_ops"], phase
    assert mnist["phase_ops"]["se"]["extract"] == mnist["ops"]["extract"]
    assert mnist["phase_ops"]["fbs_giant"]["cmult"] == mnist["ops"]["fbs_cmult"]
    assert records[1]["phase_ops"]["rns_ops"]["ntt"] > 0
