"""Fig. 11: energy-delay-area product."""

from repro.accel.baselines import edap, table7
from repro.eval.figures import render_fig11


def test_fig11_edap(once):
    data = once(edap)
    print("\n" + render_fig11())
    models = ("lenet", "mnist_cnn", "resnet20", "resnet56")
    for m in models:
        best = min(data[a][m] for a in ("craterlake", "ark", "bts", "sharp"))
        assert data["athena-w7a7"][m] < best, m
    # EDAP gaps exceed EDP gaps thanks to Athena's area advantage.
    edp = table7(("resnet20",))
    edp_ratio = edp["sharp"]["resnet20"] / edp["athena-w7a7"]["resnet20"]
    edap_ratio = data["sharp"]["resnet20"] / data["athena-w7a7"]["resnet20"]
    assert edap_ratio > edp_ratio
