"""Fig. 12: sensitivity to quantization precision (accuracy + runtime)."""

from repro.eval.figures import fig12_accuracy, fig12_perf, render_fig12


def test_fig12_precision_sensitivity(once):
    acc = once(fig12_accuracy, "resnet20")
    perf = fig12_perf("resnet20")
    print("\n" + render_fig12("resnet20"))
    # Accuracy gains plateau by w6a7 (paper: "significant gains plateau at w6a7").
    assert acc["w6a7"]["cipher"] >= acc["w4a4"]["cipher"]
    assert abs(acc["w7a7"]["cipher"] - acc["w6a7"]["cipher"]) < 0.08
    # Runtime rises with precision; the w7a7 -> w8a8 step is the largest.
    labels = ["w4a4", "w5a5", "w6a6", "w6a7", "w7a7", "w8a8"]
    times = [perf[l] for l in labels]
    assert times == sorted(times)
    steps = [times[i + 1] / times[i] for i in range(len(times) - 1)]
    assert steps[-1] == max(steps)
    assert steps[-1] > 1.4  # "nearly doubling"
