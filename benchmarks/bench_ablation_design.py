"""Ablation bench (beyond the paper's figures): cost of removing each of
the accelerator's four motivating design choices."""

from repro.accel.ablation import run_ablations
from repro.eval.render import render_table


def test_design_ablations(once):
    results = once(run_ablations, "resnet20")
    rows = [(r.name, f"{r.baseline_ms:.1f}", f"{r.ablated_ms:.1f}", f"{r.slowdown:.2f}x")
            for r in results]
    print("\n" + render_table(
        ["ablation", "baseline ms", "ablated ms", "slowdown"],
        rows, "Design-choice ablations (ResNet-20, w7a7)",
    ))
    by = {r.name: r for r in results}
    # Each design choice must pay for itself.
    assert by["no-two-region-dataflow"].slowdown > 1.05
    assert by["no-flexible-lut"].slowdown > 1.1
    assert by["no-prng-key-regen"].slowdown >= 1.0
    assert by["no-se-unit"].slowdown >= 1.0
    # The dataflow and LUT sizing are the first-order wins (paper §4.3/§3.3).
    assert max(r.slowdown for r in results) in (
        by["no-two-region-dataflow"].slowdown, by["no-flexible-lut"].slowdown,
    )
