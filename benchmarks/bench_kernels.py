"""Fused-kernel microbenchmarks: the ``repro bench --kernels`` harness
under pytest.

Thin wrapper over :func:`repro.perf.bench.run_kernel_bench` (the importable
implementation behind the CLI flag) so the kernel microbenches run with the
rest of the ``benchmarks/`` suite and leave a ``BENCH_kernels.json``
artifact next to the other regenerated outputs.

The hard performance gate — fused FBS phase time strictly below the
unfused batched baseline on the end-to-end mnist_cnn pipeline — rides on
:func:`repro.perf.bench.bench_mnist_cnn`'s ``fbs_unfused_s`` /
``fbs_fused_speedup`` fields; the per-kernel records are informational
(individual kernels can be noise-bound at smoke scale on a loaded CI
machine, the end-to-end phase comparison is robust).
"""

import json

from repro.perf.bench import (
    KERNEL_BENCH_SCHEMA,
    bench_mnist_cnn,
    run_kernel_bench,
)


def test_bench_kernels(once, tmp_path):
    out = tmp_path / "BENCH_kernels.json"
    records = once(run_kernel_bench, out=str(out), quick=True)
    print("\n" + json.dumps(records, indent=2))
    assert [r["bench"] for r in records] == [
        "ntt_stack", "rotate_keyswitch", "giant_step_batch",
    ]
    for record in records:
        assert all(key in record for key in KERNEL_BENCH_SCHEMA)
        assert record["fused_s"] > 0
        assert record["unfused_s"] > 0
        assert record["speedup"] > 0
    # The stacked giant-step pipeline amortizes D forward NTTs and the
    # digit decomposition across the whole batch; it must not lose to the
    # sequential per-pair path even at smoke scale.
    giant = records[-1]
    assert giant["speedup"] >= 1.0, giant


def test_fused_fbs_phase_beats_unfused(once):
    record = once(bench_mnist_cnn, compare_serial=False)
    assert record["fbs_unfused_s"] > 0
    fused_fbs = record["phase_s"].get("fbs", 0.0)
    assert fused_fbs > 0
    # The acceptance target is >= 2x; gate at a margin that survives a
    # loaded CI machine while still catching a fusion regression.
    assert record["fbs_fused_speedup"] >= 1.3, record["fbs_fused_speedup"]
    assert fused_fbs < record["fbs_unfused_s"]
