"""Serving-stack benchmark: the ``repro loadgen`` harness under pytest.

Thin wrapper over :mod:`repro.serve.loadgen` (the importable implementation
behind the ``repro loadgen`` CLI command) so the serving benchmark runs with
the rest of the ``benchmarks/`` suite and leaves a ``BENCH_serve.json``
artifact next to the other regenerated outputs. Pins the acceptance gates:

* **worker overlap** — the multi-worker configuration must sustain strictly
  higher requests/sec than the single-worker one on the identical workload
  (the transport window of one request overlapping another's compute);
* **batching amortization** — on the lane-packing subject, the batched
  configuration must sustain strictly higher requests/sec than the
  unbatched one at *equal* worker count, with batch occupancy above 1 (a
  k-lane batch pays one transport window and one fused execution);
* **cache warmth** — the warm phase (every configuration after the first,
  sharing the first's plan cache) must show a positive hit rate.
"""

import json

from repro.serve.loadgen import SERVE_SCHEMA, run_loadgen


def _check_schema(records, model):
    for record in records:
        assert all(key in record for key in SERVE_SCHEMA)
        assert record["model"] == model
        assert record["tenants"] >= 2
        assert record["requests_per_s"] > 0
        assert 0 < record["latency_p50_s"] <= record["latency_p99_s"]
        assert sum(record["per_tenant"].values()) == record["requests"]


def test_bench_serve(once, tmp_path):
    out = tmp_path / "BENCH_serve.json"
    records = once(
        run_loadgen,
        out=str(out),
        model="mnist_cnn",
        tenants=2,
        requests=4,
        worker_counts=(1, 2),
        mode="thread",
        # Wider-than-default window: at TEST_LOOP's tiny ring the kernels
        # are too small to release the GIL for long, so thread contention
        # claws back part of the overlap win; 3s keeps the gate's margin
        # comfortably away from scheduler noise on a loaded CI runner.
        transport_s=3.0,
    )
    print("\n" + json.dumps(records, indent=2))
    assert [r["phase"] for r in records] == ["cold", "warm"]
    _check_schema(records, "mnist_cnn")
    single, multi = records
    assert single["workers"] == 1 and multi["workers"] == 2
    # Multi-worker wins on the identical workload: while one slot holds a
    # request's ciphertext-transport window the other slot computes.
    assert multi["requests_per_s"] > single["requests_per_s"]
    # First configuration compiles (per tenant: one miss, then hits for the
    # other tenants sharing the fingerprint); later configurations run warm
    # out of the shared cache.
    assert single["plan_cache"]["misses"] >= 1
    assert multi["plan_cache"]["misses"] == 0
    assert multi["plan_cache"]["hit_rate"] > 0


def test_bench_serve_batching(once, tmp_path):
    out = tmp_path / "BENCH_serve_batching.json"
    records = once(
        run_loadgen,
        out=str(out),
        model="pack",  # batch_capacity == 2 at TEST_FBS
        tenants=2,
        requests=4,
        worker_counts=(2,),
        mode="thread",
        # Shared keys put both tenants in one key domain, so the round-robin
        # workload packs cross-tenant batches; the wide transport window is
        # the cost a batch pays once instead of per request.
        shared_keys=True,
        transport_s=3.0,
        batching="both",
        batch_window_s=1.0,
    )
    print("\n" + json.dumps(records, indent=2))
    _check_schema(records, "pack")
    unbatched, batched = records
    assert unbatched["workers"] == batched["workers"] == 2
    assert unbatched["batching"] is False and batched["batching"] is True
    assert unbatched["batch_occupancy"] == 1.0
    assert batched["batch_capacity"] == 2
    # The headline gate: at equal worker count, lane packing alone must buy
    # throughput — a 2-lane batch pays one transport window and one fused
    # pipeline execution for two requests.
    assert batched["batch_occupancy"] > 1
    assert batched["batches"] < batched["requests"]
    assert batched["requests_per_s"] > unbatched["requests_per_s"]
