"""Table 8: on/off-chip memory comparison."""

from repro.accel.configs import ALL_CONFIGS, ATHENA_ACCEL, BASELINES
from repro.eval.tables import render_table8


def test_table8_memory(once):
    configs = once(lambda: ALL_CONFIGS)
    print("\n" + render_table8())
    # Athena needs ~45 MB scratchpad — >= 4x less than every baseline.
    for cfg in BASELINES:
        assert cfg.scratchpad_mb / ATHENA_ACCEL.scratchpad_mb >= 4
    # Its FRU array demands high on-chip bandwidth (second only to BTS).
    bws = sorted(c.scratchpad_bw_tbs for c in configs)
    assert ATHENA_ACCEL.scratchpad_bw_tbs == bws[-2]
    # Everyone shares the same HBM provisioning.
    assert all(c.hbm_gb == 16 and c.hbm_bw_tbs == 1 for c in configs)
