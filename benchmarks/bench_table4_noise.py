"""Table 4: per-step noise budget at the Athena parameters."""

import pytest

from repro.core.noise_budget import PAPER_TABLE4, budget_bits, table4
from repro.eval.tables import render_table4
from repro.fhe.params import ATHENA


def test_table4_noise_budget(once):
    steps = once(table4, ATHENA)
    print("\n" + render_table4())
    ours = {s.step: s.noise_bits for s in steps}
    # Per-step totals within a few bits of the paper's Table 4.
    for step, paper in PAPER_TABLE4.items():
        assert ours[step] == pytest.approx(paper, abs=6), step
    # FBS dominates the budget, as the paper stresses.
    assert ours["fbs"] > 0.7 * ours["total"]
    # Total sits at the budget boundary (worst-case accounting),
    # within the paper's own ~4-bit overshoot of log2(Delta/2).
    assert ours["total"] == pytest.approx(PAPER_TABLE4["total"], abs=8)
    assert budget_bits(ATHENA) == pytest.approx(703, abs=1)
