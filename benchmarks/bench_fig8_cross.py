"""Fig. 8: Athena framework deployed on SHARP/CraterLake vs its own ASIC."""

from repro.accel.baselines import cross_deployment
from repro.eval.figures import render_fig8


def test_fig8_cross_deployment(once):
    data = once(cross_deployment)
    print("\n" + render_fig8())
    # Existing CKKS accelerators cannot serve Athena's FBS-heavy workload:
    # paper reports >= 3.8x (CraterLake) and 9.9x (SHARP) slowdowns.
    assert data["craterlake"] / data["athena"] > 2.0
    assert data["sharp"] / data["athena"] > 3.0
    # CraterLake's larger MM/MA pool makes it the better of the two.
    assert data["craterlake"] < data["sharp"]
