"""Table 1: parameter and size comparison of CNN-under-FHE solutions."""

from repro.eval.tables import render_table1, table1


def test_table1_solutions(once):
    rows = once(table1)
    print("\n" + render_table1())
    athena = rows[-1]
    # Headline claims: 2^15 degree, ~5.6 MiB ciphertext, far below CKKS.
    assert athena.degree == 1 << 15
    assert 5.0 * 2**20 < athena.ciphertext_bytes < 6.5 * 2**20
    ckks = rows[3]
    assert ckks.ciphertext_bytes / athena.ciphertext_bytes > 3.5
