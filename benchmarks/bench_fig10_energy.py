"""Fig. 10: full-system energy consumption and breakdown."""

from repro.eval.figures import fig10, render_fig10


def test_fig10_energy_breakdown(once):
    data = once(fig10)
    print("\n" + render_fig10())
    for model, shares in data.items():
        memory = (
            shares.get("hbm", 0)
            + shares.get("scratchpad", 0)
            + shares.get("register_file", 0)
        )
        # Memory access is ~half the energy (paper: "about 50%").
        assert 0.25 < memory < 0.75, model
        # Among compute units the FRU consumes the most.
        compute = {k: shares.get(k, 0) for k in ("fru", "ntt", "automorphism", "se")}
        assert max(compute, key=compute.get) == "fru", model
