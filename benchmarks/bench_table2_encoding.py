"""Table 2: valid-data ratios, Cheetah vs Athena coefficient encoding."""

import pytest

from repro.core.encoding import TABLE2_SHAPES, athena_plan, cheetah_plan
from repro.eval.tables import render_table2, table2
from repro.fhe.params import ATHENA


def test_table2_valid_ratios(once):
    rows = once(table2)
    print("\n" + render_table2())
    paper_athena = [0.50, 0.50, 0.25, 0.25, 0.0625, 0.125]
    for (shape, cheetah, athena), paper in zip(rows, paper_athena):
        assert athena.valid_ratio > cheetah.valid_ratio
        # Our principled model matches the paper on 5 of 6 rows (row 5
        # differs by the batching-accounting factor noted in EXPERIMENTS.md).
        if shape is not TABLE2_SHAPES[4]:
            assert athena.valid_ratio == pytest.approx(paper, rel=0.01)


def test_table2_first_row_cheetah_matches_paper(once):
    shape = TABLE2_SHAPES[0]
    plan = once(cheetah_plan, shape, 4096)
    assert plan.valid_ratio == pytest.approx(0.25, rel=0.01)  # paper: 25%


def test_table2_autotuner_picks(once):
    """The autotuner's per-layer strategy picks alongside the paper table.

    The tuner scores Athena and Cheetah coefficient encoding with the full
    trace model (Eq. 1 PMults plus the refresh rounds each strategy's
    result-ciphertext count forces); Table 2's valid-ratio advantage must
    translate into the cost model picking Athena on every paper shape —
    Cheetah's per-output-channel ciphertexts multiply the FBS/packing/S2C
    work downstream of the linear phase.
    """
    from repro.core.tune import strategy_costs

    rows = once(lambda: [strategy_costs(s, ATHENA) for s in TABLE2_SHAPES])
    print()
    for shape, row in zip(TABLE2_SHAPES, rows):
        label = (f"{shape.hw}x{shape.hw} cin={shape.cin:<3} "
                 f"cout={shape.cout:<3} k={shape.wk} s={shape.stride}")
        print(f"  {label}: athena {row['athena']:.3e} "
              f"cheetah {row['cheetah']:.3e} -> {row['pick']}")
    for shape, row in zip(TABLE2_SHAPES, rows):
        assert row["pick"] == "athena", (shape, row)
        # The paper's claimed advantage is structural, not marginal.
        assert row["cheetah"] > row["athena"], (shape, row)
