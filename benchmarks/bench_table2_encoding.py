"""Table 2: valid-data ratios, Cheetah vs Athena coefficient encoding."""

import pytest

from repro.core.encoding import TABLE2_SHAPES, athena_plan, cheetah_plan
from repro.eval.tables import render_table2, table2


def test_table2_valid_ratios(once):
    rows = once(table2)
    print("\n" + render_table2())
    paper_athena = [0.50, 0.50, 0.25, 0.25, 0.0625, 0.125]
    for (shape, cheetah, athena), paper in zip(rows, paper_athena):
        assert athena.valid_ratio > cheetah.valid_ratio
        # Our principled model matches the paper on 5 of 6 rows (row 5
        # differs by the batching-accounting factor noted in EXPERIMENTS.md).
        if shape is not TABLE2_SHAPES[4]:
            assert athena.valid_ratio == pytest.approx(paper, rel=0.01)


def test_table2_first_row_cheetah_matches_paper(once):
    shape = TABLE2_SHAPES[0]
    plan = once(cheetah_plan, shape, 4096)
    assert plan.valid_ratio == pytest.approx(0.25, rel=0.01)  # paper: 25%
