"""Table 7: energy-delay product."""

from repro.accel.baselines import PAPER_TABLE7, table7
from repro.eval.tables import render_table7


def test_table7_edp(once):
    data = once(table7)
    print("\n" + render_table7())
    models = ("lenet", "mnist_cnn", "resnet20", "resnet56")
    for m in models:
        best = min(data[a][m] for a in ("craterlake", "ark", "bts", "sharp"))
        assert data["athena-w7a7"][m] < best, m
    # Massive improvement over BTS (paper: >8000x; ordering is the claim).
    assert data["bts"]["resnet20"] / data["athena-w7a7"]["resnet20"] > 100
    # w6a7 improves EDP further.
    for m in models:
        assert data["athena-w6a7"][m] < data["athena-w7a7"][m]
