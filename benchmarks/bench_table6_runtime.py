"""Table 6: full-system runtime on Athena and the four baselines."""

from repro.accel.baselines import PAPER_TABLE6, table6
from repro.eval.tables import render_table6


def test_table6_full_system_runtime(once):
    data = once(table6)
    print("\n" + render_table6())
    models = ("lenet", "mnist_cnn", "resnet20", "resnet56")
    # Athena fastest everywhere.
    for m in models:
        best = min(data[a][m] for a in ("craterlake", "ark", "bts", "sharp"))
        assert data["athena-w7a7"][m] < best
    # Paper headline: 1.5x-2.3x over the best baseline (SHARP) for the CNN
    # benchmarks (MNIST's tiny workload gives both papers ~1.2x).
    speedups = [data["sharp"][m] / data["athena-w7a7"][m] for m in models]
    assert min(speedups) > 1.1
    assert max(speedups) < 3.5
    cnn_speedups = [data["sharp"][m] / data["athena-w7a7"][m]
                    for m in ("lenet", "resnet20", "resnet56")]
    assert min(cnn_speedups) > 1.4
    # ~29-40x over BTS for ResNet-20/LeNet.
    assert data["bts"]["resnet20"] / data["athena-w7a7"]["resnet20"] > 20
    # Predictions within ~2x of the published table everywhere.
    for arch, row in data.items():
        for m, v in row.items():
            paper = PAPER_TABLE6.get(arch, {}).get(m)
            if paper:
                assert 0.4 < v / paper < 2.5, (arch, m)
