"""Fig. 13: sensitivity of system performance to per-unit lane counts."""

from repro.accel.sensitivity import lane_sweep
from repro.eval.figures import render_fig13


def test_fig13_lane_sensitivity(once):
    pts = once(lane_sweep)
    print("\n" + render_fig13())
    at256 = {p.unit: p for p in pts if p.lanes == 256}
    # FRU impacts performance the most; NTT second; SE negligible.
    assert at256["fru"].delay >= at256["ntt"].delay
    assert at256["ntt"].delay > at256["automorphism"].delay
    assert at256["se"].delay < 1.15
    assert at256["automorphism"].delay >= at256["se"].delay
    # Normalization sanity: 2048 lanes == baseline.
    for p in pts:
        if p.lanes == 2048:
            assert abs(p.delay - 1.0) < 1e-9
