"""Table 3: computational-complexity comparison, CKKS vs Athena."""

from repro.core.complexity import per_layer_totals, table3
from repro.eval.tables import render_table3


def test_table3_complexity(once):
    rows = once(table3)
    print("\n" + render_table3())
    athena = {r.operation: r.complexity for r in rows if r.solution == "athena"}
    ckks = {r.operation: r.complexity for r in rows if r.solution == "ckks"}
    # Athena's conv needs no rotations at all; CKKS conv needs many.
    assert athena["conv"].hrot == 0
    assert ckks["conv"].hrot > 0
    # FBS dominates Athena's op counts (O(t) SMult) — the FRU rationale.
    assert athena["fbs"].pmult > 100 * athena["conv"].pmult
    # CMult stays O(sqrt t).
    assert athena["fbs"].cmult ** 2 <= 2 * 65537
