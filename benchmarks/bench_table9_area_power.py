"""Table 9: area and power breakdown."""

import pytest

from repro.accel.configs import ARK, ATHENA_ACCEL, SHARP
from repro.eval.tables import render_table9


def test_table9_area_power(once):
    cfg = once(lambda: ATHENA_ACCEL)
    print("\n" + render_table9())
    assert cfg.area_mm2 == pytest.approx(116.4)
    assert cfg.power_w == pytest.approx(148.1)
    units = {u.name: u for u in cfg.units}
    # FRU is the dominant compute unit in both area and power.
    compute = ("automorphism", "prng", "ntt", "se", "fru")
    assert max(compute, key=lambda u: units[u].area_mm2) == "fru"
    assert max(compute, key=lambda u: units[u].power_w) == "fru"
    # Paper's headline area ratios: 3.59x vs ARK, 1.53x vs SHARP.
    assert ARK.area_mm2 / cfg.area_mm2 == pytest.approx(3.59, abs=0.05)
    assert SHARP.area_mm2 / cfg.area_mm2 == pytest.approx(1.53, abs=0.05)
