"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``params [name]``          — show parameter sets (sizes, security).
* ``experiment <id> [...]``  — regenerate a paper table/figure by id
                               (``table1``..``table9``, ``fig1``..``fig13``).
* ``train <model>``          — train + quantize a benchmark into the zoo.
* ``infer <model>``          — encrypted-pipeline inference on test images;
                               ``--plan`` runs the warm-session
                               real-ciphertext path from a compiled plan.
* ``compile``                — precompute a CompiledProgram artifact
                               (kernels, LUT polynomials, BSGS/S2C plans);
                               ``--tune`` bakes in autotuned encodings.
* ``tune``                   — cost-model encoding autotuner: per-step
                               strategy/chunk/BSGS picks + predicted savings.
* ``allocate``               — mixed-precision bit allocator: per-layer
                               bit-widths minimizing predicted FHE cost under
                               an accuracy-drop budget; ``--config-out``
                               writes the artifact ``compile --mp`` consumes.
* ``bench``                  — pipeline + RNS benchmarks -> BENCH_pipeline.json
                               (includes cold-compile vs warm-run walls and
                               per-phase executed op counts; ``--backend``
                               picks the dispatch engine).
* ``trace``                  — analytical primitive-op trace of the micro
                               model; ``--executed`` also runs it under a
                               CountingBackend and reports parity.
* ``serve``                  — in-process demo of the layered multi-tenant
                               service: tenants, fair scheduler, warm worker
                               pool, shared plan cache; prints per-layer stats.
* ``loadgen``                — closed-loop load generator over the service
                               -> BENCH_serve.json (requests/sec, p50/p99
                               latency, queue depth, plan-cache hit rate).
* ``ablation``               — accelerator design-choice ablations.

Exit codes are uniform across commands: 0 on success, 1 when the library
reports a failure (:class:`repro.errors.ReproError`), 2 on usage errors
(argparse's own convention). ``experiment``, ``infer``, and ``bench`` share
the output parent parser: ``--json`` switches to machine-readable output and
``--out PATH`` redirects it to a file.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ModulusOverflow, ReproError, UnsupportedLayer

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2

_MODELS = ["mnist_cnn", "lenet", "resnet20", "resnet56"]


# -- shared parent parsers ---------------------------------------------------


def _seed_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=0, help="RNG seed")
    return parent


def _output_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parent.add_argument(
        "--out", metavar="PATH", default=None,
        help="write output to PATH instead of stdout",
    )
    return parent


def _emit(args: argparse.Namespace, text: str, payload) -> None:
    """Route command output per the shared --json/--out flags."""
    body = json.dumps(payload, indent=2) + "\n" if args.json else text
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(body)
    else:
        sys.stdout.write(body)


# -- commands ----------------------------------------------------------------


def _cmd_params(args: argparse.Namespace) -> int:
    from repro.fhe.params import PRESETS, get_params
    from repro.fhe.security import check_params

    names = [args.name] if args.name else sorted(PRESETS)
    for name in names:
        p = get_params(name)
        sec = check_params(p)
        print(p.describe())
        print(
            f"    security: RLWE {sec['rlwe_bits']:.0f} bits, "
            f"LWE {sec['lwe_bits']:.0f} bits"
        )
    return EXIT_OK


_EXPERIMENTS = {
    "table1": "render_table1",
    "table2": "render_table2",
    "table3": "render_table3",
    "table4": "render_table4",
    "table5": "render_table5",
    "table6": "render_table6",
    "table7": "render_table7",
    "table8": "render_table8",
    "table9": "render_table9",
    "fig1": "render_fig1",
    "fig4": "render_fig4",
    "fig8": "render_fig8",
    "fig9": "render_fig9",
    "fig10": "render_fig10",
    "fig11": "render_fig11",
    "fig12": "render_fig12",
    "fig13": "render_fig13",
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.eval as ev

    if args.id == "all":
        ids = list(_EXPERIMENTS)
    elif args.id in _EXPERIMENTS:
        ids = [args.id]
    else:
        print(f"unknown experiment {args.id!r}; options: "
              f"{', '.join(_EXPERIMENTS)} or 'all'", file=sys.stderr)
        return EXIT_USAGE
    rendered = {exp: getattr(ev, _EXPERIMENTS[exp])() for exp in ids}
    text = "".join(f"{body}\n\n" for body in rendered.values())
    _emit(args, text, [{"experiment": k, "rendered": v} for k, v in rendered.items()])
    return EXIT_OK


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.eval.zoo import get_benchmark

    entry = get_benchmark(args.model, seed=args.seed, refresh=args.refresh)
    print(f"{args.model}: float accuracy {entry.float_accuracy * 100:.2f}%")
    for label, qm in entry.quantized.items():
        acc = qm.accuracy(entry.data["x_test"], entry.data["y_test"])
        print(f"  {label}: plain-quant accuracy {acc * 100:.2f}%, "
              f"max |MAC| {qm.max_mac()}, fits t: {qm.check_t()}")
    return EXIT_OK


_TUNE_SUBJECTS = ["mnist_cnn", "resnet20_block"]


def _tune_subject(name: str):
    """Micro bench model for a ``repro tune`` / ``repro compile`` subject."""
    import numpy as np

    from repro.perf.bench import mnist_cnn_micro, resnet_block_micro

    builder = resnet_block_micro if name == "resnet20_block" else mnist_cnn_micro
    return builder(np.random.default_rng(5))


def _load_mp_payload(path: str) -> tuple:
    """Read a ``repro allocate --config-out`` artifact (or a bare MpConfig).

    Returns (MpConfig, bias_correct, lut_margin). Accepts both the wrapped
    shape ``{"mp": {...}, "bias_correct": ..., "lut_margin": ...}`` and a
    bare ``{"assignments": {...}}``.
    """
    from repro.quant.mp import DEFAULT_LUT_MARGIN, MpConfig

    with open(path) as fh:
        payload = json.load(fh)
    mp = MpConfig.from_json(payload.get("mp", payload))
    bias_correct = bool(payload.get("bias_correct", True))
    lut_margin = int(payload.get("lut_margin", DEFAULT_LUT_MARGIN))
    return mp, bias_correct, lut_margin


def _mp_subject(mp_path: str | None):
    """The mixed-precision micro subject, quantized per the --mp artifact."""
    from repro.quant.mp import mp_micro_subject
    from repro.quant.quantize import quantize_model

    model, x, _y, config = mp_micro_subject()
    if not mp_path:
        return quantize_model(model, x, config, name="mp_cnn")
    mp, bias_correct, lut_margin = _load_mp_payload(mp_path)
    return quantize_model(model, x, config, name="mp_cnn", mp=mp,
                          bias_correct=bias_correct, lut_margin=lut_margin)


def _cmd_compile(args: argparse.Namespace) -> int:
    """Compile a micro benchmark model into an on-disk plan artifact."""
    import time

    from repro.core.plan import compile_program
    from repro.core.program import lower
    from repro.fhe.params import get_params
    from repro.fhe.serialize import dump_plan

    if args.mp and args.model != "mp_cnn":
        print("repro: error: --mp requires --model mp_cnn", file=sys.stderr)
        return EXIT_USAGE
    params = get_params(args.params)
    subject = _mp_subject(args.mp) if args.model == "mp_cnn" \
        else _tune_subject(args.model)
    program = lower(subject, params)
    tuning = None
    if args.tune:
        from repro.core.tune import tune_program

        tuning = tune_program(program, params, chunk=args.chunk).tuning
    start = time.perf_counter()
    plan = compile_program(program, params, chunk=args.chunk, tuning=tuning)
    compile_s = time.perf_counter() - start
    raw = dump_plan(plan)
    out = args.out or f"{program.name}.plan"
    with open(out, "wb") as fh:
        fh.write(raw)
    payload = {
        "model": program.name,
        "params": args.params,
        "chunk": args.chunk,
        "tuned": bool(args.tune),
        "tuning": tuning.tag() if tuning else None,
        "mp": args.mp,
        "model_hash": plan.model_hash,
        "compile_s": round(compile_s, 6),
        "bytes": len(raw),
        "out": out,
    }
    if args.json:
        sys.stdout.write(json.dumps(payload, indent=2) + "\n")
    else:
        tuned = f" (tuned: {tuning.tag()})" if tuning else ""
        sys.stdout.write(
            f"compiled {program.name} @ {args.params} in {compile_s:.3f}s "
            f"({len(raw)} bytes) -> {out}{tuned}\n"
            f"  model hash: {plan.model_hash}\n"
        )
    return EXIT_OK


def _cmd_tune(args: argparse.Namespace) -> int:
    """Run the encoding autotuner and report per-step picks + predicted cost."""
    from repro.core.program import lower
    from repro.core.tune import tune_program
    from repro.fhe.params import get_params

    if args.bench_out:
        from repro.perf.bench import run_tune_bench

        records = run_tune_bench(
            out=args.bench_out,
            chunk=args.chunk if args.chunk is not None else 16,
        )
        lines = [f"wrote {args.bench_out}"]
        for r in records:
            lines.append(
                f"  {r['bench']}: predicted "
                f"{r['predicted_default_mod_muls']:.3e} -> "
                f"{r['predicted_tuned_mod_muls']:.3e} mod_muls, measured "
                f"{r['measured_default_mod_muls']:.3e} -> "
                f"{r['measured_tuned_mod_muls']:.3e}, wall "
                f"{r['default_wall_s']:.2f}s -> {r['tuned_wall_s']:.2f}s"
                + (f" [{r['tuning']}]" if r["tuning"] else " [default]")
            )
        text = "\n".join(lines) + "\n"
        if args.json:
            sys.stdout.write(json.dumps(records, indent=2) + "\n")
        else:
            sys.stdout.write(text)
        return EXIT_OK

    params = get_params(args.params)
    program = lower(_tune_subject(args.model), params)
    result = tune_program(program, params, chunk=args.chunk)
    report = result.report()
    saving = report["predicted_saving_mod_muls"]
    pct = (
        100.0 * saving / report["predicted_default_mod_muls"]
        if report["predicted_default_mod_muls"]
        else 0.0
    )
    lines = [
        f"{program.name} @ {args.params}"
        + (f", chunk={args.chunk}" if args.chunk else ""),
        f"  predicted default : {report['predicted_default_mod_muls']:.3e} mod_muls",
        f"  predicted tuned   : {report['predicted_tuned_mod_muls']:.3e} mod_muls",
        f"  predicted saving  : {saving:.3e} mod_muls ({pct:.1f}%)",
    ]
    for row in report["steps"]:
        mark = "->" if row["improved"] else "  "
        lines.append(
            f"  {mark} {row['name']:<16} {row['kind']:<8} "
            f"{row['default']:<16} -> {row['chosen']:<16} "
            f"({row['candidates']} candidates)"
        )
    _emit(args, "\n".join(lines) + "\n", report)
    return EXIT_OK


def _cmd_allocate(args: argparse.Namespace) -> int:
    """Mixed-precision bit allocation on the TEST_FBS micro subject."""
    from repro.fhe.params import get_params
    from repro.quant.mp import allocate_bits, mp_micro_subject

    if args.bench_out:
        from repro.perf.bench import run_mp_bench

        records = run_mp_bench(out=args.bench_out, mode=args.mode)
        lines = [f"wrote {args.bench_out}"]
        for r in records:
            if "headline" in r:
                h = r["headline"]
                lines.append(
                    f"  {r['bench']}: measured "
                    f"{r['baseline_measured_mod_muls']:.3e} -> "
                    f"{h['measured_mod_muls']:.3e} mod_muls, wall "
                    f"{r['baseline_wall_s']:.2f}s -> {h['wall_s']:.2f}s, "
                    f"acc {r['baseline_accuracy']:.4f} -> "
                    f"{h['accuracy']:.4f} [{h['mp']}]"
                )
            else:
                b = r["baseline"]
                best = min(r["points"], key=lambda p: p["predicted_mod_muls"])
                lines.append(
                    f"  {r['bench']}: predicted "
                    f"{b['predicted_mod_muls']:.3e} -> "
                    f"{best['predicted_mod_muls']:.3e} mod_muls, acc "
                    f"{b['accuracy']:.4f} -> {best['accuracy']:.4f} "
                    f"[{best['mp']}]"
                )
        if args.json:
            sys.stdout.write(json.dumps(records, indent=2) + "\n")
        else:
            sys.stdout.write("\n".join(lines) + "\n")
        return EXIT_OK

    params = get_params(args.params)
    model, x, y, config = mp_micro_subject(seed=args.seed)
    res = allocate_bits(
        model, x, y, config,
        params=params,
        budget=args.budget,
        mode=args.mode,
        bias_correct=not args.no_bias_correct,
        lut_margin=args.lut_margin,
    )
    if args.config_out:
        artifact = {
            "mp": res.mp.to_json(),
            "bias_correct": res.bias_correct,
            "lut_margin": res.lut_margin,
        }
        with open(args.config_out, "w") as fh:
            fh.write(json.dumps(artifact, indent=2) + "\n")
    text = res.report() + "\n"
    if args.config_out:
        text += f"wrote {args.config_out}\n"
    _emit(args, text, res.to_json())
    return EXIT_OK


def _infer_with_plan(args: argparse.Namespace) -> int:
    """Warm-session inference from a precompiled plan (micro pipeline)."""
    from pathlib import Path

    import numpy as np

    from repro.core.program import lower
    from repro.core.plan import program_fingerprint
    from repro.fhe.serialize import guess_params, load_plan
    from repro.perf.bench import mnist_cnn_micro
    from repro.serve import InferenceSession

    raw = Path(args.plan).read_bytes()
    params = guess_params(raw)
    if params is None:
        print("repro: error: plan artifact matches no known parameter preset",
              file=sys.stderr)
        return EXIT_FAILURE
    plan = load_plan(raw, params)
    qm = mnist_cnn_micro(np.random.default_rng(5))
    program = lower(qm, params)
    if program_fingerprint(program) != plan.model_hash:
        print("repro: error: plan was compiled for a different model",
              file=sys.stderr)
        return EXIT_FAILURE
    session = InferenceSession(program, params, seed=args.seed, plan=plan,
                               backend=args.backend)
    rng = np.random.default_rng(args.seed + 5)
    max_err = 0
    for _ in range(args.count):
        x_q = rng.integers(-3, 4, (1, 6, 6)).astype(np.int64)
        got = session.run(x_q)
        want = qm.forward_int(x_q[None])[0]
        max_err = max(max_err, int(np.abs(got - want).max()))
    stats = session.stats().to_dict()
    text = (
        f"{stats['detail']['model']} @ {params.name}, "
        f"{stats['requests']} warm requests\n"
        f"  compile_s (bind)   : {stats['timings']['compile_s']:.4f}s\n"
        f"  mean run_s         : {stats['timings']['mean_run_s']:.3f}s\n"
        f"  max |cipher-plain| : {max_err}\n"
    )
    payload = {**stats, "params": params.name, "max_abs_error": max_err}
    _emit(args, text, payload)
    return EXIT_OK


def _cmd_infer(args: argparse.Namespace) -> int:
    if getattr(args, "plan", None):
        if args.model != "mnist_cnn":
            print("repro: error: --plan inference supports only mnist_cnn",
                  file=sys.stderr)
            return EXIT_USAGE
        return _infer_with_plan(args)

    from contextlib import nullcontext

    from repro.core.inference import SimulatedAthenaEngine
    from repro.eval.zoo import get_benchmark
    from repro.fhe.backend import use_backend
    from repro.fhe.params import ATHENA

    entry = get_benchmark(args.model, seed=args.seed)
    qm = entry.quantized[args.mode]
    engine = SimulatedAthenaEngine(qm, ATHENA, seed=args.seed + 1)
    x = entry.data["x_test"][: args.count]
    y = entry.data["y_test"][: args.count]
    plain = qm.accuracy(x, y)
    dispatch = use_backend(args.backend) if args.backend else nullcontext()
    with dispatch:
        cipher = engine.accuracy(x, y)
    text = (
        f"{args.model} ({args.mode}), {len(x)} images\n"
        f"  plain-quant accuracy : {plain * 100:.2f}%\n"
        f"  ciphertext accuracy  : {cipher * 100:.2f}%\n"
        f"  gap                  : {(cipher - plain) * 100:+.2f}%\n"
    )
    payload = {
        "model": args.model,
        "mode": args.mode,
        "count": len(x),
        "plain_accuracy": plain,
        "cipher_accuracy": cipher,
        "gap": cipher - plain,
    }
    _emit(args, text, payload)
    return EXIT_OK


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import BENCH_FILENAME, run_benches

    if args.mp:
        from repro.perf.bench import BENCH_MP_FILENAME, run_mp_bench

        out = args.out if args.out else BENCH_MP_FILENAME
        records = run_mp_bench(out=out, seed=args.seed, backend=args.backend)
        r = records[0]
        h = r["headline"]
        text = (
            f"wrote {out}\n"
            f"  {r['bench']}: measured "
            f"{r['baseline_measured_mod_muls']:.3e} -> "
            f"{h['measured_mod_muls']:.3e} mod_muls, wall "
            f"{r['baseline_wall_s']:.2f}s -> {h['wall_s']:.2f}s [{h['mp']}]\n"
        )
        if args.json:
            sys.stdout.write(json.dumps(records, indent=2) + "\n")
        else:
            sys.stdout.write(text)
        return EXIT_OK

    out = args.out if args.out else BENCH_FILENAME
    records = run_benches(out=out, quick=args.quick, seed=args.seed,
                          backend=args.backend, trace_out=args.trace_out)
    lines = [f"wrote {out}"]
    if args.trace_out:
        lines.append(f"wrote {args.trace_out}")
    for r in records:
        speedup = r["speedup_vs_serial"]
        lines.append(
            f"  {r['bench']} [{r['params']['backend']}]: "
            f"wall {r['wall_s']:.3f}s, speedup vs serial {speedup:.2f}x"
        )
        if r.get("fbs_fused_speedup") is not None:
            lines.append(
                f"    fbs phase: fused {r['phase_s'].get('fbs', 0):.3f}s vs "
                f"unfused {r['fbs_unfused_s']:.3f}s "
                f"({r['fbs_fused_speedup']:.2f}x)"
            )
    if args.kernels:
        from repro.perf.bench import BENCH_KERNELS_FILENAME, run_kernel_bench

        kernel_records = run_kernel_bench(quick=args.quick, seed=args.seed)
        records = records + kernel_records
        lines.append(f"wrote {BENCH_KERNELS_FILENAME}")
        for r in kernel_records:
            lines.append(
                f"  {r['bench']}: fused {r['fused_s'] * 1e3:.2f}ms vs "
                f"unfused {r['unfused_s'] * 1e3:.2f}ms ({r['speedup']:.2f}x)"
            )
    text = "\n".join(lines) + "\n"
    if args.json:
        sys.stdout.write(json.dumps(records, indent=2) + "\n")
    else:
        sys.stdout.write(text)
    return EXIT_OK


def _cmd_trace(args: argparse.Namespace) -> int:
    """Analytical op-count trace; ``--executed`` compares against a real run."""
    import numpy as np

    from repro.core.trace import EXECUTED_FIELDS, trace_model
    from repro.fhe.params import TEST_LOOP
    from repro.perf.bench import mnist_cnn_micro

    rng = np.random.default_rng(5)
    qm = mnist_cnn_micro(rng)
    analytical = trace_model(qm, TEST_LOOP, softmax=False)

    if not args.executed:
        by_phase = analytical.by_phase()
        payload = {
            "model": qm.name,
            "mode": "analytical",
            "phases": {
                phase: {f: getattr(ops, f) for f in EXECUTED_FIELDS}
                for phase, ops in sorted(by_phase.items())
            },
        }
        text = f"{qm.name} @ test-loop (analytical)\n"
        for phase, ops in sorted(by_phase.items()):
            text += (f"  {phase:<10} ntt {ops.ntt:>10.0f}  "
                     f"mod_mul {ops.mod_mul:>12.0f}  "
                     f"mod_add {ops.mod_add:>12.0f}\n")
        _emit(args, text, payload)
        return EXIT_OK

    from repro.core.framework import AthenaPipeline
    from repro.core.program import lower
    from repro.core.trace import compare_traces, executed_trace
    from repro.fhe.backend import CountingBackend, use_backend

    counting = CountingBackend(args.backend)
    pipe = AthenaPipeline(TEST_LOOP, seed=args.seed)
    x_q = rng.integers(-3, 4, (1, 6, 6)).astype(np.int64)
    with use_backend(counting):
        pipe.run_program(lower(qm, TEST_LOOP), x_q)
    executed = executed_trace(counting, TEST_LOOP)
    comparison = compare_traces(executed, analytical)
    payload = {
        "model": qm.name,
        "mode": "executed",
        "backend": counting.rns_name,
        "comparison": comparison,
    }
    lines = [f"{qm.name} @ test-loop (executed [{counting.rns_name}] "
             f"vs analytical)"]
    for prim, row in comparison.items():
        ratio = "n/a" if row["ratio"] is None else f"{row['ratio']:.3f}"
        lines.append(f"  {prim:<10} executed {row['executed']:>14.0f}  "
                     f"analytical {row['analytical']:>14.0f}  ratio {ratio}")
    _emit(args, "\n".join(lines) + "\n", payload)
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    """Stand up the four-layer service in process and answer a demo batch."""
    import numpy as np

    from repro.fhe.params import TEST_FBS
    from repro.perf import ExecConfig
    from repro.serve import AthenaService, InferenceRequest, Tenant
    from repro.serve.loadgen import pack_cnn, serve_micro_cnn

    builder = pack_cnn if args.model == "pack" else serve_micro_cnn
    qm = builder(np.random.default_rng(5))
    shared = args.shared_keys
    tenants = [
        Tenant(f"tenant{i}", TEST_FBS,
               seed=args.seed if shared else args.seed + i)
        for i in range(args.tenants)
    ]
    service = AthenaService(
        tenants,
        exec_config=ExecConfig(args.mode, args.workers, backend=args.backend),
        queue_capacity=max(1, -(-args.requests // args.tenants)),
        transport_s=args.transport_ms / 1000.0,
        batching=not args.no_batching,
        batch_window_s=args.batch_window_ms / 1000.0,
    )
    fingerprint = service.register_model(qm.name, qm)
    rng = np.random.default_rng(args.seed + 7)
    cin, h, w = qm.input_shape
    batch = [
        InferenceRequest(
            tenant_id=tenants[i % args.tenants].tenant_id,
            model=qm.name,
            x_q=rng.integers(-2, 3, (cin, h, w)).astype(np.int64),
        )
        for i in range(args.requests)
    ]
    results = service.serve_batch(batch)
    stats = service.stats().to_dict()
    sched = stats["detail"]["scheduler"]["counters"]
    batcher = stats["detail"]["batcher"]
    occupancy = batcher["detail"]["occupancy_mean"]
    lines = [
        f"{qm.name} @ {TEST_FBS.name} ({fingerprint[:16]}), "
        f"{len(results)} requests, {args.tenants} tenants, "
        f"{args.workers} {args.mode} worker(s)",
        f"  scheduler : accepted {sched['accepted']}, "
        f"rejected {sched['rejected']}, "
        f"peak queue depth {sched['queue_depth_max']}",
        f"  batching  : {batcher['counters']['batches']} batches, "
        f"mean occupancy "
        f"{'n/a' if occupancy is None else format(occupancy, '.2f')}",
        f"  plan cache: {stats['detail']['plan_cache']['hits']} hits / "
        f"{stats['detail']['plan_cache']['misses']} misses",
    ]
    for tid, trec in sorted(stats["detail"]["tenants"].items()):
        lines.append(
            f"  {tid:<10}: {trec['requests']} answered, "
            f"key material {trec['key_material_mb']} MiB"
        )
    _emit(args, "\n".join(lines) + "\n", stats)
    return EXIT_OK


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import BENCH_SERVE_FILENAME, run_loadgen

    model = args.model
    requests = args.requests
    if args.quick:
        # Keep the default transport window: on the small models it is the
        # dominant per-request cost, which is exactly what lets the
        # multi-worker configuration overlap (and the batched one amortize)
        # and win even in smoke runs.
        if model == "mnist_cnn":
            model = "micro" if args.batching == "off" else "pack"
        requests = min(requests, 4)
    out = args.out if args.out else BENCH_SERVE_FILENAME
    workers = tuple(int(w) for w in args.workers.split(","))
    records = run_loadgen(
        out=out,
        model=model,
        tenants=args.tenants,
        requests=requests,
        worker_counts=workers,
        mode=args.mode,
        transport_s=args.transport_ms / 1000.0,
        seed=args.seed,
        warmup=args.warmup,
        cache_dir=args.cache_dir,
        batching=args.batching,
        batch_window_s=args.batch_window_ms / 1000.0,
        shared_keys=args.shared_keys,
    )
    lines = [f"wrote {out}"]
    for r in records:
        hit_rate = r["plan_cache"]["hit_rate"]
        hit = "n/a" if hit_rate is None else f"{hit_rate:.2f}"
        occ = r["batch_occupancy"]
        batched = (
            f"batched x{occ:.2f}" if r["batching"] and occ else "unbatched"
        )
        lines.append(
            f"  {r['model']} [{r['phase']}] {r['workers']}x{r['mode']} "
            f"{batched}: {r['requests_per_s']:.3f} req/s, "
            f"p50 {r['latency_p50_s']:.3f}s, p99 {r['latency_p99_s']:.3f}s, "
            f"cache hit rate {hit}"
        )
    text = "\n".join(lines) + "\n"
    if args.json:
        sys.stdout.write(json.dumps(records, indent=2) + "\n")
    else:
        sys.stdout.write(text)
    return EXIT_OK


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.accel.ablation import run_ablations
    from repro.eval.render import render_table

    results = run_ablations(args.model)
    rows = [(r.name, f"{r.baseline_ms:.1f}", f"{r.ablated_ms:.1f}",
             f"{r.slowdown:.2f}x") for r in results]
    print(render_table(["ablation", "baseline ms", "ablated ms", "slowdown"],
                       rows, f"Design ablations ({args.model})"))
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Athena reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    seed = _seed_parent()
    output = _output_parent()

    p = sub.add_parser("params", help="show FHE parameter sets")
    p.add_argument("name", nargs="?", help="preset name (default: all)")
    p.set_defaults(func=_cmd_params)

    p = sub.add_parser("experiment", parents=[output],
                       help="regenerate a paper table/figure")
    p.add_argument("id", help="table1..table9, fig1..fig13, or 'all'")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("train", parents=[seed],
                       help="train + quantize a benchmark model")
    p.add_argument("model", choices=_MODELS)
    p.add_argument("--refresh", action="store_true", help="ignore the cache")
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("infer", parents=[seed, output],
                       help="encrypted-pipeline inference")
    p.add_argument("model", choices=_MODELS)
    p.add_argument("--mode", default="w7a7", choices=["w7a7", "w6a7"])
    p.add_argument("--count", type=int, default=128)
    p.add_argument("--plan", metavar="PATH", default=None,
                   help="run warm-session inference from a compiled plan "
                        "(mnist_cnn only; see 'repro compile')")
    p.add_argument("--backend", default=None,
                   choices=["batched", "batched-unfused", "serial", "counting"],
                   help="op-dispatch backend (default: inherit REPRO_BACKEND, "
                        "else batched)")
    p.set_defaults(func=_cmd_infer)

    p = sub.add_parser("compile", parents=[seed],
                       help="precompute a CompiledProgram plan artifact")
    p.add_argument("--model", default="mnist_cnn",
                   choices=_TUNE_SUBJECTS + ["mp_cnn"],
                   help="micro bench subject (default: mnist_cnn; 'mp_cnn' "
                        "is the mixed-precision subject of "
                        "'repro allocate')")
    p.add_argument("--params", default="test-loop",
                   help="parameter preset (default: test-loop)")
    p.add_argument("--chunk", type=int, default=None,
                   help="LWE outputs per refresh tile (default: unchunked)")
    p.add_argument("--tune", action="store_true",
                   help="run the encoding autotuner first and bake its "
                        "per-step choices into the plan (changes the "
                        "fingerprint)")
    p.add_argument("--mp", metavar="PATH", default=None,
                   help="mixed-precision config artifact from "
                        "'repro allocate --config-out' (requires "
                        "--model mp_cnn; changes the fingerprint)")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="artifact path (default: <model>.plan)")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON summary")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("allocate", parents=[seed, output],
                       help="mixed-precision bit allocation (repro.quant.mp)")
    p.add_argument("--params", default="test-fbs",
                   help="parameter preset for cost scoring "
                        "(default: test-fbs)")
    p.add_argument("--budget", type=float, default=0.02,
                   help="max calibration accuracy drop (default: 0.02)")
    p.add_argument("--mode", default="greedy", choices=["greedy", "dp"],
                   help="knapsack solver: greedy ratio or exact DP "
                        "(default: greedy)")
    p.add_argument("--no-bias-correct", action="store_true",
                   help="disable CalibTIP-style per-layer bias correction")
    p.add_argument("--lut-margin", type=int, default=8,
                   help="restricted-LUT safety margin over the calibrated "
                        "MAC peak (default: 8)")
    p.add_argument("--config-out", metavar="PATH", default=None,
                   help="write the chosen MpConfig artifact for "
                        "'repro compile --mp'")
    p.add_argument("--bench-out", metavar="PATH", default=None,
                   help="run the full measured mp harness instead and "
                        "write BENCH_mp.json to PATH")
    p.set_defaults(func=_cmd_allocate, seed=7)

    p = sub.add_parser("tune", parents=[output],
                       help="cost-model encoding autotuner (per-step picks)")
    p.add_argument("--model", default="mnist_cnn", choices=_TUNE_SUBJECTS,
                   help="micro bench subject (default: mnist_cnn)")
    p.add_argument("--params", default="test-loop",
                   help="parameter preset (default: test-loop)")
    p.add_argument("--chunk", type=int, default=None,
                   help="global LWE outputs per refresh tile the tuner may "
                        "override per step (default: unchunked)")
    p.add_argument("--bench-out", metavar="PATH", default=None,
                   help="run the full predicted-vs-measured harness over "
                        "all subjects and write BENCH_tune.json to PATH")
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser("bench", parents=[seed, output],
                       help="pipeline + RNS benchmarks (BENCH_pipeline.json)")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: fewer repetitions")
    p.add_argument("--mp", action="store_true",
                   help="run the mixed-precision allocator bench instead "
                        "(BENCH_mp.json)")
    p.add_argument("--backend", default="batched",
                   choices=["batched", "batched-unfused", "serial", "counting"],
                   help="op-dispatch backend to measure (default: batched; "
                        "the flag beats REPRO_BACKEND, which beats the "
                        "built-in batched default)")
    p.add_argument("--kernels", action="store_true",
                   help="also run the fused-kernel microbenches and write "
                        "BENCH_kernels.json")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="also write the executed-op trace JSON to PATH")
    p.set_defaults(func=_cmd_bench, seed=41)

    p = sub.add_parser("trace", parents=[seed, output],
                       help="primitive op-count trace (analytical model)")
    p.add_argument("--executed", action="store_true",
                   help="run the micro model under a CountingBackend and "
                        "compare executed vs analytical counts")
    p.add_argument("--backend", default="batched",
                   choices=["batched", "serial"],
                   help="backend for --executed (default: batched)")
    p.set_defaults(func=_cmd_trace, seed=41)

    p = sub.add_parser("serve", parents=[seed, output],
                       help="multi-tenant serving demo (in-process)")
    p.add_argument("--model", default="serve_micro",
                   choices=["serve_micro", "pack"],
                   help="demo model; 'pack' has batch_capacity 2 "
                        "(default: serve_micro)")
    p.add_argument("--tenants", type=int, default=2,
                   help="number of tenants (default: 2)")
    p.add_argument("--requests", type=int, default=4,
                   help="demo requests, round-robin across tenants")
    p.add_argument("--workers", type=int, default=1,
                   help="worker count (default: 1)")
    p.add_argument("--mode", default="serial",
                   choices=["serial", "thread", "process"],
                   help="worker executor mode (default: serial)")
    p.add_argument("--transport-ms", type=float, default=0.0,
                   help="per-batch ciphertext transport window, ms")
    p.add_argument("--no-batching", action="store_true",
                   help="disable cross-request ciphertext batching")
    p.add_argument("--batch-window-ms", type=float, default=50.0,
                   help="max wait for batch co-riders, ms (default: 50)")
    p.add_argument("--shared-keys", action="store_true",
                   help="give every tenant the same keygen seed (one key "
                        "domain: enables cross-tenant batching)")
    p.add_argument("--backend", default=None,
                   choices=["batched", "batched-unfused", "serial", "counting"],
                   help="default op-dispatch backend for every tenant "
                        "(per-tenant pins would win; default: inherit "
                        "REPRO_BACKEND, else batched)")
    p.set_defaults(func=_cmd_serve, seed=41)

    p = sub.add_parser("loadgen", parents=[seed, output],
                       help="serving load generator (BENCH_serve.json)")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: micro model, few requests")
    p.add_argument("--model", default="mnist_cnn",
                   choices=["mnist_cnn", "micro", "pack"],
                   help="serving subject (default: mnist_cnn; 'pack' is "
                        "the batchable one)")
    p.add_argument("--tenants", type=int, default=2,
                   help="number of tenants (default: 2)")
    p.add_argument("--requests", type=int, default=6,
                   help="timed requests per configuration (default: 6)")
    p.add_argument("--workers", default="1,2", metavar="N[,N...]",
                   help="comma-separated worker counts to compare "
                        "(default: 1,2)")
    p.add_argument("--mode", default="thread",
                   choices=["serial", "thread", "process"],
                   help="worker executor mode (default: thread)")
    p.add_argument("--transport-ms", type=float, default=1500.0,
                   help="per-batch ciphertext transport window, ms "
                        "(default: 1500)")
    p.add_argument("--warmup", type=int, default=1,
                   help="untimed warmup requests per tenant (default: 1)")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="disk-backed plan cache directory (default: memory)")
    p.add_argument("--batching", default="on",
                   choices=["on", "off", "both"],
                   help="cross-request batching; 'both' runs every worker "
                        "count unbatched then batched (default: on)")
    p.add_argument("--batch-window-ms", type=float, default=250.0,
                   help="max wait for batch co-riders, ms (default: 250)")
    p.add_argument("--shared-keys", action="store_true",
                   help="same keygen seed for all tenants (one key domain: "
                        "enables cross-tenant batching)")
    p.set_defaults(func=_cmd_loadgen, seed=41)

    p = sub.add_parser("ablation", help="accelerator design ablations")
    p.add_argument("--model", default="resnet20")
    p.set_defaults(func=_cmd_ablation)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UnsupportedLayer as exc:
        where = "" if exc.index is None else f" at layer {exc.index}"
        what = "" if exc.layer_type is None else f" ({exc.layer_type})"
        print(f"repro: error: unsupported layer{where}{what}: {exc}",
              file=sys.stderr)
        return EXIT_FAILURE
    except ModulusOverflow as exc:
        hint = ""
        if exc.layer is not None and exc.excess is not None:
            hint = (f" (allocate a narrower bit-width to {exc.layer} "
                    f"or raise t; needs {exc.excess} less)")
        print(f"repro: error: {exc}{hint}", file=sys.stderr)
        return EXIT_FAILURE
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return EXIT_FAILURE


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
