"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``params [name]``          — show parameter sets (sizes, security).
* ``experiment <id> [...]``  — regenerate a paper table/figure by id
                               (``table1``..``table9``, ``fig1``..``fig13``).
* ``train <model>``          — train + quantize a benchmark into the zoo.
* ``infer <model>``          — encrypted-pipeline inference on test images.
* ``ablation``               — accelerator design-choice ablations.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_params(args: argparse.Namespace) -> int:
    from repro.fhe.params import PRESETS, get_params
    from repro.fhe.security import check_params

    names = [args.name] if args.name else sorted(PRESETS)
    for name in names:
        p = get_params(name)
        sec = check_params(p)
        print(p.describe())
        print(
            f"    security: RLWE {sec['rlwe_bits']:.0f} bits, "
            f"LWE {sec['lwe_bits']:.0f} bits"
        )
    return 0


_EXPERIMENTS = {
    "table1": "render_table1",
    "table2": "render_table2",
    "table3": "render_table3",
    "table4": "render_table4",
    "table5": "render_table5",
    "table6": "render_table6",
    "table7": "render_table7",
    "table8": "render_table8",
    "table9": "render_table9",
    "fig1": "render_fig1",
    "fig4": "render_fig4",
    "fig8": "render_fig8",
    "fig9": "render_fig9",
    "fig10": "render_fig10",
    "fig11": "render_fig11",
    "fig12": "render_fig12",
    "fig13": "render_fig13",
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.eval as ev

    if args.id == "all":
        ids = list(_EXPERIMENTS)
    elif args.id in _EXPERIMENTS:
        ids = [args.id]
    else:
        print(f"unknown experiment {args.id!r}; options: "
              f"{', '.join(_EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    for exp in ids:
        print(getattr(ev, _EXPERIMENTS[exp])())
        print()
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.eval.zoo import get_benchmark

    entry = get_benchmark(args.model, seed=args.seed, refresh=args.refresh)
    print(f"{args.model}: float accuracy {entry.float_accuracy * 100:.2f}%")
    for label, qm in entry.quantized.items():
        acc = qm.accuracy(entry.data["x_test"], entry.data["y_test"])
        print(f"  {label}: plain-quant accuracy {acc * 100:.2f}%, "
              f"max |MAC| {qm.max_mac()}, fits t: {qm.check_t()}")
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    from repro.core.inference import SimulatedAthenaEngine
    from repro.eval.zoo import get_benchmark
    from repro.fhe.params import ATHENA

    entry = get_benchmark(args.model, seed=args.seed)
    qm = entry.quantized[args.mode]
    engine = SimulatedAthenaEngine(qm, ATHENA, seed=args.seed + 1)
    x = entry.data["x_test"][: args.count]
    y = entry.data["y_test"][: args.count]
    plain = qm.accuracy(x, y)
    cipher = engine.accuracy(x, y)
    print(f"{args.model} ({args.mode}), {len(x)} images")
    print(f"  plain-quant accuracy : {plain * 100:.2f}%")
    print(f"  ciphertext accuracy  : {cipher * 100:.2f}%")
    print(f"  gap                  : {(cipher - plain) * 100:+.2f}%")
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.accel.ablation import run_ablations
    from repro.eval.render import render_table

    results = run_ablations(args.model)
    rows = [(r.name, f"{r.baseline_ms:.1f}", f"{r.ablated_ms:.1f}",
             f"{r.slowdown:.2f}x") for r in results]
    print(render_table(["ablation", "baseline ms", "ablated ms", "slowdown"],
                       rows, f"Design ablations ({args.model})"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Athena reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("params", help="show FHE parameter sets")
    p.add_argument("name", nargs="?", help="preset name (default: all)")
    p.set_defaults(func=_cmd_params)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("id", help="table1..table9, fig1..fig13, or 'all'")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("train", help="train + quantize a benchmark model")
    p.add_argument("model", choices=["mnist_cnn", "lenet", "resnet20", "resnet56"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--refresh", action="store_true", help="ignore the cache")
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("infer", help="encrypted-pipeline inference")
    p.add_argument("model", choices=["mnist_cnn", "lenet", "resnet20", "resnet56"])
    p.add_argument("--mode", default="w7a7", choices=["w7a7", "w6a7"])
    p.add_argument("--count", type=int, default=128)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_infer)

    p = sub.add_parser("ablation", help="accelerator design ablations")
    p.add_argument("--model", default="resnet20")
    p.set_defaults(func=_cmd_ablation)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
