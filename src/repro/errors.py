"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish parameter problems from runtime (noise-budget) problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParameterError(ReproError):
    """An FHE or model parameter set is invalid or inconsistent."""


class NoiseBudgetExhausted(ReproError):
    """A ciphertext's noise exceeded Delta/2; decryption would be wrong."""


class EncodingError(ReproError):
    """Data does not fit the requested encoding (e.g. too large for N)."""


class QuantizationError(ReproError):
    """Quantized value out of representable range or bad quant config."""


class UnsupportedLayer(QuantizationError):
    """Lowering met a layer type with no registered :class:`LoweringRule`.

    Subclasses :class:`QuantizationError` so pre-registry callers that
    caught the old ``cannot lower`` error keep working. The payload names
    the offending layer so CLI users see *which* layer of *which* type
    broke the compile instead of a bare class name: ``index`` is the
    position within the layer list handed to the lowering pass and
    ``layer_type`` the layer's class name.
    """

    def __init__(self, message: str, *, index: int | None = None,
                 layer_type: str | None = None):
        super().__init__(message)
        self.index = index
        self.layer_type = layer_type


class ModulusOverflow(QuantizationError):
    """A calibrated MAC peak exceeds the plaintext modulus headroom ``t//2``.

    Raised by :meth:`QuantizedModel.validate_t`: a MAC wrapping mod ``t``
    silently corrupts the LUT input under FHE, so the check names the worst
    offending layer instead of returning a bare bool. ``layer`` is the
    offender's label (type + index within ``mac_layers()`` order),
    ``mac_peak`` its observed peak, ``t`` the modulus, and ``excess`` how
    far the peak overshoots ``t//2`` — i.e. the minimum amount calibration
    or a narrower bit-width assignment must shave off.
    """

    def __init__(
        self,
        message: str,
        *,
        layer: str | None = None,
        mac_peak: int | None = None,
        t: int | None = None,
        excess: int | None = None,
    ):
        super().__init__(message)
        self.layer = layer
        self.mac_peak = mac_peak
        self.t = t
        self.excess = excess


class ScheduleError(ReproError):
    """The accelerator simulator was given an unschedulable op trace."""


class ServiceOverloaded(ReproError):
    """The serving layer shed a request: its tenant's queue is full.

    Raised synchronously at admission time (never after a request has been
    queued), so a rejected caller knows no work was started and may retry
    with backoff against a less loaded deployment. The payload carries the
    shedding tenant's live queue occupancy so clients can back off
    proportionally instead of blind-retrying: ``tenant_id``, ``depth``
    (requests pending for that tenant when shed), and ``capacity`` (the
    per-tenant bound). All three are ``None`` when the shed is not
    queue-related (e.g. the scheduler is closed).
    """

    def __init__(
        self,
        message: str,
        *,
        tenant_id: str | None = None,
        depth: int | None = None,
        capacity: int | None = None,
    ):
        super().__init__(message)
        self.tenant_id = tenant_id
        self.depth = depth
        self.capacity = capacity
