"""Per-table / per-figure experiment drivers (see DESIGN.md index)."""

from repro.eval.render import render_table
from repro.eval.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    render_table9,
    table1,
    table2,
    table5,
)
from repro.eval.figures import (
    fig1,
    fig4,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12_accuracy,
    fig12_perf,
    fig13,
    render_fig1,
    render_fig4,
    render_fig8,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_fig13,
)
from repro.eval.zoo import get_benchmark, train_benchmark

__all__ = [
    "fig1", "fig4", "fig8", "fig9", "fig10", "fig11",
    "fig12_accuracy", "fig12_perf", "fig13",
    "get_benchmark", "render_fig1", "render_fig4", "render_fig8",
    "render_fig9", "render_fig10", "render_fig11", "render_fig12",
    "render_fig13", "render_table", "render_table1", "render_table2",
    "render_table3", "render_table4", "render_table5", "render_table6",
    "render_table7", "render_table8", "render_table9",
    "table1", "table2", "table5", "train_benchmark",
]
