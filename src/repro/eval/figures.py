"""Experiment drivers for the paper's figures (1, 4, 8-13).

Each driver returns structured data plus a ``render_*`` helper producing an
ASCII rendition (series tables) of the figure.
"""

from __future__ import annotations

import numpy as np

from repro.accel import baselines as accel_baselines
from repro.accel.baselines import athena_run, calibrated_athena
from repro.accel.energy import energy_for
from repro.accel.sensitivity import lane_sweep, precision_sweep_perf
from repro.baselines.approx import model_probe, sweep
from repro.core.inference import SimulatedAthenaEngine
from repro.eval.render import render_table
from repro.eval.zoo import get_benchmark
from repro.fhe.params import ATHENA
from repro.quant.quantize import QuantConfig, quantize_model


# -- Figure 1: approximation accuracy vs Delta ------------------------------------


def fig1(orders=(2, 4, 8, 16, 32, 64), deltas=(None, 25, 30, 35)):
    return sweep(orders=orders, deltas=deltas)


def fig1_model_probe(orders=(4, 16, 32), deltas=(None, 25, 30, 35), seed: int = 0):
    """ResNet-20 output-probability accuracy with approximated ReLU."""
    entry = get_benchmark("resnet20", seed=seed)
    x = entry.data["x_test"][:64]
    out = {}
    for order in orders:
        for delta in deltas:
            out[(order, delta)] = model_probe(entry.float_model, x, order, delta)
    return out


def render_fig1() -> str:
    pts = fig1()
    rows = []
    for fn in ("relu", "sigmoid"):
        for method in ("taylor", "chebyshev"):
            for delta in (None, 25, 30, 35):
                series = [p for p in pts if p.function == fn and p.method == method
                          and p.delta_bits == delta]
                series.sort(key=lambda p: p.order)
                rows.append(
                    (fn, method, "plain" if delta is None else f"d={delta}")
                    + tuple(f"{p.accuracy_bits:.1f}" for p in series)
                )
    orders = sorted({p.order for p in pts})
    return render_table(
        ["fn", "method", "delta"] + [f"ord{o}" for o in orders],
        rows,
        "Fig 1: approximation accuracy (bits) vs expansion order",
    )


# -- Figure 4: MAC ranges and e_ms error ratios ------------------------------------------


def fig4(model: str = "resnet20", seed: int = 0, samples: int = 128):
    """(per-layer mac peaks, per-layer error ratios) for w7a7."""
    entry = get_benchmark(model, seed=seed)
    qm = entry.quantized["w7a7"]
    engine = SimulatedAthenaEngine(qm, ATHENA, seed=seed + 3)
    x = entry.data["x_test"][:samples]
    _, stats = engine.infer_with_stats(x)
    layers = [s for s in stats.layers if s.total > 0]
    return layers


def render_fig4(model: str = "resnet20") -> str:
    layers = fig4(model)
    rows = [
        (i, s.name, s.mac_peak, f"{np.log2(max(2, 2 * s.mac_peak)):.1f}",
         f"{s.error_ratio * 100:.2f}%")
        for i, s in enumerate(layers)
    ]
    t_line = f"t = {ATHENA.t} holds max MAC: {all(2 * s.mac_peak < ATHENA.t for s in layers)}"
    return render_table(
        ["#", "layer", "max |MAC|", "bits", "e_ms error ratio"],
        rows,
        f"Fig 4: per-layer MAC range and noise error ratio ({model}, w7a7)",
    ) + "\n" + t_line


# -- Figure 8: Athena framework on other accelerators ---------------------------------------


def fig8(model: str = "resnet20") -> dict[str, float]:
    return accel_baselines.cross_deployment(model)


def render_fig8() -> str:
    data = fig8()
    base = data["athena"]
    rows = [(k, f"{v:.1f}", f"{v / base:.1f}x") for k, v in data.items()]
    return render_table(
        ["accelerator", "ms", "vs athena"],
        rows,
        "Fig 8: Athena framework deployed on existing accelerators (ResNet-20)",
    )


# -- Figure 9: execution-time breakdown -------------------------------------------------------


def fig9(models=("mnist_cnn", "lenet", "resnet20", "resnet56")):
    out = {}
    for m in models:
        res = athena_run(m)
        phases = res.ms_by_phase()
        total = sum(phases.values())
        out[m] = {k: v / total for k, v in phases.items()}
    return out


def render_fig9() -> str:
    data = fig9()
    phases = sorted({p for row in data.values() for p in row})
    rows = [
        [m] + [f"{data[m].get(p, 0) * 100:.1f}%" for p in phases] for m in data
    ]
    return render_table(["model"] + phases, rows, "Fig 9: execution-time breakdown")


# -- Figures 10-11: energy breakdown and EDAP ---------------------------------------------------


def fig10(models=("mnist_cnn", "lenet", "resnet20", "resnet56")):
    cfg = calibrated_athena()
    out = {}
    for m in models:
        res = athena_run(m)
        en = energy_for(res, cfg)
        total = sum(en.breakdown_j.values())
        out[m] = {k: v / total for k, v in en.breakdown_j.items()}
    return out


def render_fig10() -> str:
    data = fig10()
    units = sorted({u for row in data.values() for u in row})
    rows = [[m] + [f"{data[m].get(u, 0) * 100:.1f}%" for u in units] for m in data]
    memory_note = "memory = hbm + scratchpad + register_file (paper: ~50%)"
    return render_table(["model"] + units, rows, "Fig 10: energy breakdown") + "\n" + memory_note


def fig11():
    return accel_baselines.edap()


def render_fig11() -> str:
    data = fig11()
    headers = ["accelerator", "lenet", "mnist_cnn", "resnet20", "resnet56"]
    rows = [
        [arch] + [f"{row[m]:.2f}" for m in ("lenet", "mnist_cnn", "resnet20", "resnet56")]
        for arch, row in data.items()
    ]
    return render_table(headers, rows, "Fig 11: EDAP (J*s*mm^2)")


# -- Figure 12: quantization-precision sensitivity ------------------------------------------------


def fig12_accuracy(model: str = "resnet20", seed: int = 0, test_size: int = 256):
    """Accuracy per precision w4a4..w8a8 (plain-Q and cipher)."""
    entry = get_benchmark(model, seed=seed)
    x = entry.data["x_test"][:test_size]
    y = entry.data["y_test"][:test_size]
    calib = entry.data["x_train"][:256]
    out = {}
    for (wb, ab) in ((4, 4), (5, 5), (6, 6), (6, 7), (7, 7), (8, 8)):
        cfg = QuantConfig(wb, ab)
        qm = quantize_model(entry.float_model, calib, cfg, model)
        engine = SimulatedAthenaEngine(qm, ATHENA, seed=seed + 5)
        out[cfg.label] = {
            "plain": qm.accuracy(x, y),
            "cipher": engine.accuracy(x, y),
        }
    return out


def fig12_perf(model: str = "resnet20"):
    return precision_sweep_perf(model)


def render_fig12(model: str = "resnet20") -> str:
    acc = fig12_accuracy(model)
    perf = fig12_perf(model)
    rows = []
    for label in ("w4a4", "w5a5", "w6a6", "w6a7", "w7a7", "w8a8"):
        a = acc.get(label, {})
        rows.append(
            (label, f"{a.get('plain', 0) * 100:.2f}", f"{a.get('cipher', 0) * 100:.2f}",
             f"{perf.get(label, 0):.1f}")
        )
    return render_table(
        ["precision", "plain acc %", "cipher acc %", "runtime ms"],
        rows,
        f"Fig 12: quantization-precision sensitivity ({model})",
    )


# -- Figure 13: lane sensitivity -------------------------------------------------------------------


def fig13(model: str = "resnet20"):
    return lane_sweep(model)


def render_fig13() -> str:
    pts = fig13()
    rows = [
        (p.unit, p.lanes, f"{p.delay:.2f}", f"{p.energy:.2f}", f"{p.edp:.2f}", f"{p.edap:.2f}")
        for p in pts
    ]
    return render_table(
        ["unit", "lanes", "delay", "energy", "EDP", "EDAP"],
        rows,
        "Fig 13: per-unit lane scaling (normalized to 2048 lanes)",
    )
