"""Experiment drivers for the paper's tables (1-9)."""

from __future__ import annotations

from dataclasses import dataclass


from repro.accel import baselines as accel_baselines
from repro.accel.configs import ALL_CONFIGS, ATHENA_ACCEL
from repro.core.complexity import table3 as complexity_table3
from repro.core.encoding import TABLE2_SHAPES, athena_plan, cheetah_plan
from repro.core.keyinventory import athena_key_material_bytes
from repro.core.inference import SimulatedAthenaEngine
from repro.core.noise_budget import PAPER_TABLE4, budget_bits, is_correct, table4 as noise_table4
from repro.eval.render import render_table
from repro.eval.zoo import get_benchmark
from repro.fhe.params import ATHENA
from repro.perf import ParallelMap


# -- Table 1: solution comparison -------------------------------------------------


@dataclass(frozen=True)
class SolutionRow:
    method: str
    quantized: bool
    degree: int
    logq: int
    bootstrapping: str
    ciphertext_bytes: int
    key_bytes: int
    dataset: str


def _ct_bytes(degree: int, logq: int) -> int:
    return 2 * degree * logq // 8


def table1() -> list[SolutionRow]:
    """Parameter/size comparison of the six solutions (sizes derived from
    each scheme's degree and modulus; key sizes use each paper's reported
    rotation+relin inventories)."""
    rows = [
        SolutionRow("YASHE (LHE) [13]", False, 8192, 191, "none (Taylor NL)",
                    _ct_bytes(8192, 191), int(31.5 * 2**20), "MNIST"),
        SolutionRow("BGV (LHE) [15]", False, 8192, 220, "none (Taylor NL)",
                    _ct_bytes(8192, 220), int(36.7 * 2**20), "MNIST"),
        SolutionRow("BFV (LHE) [9]", True, 8192, 219, "none (Taylor NL)",
                    _ct_bytes(8192, 219), int(36.7 * 2**20), "CIFAR-10"),
        SolutionRow("CKKS (FHE) [28]", False, 65536, 1450, "separated (Taylor)",
                    _ct_bytes(65536, 1450), int(1.9 * 2**30), "CIFAR-10"),
        SolutionRow("CKKS (FHE) [27]", False, 65536, 1501, "separated (Taylor)",
                    _ct_bytes(65536, 1501), int(2.1 * 2**30), "CIFAR-10"),
        SolutionRow("BFV+FBS (Athena)", True, ATHENA.n, ATHENA.q.bit_length(),
                    "merged (FBS)", ATHENA.ciphertext_bytes,
                    athena_key_material_bytes(ATHENA), "CIFAR-10"),
    ]
    return rows


def render_table1() -> str:
    rows = [
        (r.method, "Q" if r.quantized else "NQ", r.degree, r.logq, r.bootstrapping,
         f"{r.ciphertext_bytes / 2**20:.2f} MiB", f"{r.key_bytes / 2**20:.0f} MiB", r.dataset)
        for r in table1()
    ]
    return render_table(
        ["method", "quant", "degree", "log2Q", "B & NL", "cipher", "keys", "dataset"],
        rows,
        "Table 1: CNN-under-FHE solutions (sizes derived from parameters)",
    )


# -- Table 2: encoding valid-data ratios --------------------------------------------


def table2(n_athena: int = ATHENA.n, n_cheetah: int = 4096):
    """(shape, cheetah_ratio, athena_ratio) per Table 2 layer; Cheetah is
    evaluated at its native degree 4096, Athena at 2^15."""
    out = []
    for shape in TABLE2_SHAPES:
        c = cheetah_plan(shape, n_cheetah)
        a = athena_plan(shape, n_athena)
        out.append((shape, c, a))
    return out


def render_table2() -> str:
    rows = [
        (s.describe(), f"{c.valid_ratio * 100:.2f}%", f"{a.valid_ratio * 100:.2f}%",
         c.result_cts, a.result_cts)
        for s, c, a in table2()
    ]
    return render_table(
        ["layer", "cheetah", "athena", "cheetah cts", "athena cts"],
        rows,
        "Table 2: valid-data ratio in result polynomials",
    )


# -- Table 3: complexity -------------------------------------------------------------


def render_table3() -> str:
    rows = [
        (r.solution, r.operation, r.complexity.pmult, r.complexity.cmult, r.complexity.hrot)
        for r in complexity_table3()
    ]
    return render_table(
        ["solution", "operation", "#PMult", "#CMult", "#HRot"],
        rows,
        "Table 3: computational complexity (concrete counts at paper defaults)",
    )


# -- Table 4: noise budget --------------------------------------------------------------


def render_table4() -> str:
    rows = []
    for step in noise_table4(ATHENA):
        rows.append(
            (step.step, step.pmult_depth, step.cmult_depth, step.smult_depth,
             step.hadd_depth, f"{step.noise_bits:.0f}",
             PAPER_TABLE4.get(step.step, "-"))
        )
    footer = (
        f"budget log2(Delta/2) = {budget_bits(ATHENA):.0f} bits; "
        f"correct: {is_correct(ATHENA)}"
    )
    return render_table(
        ["step", "PMult", "CMult", "SMult", "HAdd", "noise(bits)", "paper"],
        rows,
        "Table 4: noise consumed per Athena step",
    ) + "\n" + footer


# -- Table 5: accuracy ------------------------------------------------------------------


def _table5_row(name: str, test_size: int, seed: int):
    """One model's accuracy sweep (module-level so process pools can run it)."""
    entry = get_benchmark(name, seed=seed)
    x = entry.data["x_test"][:test_size]
    y = entry.data["y_test"][:test_size]
    row = {"plain-G": entry.float_accuracy}
    for label, qm in entry.quantized.items():
        engine = SimulatedAthenaEngine(qm, ATHENA, seed=seed + 7)
        row[f"plain-Q {label}"] = qm.accuracy(x, y)
        row[f"cipher {label}"] = engine.accuracy(x, y)
    return name, row


def table5(models=("mnist_cnn", "lenet", "resnet20", "resnet56"), test_size: int = 512,
           seed: int = 0, pmap: ParallelMap | None = None):
    """plain-G / plain-Q / cipher accuracy per model and quant mode.

    The per-model sweeps are independent; they fan out through ``pmap``
    (default: :class:`ParallelMap` from the ``REPRO_EXECUTOR`` /
    ``REPRO_WORKERS`` environment) and come back in input order.
    """
    pmap = pmap if pmap is not None else ParallelMap()
    rows = pmap.starmap(_table5_row, [(name, test_size, seed) for name in models])
    return dict(rows)


def render_table5(**kwargs) -> str:
    data = table5(**kwargs)
    headers = ["model", "plain-G", "plain-Q w7a7", "cipher w7a7", "gap",
               "plain-Q w6a7", "cipher w6a7", "gap"]
    rows = []
    for name, r in data.items():
        rows.append((
            name, f"{r['plain-G'] * 100:.2f}",
            f"{r['plain-Q w7a7'] * 100:.2f}", f"{r['cipher w7a7'] * 100:.2f}",
            f"{(r['cipher w7a7'] - r['plain-Q w7a7']) * 100:+.2f}",
            f"{r['plain-Q w6a7'] * 100:.2f}", f"{r['cipher w6a7'] * 100:.2f}",
            f"{(r['cipher w6a7'] - r['plain-Q w6a7']) * 100:+.2f}",
        ))
    return render_table(headers, rows, "Table 5: accuracy (%), plain vs cipher")


# -- Tables 6 & 7 (accelerator) -----------------------------------------------------------


def render_table6() -> str:
    data = accel_baselines.table6()
    headers = ["accelerator", "lenet", "mnist_cnn", "resnet20", "resnet56"]
    rows = []
    for arch, row in data.items():
        paper = accel_baselines.PAPER_TABLE6.get(arch, {})
        rows.append([arch] + [
            f"{row[m]:.1f} ({paper.get(m, '-')})"
            for m in ("lenet", "mnist_cnn", "resnet20", "resnet56")
        ])
    return render_table(headers, rows, "Table 6: runtime ms, ours (paper)")


def render_table7() -> str:
    data = accel_baselines.table7()
    headers = ["accelerator", "lenet", "mnist_cnn", "resnet20", "resnet56"]
    rows = []
    for arch, row in data.items():
        paper = accel_baselines.PAPER_TABLE7.get(arch, {})
        rows.append([arch] + [
            f"{row[m]:.3f} ({paper.get(m, '-')})"
            for m in ("lenet", "mnist_cnn", "resnet20", "resnet56")
        ])
    return render_table(headers, rows, "Table 7: EDP J*s, ours (paper)")


# -- Table 8: memory ---------------------------------------------------------------------


def render_table8() -> str:
    rows = [
        (cfg.name, f"{cfg.hbm_gb:.0f} GB", f"{cfg.hbm_bw_tbs:.0f} TB/s",
         f"{cfg.scratchpad_mb:.0f}+{cfg.scratchpad_reg_mb:.0f} MB",
         f"{cfg.scratchpad_bw_tbs:.0f} TB/s")
        for cfg in ALL_CONFIGS
    ]
    return render_table(
        ["accelerator", "HBM cap", "HBM BW", "scratchpad", "scratch BW"],
        rows,
        "Table 8: memory systems",
    )


# -- Table 9: area & power ------------------------------------------------------------------


def render_table9() -> str:
    rows = [(u.name, u.area_mm2, u.power_w) for u in ATHENA_ACCEL.units]
    rows.append(("TOTAL", ATHENA_ACCEL.area_mm2, ATHENA_ACCEL.power_w))
    for cfg in ALL_CONFIGS[1:]:
        rows.append((cfg.name, cfg.area_mm2, cfg.power_w))
    return render_table(
        ["component", "area mm^2", "peak power W"],
        rows,
        "Table 9: Athena area/power breakdown (@1 GHz, 7 nm) + baselines",
    )
