"""Tiny ASCII table renderer used by every experiment driver and bench."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with a one-line title."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
