"""Trained-and-quantized model zoo with on-disk caching.

Accuracy experiments (Table 5, Fig. 4, Fig. 12) need trained models; this
module trains each benchmark once on the synthetic datasets and caches the
quantized IR under ``artifacts/``. ResNets default to reduced widths so the
full experiment suite runs in minutes — the plaintext-vs-ciphertext *gap*
the paper measures is width-independent (the noise model acts per MAC
value, not per channel). Widths/epochs are overridable for full-size runs.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data import load_dataset
from repro.quant.models import build
from repro.quant.nn import Sgd, accuracy, train_epoch
from repro.quant.quantize import QuantConfig, QuantizedModel, quantize_model

ARTIFACTS = Path(os.environ.get("REPRO_ARTIFACTS", Path(__file__).resolve().parents[3] / "artifacts"))

#: Per-model training recipe: (width, epochs, lr, train_size).
RECIPES = {
    "mnist_cnn": (1.0, 8, 0.05, 3000),
    "lenet": (1.0, 10, 0.05, 3000),
    "resnet20": (0.5, 4, 0.05, 1536),
    "resnet56": (0.35, 3, 0.05, 1024),
}


@dataclass
class ZooEntry:
    name: str
    float_model: object
    quantized: dict[str, QuantizedModel]  # keyed by wXaY label
    data: dict[str, np.ndarray]
    float_accuracy: float


def _cache_path(name: str) -> Path:
    return ARTIFACTS / f"{name}.pkl"


def _strip_training_caches(layer) -> None:
    """Null out forward caches (im2col patches etc.) before pickling —
    they dominate the serialized size and are rebuilt on demand."""
    for attr in ("_cache", "_x", "_mask", "_shape", "_out"):
        if hasattr(layer, attr):
            setattr(layer, attr, None)
    for child_attr in ("layers",):
        for child in getattr(layer, child_attr, []) or []:
            _strip_training_caches(child)
    for child_attr in ("body", "shortcut", "relu"):
        child = getattr(layer, child_attr, None)
        if child is not None:
            _strip_training_caches(child)


def train_benchmark(name: str, seed: int = 0) -> ZooEntry:
    width, epochs, lr, train_size = RECIPES[name]
    data = load_dataset(name, train=train_size, test=512, seed=seed)
    rng = np.random.default_rng(seed)
    model = build(name, rng=np.random.default_rng(seed + 1), width=width)
    opt = Sgd(lr=lr)
    for _ in range(epochs):
        train_epoch(model, data["x_train"], data["y_train"], opt, rng=rng)
    fa = accuracy(model, data["x_test"], data["y_test"])
    calib = data["x_train"][:256]
    quantized = {}
    for (wb, ab) in ((7, 7), (6, 7)):
        cfg = QuantConfig(wb, ab)
        qm = quantize_model(model, calib, cfg, name)
        qm.forward_float(data["x_train"][:256])  # populate MAC peaks
        quantized[cfg.label] = qm
    return ZooEntry(name, model, quantized, data, fa)


def get_benchmark(name: str, seed: int = 0, refresh: bool = False) -> ZooEntry:
    """Load from cache or train; cache under artifacts/."""
    path = _cache_path(f"{name}-{seed}")
    if path.exists() and not refresh:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    entry = train_benchmark(name, seed)
    _strip_training_caches(entry.float_model)
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        pickle.dump(entry, fh)
    return entry
