"""Executor abstraction for embarrassingly-parallel pipeline stages.

The five-step loop of the Athena pipeline is independent per output
ciphertext, and the evaluation sweeps are independent per model.
:class:`ParallelMap` gives those call sites one ``map`` entry point whose
backend — serial loop, thread pool, or process pool — is chosen by an
:class:`ExecConfig`, normally built from the environment:

- ``REPRO_EXECUTOR`` in ``{"serial", "thread", "process"}`` (default serial)
- ``REPRO_WORKERS``  worker count (default ``os.cpu_count()``)

Serial is the default because at test-scale parameters the numpy kernels
are faster than pool startup; the thread backend helps once per-item work
dominates (numpy releases the GIL inside large ufuncs), and the process
backend needs picklable functions (module-level, not closures).
"""

from __future__ import annotations

import contextvars
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ParameterError

T = TypeVar("T")
R = TypeVar("R")

_MODES = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecConfig:
    """How a ParallelMap runs: executor mode, worker count, and the default
    op-dispatch backend *name* for the work it fans out.

    ``backend`` is a :func:`repro.fhe.backend.get_backend` name (e.g.
    ``"batched"``, ``"batched-unfused"``, ``"serial"``, ``"counting"``) or
    ``None`` to inherit the ambient default. It is carried as a string so
    the config stays picklable across process pools. Precedence at a serve
    call site: an explicit per-tenant pin (``Tenant.backend``) wins over
    this config's backend, which wins over the ``REPRO_BACKEND``
    environment default, which wins over the built-in ``"batched"``.
    """

    mode: str = "serial"
    workers: int | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ParameterError(
                f"executor mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ParameterError(f"worker count must be >= 1, got {self.workers}")
        if self.backend is not None:
            # Validate eagerly (unknown names raise ParameterError) but keep
            # only the name: instances are context-local, names pickle.
            from repro.fhe.backend import get_backend

            get_backend(self.backend)

    @classmethod
    def from_env(cls, env: dict[str, str] | None = None) -> "ExecConfig":
        """Build from ``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` / ``REPRO_BACKEND``
        (os.environ default)."""
        env = os.environ if env is None else env
        mode = env.get("REPRO_EXECUTOR", "serial").strip().lower() or "serial"
        raw = env.get("REPRO_WORKERS", "").strip()
        workers = int(raw) if raw else None
        backend = env.get("REPRO_BACKEND", "").strip().lower() or None
        return cls(mode=mode, workers=workers, backend=backend)

    @property
    def effective_workers(self) -> int:
        return self.workers if self.workers is not None else (os.cpu_count() or 1)


class ParallelMap:
    """Order-preserving map over independent items with a pluggable backend."""

    def __init__(self, config: ExecConfig | None = None):
        self.config = config if config is not None else ExecConfig.from_env()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, returning results in input order.

        A single-item (or empty) input short-circuits to the serial path so
        callers never pay pool startup for degenerate fan-outs.

        Thread mode propagates the caller's :mod:`contextvars` context into
        each worker invocation (one fresh copy per item — a Context object
        cannot be entered concurrently), so context-local state such as the
        active :func:`repro.fhe.backend.use_backend` selection follows the
        fan-out. Process mode cannot (contexts are not picklable); code
        needing a specific backend across processes must install it inside
        the mapped function, as :class:`AthenaPipeline`'s methods do.
        """
        items = list(items)
        mode = self.config.mode
        if mode == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        workers = min(self.config.effective_workers, len(items))
        if mode == "thread":
            tasks = [(contextvars.copy_context(), item) for item in items]
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(partial(_ctx_apply, fn), tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))

    def starmap(self, fn: Callable[..., R], items: Iterable[Sequence]) -> list[R]:
        return self.map(partial(_star_apply, fn), list(items))


def _star_apply(fn: Callable[..., R], args: Sequence) -> R:
    """Module-level splat helper so starmap stays picklable for process pools."""
    return fn(*args)


def _ctx_apply(fn: Callable[[T], R], task: tuple) -> R:
    """Run one mapped item inside the caller's copied contextvars context."""
    ctx, item = task
    return ctx.run(fn, item)
