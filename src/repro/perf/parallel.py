"""Executor abstraction for embarrassingly-parallel pipeline stages.

The five-step loop of the Athena pipeline is independent per output
ciphertext, and the evaluation sweeps are independent per model.
:class:`ParallelMap` gives those call sites one ``map`` entry point whose
backend — serial loop, thread pool, or process pool — is chosen by an
:class:`ExecConfig`, normally built from the environment:

- ``REPRO_EXECUTOR`` in ``{"serial", "thread", "process"}`` (default serial)
- ``REPRO_WORKERS``  worker count (default ``os.cpu_count()``)

Serial is the default because at test-scale parameters the numpy kernels
are faster than pool startup; the thread backend helps once per-item work
dominates (numpy releases the GIL inside large ufuncs), and the process
backend needs picklable functions (module-level, not closures).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ParameterError

T = TypeVar("T")
R = TypeVar("R")

_MODES = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecConfig:
    """How a ParallelMap runs: backend mode plus worker count."""

    mode: str = "serial"
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ParameterError(
                f"executor mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ParameterError(f"worker count must be >= 1, got {self.workers}")

    @classmethod
    def from_env(cls, env: dict[str, str] | None = None) -> "ExecConfig":
        """Build from ``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` (os.environ default)."""
        env = os.environ if env is None else env
        mode = env.get("REPRO_EXECUTOR", "serial").strip().lower() or "serial"
        raw = env.get("REPRO_WORKERS", "").strip()
        workers = int(raw) if raw else None
        return cls(mode=mode, workers=workers)

    @property
    def effective_workers(self) -> int:
        return self.workers if self.workers is not None else (os.cpu_count() or 1)


class ParallelMap:
    """Order-preserving map over independent items with a pluggable backend."""

    def __init__(self, config: ExecConfig | None = None):
        self.config = config if config is not None else ExecConfig.from_env()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, returning results in input order.

        A single-item (or empty) input short-circuits to the serial path so
        callers never pay pool startup for degenerate fan-outs.
        """
        items = list(items)
        mode = self.config.mode
        if mode == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        workers = min(self.config.effective_workers, len(items))
        pool_cls = ThreadPoolExecutor if mode == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=workers) as pool:
            return list(pool.map(fn, items))

    def starmap(self, fn: Callable[..., R], items: Iterable[Sequence]) -> list[R]:
        return self.map(partial(_star_apply, fn), list(items))


def _star_apply(fn: Callable[..., R], args: Sequence) -> R:
    """Module-level splat helper so starmap stays picklable for process pools."""
    return fn(*args)
