"""Performance instrumentation and parallel execution for the pipeline.

- :class:`PerfRecorder` — phase wall-times + op counters, attachable to
  :class:`repro.core.framework.AthenaPipeline` and
  :func:`repro.core.program.run_program`.
- :class:`ExecConfig` / :class:`ParallelMap` — serial/thread/process map
  over independent work items, driven by ``REPRO_EXECUTOR``/``REPRO_WORKERS``.
- :mod:`repro.perf.bench` — the ``repro bench`` harness emitting
  ``BENCH_pipeline.json``.
"""

from repro.perf.parallel import ExecConfig, ParallelMap
from repro.perf.recorder import PerfRecorder

__all__ = ["ExecConfig", "ParallelMap", "PerfRecorder"]
