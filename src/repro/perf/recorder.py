"""Lightweight performance counters for the execution engine.

:class:`PerfRecorder` accumulates wall-time per named phase plus arbitrary
op counters. It is attachable to :class:`repro.core.framework.AthenaPipeline`
and :func:`repro.core.program.run_program`; the ``repro bench`` harness
serializes its summary into ``BENCH_pipeline.json``.

Contract: phases opened through :meth:`phase` at the same nesting level are
disjoint, so their durations sum to (at most) the enclosing wall time; the
test suite pins this accounting. The recorder is thread-safe — the parallel
fan-out of :class:`repro.perf.parallel.ParallelMap` may close phases from
worker threads.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class PerfRecorder:
    """Wall-time per phase + op counters, accumulated across ops."""

    phase_s: dict[str, float] = field(default_factory=dict)
    ops: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _wall: float = field(default=0.0, repr=False)
    _wall_started: float | None = field(default=None, repr=False)

    @contextmanager
    def phase(self, name: str):
        """Time a code region under ``name`` (re-entrant across calls)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.phase_s[name] = self.phase_s.get(name, 0.0) + elapsed

    @contextmanager
    def run(self):
        """Time one top-level run; phases recorded inside nest under it."""
        start = time.perf_counter()
        self._wall_started = start
        try:
            yield
        finally:
            with self._lock:
                self._wall += time.perf_counter() - start
                self._wall_started = None

    def count(self, name: str, k: int = 1) -> None:
        with self._lock:
            self.ops[name] = self.ops.get(name, 0) + k

    def add_time(self, name: str, seconds: float) -> None:
        """Credit an externally-measured duration to a phase."""
        with self._lock:
            self.phase_s[name] = self.phase_s.get(name, 0.0) + seconds

    @property
    def wall_s(self) -> float:
        """Total wall time: explicit run() spans, else the phase sum."""
        return self._wall if self._wall else self.total_phase_s

    @property
    def total_phase_s(self) -> float:
        return sum(self.phase_s.values())

    def reset(self) -> None:
        with self._lock:
            self.phase_s.clear()
            self.ops.clear()
            self._wall = 0.0

    def summary(self) -> dict:
        """JSON-ready snapshot (the BENCH_pipeline.json record body)."""
        return {
            "wall_s": round(self.wall_s, 6),
            "phase_s": {k: round(v, 6) for k, v in sorted(self.phase_s.items())},
            "ops": dict(sorted(self.ops.items())),
        }

    def merge(self, other: "PerfRecorder") -> None:
        """Fold another recorder's counters into this one.

        ``other`` is snapshotted under its own lock first (it may still be
        receiving counts from worker threads), then folded in under ours —
        the two locks are never held together, so concurrent cross-merges
        cannot deadlock.
        """
        if other is self:
            return
        with other._lock:
            phase_s = dict(other.phase_s)
            ops = dict(other.ops)
            wall = other._wall
        with self._lock:
            for k, v in phase_s.items():
                self.phase_s[k] = self.phase_s.get(k, 0.0) + v
            for k, v in ops.items():
                self.ops[k] = self.ops.get(k, 0) + v
            self._wall += wall

    # Recorders cross process-executor boundaries (a worker returns its
    # private recorder for the parent to merge); the lock itself cannot be
    # pickled, so it is dropped in transit and recreated on arrival.
    def __getstate__(self) -> dict:
        with self._lock:
            return {
                "phase_s": dict(self.phase_s),
                "ops": dict(self.ops),
                "_wall": self._wall,
            }

    def __setstate__(self, state: dict) -> None:
        self.phase_s = state["phase_s"]
        self.ops = state["ops"]
        self._wall = state["_wall"]
        self._wall_started = None
        self._lock = threading.Lock()
