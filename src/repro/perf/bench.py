"""The ``repro bench`` harness: pipeline + RNS microbenchmarks.

Two benchmarks, both emitted into ``BENCH_pipeline.json`` as a list of
records with the schema::

    {bench, params, wall_s, phase_s, ops, speedup_vs_serial}

- ``mnist_cnn``     — an end-to-end encrypted run of a tiny MNIST-style CNN
  (conv -> flatten -> fc, the shape the loop tests pin) through
  :class:`AthenaPipeline` at ``TEST_LOOP`` parameters, phase times recorded
  by :class:`PerfRecorder`.
- ``resnet20_block``— the RNS polynomial op mix of one ResNet-20 residual
  block (PMult poly products, FBS scalar ladder, packing automorphisms,
  additions), scaled to reduced parameters.

Both benches run through a :class:`repro.fhe.backend.CountingBackend`
wrapping the measured backend (``batched`` by default, regardless of the
``REPRO_BACKEND`` environment default — the speedup assertions pin the
batched engine), so each record also carries ``phase_ops``: the homomorphic
primitives *actually dispatched* per pipeline phase, in the same units as
the analytical trace model (:mod:`repro.core.trace`).

``speedup_vs_serial`` reruns the identical workload under
``use_backend("serial")`` (the frozen per-prime reference loop) and reports
serial/measured wall time. The win comes from amortizing Python dispatch
and numpy call overhead across limbs, so it is largest in the small-ring /
many-limb regime these benches run in — at large N the butterfly arithmetic
dominates and the ratio approaches 1.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.framework import AthenaPipeline, LoopCost
from repro.core.program import lower
from repro.core.trace import EXECUTED_FIELDS, executed_trace
from repro.fhe.backend import CountingBackend, use_backend
from repro.fhe.params import TEST_LOOP, FheParams
from repro.fhe.poly import RnsPoly
from repro.perf.recorder import PerfRecorder
from repro.quant.quantize import (
    QConv,
    QFlatten,
    QLinear,
    QuantConfig,
    QuantizedModel,
)

#: Record keys of one BENCH_pipeline.json entry.
BENCH_SCHEMA = (
    "bench", "params", "wall_s", "phase_s", "ops", "phase_ops",
    "speedup_vs_serial",
)

#: Default output filename (CI uploads this artifact).
BENCH_FILENAME = "BENCH_pipeline.json"

#: Default executed-trace artifact filename (``repro bench --trace-out``).
TRACE_FILENAME = "TRACE_executed.json"


def _params_info(params: FheParams, backend: str) -> dict:
    return {
        "n": params.n,
        "limbs": len(params.moduli),
        "t": params.t,
        "backend": backend,
    }


def mnist_cnn_micro(rng: np.random.Generator) -> QuantizedModel:
    """conv(1->2, k3) on 6x6 -> flatten -> fc(32->3), sized for TEST_LOOP.

    The canonical micro model of the bench harness, the loop tests, and the
    ``repro compile`` CLI — always built from a caller-seeded generator so
    every consumer compiles the byte-identical model (same fingerprint)."""
    cfg = QuantConfig(4, 4, t=TEST_LOOP.t)
    conv = QConv(
        weight=rng.integers(-2, 3, (2, 1, 3, 3)).astype(np.int64),
        bias=rng.integers(-4, 5, 2).astype(np.int64),
        stride=1, pad=0, in_scale=1.0, w_scale=1.0, out_scale=12.0,
        activation="relu", in_shape=(1, 6, 6), out_shape=(2, 4, 4),
    )
    fc_w = rng.integers(-1, 2, (3, 32)).astype(np.int64)
    fc_w[:, rng.permutation(32)[:16]] = 0
    fc = QLinear(
        weight=fc_w, bias=rng.integers(-3, 4, 3).astype(np.int64),
        in_scale=1.0, w_scale=1.0, out_scale=2.0, activation="identity",
        in_features=32, out_features=3,
    )
    return QuantizedModel(
        [conv, QFlatten(), fc], cfg, 1.0, (1, 6, 6), name="mnist_cnn_micro"
    )


def resnet_block_micro(rng: np.random.Generator) -> QuantizedModel:
    """conv -> projection residual (stride-2 downsample) -> fc, TEST_LOOP-sized.

    The residual-family companion to :func:`mnist_cnn_micro`: a stem conv,
    one paper-style basic block with a strided body and a 1x1 projection
    shortcut, and a small head. Exercises the placed-layout compile path
    (both branches refresh into the join layout) that the plain micro model
    never reaches, so the tuner/bench harness covers both plan families.
    """
    from repro.quant.quantize import QResidual

    cfg = QuantConfig(4, 4, t=TEST_LOOP.t)

    def conv(cin, cout, k, stride, pad, hw, act, out_scale):
        oh = (hw + 2 * pad - k) // stride + 1
        return QConv(
            weight=rng.integers(-2, 3, (cout, cin, k, k)).astype(np.int64),
            bias=rng.integers(-2, 3, cout).astype(np.int64),
            stride=stride, pad=pad, in_scale=1.0, w_scale=1.0,
            out_scale=out_scale, activation=act,
            in_shape=(cin, hw, hw), out_shape=(cout, oh, oh),
        )

    stem = conv(1, 1, 3, 1, 0, 6, "relu", 8.0)
    block = QResidual(
        body=[conv(1, 2, 3, 2, 1, 4, "identity", 6.0)],
        shortcut=[conv(1, 2, 1, 2, 0, 4, "identity", 6.0)],
        add_scale=1.0, out_scale=2.0, skip_alpha=1,
    )
    # Coarse head scale: the fc sums 8 join outputs, so its output step
    # must cover the summed per-branch refresh noise or the micro model
    # amplifies TEST_LOOP's (deliberately large) noise into its logits.
    fc = QLinear(
        weight=rng.integers(-1, 2, (3, 8)).astype(np.int64),
        bias=rng.integers(-2, 3, 3).astype(np.int64),
        in_scale=1.0, w_scale=1.0, out_scale=4.0, activation="identity",
        in_features=8, out_features=3,
    )
    return QuantizedModel(
        [stem, block, QFlatten(), fc], cfg, 1.0, (1, 6, 6),
        name="resnet_block_micro",
    )


def bench_mnist_cnn(
    seed: int = 41,
    compare_serial: bool = True,
    backend: str = "batched",
    counting: CountingBackend | None = None,
    compare_unfused: bool = True,
) -> dict:
    """End-to-end encrypted MNIST-CNN run at TEST_LOOP parameters.

    Emits the compile/runtime split alongside the phase times: ``wall_s``
    is the *cold* per-request cost (the program is compiled inside the run
    span, under the ``compile`` phase), ``compile_s`` / ``warm_run_s`` come
    from an :class:`~repro.serve.InferenceSession` answering the same
    request twice from its precompiled plan. A warm request must beat the
    cold one — ``benchmarks/bench_pipeline.py`` and the CI smoke job assert
    ``warm_run_s < wall_s``.

    The cold run dispatches through a :class:`CountingBackend` wrapping
    ``backend``, so ``record["ops"]`` are the primitives actually executed
    (plus the ``fbs_cmult``/``fbs_smult`` ladder counters from
    :class:`LoopCost`) and ``record["phase_ops"]`` splits them per pipeline
    phase. Pass ``counting`` to keep the populated wrapper for an executed
    trace (``run_benches`` does, for ``--trace-out``).

    When measuring the default fused ``batched`` backend, a third run
    under ``batched-unfused`` (same counting-wrapper setup, fused tier
    decomposed to primitives) adds ``fbs_unfused_s`` and
    ``fbs_fused_speedup`` — the CI kernel gate asserts the fused FBS phase
    beats the unfused baseline.
    """
    if backend == "counting":  # counting wraps batched; avoid double-wrap
        backend = "batched"
    rng = np.random.default_rng(5)
    qm = mnist_cnn_micro(rng)
    x_q = rng.integers(-3, 4, (1, 6, 6)).astype(np.int64)
    program = lower(qm, TEST_LOOP)

    if counting is None:
        counting = CountingBackend(backend)
    perf = PerfRecorder()
    pipe = AthenaPipeline(TEST_LOOP, seed=seed, perf=perf)
    cost = LoopCost()
    with use_backend(counting):
        pipe.run_program(program, x_q, cost)
    counts = counting.summary()
    record = {
        "bench": "mnist_cnn",
        "params": _params_info(TEST_LOOP, counting.rns_name),
        **perf.summary(),
        "phase_ops": counts["phase_ops"],
        "speedup_vs_serial": None,
    }
    record["ops"] = dict(counts["ops"])
    record["ops"]["fbs_cmult"] = cost.fbs.cmult
    record["ops"]["fbs_smult"] = cost.fbs.smult

    from repro.serve import InferenceSession

    session = InferenceSession(program, TEST_LOOP, seed=seed, backend=backend)
    warm_runs = []
    for _ in range(2):
        session.run(x_q)
        warm_runs.append(session.last_perf.wall_s)
    # The warm<cold invariant the smoke checks pin rides on a small
    # structural margin (the in-span compile phase); a loaded machine can
    # drown it in scheduler noise, so take a couple of extra warm samples
    # before giving up — warm_run_s is the min over samples either way.
    while min(warm_runs) >= record["wall_s"] and len(warm_runs) < 4:
        session.run(x_q)
        warm_runs.append(session.last_perf.wall_s)
    record["compile_s"] = round(session.compile_s, 6)
    record["warm_run_s"] = round(min(warm_runs), 6)

    if compare_serial:
        pipe.attach_perf(None)
        with use_backend("serial"):
            start = time.perf_counter()
            pipe.run_program(program, x_q)
            serial_s = time.perf_counter() - start
        record["speedup_vs_serial"] = round(serial_s / record["wall_s"], 3)

    if compare_unfused and backend == "batched":
        # Same harness, fused tier decomposed to primitives: the delta is
        # exactly the fused-kernel win on the FBS hot path.
        unfused_perf = PerfRecorder()
        unfused_pipe = AthenaPipeline(TEST_LOOP, seed=seed, perf=unfused_perf)
        with use_backend(CountingBackend("batched-unfused")):
            unfused_pipe.run_program(program, x_q)
        unfused_fbs = unfused_perf.summary()["phase_s"].get("fbs", 0.0)
        fused_fbs = record["phase_s"].get("fbs", 0.0)
        record["fbs_unfused_s"] = round(unfused_fbs, 6)
        record["fbs_fused_speedup"] = (
            round(unfused_fbs / fused_fbs, 3) if fused_fbs else None
        )
    return record


#: Per-repetition RNS op mix of one ResNet-20 residual block, scaled down:
#: two 3x3 convs are 2 PMults = 4 poly products (c0/c1 each), the FBS
#: scalar ladder dominates SMult/HAdd, packing contributes automorphisms.
_BLOCK_MIX = {"mul": 8, "add": 96, "scalar_mul": 96, "automorphism": 16}


def bench_resnet20_block(
    params: FheParams = TEST_LOOP, reps: int = 10, seed: int = 7,
    compare_serial: bool = True, backend: str = "batched",
) -> dict:
    """RNS op mix of one ResNet-20 block, ``backend`` vs per-prime serial.

    ``record["ops"]`` keeps the workload descriptor (the ``_BLOCK_MIX`` op
    mix times ``reps``); ``record["phase_ops"]`` adds the primitive units
    the measured pass actually dispatched (NTTs per limb, elementwise
    mod-muls/adds), counted by a :class:`CountingBackend`.
    """
    if backend == "counting":
        backend = "batched"
    rng = np.random.default_rng(seed)

    def fresh():
        return RnsPoly.from_int_coeffs(
            rng.integers(0, params.t, params.n).astype(np.int64), params.moduli
        )

    a, b = fresh(), fresh()

    def one_pass(perf: PerfRecorder | None) -> float:
        x, y = a, b
        start = time.perf_counter()
        for _ in range(reps):
            for _ in range(_BLOCK_MIX["mul"]):
                x = x * y
            for _ in range(_BLOCK_MIX["add"]):
                x = x + y
            for _ in range(_BLOCK_MIX["scalar_mul"]):
                x = x.scalar_mul(3)
            for k in range(_BLOCK_MIX["automorphism"]):
                x = x.automorphism(2 * k + 3)
        elapsed = time.perf_counter() - start
        if perf is not None:
            perf.add_time("rns_ops", elapsed)
            for op, count in _BLOCK_MIX.items():
                perf.count(op, count * reps)
        return elapsed

    counting = CountingBackend(backend)
    perf = PerfRecorder()
    with perf.run():
        with use_backend(counting), counting.phase("rns_ops"):
            measured_s = one_pass(perf)
    record = {
        "bench": "resnet20_block",
        "params": {**_params_info(params, counting.rns_name), "reps": reps},
        **perf.summary(),
        "phase_ops": counting.ops_by_phase(),
        "speedup_vs_serial": None,
    }
    if compare_serial:
        with use_backend("serial"):
            serial_s = one_pass(None)
        record["speedup_vs_serial"] = round(serial_s / measured_s, 3)
    return record


def executed_trace_payload(
    counting: CountingBackend, params: FheParams = TEST_LOOP,
    model: str = "mnist_cnn_micro",
) -> dict:
    """JSON-ready executed trace of a populated :class:`CountingBackend`.

    The per-phase rows use the analytical trace model's primitive units
    (see :data:`repro.core.trace.EXECUTED_FIELDS`), so the artifact feeds
    :func:`repro.accel.scheduler.schedule_executed` directly.
    """
    trace = executed_trace(counting, params, model=model)
    totals = trace.totals()
    return {
        "model": model,
        "params": _params_info(params, counting.rns_name),
        "phases": {
            p.phase: {f: getattr(p.ops, f) for f in EXECUTED_FIELDS}
            for p in trace.phases
        },
        "totals": {f: getattr(totals, f) for f in EXECUTED_FIELDS},
        "events": counting.totals(),
    }


def run_benches(
    out: str | Path | None = BENCH_FILENAME,
    quick: bool = False,
    seed: int = 41,
    backend: str = "batched",
    trace_out: str | Path | None = None,
) -> list[dict]:
    """Run both benchmarks; write ``out`` (unless None) and return records.

    ``quick`` shrinks the microbench repetitions for CI smoke jobs; both
    records are still emitted with the full schema. ``backend`` selects the
    measured dispatch backend (the serial-comparison rerun always uses the
    frozen per-prime loop). ``trace_out`` additionally writes the MNIST
    run's executed-op trace (``TRACE_executed.json`` in CI).
    """
    if backend == "counting":
        backend = "batched"
    counting = CountingBackend(backend)
    records = [
        bench_mnist_cnn(seed=seed, backend=backend, counting=counting),
        bench_resnet20_block(reps=3 if quick else 10, backend=backend),
    ]
    for record in records:
        missing = [k for k in BENCH_SCHEMA if k not in record]
        if missing:  # pragma: no cover - schema regression guard
            raise RuntimeError(f"bench record missing keys: {missing}")
    if out is not None:
        Path(out).write_text(json.dumps(records, indent=2) + "\n")
    if trace_out is not None:
        payload = executed_trace_payload(counting)
        Path(trace_out).write_text(json.dumps(payload, indent=2) + "\n")
    return records


# -- fused-kernel microbenches -------------------------------------------------

#: Default output filename of :func:`run_kernel_bench` (CI uploads it).
BENCH_KERNELS_FILENAME = "BENCH_kernels.json"

#: Record keys of one BENCH_kernels.json entry.
KERNEL_BENCH_SCHEMA = ("bench", "params", "reps", "fused_s", "unfused_s",
                       "speedup")


def _best_of(fn, reps: int) -> float:
    """Minimum wall time of ``fn`` over ``reps`` calls (noise-robust)."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_kernel_bench(
    out: str | Path | None = BENCH_KERNELS_FILENAME,
    quick: bool = False,
    seed: int = 41,
) -> list[dict]:
    """Microbenches of the fused FBS kernels against their decomposed forms.

    Three records, each timing the fused :class:`BatchedBackend` kernel and
    the primitive-decomposed default (:class:`UnfusedBatchedBackend`) on
    identical TEST_LOOP inputs:

    * ``ntt_stack``         — one (D, L, N) batched forward NTT vs D
      separate (L, N) calls (the transform under every fused keyswitch);
    * ``rotate_keyswitch``  — fused automorphism + NTT-domain keyswitch vs
      the rotate-then-digit-loop decomposition;
    * ``giant_step_batch``  — G giant-step relinearizations through one
      stacked (G, D, L, N) pipeline vs G sequential CMult+keyswitch calls.

    ``speedup`` is unfused/fused; values > 1 mean fusion wins. The records
    are informational — the CI gate rides on the end-to-end FBS phase
    comparison in :func:`bench_mnist_cnn` (``fbs_fused_speedup``).
    """
    from repro.fhe.backend import BATCHED, BATCHED_UNFUSED
    from repro.fhe.bfv import BfvContext, Plaintext
    from repro.fhe.keys import gadget_digit_rows
    from repro.fhe.ntt import ntt_forward_rns
    from repro.fhe.slots import rotation_galois_element

    params = TEST_LOOP
    moduli = params.moduli
    reps = 3 if quick else 7
    rng = np.random.default_rng(seed)
    ctx = BfvContext(params, seed=seed)
    sk, pk = ctx.keygen()
    rlk = ctx.relin_key(sk).warm()
    k = rotation_galois_element(params.n, 1)
    gk = ctx.galois_key(sk, k).warm()
    ct_a = ctx.encrypt(
        Plaintext(rng.integers(0, params.t, params.n).astype(np.int64), params), pk
    )
    ct_b = ctx.encrypt(
        Plaintext(rng.integers(0, params.t, params.n).astype(np.int64), params), pk
    )
    info = _params_info(params, "batched")
    records = []

    # 1. Batched-axis NTT: one (D, L, N) call vs D per-digit (L, N) calls.
    digits = gadget_digit_rows(ct_a.c1.data, moduli, rlk.base_bits,
                               rlk.num_digits)
    mods = np.array(moduli, dtype=np.int64)[:, None]
    stacked = np.mod(digits[:, None, :], mods)
    fused_s = _best_of(lambda: ntt_forward_rns(stacked, moduli), reps)
    unfused_s = _best_of(
        lambda: [ntt_forward_rns(stacked[d], moduli)
                 for d in range(stacked.shape[0])],
        reps,
    )
    records.append({
        "bench": "ntt_stack",
        "params": {**info, "digits": rlk.num_digits},
        "reps": reps,
        "fused_s": round(fused_s, 6),
        "unfused_s": round(unfused_s, 6),
        "speedup": round(unfused_s / fused_s, 3),
    })

    # 2. Fused automorphism + keyswitch vs rotate-then-digit-loop.
    fused_s = _best_of(
        lambda: BATCHED.rotate_keyswitch(ct_a.c0.data, ct_a.c1.data, k, gk,
                                         moduli),
        reps,
    )
    unfused_s = _best_of(
        lambda: BATCHED_UNFUSED.rotate_keyswitch(ct_a.c0.data, ct_a.c1.data,
                                                 k, gk, moduli),
        reps,
    )
    records.append({
        "bench": "rotate_keyswitch",
        "params": {**info, "digits": gk.num_digits},
        "reps": reps,
        "fused_s": round(fused_s, 6),
        "unfused_s": round(unfused_s, 6),
        "speedup": round(unfused_s / fused_s, 3),
    })

    # 3. Stacked giant-step relinearization vs sequential CMult+keyswitch.
    pairs = [(ct_a, ct_b)] * (2 if quick else 4)
    fused_s = _best_of(lambda: BATCHED.giant_step_batch(ctx, pairs, rlk), reps)
    unfused_s = _best_of(
        lambda: BATCHED_UNFUSED.giant_step_batch(ctx, pairs, rlk), reps
    )
    records.append({
        "bench": "giant_step_batch",
        "params": {**info, "pairs": len(pairs), "digits": rlk.num_digits},
        "reps": reps,
        "fused_s": round(fused_s, 6),
        "unfused_s": round(unfused_s, 6),
        "speedup": round(unfused_s / fused_s, 3),
    })

    for record in records:
        missing = [key for key in KERNEL_BENCH_SCHEMA if key not in record]
        if missing:  # pragma: no cover - schema regression guard
            raise RuntimeError(f"kernel bench record missing keys: {missing}")
    if out is not None:
        Path(out).write_text(json.dumps(records, indent=2) + "\n")
    return records


# -- autotuner bench -----------------------------------------------------------

#: Default output filename of :func:`run_tune_bench` (CI uploads it).
BENCH_TUNE_FILENAME = "BENCH_tune.json"

#: Autotuner bench subjects: name -> micro model builder.
TUNE_SUBJECTS = ("mnist_cnn", "resnet20_block")


def _measured_run(program, plan, x_q, seed: int, backend: str,
                  params: FheParams = TEST_LOOP):
    """One real-ciphertext run of ``plan``; returns (output, mod_mul, wall_s)."""
    counting = CountingBackend(backend)
    perf = PerfRecorder()
    pipe = AthenaPipeline(params, seed=seed, perf=perf)
    with use_backend(counting):
        out = pipe.run_program(program, x_q, plan=plan)
    measured = executed_trace(counting, params).totals()
    return out, float(measured.mod_mul), perf.summary()["wall_s"]


def bench_tune(
    subject: str = "mnist_cnn",
    chunk: int | None = 16,
    seed: int = 41,
    backend: str = "batched",
) -> dict:
    """Autotune one micro subject and measure the tuned plan against default.

    Compiles the subject twice — default encodings and the autotuner's
    picks — and runs both plans through the real-ciphertext pipeline under
    a :class:`CountingBackend`, so the record carries *predicted* (cost
    model) and *measured* (executed trace) modular-multiplication counts
    plus wall times, and the per-layer chosen encodings. Hard guarantees
    asserted here (CI re-checks them on the artifact):

    * the tuned plan's predicted trace cost never exceeds the default's
      (the tuner always scores the default candidate);
    * the tuned plan's *measured* op count never exceeds the default's;
    * both plans decode the plaintext reference within the pipeline's
      noise tolerance (a tuned plan reroutes refresh tiles, so its noise
      draws differ from the default's — correctness is against the model,
      not bit-for-bit against the other plan).
    """
    from repro.core.plan import compile_program
    from repro.core.tune import tune_program

    builder = (
        resnet_block_micro if subject == "resnet20_block" else mnist_cnn_micro
    )
    qm = builder(np.random.default_rng(5))
    program = lower(qm, TEST_LOOP)
    result = tune_program(program, TEST_LOOP, chunk=chunk)
    report = result.report()

    default_plan = compile_program(program, TEST_LOOP, chunk=chunk)
    tuned_plan = compile_program(
        program, TEST_LOOP, chunk=chunk, tuning=result.tuning
    )
    rng = np.random.default_rng(seed)
    x_q = rng.integers(-2, 3, qm.input_shape).astype(np.int64)
    out_default, mm_default, wall_default = _measured_run(
        program, default_plan, x_q, seed, backend
    )
    out_tuned, mm_tuned, wall_tuned = _measured_run(
        program, tuned_plan, x_q, seed, backend
    )
    if report["predicted_tuned_mod_muls"] > report["predicted_default_mod_muls"]:
        raise RuntimeError(
            f"{subject}: tuned plan predicted cost exceeds default"
        )  # pragma: no cover - tuner invariant
    if mm_tuned > mm_default:
        raise RuntimeError(
            f"{subject}: tuned plan measured mod_muls exceed default "
            f"({mm_tuned} > {mm_default})"
        )
    ref = qm.forward_int(x_q[None])[0].reshape(-1)
    err_default = int(np.abs(out_default - ref).max())
    err_tuned = int(np.abs(out_tuned - ref).max())
    if max(err_default, err_tuned) > 2:
        raise RuntimeError(
            f"{subject}: plan output off plaintext reference "
            f"(default err {err_default}, tuned err {err_tuned})"
        )
    return {
        "bench": subject,
        "model": qm.name,
        "params": _params_info(TEST_LOOP, backend),
        "chunk": chunk,
        "tuning": result.tuning.tag() if result.tuning else "",
        "layers": report["steps"],
        "predicted_default_mod_muls": report["predicted_default_mod_muls"],
        "predicted_tuned_mod_muls": report["predicted_tuned_mod_muls"],
        "measured_default_mod_muls": mm_default,
        "measured_tuned_mod_muls": mm_tuned,
        "default_wall_s": round(wall_default, 6),
        "tuned_wall_s": round(wall_tuned, 6),
        "max_abs_error_default": err_default,
        "max_abs_error_tuned": err_tuned,
        "fingerprints_differ": tuned_plan.model_hash != default_plan.model_hash,
    }


def run_tune_bench(
    out: str | Path | None = BENCH_TUNE_FILENAME,
    chunk: int | None = 16,
    seed: int = 41,
    backend: str = "batched",
) -> list[dict]:
    """Autotuner bench over all subjects; writes ``out`` unless None."""
    records = [
        bench_tune(subject, chunk=chunk, seed=seed, backend=backend)
        for subject in TUNE_SUBJECTS
    ]
    if out is not None:
        Path(out).write_text(json.dumps(records, indent=2) + "\n")
    return records


# -- mixed-precision bench ------------------------------------------------------

#: Default output filename of :func:`run_mp_bench` (CI uploads it).
BENCH_MP_FILENAME = "BENCH_mp.json"

#: Decode-noise allowance for the measured TEST_FBS runs. The micro ring
#: (n=32) leaves the final un-refreshed linear layer a few tens of units of
#: LWE decode noise either way (the uniform baseline shows it too); a wrong
#: LUT table would miss by ~t/2 ≈ 128, far above this. Exact semantic
#: correctness is asserted separately by :func:`_check_lut_tables`.
_MP_NOISE_TOL = 64


def _check_lut_tables(program, t: int) -> None:
    """Every built FBS table must equal its exact semantics on its domain.

    Full-domain LUTs are checked over all of centered Z_t; restricted
    (``lut_range``) LUTs over their certified MAC window [-r, r] — outside
    it the degree <= 2r interpolant is free, by design. This is the
    noise-free correctness gate for the mixed-precision table machinery.
    """
    for step in program.lut_steps():
        spec = step.lut
        lut = spec.build(program.config, t)
        r = spec.lut_range
        if r and 2 * r + 1 < t:
            pts = np.arange(-r, r + 1, dtype=np.int64)
        else:
            pts = np.arange(-(t // 2), t - t // 2, dtype=np.int64)
        exact = spec.apply_exact(pts, program.config)
        got = lut.values[pts % t]
        if not np.array_equal(got % t, exact % t):
            raise RuntimeError(
                f"LUT table {step.name!r} disagrees with exact semantics "
                f"on its domain (lut_range={r})"
            )


def _mp_point(model, x, y, config, budget: float, mode: str, seed: int,
              backend: str, params: FheParams) -> tuple[dict, "object"]:
    """Allocate at one budget, compile, and measure on real ciphertexts."""
    from repro.core.plan import compile_program, program_fingerprint
    from repro.fhe.serialize import dump_plan, load_plan
    from repro.quant.mp import allocate_bits

    res = allocate_bits(model, x, y, config, params=params, budget=budget,
                        mode=mode)
    qm = res.model
    program = lower(qm, params)
    _check_lut_tables(program, params.t)
    plan = compile_program(program, params, tuning=res.tuning.tuning)
    x_q = qm.quantize_input(x[0])
    out, mm, wall = _measured_run(program, plan, x_q, seed, backend,
                                  params=params)
    ref = qm.forward_int(x_q[None])[0].reshape(-1)
    err = int(np.abs(out - ref).max())
    if err > _MP_NOISE_TOL:
        raise RuntimeError(
            f"mp plan (budget {budget}) off plaintext reference by {err}"
        )
    raw = dump_plan(plan)
    round_trip = dump_plan(load_plan(raw, params)) == raw
    point = {
        "budget": budget,
        "mode": mode,
        "mp": res.mp.tag(),
        "bias_correct": res.bias_correct,
        "accuracy": res.accuracy,
        "accuracy_drop": res.drop,
        "predicted_mod_muls": res.cost,
        "measured_mod_muls": mm,
        "wall_s": round(wall, 6),
        "max_abs_error": err,
        "fingerprint": program_fingerprint(program, res.tuning.tuning),
        "round_trip_identical": round_trip,
    }
    return point, res


def bench_mp(
    budgets: tuple[float, ...] = (0.0, 0.02, 0.05),
    headline_budget: float = 0.02,
    mode: str = "greedy",
    seed: int = 41,
    backend: str = "batched",
) -> dict:
    """Mixed-precision allocator bench on the TEST_FBS mnist_cnn subject.

    Measures the uniform-bits baseline once (autotuned, full-domain LUTs)
    and one allocated configuration per accuracy-drop budget, each through
    the real-ciphertext pipeline under a :class:`CountingBackend` — the
    ``points`` list is the accuracy-vs-cost Pareto front. Hard guarantees
    asserted here (CI re-checks them on the artifact):

    * the headline-budget config's *measured* mod_muls and wall time beat
      the uniform baseline's, at calibration accuracy within the budget;
    * every allocated plan round-trips through dump_plan/load_plan
      bit-identically;
    * every allocated program's fingerprint differs from the baseline's
      (plan caches and the serve layer key on it).
    """
    from repro.core.plan import compile_program, program_fingerprint
    from repro.core.tune import tune_program
    from repro.fhe.params import TEST_FBS
    from repro.quant.mp import mp_micro_subject
    from repro.quant.quantize import quantize_model

    model, x, y, config = mp_micro_subject()
    base_qm = quantize_model(model, x, config, name="mnist_cnn_mp")
    base_acc = base_qm.accuracy(x, y)
    base_program = lower(base_qm, TEST_FBS)
    _check_lut_tables(base_program, TEST_FBS.t)
    base_tuning = tune_program(base_program, TEST_FBS)
    base_plan = compile_program(base_program, TEST_FBS,
                                tuning=base_tuning.tuning)
    x_q = base_qm.quantize_input(x[0])
    out, mm_base, wall_base = _measured_run(base_program, base_plan, x_q,
                                            seed, backend, params=TEST_FBS)
    ref = base_qm.forward_int(x_q[None])[0].reshape(-1)
    err_base = int(np.abs(out - ref).max())
    base_fp = program_fingerprint(base_program, base_tuning.tuning)

    points = []
    for budget in budgets:
        point, _ = _mp_point(model, x, y, config, budget, mode, seed,
                             backend, TEST_FBS)
        if not point["round_trip_identical"]:
            raise RuntimeError(
                f"mp plan (budget {budget}) does not round-trip bit-identically"
            )
        if point["fingerprint"] == base_fp:
            raise RuntimeError(
                f"mp fingerprint (budget {budget}) collides with uniform's"
            )
        points.append(point)

    head = min(points, key=lambda p: abs(p["budget"] - headline_budget))
    if head["measured_mod_muls"] >= mm_base:
        raise RuntimeError(
            f"allocated config does not beat uniform measured mod_muls "
            f"({head['measured_mod_muls']} >= {mm_base})"
        )
    if head["wall_s"] >= wall_base:
        raise RuntimeError(
            f"allocated config does not beat uniform wall time "
            f"({head['wall_s']} >= {wall_base})"
        )
    if head["accuracy_drop"] > head["budget"] + 1e-12:
        raise RuntimeError(
            f"allocated config exceeds the accuracy-drop budget "
            f"({head['accuracy_drop']} > {head['budget']})"
        )
    return {
        "bench": "mnist_cnn",
        "model": "mnist_cnn_mp",
        "params": _params_info(TEST_FBS, backend),
        "config": config.label,
        "mode": mode,
        "headline_budget": head["budget"],
        "baseline_accuracy": base_acc,
        "baseline_predicted_mod_muls": base_tuning.tuned_cost,
        "baseline_measured_mod_muls": mm_base,
        "baseline_wall_s": round(wall_base, 6),
        "baseline_max_abs_error": err_base,
        "headline": head,
        "points": points,
    }


def bench_mp_zoo(
    subject: str = "mnist_cnn",
    budgets: tuple[float, ...] = (0.0, 0.05),
    mode: str = "greedy",
    seed: int = 0,
) -> dict:
    """Predicted-only Pareto points for a zoo model at ATHENA parameters.

    The full-size models are too large for a measured CI run, but the cost
    model — the same one the measured micro bench validates — scores them
    directly: per budget, the allocator's predicted tuned mod_muls and the
    resulting calibration accuracy.
    """
    from repro.eval.zoo import get_benchmark
    from repro.fhe.params import ATHENA
    from repro.quant.mp import allocate_bits
    from repro.quant.quantize import LayerQuantConfig, QuantConfig

    entry = get_benchmark(subject, seed=seed)
    calib_x = entry.data["x_train"][:96]
    calib_y = entry.data["y_train"][:96]
    config = QuantConfig(7, 7)
    candidates = [LayerQuantConfig(b, b) for b in (4, 5, 6)]
    points = []
    baseline = None
    for budget in budgets:
        res = allocate_bits(entry.float_model, calib_x, calib_y, config,
                            params=ATHENA, candidates=candidates,
                            budget=budget, mode=mode, name=subject)
        baseline = {
            "accuracy": res.baseline_accuracy,
            "predicted_mod_muls": res.baseline_cost,
        }
        points.append({
            "budget": budget,
            "mp": res.mp.tag(),
            "accuracy": res.accuracy,
            "accuracy_drop": res.drop,
            "predicted_mod_muls": res.cost,
        })
    return {
        "bench": f"{subject}_zoo",
        "model": subject,
        "params": _params_info(ATHENA, "predicted"),
        "config": config.label,
        "mode": mode,
        "baseline": baseline,
        "points": points,
    }


def run_mp_bench(
    out: str | Path | None = BENCH_MP_FILENAME,
    budgets: tuple[float, ...] = (0.0, 0.02, 0.05),
    mode: str = "greedy",
    seed: int = 41,
    backend: str = "batched",
    include_zoo: bool = True,
) -> list[dict]:
    """Mixed-precision bench; writes ``out`` unless None.

    Record 0 is the measured TEST_FBS micro subject (the CI gate's
    target); with ``include_zoo`` a predicted-only record per zoo subject
    follows.
    """
    records = [bench_mp(budgets=budgets, mode=mode, seed=seed, backend=backend)]
    if include_zoo:
        records.append(bench_mp_zoo(mode=mode))
    if out is not None:
        Path(out).write_text(json.dumps(records, indent=2) + "\n")
    return records
