"""Modular arithmetic helpers used across the FHE substrate.

All NTT primes produced here are strictly below 2**31 so that a product of
two residues fits in a signed 64-bit integer (a*b < 2**62), letting the NTT
and coefficient-wise kernels run on plain numpy ``int64`` arrays without
overflow.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ParameterError

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit-ish integers.

    The witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} is proven
    sufficient for n < 3.3 * 10**24, far beyond any modulus we use.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def find_ntt_primes(count: int, bits: int, order: int) -> list[int]:
    """Return ``count`` distinct primes p with p = 1 (mod order), p < 2**bits.

    ``order`` must be a power of two (it will be 2N for negacyclic NTT).
    Primes are returned in decreasing order starting just below 2**bits.
    """
    if bits > 31:
        raise ParameterError(
            f"NTT primes must be < 2**31 for int64 safety, got bits={bits}"
        )
    if order & (order - 1):
        raise ParameterError(f"order must be a power of two, got {order}")
    primes: list[int] = []
    # Largest candidate of the form k*order + 1 below 2**bits.
    k = ((1 << bits) - 2) // order
    while len(primes) < count and k > 0:
        p = k * order + 1
        if p < (1 << (bits - 1)):
            raise ParameterError(
                f"could not find {count} {bits}-bit primes with order {order}"
            )
        if is_prime(p):
            primes.append(p)
        k -= 1
    if len(primes) < count:
        raise ParameterError(
            f"could not find {count} {bits}-bit primes with order {order}"
        )
    return primes


def primitive_root(p: int) -> int:
    """Smallest primitive root modulo prime p."""
    if not is_prime(p):
        raise ParameterError(f"{p} is not prime")
    factors = _factorize(p - 1)
    for g in range(2, p):
        if all(pow(g, (p - 1) // f, p) != 1 for f in factors):
            return g
    raise ParameterError(f"no primitive root found for {p}")  # pragma: no cover


def root_of_unity(order: int, p: int) -> int:
    """A primitive ``order``-th root of unity modulo prime p."""
    if (p - 1) % order:
        raise ParameterError(f"{order} does not divide {p}-1")
    g = primitive_root(p)
    w = pow(g, (p - 1) // order, p)
    # Sanity: w has exact multiplicative order `order`.
    if pow(w, order // 2, p) == 1:
        raise ParameterError("root does not have full order")  # pragma: no cover
    return w


@lru_cache(maxsize=None)
def _factorize(n: int) -> tuple[int, ...]:
    """Prime factors (unique) of n by trial division; n - 1 of our primes is
    smooth enough (power of two times small cofactor) for this to be fast."""
    out = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            out.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        out.append(n)
    return tuple(out)


def inv_mod(a: int, m: int) -> int:
    """Modular inverse of a modulo m (m need not be prime)."""
    a %= m
    g, x, _ = _ext_gcd(a, m)
    if g != 1:
        raise ParameterError(f"{a} is not invertible mod {m}")
    return x % m


def _ext_gcd(a: int, b: int) -> tuple[int, int, int]:
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def crt_combine(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Combine residues via the Chinese Remainder Theorem.

    Returns the unique value in [0, prod(moduli)).
    """
    if len(residues) != len(moduli):
        raise ParameterError("residues and moduli length mismatch")
    total = 0
    product = 1
    for m in moduli:
        product *= m
    for r, m in zip(residues, moduli):
        partial = product // m
        total += r * partial * inv_mod(partial % m, m)
    return total % product


def centered(x: int, m: int) -> int:
    """Representative of x mod m in (-m/2, m/2]."""
    x %= m
    if x > m // 2:
        x -= m
    return x


def centered_array(x: np.ndarray, m: int) -> np.ndarray:
    """Vectorized centered reduction into (-m/2, m/2]."""
    x = np.mod(x, m)
    return np.where(x > m // 2, x - m, x)


def bit_length(x: int) -> int:
    """Bit length of |x| (0 for x == 0)."""
    return int(abs(x)).bit_length()


def next_pow2(x: int) -> int:
    """Smallest power of two >= x (x >= 1)."""
    if x < 1:
        raise ParameterError("next_pow2 requires x >= 1")
    return 1 << (x - 1).bit_length() if x > 1 else 1


def barrett_ready(moduli: Iterable[int]) -> None:
    """Validate that all moduli are int64-safe for numpy kernels."""
    for q in moduli:
        if q >= (1 << 31):
            raise ParameterError(f"modulus {q} >= 2**31 breaks int64 kernels")
