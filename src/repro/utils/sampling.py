"""Randomness sources for key generation and encryption.

A single :class:`Sampler` wraps a ``numpy.random.Generator`` so the whole
library is reproducible from one seed. Distributions follow standard
RLWE practice: ternary secrets, centered binomial / discrete Gaussian errors
(sigma = 3.2 by default, as assumed in the paper's noise analysis), uniform
ciphertext randomness.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SIGMA = 3.2


class Sampler:
    """Seedable source of all randomness used by the FHE substrate."""

    def __init__(self, seed: int | None = None, sigma: float = DEFAULT_SIGMA):
        self.rng = np.random.default_rng(seed)
        self.sigma = float(sigma)

    def uniform(self, modulus: int, size: int) -> np.ndarray:
        """Uniform residues in [0, modulus) as int64."""
        return self.rng.integers(0, modulus, size=size, dtype=np.int64)

    def ternary(self, size: int) -> np.ndarray:
        """Ternary secret coefficients in {-1, 0, 1} (uniform)."""
        return self.rng.integers(-1, 2, size=size, dtype=np.int64)

    def gaussian(self, size: int) -> np.ndarray:
        """Rounded Gaussian error with standard deviation ``sigma``."""
        return np.rint(self.rng.normal(0.0, self.sigma, size=size)).astype(np.int64)

    def binary(self, size: int) -> np.ndarray:
        """Uniform bits, used by some keyswitch gadgets."""
        return self.rng.integers(0, 2, size=size, dtype=np.int64)
