"""Shared math and randomness utilities."""

from repro.utils.modmath import (
    centered,
    centered_array,
    crt_combine,
    find_ntt_primes,
    inv_mod,
    is_prime,
    primitive_root,
    root_of_unity,
)
from repro.utils.sampling import Sampler

__all__ = [
    "Sampler",
    "centered",
    "centered_array",
    "crt_combine",
    "find_ntt_primes",
    "inv_mod",
    "is_prime",
    "primitive_root",
    "root_of_unity",
]
