"""Design-choice ablations for the Athena accelerator.

The paper motivates four architectural decisions; this module quantifies
each by switching it off in the simulator:

* **two-region FBS dataflow** (Fig. 7) — without it, the baby (SMult/HAdd)
  and giant (CMult) halves of FBS serialize;
* **flexible per-layer LUT sizing** (§3.3) — without it, every FBS runs at
  the full t = 65537 table;
* **on-chip PRNG key regeneration** (§4.1) — without it, keyswitch keys
  stream both halves from HBM;
* **SE unit** (§4.2.3) — without the register shifter, extraction costs
  ~log2(N) barrel-shifter cycles per sample instead of ~1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.accel.baselines import calibrated_athena, reference_athena_trace
from repro.accel.scheduler import schedule
from repro.core.trace import WorkloadTrace


@dataclass(frozen=True)
class AblationResult:
    name: str
    baseline_ms: float
    ablated_ms: float

    @property
    def slowdown(self) -> float:
        return self.ablated_ms / self.baseline_ms


def _flexible_lut_pair(model: str) -> tuple[WorkloadTrace, WorkloadTrace]:
    """(flexible, fixed) traces: per-layer tables sized to Fig. 4-scale MAC
    ranges (~2^13) versus every FBS at the full t = 65537 table."""
    return (
        reference_athena_trace(model, t_cap=1 << 13),
        reference_athena_trace(model),
    )


def _double_key_traffic(trace: WorkloadTrace) -> WorkloadTrace:
    out = WorkloadTrace(trace.model, trace.params)
    for p in trace.phases:
        ops = p.ops.scaled(1.0)
        ops.hbm_bytes *= 2  # both key halves stream from HBM
        out.add(p.phase, p.layer, ops)
    return out


def _slow_extraction(trace: WorkloadTrace, factor: float = 15.0) -> WorkloadTrace:
    out = WorkloadTrace(trace.model, trace.params)
    for p in trace.phases:
        ops = p.ops.scaled(1.0)
        ops.extract *= factor  # ~log2(N) cycles per extraction
        out.add(p.phase, p.layer, ops)
    return out


def run_ablations(model: str = "resnet20") -> list[AblationResult]:
    cfg = calibrated_athena()
    trace = reference_athena_trace(model)
    base = schedule(trace, cfg).total_ms
    results = [
        AblationResult(
            "no-two-region-dataflow",
            base,
            schedule(trace, replace(cfg, fbs_region_overlap=False)).total_ms,
        ),
        AblationResult(
            "no-flexible-lut",
            schedule(_flexible_lut_pair(model)[0], cfg).total_ms,
            schedule(_flexible_lut_pair(model)[1], cfg).total_ms,
        ),
        AblationResult(
            "no-prng-key-regen",
            base,
            schedule(_double_key_traffic(trace), cfg).total_ms,
        ),
        AblationResult(
            "no-se-unit",
            base,
            schedule(_slow_extraction(trace), cfg).total_ms,
        ),
    ]
    return results
