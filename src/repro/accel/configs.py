"""Accelerator configurations: Athena (paper §4, Tables 8-9) and the four
published baselines (CraterLake, ARK, BTS, SHARP) as architectural models.

Each configuration carries:

* compute resources as *throughputs* (elements or butterflies per cycle) —
  the natural abstraction for these deeply pipelined designs;
* the memory system (scratchpad capacity + bandwidth, HBM);
* area and power, which for the baselines are their published totals and
  for Athena the paper's Table 9 breakdown (these are *inputs* from RTL
  synthesis, see DESIGN.md substitution #1);
* an ``efficiency`` scalar: the single per-architecture calibration factor
  that absorbs scheduling/utilization effects our cycle model does not
  capture. It is fitted once on ResNet-20 (the only benchmark all baseline
  papers report) and then every other number is model-predicted.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class UnitSpec:
    """One compute-unit class with an area/power share."""

    name: str
    area_mm2: float
    power_w: float


@dataclass(frozen=True)
class AcceleratorConfig:
    name: str
    frequency_ghz: float
    lanes: int  # SIMD width of the vector datapath
    # compute throughputs (per cycle, aggregate over all unit instances)
    ntt_butterflies: int  # butterfly ops per cycle
    mod_mul_tput: int  # elementwise modular multipliers
    mod_add_tput: int  # elementwise modular adders
    automorph_tput: int  # elements per cycle through automorphism units
    extract_tput: int  # sample extractions per cycle (0 = unsupported)
    rnsconv_tput: int  # base-conversion elements per cycle
    # memory system
    scratchpad_mb: float
    scratchpad_reg_mb: float  # register-file style second-level (Table 8 "+x MB")
    scratchpad_bw_tbs: float
    hbm_gb: float
    hbm_bw_tbs: float
    # totals
    area_mm2: float
    power_w: float
    # calibration
    efficiency: float = 1.0
    #: True when the FBS baby (FRU) and giant (NTT/CMult) halves can run in
    #: separate regions concurrently (paper Fig. 7 dataflow).
    fbs_region_overlap: bool = False
    #: Fraction of the FRU/base-conversion throughput living in Region 0
    #: (the giant-step region) when the two-region dataflow is active.
    giant_fru_fraction: float = 1.0
    units: tuple[UnitSpec, ...] = field(default=())

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz


#: Athena accelerator (paper §4.1-4.2, Tables 8 and 9).
#: 2048 lanes; 256 radix-8 NTT units (2048 data/cycle); 17 FRU blocks with
#: 2048 MM + 2048 MA each (1 in region 0, 16 in region 1); 8 automorphism
#: cores of parallelism 256; SE register shifter ~1 extraction/cycle.
ATHENA_UNITS = (
    UnitSpec("automorphism", 3.8, 3.0),
    UnitSpec("prng", 1.2, 1.9),
    UnitSpec("ntt", 4.51, 3.9),
    UnitSpec("se", 0.32, 0.94),
    UnitSpec("fru", 42.6, 89.1),
    UnitSpec("noc", 5.9, 7.8),
    UnitSpec("register_file", 8.4, 4.9),
    UnitSpec("scratchpad", 20.1, 4.8),
    UnitSpec("hbm", 29.6, 31.8),
)

ATHENA_ACCEL = AcceleratorConfig(
    name="athena",
    frequency_ghz=1.0,
    lanes=2048,
    ntt_butterflies=2048,
    mod_mul_tput=17 * 2048,
    mod_add_tput=17 * 2048,
    automorph_tput=2048,
    extract_tput=2,
    rnsconv_tput=17 * 2048,
    scratchpad_mb=45,
    scratchpad_reg_mb=15,
    scratchpad_bw_tbs=180,
    hbm_gb=16,
    hbm_bw_tbs=1,
    area_mm2=116.4,
    power_w=148.1,
    efficiency=0.55,
    fbs_region_overlap=True,
    giant_fru_fraction=1.0 / 17.0,  # Region 0 holds 1 of the 17 FRU blocks
    units=ATHENA_UNITS,
)

#: CraterLake [38]: 2048-lane vector design, huge CRB (RNS base conversion)
#: array (2048 x 60 MACs), 256+26 MB scratchpad at 84 TB/s.
CRATERLAKE = AcceleratorConfig(
    name="craterlake",
    frequency_ghz=1.0,
    lanes=2048,
    ntt_butterflies=2048,
    mod_mul_tput=2048 * 5,  # vector FUs; CRB MACs are base-conversion-only
    mod_add_tput=2048 * 5,
    automorph_tput=2048,
    extract_tput=0,
    rnsconv_tput=2048 * 60,
    scratchpad_mb=256,
    scratchpad_reg_mb=26,
    scratchpad_bw_tbs=84,
    hbm_gb=16,
    hbm_bw_tbs=1,
    area_mm2=222.7,
    power_w=207.0,
    efficiency=1.0,
)

#: ARK [23]: runtime data generation, large 512+76 MB scratchpad.
ARK = AcceleratorConfig(
    name="ark",
    frequency_ghz=1.0,
    lanes=4096,
    ntt_butterflies=4096,
    mod_mul_tput=4096 * 2,
    mod_add_tput=4096 * 2,
    automorph_tput=4096,
    extract_tput=0,
    rnsconv_tput=4096 * 12,
    scratchpad_mb=512,
    scratchpad_reg_mb=76,
    scratchpad_bw_tbs=92,
    hbm_gb=16,
    hbm_bw_tbs=1,
    area_mm2=418.3,
    power_w=281.3,
    efficiency=1.0,
)

#: BTS [24]: bootstrapping-oriented but bandwidth-hungry design.
BTS = AcceleratorConfig(
    name="bts",
    frequency_ghz=1.2,
    lanes=2048,
    ntt_butterflies=1024,
    mod_mul_tput=2048,
    mod_add_tput=2048,
    automorph_tput=2048,
    extract_tput=0,
    rnsconv_tput=2048 * 2,
    scratchpad_mb=512,
    scratchpad_reg_mb=22,
    scratchpad_bw_tbs=330,
    hbm_gb=16,
    hbm_bw_tbs=1,
    area_mm2=373.6,
    power_w=133.8,
    efficiency=1.0,
)

#: SHARP [22]: short-word (36-bit) design, best published CKKS efficiency.
SHARP = AcceleratorConfig(
    name="sharp",
    frequency_ghz=1.0,
    lanes=2048,
    ntt_butterflies=2048 * 2,
    mod_mul_tput=2048 * 2,  # BConv MACs support only base conversion
    mod_add_tput=2048 * 2,
    automorph_tput=2048 * 2,
    extract_tput=0,
    rnsconv_tput=2048 * 16,
    scratchpad_mb=180,
    scratchpad_reg_mb=18,
    scratchpad_bw_tbs=72,
    hbm_gb=16,
    hbm_bw_tbs=1,
    area_mm2=178.8,
    # Power is not published for SHARP; estimated by area-scaling
    # CraterLake's 207 W / 222.7 mm^2 density with a short-word discount.
    power_w=133.0,
    efficiency=1.0,
)

BASELINES = (CRATERLAKE, ARK, BTS, SHARP)
ALL_CONFIGS = (ATHENA_ACCEL,) + BASELINES


def by_name(name: str) -> AcceleratorConfig:
    for cfg in ALL_CONFIGS:
        if cfg.name == name:
            return cfg
    raise KeyError(f"unknown accelerator {name!r}")
