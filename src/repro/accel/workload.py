"""CKKS baseline workload model (DESIGN.md substitution #4).

The baseline accelerators (CraterLake / ARK / BTS / SHARP) run the
*CKKS-based* float models of [27, 28]: multiplexed-parallel convolutions,
minimax-composite polynomial ReLU, and full CKKS bootstrapping after each
layer pair. This module builds op-count traces for those pipelines at the
baselines' parameter regime (N = 2^16, ~44 limbs, dnum = 4), reusing the
same :class:`repro.core.trace.OpCounts` vocabulary so the one scheduler
serves both worlds.

Per-benchmark layer inventories follow the paper's §5.1 descriptions. Op
constants per phase follow Table 3's complexity rows; the single remaining
degree of freedom per architecture (its ``efficiency`` factor) is fitted on
ResNet-20 in :mod:`repro.accel.baselines` — exactly mirroring the paper's
own methodology ("we normalize the computational complexity of other
benchmarks to that of ResNet-20").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.trace import OpCounts, WorkloadTrace


@dataclass(frozen=True)
class CkksRing:
    """Minimal ring descriptor for the scheduler (duck-typed FheParams)."""

    n: int = 1 << 16
    num_limbs: int = 44
    t: int = 0


CKKS_RING = CkksRing()
CKKS_DNUM = 4


def _pmult(ring: CkksRing = CKKS_RING) -> OpCounts:
    l, n = ring.num_limbs, ring.n
    return OpCounts(ntt=l, mod_mul=2 * l * n, hbm_bytes=l * n * 4)


def _hadd(ring: CkksRing = CKKS_RING) -> OpCounts:
    l, n = ring.num_limbs, ring.n
    return OpCounts(mod_add=2 * l * n)


def _keyswitch(ring: CkksRing = CKKS_RING) -> OpCounts:
    l, n = ring.num_limbs, ring.n
    return OpCounts(
        ntt=2 * CKKS_DNUM * l,
        mod_mul=2 * CKKS_DNUM * l * n,
        mod_add=2 * CKKS_DNUM * l * n,
        rnsconv=2 * l * n,
        hbm_bytes=CKKS_DNUM * l * n * 4,
    )


def _rotation(ring: CkksRing = CKKS_RING) -> OpCounts:
    out = _keyswitch(ring)
    out.automorph += 2 * ring.num_limbs
    return out


def _cmult(ring: CkksRing = CKKS_RING) -> OpCounts:
    l, n = ring.num_limbs, ring.n
    out = OpCounts(ntt=6 * l, mod_mul=8 * l * n, mod_add=2 * l * n, rnsconv=4 * l * n)
    out += _keyswitch(ring)
    return out


def conv_ops(f: int, cin: int, cout: int) -> OpCounts:
    """Multiplexed conv: O(f^2 C) PMult + O(f^2)+O(C) rotations (Table 3)."""
    out = OpCounts()
    out += _pmult().scaled(f * f * max(1, cin // 4))
    out += _rotation().scaled(f * f + cout)
    out += _hadd().scaled(f * f * max(1, cin // 4))
    return out


def fc_ops(in_features: int, out_features: int) -> OpCounts:
    diags = max(1, min(in_features, 128))
    out = OpCounts()
    out += _pmult().scaled(diags)
    out += _rotation().scaled(2 * math.isqrt(diags))
    out += _hadd().scaled(diags)
    return out


def relu_ops(degree: int = 27) -> OpCounts:
    """Minimax composite polynomial ReLU: O(p) PMult, O(sqrt p)-ish CMult."""
    out = OpCounts()
    out += _pmult().scaled(2 * degree)
    out += _cmult().scaled(15)
    out += _hadd().scaled(2 * degree)
    return out


def maxpool_ops(windows: int, k: int) -> OpCounts:
    """CKKS max-pooling: (k^2 - 1) encrypted comparisons per window, each a
    composite-polynomial sign evaluation (comparable to a ReLU)."""
    comparisons = k * k - 1
    slots = CKKS_RING.n // 2
    batches = max(1, math.ceil(windows / slots))
    return relu_ops().scaled(comparisons * batches * 2)


def bootstrap_ops() -> OpCounts:
    """Full CKKS bootstrap: CtS/StC linear transforms (BSGS rotations),
    EvalMod polynomial, modulus raise — the dominant macro-op."""
    out = OpCounts()
    out += _rotation().scaled(160)
    out += _pmult().scaled(200)
    out += _cmult().scaled(24)
    out += _hadd().scaled(360)
    return out


#: (phase, op-name, OpCounts) inventories per benchmark (paper §5.1).
def _mnist_layers():
    yield "linear", "conv1", conv_ops(5, 1, 5)
    yield "relu", "relu1", relu_ops()
    yield "linear", "fc1", fc_ops(245, 100)
    yield "relu", "relu2", relu_ops()
    yield "linear", "fc2", fc_ops(100, 10)
    for i in range(2):
        yield "bootstrap", f"boot{i}", bootstrap_ops()


def _lenet_layers():
    yield "linear", "conv1", conv_ops(5, 1, 6)
    yield "relu", "relu1", relu_ops()
    yield "pooling", "pool1", maxpool_ops(6 * 14 * 14, 2)
    yield "linear", "conv2", conv_ops(5, 6, 16)
    yield "relu", "relu2", relu_ops()
    yield "pooling", "pool2", maxpool_ops(16 * 5 * 5, 2)
    yield "linear", "fc1", fc_ops(400, 120)
    yield "relu", "relu3", relu_ops()
    yield "linear", "fc2", fc_ops(120, 84)
    yield "relu", "relu4", relu_ops()
    yield "linear", "fc3", fc_ops(84, 10)
    # Max-pooling's comparison chains burn multiplicative depth quickly, so
    # LeNet under CKKS bootstraps disproportionately often for its size.
    for i in range(14):
        yield "bootstrap", f"boot{i}", bootstrap_ops()


def _resnet_layers(blocks_per_stage: int):
    widths = (16, 32, 64)
    yield "linear", "conv0", conv_ops(3, 3, 16)
    yield "relu", "relu0", relu_ops()
    boots = 1
    current = 16
    for stage, w in enumerate(widths):
        for b in range(blocks_per_stage):
            name = f"s{stage}b{b}"
            yield "linear", f"{name}.conv1", conv_ops(3, current, w)
            yield "relu", f"{name}.relu1", relu_ops()
            yield "linear", f"{name}.conv2", conv_ops(3, w, w)
            if stage > 0 and b == 0:
                yield "linear", f"{name}.proj", conv_ops(1, current, w)
            yield "relu", f"{name}.relu2", relu_ops()
            boots += 2  # >= 2 bootstraps per residual block (paper §1)
            current = w
    yield "pooling", "gap", _rotation().scaled(6)
    yield "linear", "fc", fc_ops(64, 10)
    boots += 1
    for i in range(boots):
        yield "bootstrap", f"boot{i}", bootstrap_ops()


_BENCHES = {
    "mnist_cnn": _mnist_layers,
    "lenet": _lenet_layers,
    "resnet20": lambda: _resnet_layers(3),
    "resnet56": lambda: _resnet_layers(9),
}


def ckks_trace(model_name: str) -> WorkloadTrace:
    """Full CKKS-pipeline trace for one benchmark model."""
    if model_name not in _BENCHES:
        raise KeyError(f"unknown benchmark {model_name!r}; options: {sorted(_BENCHES)}")
    trace = WorkloadTrace(model_name, CKKS_RING)  # type: ignore[arg-type]
    for phase, layer, ops in _BENCHES[model_name]():
        trace.add(phase, layer, ops)
    return trace


MODEL_NAMES = tuple(_BENCHES)
