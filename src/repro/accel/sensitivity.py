"""Sensitivity analyses (paper §5.6, Figures 12 and 13).

* :func:`lane_sweep` — scale one compute unit's parallelism from 256 to
  2048 lanes while holding the rest at full size, and report delay /
  energy / EDP / EDAP normalized to the full configuration (Fig. 13).
* :func:`precision_sweep_perf` — runtime across quantization precisions
  w4a4..w8a8 via the flexible-LUT size (Fig. 12's performance half; the
  accuracy half lives in repro.eval.fig12).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.accel.baselines import calibrated_athena, reference_athena_trace
from repro.accel.configs import AcceleratorConfig
from repro.accel.energy import energy_for
from repro.accel.scheduler import schedule

#: The four units Fig. 13 scales, and how each maps onto config fields.
SWEEP_UNITS = ("ntt", "fru", "automorphism", "se")

#: Quantization precisions of Fig. 12 and the plaintext-modulus cap each
#: implies for the flexible LUT (MAC range scales ~4x per extra w+a bit).
PRECISION_T_CAP = {
    "w4a4": 1 << 10,
    "w5a5": 1 << 12,
    "w6a6": 1 << 13,
    "w6a7": 1 << 14,
    "w7a7": 1 << 16,
    "w8a8": 1 << 17,
}


def _scaled_config(cfg: AcceleratorConfig, unit: str, lanes: int) -> AcceleratorConfig:
    frac = lanes / cfg.lanes
    if unit == "ntt":
        return replace(cfg, ntt_butterflies=max(1, int(cfg.ntt_butterflies * frac)))
    if unit == "fru":
        return replace(
            cfg,
            mod_mul_tput=max(1, int(cfg.mod_mul_tput * frac)),
            mod_add_tput=max(1, int(cfg.mod_add_tput * frac)),
            rnsconv_tput=max(1, int(cfg.rnsconv_tput * frac)),
        )
    if unit == "automorphism":
        return replace(cfg, automorph_tput=max(1, int(cfg.automorph_tput * frac)))
    if unit == "se":
        return replace(cfg, extract_tput=max(1e-3, cfg.extract_tput * frac))
    raise KeyError(f"unknown sweep unit {unit!r}")


@dataclass
class SweepPoint:
    unit: str
    lanes: int
    delay: float  # normalized to the 2048-lane configuration
    energy: float
    edp: float
    edap: float


def lane_sweep(
    model: str = "resnet20",
    lane_points: tuple[int, ...] = (256, 512, 1024, 2048),
) -> list[SweepPoint]:
    """Fig. 13: per-unit lane scaling, normalized to full parallelism."""
    trace = reference_athena_trace(model)
    base_cfg = calibrated_athena()
    base = schedule(trace, base_cfg)
    base_energy = energy_for(base, base_cfg)
    out: list[SweepPoint] = []
    for unit in SWEEP_UNITS:
        for lanes in lane_points:
            cfg = _scaled_config(base_cfg, unit, lanes)
            res = schedule(trace, cfg)
            en = energy_for(res, cfg)
            out.append(
                SweepPoint(
                    unit=unit,
                    lanes=lanes,
                    delay=res.total_ms / base.total_ms,
                    energy=en.energy_j / base_energy.energy_j,
                    edp=en.edp / base_energy.edp,
                    edap=en.edp * cfg.area_mm2 / (base_energy.edp * base_cfg.area_mm2),
                )
            )
    return out


def precision_sweep_perf(model: str = "resnet20") -> dict[str, float]:
    """Fig. 12 (performance): runtime (ms) per quantization precision."""
    cfg = calibrated_athena()
    out: dict[str, float] = {}
    for label, cap in PRECISION_T_CAP.items():
        trace = reference_athena_trace(model, t_cap=cap)
        out[label] = schedule(trace, cfg).total_ms
    return out
