"""Human-readable reports from schedule results: phase timeline (an ASCII
Gantt), resource-utilization summary, and bound-type census.

Used by the examples and handy when exploring new models or configs:

    >>> from repro.accel import athena_run
    >>> from repro.accel.report import render_schedule
    >>> print(render_schedule(athena_run("resnet20")))
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.accel.scheduler import ScheduleResult
from repro.eval.render import render_table

_PHASE_ORDER = ("linear", "se", "packing", "fbs", "s2c", "pooling", "softmax")


def phase_summary(result: ScheduleResult) -> list[tuple[str, float, float]]:
    """(phase, ms, share) sorted by the canonical pipeline order."""
    by_phase = result.ms_by_phase()
    total = sum(by_phase.values()) or 1.0
    ordered = [p for p in _PHASE_ORDER if p in by_phase]
    ordered += [p for p in by_phase if p not in ordered]
    return [(p, by_phase[p], by_phase[p] / total) for p in ordered]


def bound_census(result: ScheduleResult) -> dict[str, float]:
    """Fraction of cycles bound by each resource type."""
    total = result.total_cycles or 1.0
    census: Counter = Counter()
    for p in result.phases:
        census[p.bound] += p.cycles
    return {k: v / total for k, v in census.items()}


def utilization(result: ScheduleResult) -> dict[str, float]:
    """Per-resource busy fraction relative to total raw cycles."""
    raw: defaultdict = defaultdict(float)
    raw_total = 0.0
    for p in result.phases:
        for res, cyc in p.resource_cycles.items():
            raw[res] += cyc
        raw_total += max(p.resource_cycles.values(), default=0.0)
    if not raw_total:
        return {}
    return {k: min(1.0, v / raw_total) for k, v in sorted(raw.items())}


def render_schedule(result: ScheduleResult, width: int = 40) -> str:
    """ASCII report: Gantt-style phase bars + bound census."""
    summary = phase_summary(result)
    rows = []
    for phase, ms, share in summary:
        bar = "#" * max(1, round(share * width))
        rows.append((phase, f"{ms:.2f}", f"{share * 100:.1f}%", bar))
    header = (
        f"{result.accelerator} / {result.model}: "
        f"{result.total_ms:.1f} ms @ {result.frequency_ghz:.1f} GHz"
    )
    table = render_table(["phase", "ms", "share", "timeline"], rows, header)
    census = bound_census(result)
    bound_line = "bound by: " + ", ".join(
        f"{k} {v * 100:.0f}%" for k, v in sorted(census.items(), key=lambda x: -x[1])
    )
    return table + "\n" + bound_line
