"""Energy / EDP / EDAP models (paper §5.3, Tables 7, Fig. 10-11).

Athena's energy is activity-based: each unit class contributes its Table 9
peak power for the cycles it is busy (from the scheduler's per-resource
accounting) plus an idle/leakage floor; HBM traffic is charged per byte
(HBM2E, ~31 pJ/B) on top of its background power. Baselines, whose
microarchitectural activity we do not model at unit granularity, are
charged published peak power times a utilization factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.configs import ATHENA_ACCEL, AcceleratorConfig
from repro.accel.scheduler import ScheduleResult

#: Mapping from scheduler resource names to Athena Table 9 unit names.
_RESOURCE_UNIT = {
    "ntt": "ntt",
    "fru": "fru",
    "automorph": "automorphism",
    "se": "se",
    "rnsconv": "fru",  # base conversion runs on the FRU array
    "scratchpad": "scratchpad",
    "hbm": "hbm",
}

HBM_PJ_PER_BYTE = 31.0
IDLE_FRACTION = 0.08  # leakage + clock tree as a fraction of peak
#: Average datapath occupancy of a busy compute unit (not every MM/MA lane
#: toggles every busy cycle; Table 9 powers are peak).
COMPUTE_ACTIVITY = 0.4
BASELINE_UTILIZATION = 0.7


@dataclass
class EnergyResult:
    accelerator: str
    model: str
    time_ms: float
    energy_j: float
    breakdown_j: dict[str, float]

    @property
    def edp(self) -> float:
        """Energy-delay product in J*s (the paper's Table 7 metric)."""
        return self.energy_j * self.time_ms / 1e3

    def edap(self, area_mm2: float) -> float:
        return self.edp * area_mm2


def athena_energy(result: ScheduleResult, cfg: AcceleratorConfig = ATHENA_ACCEL) -> EnergyResult:
    """Activity-based energy from per-resource busy cycles.

    Busy cycles come from the *raw* resource model, so they are rescaled to
    wall-clock (the calibrated efficiency affects time, and unit activity
    scales with it); per-unit busy time is capped at total runtime. The
    memory system (scratchpad, register files, HBM background + per-byte)
    is charged for the whole run — this is what produces the paper's
    Fig. 10 "memory is ~half the energy" split.
    """
    unit_power = {u.name: u.power_w for u in cfg.units}
    total_s = result.total_ms / 1e3
    # Aggregate raw busy cycles per *unit* (several resources share the FRU).
    raw_unit_cycles: dict[str, float] = {}
    raw_total = 0.0
    hbm_bytes = 0.0
    for phase in result.phases:
        for resource, cyc in phase.resource_cycles.items():
            if resource == "hbm":
                hbm_bytes += cyc * cfg.hbm_bw_tbs * 1e12 / (cfg.frequency_ghz * 1e9)
                continue
            unit = _RESOURCE_UNIT.get(resource)
            if unit in ("scratchpad", None):
                continue
            raw_unit_cycles[unit] = raw_unit_cycles.get(unit, 0.0) + cyc
        raw_total += max(phase.resource_cycles.values(), default=0.0)
    scale = (result.total_ms * 1e6 * cfg.frequency_ghz) / raw_total if raw_total else 0.0
    breakdown: dict[str, float] = {}
    for unit, cycles in raw_unit_cycles.items():
        busy_s = min(cycles * scale / (cfg.frequency_ghz * 1e9), total_s)
        breakdown[unit] = unit_power.get(unit, 0.0) * busy_s * COMPUTE_ACTIVITY
    # Memory system + support fabric run for the duration of the inference.
    for unit in ("scratchpad", "register_file", "noc", "prng"):
        breakdown[unit] = unit_power.get(unit, 0.0) * total_s
    breakdown["hbm"] = (
        unit_power.get("hbm", 0.0) * total_s + hbm_bytes * HBM_PJ_PER_BYTE * 1e-12
    )
    breakdown["idle"] = cfg.power_w * IDLE_FRACTION * total_s
    energy = sum(breakdown.values())
    return EnergyResult(cfg.name, result.model, result.total_ms, energy, breakdown)


def baseline_energy(result: ScheduleResult, cfg: AcceleratorConfig) -> EnergyResult:
    """Peak-power x utilization model for the published baselines."""
    total_s = result.total_ms / 1e3
    energy = cfg.power_w * BASELINE_UTILIZATION * total_s
    return EnergyResult(
        cfg.name, result.model, result.total_ms, energy, {"total": energy}
    )


def energy_for(result: ScheduleResult, cfg: AcceleratorConfig) -> EnergyResult:
    if cfg.units:
        return athena_energy(result, cfg)
    return baseline_energy(result, cfg)
