"""Cycle-level accelerator simulator: Athena + published baselines."""

from repro.accel.baselines import (
    PAPER_TABLE6,
    PAPER_TABLE7,
    athena_run,
    baseline_run,
    calibrated_athena,
    calibrated_baseline,
    cross_deployment,
    edap,
    table6,
    table7,
)
from repro.accel.configs import (
    ALL_CONFIGS,
    ARK,
    ATHENA_ACCEL,
    BASELINES,
    BTS,
    CRATERLAKE,
    SHARP,
    AcceleratorConfig,
    by_name,
)
from repro.accel.ablation import AblationResult, run_ablations
from repro.accel.energy import EnergyResult, energy_for
from repro.accel.report import bound_census, phase_summary, render_schedule, utilization
from repro.accel.sensitivity import lane_sweep, precision_sweep_perf
from repro.accel.scheduler import ScheduleResult, schedule, schedule_executed
from repro.accel.workload import ckks_trace

__all__ = [
    "ALL_CONFIGS",
    "ARK",
    "ATHENA_ACCEL",
    "BASELINES",
    "BTS",
    "CRATERLAKE",
    "PAPER_TABLE6",
    "PAPER_TABLE7",
    "SHARP",
    "AblationResult",
    "AcceleratorConfig",
    "EnergyResult",
    "ScheduleResult",
    "athena_run",
    "baseline_run",
    "by_name",
    "calibrated_athena",
    "calibrated_baseline",
    "ckks_trace",
    "cross_deployment",
    "edap",
    "energy_for",
    "bound_census",
    "phase_summary",
    "schedule",
    "schedule_executed",
    "render_schedule",
    "run_ablations",
    "lane_sweep",
    "precision_sweep_perf",
    "table6",
    "table7",
    "utilization",
]
