"""Calibrated full-system runs: Table 6/7, Fig. 8/9/10/11.

Methodology (mirrors the paper's §5.1): every architecture gets exactly one
calibration constant — its ``efficiency`` — fitted so its *ResNet-20*
latency matches the value its own paper (or, for Athena, this paper)
reports. Everything else (the other three benchmarks, phase breakdowns,
cross-deployment runs, energy) is then model-predicted. The uncalibrated
model predictions are also exposed for honesty checks in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from repro.accel.configs import (
    ATHENA_ACCEL,
    BASELINES,
    AcceleratorConfig,
    by_name,
)
from repro.accel.energy import EnergyResult, energy_for
from repro.accel.scheduler import ScheduleResult, schedule
from repro.accel.workload import MODEL_NAMES, ckks_trace
from repro.core.trace import WorkloadTrace, trace_model
from repro.fhe.params import ATHENA as ATHENA_PARAMS

#: Published ResNet-20 latencies (ms) used as calibration anchors
#: (baselines: their own papers, as collected in this paper's Table 6;
#: Athena: this paper's Table 6, w7a7).
CALIBRATION_ANCHORS_MS = {
    "craterlake": 321.0,
    "ark": 125.0,
    "bts": 1910.0,
    "sharp": 99.0,
    "athena": 65.5,
}

#: The paper's full Table 6 for comparison in reports (ms).
PAPER_TABLE6 = {
    "craterlake": {"lenet": 182, "mnist_cnn": 35, "resnet20": 321, "resnet56": 946},
    "ark": {"lenet": 71, "mnist_cnn": 14, "resnet20": 125, "resnet56": 368},
    "bts": {"lenet": 1084, "mnist_cnn": 206, "resnet20": 1910, "resnet56": 5627},
    "sharp": {"lenet": 56, "mnist_cnn": 11, "resnet20": 99, "resnet56": 292},
    "athena-w7a7": {"lenet": 26.6, "mnist_cnn": 9.2, "resnet20": 65.5, "resnet56": 198.7},
    "athena-w6a7": {"lenet": 24.1, "mnist_cnn": 7.3, "resnet20": 54.9, "resnet56": 157.8},
}

#: The paper's Table 7 (EDP, J*s).
PAPER_TABLE7 = {
    "craterlake": {"lenet": 3.73, "mnist_cnn": 0.42, "resnet20": 11.61, "resnet56": 100.86},
    "ark": {"lenet": 0.64, "mnist_cnn": 0.138, "resnet20": 1.99, "resnet56": 17.25},
    "bts": {"lenet": 193.46, "mnist_cnn": 6.987, "resnet20": 600.6, "resnet56": 5213},
    "sharp": {"lenet": 0.31, "mnist_cnn": 0.012, "resnet20": 0.96, "resnet56": 8.36},
    "athena-w7a7": {"lenet": 0.056, "mnist_cnn": 0.008, "resnet20": 0.35, "resnet56": 3.32},
    "athena-w6a7": {"lenet": 0.050, "mnist_cnn": 0.005, "resnet20": 0.24, "resnet56": 1.96},
}


@lru_cache(maxsize=None)
def calibrated_baseline(name: str) -> AcceleratorConfig:
    """Baseline config with efficiency fitted on its published ResNet-20."""
    cfg = by_name(name)
    raw = schedule(ckks_trace("resnet20"), replace(cfg, efficiency=1.0))
    target = CALIBRATION_ANCHORS_MS[name]
    eff = raw.total_ms / target
    return replace(cfg, efficiency=eff)


def baseline_run(name: str, model: str) -> ScheduleResult:
    """CKKS pipeline of ``model`` on a calibrated baseline accelerator."""
    return schedule(ckks_trace(model), calibrated_baseline(name))


@lru_cache(maxsize=1)
def _athena_calibration() -> float:
    """Athena efficiency fitted on the paper's ResNet-20 (w7a7) using a
    reference ResNet-20 trace with Fig. 4-scale MAC peaks."""
    trace = reference_athena_trace("resnet20")
    raw = schedule(trace, replace(ATHENA_ACCEL, efficiency=1.0))
    return raw.total_ms / CALIBRATION_ANCHORS_MS["athena"]


def calibrated_athena() -> AcceleratorConfig:
    return replace(ATHENA_ACCEL, efficiency=_athena_calibration())


@lru_cache(maxsize=None)
def reference_athena_trace(model: str, t_cap: int | None = None) -> WorkloadTrace:
    """Athena trace for a benchmark model built from its architecture alone
    (weights untrained; MAC peaks set to Fig. 4-representative 2^14)."""
    from repro.data import synthetic_cifar, synthetic_digits
    from repro.quant.models import build
    from repro.quant.quantize import QuantConfig, quantize_model

    rng = np.random.default_rng(7)
    if model in ("mnist_cnn", "lenet"):
        calib, _ = synthetic_digits(8, rng)
    else:
        calib, _ = synthetic_cifar(8, rng)
    net = build(model, rng=np.random.default_rng(11))
    qm = quantize_model(net, calib, QuantConfig(7, 7), model)
    # Representative Fig. 4 MAC scale; precision sweeps shift it via t_cap
    # (MAC peaks track the quantization range the cap encodes).
    peak = (t_cap // 2) if t_cap else (1 << 14)
    for layer in qm.mac_layers():
        layer.mac_peak = peak
    return trace_model(qm, ATHENA_PARAMS, t_eff=t_cap)


def athena_run(model: str, qmodel=None, t_cap: int | None = None) -> ScheduleResult:
    """Athena-accelerator run; pass a calibrated ``qmodel`` for real MAC
    peaks, otherwise the reference trace is used."""
    if qmodel is not None:
        trace = trace_model(qmodel, ATHENA_PARAMS, t_eff=t_cap)
    else:
        trace = reference_athena_trace(model, t_cap)
    return schedule(trace, calibrated_athena())


def athena_run_w6a7(model: str, qmodel=None) -> ScheduleResult:
    """w6a7 mode: smaller accumulations => smaller effective LUTs (the paper
    halves the MAC range with 6-bit weights)."""
    if qmodel is None:
        trace = reference_athena_trace(model, t_cap=None)
        # emulate halved MAC peaks by rebuilding with t capped at 2^14
        trace = reference_athena_trace(model, t_cap=1 << 14)
    else:
        trace = trace_model(qmodel, ATHENA_PARAMS)
    return schedule(trace, calibrated_athena())


@dataclass
class FullSystemRow:
    accelerator: str
    model: str
    time_ms: float
    energy: EnergyResult


def table6(models: tuple[str, ...] = MODEL_NAMES) -> dict[str, dict[str, float]]:
    """Regenerate Table 6: latency (ms) per accelerator per benchmark."""
    out: dict[str, dict[str, float]] = {}
    for name in [cfg.name for cfg in BASELINES]:
        out[name] = {m: baseline_run(name, m).total_ms for m in models}
    out["athena-w7a7"] = {m: athena_run(m).total_ms for m in models}
    out["athena-w6a7"] = {m: athena_run_w6a7(m).total_ms for m in models}
    return out


def table7(models: tuple[str, ...] = MODEL_NAMES) -> dict[str, dict[str, float]]:
    """Regenerate Table 7: EDP (J*s)."""
    out: dict[str, dict[str, float]] = {}
    for name in [cfg.name for cfg in BASELINES]:
        cfg = calibrated_baseline(name)
        out[name] = {
            m: energy_for(baseline_run(name, m), cfg).edp for m in models
        }
    cfg = calibrated_athena()
    out["athena-w7a7"] = {
        m: energy_for(athena_run(m), cfg).edp for m in models
    }
    out["athena-w6a7"] = {
        m: energy_for(athena_run_w6a7(m), cfg).edp for m in models
    }
    return out


def edap(models: tuple[str, ...] = MODEL_NAMES) -> dict[str, dict[str, float]]:
    """Fig. 11: EDP x area."""
    table = table7(models)
    out: dict[str, dict[str, float]] = {}
    for name, row in table.items():
        area = (
            ATHENA_ACCEL.area_mm2 if name.startswith("athena") else by_name(name).area_mm2
        )
        out[name] = {m: v * area for m, v in row.items()}
    return out


def cross_deployment(model: str = "resnet20") -> dict[str, float]:
    """Fig. 8: the *Athena framework* deployed on SHARP / CraterLake vs the
    Athena accelerator.

    Baselines get an SE unit for free, per the paper, and all three designs
    are scheduled with the *same* efficiency factor so the comparison
    isolates architecture (unit mix, dataflow) rather than the CKKS-fitted
    utilization constants.
    """
    trace = reference_athena_trace(model)
    eff = _athena_calibration()
    out = {"athena": schedule(trace, calibrated_athena()).total_ms}
    for name in ("sharp", "craterlake"):
        cfg = replace(by_name(name), efficiency=eff)
        out[name] = schedule(trace, cfg).total_ms
    return out
