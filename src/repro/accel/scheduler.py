"""Cycle scheduler: map an FHE op trace onto an accelerator configuration.

Model: each pipeline phase's latency is the *maximum* over its resource
demands (deeply pipelined units overlap within a phase), divided by the
architecture's calibrated efficiency factor:

    cycles(phase) = max(ntt, fru, automorph, extract, rnsconv,
                        scratchpad-BW, HBM-BW) / efficiency

with one exception that drives the paper's Fig. 8 result: FBS phases on
architectures *without* the two-region dataflow serialize the baby-step
(FRU-class elementwise) work against the giant-step (NTT/keyswitch) work,
so their FBS latency uses (fru + ntt + rnsconv) instead of the max.

Architectures without an SE unit get one "for ease of comparison", as the
paper does for Fig. 8 (extraction falls back to 1-per-cycle shifting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.configs import AcceleratorConfig
from repro.core.trace import OpCounts, WorkloadTrace
from repro.errors import ScheduleError


@dataclass
class PhaseResult:
    phase: str
    layer: str
    cycles: float
    bound: str  # which resource bound this phase
    resource_cycles: dict[str, float] = field(default_factory=dict)


@dataclass
class ScheduleResult:
    accelerator: str
    model: str
    phases: list[PhaseResult]
    frequency_ghz: float

    @property
    def total_cycles(self) -> float:
        return sum(p.cycles for p in self.phases)

    @property
    def total_ms(self) -> float:
        return self.total_cycles / (self.frequency_ghz * 1e9) * 1e3

    def ms_by_phase(self) -> dict[str, float]:
        out: dict[str, float] = {}
        scale = 1.0 / (self.frequency_ghz * 1e9) * 1e3
        for p in self.phases:
            out[p.phase] = out.get(p.phase, 0.0) + p.cycles * scale
        return out

    def busy_cycles_by_resource(self) -> dict[str, float]:
        """Per-resource busy cycles (drives the energy model)."""
        out: dict[str, float] = {}
        for p in self.phases:
            for res, cyc in p.resource_cycles.items():
                out[res] = out.get(res, 0.0) + cyc
        return out


def _resource_cycles(
    ops: OpCounts, cfg: AcceleratorConfig, ring_n: int
) -> dict[str, float]:
    """Raw per-resource busy cycles for one phase's op counts."""
    # NTT units are deeply pipelined stream processors: a new limb-NTT can
    # be issued every N/lanes cycles (the radix only changes how many
    # pipeline passes — area — not steady-state throughput).
    ntt_c = ops.ntt * ring_n / cfg.ntt_butterflies
    fru_c = max(
        ops.mod_mul / cfg.mod_mul_tput,
        ops.mod_add / cfg.mod_add_tput,
    )
    auto_c = ops.automorph * ring_n / cfg.automorph_tput
    extract_tput = cfg.extract_tput if cfg.extract_tput > 0 else 1
    se_c = ops.extract / extract_tput
    rns_c = ops.rnsconv / cfg.rnsconv_tput
    # Memory: the FRU cascades MM into MA with register-file accumulators
    # and constant registers (paper Fig. 5), so a fused multiply-accumulate
    # streams ~one 4-byte word per MM+MA pair (~2 bytes per counted op);
    # NTT passes stream operands once per stage group.
    touched_bytes = (ops.mod_mul + ops.mod_add + ops.rnsconv) * 2 + ops.ntt * ring_n * 2
    scratch_bpc = cfg.scratchpad_bw_tbs * 1e12 / (cfg.frequency_ghz * 1e9)
    mem_c = touched_bytes / scratch_bpc
    hbm_bpc = cfg.hbm_bw_tbs * 1e12 / (cfg.frequency_ghz * 1e9)
    hbm_c = ops.hbm_bytes / hbm_bpc
    return {
        "ntt": ntt_c,
        "fru": fru_c,
        "automorph": auto_c,
        "se": se_c,
        "rnsconv": rns_c,
        "scratchpad": mem_c,
        "hbm": hbm_c,
    }


def schedule_phase(
    phase: str, ops: OpCounts, cfg: AcceleratorConfig, ring_n: int
) -> tuple[float, str, dict[str, float]]:
    res = _resource_cycles(ops, cfg, ring_n)
    if phase.endswith("_giant") and cfg.fbs_region_overlap:
        # Region 0 hosts only a fraction of the FRU array: the giant half's
        # elementwise and base-conversion work contend for that slice.
        res["fru"] = res["fru"] / cfg.giant_fru_fraction
        res["rnsconv"] = res["rnsconv"] / cfg.giant_fru_fraction
    if phase.endswith("_giant") and not cfg.fbs_region_overlap:
        # No two-region dataflow: the giant (CMult/NTT/base-conv) half
        # serializes against the baby half instead of hiding behind it.
        serial = res["fru"] + res["ntt"] + res["rnsconv"]
        candidates = {**res, "fbs-serial": serial}
        del candidates["fru"], candidates["ntt"], candidates["rnsconv"]
    else:
        candidates = dict(res)
    bound = max(candidates, key=candidates.get)  # type: ignore[arg-type]
    cycles = candidates[bound] / cfg.efficiency
    return cycles, bound, res


def schedule(trace: WorkloadTrace, cfg: AcceleratorConfig) -> ScheduleResult:
    if not trace.phases:
        raise ScheduleError("empty trace")
    ring_n = trace.params.n
    phases: list[PhaseResult] = []
    for p in trace.phases:
        cycles, bound, res = schedule_phase(p.phase, p.ops, cfg, ring_n)
        result = PhaseResult(p.phase, p.layer, cycles, bound, res)
        prev = phases[-1] if phases else None
        if (
            cfg.fbs_region_overlap
            and p.phase.endswith("_giant")
            and prev is not None
            and prev.layer == p.layer
            and p.phase == f"{prev.phase}_giant"
        ):
            # Two-region dataflow (paper Fig. 7): the baby (Region 1) and
            # giant (Region 0) halves run concurrently — latency is the max.
            merged = max(prev.cycles, cycles)
            prev.bound = prev.bound if prev.cycles >= cycles else bound
            prev.cycles = merged
            for k, v in res.items():
                prev.resource_cycles[k] = prev.resource_cycles.get(k, 0.0) + v
            continue
        phases.append(result)
    # Fold *_giant names back into their base phase for reporting.
    for p in phases:
        if p.phase.endswith("_giant"):
            p.phase = p.phase[: -len("_giant")]
    return ScheduleResult(cfg.name, trace.model, phases, cfg.frequency_ghz)


def schedule_executed(
    counting, params, cfg: AcceleratorConfig, model: str = "executed"
) -> ScheduleResult:
    """Schedule ops *actually executed* by a counting backend.

    Convenience wrapper over :func:`repro.core.trace.executed_trace`: run a
    workload under a :class:`repro.fhe.backend.CountingBackend`, then hand
    its per-phase records here to see what the accelerator would do with
    the real op stream instead of the analytical model's predictions.
    """
    from repro.core.trace import executed_trace

    return schedule(executed_trace(counting, params, model=model), cfg)
