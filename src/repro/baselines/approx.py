"""Polynomial-approximation study for the paper's Figure 1.

CKKS-based pipelines evaluate non-linearities via series expansion under a
fixed-point budget: the scaling factor Delta determines how many fractional
bits survive each multiplication. This module reproduces the study:

* ReLU and sigmoid approximated by Taylor (sigmoid; least-squares for the
  non-analytic ReLU, as expansion-based works do) and Chebyshev series of
  orders 1..64;
* every coefficient and every intermediate product quantized to Delta
  fractional bits, mimicking CKKS rescaling;
* accuracy reported in *bits*: -log2(max |error|) against a 40-bit ground
  truth, plus a model-level probe (approximate ReLU inside a trained CNN).

The qualitative conclusions to reproduce: more orders help, a plaintext
ceiling remains (red line), Delta=25 collapses to ~2 bits, and ReLU fares
worse than sigmoid — the instability that motivates Athena's exact LUTs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.polynomial import chebyshev as C

GROUND_TRUTH_BITS = 40


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)

def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def chebyshev_coeffs(fn, order: int, domain: float = 1.0) -> np.ndarray:
    """Chebyshev interpolation coefficients of fn on [-domain, domain]."""
    nodes = np.cos(np.pi * (np.arange(order + 1) + 0.5) / (order + 1)) * domain
    vals = fn(nodes)
    return C.chebfit(nodes / domain, vals, order)


def taylor_coeffs(fn_name: str, order: int) -> np.ndarray:
    """Power-series coefficients around 0 (monomial basis).

    Sigmoid has a classical expansion; ReLU is not analytic, so — as
    expansion-based FHE works do in practice — we use the least-squares
    polynomial fit on the target interval as its "Taylor-style" stand-in.
    """
    if fn_name == "sigmoid":
        # sigmoid(x) = 1/2 + x/4 - x^3/48 + x^5/480 - 17x^7/80640 + ...
        known = [0.5, 0.25, 0.0, -1 / 48, 0.0, 1 / 480, 0.0, -17 / 80640,
                 0.0, 31 / 1451520, 0.0, -691 / 319334400]
        coeffs = np.zeros(order + 1)
        upto = min(order + 1, len(known))
        coeffs[:upto] = known[:upto]
        return coeffs
    if fn_name == "relu":
        x = np.linspace(-1, 1, 512)
        return np.polynomial.polynomial.polyfit(x, relu(x), order)
    raise KeyError(fn_name)


#: Effective precision lost to ciphertext noise per rescale at the CKKS
#: baseline parameters (N = 2^16): the surviving fractional accuracy after
#: one homomorphic product is ~Delta - 23 bits, which is why the paper's
#: Delta = 25 curves collapse to ~2 bits.
CKKS_NOISE_BITS = 23


def _quantize(values: np.ndarray, delta_bits: int) -> np.ndarray:
    scale = 2.0 ** delta_bits
    return np.rint(values * scale) / scale


def eval_fixed_point(
    coeffs: np.ndarray, x: np.ndarray, delta_bits: int, basis: str = "monomial"
) -> np.ndarray:
    """Horner/Clenshaw evaluation with the CKKS per-rescale precision model:
    every homomorphic product keeps only (Delta - noise) fractional bits."""
    q = lambda v: _quantize(v, max(1, delta_bits - CKKS_NOISE_BITS))
    x = q(x)
    c = q(np.asarray(coeffs, dtype=np.float64))
    if basis == "monomial":
        acc = np.zeros_like(x) + c[-1]
        for k in range(len(c) - 2, -1, -1):
            acc = q(acc * x) + c[k]
        return acc
    if basis == "chebyshev":
        b1 = np.zeros_like(x)
        b2 = np.zeros_like(x)
        for k in range(len(c) - 1, 0, -1):
            b1, b2 = q(2 * x * b1) - b2 + c[k], b1
        return q(x * b1) - b2 + c[0]
    raise KeyError(basis)


def bit_accuracy(approx: np.ndarray, exact: np.ndarray) -> float:
    """-log2(max |err|), capped at the 40-bit ground-truth resolution."""
    err = float(np.max(np.abs(approx - exact)))
    if err <= 2.0**-GROUND_TRUTH_BITS:
        return float(GROUND_TRUTH_BITS)
    return -math.log2(err)


@dataclass
class ApproxPoint:
    function: str  # relu | sigmoid
    method: str  # taylor | chebyshev
    order: int
    delta_bits: int | None  # None = plaintext double precision
    accuracy_bits: float


def sweep(
    functions: tuple[str, ...] = ("relu", "sigmoid"),
    methods: tuple[str, ...] = ("taylor", "chebyshev"),
    orders: tuple[int, ...] = (2, 4, 8, 16, 32, 64),
    deltas: tuple[int | None, ...] = (None, 25, 30, 35),
    samples: int = 2001,
) -> list[ApproxPoint]:
    """The full Fig. 1 grid."""
    x = np.linspace(-1, 1, samples)
    out: list[ApproxPoint] = []
    exact = {"relu": relu(x), "sigmoid": sigmoid(x)}
    for fn_name in functions:
        for method in methods:
            for order in orders:
                if method == "chebyshev":
                    coeffs = chebyshev_coeffs(
                        relu if fn_name == "relu" else sigmoid, order
                    )
                    basis = "chebyshev"
                else:
                    coeffs = taylor_coeffs(fn_name, order)
                    basis = "monomial"
                for delta in deltas:
                    if delta is None:
                        approx = (
                            C.chebval(x, coeffs) if basis == "chebyshev"
                            else np.polynomial.polynomial.polyval(x, coeffs)
                        )
                    else:
                        approx = eval_fixed_point(coeffs, x, delta, basis)
                    out.append(
                        ApproxPoint(fn_name, method, order, delta,
                                    bit_accuracy(approx, exact[fn_name]))
                    )
    return out


def model_probe(
    model, x_test: np.ndarray, order: int, delta_bits: int | None
) -> float:
    """Fig. 1's CNN probe: run a float model with approximated ReLU and
    report the output-probability agreement in bits."""
    from repro.quant.nn import ReLU, Residual, Sequential, softmax

    coeffs = chebyshev_coeffs(relu, order)

    def approx_relu(v: np.ndarray) -> np.ndarray:
        scale = max(float(np.abs(v).max()), 1e-9)
        unit = v / scale
        if delta_bits is None:
            return C.chebval(unit, coeffs) * scale
        return eval_fixed_point(coeffs, unit, delta_bits, "chebyshev") * scale

    def run(layers, x, exact: bool):
        for layer in layers:
            if isinstance(layer, ReLU):
                x = relu(x) if exact else approx_relu(x)
            elif isinstance(layer, Residual):
                main = run(layer.body.layers, x, exact)
                skip = run(layer.shortcut.layers, x, exact) if layer.shortcut else x
                total = main + skip
                x = relu(total) if exact else approx_relu(total)
            elif isinstance(layer, Sequential):
                x = run(layer.layers, x, exact)
            else:
                x = layer.forward(x)
        return x

    exact_probs = softmax(run(model.layers, x_test, True))
    approx_probs = softmax(run(model.layers, x_test, False))
    return bit_accuracy(approx_probs, exact_probs)
