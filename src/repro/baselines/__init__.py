"""Baseline-method models: CKKS-style polynomial approximation study."""

from repro.baselines.approx import ApproxPoint, bit_accuracy, model_probe, sweep

__all__ = ["ApproxPoint", "bit_accuracy", "model_probe", "sweep"]
