"""A warm inference session: one compiled model, many encrypted requests."""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext

import numpy as np

from repro.core.framework import AthenaPipeline, LoopCost
from repro.core.plan import CompiledProgram, compile_program
from repro.core.program import AthenaProgram, lower
from repro.fhe.backend import Backend, get_backend, use_backend
from repro.fhe.params import TEST_LOOP, FheParams
from repro.perf import ParallelMap, PerfRecorder


class InferenceSession:
    """Compile once, run many: the warm-serving façade over the pipeline.

    Construction does all request-invariant work — key generation, then
    either plan compilation, a :class:`repro.serve.PlanCache` lookup, or
    binding a caller-supplied deserialized plan — and records its duration
    as ``compile_s``. Each :meth:`run` then performs only ciphertext ops,
    timed by a fresh per-request :class:`PerfRecorder` (so ``compile_s``
    and per-request ``run_s`` never mix; a cold ``run_program`` instead
    carries its compile inside the run span under the ``compile`` phase).

    Requests are serialized by an internal lock — the pipeline's recorder
    attachment and deterministic randomness are per-pipeline state — while
    each request still fans out its chunked tiles through ``pmap``
    internally. Outputs are bit-identical to a plan-free
    :meth:`AthenaPipeline.run_program` on the same pipeline state: the plan
    only moves operand derivation to compile time, never changing the
    homomorphic op sequence.

    ``backend`` pins this session's op dispatch (a
    :class:`repro.fhe.backend.Backend` instance or name). Selection is
    context-local, so concurrent sessions on *different* backends never
    interfere — the thread-safety claim above holds per session, not per
    process. A :class:`~repro.fhe.backend.CountingBackend` here turns every
    request into an executed-op trace (see ``session.backend.summary()``).
    """

    def __init__(
        self,
        model,
        params: FheParams | None = None,
        seed: int = 0,
        chunk: int | None = None,
        pmap: ParallelMap | None = None,
        plan: CompiledProgram | None = None,
        cache=None,
        backend: Backend | str | None = None,
    ):
        if isinstance(model, AthenaProgram):
            program = model
            params = params or program.params
        else:
            params = params or TEST_LOOP
            program = lower(model, params)
        self.program = program
        self.params = params
        self.backend = get_backend(backend) if backend is not None else None
        self.pipeline = AthenaPipeline(params, seed=seed, backend=self.backend)
        self.pmap = pmap
        self._lock = threading.Lock()
        start = time.perf_counter()
        with self._dispatch():
            if plan is not None:
                plan.bind(program, params)
            elif cache is not None:
                plan = cache.get(program, params, chunk)
            else:
                plan = compile_program(program, params, chunk=chunk)
        self.plan = plan
        self.compile_s = time.perf_counter() - start
        self.requests = 0
        self.run_s = 0.0
        self.last_perf: PerfRecorder | None = None

    def _dispatch(self):
        return use_backend(self.backend) if self.backend is not None else nullcontext()

    def run(
        self,
        x_q: np.ndarray,
        cost: LoopCost | None = None,
        perf: PerfRecorder | None = None,
    ) -> np.ndarray:
        """One encrypted inference; returns centered integer outputs."""
        recorder = perf if perf is not None else PerfRecorder()
        with self._lock:
            previous = self.pipeline.perf
            self.pipeline.attach_perf(recorder)
            try:
                out = self.pipeline.run_program(
                    self.program, x_q, cost, pmap=self.pmap, plan=self.plan
                )
            finally:
                self.pipeline.attach_perf(previous)
        self.requests += 1
        self.run_s += recorder.wall_s
        self.last_perf = recorder
        return out

    def stats(self) -> dict:
        """JSON-ready session accounting: compile vs run phases, separated."""
        return {
            "model": self.program.name,
            "model_hash": self.plan.model_hash,
            "backend": self.backend.name if self.backend is not None else None,
            "compile_s": round(self.compile_s, 6),
            "requests": self.requests,
            "run_s": round(self.run_s, 6),
            "mean_run_s": (
                round(self.run_s / self.requests, 6) if self.requests else None
            ),
        }
