"""Warm inference sessions, split into a picklable core and a runtime.

The compile-once/run-many split of PR 3 had one seam left to open: the
:class:`InferenceSession` façade fused *what a session knows* (the lowered
program, the parameter set, the compiled plan — all request-invariant and
key-free) with *what a session holds* (generated keys, an attached
pipeline, a request lock). A multi-worker serving deployment needs those
halves apart: the knowledge is compiled once and shipped to every worker,
while each worker generates its own key material and answers requests
locally.

* :class:`SessionCore` — the picklable compile-time half. Contains no key
  material, no locks, and no pipeline; a core can cross a process boundary
  (``pickle``), which is how :class:`repro.serve.workers.WorkerPool` seeds
  process workers with warm sessions.
* :class:`SessionRuntime` — the per-worker half: key generation, the
  pipeline, the request lock, and request bookkeeping (including a
  per-request latency log so :meth:`SessionRuntime.stats` reports p50/p99).
* :class:`InferenceSession` — the original façade, now a thin composition
  of one core and one runtime. Its constructor signature and semantics are
  unchanged.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.core.framework import AthenaPipeline, LoopCost
from repro.core.plan import CompiledProgram, compile_program
from repro.core.program import AthenaProgram, lower
from repro.fhe.backend import Backend, get_backend, use_backend
from repro.fhe.params import TEST_LOOP, FheParams
from repro.perf import ParallelMap, PerfRecorder
from repro.serve.api import LayerStats

__all__ = ["InferenceSession", "SessionCore", "SessionRuntime"]


def _percentile(latencies: list[float], q: float) -> float | None:
    """Latency percentile (seconds), ``None`` before the first request."""
    if not latencies:
        return None
    return round(float(np.percentile(np.asarray(latencies), q)), 6)


@dataclass
class SessionCore:
    """The request-invariant half of a session: program + params + plan.

    Everything here is plain data — numpy arrays, dataclasses, and at most
    a backend *name* — so a core pickles cleanly and can be built once in a
    control process, persisted through a :class:`repro.serve.PlanCache`,
    and handed to any number of workers. Pass ``backend`` as a name (not an
    instance) when a core must cross a process boundary; stateful backend
    instances (e.g. a populated CountingBackend) are kept by reference and
    only survive pickling if they themselves do.
    """

    program: AthenaProgram
    params: FheParams
    plan: CompiledProgram
    seed: int = 0
    backend: Backend | str | None = None
    compile_s: float = 0.0

    @property
    def fingerprint(self) -> str:
        """The plan's model hash — the cache/sharding key for this model."""
        return self.plan.model_hash

    @classmethod
    def build(
        cls,
        model,
        params: FheParams | None = None,
        seed: int = 0,
        chunk: int | None = None,
        plan: CompiledProgram | None = None,
        cache=None,
        backend: Backend | str | None = None,
        tuning=None,
    ) -> "SessionCore":
        """Lower + compile (or cache-load, or bind) the compile-time half.

        Mirrors the historical ``InferenceSession`` constructor: ``model``
        may be a quantized model or a pre-lowered program; ``plan`` binds a
        caller-supplied deserialized plan, ``cache`` consults a
        :class:`repro.serve.PlanCache`, and otherwise the program is
        compiled here. The duration of that plan work is ``compile_s``.
        ``tuning`` (a :class:`repro.core.lowering.TuningConfig`, e.g. from
        :func:`repro.core.tune.tune_model`) selects per-step encodings and
        is part of the cache key — tuned and untuned cores never share a
        cached plan.
        """
        if isinstance(model, AthenaProgram):
            program = model
            params = params or program.params
        else:
            params = params or TEST_LOOP
            program = lower(model, params)
        dispatch = use_backend(backend) if backend is not None else nullcontext()
        start = time.perf_counter()
        with dispatch:
            if plan is not None:
                plan.bind(program, params)
            elif cache is not None:
                plan = cache.get(program, params, chunk, tuning)
            else:
                plan = compile_program(
                    program, params, chunk=chunk, tuning=tuning
                )
        return cls(
            program=program,
            params=params,
            plan=plan,
            seed=seed,
            backend=backend,
            compile_s=time.perf_counter() - start,
        )


class SessionRuntime:
    """The per-worker half: keys, pipeline, lock, request bookkeeping.

    Construction generates this runtime's key material deterministically
    from ``core.seed`` (timed as ``keygen_s``), so every worker built from
    the same core holds identical keys and — given the same request order —
    produces bit-identical outputs.

    :meth:`run` serializes requests on an internal lock; *all* bookkeeping
    (request count, accumulated run time, the per-request latency log, and
    ``last_perf``) is updated inside that lock, so concurrent callers never
    lose updates and :meth:`stats` always reports a consistent snapshot,
    including p50/p99 request latency.
    """

    def __init__(self, core: SessionCore, pmap: ParallelMap | None = None):
        self.core = core
        self.backend = (
            get_backend(core.backend) if core.backend is not None else None
        )
        start = time.perf_counter()
        self.pipeline = AthenaPipeline(
            core.params, seed=core.seed, backend=self.backend
        )
        self.keygen_s = time.perf_counter() - start
        self.pmap = pmap
        self._lock = threading.Lock()
        self.requests = 0
        #: Fused pipeline executions (a k-lane batch is one run, k requests).
        self.runs = 0
        self.max_lanes = 0
        self.run_s = 0.0
        self.latencies: list[float] = []
        self.last_perf: PerfRecorder | None = None

    @property
    def batch_capacity(self) -> int:
        """Lanes one ciphertext can carry through this session's plan."""
        return self.core.plan.batch_capacity

    def run(
        self,
        x_q: np.ndarray,
        cost: LoopCost | None = None,
        perf: PerfRecorder | None = None,
    ) -> np.ndarray:
        """One encrypted inference; returns centered integer outputs."""
        return self.run_batch([x_q], cost, perf)[0]

    def run_batch(
        self,
        xs: list[np.ndarray],
        cost: LoopCost | None = None,
        perf: PerfRecorder | None = None,
    ) -> list[np.ndarray]:
        """One *fused* execution answering ``len(xs)`` requests at once.

        The inputs share a single ciphertext (lane count bounded by the
        plan's ``batch_capacity``), so the whole batch pays one five-step
        loop per layer; per-request amortized cost is ``run_s / requests``.
        A single-input batch is exactly the :meth:`run` op sequence.
        Returns one centered integer output array per input, in order.
        """
        core = self.core
        recorder = perf if perf is not None else PerfRecorder()
        with self._lock:
            previous = self.pipeline.perf
            self.pipeline.attach_perf(recorder)
            try:
                outs = self.pipeline.run_batch(
                    core.program, xs, cost, pmap=self.pmap, plan=core.plan
                )
            finally:
                self.pipeline.attach_perf(previous)
            self.requests += len(xs)
            self.runs += 1
            self.max_lanes = max(self.max_lanes, len(xs))
            self.run_s += recorder.wall_s
            self.latencies.append(recorder.wall_s)
            self.last_perf = recorder
        return outs

    def stats(self) -> LayerStats:
        """Uniform-schema accounting: compile vs keygen vs run, p50/p99.

        ``timings["amortized_request_s"]`` is run seconds divided by
        *requests* (lanes), the cost-per-inference batching buys down;
        ``mean_run_s`` and the percentiles are per fused *execution*.
        """
        with self._lock:
            requests = self.requests
            runs = self.runs
            run_s = self.run_s
            latencies = list(self.latencies)
            max_lanes = self.max_lanes
        core = self.core
        return LayerStats(
            layer="session",
            requests=requests,
            counters={
                "runs": runs,
                "batch_capacity": self.batch_capacity,
                "max_lanes": max_lanes,
            },
            timings={
                "compile_s": round(core.compile_s, 6),
                "keygen_s": round(self.keygen_s, 6),
                "run_s": round(run_s, 6),
                "mean_run_s": round(run_s / runs, 6) if runs else None,
                "amortized_request_s": (
                    round(run_s / requests, 6) if requests else None
                ),
                "run_p50_s": _percentile(latencies, 50),
                "run_p99_s": _percentile(latencies, 99),
            },
            detail={
                "model": core.program.name,
                "model_hash": core.fingerprint,
                "backend": (
                    self.backend.name if self.backend is not None else None
                ),
            },
        )


class InferenceSession:
    """Compile once, run many: the warm-serving façade over the pipeline.

    Construction does all request-invariant work — plan compilation, a
    :class:`repro.serve.PlanCache` lookup, or binding a caller-supplied
    deserialized plan (the :class:`SessionCore`, its duration recorded as
    ``compile_s``) — then key generation and pipeline setup (the
    :class:`SessionRuntime`). Each :meth:`run` performs only ciphertext
    ops, timed by a fresh per-request :class:`PerfRecorder` (so
    ``compile_s`` and per-request ``run_s`` never mix; a cold
    ``run_program`` instead carries its compile inside the run span under
    the ``compile`` phase).

    Requests are serialized by the runtime's lock — the pipeline's recorder
    attachment and deterministic randomness are per-pipeline state — while
    each request still fans out its chunked tiles through ``pmap``
    internally. Outputs are bit-identical to a plan-free
    :meth:`AthenaPipeline.run_program` on the same pipeline state: the plan
    only moves operand derivation to compile time, never changing the
    homomorphic op sequence.

    ``backend`` pins this session's op dispatch (a
    :class:`repro.fhe.backend.Backend` instance or name). Selection is
    context-local, so concurrent sessions on *different* backends never
    interfere — the thread-safety claim above holds per session, not per
    process. A :class:`~repro.fhe.backend.CountingBackend` here turns every
    request into an executed-op trace (see ``session.backend.summary()``).

    The session is a composition of its two halves (``session.core``,
    ``session.runtime``); multi-worker deployments use those directly (one
    core, many runtimes) through :class:`repro.serve.AthenaService`.
    """

    def __init__(
        self,
        model,
        params: FheParams | None = None,
        seed: int = 0,
        chunk: int | None = None,
        pmap: ParallelMap | None = None,
        plan: CompiledProgram | None = None,
        cache=None,
        backend: Backend | str | None = None,
        tuning=None,
    ):
        self.core = SessionCore.build(
            model,
            params=params,
            seed=seed,
            chunk=chunk,
            plan=plan,
            cache=cache,
            backend=backend,
            tuning=tuning,
        )
        self.runtime = SessionRuntime(self.core, pmap=pmap)

    # -- compile-time half -------------------------------------------------

    @property
    def program(self) -> AthenaProgram:
        return self.core.program

    @property
    def params(self) -> FheParams:
        return self.core.params

    @property
    def plan(self) -> CompiledProgram:
        return self.core.plan

    @property
    def compile_s(self) -> float:
        return self.core.compile_s

    # -- runtime half ------------------------------------------------------

    @property
    def backend(self) -> Backend | None:
        return self.runtime.backend

    @property
    def pipeline(self) -> AthenaPipeline:
        return self.runtime.pipeline

    @property
    def pmap(self) -> ParallelMap | None:
        return self.runtime.pmap

    @property
    def requests(self) -> int:
        return self.runtime.requests

    @property
    def run_s(self) -> float:
        return self.runtime.run_s

    @property
    def latencies(self) -> list[float]:
        return self.runtime.latencies

    @property
    def last_perf(self) -> PerfRecorder | None:
        return self.runtime.last_perf

    def run(
        self,
        x_q: np.ndarray,
        cost: LoopCost | None = None,
        perf: PerfRecorder | None = None,
    ) -> np.ndarray:
        """One encrypted inference; returns centered integer outputs."""
        return self.runtime.run(x_q, cost, perf)

    def run_batch(
        self,
        xs: list[np.ndarray],
        cost: LoopCost | None = None,
        perf: PerfRecorder | None = None,
    ) -> list[np.ndarray]:
        """Fused multi-image inference (see :meth:`SessionRuntime.run_batch`)."""
        return self.runtime.run_batch(xs, cost, perf)

    def stats(self) -> "LayerStats":
        """Session accounting in the uniform :class:`LayerStats` schema."""
        return self.runtime.stats()
