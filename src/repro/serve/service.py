"""Service façade: the four serving layers composed into one deployment.

:class:`AthenaService` wires tenant registry -> scheduler -> worker pool
over a shared (sharded) plan cache:

1. **tenant layer** (:mod:`repro.serve.tenant`) — who is served, under
   which parameters/seeds/backends, and what key material that implies.
2. **scheduler layer** (:mod:`repro.serve.scheduler`) — bounded per-tenant
   queues, synchronous admission control (reject/shed with
   :class:`~repro.errors.ServiceOverloaded`), round-robin fair dequeue.
3. **worker layer** (:mod:`repro.serve.workers`) — warm
   ``(tenant, model)`` sessions behind an :class:`~repro.perf.ExecConfig`
   executor (serial/thread/process), per-worker keys + pinned backends.
4. **this façade** — model registration through the shared
   :class:`~repro.serve.cache.ShardedPlanCache` (tenants sharing a model
   under the same parameters share one compiled artifact), the asyncio
   dispatch loop connecting scheduler to workers, and aggregate stats.

The request path is ``await service.submit(tenant, model, x)``:
admission happens synchronously inside ``submit`` (a shed request raises
before any work starts), then a dispatcher task — one per worker slot —
picks the request up fairly, optionally holds the slot for the configured
``transport_s`` window (modeling the per-connection ciphertext
upload/download an FHE deployment pays; at paper-scale parameters one
fresh ciphertext is ~5.9 MiB), and runs it on the pool.

Outputs are bit-identical to a direct
:meth:`repro.serve.InferenceSession.run` with the tenant's seed, provided
the per-runtime request order matches (each runtime's encryption
randomness is a deterministic stream) — ``serial``/single-worker pools
preserve submission order per tenant, which is what the equivalence tests
pin.
"""

from __future__ import annotations

import asyncio
from typing import Iterable

import numpy as np

from repro.core.program import AthenaProgram, lower
from repro.errors import ParameterError
from repro.fhe.params import FheParams
from repro.perf import ExecConfig, PerfRecorder
from repro.serve.cache import PlanCache, ShardedPlanCache
from repro.serve.scheduler import FairScheduler, ServiceRequest
from repro.serve.session import SessionCore
from repro.serve.tenant import Tenant, TenantRegistry
from repro.serve.workers import WorkerPool

__all__ = ["AthenaService"]


class AthenaService:
    """Async multi-tenant inference service over warm sessions.

    Lifecycle: construct -> :meth:`register_model` (once per model) ->
    :meth:`start` -> any number of :meth:`submit` -> :meth:`stop`. The
    synchronous :meth:`serve_batch` wraps that whole cycle around one list
    of requests for callers without an event loop (CLI, tests).

    ``cache=None`` builds a memory-only :class:`ShardedPlanCache`, so
    co-located tenants still share compiled plans; pass a disk-backed
    cache to share them across processes and restarts.
    """

    def __init__(
        self,
        tenants: TenantRegistry | Iterable[Tenant],
        cache: PlanCache | None = None,
        exec_config: ExecConfig | None = None,
        queue_capacity: int = 8,
        transport_s: float = 0.0,
        perf: PerfRecorder | None = None,
    ):
        if isinstance(tenants, TenantRegistry):
            self.tenants = tenants
        else:
            self.tenants = TenantRegistry(tenants)
        if len(self.tenants) == 0:
            raise ParameterError("service needs at least one tenant")
        if transport_s < 0:
            raise ParameterError("transport window cannot be negative")
        self.cache = cache if cache is not None else ShardedPlanCache(None)
        self.exec_config = (
            exec_config if exec_config is not None else ExecConfig("thread")
        )
        self.queue_capacity = queue_capacity
        self.transport_s = transport_s
        self.perf = perf if perf is not None else PerfRecorder()
        self.models: dict[str, str] = {}  # name -> program fingerprint
        self._cores: dict[tuple[str, str], SessionCore] = {}
        self.pool: WorkerPool | None = None
        self.scheduler: FairScheduler | None = None
        self._dispatchers: list[asyncio.Task] = []
        self._per_tenant_requests: dict[str, int] = {
            tid: 0 for tid in self.tenants.ids()
        }

    # -- model registration (compile once, share via the cache) ------------

    def register_model(
        self,
        name: str,
        model,
        chunk: int | None = None,
    ) -> str:
        """Compile ``model`` for every tenant; returns its fingerprint.

        ``model`` is a quantized model (lowered per tenant parameter set)
        or a pre-lowered :class:`AthenaProgram` (then every tenant must use
        its parameter set). Compilation goes through the shared plan cache,
        so the first tenant pays the compile and every further tenant with
        the same parameters gets a cache hit — the sharing the fingerprint
        sharding exists for.
        """
        if self.pool is not None:
            raise ParameterError("register models before start()")
        if name in self.models:
            raise ParameterError(f"model {name!r} already registered")
        fingerprint: str | None = None
        for tenant in self.tenants:
            if isinstance(model, AthenaProgram):
                if tenant.params != model.params:
                    raise ParameterError(
                        "pre-lowered programs require every tenant to use "
                        "the program's parameter set; register the "
                        "quantized model instead"
                    )
                program = model
            else:
                program = lower(model, tenant.params)
            core = SessionCore.build(
                program,
                tenant.params,
                seed=tenant.seed,
                chunk=chunk,
                cache=self.cache,
                backend=tenant.backend,
            )
            if fingerprint is None:
                fingerprint = core.fingerprint
            elif core.fingerprint != fingerprint:
                raise ParameterError(
                    f"model {name!r} lowers to different fingerprints "
                    "across tenants"
                )
            self._cores[(tenant.tenant_id, name)] = core
        self.models[name] = fingerprint
        return fingerprint

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Warm the workers (keygen everywhere) and open the front door."""
        if self.pool is not None:
            raise ParameterError("service already started")
        if not self._cores:
            raise ParameterError("register at least one model before start()")
        self.pool = WorkerPool(self._cores, self.exec_config, perf=self.perf)
        self.pool.start()
        self.scheduler = FairScheduler(
            self.tenants.ids(), capacity=self.queue_capacity, perf=self.perf
        )
        self._dispatchers = [
            asyncio.create_task(self._dispatch())
            for _ in range(self.pool.slots)
        ]

    async def stop(self) -> None:
        """Drain the backlog, retire the dispatchers, stop the workers."""
        if self.scheduler is not None:
            self.scheduler.close()
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers)
            self._dispatchers = []
        if self.pool is not None:
            self.pool.stop()

    async def _dispatch(self) -> None:
        """One worker slot's loop: fair-dequeue -> transport -> run."""
        while True:
            request = await self.scheduler.next_request()
            if request is None:
                return
            try:
                if self.transport_s:
                    # The slot is held for the ciphertext transport window,
                    # like a connection streaming an upload; other slots
                    # keep computing meanwhile.
                    with self.perf.phase("transport"):
                        await asyncio.sleep(self.transport_s)
                out = await self.pool.run(
                    (request.tenant_id, request.model), request.x_q
                )
                self._per_tenant_requests[request.tenant_id] += 1
                if not request.future.cancelled():
                    request.future.set_result(out)
            except Exception as exc:  # noqa: BLE001 - delivered to caller
                if request.future.cancelled():
                    raise
                request.future.set_exception(exc)

    # -- request path ------------------------------------------------------

    def submit_nowait(
        self, tenant_id: str, model: str, x_q: np.ndarray
    ) -> asyncio.Future:
        """Admit one request; returns the future resolving to its output.

        Raises :class:`~repro.errors.ServiceOverloaded` synchronously when
        the tenant's queue is full and :class:`ParameterError` for unknown
        tenants/models — in both cases nothing was queued.
        """
        if self.scheduler is None:
            raise ParameterError("service is not started")
        self.tenants.get(tenant_id)  # unknown-tenant check, typed error
        if (tenant_id, model) not in self._cores:
            raise ParameterError(
                f"model {model!r} is not registered; have: "
                f"{sorted(self.models)}"
            )
        future = asyncio.get_running_loop().create_future()
        request = ServiceRequest(
            tenant_id=tenant_id,
            model=model,
            x_q=np.asarray(x_q, dtype=np.int64),
            future=future,
        )
        self.scheduler.submit(request)
        return future

    async def submit(
        self, tenant_id: str, model: str, x_q: np.ndarray
    ) -> np.ndarray:
        """One encrypted inference through the full service path."""
        return await self.submit_nowait(tenant_id, model, x_q)

    # -- synchronous convenience -------------------------------------------

    def serve_batch(
        self, requests: list[tuple[str, str, np.ndarray]]
    ) -> list[np.ndarray]:
        """Start, answer ``requests`` concurrently, stop; outputs in order.

        The whole batch is admitted up front, so the per-tenant queue bound
        must cover each tenant's share of the batch — size
        ``queue_capacity`` accordingly or submissions raise
        :class:`~repro.errors.ServiceOverloaded` exactly as they would
        against a live overloaded service.
        """

        async def _run() -> list[np.ndarray]:
            await self.start()
            try:
                futures = [
                    self.submit_nowait(tenant_id, model, x_q)
                    for tenant_id, model, x_q in requests
                ]
                return list(await asyncio.gather(*futures))
            finally:
                await self.stop()

        return asyncio.run(_run())

    # -- accounting --------------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready deployment accounting across all four layers."""
        record = {
            "tenants": {
                tenant.tenant_id: {
                    "params": tenant.params.name,
                    "backend": tenant.backend,
                    "requests": self._per_tenant_requests[tenant.tenant_id],
                    "key_material_mb": round(
                        tenant.key_material_bytes() / 2**20, 3
                    ),
                }
                for tenant in self.tenants
            },
            "models": dict(self.models),
            "queue_capacity": self.queue_capacity,
            "transport_s": self.transport_s,
            "plan_cache": self.cache.stats(),
            "phase_s": {
                k: round(v, 6) for k, v in sorted(self.perf.phase_s.items())
            },
        }
        if self.scheduler is not None:
            record["scheduler"] = self.scheduler.stats()
        if self.pool is not None:
            record["workers"] = self.pool.stats()
        return record
