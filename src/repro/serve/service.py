"""Service façade: the serving layers composed into one deployment.

:class:`AthenaService` wires tenant registry -> scheduler -> batch
assembler -> worker pool over a shared (sharded) plan cache:

1. **tenant layer** (:mod:`repro.serve.tenant`) — who is served, under
   which parameters/seeds/backends, and what key material that implies.
2. **scheduler layer** (:mod:`repro.serve.scheduler`) — bounded per-tenant
   queues, synchronous admission control (reject/shed with
   :class:`~repro.errors.ServiceOverloaded`, payload carrying the tenant's
   queue depth), round-robin fair dequeue.
3. **batching layer** (:mod:`repro.serve.batching`) — groups compatible
   queued requests (same model + same key domain, including the
   shared-key fast path across tenants with identical params + seed) up to
   the plan's ``batch_capacity``, within a deadline-bounded window.
4. **worker layer** (:mod:`repro.serve.workers`) — warm
   ``(tenant, model)`` sessions behind an :class:`~repro.perf.ExecConfig`
   executor (serial/thread/process); a batch runs as *one* fused pipeline
   execution and is demultiplexed per lane.
5. **this façade** — model registration through the shared
   :class:`~repro.serve.cache.ShardedPlanCache`, the asyncio dispatch loop
   connecting the layers, the typed request/response API
   (:class:`~repro.serve.api.InferenceRequest` /
   :class:`~repro.serve.api.InferenceResult`), and aggregate stats in the
   uniform :class:`~repro.serve.api.LayerStats` schema.

The request path is ``result = await service.submit(InferenceRequest(...))``:
admission happens synchronously inside ``submit`` (a shed request raises
before any work starts); a dispatcher task — one per worker slot — then
assembles a batch, holds the slot for one ``transport_s`` window (the
per-connection ciphertext upload/download an FHE deployment pays — paid
*once per batch*, since co-batched clients upload concurrently on their own
connections while the slot waits out the longest), runs the fused
execution, and resolves every member's future with its
:class:`InferenceResult`.

Outputs are bit-identical to a direct
:meth:`repro.serve.InferenceSession.run` with the tenant's seed, provided
the per-runtime request order matches (each runtime's encryption
randomness is a deterministic stream) — ``serial``/single-worker pools
preserve submission order per tenant, which is what the equivalence tests
pin; the lane-packing geometry guarantees a batched lane computes the
identical function of the identical noise-margin, see
:class:`repro.core.plan.LaneLayout`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Iterable

import numpy as np

from repro.core.program import AthenaProgram, lower
from repro.errors import ParameterError
from repro.perf import ExecConfig, PerfRecorder
from repro.serve.api import InferenceRequest, InferenceResult, LayerStats
from repro.serve.batching import BatchAssembler, RequestBatch
from repro.serve.cache import PlanCache, ShardedPlanCache
from repro.serve.scheduler import FairScheduler
from repro.serve.session import SessionCore
from repro.serve.tenant import Tenant, TenantRegistry
from repro.serve.workers import WorkerPool

__all__ = ["AthenaService"]

class AthenaService:
    """Async multi-tenant inference service over warm sessions.

    Lifecycle: construct -> :meth:`register_model` (once per model) ->
    :meth:`start` -> any number of :meth:`submit` -> :meth:`stop`. The
    synchronous :meth:`serve_batch` wraps that whole cycle around one list
    of requests for callers without an event loop (CLI, tests).

    ``cache=None`` builds a memory-only :class:`ShardedPlanCache`, so
    co-located tenants still share compiled plans; pass a disk-backed
    cache to share them across processes and restarts.

    ``batching`` enables cross-request ciphertext batching (on by
    default; plans whose ``batch_capacity`` is 1 are unaffected either
    way). ``batch_window_s`` bounds how long a dispatcher holds a
    partially-filled batch open for late co-riders — 0 batches only what
    is already queued. ``max_batch`` caps lanes per batch below the
    plan's capacity.
    """

    def __init__(
        self,
        tenants: TenantRegistry | Iterable[Tenant],
        cache: PlanCache | None = None,
        exec_config: ExecConfig | None = None,
        queue_capacity: int = 8,
        transport_s: float = 0.0,
        perf: PerfRecorder | None = None,
        batching: bool = True,
        batch_window_s: float = 0.05,
        max_batch: int | None = None,
    ):
        if isinstance(tenants, TenantRegistry):
            self.tenants = tenants
        else:
            self.tenants = TenantRegistry(tenants)
        if len(self.tenants) == 0:
            raise ParameterError("service needs at least one tenant")
        if transport_s < 0:
            raise ParameterError("transport window cannot be negative")
        if batch_window_s < 0:
            raise ParameterError("batch window cannot be negative")
        if max_batch is not None and max_batch < 1:
            raise ParameterError("max_batch must be >= 1")
        self.cache = cache if cache is not None else ShardedPlanCache(None)
        self.exec_config = (
            exec_config if exec_config is not None else ExecConfig("thread")
        )
        self.queue_capacity = queue_capacity
        self.transport_s = transport_s
        self.batching = batching
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.perf = perf if perf is not None else PerfRecorder()
        self.models: dict[str, str] = {}  # name -> program fingerprint
        self._cores: dict[tuple[str, str], SessionCore] = {}
        self.pool: WorkerPool | None = None
        self.scheduler: FairScheduler | None = None
        self.assembler: BatchAssembler | None = None
        self._dispatchers: list[asyncio.Task] = []
        self._per_tenant_requests: dict[str, int] = {
            tid: 0 for tid in self.tenants.ids()
        }

    # -- model registration (compile once, share via the cache) ------------

    def register_model(
        self,
        name: str,
        model,
        chunk: int | None = None,
        tuning=None,
    ) -> str:
        """Compile ``model`` for every tenant; returns its fingerprint.

        ``model`` is a quantized model (lowered per tenant parameter set)
        or a pre-lowered :class:`AthenaProgram` (then every tenant must use
        its parameter set). Compilation goes through the shared plan cache,
        so the first tenant pays the compile and every further tenant with
        the same parameters gets a cache hit — the sharing the fingerprint
        sharding exists for. ``tuning`` (a
        :class:`repro.core.lowering.TuningConfig`) applies the autotuner's
        per-step encoding choices; it is folded into the plan fingerprint,
        so tuned and untuned registrations never collide in the cache.
        """
        if self.pool is not None:
            raise ParameterError("register models before start()")
        if name in self.models:
            raise ParameterError(f"model {name!r} already registered")
        fingerprint: str | None = None
        for tenant in self.tenants:
            if isinstance(model, AthenaProgram):
                if tenant.params != model.params:
                    raise ParameterError(
                        "pre-lowered programs require every tenant to use "
                        "the program's parameter set; register the "
                        "quantized model instead"
                    )
                program = model
            else:
                program = lower(model, tenant.params)
            core = SessionCore.build(
                program,
                tenant.params,
                seed=tenant.seed,
                chunk=chunk,
                cache=self.cache,
                backend=tenant.backend or self.exec_config.backend,
                tuning=tuning,
            )
            if fingerprint is None:
                fingerprint = core.fingerprint
            elif core.fingerprint != fingerprint:
                raise ParameterError(
                    f"model {name!r} lowers to different fingerprints "
                    "across tenants"
                )
            self._cores[(tenant.tenant_id, name)] = core
        self.models[name] = fingerprint
        return fingerprint

    # -- batching policy ---------------------------------------------------

    def _group_key(self, request: InferenceRequest) -> tuple:
        """Compatibility key: requests sharing it may share a ciphertext."""
        tenant = self.tenants.get(request.tenant_id)
        return (tenant.key_domain(), request.model)

    def _batch_capacity_for(self, request: InferenceRequest) -> int:
        """Lane budget for a batch led by ``request``."""
        if not self.batching:
            return 1
        capacity = self._cores[
            (request.tenant_id, request.model)
        ].plan.batch_capacity
        if self.max_batch is not None:
            capacity = min(capacity, self.max_batch)
        return max(1, capacity)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Warm the workers (keygen everywhere) and open the front door."""
        if self.pool is not None:
            raise ParameterError("service already started")
        if not self._cores:
            raise ParameterError("register at least one model before start()")
        self.pool = WorkerPool(self._cores, self.exec_config, perf=self.perf)
        self.pool.start()
        self.scheduler = FairScheduler(
            self.tenants.ids(), capacity=self.queue_capacity, perf=self.perf
        )
        self.assembler = BatchAssembler(
            self.scheduler,
            capacity_for=self._batch_capacity_for,
            group_key=self._group_key,
            window_s=self.batch_window_s if self.batching else 0.0,
        )
        self._dispatchers = [
            asyncio.create_task(self._dispatch())
            for _ in range(self.pool.slots)
        ]

    async def stop(self) -> None:
        """Drain the backlog, retire the dispatchers, stop the workers."""
        if self.scheduler is not None:
            self.scheduler.close()
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers)
            self._dispatchers = []
        if self.pool is not None:
            self.pool.stop()

    async def _dispatch(self) -> None:
        """One worker slot's loop: assemble a batch -> transport -> run."""
        while True:
            batch = await self.assembler.next_batch()
            if batch is None:
                return
            dispatched_at = time.perf_counter()
            try:
                if self.transport_s:
                    # One transport window per *batch*: each member uploads
                    # on its own connection concurrently, so the slot waits
                    # out a single window regardless of lane count — the
                    # first amortization batching buys. Other slots keep
                    # computing meanwhile.
                    with self.perf.phase("transport"):
                        await asyncio.sleep(self.transport_s)
                lead = batch.lead
                outs = await self.pool.run_batch(
                    (lead.tenant_id, lead.model),
                    [request.x_q for request in batch.requests],
                )
                self._resolve(batch, outs, dispatched_at)
            except Exception as exc:  # noqa: BLE001 - delivered to callers
                delivered = False
                for request in batch.requests:
                    if not request.future.cancelled():
                        request.future.set_exception(exc)
                        delivered = True
                if not delivered:
                    raise

    def _resolve(
        self, batch: RequestBatch, outs: list, dispatched_at: float
    ) -> None:
        """Demultiplex one fused execution into per-request results."""
        done_at = time.perf_counter()
        run_s = done_at - dispatched_at - (self.transport_s or 0.0)
        for lane, (request, out) in enumerate(zip(batch.requests, outs)):
            self._per_tenant_requests[request.tenant_id] += 1
            dequeued_at = request.dequeued_at or dispatched_at
            result = InferenceResult(
                request_id=request.request_id,
                tenant_id=request.tenant_id,
                model=request.model,
                output=out,
                lane=lane,
                batch_size=batch.size,
                batch_id=batch.batch_id,
                timings={
                    "queue_wait_s": dequeued_at - request.enqueued_at,
                    "batch_wait_s": dispatched_at - dequeued_at,
                    "transport_s": self.transport_s,
                    "run_s": run_s,
                    "total_s": done_at - request.enqueued_at,
                },
            )
            if not request.future.cancelled():
                request.future.set_result(result)

    # -- request path ------------------------------------------------------

    def _admit(self, request: InferenceRequest) -> asyncio.Future:
        """Validate + enqueue; returns the request's result future."""
        if self.scheduler is None:
            raise ParameterError("service is not started")
        self.tenants.get(request.tenant_id)  # unknown-tenant check
        if (request.tenant_id, request.model) not in self._cores:
            raise ParameterError(
                f"model {request.model!r} is not registered; have: "
                f"{sorted(self.models)}"
            )
        request.x_q = np.asarray(request.x_q, dtype=np.int64)
        request.future = asyncio.get_running_loop().create_future()
        self.scheduler.submit(request)
        return request.future

    def submit_nowait(self, request: InferenceRequest) -> asyncio.Future:
        """Admit one request; returns the future resolving to its
        :class:`InferenceResult`.

        Raises :class:`~repro.errors.ServiceOverloaded` synchronously when
        the tenant's queue is full (the exception carries ``tenant_id`` /
        ``depth`` / ``capacity`` for client backoff) and
        :class:`ParameterError` for unknown tenants/models — in both cases
        nothing was queued.
        """
        if not isinstance(request, InferenceRequest):
            raise ParameterError(
                "submit_nowait takes an InferenceRequest (the positional "
                "(tenant_id, model, x_q) form was removed)"
            )
        return self._admit(request)

    async def submit(self, request: InferenceRequest) -> InferenceResult:
        """One encrypted inference through the full service path."""
        return await self.submit_nowait(request)

    # -- synchronous convenience -------------------------------------------

    def serve_batch(self, requests: list) -> list:
        """Start, answer ``requests`` concurrently, stop; results in order.

        ``requests`` is a list of :class:`InferenceRequest`; results are
        the matching :class:`InferenceResult` objects. The whole batch is
        admitted up front, so the per-tenant queue bound must cover each
        tenant's share of the batch — size ``queue_capacity`` accordingly
        or submissions raise :class:`~repro.errors.ServiceOverloaded`
        exactly as they would against a live overloaded service.
        """
        for request in requests:
            # Fail fast, before start() keygens the workers: a malformed
            # batch must not consume a one-shot service lifecycle.
            if not isinstance(request, InferenceRequest):
                raise ParameterError(
                    "serve_batch takes InferenceRequest objects (the "
                    "positional (tenant_id, model, x_q) form was removed)"
                )

        async def _run() -> list:
            await self.start()
            try:
                futures = [self.submit_nowait(req) for req in requests]
                return list(await asyncio.gather(*futures))
            finally:
                await self.stop()

        return asyncio.run(_run())

    # -- accounting --------------------------------------------------------

    def stats(self) -> LayerStats:
        """Deployment accounting across all layers, uniform schema.

        ``detail`` nests each layer's own :class:`LayerStats` (as dicts)
        under ``scheduler`` / ``batcher`` / ``workers``, plus the tenant
        table, model fingerprints, and plan-cache counters.
        ``counters["amortized_run_s"]`` is pool run seconds over requests
        served — the cost-per-inference batching amortizes.
        """
        served = sum(self._per_tenant_requests.values())
        detail: dict = {
            "tenants": {
                tenant.tenant_id: {
                    "params": tenant.params.name,
                    "backend": tenant.backend,
                    "requests": self._per_tenant_requests[tenant.tenant_id],
                    "key_material_mb": round(
                        tenant.key_material_bytes() / 2**20, 3
                    ),
                }
                for tenant in self.tenants
            },
            "models": dict(self.models),
            "plan_cache": self.cache.stats(),
            "batching": {
                "enabled": self.batching,
                "window_s": self.batch_window_s,
                "max_batch": self.max_batch,
            },
        }
        counters: dict = {
            "queue_capacity": self.queue_capacity,
        }
        timings: dict = {
            "transport_s": self.transport_s,
            **{
                f"phase_{k}_s": round(v, 6)
                for k, v in sorted(self.perf.phase_s.items())
            },
        }
        if self.scheduler is not None:
            detail["scheduler"] = self.scheduler.stats().to_dict()
        if self.assembler is not None:
            detail["batcher"] = self.assembler.stats().to_dict()
        if self.pool is not None:
            pool_stats = self.pool.stats()
            detail["workers"] = pool_stats.to_dict()
            run_s = pool_stats.timings.get("run_s", 0.0)
            counters["amortized_run_s"] = (
                round(run_s / served, 6) if served else None
            )
        return LayerStats(
            layer="service",
            requests=served,
            counters=counters,
            timings=timings,
            detail=detail,
        )
