"""Scheduler layer: the asyncio front door of the serving stack.

:class:`FairScheduler` owns admission and ordering, nothing else — it
never touches ciphertexts or keys. Three properties, each load-bearing for
a multi-tenant deployment:

* **Bounded queues** — each tenant gets its own FIFO of at most
  ``capacity`` pending requests. Admission is synchronous: a request
  either enters its tenant's queue or is shed immediately with
  :class:`repro.errors.ServiceOverloaded`, so callers always know whether
  work was started and backpressure propagates to the edge instead of
  growing an unbounded backlog.
* **Tenant isolation** — the bound is *per tenant*, so one tenant
  flooding the service exhausts only its own queue space; other tenants'
  requests are still admitted.
* **Fair dequeue** — workers drain tenants round-robin (each dequeue
  serves the next tenant in the ring that has work), so a deep queue for
  one tenant cannot starve the others regardless of arrival order.

The scheduler is asyncio-native and single-loop: :meth:`submit` is called
from the event-loop thread (the service's ``submit`` coroutine),
:meth:`next_request` is awaited by the service's dispatcher tasks. Depth
accounting feeds the load generator's ``queue_depth_max`` metric, and a
:class:`~repro.perf.PerfRecorder` (when attached) receives
``sched.accepted`` / ``sched.rejected`` counts and per-request queue-wait
time under the ``queue_wait`` phase.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError, ServiceOverloaded
from repro.perf import PerfRecorder

__all__ = ["FairScheduler", "ServiceRequest"]


@dataclass
class ServiceRequest:
    """One queued inference request flowing scheduler -> worker."""

    tenant_id: str
    model: str
    x_q: np.ndarray
    #: Resolved by the dispatcher with the decrypted output (or an error).
    future: asyncio.Future | None = None
    #: ``time.perf_counter()`` at admission; queue wait derives from it.
    enqueued_at: float = field(default_factory=time.perf_counter)


class FairScheduler:
    """Bounded per-tenant FIFOs with round-robin fair dequeue."""

    def __init__(
        self,
        tenant_ids,
        capacity: int = 8,
        perf: PerfRecorder | None = None,
    ):
        tenant_ids = list(tenant_ids)
        if not tenant_ids:
            raise ParameterError("scheduler needs at least one tenant")
        if capacity < 1:
            raise ParameterError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.perf = perf
        self._queues: dict[str, deque[ServiceRequest]] = {
            tid: deque() for tid in tenant_ids
        }
        #: Fairness ring: rotated one tenant per dequeue.
        self._ring: deque[str] = deque(tenant_ids)
        self._wakeup = asyncio.Event()
        self._closed = False
        self.accepted = 0
        self.rejected = 0
        self.depth_max = 0

    # -- admission ---------------------------------------------------------

    def submit(self, request: ServiceRequest) -> None:
        """Admit ``request`` or shed it with :class:`ServiceOverloaded`.

        Synchronous and loop-thread only; a rejected request was never
        queued, so no worker will ever see it.
        """
        if self._closed:
            raise ServiceOverloaded("scheduler is closed")
        try:
            queue = self._queues[request.tenant_id]
        except KeyError:
            raise ParameterError(
                f"unknown tenant {request.tenant_id!r}"
            ) from None
        if len(queue) >= self.capacity:
            self.rejected += 1
            if self.perf is not None:
                self.perf.count("sched.rejected")
            raise ServiceOverloaded(
                f"tenant {request.tenant_id!r} queue is full "
                f"({self.capacity} pending)"
            )
        request.enqueued_at = time.perf_counter()
        queue.append(request)
        self.accepted += 1
        self.depth_max = max(self.depth_max, self.depth())
        if self.perf is not None:
            self.perf.count("sched.accepted")
        self._wakeup.set()

    # -- dequeue -----------------------------------------------------------

    def _pop_next(self) -> ServiceRequest | None:
        """One round-robin sweep: the next tenant with work, else None."""
        for _ in range(len(self._ring)):
            tenant_id = self._ring[0]
            self._ring.rotate(-1)
            queue = self._queues[tenant_id]
            if queue:
                return queue.popleft()
        return None

    async def next_request(self) -> ServiceRequest | None:
        """Await the next request, fairly across tenants.

        Returns ``None`` once the scheduler is closed *and* drained — the
        dispatcher's signal to exit. Multiple dispatcher tasks may await
        this concurrently; each admitted request is delivered exactly once.
        """
        while True:
            request = self._pop_next()
            if request is not None:
                if self.perf is not None:
                    self.perf.add_time(
                        "queue_wait", time.perf_counter() - request.enqueued_at
                    )
                return request
            if self._closed:
                return None
            self._wakeup.clear()
            # Re-check after clearing: a submit between the sweep above and
            # the clear would otherwise be parked until the next wakeup.
            request = self._pop_next()
            if request is not None:
                return request
            if self._closed:
                return None
            await self._wakeup.wait()

    # -- lifecycle / accounting --------------------------------------------

    def close(self) -> None:
        """Stop admitting; waiters drain the backlog, then receive None."""
        self._closed = True
        self._wakeup.set()

    def depth(self, tenant_id: str | None = None) -> int:
        """Requests currently queued (one tenant, or all)."""
        if tenant_id is not None:
            return len(self._queues[tenant_id])
        return sum(len(q) for q in self._queues.values())

    def stats(self) -> dict:
        """JSON-ready admission/fairness accounting."""
        return {
            "capacity_per_tenant": self.capacity,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "queue_depth": self.depth(),
            "queue_depth_max": self.depth_max,
            "per_tenant_depth": {
                tid: len(q) for tid, q in self._queues.items()
            },
        }
