"""Scheduler layer: the asyncio front door of the serving stack.

:class:`FairScheduler` owns admission and ordering, nothing else — it
never touches ciphertexts or keys. Three properties, each load-bearing for
a multi-tenant deployment:

* **Bounded queues** — each tenant gets its own FIFO of at most
  ``capacity`` pending requests. Admission is synchronous: a request
  either enters its tenant's queue or is shed immediately with
  :class:`repro.errors.ServiceOverloaded` (carrying the tenant's live
  queue depth so clients can back off proportionally), so callers always
  know whether work was started and backpressure propagates to the edge
  instead of growing an unbounded backlog.
* **Tenant isolation** — the bound is *per tenant*, so one tenant
  flooding the service exhausts only its own queue space; other tenants'
  requests are still admitted.
* **Fair dequeue** — workers drain tenants round-robin (each dequeue
  serves the next tenant in the ring that has work), so a deep queue for
  one tenant cannot starve the others regardless of arrival order.

The scheduler is asyncio-native and single-loop: :meth:`submit` is called
from the event-loop thread (the service's ``submit`` coroutine),
:meth:`next_request` is awaited by the service's dispatcher tasks. The
batch assembler additionally uses :meth:`take_matching` (harvest queued
requests compatible with a forming batch, preserving per-tenant FIFO
order) and :meth:`wait_for_activity` (bounded wait for new admissions
inside a batch window). Depth accounting feeds the load generator's
queue-depth metric, and a :class:`~repro.perf.PerfRecorder` (when
attached) receives ``sched.accepted`` / ``sched.rejected`` counts and
per-request queue-wait time under the ``queue_wait`` phase.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable

from repro.errors import ParameterError, ServiceOverloaded
from repro.perf import PerfRecorder
from repro.serve.api import InferenceRequest, LayerStats

__all__ = ["FairScheduler", "ServiceRequest"]

#: Deprecated alias retained for one release: the scheduler's queue element
#: is now the typed :class:`repro.serve.api.InferenceRequest`.
ServiceRequest = InferenceRequest


class FairScheduler:
    """Bounded per-tenant FIFOs with round-robin fair dequeue."""

    def __init__(
        self,
        tenant_ids,
        capacity: int = 8,
        perf: PerfRecorder | None = None,
    ):
        tenant_ids = list(tenant_ids)
        if not tenant_ids:
            raise ParameterError("scheduler needs at least one tenant")
        if capacity < 1:
            raise ParameterError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.perf = perf
        self._queues: dict[str, deque[InferenceRequest]] = {
            tid: deque() for tid in tenant_ids
        }
        #: Fairness ring: rotated one tenant per dequeue.
        self._ring: deque[str] = deque(tenant_ids)
        self._wakeup = asyncio.Event()
        self._closed = False
        self.accepted = 0
        self.rejected = 0
        self.depth_max = 0

    # -- admission ---------------------------------------------------------

    def submit(self, request: InferenceRequest) -> None:
        """Admit ``request`` or shed it with :class:`ServiceOverloaded`.

        Synchronous and loop-thread only; a rejected request was never
        queued, so no worker will ever see it.
        """
        if self._closed:
            raise ServiceOverloaded("scheduler is closed")
        try:
            queue = self._queues[request.tenant_id]
        except KeyError:
            raise ParameterError(
                f"unknown tenant {request.tenant_id!r}"
            ) from None
        if len(queue) >= self.capacity:
            self.rejected += 1
            if self.perf is not None:
                self.perf.count("sched.rejected")
            raise ServiceOverloaded(
                f"tenant {request.tenant_id!r} queue is full "
                f"({self.capacity} pending)",
                tenant_id=request.tenant_id,
                depth=len(queue),
                capacity=self.capacity,
            )
        request.enqueued_at = time.perf_counter()
        queue.append(request)
        self.accepted += 1
        self.depth_max = max(self.depth_max, self.depth())
        if self.perf is not None:
            self.perf.count("sched.accepted")
        self._wakeup.set()

    # -- dequeue -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _stamp(self, request: InferenceRequest) -> InferenceRequest:
        request.dequeued_at = time.perf_counter()
        if self.perf is not None:
            self.perf.add_time(
                "queue_wait", request.dequeued_at - request.enqueued_at
            )
        return request

    def _pop_next(self) -> InferenceRequest | None:
        """One round-robin sweep: the next tenant with work, else None."""
        for _ in range(len(self._ring)):
            tenant_id = self._ring[0]
            self._ring.rotate(-1)
            queue = self._queues[tenant_id]
            if queue:
                return queue.popleft()
        return None

    async def next_request(self) -> InferenceRequest | None:
        """Await the next request, fairly across tenants.

        Returns ``None`` once the scheduler is closed *and* drained — the
        dispatcher's signal to exit. Multiple dispatcher tasks may await
        this concurrently; each admitted request is delivered exactly once.
        """
        while True:
            request = self._pop_next()
            if request is not None:
                return self._stamp(request)
            if self._closed:
                return None
            self._wakeup.clear()
            # Re-check after clearing: a submit between the sweep above and
            # the clear would otherwise be parked until the next wakeup.
            request = self._pop_next()
            if request is not None:
                return self._stamp(request)
            if self._closed:
                return None
            await self._wakeup.wait()

    def take_matching(
        self,
        match: Callable[[InferenceRequest], bool],
        limit: int,
    ) -> list[InferenceRequest]:
        """Harvest up to ``limit`` queued requests satisfying ``match``.

        Used by the batch assembler to fill the remaining lanes of a
        forming batch. Sweeps tenants round-robin (continuing the fairness
        ring) but pops only from queue *heads* and only while the head
        matches — per-tenant FIFO order is never reordered, so a tenant's
        requests complete in submission order whether or not they batch.
        Synchronous: no awaits, so the harvest is atomic on the loop.
        """
        taken: list[InferenceRequest] = []
        if limit <= 0:
            return taken
        for _ in range(len(self._ring)):
            if len(taken) >= limit:
                break
            tenant_id = self._ring[0]
            self._ring.rotate(-1)
            queue = self._queues[tenant_id]
            while queue and len(taken) < limit and match(queue[0]):
                taken.append(self._stamp(queue.popleft()))
        return taken

    async def wait_for_activity(self, timeout: float) -> bool:
        """Wait up to ``timeout`` seconds for a new admission (or close).

        Returns True if woken by activity, False on timeout. Callers must
        re-sweep the queues afterwards either way: with several waiters on
        one event, a wakeup is a hint, not a claim.
        """
        if timeout <= 0 or self._closed:
            return self._closed
        self._wakeup.clear()
        if self.depth() or self._closed:
            # Admissions between the caller's sweep and the clear.
            return True
        try:
            await asyncio.wait_for(self._wakeup.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # -- lifecycle / accounting --------------------------------------------

    def close(self) -> None:
        """Stop admitting; waiters drain the backlog, then receive None."""
        self._closed = True
        self._wakeup.set()

    def depth(self, tenant_id: str | None = None) -> int:
        """Requests currently queued (one tenant, or all)."""
        if tenant_id is not None:
            return len(self._queues[tenant_id])
        return sum(len(q) for q in self._queues.values())

    def stats(self) -> LayerStats:
        """Admission/fairness accounting in the uniform layer schema."""
        return LayerStats(
            layer="scheduler",
            requests=self.accepted,
            counters={
                "accepted": self.accepted,
                "rejected": self.rejected,
                "queue_depth": self.depth(),
                "queue_depth_max": self.depth_max,
            },
            detail={
                "capacity_per_tenant": self.capacity,
                "per_tenant_depth": {
                    tid: len(q) for tid, q in self._queues.items()
                },
            },
        )
