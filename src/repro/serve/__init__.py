"""Warm inference serving: compile once, run many.

The deployment loop the paper assumes — a datacenter holding one model and
answering a stream of encrypted requests — splits into a one-time compile
(:func:`repro.core.plan.compile_program`) and a per-request run of
ciphertext ops only. :class:`InferenceSession` owns that split for one
model + parameter set; :class:`PlanCache` persists compiled plans on disk,
keyed by ``(model hash, params hash)``, so even the compile is paid once
per model *ever*, not once per process.
"""

from repro.serve.cache import PlanCache
from repro.serve.session import InferenceSession

__all__ = ["InferenceSession", "PlanCache"]
