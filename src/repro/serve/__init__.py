"""Warm inference serving: compile once, run many, serve many tenants.

The deployment loop the paper assumes — a datacenter holding models and
answering streams of encrypted requests — splits into a one-time compile
(:func:`repro.core.plan.compile_program`) and per-request ciphertext ops.
This package layers that split into a service:

* **session** — :class:`SessionCore` (the picklable compile-time half) +
  :class:`SessionRuntime` (keys, pipeline, request lock, p50/p99 stats);
  :class:`InferenceSession` remains the single-tenant façade over one of
  each.
* **cache** — :class:`PlanCache` (crash-safe on-disk plan persistence) and
  :class:`ShardedPlanCache` (fingerprint-sharded + in-memory, shared by
  tenants running the same model).
* **tenant** — :class:`Tenant` / :class:`TenantRegistry`: per-tenant
  parameters, keygen seeds, pinned backends, and key-inventory sizing.
* **api** — the typed request path: :class:`InferenceRequest` /
  :class:`InferenceResult`, plus the uniform :class:`LayerStats` schema
  every layer's ``stats()`` returns.
* **scheduler** — :class:`FairScheduler`: bounded per-tenant queues,
  reject/shed admission control (:class:`repro.errors.ServiceOverloaded`,
  carrying the offending tenant's queue depth), round-robin fair dequeue.
* **batching** — :class:`BatchAssembler` / :class:`RequestBatch`:
  cross-request ciphertext batching between scheduler and workers (same
  model + key domain, lane count bounded by the plan's
  ``batch_capacity``, deadline-bounded batch windows).
* **workers** — :class:`WorkerPool`: warm ``(tenant, model)`` sessions
  behind serial/thread/process executors with per-worker key material.
* **service** — :class:`AthenaService`: the asyncio façade composing all
  of the above (``repro serve`` / ``repro loadgen`` on the CLI).
"""

from repro.serve.api import InferenceRequest, InferenceResult, LayerStats
from repro.serve.batching import BatchAssembler, RequestBatch
from repro.serve.cache import PlanCache, ShardedPlanCache
from repro.serve.scheduler import FairScheduler, ServiceRequest
from repro.serve.service import AthenaService
from repro.serve.session import InferenceSession, SessionCore, SessionRuntime
from repro.serve.tenant import Tenant, TenantRegistry
from repro.serve.workers import WorkerPool

__all__ = [
    "AthenaService",
    "BatchAssembler",
    "FairScheduler",
    "InferenceRequest",
    "InferenceResult",
    "InferenceSession",
    "LayerStats",
    "PlanCache",
    "RequestBatch",
    "ServiceRequest",
    "SessionCore",
    "SessionRuntime",
    "ShardedPlanCache",
    "Tenant",
    "TenantRegistry",
    "WorkerPool",
]
