"""Typed request/response surface of the serving stack.

The serving layers used to pass ``(tenant_id, model, x_q)`` tuples and
return bare output arrays; cross-user batching makes that shape lossy — a
response now has an identity (which request), a position (which lane of
which batch), and a cost story (how long it queued, waited for co-batched
peers, and ran). This module is the single place those shapes live:

* :class:`InferenceRequest` — what a client submits. Carries its own
  request id and admission timestamp; the scheduler and batch assembler
  annotate it in place as it moves through the stack.
* :class:`InferenceResult` — what a client gets back: the output plus the
  lane/batch placement and a per-request timing breakdown.
* :class:`LayerStats` — the one schema-versioned stats shape every layer
  (scheduler, batch assembler, sessions, worker pool, service) reports
  through, so loadgen and benches consume a uniform ``to_dict()`` instead
  of three divergent ad-hoc dicts.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field

import numpy as np

#: Version of the ``LayerStats.to_dict`` schema. Bump when keys move.
STATS_SCHEMA_VERSION = 1

_REQUEST_IDS = itertools.count(1)
_BATCH_IDS = itertools.count(1)


def next_request_id() -> str:
    """Process-unique request id (monotonic, human-greppable)."""
    return f"req-{next(_REQUEST_IDS):06d}"


def next_batch_id() -> str:
    """Process-unique batch id, same shape as request ids."""
    return f"batch-{next(_BATCH_IDS):06d}"


@dataclass
class InferenceRequest:
    """One client inference request flowing through the service.

    ``request_id`` and ``enqueued_at`` default at construction;
    ``dequeued_at`` and ``future`` are stamped by the scheduler/service.
    Mutable on purpose: the same object travels queue -> batch -> worker,
    accumulating its timeline.
    """

    tenant_id: str
    model: str
    x_q: np.ndarray
    request_id: str = field(default_factory=next_request_id)
    enqueued_at: float = field(default_factory=time.perf_counter)
    #: When the batch assembler pulled the request off its queue.
    dequeued_at: float | None = field(default=None, repr=False)
    #: Resolved with an :class:`InferenceResult` (set at admission).
    future: asyncio.Future | None = field(
        default=None, repr=False, compare=False
    )


@dataclass(frozen=True)
class InferenceResult:
    """The service's answer to one :class:`InferenceRequest`.

    ``lane`` is the request's position inside the fused ciphertext;
    ``batch_size`` how many requests shared that ciphertext (1 = ran solo).
    ``timings`` holds the per-request wall-clock breakdown in seconds:
    ``queue_wait_s`` (admission to dequeue), ``batch_wait_s`` (dequeue to
    dispatch — the deadline-bounded window spent waiting for co-batched
    peers), ``transport_s`` (the modeled ciphertext upload/download window,
    paid once per batch), ``run_s`` (fused pipeline execution), and
    ``total_s`` (admission to completion).
    """

    request_id: str
    tenant_id: str
    model: str
    output: np.ndarray
    lane: int = 0
    batch_size: int = 1
    batch_id: str = ""
    timings: dict = field(default_factory=dict)


@dataclass
class LayerStats:
    """Uniform per-layer accounting: one schema for every serving layer.

    ``layer`` names the reporting layer (``scheduler`` / ``batcher`` /
    ``session`` / ``workers`` / ``service``), ``requests`` counts the
    requests that layer fully processed, ``counters`` holds integer/float
    event counts, ``timings`` wall-clock aggregates in seconds, and
    ``detail`` arbitrary nested context (per-tenant maps, nested layer
    stats). :meth:`to_dict` is the JSON-ready form loadgen and the benches
    consume; its key set is pinned by ``schema_version``.
    """

    layer: str
    requests: int = 0
    counters: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)
    detail: dict = field(default_factory=dict)
    schema_version: int = STATS_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "layer": self.layer,
            "requests": self.requests,
            "counters": dict(self.counters),
            "timings": {
                k: (round(v, 6) if isinstance(v, float) else v)
                for k, v in self.timings.items()
            },
            "detail": dict(self.detail),
        }
