"""Batch aggregation between the scheduler and the worker pool.

Athena's coefficient encoding leaves most of a small model's ring unused:
one image of lane span S occupies coefficients [0, S) of an n-coefficient
ciphertext, so ``n // S`` independent images can ride one ciphertext and
split the cost of the PMult, the refresh chain, the pack + FBS, and the
S2C — the dominant ~74% FBS/S2C share of a request's wall time becomes a
per-*batch* cost (see :class:`repro.core.plan.LaneLayout`).

:class:`BatchAssembler` sits between :class:`~repro.serve.FairScheduler`
and the worker pool and turns the queue into :class:`RequestBatch` units:

* **Compatibility** — requests may share a ciphertext only when they share
  a model *and* a key domain (:meth:`repro.serve.Tenant.key_domain`): the
  same tenant, or distinct tenants whose parameters + seed derive
  identical key material (the shared-key fast path).
* **Capacity** — lane count is bounded by the plan's ``batch_capacity``
  (free coefficient space), optionally capped by the service's
  ``max_batch``.
* **Deadline-bounded windows** — a batch leader never waits more than
  ``window_s`` for co-riders: under load the remaining lanes are already
  queued and the batch dispatches immediately; under light load the window
  expires and the request runs solo, so latency degrades gracefully
  instead of stalling on hypothetical peers.

The assembler is shared by all dispatcher tasks; its methods only await
scheduler primitives, and all queue surgery happens synchronously on the
event loop, so concurrent dispatchers never double-claim a request.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.serve.api import InferenceRequest, LayerStats, next_batch_id
from repro.serve.scheduler import FairScheduler

__all__ = ["BatchAssembler", "RequestBatch"]


@dataclass
class RequestBatch:
    """A group of compatible requests that will share one ciphertext."""

    batch_id: str
    requests: list[InferenceRequest]
    #: The compatibility key the members share (key domain + model).
    group_key: tuple
    #: Lane capacity the group was allowed (>= len(requests)).
    capacity: int
    formed_at: float

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def lead(self) -> InferenceRequest:
        return self.requests[0]


class BatchAssembler:
    """Group compatible queued requests into dispatchable batches."""

    def __init__(
        self,
        scheduler: FairScheduler,
        capacity_for: Callable[[InferenceRequest], int],
        group_key: Callable[[InferenceRequest], tuple],
        window_s: float = 0.0,
    ):
        self.scheduler = scheduler
        self.capacity_for = capacity_for
        self.group_key = group_key
        self.window_s = window_s
        self.batches = 0
        self.batched_requests = 0
        self.occupancy_max = 0
        self.window_waits = 0

    async def next_batch(self) -> RequestBatch | None:
        """Await the next dispatchable batch; None when closed and drained.

        The leader (next fair-dequeue request) opens the batch; remaining
        lanes are filled from already-queued compatible requests, then — if
        lanes remain and a window is configured — from requests arriving
        within ``window_s`` of the leader's dequeue. A capacity-1 leader
        (plan too large to batch, or batching disabled) skips the window
        entirely.
        """
        lead = await self.scheduler.next_request()
        if lead is None:
            return None
        key = self.group_key(lead)
        capacity = max(1, int(self.capacity_for(lead)))
        requests = [lead]
        if capacity > 1:
            matcher = self._matcher(key)
            deadline = (lead.dequeued_at or time.perf_counter()) + self.window_s
            while len(requests) < capacity:
                requests.extend(
                    self.scheduler.take_matching(
                        matcher, capacity - len(requests)
                    )
                )
                if len(requests) >= capacity:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or self.scheduler.closed:
                    break
                self.window_waits += 1
                await self.scheduler.wait_for_activity(remaining)
        self.batches += 1
        self.batched_requests += len(requests)
        self.occupancy_max = max(self.occupancy_max, len(requests))
        return RequestBatch(
            batch_id=next_batch_id(),
            requests=requests,
            group_key=key,
            capacity=capacity,
            formed_at=time.perf_counter(),
        )

    def _matcher(self, key: tuple) -> Callable[[InferenceRequest], bool]:
        return lambda request: self.group_key(request) == key

    @property
    def occupancy_mean(self) -> float | None:
        """Mean lanes per dispatched batch (None before any batch)."""
        if not self.batches:
            return None
        return self.batched_requests / self.batches

    def stats(self) -> LayerStats:
        mean = self.occupancy_mean
        return LayerStats(
            layer="batcher",
            requests=self.batched_requests,
            counters={
                "batches": self.batches,
                "occupancy_max": self.occupancy_max,
                "window_waits": self.window_waits,
            },
            timings={"window_s": self.window_s},
            detail={
                "occupancy_mean": round(mean, 4) if mean is not None else None,
            },
        )
