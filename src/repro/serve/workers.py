"""Worker layer: warm per-model sessions behind a pluggable executor.

:class:`WorkerPool` generalizes the :class:`repro.perf.ParallelMap` /
:class:`repro.perf.ExecConfig` pattern from "fan one request's tiles out"
to "keep many requests in flight": the same three executor modes, but the
unit of work is a whole inference request and the pool state is a table of
warm sessions keyed by ``(tenant_id, model)``.

The session split (:class:`repro.serve.session.SessionCore` /
``SessionRuntime``) is what makes the process mode work: cores are plain
picklable data, so the pool ships them to each worker process once at
startup (initializer), where every worker builds its own runtimes — its
own key material, derived deterministically from each tenant's seed — and
answers requests warm from the first one. Per-worker backend pinning rides
on the same mechanism: each core carries its tenant's backend *name*, and
the runtime installs it context-locally for every run.

Executor modes (:class:`repro.perf.ExecConfig`):

* ``serial``  — requests run inline in the caller's thread. Deterministic
  request interleaving; used by tests pinning bit-identity and by the CLI
  demo. Blocks the event loop while computing.
* ``thread``  — a :class:`ThreadPoolExecutor`; all threads share one
  runtime per ``(tenant, model)`` (serialized by the runtime's lock), so
  concurrency comes from *different* tenants/models computing at once and
  from numpy releasing the GIL inside large kernels.
* ``process`` — a :class:`ProcessPoolExecutor` with warm per-process
  runtimes: true parallelism, at the cost of one keygen per tenant per
  worker at startup.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, wait

from repro.errors import ParameterError
from repro.perf import ExecConfig, PerfRecorder
from repro.serve.api import LayerStats
from repro.serve.session import SessionCore, SessionRuntime

__all__ = ["WorkerPool"]

#: Warm state of one worker *process*: built once by :func:`_process_init`
#: from the pickled core table, then reused for every request this worker
#: answers. Keys are ``(tenant_id, model)``.
_PROCESS_RUNTIMES: dict[tuple[str, str], SessionRuntime] | None = None


def _process_init(payload: bytes) -> None:
    """Per-process initializer: unpickle cores, keygen, warm every session."""
    global _PROCESS_RUNTIMES
    cores: dict[tuple[str, str], SessionCore] = pickle.loads(payload)
    _PROCESS_RUNTIMES = {key: SessionRuntime(core) for key, core in cores.items()}


def _process_run_batch(key, xs):
    """One fused batch inside a worker process; returns (outputs, seconds)."""
    runtime = _PROCESS_RUNTIMES[key]
    outs = runtime.run_batch(xs)
    return outs, runtime.last_perf.wall_s


def _process_pid() -> int:
    """Warmup probe — forces worker spawn (and thus keygen) at start()."""
    return os.getpid()


class WorkerPool:
    """A pool of workers answering requests from warm sessions.

    ``cores`` maps ``(tenant_id, model)`` to the picklable compile-time
    half of a session; :meth:`start` materializes the runtime half — in
    this process for serial/thread modes, in every worker process for
    process mode — so no request ever pays keygen or compile.
    """

    def __init__(
        self,
        cores: dict[tuple[str, str], SessionCore],
        config: ExecConfig | None = None,
        perf: PerfRecorder | None = None,
    ):
        if not cores:
            raise ParameterError("worker pool needs at least one session core")
        self.cores = dict(cores)
        self.config = config if config is not None else ExecConfig("thread")
        self.perf = perf
        self._executor = None
        self._runtimes: dict[tuple[str, str], SessionRuntime] | None = None
        self._requests: dict[tuple[str, str], int] = {k: 0 for k in self.cores}
        self.run_s = 0.0
        #: Fused executions dispatched (a k-lane batch counts once).
        self.runs = 0
        self.started = False

    @property
    def slots(self) -> int:
        """Concurrent request slots (1 in serial mode)."""
        if self.config.mode == "serial":
            return 1
        return self.config.effective_workers

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Generate keys and warm every session before the first request."""
        if self.started:
            return
        start = time.perf_counter()
        if self.config.mode == "process":
            payload = pickle.dumps(self.cores)
            self._executor = ProcessPoolExecutor(
                max_workers=self.slots,
                initializer=_process_init,
                initargs=(payload,),
            )
            # Force all workers to spawn now: their initializers run keygen
            # for every tenant, so steady-state requests start warm.
            probes = [
                self._executor.submit(_process_pid) for _ in range(self.slots)
            ]
            wait(probes)
        else:
            self._runtimes = {
                key: SessionRuntime(core) for key, core in self.cores.items()
            }
            if self.config.mode == "thread":
                self._executor = ThreadPoolExecutor(max_workers=self.slots)
        if self.perf is not None:
            self.perf.add_time("pool_start", time.perf_counter() - start)
        self.started = True

    def stop(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.started = False

    # -- request execution -------------------------------------------------

    def _run_local_batch(self, key, xs):
        runtime = self._runtimes[key]
        outs = runtime.run_batch(xs)
        return outs, runtime.last_perf.wall_s

    async def run(self, key, x_q):
        """Answer one request on a free worker; returns the output array."""
        return (await self.run_batch(key, [x_q]))[0]

    async def run_batch(self, key, xs):
        """Answer ``len(xs)`` co-batched requests with one fused execution.

        Awaitable from the service's dispatcher tasks: thread/process modes
        yield the event loop while the worker computes, serial mode runs
        inline (blocking — deterministic by design). Returns one output
        array per input, in order; a single-input batch is exactly the
        per-request op sequence.
        """
        if not self.started:
            raise ParameterError("worker pool is not started")
        if key not in self.cores:
            raise ParameterError(f"no session for tenant/model {key!r}")
        if self.config.mode == "serial":
            outs, run_s = self._run_local_batch(key, xs)
        else:
            loop = asyncio.get_running_loop()
            fn = (
                _process_run_batch
                if self.config.mode == "process"
                else self._run_local_batch
            )
            outs, run_s = await loop.run_in_executor(self._executor, fn, key, xs)
        self._requests[key] += len(xs)
        self.runs += 1
        self.run_s += run_s
        if self.perf is not None:
            self.perf.add_time("run", run_s)
        return outs

    # -- accounting --------------------------------------------------------

    def runtime_for(self, key) -> SessionRuntime:
        """The warm in-process runtime for ``key`` (serial/thread modes).

        Process-mode runtimes live in the worker processes and are not
        reachable from the parent; tests asserting on key material or
        per-runtime stats use serial/thread pools.
        """
        if self._runtimes is None:
            raise ParameterError(
                "runtimes live in worker processes in process mode"
            )
        return self._runtimes[key]

    def stats(self) -> LayerStats:
        """Pool accounting in the uniform layer schema."""
        detail: dict = {
            "mode": self.config.mode,
            "per_session_requests": {
                f"{tenant}/{model}": count
                for (tenant, model), count in sorted(self._requests.items())
            },
        }
        if self._runtimes is not None:
            detail["sessions"] = {
                f"{tenant}/{model}": runtime.stats().to_dict()
                for (tenant, model), runtime in sorted(self._runtimes.items())
            }
        return LayerStats(
            layer="workers",
            requests=sum(self._requests.values()),
            counters={"workers": self.slots, "runs": self.runs},
            timings={"run_s": round(self.run_s, 6)},
            detail=detail,
        )
