"""Load generator: throughput/latency numbers for the serving stack.

:func:`run_loadgen` stands up an :class:`~repro.serve.AthenaService` per
worker configuration — same tenants, same model, same shared plan cache —
drives a fixed closed batch of requests through each, and emits
``BENCH_serve.json``: one record per configuration with requests/sec,
client-observed p50/p99 latency, peak queue depth, and the plan-cache hit
rate of that configuration's phase. The first configuration is the
``cold`` phase (its first lookup compiles and persists the plan); every
later configuration is ``warm`` (all lookups are cache hits) — CI asserts
the warm-phase hit rate is positive.

Per-request time has two components the configurations trade off
differently: the ciphertext compute (CPU-bound, parallel across process
workers and across numpy's GIL-free kernels in thread workers) and the
``transport_s`` window — the per-connection ciphertext upload/download
occupancy an FHE deployment pays (at the paper's production parameters a
single fresh ciphertext is ~5.9 MiB; see
:attr:`repro.fhe.params.FheParams.ciphertext_bytes`). The transport window
holds a worker slot without holding the CPU, so a multi-worker service
overlaps one request's transport with another's compute — which is why the
multi-worker configuration sustains higher requests/sec than the
single-worker one even before compute parallelism kicks in, and is the
effect the acceptance gate in ``benchmarks/bench_serve.py`` pins.

``model="mnist_cnn"`` (the default) serves the canonical micro CNN at
``TEST_LOOP`` parameters — the same subject as ``BENCH_pipeline.json`` —
so serving throughput is directly comparable with the single-session
pipeline numbers. ``model="micro"`` serves a smaller conv+fc model at
``TEST_FBS`` parameters for fast smoke runs.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.errors import ParameterError
from repro.fhe.params import TEST_FBS, TEST_LOOP, FheParams
from repro.perf import ExecConfig, PerfRecorder
from repro.perf.bench import mnist_cnn_micro
from repro.quant.quantize import (
    QConv,
    QFlatten,
    QLinear,
    QuantConfig,
    QuantizedModel,
)
from repro.serve.cache import ShardedPlanCache
from repro.serve.service import AthenaService
from repro.serve.tenant import Tenant, TenantRegistry

__all__ = [
    "BENCH_SERVE_FILENAME",
    "SERVE_SCHEMA",
    "run_loadgen",
    "serve_micro_cnn",
]

#: Default output filename (CI uploads this artifact).
BENCH_SERVE_FILENAME = "BENCH_serve.json"

#: Record keys of one BENCH_serve.json entry.
SERVE_SCHEMA = (
    "bench", "phase", "model", "params", "tenants", "workers", "mode",
    "transport_s", "requests", "wall_s", "requests_per_s", "latency_p50_s",
    "latency_p99_s", "queue_depth_max", "plan_cache", "per_tenant",
)


def serve_micro_cnn(rng: np.random.Generator) -> QuantizedModel:
    """conv(1->1, k3) on 4x4 -> flatten -> fc(4->2), sized for TEST_FBS.

    The serving smoke model: one full five-step round plus a fused tail at
    the smallest ring where the real backend runs in ~a second, so service
    tests and the ``repro serve`` demo stay fast. Always built from a
    caller-seeded generator so every consumer gets the byte-identical
    model (same fingerprint), mirroring :func:`mnist_cnn_micro`.
    """
    cfg = QuantConfig(4, 4, t=TEST_FBS.t)
    conv = QConv(
        weight=rng.integers(-2, 3, (1, 1, 3, 3)).astype(np.int64),
        bias=rng.integers(-2, 3, 1).astype(np.int64),
        stride=1, pad=0, in_scale=1.0, w_scale=1.0, out_scale=8.0,
        activation="relu", in_shape=(1, 4, 4), out_shape=(1, 2, 2),
    )
    fc = QLinear(
        weight=rng.integers(-1, 2, (2, 4)).astype(np.int64),
        bias=rng.integers(-2, 3, 2).astype(np.int64),
        in_scale=1.0, w_scale=1.0, out_scale=2.0, activation="identity",
        in_features=4, out_features=2,
    )
    return QuantizedModel(
        [conv, QFlatten(), fc], cfg, 1.0, (1, 4, 4), name="serve_micro"
    )


#: Bench subjects: model name -> (builder rng seed applied inside, params).
_SUBJECTS: dict[str, tuple] = {
    "mnist_cnn": (mnist_cnn_micro, TEST_LOOP),
    "micro": (serve_micro_cnn, TEST_FBS),
}


def _build_subject(model: str) -> tuple[QuantizedModel, FheParams]:
    try:
        builder, params = _SUBJECTS[model]
    except KeyError:
        raise ParameterError(
            f"unknown loadgen model {model!r}; options: {sorted(_SUBJECTS)}"
        ) from None
    return builder(np.random.default_rng(5)), params


def _percentile(latencies: list[float], q: float) -> float:
    return round(float(np.percentile(np.asarray(latencies), q)), 6)


async def _drive(
    service: AthenaService,
    model: str,
    inputs: list[tuple[str, np.ndarray]],
    warmup_inputs: list[tuple[str, np.ndarray]],
) -> tuple[float, list[float]]:
    """Warm, then time the batch; returns (wall_s, per-request latencies)."""
    await service.start()
    try:
        for tenant_id, x_q in warmup_inputs:
            await service.submit(tenant_id, model, x_q)

        latencies: list[float] = [0.0] * len(inputs)

        async def one(i: int, tenant_id: str, x_q: np.ndarray) -> None:
            t0 = time.perf_counter()
            await service.submit(tenant_id, model, x_q)
            latencies[i] = time.perf_counter() - t0

        start = time.perf_counter()
        await asyncio.gather(
            *(one(i, tid, x) for i, (tid, x) in enumerate(inputs))
        )
        wall = time.perf_counter() - start
    finally:
        await service.stop()
    return wall, latencies


def run_loadgen(
    out: str | Path | None = BENCH_SERVE_FILENAME,
    model: str = "mnist_cnn",
    tenants: int = 2,
    requests: int = 6,
    worker_counts: tuple[int, ...] = (1, 2),
    mode: str = "thread",
    transport_s: float = 1.5,
    chunk: int | None = None,
    seed: int = 41,
    warmup: int = 1,
    cache_dir: str | Path | None = None,
) -> list[dict]:
    """Drive the service under each worker count; write ``out``, return records.

    One record per worker configuration, all sharing a single plan cache
    (so later configurations exercise the warm path) and a fixed
    round-robin request schedule across ``tenants`` tenants — every
    configuration answers the identical workload, which is what makes the
    requests/sec comparison between them meaningful. ``warmup`` untimed
    requests per tenant precede each timed batch. ``cache_dir=None`` uses
    a memory-only plan cache (single-process sharing only).
    """
    if tenants < 1:
        raise ParameterError("loadgen needs at least one tenant")
    if requests < 1:
        raise ParameterError("loadgen needs at least one request")
    qm, params = _build_subject(model)
    cache = ShardedPlanCache(cache_dir)
    rng = np.random.default_rng(seed)
    tenant_ids = [f"tenant{i}" for i in range(tenants)]

    # One fixed schedule for every configuration: requests round-robin
    # across tenants, inputs drawn once.
    cin, h, w = qm.input_shape
    def fresh_input() -> np.ndarray:
        return rng.integers(-2, 3, (cin, h, w)).astype(np.int64)

    inputs = [
        (tenant_ids[i % tenants], fresh_input()) for i in range(requests)
    ]
    warmup_inputs = [
        (tid, fresh_input()) for tid in tenant_ids for _ in range(warmup)
    ]

    records: list[dict] = []
    for index, workers in enumerate(worker_counts):
        registry = TenantRegistry(
            Tenant(tid, params, seed=seed + i)
            for i, tid in enumerate(tenant_ids)
        )
        perf = PerfRecorder()
        service = AthenaService(
            registry,
            cache=cache,
            exec_config=ExecConfig(mode, workers),
            # The closed batch is admitted up front; size the per-tenant
            # bound to hold this tenant's whole share so the loadgen
            # itself is never shed.
            queue_capacity=max(1, -(-requests // tenants)),
            transport_s=transport_s,
            perf=perf,
        )
        hits0, misses0 = cache.hits, cache.misses
        service.register_model(model, qm, chunk=chunk)
        wall, latencies = asyncio.run(
            _drive(service, model, inputs, warmup_inputs)
        )
        phase_hits = cache.hits - hits0
        phase_misses = cache.misses - misses0
        phase_total = phase_hits + phase_misses
        stats = service.stats()
        records.append({
            "bench": "serve",
            "phase": "cold" if index == 0 else "warm",
            "model": model,
            "params": {
                "name": params.name,
                "n": params.n,
                "limbs": len(params.moduli),
                "t": params.t,
            },
            "tenants": tenants,
            "workers": workers,
            "mode": mode,
            "transport_s": transport_s,
            "requests": requests,
            "wall_s": round(wall, 6),
            "requests_per_s": round(requests / wall, 6),
            "latency_p50_s": _percentile(latencies, 50),
            "latency_p99_s": _percentile(latencies, 99),
            "queue_depth_max": stats["scheduler"]["queue_depth_max"],
            "plan_cache": {
                "hits": phase_hits,
                "misses": phase_misses,
                "hit_rate": (
                    round(phase_hits / phase_total, 4) if phase_total else None
                ),
            },
            # Timed requests only (service stats also count the warmup).
            "per_tenant": {
                tid: sum(1 for req_tid, _ in inputs if req_tid == tid)
                for tid in tenant_ids
            },
        })
    for record in records:
        missing = [k for k in SERVE_SCHEMA if k not in record]
        if missing:  # pragma: no cover - schema regression guard
            raise RuntimeError(f"serve record missing keys: {missing}")
    if out is not None:
        Path(out).write_text(json.dumps(records, indent=2) + "\n")
    return records
