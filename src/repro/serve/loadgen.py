"""Load generator: throughput/latency numbers for the serving stack.

:func:`run_loadgen` stands up an :class:`~repro.serve.AthenaService` per
configuration — same tenants, same model, same shared plan cache — drives
a fixed closed batch of requests through each, and emits
``BENCH_serve.json``: one record per configuration with requests/sec,
client-observed p50/p99 latency, peak queue depth, batch occupancy, and
the plan-cache hit rate of that configuration's phase. The first
configuration is the ``cold`` phase (its first lookup compiles and
persists the plan); every later configuration is ``warm`` (all lookups
are cache hits) — CI asserts the warm-phase hit rate is positive.

Per-request time has two components the configurations trade off
differently: the ciphertext compute (CPU-bound, parallel across process
workers and across numpy's GIL-free kernels in thread workers) and the
``transport_s`` window — the per-connection ciphertext upload/download
occupancy an FHE deployment pays (at the paper's production parameters a
single fresh ciphertext is ~5.9 MiB; see
:attr:`repro.fhe.params.FheParams.ciphertext_bytes`). The transport window
holds a worker slot without holding the CPU, so a multi-worker service
overlaps one request's transport with another's compute — which is why the
multi-worker configuration sustains higher requests/sec than the
single-worker one even before compute parallelism kicks in.

Cross-request ciphertext batching adds a second amortization axis:
``batching="both"`` runs every worker count once with batching off and
once on, at *equal* worker count, so the report isolates what lane
packing alone buys — a batch pays one transport window and one fused
pipeline execution for up to ``batch_capacity`` requests. The acceptance
gate in ``benchmarks/bench_serve.py`` pins both effects.

``model="mnist_cnn"`` (the default) serves the canonical micro CNN at
``TEST_LOOP`` parameters — the same subject as ``BENCH_pipeline.json`` —
so serving throughput is directly comparable with the single-session
pipeline numbers. ``model="micro"`` serves a smaller conv+fc model at
``TEST_FBS`` parameters for fast smoke runs. ``model="pack"`` serves the
lane-packing subject (``batch_capacity == 2`` at ``TEST_FBS``), the one
to use with ``batching="both"``.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.errors import ParameterError
from repro.fhe.params import TEST_FBS, TEST_LOOP, FheParams
from repro.perf import ExecConfig, PerfRecorder
from repro.perf.bench import mnist_cnn_micro
from repro.quant.quantize import (
    QConv,
    QFlatten,
    QLinear,
    QuantConfig,
    QuantizedModel,
)
from repro.serve.api import InferenceRequest
from repro.serve.cache import ShardedPlanCache
from repro.serve.service import AthenaService
from repro.serve.tenant import Tenant, TenantRegistry

__all__ = [
    "BENCH_SERVE_FILENAME",
    "SERVE_SCHEMA",
    "pack_cnn",
    "run_loadgen",
    "serve_micro_cnn",
]

#: Default output filename (CI uploads this artifact).
BENCH_SERVE_FILENAME = "BENCH_serve.json"

#: Record keys of one BENCH_serve.json entry.
SERVE_SCHEMA = (
    "bench", "phase", "model", "params", "tenants", "shared_keys", "workers",
    "mode", "transport_s", "batching", "batch_window_s", "batch_capacity",
    "requests", "batches", "batch_occupancy", "wall_s", "requests_per_s",
    "latency_p50_s", "latency_p99_s", "queue_depth_max", "plan_cache",
    "per_tenant",
)


def serve_micro_cnn(rng: np.random.Generator) -> QuantizedModel:
    """conv(1->1, k3) on 4x4 -> flatten -> fc(4->2), sized for TEST_FBS.

    The serving smoke model: one full five-step round plus a fused tail at
    the smallest ring where the real backend runs in ~a second, so service
    tests and the ``repro serve`` demo stay fast. Always built from a
    caller-seeded generator so every consumer gets the byte-identical
    model (same fingerprint), mirroring :func:`mnist_cnn_micro`.
    """
    cfg = QuantConfig(4, 4, t=TEST_FBS.t)
    conv = QConv(
        weight=rng.integers(-2, 3, (1, 1, 3, 3)).astype(np.int64),
        bias=rng.integers(-2, 3, 1).astype(np.int64),
        stride=1, pad=0, in_scale=1.0, w_scale=1.0, out_scale=8.0,
        activation="relu", in_shape=(1, 4, 4), out_shape=(1, 2, 2),
    )
    fc = QLinear(
        weight=rng.integers(-1, 2, (2, 4)).astype(np.int64),
        bias=rng.integers(-2, 3, 2).astype(np.int64),
        in_scale=1.0, w_scale=1.0, out_scale=2.0, activation="identity",
        in_features=4, out_features=2,
    )
    return QuantizedModel(
        [conv, QFlatten(), fc], cfg, 1.0, (1, 4, 4), name="serve_micro"
    )


def pack_cnn(rng: np.random.Generator) -> QuantizedModel:
    """conv(1->1, k2) on 3x3 -> flatten -> fc(4->2): the batchable subject.

    Sized so two images fit in one TEST_FBS ciphertext (conv lane span 13,
    fc lane span 11, n=32 => ``batch_capacity == 2``) — the cross-user
    batching subject for benches and equivalence tests. Weights and biases
    are hand-placed multiples of ``out_scale`` so every LUT input sits a
    full quantization step away from a rounding boundary: the +-1 LWE
    refresh noise can never flip an output, making batched, single, and
    plain integer inference *bit-identical* (not merely close). The ``rng``
    parameter mirrors the other builders' signature; the model is fully
    deterministic.
    """
    del rng  # deterministic by design; see docstring
    cfg = QuantConfig(4, 4, t=TEST_FBS.t)
    conv = QConv(
        weight=np.array([[[[8, 0], [0, 8]]]], dtype=np.int64),
        bias=np.array([8], dtype=np.int64),
        stride=1, pad=0, in_scale=1.0, w_scale=1.0, out_scale=8.0,
        activation="relu", in_shape=(1, 3, 3), out_shape=(1, 2, 2),
    )
    fc = QLinear(
        weight=np.array([[8, -8, 0, 0], [0, 0, 8, 8]], dtype=np.int64),
        bias=np.array([8, -8], dtype=np.int64),
        in_scale=1.0, w_scale=1.0, out_scale=8.0, activation="identity",
        in_features=4, out_features=2,
    )
    return QuantizedModel(
        [conv, QFlatten(), fc], cfg, 1.0, (1, 3, 3), name="pack"
    )


#: Bench subjects: model name -> (builder rng seed applied inside, params).
_SUBJECTS: dict[str, tuple] = {
    "mnist_cnn": (mnist_cnn_micro, TEST_LOOP),
    "micro": (serve_micro_cnn, TEST_FBS),
    "pack": (pack_cnn, TEST_FBS),
}


def _build_subject(model: str) -> tuple[QuantizedModel, FheParams]:
    try:
        builder, params = _SUBJECTS[model]
    except KeyError:
        raise ParameterError(
            f"unknown loadgen model {model!r}; options: {sorted(_SUBJECTS)}"
        ) from None
    return builder(np.random.default_rng(5)), params


def _percentile(latencies: list[float], q: float) -> float:
    return round(float(np.percentile(np.asarray(latencies), q)), 6)


async def _drive(
    service: AthenaService,
    model: str,
    inputs: list[tuple[str, np.ndarray]],
    warmup_inputs: list[tuple[str, np.ndarray]],
) -> tuple[float, list[float], dict]:
    """Warm, then time the batch; returns (wall_s, latencies, batch stats).

    The timed requests are submitted concurrently (``asyncio.gather``), so
    compatible requests really are co-queued and the batch assembler gets a
    fair shot at packing them — exactly a burst of simultaneous clients.
    Batch counters are deltas over the timed phase only (the sequential
    warmup necessarily runs occupancy-1 batches).
    """
    await service.start()
    try:
        for tenant_id, x_q in warmup_inputs:
            await service.submit(InferenceRequest(tenant_id, model, x_q))

        assembler = service.assembler
        batches0 = assembler.batches
        batched0 = assembler.batched_requests
        latencies: list[float] = [0.0] * len(inputs)

        async def one(i: int, tenant_id: str, x_q: np.ndarray) -> None:
            t0 = time.perf_counter()
            await service.submit(InferenceRequest(tenant_id, model, x_q))
            latencies[i] = time.perf_counter() - t0

        start = time.perf_counter()
        await asyncio.gather(
            *(one(i, tid, x) for i, (tid, x) in enumerate(inputs))
        )
        wall = time.perf_counter() - start
        batches = assembler.batches - batches0
        batched = assembler.batched_requests - batched0
        batch_stats = {
            "batches": batches,
            "occupancy": round(batched / batches, 4) if batches else None,
        }
    finally:
        await service.stop()
    return wall, latencies, batch_stats


def run_loadgen(
    out: str | Path | None = BENCH_SERVE_FILENAME,
    model: str = "mnist_cnn",
    tenants: int = 2,
    requests: int = 6,
    worker_counts: tuple[int, ...] = (1, 2),
    mode: str = "thread",
    transport_s: float = 1.5,
    chunk: int | None = None,
    seed: int = 41,
    warmup: int = 1,
    cache_dir: str | Path | None = None,
    batching: str = "on",
    batch_window_s: float = 0.25,
    shared_keys: bool = False,
) -> list[dict]:
    """Drive the service under each configuration; write ``out``, return records.

    One record per ``(workers, batching)`` configuration, all sharing a
    single plan cache (so later configurations exercise the warm path) and
    a fixed round-robin request schedule across ``tenants`` tenants —
    every configuration answers the identical workload, which is what
    makes the requests/sec comparison between them meaningful. ``warmup``
    untimed requests per tenant precede each timed batch.
    ``cache_dir=None`` uses a memory-only plan cache (single-process
    sharing only).

    ``batching`` is ``"on"``, ``"off"``, or ``"both"`` — ``"both"`` runs
    every worker count twice (off first, then on) so batched vs unbatched
    throughput compares at equal worker count. ``shared_keys=True`` gives
    every tenant the same keygen seed, putting all tenants in one key
    domain so the assembler's shared-key fast path can pack *cross-tenant*
    batches; with distinct seeds only same-tenant requests co-batch.
    """
    if tenants < 1:
        raise ParameterError("loadgen needs at least one tenant")
    if requests < 1:
        raise ParameterError("loadgen needs at least one request")
    if batching not in ("on", "off", "both"):
        raise ParameterError(
            f"batching must be 'on', 'off', or 'both'; got {batching!r}"
        )
    qm, params = _build_subject(model)
    cache = ShardedPlanCache(cache_dir)
    rng = np.random.default_rng(seed)
    tenant_ids = [f"tenant{i}" for i in range(tenants)]
    batch_flags = {
        "on": (True,), "off": (False,), "both": (False, True),
    }[batching]

    # One fixed schedule for every configuration: requests round-robin
    # across tenants, inputs drawn once.
    cin, h, w = qm.input_shape
    def fresh_input() -> np.ndarray:
        return rng.integers(-2, 3, (cin, h, w)).astype(np.int64)

    inputs = [
        (tenant_ids[i % tenants], fresh_input()) for i in range(requests)
    ]
    warmup_inputs = [
        (tid, fresh_input()) for tid in tenant_ids for _ in range(warmup)
    ]

    records: list[dict] = []
    index = 0
    for workers in worker_counts:
        for batch_on in batch_flags:
            registry = TenantRegistry(
                Tenant(tid, params, seed=seed if shared_keys else seed + i)
                for i, tid in enumerate(tenant_ids)
            )
            perf = PerfRecorder()
            service = AthenaService(
                registry,
                cache=cache,
                exec_config=ExecConfig(mode, workers),
                # The closed batch is admitted up front; size the per-tenant
                # bound to hold this tenant's whole share so the loadgen
                # itself is never shed.
                queue_capacity=max(1, -(-requests // tenants)),
                transport_s=transport_s,
                perf=perf,
                batching=batch_on,
                batch_window_s=batch_window_s,
            )
            hits0, misses0 = cache.hits, cache.misses
            service.register_model(model, qm, chunk=chunk)
            capacity = next(iter(service._cores.values())).plan.batch_capacity
            wall, latencies, batch_stats = asyncio.run(
                _drive(service, model, inputs, warmup_inputs)
            )
            phase_hits = cache.hits - hits0
            phase_misses = cache.misses - misses0
            phase_total = phase_hits + phase_misses
            stats = service.stats().to_dict()
            records.append({
                "bench": "serve",
                "phase": "cold" if index == 0 else "warm",
                "model": model,
                "params": {
                    "name": params.name,
                    "n": params.n,
                    "limbs": len(params.moduli),
                    "t": params.t,
                },
                "tenants": tenants,
                "shared_keys": shared_keys,
                "workers": workers,
                "mode": mode,
                "transport_s": transport_s,
                "batching": batch_on,
                "batch_window_s": batch_window_s,
                "batch_capacity": capacity,
                "requests": requests,
                "batches": batch_stats["batches"],
                "batch_occupancy": batch_stats["occupancy"],
                "wall_s": round(wall, 6),
                "requests_per_s": round(requests / wall, 6),
                "latency_p50_s": _percentile(latencies, 50),
                "latency_p99_s": _percentile(latencies, 99),
                "queue_depth_max": stats["detail"]["scheduler"]["counters"][
                    "queue_depth_max"
                ],
                "plan_cache": {
                    "hits": phase_hits,
                    "misses": phase_misses,
                    "hit_rate": (
                        round(phase_hits / phase_total, 4)
                        if phase_total else None
                    ),
                },
                # Timed requests only (service stats also count the warmup).
                "per_tenant": {
                    tid: sum(1 for req_tid, _ in inputs if req_tid == tid)
                    for tid in tenant_ids
                },
            })
            index += 1
    for record in records:
        missing = [k for k in SERVE_SCHEMA if k not in record]
        if missing:  # pragma: no cover - schema regression guard
            raise RuntimeError(f"serve record missing keys: {missing}")
    if out is not None:
        Path(out).write_text(json.dumps(records, indent=2) + "\n")
    return records
