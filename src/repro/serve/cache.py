"""On-disk compiled-plan cache keyed by (model hash, params hash)."""

from __future__ import annotations

from pathlib import Path

from repro.core.plan import CompiledProgram, compile_program, program_fingerprint
from repro.fhe.params import FheParams
from repro.fhe.serialize import dump_plan, load_plan, params_fingerprint


class PlanCache:
    """Persist :class:`CompiledProgram` artifacts across processes.

    The cache key is the pair of fingerprints that fully determine a plan —
    the lowered model (structure + weights + quantization config) and the
    parameter set — plus the chunk cap, which changes the tile layout.
    Artifacts contain no key material, so a shared cache directory is safe.
    """

    SUFFIX = ".plan"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(
        self, model_hash: str, params: FheParams, chunk: int | None = None
    ) -> Path:
        phash = params_fingerprint(params).hex()
        tag = f"-c{chunk}" if chunk is not None else ""
        return self.root / f"{model_hash[:16]}-{phash}{tag}{self.SUFFIX}"

    def get(self, program, params: FheParams, chunk: int | None = None) -> CompiledProgram:
        """Load the program's plan from disk, compiling (and saving) on miss."""
        path = self.path_for(program_fingerprint(program), params, chunk)
        if path.exists():
            plan = load_plan(path.read_bytes(), params)
            plan.bind(program, params)
            return plan
        plan = compile_program(program, params, chunk=chunk)
        path.write_bytes(dump_plan(plan))
        return plan
