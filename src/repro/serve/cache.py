"""On-disk compiled-plan caches keyed by (model hash, params hash).

Two flavours:

* :class:`PlanCache` — the flat single-directory cache of PR 3, now with
  crash-safe persistence (plans are written to a temp file in the cache
  directory and published with :func:`os.replace`, so a concurrent reader
  can never load a truncated ``.plan``) and hit/miss accounting.
* :class:`ShardedPlanCache` — the serving-layer cache: artifacts are
  sharded into subdirectories by ``program_fingerprint`` prefix (so one
  deployment directory scales past a few thousand models), and loaded
  plans are additionally memoized in memory keyed by the full
  ``(model hash, params hash, chunk)`` triple — tenants sharing a model
  under the same parameters share one compiled artifact *object*, which is
  safe because plans hold no key material and are read-only at run time.
"""

from __future__ import annotations

import os
import tempfile
import threading
from pathlib import Path

from repro.core.plan import CompiledProgram, compile_program, program_fingerprint
from repro.errors import ReproError
from repro.fhe.params import FheParams
from repro.fhe.serialize import dump_plan, load_plan, params_fingerprint


class PlanCache:
    """Persist :class:`CompiledProgram` artifacts across processes.

    The cache key is the pair of fingerprints that fully determine a plan —
    the lowered model (structure + weights + quantization config) and the
    parameter set — plus the chunk cap, which changes the tile layout.
    Artifacts contain no key material, so a shared cache directory is safe.

    Writes are atomic: the artifact is staged as a ``*.tmp`` file in the
    destination directory and published with :func:`os.replace`, so every
    path carrying the ``.plan`` suffix is a complete artifact — a writer
    crashing mid-dump leaves at worst a stray temp file, never a truncated
    plan a concurrent :meth:`get` could load.

    ``hits`` / ``misses`` count lookups (a miss is a compile);
    :meth:`stats` reports them with the derived hit rate. Counter updates
    are lock-protected so concurrent serving threads never lose one.
    """

    SUFFIX = ".plan"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def path_for(
        self, model_hash: str, params: FheParams, chunk: int | None = None
    ) -> Path:
        phash = params_fingerprint(params).hex()
        tag = f"-c{chunk}" if chunk is not None else ""
        return self.root / f"{model_hash[:16]}-{phash}{tag}{self.SUFFIX}"

    def _record(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    @property
    def hit_rate(self) -> float | None:
        """Fraction of lookups served without a compile (None before any)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else None

    def stats(self) -> dict:
        """JSON-ready lookup accounting."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hits / total, 4) if total else None,
            }

    def get(
        self,
        program,
        params: FheParams,
        chunk: int | None = None,
        tuning=None,
    ) -> CompiledProgram:
        """Load the program's plan from disk, compiling (and saving) on miss.

        ``tuning`` (a :class:`repro.core.lowering.TuningConfig`) is folded
        into ``program_fingerprint``, so a tuned and an untuned plan for
        the same model never share an artifact — the cache can never serve
        a stale layout for a different encoding config.

        A cached artifact that no longer loads — most commonly a stale wire
        version left behind by an older build — is treated as a miss and
        overwritten with a fresh compile, so cache directories survive
        format bumps without manual cleanup.
        """
        path = self.path_for(
            program_fingerprint(program, tuning), params, chunk
        )
        if path.exists():
            try:
                plan = load_plan(path.read_bytes(), params)
                plan.bind(program, params)
            except ReproError:
                pass  # stale or corrupt artifact: recompile below
            else:
                self._record(hit=True)
                return plan
        plan = compile_program(program, params, chunk=chunk, tuning=tuning)
        self._write_atomic(path, dump_plan(plan))
        self._record(hit=False)
        return plan

    def _write_atomic(self, path: Path, raw: bytes) -> None:
        """Stage ``raw`` beside ``path`` and publish it with one rename."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(raw)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


class ShardedPlanCache(PlanCache):
    """Fingerprint-sharded plan cache with an in-memory layer.

    ``root=None`` builds a memory-only cache (nothing touches disk) — the
    default for an :class:`repro.serve.AthenaService` that was not given a
    persistent cache directory, so co-located tenants still share one
    compiled plan per model.

    Disk layout shards by the leading ``shard_chars`` hex digits of the
    model fingerprint: ``<root>/<hash[:2]>/<hash[:16]>-<params>.plan``.
    """

    def __init__(self, root: str | Path | None, shard_chars: int = 2):
        self.shard_chars = shard_chars
        self._memory: dict[tuple[str, str, int | None], CompiledProgram] = {}
        if root is None:
            # Memory-only: skip PlanCache.__init__'s mkdir but keep counters.
            self.root = None
            self.hits = 0
            self.misses = 0
            self._lock = threading.Lock()
        else:
            super().__init__(root)

    def path_for(
        self, model_hash: str, params: FheParams, chunk: int | None = None
    ) -> Path:
        phash = params_fingerprint(params).hex()
        tag = f"-c{chunk}" if chunk is not None else ""
        return (
            self.root
            / model_hash[: self.shard_chars]
            / f"{model_hash[:16]}-{phash}{tag}{self.SUFFIX}"
        )

    def get(
        self,
        program,
        params: FheParams,
        chunk: int | None = None,
        tuning=None,
    ) -> CompiledProgram:
        """Memory, then (if disk-backed) sharded disk, then compile."""
        key = (
            program_fingerprint(program, tuning),
            params_fingerprint(params).hex(),
            chunk,
        )
        with self._lock:
            plan = self._memory.get(key)
        if plan is not None:
            plan.bind(program, params)
            self._record(hit=True)
            return plan
        if self.root is not None:
            plan = super().get(program, params, chunk, tuning)
        else:
            plan = compile_program(program, params, chunk=chunk, tuning=tuning)
            self._record(hit=False)
        with self._lock:
            self._memory[key] = plan
        return plan
