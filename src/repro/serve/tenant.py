"""Tenant layer: who is being served, under which keys and parameters.

A *tenant* is one key domain: its own :class:`FheParams`, its own keygen
seed (so every :class:`~repro.serve.session.SessionRuntime` built for it
derives the same — and only its own — secret/evaluation keys), and
optionally its own pinned op-dispatch backend. Ciphertexts never cross
tenants: the scheduler keeps per-tenant queues and the worker layer keys
its warm sessions by ``(tenant_id, model)``, so tenant A's keys can never
touch tenant B's requests.

The tenant layer also owns deployment *sizing*: each tenant's evaluation
key inventory (Galois/relin/LWE-keyswitch material, via
:mod:`repro.core.keyinventory`) is derived from its parameter set, which is
what a capacity planner needs to bound per-tenant key storage before any
key is actually generated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.keyinventory import KeyInventory, build_inventory
from repro.errors import ParameterError
from repro.fhe.params import FheParams

__all__ = ["Tenant", "TenantRegistry"]


@dataclass(frozen=True)
class Tenant:
    """One key domain of the service.

    Attributes:
        tenant_id: Unique handle; the scheduler's fairness unit.
        params: This tenant's FHE parameter set. Tenants sharing a model
            *and* a parameter set share one compiled plan (plans hold no
            key material); key material itself is never shared.
        seed: Keygen seed. Every runtime built for this tenant derives the
            same keys from it, so any worker can answer this tenant's
            requests interchangeably.
        backend: Optional pinned op-dispatch backend *name* (names stay
            picklable across process workers); ``None`` inherits the
            ambient default.
    """

    tenant_id: str
    params: FheParams
    seed: int = 0
    backend: str | None = None

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ParameterError("tenant_id must be a non-empty string")

    def key_domain(self) -> tuple:
        """Hashable identity of this tenant's key material.

        Every :class:`~repro.serve.session.SessionRuntime` derives its keys
        deterministically from ``(params, seed)``, so two tenants with equal
        key domains hold *identical* secret/evaluation keys and their
        requests may legally share a ciphertext — the batching layer's
        shared-key fast path. The pinned backend is included conservatively:
        cross-tenant batches execute on one runtime, and folding a tenant
        into a differently-pinned runtime would misattribute its op counts.
        """
        from repro.fhe.serialize import params_fingerprint

        return (params_fingerprint(self.params).hex(), self.seed, self.backend)

    def key_inventory(self, ksk_digit_bits: int | None = None) -> KeyInventory:
        """Evaluation-key inventory this tenant's parameter set implies."""
        return build_inventory(self.params, ksk_digit_bits=ksk_digit_bits)

    def key_material_bytes(self, seed_compressed: bool = True) -> int:
        """Size of this tenant's full evaluation-key set."""
        return self.key_inventory().total_bytes(seed_compressed)

    def describe(self) -> str:
        backend = self.backend or "default"
        return (
            f"{self.tenant_id}: {self.params.name}, seed={self.seed}, "
            f"backend={backend}, "
            f"keys~{self.key_material_bytes() / 2**20:.2f} MiB"
        )


class TenantRegistry:
    """The service's tenant table: lookup, iteration, capacity sizing."""

    def __init__(self, tenants: Iterable[Tenant] = ()):
        self._tenants: dict[str, Tenant] = {}
        for tenant in tenants:
            self.add(tenant)

    def add(self, tenant: Tenant) -> Tenant:
        if tenant.tenant_id in self._tenants:
            raise ParameterError(f"duplicate tenant {tenant.tenant_id!r}")
        self._tenants[tenant.tenant_id] = tenant
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise ParameterError(
                f"unknown tenant {tenant_id!r}; registered: "
                f"{sorted(self._tenants)}"
            ) from None

    def ids(self) -> list[str]:
        """Registration-ordered tenant ids (the scheduler's fairness ring)."""
        return list(self._tenants)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def total_key_material_bytes(self, seed_compressed: bool = True) -> int:
        """Aggregate evaluation-key storage across all tenants."""
        return sum(
            t.key_material_bytes(seed_compressed) for t in self._tenants.values()
        )
