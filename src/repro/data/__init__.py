"""Synthetic dataset generators (MNIST- and CIFAR-like)."""

from repro.data.synthetic import load_dataset, synthetic_cifar, synthetic_digits

__all__ = ["load_dataset", "synthetic_cifar", "synthetic_digits"]
