"""Synthetic stand-ins for MNIST and CIFAR-10 (DESIGN.md substitution #2).

The offline environment has no dataset files, so:

* :func:`synthetic_digits` renders seven-segment-style digits with random
  stroke thickness, affine jitter, and pixel noise — a 10-class, 1x28x28
  problem with the same interface as MNIST.
* :func:`synthetic_cifar` generates 10 classes of colored oriented-grating
  textures with per-sample phase, blob occlusions, and noise — a 3x32x32
  stand-in for CIFAR-10.

Both are procedurally generated from a seed, so every experiment is
reproducible and any sample count is available. The paper's accuracy claims
concern the *plaintext-vs-ciphertext gap*, which these datasets exercise
identically to the originals.
"""

from __future__ import annotations

import numpy as np

# Seven-segment layout: which segments are lit per digit.
#     _a_
#   f|   |b        segments: a b c d e f g
#    |_g_|
#   e|   |c
#    |_d_|
_SEGMENTS = {
    0: "abcdef",
    1: "bc",
    2: "abged",
    3: "abgcd",
    4: "fgbc",
    5: "afgcd",
    6: "afgedc",
    7: "abc",
    8: "abcdefg",
    9: "abcfgd",
}

# Segment endpoints on a unit design box (x0, y0, x1, y1).
_SEGMENT_GEOMETRY = {
    "a": (0.15, 0.05, 0.85, 0.05),
    "b": (0.85, 0.05, 0.85, 0.50),
    "c": (0.85, 0.50, 0.85, 0.95),
    "d": (0.15, 0.95, 0.85, 0.95),
    "e": (0.15, 0.50, 0.15, 0.95),
    "f": (0.15, 0.05, 0.15, 0.50),
    "g": (0.15, 0.50, 0.85, 0.50),
}


def _render_digit(digit: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Rasterize one jittered digit into a (size, size) float image."""
    img = np.zeros((size, size), dtype=np.float64)
    yy, xx = np.mgrid[0:size, 0:size]
    # Random affine placement of the design box.
    scale = rng.uniform(0.55, 0.8) * size
    cx = rng.uniform(0.35, 0.65) * size
    cy = rng.uniform(0.35, 0.65) * size
    angle = rng.uniform(-0.15, 0.15)
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    thickness = rng.uniform(0.05, 0.10) * scale
    for seg in _SEGMENTS[digit]:
        x0, y0, x1, y1 = _SEGMENT_GEOMETRY[seg]
        # design coords -> image coords (rotated box centered at cx, cy)
        def to_img(x, y):
            dx, dy = (x - 0.5) * scale, (y - 0.5) * scale
            return cx + cos_a * dx - sin_a * dy, cy + sin_a * dx + cos_a * dy

        ax, ay = to_img(x0, y0)
        bx, by = to_img(x1, y1)
        # Distance from every pixel to the segment.
        vx, vy = bx - ax, by - ay
        length_sq = vx * vx + vy * vy + 1e-9
        t = np.clip(((xx - ax) * vx + (yy - ay) * vy) / length_sq, 0.0, 1.0)
        dist = np.hypot(xx - (ax + t * vx), yy - (ay + t * vy))
        img = np.maximum(img, np.clip(1.3 - dist / thickness, 0.0, 1.0))
    return img


def synthetic_digits(
    count: int, rng: np.random.Generator | None = None, size: int = 28,
    noise: float = 0.08,
) -> tuple[np.ndarray, np.ndarray]:
    """Return (images, labels): (count, 1, size, size) floats in [0,1]."""
    rng = rng or np.random.default_rng(0)
    labels = rng.integers(0, 10, count)
    images = np.empty((count, 1, size, size), dtype=np.float64)
    for i, d in enumerate(labels):
        img = _render_digit(int(d), size, rng)
        img += rng.normal(0, noise, img.shape)
        images[i, 0] = np.clip(img, 0.0, 1.0)
    return images, labels.astype(np.int64)


def synthetic_cifar(
    count: int, rng: np.random.Generator | None = None, size: int = 32,
    noise: float = 0.10,
) -> tuple[np.ndarray, np.ndarray]:
    """Return (images, labels): (count, 3, size, size) floats in [0,1].

    Class k is an oriented grating (angle k*18 deg, class-specific spatial
    frequency) with a class-linked color palette, random phase, a random
    soft occluding blob, and additive noise.
    """
    rng = rng or np.random.default_rng(0)
    labels = rng.integers(0, 10, count)
    yy, xx = np.mgrid[0:size, 0:size] / size
    palettes = np.array(
        [
            [0.9, 0.2, 0.2], [0.2, 0.9, 0.2], [0.2, 0.3, 0.9], [0.9, 0.8, 0.1],
            [0.8, 0.2, 0.8], [0.1, 0.8, 0.8], [0.9, 0.5, 0.1], [0.5, 0.3, 0.1],
            [0.6, 0.6, 0.9], [0.3, 0.3, 0.3],
        ]
    )
    images = np.empty((count, 3, size, size), dtype=np.float64)
    for i, k in enumerate(labels):
        theta = np.pi * k / 10 + rng.normal(0, 0.05)
        freq = 3.0 + (k % 5) * 1.5
        phase = rng.uniform(0, 2 * np.pi)
        wave = 0.5 + 0.5 * np.sin(
            2 * np.pi * freq * (np.cos(theta) * xx + np.sin(theta) * yy) + phase
        )
        # soft occluding blob
        bx, by = rng.uniform(0.2, 0.8, 2)
        br = rng.uniform(0.1, 0.25)
        blob = np.exp(-(((xx - bx) ** 2 + (yy - by) ** 2) / (2 * br**2)))
        base = np.clip(wave * (1 - 0.6 * blob) + 0.3 * blob, 0, 1)
        color = palettes[k] * rng.uniform(0.8, 1.2)
        for ch in range(3):
            img = base * color[ch] + rng.normal(0, noise, base.shape)
            images[i, ch] = np.clip(img, 0.0, 1.0)
    return images, labels.astype(np.int64)


def load_dataset(
    name: str, train: int = 2048, test: int = 512, seed: int = 0
) -> dict[str, np.ndarray]:
    """Convenience loader keyed by benchmark model family."""
    rng = np.random.default_rng(seed)
    if name in ("mnist", "digits", "mnist_cnn", "lenet"):
        x_tr, y_tr = synthetic_digits(train, rng)
        x_te, y_te = synthetic_digits(test, rng)
    elif name in ("cifar", "cifar10", "resnet20", "resnet56"):
        x_tr, y_tr = synthetic_cifar(train, rng)
        x_te, y_te = synthetic_cifar(test, rng)
    else:
        raise KeyError(f"unknown dataset {name!r}")
    return {"x_train": x_tr, "y_train": y_tr, "x_test": x_te, "y_test": y_te}
