"""LUT construction: quantized-layer remapping merged with activations.

Athena's key idea (paper §3.2.3): every non-linearity *and* the
re-quantization step is one table lookup over Z_t,

    LUT(x) = clip(round(act(x * scale_in * scale_w) / scale_out))

evaluated under FHE by functional bootstrapping. This module builds those
tables from the quantized IR so that the encrypted pipeline and the
plaintext integer pipeline share literally the same table — any output
difference between them is then attributable to FHE noise alone.

Also provided: generic activation tables (ReLU / sigmoid / GELU / ...), the
average-pool division table, the max-tree helper for max-pooling, and the
two-step softmax tables (exp and reciprocal-of-sum), all per §3.2.3.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

import numpy as np

from repro.errors import QuantizationError
from repro.fhe.fbs import FbsLut
from repro.quant.quantize import QuantConfig


def _centered_domain(t: int) -> np.ndarray:
    raw = np.arange(t, dtype=np.int64)
    return np.where(raw > t // 2, raw - t, raw)


def remap_lut(
    multiplier: float, activation: str, a_max: int, t: int, name: str = ""
) -> FbsLut:
    """LUT(x) = clip(round(act(x) * multiplier), -a_max, a_max) over Z_t."""
    x = _centered_domain(t).astype(np.float64)
    if activation == "relu":
        x = np.maximum(x, 0)
    elif activation != "identity":
        raise QuantizationError(f"unsupported merged activation {activation!r}")
    vals = np.clip(np.rint(x * multiplier), -a_max, a_max).astype(np.int64)
    return FbsLut(vals, t, name or f"remap-{activation}")


def layer_lut(layer, cfg: QuantConfig, t: int | None = None) -> FbsLut:
    """The FBS table for one IR node's MAC -> activation remapping.

    Built by tabulating the IR node's own ``remap`` over the centered
    domain, so the encrypted table is bit-exact with plaintext quantized
    inference for *any* merged activation (relu / sigmoid / gelu / ...).
    The recipe itself lives in :func:`repro.core.program.lut_spec` — part
    of the lowering pass, the one place Q-layer dispatch is allowed.
    """
    from repro.core.program import lut_spec

    return lut_spec(layer).build(cfg, t)


# ---------------------------------------------------------------------------
# Generic activation tables ("Athena supports any non-linear function")
# ---------------------------------------------------------------------------


def activation_lut(
    fn: Callable[[np.ndarray], np.ndarray],
    t: int,
    in_scale: float = 1.0,
    out_scale: float = 1.0,
    name: str = "act",
) -> FbsLut:
    """LUT(x) = round(fn(x * in_scale) / out_scale) over the centered domain."""
    x = _centered_domain(t).astype(np.float64) * in_scale
    vals = np.rint(np.asarray(fn(x)) / out_scale).astype(np.int64)
    return FbsLut(vals, t, name)


@lru_cache(maxsize=None)
def relu_lut(t: int) -> FbsLut:
    """ReLU table over Z_t. Cached: the table (and its interpolated
    polynomial) depends only on ``t``, so repeated max-trees and layer
    builds share one instance — treat the result as immutable."""
    return FbsLut.from_function(lambda x: np.maximum(x, 0), t, "relu")


@lru_cache(maxsize=None)
def sigmoid_lut(t: int, in_scale: float, out_levels: int) -> FbsLut:
    """Sigmoid quantized to ``out_levels`` integer levels (cached)."""
    return activation_lut(
        lambda x: out_levels / (1.0 + np.exp(-x)), t, in_scale, 1.0, "sigmoid"
    )


@lru_cache(maxsize=None)
def gelu_lut(t: int, in_scale: float, out_scale: float) -> FbsLut:
    def gelu(x):
        return 0.5 * x * (1.0 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x**3)))

    return activation_lut(gelu, t, in_scale, out_scale, "gelu")


@lru_cache(maxsize=None)
def avgpool_lut(kernel: int, t: int) -> FbsLut:
    """LUT(x) = round(x / k^2) (paper: Average-pooling). Cached per (k, t)."""
    k2 = kernel * kernel
    vals = np.rint(_centered_domain(t) / k2).astype(np.int64)
    return FbsLut(vals, t, f"avgpool-{kernel}")


# ---------------------------------------------------------------------------
# Max-pooling via the max-tree (paper / PEGASUS [30])
# ---------------------------------------------------------------------------


def max_tree_plain(values: np.ndarray, relu: FbsLut, t: int) -> np.ndarray:
    """max over axis -1 using only (sub, ReLU-LUT, add) — the FHE recipe.

    max(a, b) = b + relu(a - b); reducing pairwise gives a log-depth tree of
    O(k) LUT evaluations for a k-wide pooling window, matching the paper's
    O(k) FBS cost for max-pooling.
    """
    vals = np.asarray(values, dtype=np.int64)
    while vals.shape[-1] > 1:
        n = vals.shape[-1]
        half = n // 2
        a = vals[..., :half]
        b = vals[..., half : 2 * half]
        diff = (a - b + t // 2) % t - t // 2  # centered mod-t subtraction
        merged = b + relu.apply_plain(diff)
        if n % 2:
            merged = np.concatenate([merged, vals[..., -1:]], axis=-1)
        vals = merged
    return vals[..., 0]


# ---------------------------------------------------------------------------
# Softmax (paper §3.2.3: exp LUT, inverse LUT, one CMult)
# ---------------------------------------------------------------------------


def softmax_luts(
    t: int, in_scale: float, exp_levels: int = 256, inv_levels: int = 256,
    max_inputs: int = 64,
) -> tuple[FbsLut, FbsLut, int]:
    """(exp table, reciprocal table, product shift) for encrypted softmax.

    Step 1: e_i = round(exp(x_i * in_scale) * exp_levels)  (bounded bit width)
    Step 2: r = round(inv_levels * exp_levels / sum_j e_j)
    Step 3: softmax_i ~= e_i * r / (inv_levels)  via one CMult.
    """
    exp_lut = activation_lut(
        lambda x: np.clip(np.exp(np.minimum(x, 0.0)) * exp_levels, 0, exp_levels),
        t,
        in_scale,
        1.0,
        "softmax-exp",
    )
    x = _centered_domain(t).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = np.where(x > 0, inv_levels * exp_levels / np.maximum(x, 1), 0.0)
    inv_lut = FbsLut(np.rint(np.clip(inv, 0, t // 2)).astype(np.int64), t, "softmax-inv")
    return exp_lut, inv_lut, inv_levels


def softmax_plain(
    logits: np.ndarray, exp_lut: FbsLut, inv_lut: FbsLut, inv_levels: int, t: int
) -> np.ndarray:
    """Reference integer softmax using the FHE recipe (max-subtracted)."""
    x = np.asarray(logits, dtype=np.int64)
    shifted = x - x.max(axis=-1, keepdims=True)
    e = exp_lut.apply_plain(shifted)
    total = e.sum(axis=-1, keepdims=True)
    r = inv_lut.apply_plain(total)
    probs = e * r  # the CMult
    return probs / (probs.sum(axis=-1, keepdims=True) + 1e-12)
