"""Evaluation-key inventory and sizing for an Athena deployment.

The paper's Table 1 lists 720 MB of "rot+relin" key material. This module
derives the concrete inventory our pipeline needs — which Galois elements
the packing and S2C mat-vecs use, the relinearization key, and the LWE
keyswitch key — and sizes it under a given gadget configuration, with and
without seed compression (PRNG regeneration of the uniform halves).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fhe import slots as slotlib
from repro.fhe.params import ATHENA, FheParams


@dataclass(frozen=True)
class KeyInventory:
    params: FheParams
    rotation_amounts: tuple[int, ...]
    galois_elements: tuple[int, ...]
    ksk_digits: int

    @property
    def num_galois_keys(self) -> int:
        return len(self.galois_elements)

    def galois_key_bytes(self, seed_compressed: bool = True) -> int:
        per_digit = 2 * self.params.n * self.params.q.bit_length() // 8
        if seed_compressed:
            per_digit //= 2  # the uniform half regenerates from a seed
        return self.ksk_digits * per_digit

    def relin_key_bytes(self, seed_compressed: bool = True) -> int:
        return self.galois_key_bytes(seed_compressed)

    def lwe_ksk_bytes(self, seed_compressed: bool = True) -> int:
        p = self.params
        digits = -(-p.lwe_q.bit_length() // 7)
        if seed_compressed:
            # the alpha vectors regenerate from a PRNG seed; only betas ship
            return p.n * digits * 4
        return p.n * digits * (p.lwe_n + 1) * 4

    def total_bytes(self, seed_compressed: bool = True) -> int:
        return (
            self.num_galois_keys * self.galois_key_bytes(seed_compressed)
            + self.relin_key_bytes(seed_compressed)
            + self.lwe_ksk_bytes(seed_compressed)
        )


def baby_giant_amounts(dim: int, baby: int | None = None) -> set[int]:
    """Rotation amounts a BSGS pass over ``dim`` diagonals uses."""
    baby = baby or max(1, math.isqrt(dim))
    giant = -(-dim // baby)
    amounts = set(range(1, baby))
    amounts |= {g * baby for g in range(1, giant)}
    return amounts


def build_inventory(params: FheParams = ATHENA, ksk_digit_bits: int | None = None) -> KeyInventory:
    """Collect every Galois element the five-step loop can request."""
    half = params.n // 2
    amounts: set[int] = set()
    # Packing mat-vec: BSGS over the (replicated) LWE dimension.
    amounts |= baby_giant_amounts(min(params.lwe_n, half))
    # S2C passes: BSGS over the full row length.
    amounts |= baby_giant_amounts(half)
    elements = {
        slotlib.rotation_galois_element(params.n, a) for a in amounts if a % (half) != 0
    }
    elements.add(slotlib.row_swap_element(params.n))
    digit_bits = ksk_digit_bits or params.decomp_bits
    digits = -(-params.q.bit_length() // digit_bits)
    return KeyInventory(
        params,
        tuple(sorted(amounts)),
        tuple(sorted(elements)),
        digits,
    )


def summarize(params: FheParams = ATHENA, dnum: int = 3) -> dict[str, float]:
    """Key sizing under hybrid keyswitching with ``dnum`` digits (the
    accelerator-style configuration, far fewer digits than bit-level
    gadgets) — the regime in which the paper's ~720 MB figure lives."""
    inv = build_inventory(params)
    per_key = dnum * 2 * params.n * params.q.bit_length() // 8 // 2  # seeded
    total = (inv.num_galois_keys + 1) * per_key + inv.lwe_ksk_bytes()
    return {
        "galois_keys": inv.num_galois_keys,
        "per_key_mb": per_key / 2**20,
        "lwe_ksk_mb": inv.lwe_ksk_bytes() / 2**20,
        "total_mb": total / 2**20,
    }


def athena_key_material_bytes(params: FheParams = ATHENA) -> int:
    """Headline key-material figure used in the Table 1 reproduction."""
    return int(summarize(params)["total_mb"] * 2**20)
