"""Computational-complexity model (paper Table 3).

Symbolic operation counts for the CKKS-based pipeline of [27] versus the
Athena framework, instantiated with concrete parameters. Notation follows
the paper: N polynomial degree, f kernel width, C channels, p and r the
degrees of the polynomial fits used by CKKS ReLU and bootstrapping, t the
plaintext modulus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class OpComplexity:
    """Counts of the three op classes Table 3 tracks."""

    pmult: int
    cmult: int
    hrot: int

    def __add__(self, other: "OpComplexity") -> "OpComplexity":
        return OpComplexity(
            self.pmult + other.pmult,
            self.cmult + other.cmult,
            self.hrot + other.hrot,
        )


def ckks_conv(f: int, c: int) -> OpComplexity:
    """CKKS multiplexed convolution: O(f^2 C) PMult, O(f^2)+O(C) HRot."""
    return OpComplexity(pmult=f * f * c, cmult=0, hrot=f * f + c)


def ckks_relu(p: int) -> OpComplexity:
    """Polynomial-approximation ReLU: O(p) PMult, O(sqrt p) CMult."""
    return OpComplexity(pmult=p, cmult=math.isqrt(p), hrot=0)


def ckks_bootstrap(n: int, r: int) -> OpComplexity:
    """CKKS bootstrapping: O(cbrt N)+O(r) PMult, O(sqrt r) CMult, O(cbrt N) HRot."""
    cbrt = round(n ** (1 / 3))
    return OpComplexity(pmult=cbrt + r, cmult=math.isqrt(r), hrot=cbrt)


def athena_conv(c: int) -> OpComplexity:
    """Coefficient-encoded convolution: O(C) PMult, zero rotations."""
    return OpComplexity(pmult=c, cmult=0, hrot=0)


def athena_packing(c: int) -> OpComplexity:
    """LWE -> RLWE packing: O(C) PMult and O(C) HRot (BSGS mat-vec)."""
    return OpComplexity(pmult=c, cmult=0, hrot=c)


def athena_fbs(t: int) -> OpComplexity:
    """Functional bootstrapping: O(t) SMult (counted as PMult column),
    O(sqrt t) CMult (Alg. 2)."""
    return OpComplexity(pmult=t, cmult=math.isqrt(t), hrot=0)


def athena_s2c(n: int) -> OpComplexity:
    """Slot-to-coefficient: O(cbrt N) PMult and HRot."""
    cbrt = round(n ** (1 / 3))
    return OpComplexity(pmult=cbrt, cmult=0, hrot=cbrt)


@dataclass(frozen=True)
class Table3Row:
    solution: str
    operation: str
    complexity: OpComplexity


def table3(
    n: int = 1 << 15,
    f: int = 3,
    c: int = 64,
    p: int = 27,
    r: int = 31,
    t: int = 65537,
) -> list[Table3Row]:
    """Instantiate Table 3 with concrete parameters (paper defaults)."""
    return [
        Table3Row("ckks", "conv", ckks_conv(f, c)),
        Table3Row("ckks", "relu", ckks_relu(p)),
        Table3Row("ckks", "bootstrap", ckks_bootstrap(1 << 16, r)),
        Table3Row("athena", "conv", athena_conv(c)),
        Table3Row("athena", "packing", athena_packing(c)),
        Table3Row("athena", "fbs", athena_fbs(t)),
        Table3Row("athena", "s2c", athena_s2c(n)),
    ]


def per_layer_totals(rows: list[Table3Row]) -> dict[str, OpComplexity]:
    """Sum the rows per solution: one linear + one non-linear round."""
    out: dict[str, OpComplexity] = {}
    for row in rows:
        out[row.solution] = out.get(row.solution, OpComplexity(0, 0, 0)) + row.complexity
    return out
