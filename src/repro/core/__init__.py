"""Athena core: coefficient encoding, LUTs, five-step loop, inference engines."""

from repro.core.encoding import (
    TABLE2_SHAPES,
    ConvShape,
    EncodingPlan,
    athena_plan,
    cheetah_plan,
    conv_via_coefficients,
)
from repro.core.framework import AthenaPipeline, CiphertextExecutor, LoopCost
from repro.core.keyinventory import build_inventory, summarize as key_summary
from repro.core.inference import (
    AthenaNoiseModel,
    InferenceStats,
    SimulatedAthenaEngine,
)
from repro.core.lut import activation_lut, layer_lut, relu_lut, remap_lut
from repro.core.program import (
    AthenaProgram,
    LinearStep,
    LutSpec,
    PlainIntExecutor,
    PoolStep,
    ProgramExecutor,
    RemapStep,
    ReshapeStep,
    ResidualStep,
    lower,
    run_program,
)
from repro.core.trace import WorkloadTrace, trace_model

__all__ = [
    "TABLE2_SHAPES",
    "AthenaNoiseModel",
    "AthenaPipeline",
    "AthenaProgram",
    "CiphertextExecutor",
    "ConvShape",
    "EncodingPlan",
    "InferenceStats",
    "LinearStep",
    "LoopCost",
    "LutSpec",
    "PlainIntExecutor",
    "PoolStep",
    "ProgramExecutor",
    "RemapStep",
    "ReshapeStep",
    "ResidualStep",
    "build_inventory",
    "key_summary",
    "lower",
    "run_program",
    "SimulatedAthenaEngine",
    "WorkloadTrace",
    "activation_lut",
    "athena_plan",
    "cheetah_plan",
    "conv_via_coefficients",
    "layer_lut",
    "relu_lut",
    "remap_lut",
    "trace_model",
]
