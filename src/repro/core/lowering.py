"""Pluggable layer-lowering registry + declarative per-step encoding.

Lowering used to be a closed ``isinstance`` chain inside
``repro.core.program._lower_layers``: four zoo CNNs, Athena-style
encoding hardwired, and a silent ``QuantizationError`` for anything else.
This module opens that seam:

* each quantized-IR layer type registers a :class:`LoweringRule` that
  emits the layer's program steps (and may consume a lookahead layer,
  which is how conv+max-pool fusion is expressed);
* every LUT-bearing step the rules emit carries a declarative
  :class:`StepEncodingChoice` — which coefficient-encoding strategy the
  cost model should assume (paper Table 2: ``athena`` vs ``cheetah``),
  what chunk tile the five-step refresh should use, and the FBS BSGS
  baby-step split. The choice is *advice*, not execution: the compiler
  (``repro.core.plan``) and the autotuner (``repro.core.tune``) resolve
  it into concrete plan artifacts, and an explicit tuning config always
  wins over the rule's default.

The registry is keyed by layer type and walked through the MRO, so a
subclass of ``QConv`` lowers through the conv rule unless it registers
its own. Unknown types raise :class:`repro.errors.UnsupportedLayer`
carrying the layer's index and class name, which the CLI surfaces as a
clean one-line error.

The stock rules reproduce the historical lowering *byte for byte* —
step names, fusion decisions, LUT specs, and step order are pinned by
the frozen-walker equivalence suite in ``tests/test_program.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import UnsupportedLayer
from repro.fhe.params import FheParams
from repro.quant.quantize import (
    QAvgPool,
    QConv,
    QFlatten,
    QGlobalAvgPool,
    QLinear,
    QMaxPool,
    QResidual,
    QuantConfig,
)

__all__ = [
    "DEFAULT_ENCODING",
    "LoweringContext",
    "LoweringRule",
    "StepEncodingChoice",
    "TuningConfig",
    "lower_layers",
    "lowering_rules",
    "register_rule",
    "rule_for",
]


# --------------------------------------------------------------------------
# Declarative encoding choice
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class StepEncodingChoice:
    """How one step's five-step round should be laid out.

    * ``strategy`` — coefficient-encoding cost model (paper §3.2.1 /
      Table 2): ``"athena"`` packs a whole (C, H, W) tensor per
      ciphertext, ``"cheetah"`` packs per input channel. On a
      single-ciphertext layer both execute identically; the strategy
      steers the analytical cost model and multi-ciphertext planning.
    * ``chunk`` — refresh-tile size: extract/bootstrap at most ``chunk``
      outputs per tile and merge tiles by monomial shift (``None`` =
      whatever the global compile chunk says).
    * ``bsgs`` — baby-step count for the FBS polynomial's BSGS
      evaluation (``None`` = ``ceil(sqrt(degree + 1))``).
    """

    strategy: str = "athena"
    chunk: int | None = None
    bsgs: int | None = None

    def __post_init__(self):
        if self.strategy not in ("athena", "cheetah"):
            raise ValueError(f"unknown encoding strategy {self.strategy!r}")
        if self.chunk is not None and self.chunk < 1:
            raise ValueError("chunk must be >= 1")
        if self.bsgs is not None and self.bsgs < 2:
            raise ValueError("bsgs must be >= 2")

    def tag(self) -> str:
        """Stable string form, folded into ``program_fingerprint``."""
        return f"{self.strategy}:{self.chunk}:{self.bsgs}"


DEFAULT_ENCODING = StepEncodingChoice()


@dataclass(frozen=True)
class TuningConfig:
    """A per-step map of encoding choices, produced by ``repro.core.tune``.

    ``choices`` pairs step *names* with their :class:`StepEncodingChoice`;
    steps not named keep their rule default. The config is folded into
    ``program_fingerprint`` (via :meth:`tag`) so two compiles of the same
    model under different tunings never collide in a plan cache.
    """

    choices: tuple[tuple[str, StepEncodingChoice], ...] = ()

    def get(self, name: str) -> StepEncodingChoice | None:
        for step_name, choice in self.choices:
            if step_name == name:
                return choice
        return None

    def tag(self) -> str:
        """Stable string form for fingerprinting (sorted by step name)."""
        parts = sorted(f"{name}={choice.tag()}" for name, choice in self.choices)
        return "|".join(parts)

    def __bool__(self) -> bool:
        return bool(self.choices)


# --------------------------------------------------------------------------
# Rule registry
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LoweringContext:
    """Everything a rule may consult while emitting steps.

    ``lower_block`` re-enters the lowering driver for nested layer lists
    (residual branches) so rules never import the driver directly.
    """

    cfg: QuantConfig
    params: FheParams
    prefix: str
    lower_block: Callable


@dataclass(frozen=True)
class LoweringRule:
    """One layer type's lowering: ``emit(ctx, layer, nxt, name)``.

    ``emit`` returns ``(steps, consumed)`` where ``consumed`` is how many
    *extra* input layers the rule swallowed beyond ``layer`` itself
    (conv+max-pool fusion consumes one).
    """

    layer_type: type
    emit: Callable

    def __call__(self, ctx, layer, nxt, name):
        return self.emit(ctx, layer, nxt, name)


_RULES: dict[type, LoweringRule] = {}


def register_rule(layer_type: type):
    """Class decorator-style registration of a lowering rule function."""

    def decorate(fn):
        _RULES[layer_type] = LoweringRule(layer_type, fn)
        return fn

    return decorate


def _ensure_stock_rules() -> None:
    # Importing repro.core.program registers the stock rules; guard for
    # callers that import this module directly.
    if not _RULES:
        import repro.core.program  # noqa: F401


def rule_for(layer) -> LoweringRule | None:
    """Resolve a layer's rule through its MRO (subclasses inherit rules)."""
    _ensure_stock_rules()
    for klass in type(layer).__mro__:
        rule = _RULES.get(klass)
        if rule is not None:
            return rule
    return None


def lowering_rules() -> dict[type, LoweringRule]:
    """A snapshot of the registry (type -> rule)."""
    _ensure_stock_rules()
    return dict(_RULES)


def lower_layers(layers: list, cfg: QuantConfig, params: FheParams,
                 prefix: str = "") -> list:
    """The registry-driven lowering driver.

    Walks the quantized-IR layer list, dispatching each layer to its
    registered rule; rules may consume a lookahead layer (fusion). Step
    naming (``{prefix}{classname}{index}``, one index per source layer)
    matches the historical pass exactly.
    """
    ctx = LoweringContext(cfg=cfg, params=params, prefix=prefix,
                          lower_block=lower_layers)
    steps: list = []
    i = 0
    idx = 0
    while i < len(layers):
        layer = layers[i]
        nxt = layers[i + 1] if i + 1 < len(layers) else None
        rule = rule_for(layer)
        if rule is None:
            kind = type(layer).__name__
            raise UnsupportedLayer(
                f"cannot lower layer {i} ({kind}): no LoweringRule is "
                f"registered for {kind!r} — register one with "
                f"repro.core.lowering.register_rule",
                index=i,
                layer_type=kind,
            )
        name = f"{prefix}{type(layer).__name__.lower()}{idx}"
        emitted, consumed = rule(ctx, layer, nxt, name)
        steps.extend(emitted)
        i += 1 + consumed
        idx += 1
    return steps


# --------------------------------------------------------------------------
# Stock rules (registered on import of repro.core.program)
# --------------------------------------------------------------------------


def _register_stock_rules() -> None:
    """Register the built-in rules.

    Called once by ``repro.core.program`` at the end of its own import —
    the step classes live there, and importing them at module top would
    be circular. Idempotent (re-registration overwrites in place).
    """
    from repro.core import program as program_mod

    LinearStep = program_mod.LinearStep
    PoolStep = program_mod.PoolStep
    RemapStep = program_mod.RemapStep
    ReshapeStep = program_mod.ReshapeStep
    ResidualStep = program_mod.ResidualStep
    AthenaProgram = program_mod.AthenaProgram
    lut_spec = program_mod.lut_spec
    monotone = program_mod.MONOTONE_ACTIVATIONS

    @register_rule(QConv)
    def _lower_conv(ctx, layer, nxt, name):
        mac_values = int(math.prod(layer.out_shape))
        out_values = mac_values
        fused = None
        consumed = 0
        if isinstance(nxt, QMaxPool) and layer.activation in monotone:
            fused = nxt
            out_values = mac_values // nxt.stride**2
            consumed = 1
        step = LinearStep(
            op="conv", layer=layer, lut=lut_spec(layer), name=name,
            stat="conv", mac_values=mac_values, out_values=out_values,
            fused_pool=fused, encoding=DEFAULT_ENCODING,
        )
        return [step], consumed

    @register_rule(QLinear)
    def _lower_fc(ctx, layer, nxt, name):
        step = LinearStep(
            op="fc", layer=layer, lut=lut_spec(layer), name=name,
            stat="fc", mac_values=layer.out_features,
            out_values=layer.out_features, encoding=DEFAULT_ENCODING,
        )
        return [step], 0

    @register_rule(QMaxPool)
    def _lower_maxpool(ctx, layer, nxt, name):
        return [PoolStep(op="max", layer=layer, name=name)], 0

    @register_rule(QAvgPool)
    def _lower_avgpool(ctx, layer, nxt, name):
        return [
            PoolStep(op="sum", layer=layer, name=name, stat="avgpool"),
            RemapStep(lut=lut_spec(layer), name=name, stat="avgpool",
                      encoding=DEFAULT_ENCODING),
        ], 0

    @register_rule(QGlobalAvgPool)
    def _lower_gap(ctx, layer, nxt, name):
        return [
            PoolStep(op="gap", layer=layer, name=name, stat="gap"),
            RemapStep(lut=lut_spec(layer), name=name, stat="gap",
                      encoding=DEFAULT_ENCODING),
        ], 0

    @register_rule(QFlatten)
    def _lower_flatten(ctx, layer, nxt, name):
        return [ReshapeStep(name=name)], 0

    @register_rule(QResidual)
    def _lower_residual(ctx, layer, nxt, name):
        body = AthenaProgram(
            ctx.lower_block(layer.body, ctx.cfg, ctx.params,
                            prefix=f"{name}.body."),
            ctx.cfg, ctx.params, name=f"{name}.body",
        )
        shortcut = None
        if layer.shortcut:
            shortcut = AthenaProgram(
                ctx.lower_block(layer.shortcut, ctx.cfg, ctx.params,
                                prefix=f"{name}.skip."),
                ctx.cfg, ctx.params, name=f"{name}.skip",
            )
        step = ResidualStep(layer=layer, body=body, shortcut=shortcut,
                            lut=lut_spec(layer), name=name,
                            encoding=DEFAULT_ENCODING)
        return [step], 0
