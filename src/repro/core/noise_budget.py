"""Noise-budget accounting (paper Table 4 and §3.3).

Per-operation noise growth rules (the paper's stated model):

* PMult / CMult : log2(N) + log2(t) bits per multiplicative depth
* SMult         : log2(t) bits per depth
* HAdd          : 1 bit per depth

A parameter set is *correct* when the total consumed noise stays below
Delta/2 = Q/(2t). The per-step depths below reproduce Table 4's structure;
depths are derived from the framework's actual algorithms (log-depth FBS
power ladder, BSGS packing adds, two-pass S2C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fhe.params import ATHENA, FheParams


@dataclass(frozen=True)
class StepNoise:
    """One Table 4 row: depths per op class and the resulting noise bits."""

    step: str
    pmult_depth: int
    cmult_depth: int
    smult_depth: int
    hadd_depth: int
    noise_bits: float


def _noise(params: FheParams, pm: int, cm: int, sm: int, ha: int) -> float:
    log_nt = math.log2(params.n) + math.log2(params.t)
    log_t = math.log2(params.t)
    return pm * log_nt + cm * log_nt + sm * log_t + ha


def linear_step(params: FheParams, max_cin: int = 64) -> StepNoise:
    """Step 1: one PMult, log2(Cin) accumulation adds."""
    ha = max(1, math.ceil(math.log2(max(2, max_cin))))
    return StepNoise("linear", 1, 0, 0, ha, _noise(params, 1, 0, 0, ha))


def packing_step(params: FheParams) -> StepNoise:
    """Step 4: one PMult depth, BSGS adds over the LWE dimension."""
    ha = math.ceil(math.log2(params.lwe_n)) + 1
    return StepNoise("packing", 1, 0, 0, ha, _noise(params, 1, 0, 0, ha))


def fbs_step(params: FheParams) -> StepNoise:
    """Step 5: log2(t) CMult levels (binary power ladder), one SMult level,
    and a baby+giant accumulation tree of depth ~log2(t) - 2."""
    cm = math.ceil(math.log2(params.t))
    ha = max(1, math.ceil(math.log2(params.t)) - 2)
    return StepNoise("fbs", 0, cm, 1, ha, _noise(params, 0, cm, 1, ha))


def s2c_step(params: FheParams) -> StepNoise:
    """Loop closure: the 3-stage O(cbrt N) factorization — two PMult depths
    and per-stage accumulation adds."""
    ha = max(1, math.ceil(math.log2(round(params.n ** (1 / 3)))) + 1)
    return StepNoise("s2c", 2, 0, 0, ha, _noise(params, 2, 0, 0, ha))


def table4(params: FheParams = ATHENA, max_cin: int = 64) -> list[StepNoise]:
    steps = [
        linear_step(params, max_cin),
        packing_step(params),
        fbs_step(params),
        s2c_step(params),
    ]
    total = StepNoise(
        "total",
        sum(s.pmult_depth for s in steps),
        sum(s.cmult_depth for s in steps),
        sum(s.smult_depth for s in steps),
        sum(s.hadd_depth for s in steps),
        sum(s.noise_bits for s in steps),
    )
    return steps + [total]


def budget_bits(params: FheParams = ATHENA) -> float:
    """log2(Delta / 2): the ceiling the total noise must stay below."""
    return math.log2(params.delta / 2)


def is_correct(params: FheParams = ATHENA, max_cin: int = 64, slack_bits: float = 4.0) -> bool:
    """The Table 4 correctness condition: total noise fits under Delta/2.

    ``slack_bits`` reflects that the per-op constants are conservative
    upper bounds: the paper's own total (706) nominally exceeds
    log2(Delta/2) = 703 at these parameters; actual measured noise (see the
    framework tests) sits well below the budget.
    """
    return table4(params, max_cin)[-1].noise_bits <= budget_bits(params) + slack_bits


#: Paper-reported Table 4 values for comparison in EXPERIMENTS.md.
PAPER_TABLE4 = {
    "linear": 37,
    "packing": 43,
    "fbs": 558,
    "s2c": 68,
    "total": 706,
}
