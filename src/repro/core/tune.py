"""Compile-time encoding autotuner: cost-model-driven per-step choices.

The lowering rules attach a *default* :class:`StepEncodingChoice` to every
LUT-bearing step (Athena-style strategy, global chunk, balanced BSGS
split). This module enumerates the candidate space per step — encoding
strategy (paper Table 2: ``athena`` vs ``cheetah``), refresh-tile chunk,
FBS baby-step count — scores each candidate with the same analytical
primitives the trace model uses (:mod:`repro.core.trace`), and bakes the
winners into a :class:`~repro.core.lowering.TuningConfig` that
:func:`repro.core.plan.compile_program` resolves into concrete artifacts.

Guarantees the bench gate relies on:

* the default choice is always a candidate and wins ties (candidates are
  scored in a fixed order with a strict-improvement comparison), so the
  tuned plan's predicted cost is **never worse than the default plan's**;
* tuning is a pure function of the lowered program and the parameter set —
  two calls on the same model + params produce byte-identical configs
  (the determinism property test pins this);
* only *non-default* winners enter the config, so a model where nothing
  improves tunes to an empty config — and keeps the untuned
  ``program_fingerprint``, sharing its cached plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.encoding import athena_plan, cheetah_plan
from repro.core.lowering import DEFAULT_ENCODING, StepEncodingChoice, TuningConfig
from repro.core.program import AthenaProgram, lower
from repro.core.trace import (
    OpCounts,
    _cmult,
    _conv_shape,
    _hadd,
    _pmult,
    _smult,
    effective_t,
    packing_ops,
    s2c_ops,
    se_chain_ops,
)
from repro.fhe.params import ATHENA, FheParams
from repro.quant.quantize import QuantizedModel

__all__ = [
    "CandidateScore",
    "StepTuning",
    "TuningResult",
    "score_choice",
    "step_candidates",
    "tune_model",
    "tune_program",
]


@dataclass(frozen=True)
class CandidateScore:
    """One candidate's predicted per-request cost."""

    choice: StepEncodingChoice
    ops: OpCounts

    @property
    def cost(self) -> float:
        """Scalar objective: predicted modular multiplications (the
        element-level unit both the trace model and the bench artifacts
        report, and the dominant accelerator datapath load)."""
        return self.ops.mod_mul


@dataclass(frozen=True)
class StepTuning:
    """One step's tuning outcome (kept for every tunable step, even when
    the default wins, so benchmark tables can show the full picture)."""

    name: str
    kind: str
    default: CandidateScore
    chosen: CandidateScore
    candidates: int

    @property
    def improved(self) -> bool:
        return self.chosen.choice != self.default.choice

    @property
    def saving(self) -> float:
        return self.default.cost - self.chosen.cost


@dataclass(frozen=True)
class TuningResult:
    """The autotuner's full output for one program under one parameter set."""

    model: str
    params: FheParams
    steps: tuple[StepTuning, ...]

    @property
    def tuning(self) -> TuningConfig:
        """Only the strict improvements — an all-default tune is empty (and
        falsy), keeping the untuned fingerprint and its cached plan."""
        return TuningConfig(tuple(
            (s.name, s.chosen.choice) for s in self.steps if s.improved
        ))

    @property
    def default_cost(self) -> float:
        return sum(s.default.cost for s in self.steps)

    @property
    def tuned_cost(self) -> float:
        return sum(s.chosen.cost for s in self.steps)

    def report(self) -> dict:
        """JSON-ready summary (the shape ``BENCH_tune.json`` embeds)."""
        return {
            "model": self.model,
            "predicted_default_mod_muls": self.default_cost,
            "predicted_tuned_mod_muls": self.tuned_cost,
            "predicted_saving_mod_muls": self.default_cost - self.tuned_cost,
            "steps": [
                {
                    "name": s.name,
                    "kind": s.kind,
                    "default": s.default.choice.tag(),
                    "chosen": s.chosen.choice.tag(),
                    "default_mod_muls": s.default.cost,
                    "chosen_mod_muls": s.chosen.cost,
                    "candidates": s.candidates,
                    "improved": s.improved,
                }
                for s in self.steps
            ],
        }


# --------------------------------------------------------------------------
# Cost model (assembled from the trace model's primitives)
# --------------------------------------------------------------------------


def _fbs_with_bs(params: FheParams, t_layer: int, bs: int | None) -> OpCounts:
    """One FBS evaluation with an explicit BSGS split (trace conventions:
    the baby half streams O(t) SMult + HAdd, the giant half runs bs + gs
    CMults — the knob trades giant-ladder CMults against group count)."""
    if bs is None:
        bs = max(2, math.ceil(math.sqrt(t_layer)))
    gs = -(-t_layer // bs)
    out = OpCounts()
    out += _smult(params).scaled(t_layer)
    out += _hadd(params).scaled(t_layer)
    out += _cmult(params).scaled(bs + gs)
    return out


def _refresh_round(params: FheParams, values: int, t_layer: int,
                   tiles: int, bs: int | None) -> OpCounts:
    """Steps 2-5 + S2C for one LUT round split into ``tiles`` ciphertexts.

    The extraction chain is per-value (tile-count invariant); packing, FBS,
    and S2C are per-ciphertext, so chunking multiplies them — the chunk
    knob trades ciphertext-level parallelism (and LWE working-set size)
    against total work. Tile merging adds one HAdd per extra tile.
    """
    out = OpCounts()
    out += se_chain_ops(params, values)
    out += packing_ops(params).scaled(tiles)
    out += _fbs_with_bs(params, t_layer, bs).scaled(tiles)
    out += s2c_ops(params).scaled(tiles)
    if tiles > 1:
        out += _hadd(params).scaled(tiles - 1)
    return out


def _tile_count(values: int, choice: StepEncodingChoice,
                chunk: int | None, n: int) -> int:
    eff = choice.chunk if choice.chunk is not None else chunk
    if eff is not None and values > eff:
        return -(-values // eff)
    return max(1, -(-values // n))


def score_choice(
    step,
    choice: StepEncodingChoice,
    params: FheParams,
    chunk: int | None = None,
    t_eff: int | None = None,
) -> OpCounts:
    """Predicted per-request cost of one step under one encoding choice.

    Uses the same primitive building blocks as :class:`TraceExecutor`, so
    a program scored entirely at default choices reproduces the trace
    model's ``mod_mul`` total for that step (the one extra term here — a
    tile-merge HAdd per extra chunk — only contributes ``mod_add``).
    """
    ops = OpCounts()
    if step.kind == "linear":
        layer = step.layer
        t_layer = effective_t(layer, params, t_eff)
        if step.op == "conv":
            shape = _conv_shape(layer)
            plan = (
                cheetah_plan(shape, params.n)
                if choice.strategy == "cheetah"
                else athena_plan(shape, params.n)
            )
            ops += _pmult(params).scaled(plan.pmult)
            if plan.hadd:
                ops += _hadd(params).scaled(plan.hadd)
            result_cts = plan.result_cts
        else:
            in_cts = max(1, -(-layer.in_features // params.n))
            ops += _pmult(params).scaled(in_cts)
            result_cts = 1
        if step.fused_pool is not None:
            rounds = step.fused_pool.kernel**2 - 1
            cts = max(1, -(-step.out_values // params.n))
            for _ in range(rounds):
                ops += se_chain_ops(
                    params, min(step.mac_values, cts * params.n))
                ops += packing_ops(params).scaled(cts)
                ops += _fbs_with_bs(params, t_layer, choice.bsgs).scaled(cts)
                ops += s2c_ops(params).scaled(cts)
        tiles = max(
            result_cts,
            _tile_count(step.out_values, choice, chunk, params.n),
        )
        ops += _refresh_round(
            params, step.out_values, t_layer, tiles, choice.bsgs)
    elif step.kind == "remap":
        t_layer = effective_t(step.source, params, t_eff)
        ops += _fbs_with_bs(params, t_layer, choice.bsgs)
    elif step.kind == "residual":
        # The join refresh is one placed bootstrap over the block's output
        # positions — never tiled (trace convention: one ciphertext).
        t_layer = effective_t(step.layer, params, t_eff)
        ops += _hadd(params)
        ops += _refresh_round(params, params.n, t_layer, 1, choice.bsgs)
    return ops


def strategy_costs(shape, params: FheParams, t_layer: int | None = None) -> dict:
    """Predicted per-strategy mod_mul cost for one raw conv shape.

    The strategy half of the tuner's candidate space, exposed standalone so
    the Table 2 benchmark can report the pick the tuner would make for each
    paper layer shape: the linear phase (Eq. 1 PMults) plus the refresh
    rounds the strategy's result-ciphertext count forces. Returns
    ``{"athena": cost, "cheetah": cost, "pick": name}`` (ties go to
    ``athena``, matching the tuner's default-first rule).
    """
    t_layer = t_layer or params.t
    costs = {}
    for name, planner in (("athena", athena_plan), ("cheetah", cheetah_plan)):
        plan = planner(shape, params.n)
        ops = _pmult(params).scaled(plan.pmult)
        if plan.hadd:
            ops += _hadd(params).scaled(plan.hadd)
        values = shape.cout * shape.out_hw**2
        ops += _refresh_round(
            params, values,
            t_layer,
            max(plan.result_cts, -(-values // params.n)),
            None,
        )
        costs[name] = ops.mod_mul
    costs["pick"] = (
        "cheetah" if costs["cheetah"] < costs["athena"] else "athena"
    )
    return costs


# --------------------------------------------------------------------------
# Candidate enumeration + search
# --------------------------------------------------------------------------


def step_candidates(
    step,
    params: FheParams,
    chunk: int | None = None,
) -> list[StepEncodingChoice]:
    """Candidate encoding choices for one step, default first.

    The space is deliberately small and structured: both Table 2
    strategies (conv steps only — FC and join rounds have no channel
    layout to choose), the un-chunked single-tile layout when a global
    chunk would split the round, and the balanced BSGS split for the
    step's *effective* table size (mac-peak-calibrated models interpolate
    a lower-degree polynomial, where a narrower split beats the full-t
    default).
    """
    default = getattr(step, "encoding", None) or DEFAULT_ENCODING
    candidates = [default]

    def add(**kw) -> None:
        cand_kw = {
            "strategy": default.strategy,
            "chunk": default.chunk,
            "bsgs": default.bsgs,
        }
        cand_kw.update(kw)
        cand = StepEncodingChoice(**cand_kw)
        if cand not in candidates:
            candidates.append(cand)

    if step.kind == "linear" and step.op == "conv":
        for strategy in ("athena", "cheetah"):
            add(strategy=strategy)
    if step.kind == "linear":
        # Chunking applies to linear refresh rounds only (remap/residual
        # rounds are single placed bootstraps at runtime).
        values = getattr(step, "out_values", params.n)
        if chunk is not None and values > chunk:
            # Opt this round out of the global chunk cap (single tile).
            add(chunk=int(values))
    layer = getattr(step, "layer", None) or getattr(step, "source", None)
    if layer is not None:
        t_layer = effective_t(layer, params)
        if t_layer < params.t:
            add(bsgs=max(2, math.ceil(math.sqrt(t_layer))))
    return candidates


def _tunable_steps(steps: list) -> list:
    """All LUT-bearing steps, nested residual branches included (their
    prefixed names are unique program-wide, so one flat config addresses
    every level)."""
    out = []
    for step in steps:
        if step.kind in ("linear", "remap"):
            out.append(step)
        elif step.kind == "residual":
            out.extend(_tunable_steps(step.body.steps))
            if step.shortcut is not None:
                out.extend(_tunable_steps(step.shortcut.steps))
            out.append(step)
    return out


def tune_program(
    program: AthenaProgram,
    params: FheParams | None = None,
    chunk: int | None = None,
    t_eff: int | None = None,
) -> TuningResult:
    """Pick the cheapest candidate per step (deterministic, default-first).

    Candidates are scored in enumeration order and replaced only on
    *strict* improvement, so the default choice wins every tie and the
    tuned total can never exceed the default total.
    """
    if params is None:
        params = program.params
    tuned = []
    for step in _tunable_steps(program.steps):
        candidates = step_candidates(step, params, chunk)
        scored = [
            CandidateScore(c, score_choice(step, c, params, chunk, t_eff))
            for c in candidates
        ]
        best = scored[0]
        for cand in scored[1:]:
            if cand.cost < best.cost:
                best = cand
        tuned.append(StepTuning(
            name=step.name,
            kind=step.kind,
            default=scored[0],
            chosen=best,
            candidates=len(scored),
        ))
    return TuningResult(model=program.name, params=params, steps=tuple(tuned))


def tune_model(
    qmodel: QuantizedModel,
    params: FheParams = ATHENA,
    chunk: int | None = None,
    t_eff: int | None = None,
) -> TuningResult:
    """Lower ``qmodel`` and autotune the resulting program."""
    return tune_program(lower(qmodel, params), params, chunk, t_eff)
