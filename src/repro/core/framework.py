"""The Athena five-step loop on real ciphertexts (paper Fig. 2).

:class:`AthenaPipeline` wires the whole substrate together:

  Step 1  linear layer     — coefficient-encoded PMult (repro.core.encoding)
  Step 2  modulus switch   — Q -> q' noise refresh (repro.fhe.lwe)
  Step 3  sample extract   — RLWE -> LWE at the valid output coefficients,
                             then LWE dimension switch N -> n and the final
                             switch down to t
  Step 4  packing          — LWE -> RLWE slots via homomorphic decryption
  Step 5  FBS              — LUT polynomial evaluated on all slots at once
  (loop)  S2C              — slots back to coefficients for the next layer

This runs at *reduced* parameters (pure-Python crypto); the test suite uses
it to validate that the fast simulated engine's noise injection matches
real-ciphertext behaviour. Parameter sets must satisfy 2N | t-1 and carry
enough modulus for one full FBS depth (see ``TEST_LOOP`` in params).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.fhe import lwe as lwelib
from repro.fhe.bfv import BfvCiphertext, BfvContext, Plaintext
from repro.fhe.fbs import FbsCost, FbsLut, fbs_evaluate
from repro.fhe.packing import PackingKey, pack_lwe
from repro.fhe.params import FheParams
from repro.fhe.s2c import S2CKey, slot_to_coeff
from repro.utils.sampling import Sampler


@dataclass
class LoopCost:
    """Operation counts of one full Athena loop (drives the trace model)."""

    pmult: int = 0
    hadd: int = 0
    extractions: int = 0
    fbs: FbsCost = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.fbs is None:
            self.fbs = FbsCost()


class AthenaPipeline:
    """All keys + the five-step loop for one parameter set."""

    def __init__(self, params: FheParams, seed: int = 0, ks_base_bits: int = 7):
        self.params = params
        self.ctx = BfvContext(params, seed=seed)
        self.sk, self.pk = self.ctx.keygen()
        self.rlk = self.ctx.relin_key(self.sk)
        sampler = Sampler(seed + 1, sigma=params.sigma)
        self.lwe_secret = sampler.ternary(params.lwe_n)
        self.lwe_ksk = lwelib.keyswitch_keygen(
            self.sk.coeffs, self.lwe_secret, params.lwe_q, ks_base_bits, sampler
        )
        self.packing_key = PackingKey.generate(self.ctx, self.lwe_secret, self.sk, self.pk)
        self.s2c_key = S2CKey.generate(self.ctx, self.sk)

    # -- I/O -----------------------------------------------------------------

    def encrypt_coeffs(self, values: np.ndarray) -> BfvCiphertext:
        return self.ctx.encrypt(Plaintext.from_coeffs(values, self.params), self.pk)

    def decrypt_coeffs(self, ct: BfvCiphertext) -> np.ndarray:
        return self.ctx.decrypt(ct, self.sk).coeffs

    def decrypt_slots(self, ct: BfvCiphertext) -> np.ndarray:
        return self.ctx.decrypt(ct, self.sk).to_slots()

    # -- Step 1: linear layer ---------------------------------------------------

    def linear(
        self, ct: BfvCiphertext, kernel_coeffs: np.ndarray, cost: LoopCost | None = None
    ) -> BfvCiphertext:
        """Coefficient-encoded convolution/FC: one plaintext multiplication."""
        out = self.ctx.pmult(ct, Plaintext.from_coeffs(kernel_coeffs, self.params))
        if cost:
            cost.pmult += 1
        return out

    def accumulate(self, cts: list[BfvCiphertext], cost: LoopCost | None = None) -> BfvCiphertext:
        acc = cts[0]
        for ct in cts[1:]:
            acc = self.ctx.add(acc, ct)
            if cost:
                cost.hadd += 1
        return acc

    # -- Steps 2-3: noise control + conversion -------------------------------------

    def refresh_to_lwe(
        self,
        ct: BfvCiphertext,
        positions: np.ndarray | None = None,
        cost: LoopCost | None = None,
    ) -> lwelib.LweBatch:
        """Modulus switch, extract the valid coefficients, switch dimension
        and modulus down to t. Resulting messages sit at Delta = 1."""
        small = lwelib.rlwe_mod_switch(ct, self.params.lwe_q)
        batch = lwelib.sample_extract(small, positions)
        if cost:
            cost.extractions += batch.count
        switched = lwelib.keyswitch(batch, self.lwe_ksk)
        return lwelib.lwe_mod_switch(switched, self.params.t)

    # -- Steps 4-5: packing + FBS ---------------------------------------------------

    def bootstrap(
        self, batch: lwelib.LweBatch, lut: FbsLut, cost: LoopCost | None = None
    ) -> BfvCiphertext:
        """Pack LWE ciphertexts into slots and evaluate the LUT polynomial."""
        packed = pack_lwe(self.ctx, batch, self.packing_key)
        return fbs_evaluate(self.ctx, packed, lut, self.rlk, cost.fbs if cost else None)

    # -- loop closure -------------------------------------------------------------

    def to_coeffs(self, ct: BfvCiphertext) -> BfvCiphertext:
        """S2C: prepare the FBS output for the next coefficient-encoded layer."""
        return slot_to_coeff(self.ctx, ct, self.s2c_key)

    def loop(
        self,
        ct: BfvCiphertext,
        kernel_coeffs: np.ndarray,
        lut: FbsLut,
        positions: np.ndarray,
        cost: LoopCost | None = None,
        s2c: bool = True,
    ) -> BfvCiphertext:
        """One complete five-step round: Conv -> refresh -> FBS [-> S2C]."""
        if positions.shape[0] > self.params.n:
            raise ParameterError("more outputs than slots")
        out = self.linear(ct, kernel_coeffs, cost)
        batch = self.refresh_to_lwe(out, positions, cost)
        boot = self.bootstrap(batch, lut, cost)
        return self.to_coeffs(boot) if s2c else boot
