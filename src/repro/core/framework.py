"""The Athena five-step loop on real ciphertexts (paper Fig. 2).

:class:`AthenaPipeline` wires the whole substrate together:

  Step 1  linear layer     — coefficient-encoded PMult (repro.core.encoding)
  Step 2  modulus switch   — Q -> q' noise refresh (repro.fhe.lwe)
  Step 3  sample extract   — RLWE -> LWE at the valid output coefficients,
                             then LWE dimension switch N -> n and the final
                             switch down to t
  Step 4  packing          — LWE -> RLWE slots via homomorphic decryption
  Step 5  FBS              — LUT polynomial evaluated on all slots at once
  (loop)  S2C              — slots back to coefficients for the next layer

This runs at *reduced* parameters (pure-Python crypto); the test suite uses
it to validate that the fast simulated engine's noise injection matches
real-ciphertext behaviour. Parameter sets must satisfy 2N | t-1 and carry
enough modulus for one full FBS depth (see ``TEST_LOOP`` in params).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.core.encoding import encode_features
from repro.core.plan import (
    CompiledLinear,
    CompiledPool,
    CompiledProgram,
    CompiledRemap,
    CompiledResidual,
    MaxRound,
    TilePlan,
    compile_program,
)
from repro.fhe.slots import pack_lane_coeffs
from repro.core.program import (
    AthenaProgram,
    LinearStep,
    PoolStep,
    ProgramExecutor,
    RemapStep,
    ResidualStep,
)
from repro.core.program import run_program as _run_steps
from repro.errors import ParameterError
from repro.fhe import lwe as lwelib
from repro.fhe.backend import Backend, current_backend, get_backend, use_backend
from repro.fhe.bfv import BfvCiphertext, BfvContext, Plaintext
from repro.fhe.fbs import FbsCost, FbsLut, FbsPlan, fbs_evaluate
from repro.fhe.packing import PackingKey, pack_lwe
from repro.fhe.params import FheParams
from repro.fhe.s2c import S2CKey, S2CPlan, slot_to_coeff
from repro.perf import ParallelMap, PerfRecorder
from repro.utils.sampling import Sampler


@dataclass
class LoopCost:
    """Operation counts of one full Athena loop (drives the trace model)."""

    pmult: int = 0
    hadd: int = 0
    extractions: int = 0
    fbs: FbsCost = field(default_factory=FbsCost)

    def merge(self, other: "LoopCost") -> None:
        """Fold another loop's counts in (chunked tiles count privately,
        then merge, so parallel tiles never race on shared counters)."""
        self.pmult += other.pmult
        self.hadd += other.hadd
        self.extractions += other.extractions
        self.fbs.smult += other.fbs.smult
        self.fbs.hadd += other.fbs.hadd
        self.fbs.cmult += other.fbs.cmult


class AthenaPipeline:
    """All keys + the five-step loop for one parameter set.

    A :class:`~repro.perf.PerfRecorder` may be attached (constructor or
    :meth:`attach_perf`); the five-step phases are then timed under the
    canonical names ``pmult`` / ``mod_switch`` / ``extract`` / ``pack`` /
    ``fbs`` / ``s2c``, which are pairwise disjoint code regions, so their
    recorded durations sum to at most the run wall time.

    A :class:`repro.fhe.backend.Backend` (or backend name) may be bound at
    construction; every pipeline entry point then installs it as the
    context-active backend for the duration of the call — including tile
    rounds fanned out to worker threads, which re-install it themselves —
    so op counting and batched/serial selection follow the pipeline rather
    than whatever the ambient context happens to be. Without one, the
    ambient :func:`current_backend` (contextvar, then ``REPRO_BACKEND``,
    then batched) applies. Op *counts* are no longer tallied here: wrap the
    pipeline's backend in a :class:`repro.fhe.backend.CountingBackend` to
    observe every primitive actually dispatched.
    """

    def __init__(
        self,
        params: FheParams,
        seed: int = 0,
        ks_base_bits: int = 7,
        perf: PerfRecorder | None = None,
        backend: Backend | str | None = None,
    ):
        self.params = params
        self.perf = perf
        self.backend = get_backend(backend) if backend is not None else None
        with self._dispatch(), current_backend().phase("keygen"):
            self.ctx = BfvContext(params, seed=seed)
            self.sk, self.pk = self.ctx.keygen()
            self.rlk = self.ctx.relin_key(self.sk)
            sampler = Sampler(seed + 1, sigma=params.sigma)
            self.lwe_secret = sampler.ternary(params.lwe_n)
            self.lwe_ksk = lwelib.keyswitch_keygen(
                self.sk.coeffs, self.lwe_secret, params.lwe_q, ks_base_bits, sampler
            )
            self.packing_key = PackingKey.generate(
                self.ctx, self.lwe_secret, self.sk, self.pk
            )
            self.s2c_key = S2CKey.generate(self.ctx, self.sk)
            # Warm the NTT-domain stacks of every keyswitch key once at
            # keygen: the fused kernels multiply against these on every
            # rotation/CMult, so no request ever pays the key transforms.
            self.rlk.warm()
            for gk in self.packing_key.rotation_keys.values():
                gk.warm()
            for gk in self.s2c_key.rotation_keys.values():
                gk.warm()

    # -- instrumentation -----------------------------------------------------

    def attach_perf(self, perf: PerfRecorder | None) -> None:
        """Attach (or detach with ``None``) a phase-time recorder."""
        self.perf = perf

    def _phase(self, name: str):
        return self.perf.phase(name) if self.perf is not None else nullcontext()

    def _dispatch(self):
        """Install the pipeline's backend as the context-active one."""
        return use_backend(self.backend) if self.backend is not None else nullcontext()

    # -- I/O -----------------------------------------------------------------

    def encrypt_coeffs(self, values: np.ndarray) -> BfvCiphertext:
        return self.ctx.encrypt(Plaintext.from_coeffs(values, self.params), self.pk)

    def decrypt_coeffs(self, ct: BfvCiphertext) -> np.ndarray:
        return self.ctx.decrypt(ct, self.sk).coeffs

    def decrypt_slots(self, ct: BfvCiphertext) -> np.ndarray:
        return self.ctx.decrypt(ct, self.sk).to_slots()

    # -- Step 1: linear layer ---------------------------------------------------

    def linear(
        self,
        ct: BfvCiphertext,
        kernel: np.ndarray | Plaintext,
        cost: LoopCost | None = None,
    ) -> BfvCiphertext:
        """Coefficient-encoded convolution/FC: one plaintext multiplication.

        ``kernel`` may be a raw coefficient array or a pre-encoded
        :class:`Plaintext` (a compile-time artifact whose NTT operand form
        is already cached — see :mod:`repro.core.plan`).
        """
        with self._dispatch(), current_backend().phase("linear"), self._phase("pmult"):
            if not isinstance(kernel, Plaintext):
                kernel = Plaintext.from_coeffs(kernel, self.params)
            out = self.ctx.pmult(ct, kernel)
        if cost:
            cost.pmult += 1
        return out

    def accumulate(self, cts: list[BfvCiphertext], cost: LoopCost | None = None) -> BfvCiphertext:
        with self._dispatch(), current_backend().phase("linear"):
            acc = cts[0]
            for ct in cts[1:]:
                acc = self.ctx.add(acc, ct)
                if cost:
                    cost.hadd += 1
        return acc

    # -- Steps 2-3: noise control + conversion -------------------------------------

    def refresh_to_lwe(
        self,
        ct: BfvCiphertext,
        positions: np.ndarray | None = None,
        cost: LoopCost | None = None,
    ) -> lwelib.LweBatch:
        """Modulus switch, extract the valid coefficients, switch dimension
        and modulus down to t. Resulting messages sit at Delta = 1."""
        with self._dispatch():
            with self._phase("mod_switch"):
                small = lwelib.rlwe_mod_switch(ct, self.params.lwe_q)
            with self._phase("extract"):
                batch = lwelib.sample_extract(small, positions)
                switched = lwelib.keyswitch(batch, self.lwe_ksk)
                out = lwelib.lwe_mod_switch(switched, self.params.t)
        if cost:
            cost.extractions += batch.count
        return out

    # -- Steps 4-5: packing + FBS ---------------------------------------------------

    def bootstrap(
        self,
        batch: lwelib.LweBatch,
        lut: FbsLut,
        cost: LoopCost | None = None,
        plan: FbsPlan | None = None,
    ) -> BfvCiphertext:
        """Pack LWE ciphertexts into slots and evaluate the LUT polynomial.

        ``plan`` supplies a precomputed BSGS schedule; the op sequence (and
        result) is identical with or without it."""
        with self._dispatch():
            with self._phase("pack"):
                packed = pack_lwe(self.ctx, batch, self.packing_key)
            with self._phase("fbs"):
                out = fbs_evaluate(
                    self.ctx, packed, lut, self.rlk, cost.fbs if cost else None,
                    plan=plan,
                )
        return out

    # -- loop closure -------------------------------------------------------------

    def to_coeffs(
        self, ct: BfvCiphertext, plan: S2CPlan | None = None
    ) -> BfvCiphertext:
        """S2C: prepare the FBS output for the next coefficient-encoded layer."""
        with self._dispatch(), self._phase("s2c"):
            out = slot_to_coeff(self.ctx, ct, self.s2c_key, plan=plan)
        return out

    def loop(
        self,
        ct: BfvCiphertext,
        kernel_coeffs: np.ndarray,
        lut: FbsLut,
        positions: np.ndarray,
        cost: LoopCost | None = None,
        s2c: bool = True,
    ) -> BfvCiphertext:
        """One complete five-step round: Conv -> refresh -> FBS [-> S2C]."""
        if positions.shape[0] > self.params.n:
            raise ParameterError("more outputs than slots")
        out = self.linear(ct, kernel_coeffs, cost)
        batch = self.refresh_to_lwe(out, positions, cost)
        boot = self.bootstrap(batch, lut, cost)
        return self.to_coeffs(boot) if s2c else boot

    # -- lowered-program driver ------------------------------------------------

    def run_program(
        self,
        program: AthenaProgram,
        x_q: np.ndarray,
        cost: LoopCost | None = None,
        chunk: int | None = None,
        pmap: ParallelMap | None = None,
        plan: CompiledProgram | None = None,
    ) -> np.ndarray:
        """Execute a lowered :class:`AthenaProgram` end to end on encrypted
        data: encode + encrypt the quantized input client-side, run one
        five-step round per LUT-bearing step, decrypt the tail.

        The tail step's ``s2c=False`` flag (program fusion rule 4) is
        honoured here: the final FBS output is decoded from slots directly.
        ``chunk`` caps the LWE outputs per refresh round; rounds of one
        layer then become independent ciphertext tiles executed through
        ``pmap`` (see :meth:`CiphertextExecutor.linear`).

        With ``plan`` (a :class:`repro.core.plan.CompiledProgram`) the run
        reuses compile-time artifacts and performs ciphertext ops only —
        the warm-session path of :class:`repro.serve.InferenceSession`.
        Without one, the program is compiled here, *inside* the timed span,
        under the ``compile`` perf phase — so a cold run's wall time
        honestly includes the compile work a warm run skips. Either way the
        homomorphic op sequence is identical, so outputs are bit-for-bit
        equal. Returns the centered integer outputs — comparable, up to FHE
        noise, with ``QuantizedModel.forward_int`` on the same program.
        """
        span = self.perf.run() if self.perf is not None else nullcontext()
        with self._dispatch():
            with span:
                ex = CiphertextExecutor(
                    self, program, cost, chunk=chunk, pmap=pmap, plan=plan
                )
                ct = _run_steps(program, ex, np.asarray(x_q, dtype=np.int64))
            raw = self.decrypt_coeffs(ct) if ex.tail_s2c else self.decrypt_slots(ct)
        vals = raw[: ex.out_count]
        t = self.params.t
        return np.where(vals > t // 2, vals - t, vals)

    def run_batch(
        self,
        program: AthenaProgram,
        xs: list[np.ndarray],
        cost: LoopCost | None = None,
        pmap: ParallelMap | None = None,
        plan: CompiledProgram | None = None,
    ) -> list[np.ndarray]:
        """Run ``len(xs)`` independent inputs through *one* fused execution.

        The inputs are packed into a single ciphertext at the plan's lane
        stride (see :class:`repro.core.plan.LaneLayout`), so the whole batch
        pays for one PMult, one refresh chain, one pack + FBS, and one S2C
        per layer — the amortization Eq. 1's spare coefficient space buys.
        Lane count is bounded by ``plan.batch_capacity``. With one input
        this degenerates to exactly the :meth:`run_program` op sequence.
        Returns the centered integer outputs, one array per input, in order.
        """
        xs = [np.asarray(x, dtype=np.int64) for x in xs]
        if not xs:
            return []
        span = self.perf.run() if self.perf is not None else nullcontext()
        with self._dispatch():
            with span:
                ex = CiphertextExecutor(
                    self, program, cost, pmap=pmap, plan=plan, lanes=len(xs)
                )
                value = xs[0] if len(xs) == 1 else np.stack(xs)
                ct = _run_steps(program, ex, value)
            raw = self.decrypt_coeffs(ct) if ex.tail_s2c else self.decrypt_slots(ct)
        t = self.params.t
        outs = []
        for d in range(len(xs)):
            vals = raw[d * ex.lane_stride : d * ex.lane_stride + ex.out_count]
            outs.append(np.where(vals > t // 2, vals - t, vals))
        return outs


class CiphertextExecutor(ProgramExecutor):
    """Thin interpreter: replays compile-time plans with ciphertext ops.

    The flowing value is a BFV ciphertext. All request-invariant work —
    kernel/bias encoding, LUT interpolation and BSGS scheduling, S2C
    diagonals, tile layouts — lives in the :class:`CompiledProgram`
    (compiled at construction under the ``compile`` perf phase when not
    supplied), so each :meth:`linear` call performs only encrypt (first
    step), PMult, refresh, pack, FBS, and S2C on the request's data. Plan
    artifacts are resolved by *step index*, never by object identity, so a
    deserialized plan drives any equivalent re-lowered program.

    The *first* linear step receives the raw quantized input array and
    performs the client-side encode (including any zero-padding) + encrypt.
    Interior layers chain through the plan's feature layouts: each refresh
    round *places* its LWE samples directly onto the next consumer's
    required rows (compact Eq. 1 order for plain conv/FC chains — the
    historical, byte-identical path — or a padded interior grid whose
    exact-zero margin supplies the next convolution's zero padding).

    MAC-domain max-pool fusion replays the plan's :class:`MaxRound` tree
    (``max(a, b) = b + relu(a - b)`` per level, one exact monomial shift +
    one ReLU refresh round each); average/global pooling runs as a
    depthwise all-ones PMult followed by a division-LUT refresh; residual
    joins add the branch ciphertexts (``main + alpha * skip``) and refresh
    through the block's wide-scale LUT. Steps whose artifacts did not fit
    the parameter set are opaque in the plan and raise
    :class:`ParameterError` only when actually reached.

    With ``chunk`` set, a layer whose output count exceeds the cap is
    refreshed as several independent five-step tiles (extract -> pack ->
    FBS -> S2C on at most ``chunk`` outputs each), fanned out through
    ``pmap``; tile ciphertexts are merged back into the single-ciphertext
    layout by exact monomial shifts. Unused pack slots hold exactly 0, so
    each tile's FBS output carries LUT(0) in its dead slots; an exact
    ``add_plain(-LUT(0))`` correction (a compile-time plaintext) zeroes
    them before S2C, which is what makes the shift-merge collision-free.
    """

    def __init__(
        self,
        pipe: AthenaPipeline,
        program: AthenaProgram,
        cost: LoopCost | None = None,
        chunk: int | None = None,
        pmap: ParallelMap | None = None,
        plan: CompiledProgram | None = None,
        lanes: int = 1,
    ):
        if chunk is not None and chunk < 1:
            raise ParameterError(f"chunk cap must be >= 1, got {chunk}")
        if lanes < 1:
            raise ParameterError(f"need at least one lane, got {lanes}")
        self.pipe = pipe
        self.program = program
        self.cost = cost
        self.pmap = pmap if pmap is not None else ParallelMap()
        if plan is None:
            with pipe._dispatch(), pipe._phase("compile"):
                plan = compile_program(program, pipe.params, chunk=chunk)
        else:
            if chunk is not None and chunk != plan.chunk:
                raise ParameterError(
                    f"plan was compiled with chunk={plan.chunk}, "
                    f"requested {chunk}"
                )
            plan.bind(program, pipe.params)
            if plan.needs_upgrade():
                # Wire-form plans carry stubs for the complex steps (their
                # artifacts are cheaper to rebuild than to ship); recompile
                # once under the plan's own tuning.
                with pipe._dispatch(), pipe._phase("compile"):
                    plan = compile_program(
                        program, pipe.params, chunk=plan.chunk,
                        tuning=plan.tuning,
                    )
        if lanes > 1:
            if plan.chunk is not None:
                raise ParameterError(
                    "lane batching requires an unchunked plan (chunked tiles "
                    "already consume the spare coefficient space)"
                )
            if lanes > plan.batch_capacity:
                raise ParameterError(
                    f"{lanes} lanes exceed the plan's batch capacity "
                    f"{plan.batch_capacity}"
                )
        self.plan = plan
        self.chunk = plan.chunk
        self.lanes = lanes
        #: Satellite of the plan split: runtime steps resolve to plan
        #: artifacts positionally (``bind`` guarantees alignment), walking
        #: residual branches in parallel; nested steps of an *opaque*
        #: residual map to the opaque itself, so reaching them raises the
        #: same clean error as reaching the block.
        self._artifacts: dict[int, object] = {}
        self._index_steps(program.steps, plan.steps)
        self.out_count = 0
        #: Coefficient/slot distance between consecutive lanes' outputs.
        self.lane_stride = 0
        self.tail_s2c = True

    def _index_steps(self, steps, csteps) -> None:
        for step, cstep in zip(steps, csteps):
            self._artifacts[id(step)] = cstep
            if step.kind == "residual":
                inner = isinstance(cstep, CompiledResidual)
                body_c = (
                    cstep.body if inner else [cstep] * len(step.body.steps)
                )
                self._index_steps(step.body.steps, body_c)
                if step.shortcut is not None:
                    sc = (
                        cstep.shortcut
                        if inner and cstep.shortcut is not None
                        else [cstep] * len(step.shortcut.steps)
                    )
                    self._index_steps(step.shortcut.steps, sc)

    def _compiled(self, step, want: type):
        cstep = self._artifacts[id(step)]
        if not isinstance(cstep, want):
            raise ParameterError(
                f"step {step.name!r} has no ciphertext lowering under this "
                f"parameter set (compiled as {getattr(cstep, 'kind', '?')!r} "
                "placeholder)"
            )
        return cstep

    def linear(self, step: LinearStep, value) -> BfvCiphertext:
        pipe, params = self.pipe, self.pipe.params
        layer = step.layer
        cstep = self._compiled(step, CompiledLinear)
        n = params.n
        layout = (
            cstep.lane_layout(self.lanes, params) if self.lanes > 1 else None
        )
        if step.op == "conv":
            cin, h, w = layer.in_shape
            if isinstance(value, np.ndarray):
                imgs = value.reshape(self.lanes, cin, h, w)
                if layer.pad:
                    imgs = np.pad(
                        imgs,
                        ((0, 0), (0, 0), (layer.pad,) * 2, (layer.pad,) * 2),
                    )
                ct = pipe.encrypt_coeffs(self._encode_lanes(imgs, layout, n))
            else:
                # Interior step: the previous refresh packed the value onto
                # exactly the layout this step's kernel was encoded for
                # (compact Eq. 1 rows, or a padded grid whose exact-zero
                # margin is this convolution's zero padding).
                ct = value
        else:
            if isinstance(value, np.ndarray):
                feats = value.reshape(self.lanes, layer.in_features, 1, 1)
                ct = pipe.encrypt_coeffs(self._encode_lanes(feats, layout, n))
            else:
                ct = value
        out = pipe.linear(ct, cstep.kernel, self.cost)
        bias = layout.bias if layout is not None else cstep.bias
        if bias is not None:
            with pipe._dispatch(), current_backend().phase("linear"):
                out = pipe.ctx.add_plain(out, bias)
        if cstep.pool_rounds is not None:
            for rnd in cstep.pool_rounds:
                out = self._max_round(out, cstep, rnd)
        self.out_count = cstep.out_count
        if cstep.tiles is None:
            positions = (
                layout.positions if layout is not None else cstep.positions
            )
            batch = pipe.refresh_to_lwe(out, positions, self.cost)
            if layout is not None:
                # Spread the lanes' samples to the chained pack rows; the
                # gap rows are trivial zero encryptions (exact zeros).
                batch = batch.place(layout.pack_map, layout.pack_rows)
            elif cstep.pack_rows is not None:
                batch = batch.place(cstep.pack_rows, n)
            self.lane_stride = (
                layout.out_stride if layout is not None else cstep.out_count
            )
            boot = pipe.bootstrap(batch, cstep.lut, self.cost, plan=cstep.fbs)
            boot = self._correct(boot, cstep.pack_correction)
            self.tail_s2c = step.s2c
            return pipe.to_coeffs(boot, plan=self.plan.s2c) if step.s2c else boot
        return self._chunked_rounds(out, cstep)

    def _correct(self, boot: BfvCiphertext, correction) -> BfvCiphertext:
        """Zero a placed layout's gap slots exactly (``-LUT(0)`` plaintext)."""
        if correction is None:
            return boot
        pipe = self.pipe
        with pipe._dispatch(), current_backend().phase("fbs"):
            return pipe.ctx.add_plain(boot, correction)

    def _shift(self, ct: BfvCiphertext, offset: int) -> BfvCiphertext:
        """Exact monomial multiplication by X^offset (no key material)."""
        return BfvCiphertext(
            ct.c0.negacyclic_shift(offset),
            ct.c1.negacyclic_shift(offset),
            ct.params,
            ct.noise_bits,
        )

    def _max_round(
        self, ct: BfvCiphertext, cstep: CompiledLinear, rnd: MaxRound
    ) -> BfvCiphertext:
        """One MAC-domain max-tree level: ``max(a, b) = b + relu(a - b)``.

        ``shifted = ct * X^(n - delta)`` holds ``-x[p + delta]`` at every
        coefficient ``p`` (each kept cell satisfies ``p + delta < n``, so
        the partner always arrives through the negacyclic wrap with sign
        flipped — an exact subtraction, not an approximation). The
        differences are refreshed through the MAC-domain ReLU at the kept
        cells and *placed back onto the same rows*; relu(0) = 0 keeps the
        off-row coefficients exact zeros, so ``relu_ct - shifted`` restores
        ``max(a, b)`` at every kept cell. Off-row garbage in the result is
        never read: the next level's partners are this level's kept cells.
        """
        pipe = self.pipe
        n = pipe.params.n
        with pipe._dispatch(), current_backend().phase("pooling"):
            shifted = self._shift(ct, n - rnd.delta)
            diff = pipe.ctx.add(ct, shifted)
        if self.cost is not None:
            self.cost.hadd += 2
        batch = pipe.refresh_to_lwe(diff, rnd.positions, self.cost)
        batch = batch.place(rnd.positions, n)
        boot = pipe.bootstrap(
            batch, cstep.pool_lut, self.cost, plan=cstep.pool_fbs
        )
        relu_ct = pipe.to_coeffs(boot, plan=self.plan.s2c)
        with pipe._dispatch(), current_backend().phase("pooling"):
            return pipe.ctx.sub(relu_ct, shifted)

    def _encode_lanes(self, blocks_chw: np.ndarray, layout, n: int):
        """Client-side encode: one image, or ``lanes`` images at lane stride."""
        if layout is None:
            return encode_features(blocks_chw[0], n)
        return pack_lane_coeffs(
            [encode_features(m, n)[: layout.in_stride] for m in blocks_chw],
            layout.in_stride,
            n,
        )

    # -- chunked refresh: independent tiles + exact shift-merge --------------

    def _chunked_rounds(
        self, out: BfvCiphertext, cstep: CompiledLinear
    ) -> BfvCiphertext:
        """Refresh the round as its precomputed independent five-step tiles.

        Each tile always runs S2C (tile merging happens in coefficient
        space, where a monomial shift is exact and free of key material), so
        the merged result is in coefficient form even for the tail step.
        """
        pipe = self.pipe
        rounds = self.pmap.starmap(
            partial(self._tile_round, out, cstep),
            [(tile,) for tile in cstep.tiles],
        )
        merged: BfvCiphertext | None = None
        with pipe._dispatch(), current_backend().phase("s2c"):
            for ct_k, cost_k in rounds:
                if merged is None:
                    merged = ct_k
                else:
                    merged = pipe.ctx.add(merged, ct_k)
                    if self.cost is not None:
                        self.cost.hadd += 1
                if self.cost is not None and cost_k is not None:
                    self.cost.merge(cost_k)
        self.tail_s2c = True
        self.lane_stride = cstep.out_count
        return merged

    def _tile_round(
        self, out: BfvCiphertext, cstep: CompiledLinear, tile: TilePlan
    ) -> tuple[BfvCiphertext, LoopCost | None]:
        """One tile: refresh -> FBS -> dead-slot correction -> S2C -> shift.

        Packing zeroes the slots past this tile's count *exactly*, and FBS
        maps an exact 0 to an exact LUT(0), so subtracting LUT(0) from the
        dead slots is an exact correction: after S2C the tile's plaintext is
        zero outside coefficients [0, count). The monomial shift X^offset
        then lands the tile at [offset, offset + count) without collisions,
        and wrapped coefficients (all zero) pick up only a sign.
        """
        pipe = self.pipe
        cost = LoopCost() if self.cost is not None else None
        # Tiles may run in pool worker threads; the pipeline's backend is
        # re-installed here because thread workers start from the context
        # captured at submit time, not the caller's.
        with pipe._dispatch():
            batch = pipe.refresh_to_lwe(out, tile.positions, cost)
            boot = pipe.bootstrap(batch, cstep.lut, cost, plan=cstep.fbs)
            if tile.correction is not None:
                with current_backend().phase("fbs"):
                    boot = pipe.ctx.add_plain(boot, tile.correction)
            ct = pipe.to_coeffs(boot, plan=self.plan.s2c)
            if tile.offset:
                with current_backend().phase("s2c"):
                    ct = BfvCiphertext(
                        ct.c0.negacyclic_shift(tile.offset),
                        ct.c1.negacyclic_shift(tile.offset),
                        ct.params,
                        ct.noise_bits,
                    )
        return ct, cost

    def pool(self, step: PoolStep, value):
        """Average/global pooling: one depthwise all-ones PMult.

        The window sums accumulate in the MAC domain at the plan's
        positions; the mandatory following :meth:`remap` step refreshes
        them through the division LUT.
        """
        cstep = self._compiled(step, CompiledPool)
        if isinstance(value, np.ndarray):
            raise ParameterError(
                f"pooling step {step.name!r} cannot be the program's entry "
                "step on the real-ciphertext backend"
            )
        return self.pipe.linear(value, cstep.kernel, self.cost)

    def remap(self, step: RemapStep, value):
        """A bare LUT refresh round (the pooling division tables)."""
        cstep = self._compiled(step, CompiledRemap)
        if isinstance(value, np.ndarray):
            raise ParameterError(
                f"remap step {step.name!r} cannot be the program's entry "
                "step on the real-ciphertext backend"
            )
        pipe = self.pipe
        batch = pipe.refresh_to_lwe(value, cstep.positions, self.cost)
        if cstep.pack_rows is not None:
            batch = batch.place(cstep.pack_rows, pipe.params.n)
        boot = pipe.bootstrap(batch, cstep.lut, self.cost, plan=cstep.fbs)
        boot = self._correct(boot, cstep.pack_correction)
        self.out_count = cstep.out_count
        self.lane_stride = cstep.out_count
        self.tail_s2c = step.s2c
        return pipe.to_coeffs(boot, plan=self.plan.s2c) if step.s2c else boot

    def residual(self, step: ResidualStep, main, skip):
        """Join the branches and refresh through the wide-scale LUT.

        Both branch tails packed into the shared join layout at compile
        time, so the join itself is ``main + alpha * skip`` followed by
        one standard refresh round placed into the next consumer's layout.
        """
        cstep = self._compiled(step, CompiledResidual)
        if isinstance(main, np.ndarray) or isinstance(skip, np.ndarray):
            raise ParameterError(
                f"residual block {step.name!r} cannot be the program's "
                "entry step on the real-ciphertext backend"
            )
        pipe = self.pipe
        with pipe._dispatch(), current_backend().phase("residual"):
            if cstep.alpha != 1:
                skip = pipe.ctx.smult(skip, cstep.alpha)
            total = pipe.ctx.add(main, skip)
        if self.cost is not None:
            self.cost.hadd += 1
        batch = pipe.refresh_to_lwe(total, cstep.positions, self.cost)
        if cstep.pack_rows is not None:
            batch = batch.place(cstep.pack_rows, pipe.params.n)
        boot = pipe.bootstrap(batch, cstep.lut, self.cost, plan=cstep.fbs)
        boot = self._correct(boot, cstep.pack_correction)
        self.out_count = cstep.out_count
        self.lane_stride = cstep.out_count
        self.tail_s2c = step.s2c
        return pipe.to_coeffs(boot, plan=self.plan.s2c) if step.s2c else boot
