"""The Athena five-step loop on real ciphertexts (paper Fig. 2).

:class:`AthenaPipeline` wires the whole substrate together:

  Step 1  linear layer     — coefficient-encoded PMult (repro.core.encoding)
  Step 2  modulus switch   — Q -> q' noise refresh (repro.fhe.lwe)
  Step 3  sample extract   — RLWE -> LWE at the valid output coefficients,
                             then LWE dimension switch N -> n and the final
                             switch down to t
  Step 4  packing          — LWE -> RLWE slots via homomorphic decryption
  Step 5  FBS              — LUT polynomial evaluated on all slots at once
  (loop)  S2C              — slots back to coefficients for the next layer

This runs at *reduced* parameters (pure-Python crypto); the test suite uses
it to validate that the fast simulated engine's noise injection matches
real-ciphertext behaviour. Parameter sets must satisfy 2N | t-1 and carry
enough modulus for one full FBS depth (see ``TEST_LOOP`` in params).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.encoding import encode_features, encode_kernels
from repro.core.program import (
    AthenaProgram,
    LinearStep,
    PoolStep,
    ProgramExecutor,
    RemapStep,
    ResidualStep,
)
from repro.core.program import run_program as _run_steps
from repro.errors import ParameterError
from repro.fhe import lwe as lwelib
from repro.fhe.bfv import BfvCiphertext, BfvContext, Plaintext
from repro.fhe.fbs import FbsCost, FbsLut, fbs_evaluate
from repro.fhe.packing import PackingKey, pack_lwe
from repro.fhe.params import FheParams
from repro.fhe.s2c import S2CKey, slot_to_coeff
from repro.utils.sampling import Sampler


@dataclass
class LoopCost:
    """Operation counts of one full Athena loop (drives the trace model)."""

    pmult: int = 0
    hadd: int = 0
    extractions: int = 0
    fbs: FbsCost = field(default_factory=FbsCost)


class AthenaPipeline:
    """All keys + the five-step loop for one parameter set."""

    def __init__(self, params: FheParams, seed: int = 0, ks_base_bits: int = 7):
        self.params = params
        self.ctx = BfvContext(params, seed=seed)
        self.sk, self.pk = self.ctx.keygen()
        self.rlk = self.ctx.relin_key(self.sk)
        sampler = Sampler(seed + 1, sigma=params.sigma)
        self.lwe_secret = sampler.ternary(params.lwe_n)
        self.lwe_ksk = lwelib.keyswitch_keygen(
            self.sk.coeffs, self.lwe_secret, params.lwe_q, ks_base_bits, sampler
        )
        self.packing_key = PackingKey.generate(self.ctx, self.lwe_secret, self.sk, self.pk)
        self.s2c_key = S2CKey.generate(self.ctx, self.sk)

    # -- I/O -----------------------------------------------------------------

    def encrypt_coeffs(self, values: np.ndarray) -> BfvCiphertext:
        return self.ctx.encrypt(Plaintext.from_coeffs(values, self.params), self.pk)

    def decrypt_coeffs(self, ct: BfvCiphertext) -> np.ndarray:
        return self.ctx.decrypt(ct, self.sk).coeffs

    def decrypt_slots(self, ct: BfvCiphertext) -> np.ndarray:
        return self.ctx.decrypt(ct, self.sk).to_slots()

    # -- Step 1: linear layer ---------------------------------------------------

    def linear(
        self, ct: BfvCiphertext, kernel_coeffs: np.ndarray, cost: LoopCost | None = None
    ) -> BfvCiphertext:
        """Coefficient-encoded convolution/FC: one plaintext multiplication."""
        out = self.ctx.pmult(ct, Plaintext.from_coeffs(kernel_coeffs, self.params))
        if cost:
            cost.pmult += 1
        return out

    def accumulate(self, cts: list[BfvCiphertext], cost: LoopCost | None = None) -> BfvCiphertext:
        acc = cts[0]
        for ct in cts[1:]:
            acc = self.ctx.add(acc, ct)
            if cost:
                cost.hadd += 1
        return acc

    # -- Steps 2-3: noise control + conversion -------------------------------------

    def refresh_to_lwe(
        self,
        ct: BfvCiphertext,
        positions: np.ndarray | None = None,
        cost: LoopCost | None = None,
    ) -> lwelib.LweBatch:
        """Modulus switch, extract the valid coefficients, switch dimension
        and modulus down to t. Resulting messages sit at Delta = 1."""
        small = lwelib.rlwe_mod_switch(ct, self.params.lwe_q)
        batch = lwelib.sample_extract(small, positions)
        if cost:
            cost.extractions += batch.count
        switched = lwelib.keyswitch(batch, self.lwe_ksk)
        return lwelib.lwe_mod_switch(switched, self.params.t)

    # -- Steps 4-5: packing + FBS ---------------------------------------------------

    def bootstrap(
        self, batch: lwelib.LweBatch, lut: FbsLut, cost: LoopCost | None = None
    ) -> BfvCiphertext:
        """Pack LWE ciphertexts into slots and evaluate the LUT polynomial."""
        packed = pack_lwe(self.ctx, batch, self.packing_key)
        return fbs_evaluate(self.ctx, packed, lut, self.rlk, cost.fbs if cost else None)

    # -- loop closure -------------------------------------------------------------

    def to_coeffs(self, ct: BfvCiphertext) -> BfvCiphertext:
        """S2C: prepare the FBS output for the next coefficient-encoded layer."""
        return slot_to_coeff(self.ctx, ct, self.s2c_key)

    def loop(
        self,
        ct: BfvCiphertext,
        kernel_coeffs: np.ndarray,
        lut: FbsLut,
        positions: np.ndarray,
        cost: LoopCost | None = None,
        s2c: bool = True,
    ) -> BfvCiphertext:
        """One complete five-step round: Conv -> refresh -> FBS [-> S2C]."""
        if positions.shape[0] > self.params.n:
            raise ParameterError("more outputs than slots")
        out = self.linear(ct, kernel_coeffs, cost)
        batch = self.refresh_to_lwe(out, positions, cost)
        boot = self.bootstrap(batch, lut, cost)
        return self.to_coeffs(boot) if s2c else boot

    # -- lowered-program driver ------------------------------------------------

    def run_program(
        self,
        program: AthenaProgram,
        x_q: np.ndarray,
        cost: LoopCost | None = None,
    ) -> np.ndarray:
        """Execute a lowered :class:`AthenaProgram` end to end on encrypted
        data: encode + encrypt the quantized input client-side, run one
        five-step round per LUT-bearing step, decrypt the tail.

        The tail step's ``s2c=False`` flag (program fusion rule 4) is
        honoured here: the final FBS output is decoded from slots directly.
        Returns the centered integer outputs — comparable, up to FHE noise,
        with ``QuantizedModel.forward_int`` on the same program.
        """
        ex = CiphertextExecutor(self, program, cost)
        ct = _run_steps(program, ex, np.asarray(x_q, dtype=np.int64))
        raw = self.decrypt_coeffs(ct) if ex.tail_s2c else self.decrypt_slots(ct)
        vals = raw[: ex.out_count]
        t = self.params.t
        return np.where(vals > t // 2, vals - t, vals)


class CiphertextExecutor(ProgramExecutor):
    """Realizes program steps as real five-step rounds on a pipeline.

    The flowing value is a BFV ciphertext. The *first* linear step instead
    receives the raw quantized input array and performs the client-side
    encode (including any zero-padding) + encrypt. Interior convolutions
    must be pad-free: after S2C the previous round's outputs sit at
    coefficients ``0..count-1`` in exactly the Eq. 1 feature layout
    (extraction order is output-channel-major, matching
    :func:`encode_features`), so layer chaining is layout-free only on the
    unpadded grid.

    Pooling, residual joins, and MAC-domain max-pool fusion need ciphertext
    machinery (rotation-based repacking) this reduced-parameter backend does
    not implement; those steps raise :class:`ParameterError`.
    """

    def __init__(
        self,
        pipe: AthenaPipeline,
        program: AthenaProgram,
        cost: LoopCost | None = None,
    ):
        self.pipe = pipe
        self.program = program
        self.cost = cost
        self._luts: dict[int, FbsLut] = {}
        self.out_count = 0
        self.tail_s2c = True

    def _lut(self, step) -> FbsLut:
        got = self._luts.get(id(step))
        if got is None:
            got = step.lut.build(self.program.config, self.pipe.params.t)
            self._luts[id(step)] = got
        return got

    def linear(self, step: LinearStep, value) -> BfvCiphertext:
        pipe, params = self.pipe, self.pipe.params
        layer = step.layer
        if step.fused_pool is not None:
            raise ParameterError(
                "MAC-domain max-pool fusion is not implemented on the "
                "real-ciphertext backend"
            )
        n = params.n
        if step.op == "conv":
            cin, h, w = layer.in_shape
            if isinstance(value, np.ndarray):
                m = value.reshape(cin, h, w)
                if layer.pad:
                    m = np.pad(m, ((0, 0), (layer.pad,) * 2, (layer.pad,) * 2))
                ct = pipe.encrypt_coeffs(encode_features(m, n))
            else:
                if layer.pad:
                    raise ParameterError(
                        "interior convolutions must be pad-free for "
                        "coefficient-encoded layer chaining"
                    )
                ct = value
            hp, wp = h + 2 * layer.pad, w + 2 * layer.pad
            kernel = encode_kernels(layer.weight, hp, wp, n)
        else:
            if isinstance(value, np.ndarray):
                feat = value.reshape(layer.in_features, 1, 1)
                ct = pipe.encrypt_coeffs(encode_features(feat, n))
            else:
                ct = value
            # An FC layer is the Wk = H = W = 1 case of the Eq. 1 encoding.
            kernel = encode_kernels(layer.weight[:, :, None, None], 1, 1, n)
        positions = step.output_positions()
        if positions.shape[0] > n:
            raise ParameterError("more outputs than slots")
        out = pipe.linear(ct, kernel, self.cost)
        if np.any(layer.bias):
            bias_coeffs = np.zeros(n, dtype=np.int64)
            reps = positions.shape[0] // layer.bias.shape[0]
            bias_coeffs[positions] = np.repeat(layer.bias, reps)
            out = pipe.ctx.add_plain(out, Plaintext.from_coeffs(bias_coeffs, params))
        batch = pipe.refresh_to_lwe(out, positions, self.cost)
        boot = pipe.bootstrap(batch, self._lut(step), self.cost)
        self.out_count = positions.shape[0]
        self.tail_s2c = step.s2c
        return pipe.to_coeffs(boot) if step.s2c else boot

    def pool(self, step: PoolStep, value):
        raise ParameterError(
            f"pooling step {step.name!r} is not supported on the "
            "real-ciphertext backend"
        )

    def remap(self, step: RemapStep, value):
        raise ParameterError(
            f"remap step {step.name!r} is not supported on the "
            "real-ciphertext backend"
        )

    def residual(self, step: ResidualStep, main, skip):
        raise ParameterError(
            f"residual step {step.name!r} is not supported on the "
            "real-ciphertext backend"
        )
