"""Deprecated pre-program walker entry points.

Before the lowered-program refactor, each backend walked the quantized layer
IR itself; these module-level walkers were the public way to run them. They
are kept importable for downstream code, but every call emits a
:class:`DeprecationWarning` and delegates to the one true schedule:
:func:`repro.core.program.lower` + :func:`repro.core.program.run_program`.

Migration map::

    run_layers(layers, x_q, cfg)  ->  run_program(lower(model), PlainIntExecutor(cfg), x_q)
    mac_layers(model)             ->  lower(model).mac_sources()
    trace_layers(model, ...)      ->  repro.core.trace.trace_model(model, ...)
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.program import (
    AthenaProgram,
    PlainIntExecutor,
    _lower_layers,
    lower,
    run_program,
)
from repro.fhe.params import ATHENA, FheParams
from repro.quant.quantize import QuantConfig, QuantizedModel

__all__ = ["mac_layers", "run_layers", "trace_layers"]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.core.legacy.{old} is deprecated; use {new} "
        "(the lowered AthenaProgram API)",
        DeprecationWarning,
        stacklevel=3,
    )


def run_layers(layers: list, x_q: np.ndarray, cfg: QuantConfig) -> np.ndarray:
    """Deprecated: plaintext integer forward over a raw layer list."""
    _deprecated("run_layers", "run_program(lower(model), PlainIntExecutor(cfg))")
    steps = _lower_layers(layers, cfg, ATHENA, prefix="")
    program = AthenaProgram(steps, cfg, ATHENA, name="legacy")
    return run_program(program, PlainIntExecutor(cfg), np.asarray(x_q))


def mac_layers(model: QuantizedModel) -> list:
    """Deprecated: MAC-producing IR nodes in execution order."""
    _deprecated("mac_layers", "lower(model).mac_sources()")
    return lower(model).mac_sources()


def trace_layers(model: QuantizedModel, params: FheParams = ATHENA, **kwargs):
    """Deprecated: accelerator workload trace of a quantized model."""
    _deprecated("trace_layers", "repro.core.trace.trace_model")
    from repro.core.trace import trace_model

    return trace_model(model, params, **kwargs)
