"""Coefficient encoding for linear layers (paper §3.2.1, Eq. 1, Table 2).

A convolution becomes a single negacyclic polynomial product when features
and kernels are laid out as

    M_hat[c*HW + h*W + w]                          = M[c, h, w]
    K_hat[T - c'*Cin*HW - c*HW - i*W - j]          = K[c', c, i, j]
    T = HW*(Cout*Cin - 1) + W*(Wk - 1) + Wk - 1

after which output (c', h, w) sits at coefficient T - c'*Cin*HW + h*W + w of
M_hat * K_hat. No rotations are needed — this is the "Conv: O(C) PMult,
0 HRot" row of the paper's Table 3.

Two packing *strategies* are modeled for Table 2:

* **Cheetah-style** (input-channel-major): all Cin channels packed per
  ciphertext, one polynomial product per output channel; the valid outputs
  of each kernel are scattered across Cout result ciphertexts.
* **Athena-style** (output-channel-major): kernels arranged across the Cout
  dimension so one product accumulates many output channels *compactly* in
  a single result ciphertext — more PMult/HAdd, far fewer result
  ciphertexts, which is what makes the subsequent sample-extraction step
  cheap (its cost scales with result-ciphertext count x N).

Fully-connected layers are the Wk = W = 1 special case (inner product).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import EncodingError


def conv_output_hw(h: int, w: int, k: int, stride: int, pad: int) -> tuple[int, int]:
    """Spatial output size of a convolution."""
    return (h + 2 * pad - k) // stride + 1, (w + 2 * pad - k) // stride + 1


# ---------------------------------------------------------------------------
# Concrete single-ciphertext encoding (validates Eq. 1 end to end)
# ---------------------------------------------------------------------------


def encode_features(m: np.ndarray, n: int) -> np.ndarray:
    """Eq. 1 feature layout: M_hat[c*HW + h*W + w] = M[c, h, w]."""
    cin, h, w = m.shape
    if cin * h * w > n:
        raise EncodingError(f"feature map ({cin}x{h}x{w}) exceeds degree {n}")
    out = np.zeros(n, dtype=np.int64)
    out[: cin * h * w] = m.reshape(-1)
    return out


def encode_kernels(k: np.ndarray, h: int, w: int, n: int) -> np.ndarray:
    """Eq. 1 kernel layout (output-channel-major, Athena ordering)."""
    cout, cin, wk, wk2 = k.shape
    if wk != wk2:
        raise EncodingError("kernels must be square")
    hw = h * w
    t_index = hw * (cout * cin - 1) + w * (wk - 1) + wk - 1
    if t_index >= n:
        raise EncodingError(
            f"conv ({cout},{cin},{h},{w},{wk}) needs degree > {t_index}, have {n}"
        )
    out = np.zeros(n, dtype=np.int64)
    for cp in range(cout):
        for c in range(cin):
            for i in range(wk):
                for j in range(wk):
                    out[t_index - cp * cin * hw - c * hw - i * w - j] = k[cp, c, i, j]
    return out


def extract_conv_outputs(
    product: np.ndarray,
    cout: int,
    cin: int,
    h: int,
    w: int,
    wk: int,
    stride: int = 1,
) -> np.ndarray:
    """Gather valid outputs of M_hat*K_hat into (Cout, H_out, W_out).

    ``h``/``w`` are the (already padded) input sizes; valid positions are
    h' <= H - Wk, w' <= W - Wk on the stride grid.
    """
    hw = h * w
    t_index = hw * (cout * cin - 1) + w * (wk - 1) + wk - 1
    oh = (h - wk) // stride + 1
    ow = (w - wk) // stride + 1
    out = np.empty((cout, oh, ow), dtype=product.dtype)
    for cp in range(cout):
        base = t_index - cp * cin * hw
        for a in range(oh):
            for b in range(ow):
                out[cp, a, b] = product[base + a * stride * w + b * stride]
    return out


def conv_via_coefficients(
    m: np.ndarray, k: np.ndarray, n: int, stride: int = 1, pad: int = 0,
    modulus: int | None = None,
) -> np.ndarray:
    """Full-precision reference: pad, encode, negacyclic-multiply, extract.

    This is the *plaintext* version of Athena's Step 1 and is bit-identical
    to what the encrypted path computes in BFV coefficients.
    """
    from repro.fhe.ntt import negacyclic_mul_exact

    cout, cin, wk, _ = k.shape
    if pad:
        m = np.pad(m, ((0, 0), (pad, pad), (pad, pad)))
    _, h, w = m.shape
    mh = encode_features(m, n)
    kh = encode_kernels(k, h, w, n)
    product = np.array(negacyclic_mul_exact(list(mh), list(kh)))
    if modulus is not None:
        product = ((product + modulus // 2) % modulus) - modulus // 2
    return extract_conv_outputs(product, cout, cin, h, w, wk, stride)


def lane_span(cout: int, cin: int, h: int, w: int, wk: int) -> int:
    """Coefficient span of one image's Eq. 1 workspace (kernel + input).

    The kernel support tops out at ``t_index`` and the feature polynomial at
    ``cin*h*w - 1``, so the product M_hat * K_hat has support strictly below
    ``t_index + cin*h*w``. Independent images packed at this stride in one
    ciphertext therefore never mix: a lower lane's products stay below the
    next lane's offset, and a higher lane's would need a negative monomial
    degree. ``h``/``w`` are the padded input sizes; an FC layer is the
    ``h = w = wk = 1`` case.
    """
    hw = h * w
    t_index = hw * (cout * cin - 1) + w * (wk - 1) + wk - 1
    return t_index + cin * hw


def valid_output_positions(
    cout: int, cin: int, h: int, w: int, wk: int, stride: int
) -> np.ndarray:
    """Coefficient indices holding valid conv outputs (for sample extract)."""
    hw = h * w
    t_index = hw * (cout * cin - 1) + w * (wk - 1) + wk - 1
    oh = (h - wk) // stride + 1
    ow = (w - wk) // stride + 1
    idx = np.empty(cout * oh * ow, dtype=np.int64)
    pos = 0
    for cp in range(cout):
        base = t_index - cp * cin * hw
        for a in range(oh):
            for b in range(ow):
                idx[pos] = base + a * stride * w + b * stride
                pos += 1
    return idx


def grid_output_positions(
    cout: int, cin: int, gh: int, gw: int, wk: int, stride: int,
    oh: int, ow: int, oy: int, ox: int,
) -> np.ndarray:
    """Valid-output positions for a conv reading an interior image window.

    Generalizes :func:`valid_output_positions` to a feature layout whose
    image sits at offset ``(oy, ox)`` inside a ``(gh, gw)`` coefficient
    grid with exact zeros outside the image (the invariant every refresh
    round's placed packing maintains). The conv's output sample ``(cp, a,
    b)`` then lives at ``t_index - cp*cin*gh*gw + (oy + a*stride)*gw +
    (ox + b*stride)`` — with ``(gh, gw)`` equal to the padded input and
    ``oy = ox = 0`` this is exactly :func:`valid_output_positions`.
    ``oy``/``ox`` here are the window origin *after* subtracting the
    conv's own pad from the layout offset; the caller guarantees
    ``oy, ox >= 0`` (the layout's interior margin covers the pad).
    """
    ghw = gh * gw
    t_index = ghw * (cout * cin - 1) + gw * (wk - 1) + wk - 1
    idx = np.empty(cout * oh * ow, dtype=np.int64)
    pos = 0
    for cp in range(cout):
        base = t_index - cp * cin * ghw
        for a in range(oh):
            for b in range(ow):
                idx[pos] = base + (oy + a * stride) * gw + (ox + b * stride)
                pos += 1
    return idx


# ---------------------------------------------------------------------------
# Packing plans (Table 2 + op counts for the complexity/trace models)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConvShape:
    """One convolution layer's shape, Table 2 notation."""

    hw: int  # H (= W) of the (unpadded) input feature map
    cin: int
    cout: int
    wk: int
    stride: int
    pad: int

    @property
    def h_padded(self) -> int:
        return self.hw + 2 * self.pad

    @property
    def out_hw(self) -> int:
        return (self.h_padded - self.wk) // self.stride + 1

    @property
    def valid_outputs(self) -> int:
        return self.cout * self.out_hw**2

    @property
    def feature_size(self) -> int:
        return self.h_padded**2

    def describe(self) -> str:
        return (
            f"({self.hw}^2, {self.cin}, {self.cout}, {self.wk}, "
            f"{self.stride}, {self.pad})"
        )


@dataclass(frozen=True)
class EncodingPlan:
    """Cost/occupancy summary of one packing strategy on one layer."""

    strategy: str
    input_cts: int
    pmult: int
    hadd: int
    result_cts: int
    valid_ratio: float


def athena_plan(shape: ConvShape, n: int) -> EncodingPlan:
    """Output-channel-major packing (paper §3.2.1).

    Kernels are grouped so each polynomial product accumulates a group of
    output channels compactly; the result occupies
    ceil(valid_channel_span / N) ciphertexts, where each output channel
    spans the stride-1 grid (stride subsampling cannot be compacted inside
    a single product).
    """
    hw_pad = shape.feature_size
    span_per_channel = hw_pad  # output grid before stride subsampling
    # Kernels per product limited by Cout'*Cin*HW <= N.
    group = max(1, min(shape.cout, n // max(1, shape.cin * hw_pad)))
    groups = math.ceil(shape.cout / group)
    # Each group is one product against the (shared) input ciphertext(s).
    input_cts = math.ceil(shape.cin * hw_pad / n)
    pmult = groups * input_cts
    hadd = groups * max(0, input_cts - 1)
    result_span = shape.cout * span_per_channel
    result_cts = max(groups if group * shape.cin * hw_pad > n else 1,
                     math.ceil(result_span / n))
    valid = shape.valid_outputs
    return EncodingPlan(
        strategy="athena",
        input_cts=input_cts,
        pmult=pmult,
        hadd=hadd,
        result_cts=result_cts,
        valid_ratio=valid / (result_cts * n),
    )


def cheetah_plan(shape: ConvShape, n: int) -> EncodingPlan:
    """Input-channel-major packing (Cheetah [16]).

    All Cin channels share a ciphertext (split when they exceed N); one
    product per output channel, so valid data is spread across Cout result
    ciphertexts regardless of how few outputs each contains.
    """
    hw_pad = shape.feature_size
    splits = math.ceil(shape.cin * hw_pad / n)
    pmult = shape.cout * splits
    hadd = shape.cout * max(0, splits - 1)
    result_cts = shape.cout
    valid = shape.valid_outputs
    return EncodingPlan(
        strategy="cheetah",
        input_cts=splits,
        pmult=pmult,
        hadd=hadd,
        result_cts=result_cts,
        valid_ratio=valid / (result_cts * n),
    )


#: The six layer shapes of the paper's Table 2.
TABLE2_SHAPES = (
    ConvShape(32, 3, 16, 3, 1, 1),
    ConvShape(32, 16, 16, 3, 1, 1),
    ConvShape(32, 16, 32, 1, 2, 0),
    ConvShape(16, 32, 32, 3, 1, 1),
    ConvShape(16, 32, 64, 1, 2, 0),
    ConvShape(8, 64, 64, 3, 1, 1),
)
