"""FHE operation-trace generation: quantized model -> primitive op counts.

The accelerator simulator consumes phase-labeled counts of primitive
operations. One :class:`PhaseTrace` is emitted per pipeline phase per layer
(linear / se-chain / packing / fbs / s2c, plus pooling and softmax phases),
so the simulator can reproduce the paper's execution-time breakdown (Fig. 9)
as well as end-to-end latency (Table 6).

Primitive unit conventions:

* ``ntt``        — one length-N negacyclic NTT over one RNS limb
* ``automorph``  — one limb-wise index permutation (N elements)
* ``mod_mul`` / ``mod_add`` — elementwise modular ops, counted in *elements*
* ``extract``    — one LWE sample extraction (SE unit, ~1 cycle amortized)
* ``rnsconv``    — RNS base-conversion work, counted in elements
* ``hbm_bytes``  — off-chip traffic estimate

Keyswitching uses hybrid gadget decomposition with ``dnum`` digits: one
keyswitch costs 2*dnum*L NTTs + 2*dnum*L*N mod-muls + the base-conversion
work, which is how CraterLake/SHARP-class designs account it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.encoding import ConvShape, athena_plan
from repro.core.program import (
    LinearStep,
    PoolStep,
    ProgramExecutor,
    RemapStep,
    ResidualStep,
    lower,
    run_program,
)
from repro.fhe.params import ATHENA, FheParams
from repro.quant.quantize import QConv, QuantizedModel

#: Hybrid keyswitching digit count (CraterLake-style dnum).
DNUM = 3


@dataclass
class OpCounts:
    ntt: float = 0.0
    automorph: float = 0.0
    mod_mul: float = 0.0
    mod_add: float = 0.0
    extract: float = 0.0
    rnsconv: float = 0.0
    hbm_bytes: float = 0.0

    def __iadd__(self, other: "OpCounts") -> "OpCounts":
        self.ntt += other.ntt
        self.automorph += other.automorph
        self.mod_mul += other.mod_mul
        self.mod_add += other.mod_add
        self.extract += other.extract
        self.rnsconv += other.rnsconv
        self.hbm_bytes += other.hbm_bytes
        return self

    def scaled(self, k: float) -> "OpCounts":
        return OpCounts(
            self.ntt * k, self.automorph * k, self.mod_mul * k, self.mod_add * k,
            self.extract * k, self.rnsconv * k, self.hbm_bytes * k,
        )


@dataclass
class PhaseTrace:
    phase: str  # linear | se | packing | fbs | s2c | pooling | softmax
    layer: str
    ops: OpCounts


@dataclass
class WorkloadTrace:
    model: str
    params: FheParams
    phases: list[PhaseTrace] = field(default_factory=list)

    def add(self, phase: str, layer: str, ops: OpCounts) -> None:
        self.phases.append(PhaseTrace(phase, layer, ops))

    def totals(self) -> OpCounts:
        out = OpCounts()
        for p in self.phases:
            out += p.ops
        return out

    def by_phase(self) -> dict[str, OpCounts]:
        out: dict[str, OpCounts] = {}
        for p in self.phases:
            out.setdefault(p.phase, OpCounts())
            out[p.phase] += p.ops
        return out


# -- primitive building blocks -------------------------------------------------


def _pmult(params: FheParams, cached_plain: bool = True) -> OpCounts:
    l, n = params.num_limbs, params.n
    return OpCounts(
        ntt=0 if cached_plain else l,
        mod_mul=2 * l * n,
        # Ciphertext operands stay scratchpad-resident; only an uncached
        # plaintext operand (e.g. a runtime packing diagonal) streams in.
        hbm_bytes=0 if cached_plain else n * 4,
    )


def _smult(params: FheParams) -> OpCounts:
    l, n = params.num_limbs, params.n
    return OpCounts(mod_mul=2 * l * n, hbm_bytes=0)


def _hadd(params: FheParams) -> OpCounts:
    l, n = params.num_limbs, params.n
    return OpCounts(mod_add=2 * l * n)


def _keyswitch(params: FheParams, resident_key: bool = False) -> OpCounts:
    l, n = params.num_limbs, params.n
    return OpCounts(
        ntt=2 * DNUM * l,
        mod_mul=2 * DNUM * l * n,
        mod_add=2 * DNUM * l * n,
        rnsconv=2 * l * n,
        # Key material: the 'a' halves are PRNG-regenerated on chip
        # (CraterLake/SHARP-style) so only the 'b' halves stream in —
        # unless the key is scratchpad-resident (the single relin key is;
        # the many distinct rotation keys are not).
        hbm_bytes=0 if resident_key else DNUM * l * n * 4 / 2,
    )


def _rotation(params: FheParams) -> OpCounts:
    out = _keyswitch(params)
    out.automorph += 2 * params.num_limbs
    return out


def _hoisted_rotation(params: FheParams) -> OpCounts:
    """Baby-step rotation under Halevi-Shoup hoisting: the gadget
    decomposition is shared across the group, so each extra rotation costs
    only the automorphism plus the key-product accumulation."""
    l, n = params.num_limbs, params.n
    return OpCounts(
        automorph=2 * l,
        mod_mul=2 * DNUM * l * n / 4,
        mod_add=2 * DNUM * l * n / 4,
        hbm_bytes=DNUM * 2 * l * n / 2,
    )


def _cmult(params: FheParams) -> OpCounts:
    """BFV ciphertext multiplication, FBS-ladder style.

    Operands live in the evaluation domain throughout the power ladder, so
    the tensor product is pointwise; the dominant work is the RNS basis
    extension and scale-rounding (which the FRU's base-conversion path
    executes) plus an *amortized* relinearization — Athena's FBS
    relinearizes lazily, once per accumulation group, which is what makes
    FBS FRU-bound rather than NTT-bound (paper §4.1 observation (1)).
    """
    l, n = params.num_limbs, params.n
    tensor = OpCounts(
        ntt=4 * l,  # INTT/NTT pairs around the two basis extensions
        mod_mul=8 * l * n,
        mod_add=2 * l * n,
        rnsconv=6 * l * n,  # lift to the extended basis and scale back
    )
    tensor += _keyswitch(params, resident_key=True)  # relin key stays on chip
    return tensor


def fbs_ops_split(params: FheParams, t: int | None = None) -> tuple[OpCounts, OpCounts]:
    """(baby, giant) halves of one FBS evaluation on one ciphertext.

    The baby half is Alg. 2's O(t) SMult + HAdd stream (Region 1's FRU
    array); the giant half is the O(sqrt t) CMult power ladder and group
    combinations (Region 0). The Athena dataflow (Fig. 7) overlaps the two,
    so the accelerator's FBS latency is their max — which is why measured
    FBS time scales ~sqrt(t) with quantization precision (Fig. 12).
    """
    t = t or params.t
    bs = max(2, math.ceil(math.sqrt(t)))
    gs = -(-t // bs)
    baby = OpCounts()
    baby += _smult(params).scaled(t)
    baby += _hadd(params).scaled(t)
    giant = _cmult(params).scaled(bs + gs)
    return baby, giant


def fbs_ops(params: FheParams, t: int | None = None) -> OpCounts:
    """One FBS evaluation on one ciphertext (both halves combined)."""
    baby, giant = fbs_ops_split(params, t)
    out = OpCounts()
    out += baby
    out += giant
    return out


def packing_ops(params: FheParams) -> OpCounts:
    """Pack one ciphertext's worth of LWE samples (BSGS mat-vec).

    Baby rotations are hoisted; the diagonal multiplications run against
    the replicated LWE dimension (n diagonals, paper Table 3's O(C) row is
    the per-channel view of the same count).
    """
    # With the LWE secret replicated across the slot rows, only lwe_n
    # generalized diagonals are nonzero, so the BSGS runs over n (paper
    # Table 3's O(C) packing row), with baby steps hoisted and a handful of
    # giant-step keys that stay scratchpad-resident.
    dim = min(params.lwe_n, params.n // 2)
    bs = max(1, math.isqrt(dim) * 4)
    gs = max(1, -(-dim // bs))
    out = OpCounts()
    out += _hoisted_rotation(params).scaled(bs)
    out += _rotation(params).scaled(gs)
    out += _pmult(params, cached_plain=False).scaled(dim)
    out += _hadd(params).scaled(dim)
    return out


def s2c_ops(params: FheParams) -> OpCounts:
    """Slot-to-coefficient via the paper's 3-stage O(cbrt N) factorization.

    Each stage is a sparse-diagonal mat-vec with ~cbrt(N) rotations (baby
    half hoisted) and ~cbrt(N) plaintext multiplications against fixed,
    offline-transformed stage matrices.
    """
    cbrt = max(2, round(params.n ** (1 / 3)))
    out = OpCounts()
    out += _hoisted_rotation(params).scaled(3 * cbrt)
    out += _rotation(params).scaled(3 * (cbrt // 2) + 1)
    out += _pmult(params).scaled(3 * cbrt)
    out += _hadd(params).scaled(3 * cbrt)
    return out


def se_chain_ops(params: FheParams, values: int) -> OpCounts:
    """Extraction + LWE keyswitch + modswitch for ``values`` samples."""
    l_lwe = -(-params.lwe_q.bit_length() // 7)  # LWE gadget digits (base 2^7)
    per_value_mul = params.lwe_n * l_lwe
    return OpCounts(
        extract=values,
        mod_mul=values * per_value_mul,
        mod_add=values * per_value_mul,
        hbm_bytes=values * params.lwe_n * 4,
    )


# -- model walking ----------------------------------------------------------------


def _conv_shape(layer: QConv) -> ConvShape:
    cin, h, _ = layer.in_shape
    return ConvShape(
        hw=h, cin=cin, cout=layer.weight.shape[0],
        wk=layer.weight.shape[2], stride=layer.stride, pad=layer.pad,
    )


def effective_t(layer, params: FheParams, cap: int | None = None) -> int:
    """Per-layer flexible LUT size (paper §3.3 / Fig. 12).

    The interpolating polynomial only needs to agree with the table on the
    layer's actual MAC range, so its degree — and the FBS cost — scales
    with 2*mac_peak rather than the full t. Requires a calibration pass to
    have populated ``mac_peak``; falls back to t (or ``cap``) otherwise.
    """
    cap = cap or params.t  # may exceed params.t: w8a8 uses a larger prime
    rng = getattr(layer, "lut_range", None)
    if rng:
        # Certified restricted LUT domain (mixed-precision path): the
        # compiled table IS the degree <= 2r interpolant, so the FBS cost
        # model may take the exact polynomial size — no power-of-two or
        # 256-floor conservatism needed.
        return min(cap, 2 * rng + 1)
    peak = getattr(layer, "mac_peak", 0)
    if not peak:
        return cap
    needed = 2 * peak + 1
    return max(256, min(cap, 1 << (needed - 1).bit_length()))


def _add_fbs(trace: WorkloadTrace, params: FheParams, phase: str,
             layer_name: str, t_layer: int, cts: int) -> None:
    """Emit the paired baby/giant FBS phases for ``cts`` ciphertexts."""
    baby, giant = fbs_ops_split(params, t_layer)
    trace.add(phase, layer_name, baby.scaled(cts))
    trace.add(f"{phase}_giant", layer_name, giant.scaled(cts))


def _lut_round(trace: WorkloadTrace, params: FheParams, layer_name: str,
               values: int, t_layer: int) -> None:
    """Steps 2-5 + S2C for ``values`` MAC outputs."""
    cts = max(1, -(-values // params.n))
    trace.add("se", layer_name, se_chain_ops(params, values))
    trace.add("packing", layer_name, packing_ops(params).scaled(cts))
    _add_fbs(trace, params, "fbs", layer_name, t_layer, cts)
    trace.add("s2c", layer_name, s2c_ops(params).scaled(cts))


class TraceExecutor(ProgramExecutor):
    """Accounting walker: emits phase op-counts per program step.

    The flowing ``value`` is unused (``None`` throughout) — this executor
    only appends to its trace. One deliberate divergence from the program's
    fusion flags: the tail step's ``s2c=False`` is *ignored*, keeping the
    legacy accounting (every LUT round bills its S2C) so pre/post-refactor
    phase totals stay directly comparable.
    """

    def __init__(self, trace: WorkloadTrace, params: FheParams,
                 t_eff: int | None = None):
        self.trace = trace
        self.params = params
        self.t_eff = t_eff

    def _t(self, layer) -> int:
        return effective_t(layer, self.params, self.t_eff)

    def linear(self, step: LinearStep, value) -> None:
        trace, params = self.trace, self.params
        layer = step.layer
        t_layer = self._t(layer)
        if step.op == "conv":
            plan = athena_plan(_conv_shape(layer), params.n)
            trace.add("linear", step.name, _pmult(params).scaled(plan.pmult))
            if plan.hadd:
                trace.add("linear", step.name, _hadd(params).scaled(plan.hadd))
        else:
            in_cts = max(1, -(-layer.in_features // params.n))
            trace.add("linear", step.name, _pmult(params).scaled(in_cts))
        if step.fused_pool is not None:
            # Max-tree: k^2 - 1 pairwise maxima per window, each a full
            # ReLU LUT round (refresh chain + FBS) batched SIMD-wide
            # across windows (paper: O(k) FBS lookups).
            pool = step.fused_pool
            rounds = pool.kernel**2 - 1
            cts = max(1, -(-step.out_values // params.n))
            for r in range(rounds):
                name = f"{step.name}.max{r}"
                trace.add("pooling", name,
                          se_chain_ops(params,
                                       min(step.mac_values, cts * params.n)))
                trace.add("pooling", name, packing_ops(params).scaled(cts))
                _add_fbs(trace, params, "pooling", name, t_layer, cts)
                trace.add("pooling", name, s2c_ops(params).scaled(cts))
        _lut_round(trace, params, step.name, step.out_values, t_layer)

    def pool(self, step: PoolStep, value) -> None:
        # 'sum'/'gap' window additions are hadds folded into the following
        # RemapStep's accounting; an unfused 'max' tree is not yet costed
        # (no model in the zoo pools a non-monotone activation).
        return None

    def remap(self, step: RemapStep, value) -> None:
        _add_fbs(self.trace, self.params, "pooling", step.name,
                 self._t(step.source), 1)

    def residual(self, step: ResidualStep, main, skip) -> None:
        trace, params = self.trace, self.params
        trace.add("linear", step.name, _hadd(params))
        # post-add ReLU LUT round on the block's output
        _lut_round(trace, params, step.name, params.n, self._t(step.layer))


# -- executed traces -----------------------------------------------------------

#: Phases a CountingBackend records that correspond to per-request runtime
#: work (the analytical model's domain). ``compile`` / ``keygen`` / ``other``
#: are request-invariant or unattributed and are excluded by default.
RUNTIME_PHASES = ("linear", "se", "packing", "fbs", "fbs_giant", "s2c",
                  "pooling", "softmax")

#: OpCounts fields an executed trace can populate (hbm_bytes is a pure
#: analytical estimate — nothing in the Python engine measures traffic).
EXECUTED_FIELDS = ("ntt", "automorph", "mod_mul", "mod_add", "extract",
                   "rnsconv")


def executed_trace(
    counting,
    params: FheParams,
    model: str = "executed",
    include: tuple[str, ...] | None = RUNTIME_PHASES,
) -> WorkloadTrace:
    """View a :class:`repro.fhe.backend.CountingBackend`'s records as a
    :class:`WorkloadTrace` — the same shape the analytical model emits, so
    :func:`repro.accel.scheduler.schedule` can consume ops *actually
    executed* instead of (or alongside) the model's predictions.

    Primitive mapping: the counting backend's RNS-tier units are already
    the trace units (``ntt`` per limb transform, ``mod_mul``/``mod_add``
    per element, ``rnsconv`` per mod-switch element, ``extract`` per LWE
    sample); negacyclic shifts fold into ``automorph`` (both are limb-wise
    index permutations on the accelerator datapath). ``hbm_bytes`` stays 0:
    the executed side measures arithmetic, not traffic.

    ``include`` filters phases (default: runtime phases only); pass ``None``
    to keep everything, including ``compile`` / ``keygen`` / ``other``.
    """
    trace = WorkloadTrace(model, params)
    for phase, ops in sorted(counting.ops_by_phase().items()):
        if include is not None and phase not in include:
            continue
        trace.add(phase, "executed", OpCounts(
            ntt=float(ops.get("ntt", 0)),
            automorph=float(ops.get("automorph", 0) + ops.get("shift", 0)),
            mod_mul=float(ops.get("mod_mul", 0)),
            mod_add=float(ops.get("mod_add", 0)),
            extract=float(ops.get("extract", 0)),
            rnsconv=float(ops.get("rnsconv", 0)),
        ))
    return trace


def compare_traces(
    executed: WorkloadTrace, analytical: WorkloadTrace
) -> dict[str, dict]:
    """Primitive-by-primitive totals of an executed vs an analytical trace.

    Returns ``{primitive: {executed, analytical, ratio}}`` with ratio =
    executed / analytical (None when the analytical count is zero). The
    op-count parity suite and ``repro trace --executed`` both render this.
    """
    ex, an = executed.totals(), analytical.totals()
    out: dict[str, dict] = {}
    for name in EXECUTED_FIELDS:
        e, a = getattr(ex, name), getattr(an, name)
        out[name] = {
            "executed": e,
            "analytical": a,
            "ratio": round(e / a, 4) if a else None,
        }
    return out


def trace_model(
    qmodel: QuantizedModel,
    params: FheParams = ATHENA,
    softmax: bool = True,
    t_eff: int | None = None,
) -> WorkloadTrace:
    """Generate the full inference trace for one encrypted input.

    ``t_eff`` overrides the FBS table size (the paper's flexible-LUT knob:
    lower quantization precision => smaller effective tables => cheaper FBS).
    """
    trace = WorkloadTrace(qmodel.name, params)
    program = lower(qmodel, params)
    run_program(program, TraceExecutor(trace, params, t_eff))
    if softmax:
        # exp LUT + inverse LUT + one CMult (paper §3.2.3)
        _add_fbs(trace, params, "softmax", "softmax", t_eff or params.t, 2)
        trace.add("softmax", "softmax", _cmult(params))
    return trace
