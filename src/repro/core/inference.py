"""Athena inference engines.

:class:`SimulatedAthenaEngine` executes the five-step Athena loop on a
quantized model with *functionally exact* integer arithmetic — the same
MACs, the same mod-t wrap, the same LUTs as the encrypted pipeline — while
injecting the FHE-induced perturbation from the analytic noise model of
paper §3.3 (the e_ms distribution, validated against the real backend at
small parameters in the test suite). This is what makes ResNet-20/56-scale
accuracy experiments tractable in Python (DESIGN.md substitution #3).

The engine consumes the lowered :class:`~repro.core.program.AthenaProgram`
— the same schedule the plaintext forward, the trace generator, and the
real-ciphertext backend execute — so fusion decisions (conv+max-pool in the
MAC domain, residual wide-scale joins) can never drift between backends.

The engine also records per-layer statistics: the error ratio Fig. 4 plots
(fraction of LUT outputs flipped by noise), the MAC peaks Fig. 4's orange
line plots, and the LUT-evaluation counts the accelerator trace consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.program import (
    LinearStep,
    PoolStep,
    ProgramExecutor,
    RemapStep,
    ReshapeStep,
    ResidualStep,
    lower,
    run_program,
)
from repro.fhe.fbs import FbsLut
from repro.fhe.params import ATHENA, FheParams
from repro.quant import nn
from repro.quant.quantize import (
    QMaxPool,
    QuantizedModel,
    _int_conv,
    _wrap_t,
)
from repro.core import lut as lutlib


@dataclass
class AthenaNoiseModel:
    """The e_ms perturbation of §3.3: N(0, (t*sigma/Q)^2 + (||s||^2+1)/12).

    The dimension switch N -> n happens *before* the final modulus switch
    (paper §3.2.2 / our lwe chain), so the rounding term uses the small
    LWE secret's norm: ``secret_norm_sq`` defaults to the expected ternary
    norm 2n/3 (std ~10.7 at n = 2048 — the paper's "about 4 bits", and the
    value the real backend measures in the framework tests). Set
    ``enabled=False`` for a noise-free run.
    """

    params: FheParams = ATHENA
    ct_sigma: float = 3.2
    secret_norm_sq: float | None = None
    enabled: bool = True

    @property
    def std(self) -> float:
        norm_sq = (
            self.secret_norm_sq
            if self.secret_norm_sq is not None
            else 2 * self.params.lwe_n / 3
        )
        scaled = (self.params.t * self.ct_sigma / self.params.q) ** 2
        return math.sqrt(scaled + (norm_sq + 1) / 12.0)

    def sample(self, rng: np.random.Generator, shape) -> np.ndarray:
        if not self.enabled:
            return np.zeros(shape, dtype=np.int64)
        return np.rint(rng.normal(0.0, self.std, shape)).astype(np.int64)


@dataclass
class LayerStat:
    """Per-LUT-layer record for Fig. 4 and the execution trace."""

    name: str
    mac_peak: int = 0
    lut_evals: int = 0
    flipped: int = 0
    total: int = 0

    @property
    def error_ratio(self) -> float:
        return self.flipped / self.total if self.total else 0.0


@dataclass
class InferenceStats:
    layers: list[LayerStat] = field(default_factory=list)

    def layer(self, name: str) -> LayerStat:
        stat = LayerStat(name)
        self.layers.append(stat)
        return stat

    @property
    def total_lut_evals(self) -> int:
        return sum(s.lut_evals for s in self.layers)

    @property
    def max_error_ratio(self) -> float:
        return max((s.error_ratio for s in self.layers), default=0.0)


class SimulatedAthenaEngine:
    """Runs a :class:`QuantizedModel` through the Athena pipeline."""

    def __init__(
        self,
        model: QuantizedModel,
        params: FheParams = ATHENA,
        seed: int = 0,
        noise: AthenaNoiseModel | None = None,
    ):
        self.model = model
        self.params = params
        self.program = lower(model, params)
        self.rng = np.random.default_rng(seed)
        self.noise = noise if noise is not None else AthenaNoiseModel(params)
        self._luts: dict[int, FbsLut] = {}
        self._relu = lutlib.relu_lut(params.t)

    # -- LUT cache ---------------------------------------------------------

    def _lut(self, step) -> FbsLut:
        key = id(step)
        got = self._luts.get(key)
        if got is None:
            got = step.lut.build(self.model.config, self.params.t)
            self._luts[key] = got
        return got

    # -- main entry ----------------------------------------------------------

    def infer(self, x: np.ndarray, stats: InferenceStats | None = None) -> np.ndarray:
        """Encrypted-pipeline-faithful inference; returns integer logits."""
        stats = stats if stats is not None else InferenceStats()
        x_q = self.model.quantize_input(x)
        return run_program(self.program, _SimulatedExecutor(self, stats), x_q)

    def infer_with_stats(self, x: np.ndarray) -> tuple[np.ndarray, InferenceStats]:
        stats = InferenceStats()
        out = self.infer(x, stats)
        return out, stats

    def infer_probs(self, x: np.ndarray) -> np.ndarray:
        """Encrypted softmax (paper §3.2.3): exp LUT, reciprocal LUT of the
        sum, one CMult — with e_ms perturbation on both LUT rounds."""
        logits = self.infer(x)
        tail_scale = self.program.final_scale()
        exp_lut, inv_lut, inv_levels = lutlib.softmax_luts(
            self.params.t, in_scale=tail_scale
        )
        t = self.params.t
        shifted = logits - logits.max(axis=-1, keepdims=True)
        noisy = _wrap_t(shifted + self.noise.sample(self.rng, shifted.shape), t)
        e = exp_lut.apply_plain_signed(noisy)
        total = e.sum(axis=-1, keepdims=True)
        total_noisy = _wrap_t(total + self.noise.sample(self.rng, total.shape), t)
        r = inv_lut.apply_plain_signed(total_noisy)
        probs = (e * r).astype(np.float64)  # the ciphertext-ciphertext mult
        denom = probs.sum(axis=-1, keepdims=True)
        denom[denom == 0] = 1.0
        return probs / denom

    def accuracy(self, x: np.ndarray, y: np.ndarray, batch: int = 128) -> float:
        correct = 0
        for s in range(0, x.shape[0], batch):
            logits = self.infer(x[s : s + batch])
            correct += int((logits.argmax(axis=1) == y[s : s + batch]).sum())
        return correct / x.shape[0]

    # -- step primitives -------------------------------------------------------

    def _apply_lut(
        self, mac: np.ndarray, lut: FbsLut, stat: LayerStat
    ) -> np.ndarray:
        """Steps 2-5 of the loop: noise refresh chain + FBS, on integers.

        The flip statistic (Fig. 4's blue line) is scale-aware: a deviation
        counts once it reaches one LSB of the *activation* (int-a) domain,
        so wide intermediate remaps aren't reported as spuriously noisy.
        """
        t = self.params.t
        wrapped = _wrap_t(mac, t)
        noisy = _wrap_t(wrapped + self.noise.sample(self.rng, mac.shape), t)
        out = lut.apply_plain_signed(noisy)
        clean = lut.apply_plain_signed(wrapped)
        threshold = max(1, lut.signed_range // (2 * self.model.config.a_max + 1))
        stat.mac_peak = max(stat.mac_peak, int(np.abs(mac).max()))
        stat.lut_evals += mac.size
        stat.flipped += int((np.abs(out - clean) >= threshold).sum())
        stat.total += mac.size
        return out

    def _maxpool(self, x_q: np.ndarray, layer: QMaxPool, stat: LayerStat) -> np.ndarray:
        """Max-tree pooling: each pairwise max is one perturbed ReLU FBS."""
        t = self.params.t
        cols, oh, ow = nn.im2col(x_q, layer.kernel, layer.kernel, layer.stride, 0)
        b, c = x_q.shape[0], x_q.shape[1]
        vals = cols.reshape(b, oh, ow, c, layer.kernel**2)
        while vals.shape[-1] > 1:
            n = vals.shape[-1]
            half = n // 2
            a = vals[..., :half]
            bb = vals[..., half : 2 * half]
            diff = _wrap_t(a - bb, t)
            noisy = _wrap_t(diff + self.noise.sample(self.rng, diff.shape), t)
            relu_out = self._relu.apply_plain_signed(noisy)
            # Only the eval count is recorded here: a perturbed ReLU on a
            # MAC-scale difference shifts the selected maximum by ~e_ms,
            # which the downstream remap LUT absorbs — counting raw output
            # differences would wildly overstate the Fig. 4 error ratio.
            stat.lut_evals += diff.size
            merged = bb + relu_out
            if n % 2:
                merged = np.concatenate([merged, vals[..., -1:]], axis=-1)
            vals = merged
        return vals[..., 0].transpose(0, 3, 1, 2)


class _SimulatedExecutor(ProgramExecutor):
    """Noise-faithful realization of each program step (the engine's walker).

    Fused conv+max-pool steps run in the MAC domain — MAC-scale values
    tolerate e_ms, int-a values do not — which for a monotone remap LUT is
    exactly the plaintext executor's remap-then-pool result.
    """

    def __init__(self, engine: SimulatedAthenaEngine, stats: InferenceStats):
        self.engine = engine
        self.stats = stats

    def linear(self, step: LinearStep, x_q: np.ndarray) -> np.ndarray:
        engine = self.engine
        layer = step.layer
        if step.op == "conv":
            mac = _int_conv(x_q, layer)
        else:
            mac = x_q @ layer.weight.T + layer.bias
        if step.fused_pool is not None:
            mac = engine._maxpool(mac, step.fused_pool, self.stats.layer("maxpool"))
        return engine._apply_lut(mac, engine._lut(step), self.stats.layer(step.stat))

    def pool(self, step: PoolStep, x_q: np.ndarray) -> np.ndarray:
        layer = step.layer
        if step.op == "max":
            return self.engine._maxpool(x_q, layer, self.stats.layer("maxpool"))
        if step.op == "sum":
            cols, oh, ow = nn.im2col(x_q, layer.kernel, layer.kernel, layer.stride, 0)
            b, c = x_q.shape[0], x_q.shape[1]
            return cols.reshape(b, oh, ow, c, layer.kernel**2).sum(axis=-1)
        return x_q.sum(axis=(2, 3))  # gap

    def remap(self, step: RemapStep, total: np.ndarray) -> np.ndarray:
        out = self.engine._apply_lut(
            total, self.engine._lut(step), self.stats.layer(step.stat)
        )
        return out.transpose(0, 3, 1, 2) if out.ndim == 4 else out

    def reshape(self, step: ReshapeStep, x_q: np.ndarray) -> np.ndarray:
        return x_q.reshape(x_q.shape[0], -1)

    def residual(self, step: ResidualStep, main: np.ndarray,
                 skip: np.ndarray) -> np.ndarray:
        # skip_alpha is a noise-free ciphertext SMult (exact).
        return self.engine._apply_lut(
            main + skip * step.skip_alpha,
            self.engine._lut(step),
            self.stats.layer(step.stat),
        )
