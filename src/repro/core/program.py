"""Lowered Athena program IR: one schedule shared by every backend.

The five-step Athena loop (paper Fig. 2) used to be re-derived by four
independent ``isinstance``-chain walkers — the plaintext integer forward,
the simulated engine, the accelerator trace generator, and the LUT builder
— each hand-coding the same fusion decisions. This module makes those
decisions exactly once: :func:`lower` compiles a :class:`QuantizedModel`
into an :class:`AthenaProgram`, a flat sequence of loop-step nodes, and
every backend consumes the program through the :class:`ProgramExecutor`
protocol via :func:`run_program`.

Node kinds
----------

* :class:`LinearStep`   — conv/FC MAC plus its merged remap LUT; may carry a
  max-pool fused into the MAC domain.
* :class:`PoolStep`     — standalone pooling: ``max`` (LUT max-tree), ``sum``
  (average-pool window sum), ``gap`` (global sum).
* :class:`RemapStep`    — a bare LUT round with no linear layer in front
  (the average-pool / global-average-pool division tables).
* :class:`ReshapeStep`  — flatten; free on every backend.
* :class:`ResidualStep` — wide-scale branch join + post-add ReLU LUT, with
  the branches as nested sub-programs.

Fusion rules (applied at lowering time, consumed by all executors)
------------------------------------------------------------------

1. **Conv + max-pool in the MAC domain.** A ``QMaxPool`` directly following
   a conv whose merged activation is monotone rides on the conv's
   :class:`LinearStep`: pool-then-remap equals remap-then-pool exactly for
   a monotone LUT, and MAC-scale values tolerate e_ms where int-a values do
   not. Non-monotone activations (gelu) keep a separate activation-domain
   :class:`PoolStep`.
2. **Residual wide-scale join.** Both branches of a :class:`ResidualStep`
   arrive at the shared ``add_scale`` (see :class:`QResidual`); the
   encrypted addition plus one post-add LUT is a single program node.
3. **Average pooling as sum + LUT.** ``QAvgPool``/``QGlobalAvgPool`` lower
   into a :class:`PoolStep` (pure additions) followed by a
   :class:`RemapStep` carrying the division table.
4. **Tail no-S2C.** The last LUT-bearing step of the program is marked
   ``s2c=False``: the final FBS output is decoded from slots directly, so
   the real-ciphertext backend skips one slot-to-coefficient transform.
   (The trace executor deliberately keeps the legacy accounting — it still
   bills the tail S2C — so pre/post-refactor phase totals stay comparable.)

Executor protocol
-----------------

An executor implements one handler per node kind (``linear`` / ``pool`` /
``remap`` / ``reshape`` / ``residual``); each handler receives the step and
the flowing value and returns the new value. Value semantics are
executor-defined: integer tensors for the plaintext and simulated engines,
BFV ciphertexts for the real backend, ``None`` for pure accounting walkers
such as the trace generator. :func:`run_program` owns the schedule —
including the recursion into residual sub-programs — so no executor can
drift from the lowered fusion decisions.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.core import lowering
from repro.core.encoding import valid_output_positions
from repro.core.lowering import StepEncodingChoice  # noqa: F401 (re-export)
from repro.errors import QuantizationError
from repro.fhe.fbs import (
    FbsLut,
    evaluate_poly_all,
    interpolate_range,
    register_interpolation,
)
from repro.fhe.params import ATHENA, FheParams
from repro.quant import nn
from repro.quant.quantize import (
    QAvgPool,
    QConv,
    QFlatten,
    QGlobalAvgPool,
    QLinear,
    QMaxPool,
    QResidual,
    QuantConfig,
    QuantizedModel,
    _int_conv,
    _wrap_t,
)

#: Merged activations whose remap LUT is monotone non-decreasing, so a
#: following max-pool commutes with the remap and may fuse into MAC domain.
MONOTONE_ACTIVATIONS = frozenset({"identity", "relu", "sigmoid"})


# --------------------------------------------------------------------------
# LUT specs
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LutSpec:
    """Recipe for one FBS table, resolved at lowering time.

    ``remap`` tabulates the source node's own ``remap`` over the centered
    domain (bit-exact with plaintext quantized inference for any merged
    activation); ``divide`` is the pooling table LUT(x) = round(x / d).
    """

    kind: str  # 'remap' | 'divide'
    source: object  # Q-node providing remap()/mac_peak
    divisor: int = 1
    name: str = ""
    #: Restricted interpolation domain radius (from the source node's
    #: calibrated ``lut_range``): the MAC provably stays in [-r, r], so
    #: the table only needs to match the exact semantics there and may be
    #: the degree <= 2r interpolant everywhere else. None -> full-domain.
    lut_range: int | None = None

    def build(self, cfg: QuantConfig, t: int | None = None) -> FbsLut:
        """Materialize the table over Z_t."""
        t = t or cfg.t
        r = self.lut_range
        if r and 2 * r + 1 < t:
            # Restricted-domain build: interpolate the exact semantics over
            # the certified MAC range only. The resulting degree <= 2r
            # polynomial (vs t-1 generically) is what FBS evaluates, so the
            # BSGS ladder shrinks with the layer's bit allocation. The full
            # table it induces on Z_t is registered with its coefficients:
            # FbsLut then picks them up through the interpolation cache and
            # plan serialization round-trips bit-identically.
            pts = np.arange(-r, r + 1, dtype=np.int64)
            vals = self.apply_exact(pts, cfg)
            coeffs = interpolate_range(vals, r, t)
            table = evaluate_poly_all(coeffs, t)
            register_interpolation(table, t, coeffs)
            return FbsLut(table, t, self.name)
        raw = np.arange(t, dtype=np.int64)
        domain = np.where(raw > t // 2, raw - t, raw)
        if self.kind == "remap":
            return FbsLut(self.source.remap(domain, cfg.a_max), t, self.name)
        if self.kind == "divide":
            vals = np.rint(domain / self.divisor).astype(np.int64)
            return FbsLut(vals, t, self.name)
        raise QuantizationError(f"unknown LUT spec kind {self.kind!r}")

    def apply_exact(self, values: np.ndarray, cfg: QuantConfig) -> np.ndarray:
        """The table's exact integer semantics, without tabulating Z_t."""
        if self.kind == "remap":
            return self.source.remap(values, cfg.a_max)
        return np.rint(values / self.divisor).astype(np.int64)


def lut_spec(layer) -> LutSpec:
    """LUT recipe for one quantized-IR node (part of the lowering pass)."""
    rng = getattr(layer, "lut_range", None)
    if isinstance(layer, (QConv, QLinear, QResidual)):
        name = getattr(layer, "activation", "residual-add")
        return LutSpec("remap", layer, name=f"remap-{name}", lut_range=rng)
    if isinstance(layer, QAvgPool):
        k2 = layer.kernel**2
        return LutSpec("divide", layer, divisor=k2, name=f"avgpool/{k2}",
                       lut_range=rng)
    if isinstance(layer, QGlobalAvgPool):
        return LutSpec("divide", layer, divisor=layer.spatial,
                       name=f"gap/{layer.spatial}", lut_range=rng)
    raise QuantizationError(f"no LUT for {type(layer).__name__}")


# --------------------------------------------------------------------------
# Program nodes
# --------------------------------------------------------------------------


@dataclass
class LinearStep:
    """Conv/FC MAC + merged remap LUT (+ optionally a MAC-domain max-pool)."""

    kind: ClassVar[str] = "linear"
    phase: ClassVar[str] = "linear"

    op: str  # 'conv' | 'fc'
    layer: QConv | QLinear
    lut: LutSpec
    name: str
    stat: str  # engine stat label ('conv' | 'fc')
    mac_values: int  # raw MAC outputs of the linear op
    out_values: int  # LUT-round size (after any fused pooling)
    fused_pool: QMaxPool | None = None
    s2c: bool = True
    #: Declarative encoding advice from the lowering rule (see
    #: repro.core.lowering.StepEncodingChoice); tuning configs override it.
    encoding: "StepEncodingChoice | None" = None
    _positions: np.ndarray | None = field(default=None, repr=False, compare=False)

    def output_positions(self) -> np.ndarray:
        """Coefficient indices of the valid outputs under Eq. 1 encoding."""
        if self._positions is None:
            if self.op == "conv":
                cin, h, w = self.layer.in_shape
                hp, wp = h + 2 * self.layer.pad, w + 2 * self.layer.pad
                self._positions = valid_output_positions(
                    self.layer.weight.shape[0], cin, hp, wp,
                    self.layer.weight.shape[2], self.layer.stride,
                )
            else:
                self._positions = valid_output_positions(
                    self.layer.out_features, self.layer.in_features, 1, 1, 1, 1
                )
        return self._positions


@dataclass
class PoolStep:
    """Standalone pooling: 'max' (LUT tree), 'sum' (window sum), 'gap'."""

    kind: ClassVar[str] = "pool"
    phase: ClassVar[str] = "pooling"

    op: str  # 'max' | 'sum' | 'gap'
    layer: QMaxPool | QAvgPool | QGlobalAvgPool
    name: str
    stat: str = "maxpool"


@dataclass
class RemapStep:
    """A bare LUT round (no linear layer): pooling division tables."""

    kind: ClassVar[str] = "remap"

    lut: LutSpec
    name: str
    stat: str  # engine stat label ('avgpool' | 'gap')
    phase: str = "pooling"
    s2c: bool = True
    encoding: "StepEncodingChoice | None" = None

    @property
    def source(self):
        return self.lut.source


@dataclass
class ReshapeStep:
    """Flatten: free on every backend (pure layout change)."""

    kind: ClassVar[str] = "reshape"
    phase: ClassVar[str] = "data"

    name: str


@dataclass
class ResidualStep:
    """Wide-scale branch join + one post-add LUT (paper's residual rule)."""

    kind: ClassVar[str] = "residual"
    phase: ClassVar[str] = "linear"

    layer: QResidual
    body: "AthenaProgram"
    shortcut: "AthenaProgram | None"
    lut: LutSpec
    name: str
    stat: str = "residual-add"
    s2c: bool = True
    encoding: "StepEncodingChoice | None" = None

    @property
    def skip_alpha(self) -> int:
        return self.layer.skip_alpha


@dataclass
class AthenaProgram:
    """A lowered model: the flat loop-step schedule plus its context."""

    steps: list
    config: QuantConfig
    params: FheParams
    name: str = "model"

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def mac_sources(self) -> list:
        """MAC-producing IR nodes in execution order (Fig. 4 x-axis)."""
        out: list = []
        for step in self.steps:
            if step.kind == "linear":
                out.append(step.layer)
            elif step.kind == "pool" and step.op in ("sum", "gap"):
                out.append(step.layer)
            elif step.kind == "residual":
                out.extend(step.body.mac_sources())
                if step.shortcut:
                    out.extend(step.shortcut.mac_sources())
                out.append(step.layer)
        return out

    def lut_steps(self) -> list:
        """Every step carrying a LUT spec, in execution order."""
        out: list = []
        for step in self.steps:
            if step.kind == "residual":
                out.extend(step.body.lut_steps())
                if step.shortcut:
                    out.extend(step.shortcut.lut_steps())
                out.append(step)
            elif step.kind in ("linear", "remap"):
                out.append(step)
        return out

    def build_luts(self, t: int | None = None) -> dict[str, FbsLut]:
        """Materialize every FBS table of the program, keyed by step name."""
        return {s.name: s.lut.build(self.config, t) for s in self.lut_steps()}

    def final_scale(self) -> float:
        """Output scale of the classifier head (softmax LUT input scale)."""
        for step in reversed(self.steps):
            if step.kind == "linear" and step.op == "fc":
                return step.layer.out_scale
        return 1.0

    def compile(self, params: FheParams | None = None, chunk: int | None = None):
        """Precompute this program's :class:`repro.core.plan.CompiledProgram`.

        Convenience wrapper over :func:`repro.core.plan.compile_program`
        (imported lazily — the plan module depends on this one).
        """
        from repro.core.plan import compile_program

        return compile_program(self, params or self.params, chunk=chunk)


# --------------------------------------------------------------------------
# Lowering pass — dispatch lives in the repro.core.lowering registry; this
# module registers the stock rules and keeps the public lower() entry point.
# --------------------------------------------------------------------------


def lower(model: QuantizedModel, params: FheParams = ATHENA) -> AthenaProgram:
    """Compile a quantized model into its Athena loop schedule."""
    steps = _lower_layers(model.layers, model.config, params, prefix="")
    # Tail fusion: the program's last LUT round feeds the decoder (or the
    # softmax LUTs, which consume slots), not another coefficient-encoded
    # linear layer, so its S2C is dropped.
    for step in reversed(steps):
        if step.kind in ("linear", "remap", "residual"):
            step.s2c = False
            break
    return AthenaProgram(steps, model.config, params, name=model.name)


def _lower_layers(layers: list, cfg: QuantConfig, params: FheParams,
                  prefix: str) -> list:
    """Registry-driven lowering (see :mod:`repro.core.lowering`).

    Kept under its historical name; raises
    :class:`repro.errors.UnsupportedLayer` for layer types with no
    registered rule.
    """
    return lowering.lower_layers(layers, cfg, params, prefix=prefix)


# --------------------------------------------------------------------------
# Executor protocol + driver
# --------------------------------------------------------------------------


class ProgramExecutor:
    """One handler per node kind; ``value`` semantics are executor-defined."""

    def linear(self, step: LinearStep, value):
        raise NotImplementedError

    def pool(self, step: PoolStep, value):
        raise NotImplementedError

    def remap(self, step: RemapStep, value):
        raise NotImplementedError

    def reshape(self, step: ReshapeStep, value):
        return value

    def residual(self, step: ResidualStep, main, skip):
        raise NotImplementedError


def run_program(program: AthenaProgram, executor: ProgramExecutor, value=None,
                perf=None):
    """Drive ``executor`` through the program's schedule.

    The driver owns the step order and the residual-branch recursion (body,
    then shortcut, then join) so every backend executes the identical
    schedule; executors only decide how each step is realized.

    ``perf`` (a :class:`repro.perf.PerfRecorder`) times each step under
    ``step:<phase>`` and counts ``step:<kind>`` ops. The ``step:`` prefix
    keeps driver-level accounting disjoint from the finer pipeline phases
    (pmult/extract/...) when both levels share one recorder — only the
    pipeline names participate in the phases-sum-to-wall contract.
    """
    for step in program.steps:
        span = perf.phase(f"step:{step.phase}") if perf is not None else nullcontext()
        with span:
            if step.kind == "residual":
                main = run_program(step.body, executor, value)
                skip = (
                    run_program(step.shortcut, executor, value)
                    if step.shortcut
                    else value
                )
                value = executor.residual(step, main, skip)
            else:
                value = getattr(executor, step.kind)(step, value)
        if perf is not None:
            perf.count(f"step:{step.kind}")
    return value


# --------------------------------------------------------------------------
# Plaintext integer executor (the exact reference semantics)
# --------------------------------------------------------------------------


class PlainIntExecutor(ProgramExecutor):
    """Bit-exact integer inference — what the ciphertext pipeline computes.

    Fused conv+max-pool steps are realized remap-then-pool (the LUT is
    monotone, so this equals the MAC-domain order the encrypted backends
    use, without tabulating the LUT). MAC peaks are recorded on the source
    IR nodes, preserving the calibration side effect (Fig. 4 / check_t).
    """

    def __init__(self, cfg: QuantConfig):
        self.cfg = cfg

    def linear(self, step: LinearStep, x_q: np.ndarray) -> np.ndarray:
        layer = step.layer
        if step.op == "conv":
            mac = _int_conv(x_q, layer)
        else:
            mac = x_q @ layer.weight.T + layer.bias
        layer.mac_peak = max(layer.mac_peak, int(np.abs(mac).max()))
        out = step.lut.apply_exact(_wrap_t(mac, self.cfg.t), self.cfg)
        if step.fused_pool is not None:
            out = self._maxpool(out, step.fused_pool)
        return out

    def pool(self, step: PoolStep, x_q: np.ndarray) -> np.ndarray:
        layer = step.layer
        if step.op == "max":
            return self._maxpool(x_q, layer)
        if step.op == "sum":
            cols, oh, ow = nn.im2col(x_q, layer.kernel, layer.kernel, layer.stride, 0)
            b, c = x_q.shape[0], x_q.shape[1]
            total = cols.reshape(b, oh, ow, c, layer.kernel**2).sum(axis=-1)
        else:  # gap
            total = x_q.sum(axis=(2, 3))
        layer.mac_peak = max(layer.mac_peak, int(np.abs(total).max()))
        return total

    def remap(self, step: RemapStep, total: np.ndarray) -> np.ndarray:
        out = step.lut.apply_exact(total, self.cfg)
        return out.transpose(0, 3, 1, 2) if out.ndim == 4 else out

    def reshape(self, step: ReshapeStep, x_q: np.ndarray) -> np.ndarray:
        return x_q.reshape(x_q.shape[0], -1)

    def residual(self, step: ResidualStep, main: np.ndarray,
                 skip: np.ndarray) -> np.ndarray:
        total = main + skip * step.skip_alpha
        step.layer.mac_peak = max(step.layer.mac_peak, int(np.abs(total).max()))
        return step.lut.apply_exact(_wrap_t(total, self.cfg.t), self.cfg)

    @staticmethod
    def _maxpool(x_q: np.ndarray, layer: QMaxPool) -> np.ndarray:
        cols, oh, ow = nn.im2col(x_q, layer.kernel, layer.kernel, layer.stride, 0)
        b, c = x_q.shape[0], x_q.shape[1]
        return (
            cols.reshape(b, oh, ow, c, layer.kernel**2)
            .max(axis=-1)
            .transpose(0, 3, 1, 2)
        )


# The stock lowering rules close over this module's step classes, so they
# register once the classes above exist (end of import).
lowering._register_stock_rules()
