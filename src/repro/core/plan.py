"""Compile-time plans: everything request-invariant, computed once.

The Athena loop splits naturally into two phases the original executor
interleaved on every request:

* **compile time** — work that depends only on the *model* and the
  *parameter set*: Eq. 1 kernel encoding (and its NTT operand form), bias
  placement, LUT tabulation + polynomial interpolation + BSGS schedule,
  the S2C evaluation-matrix diagonals, chunked-tile layouts with their
  exact LUT(0) dead-slot corrections, and the extraction position arrays.
* **run time** — ciphertext operations on the request's encrypted data.

:func:`compile_program` lowers an :class:`~repro.core.program.AthenaProgram`
into a :class:`CompiledProgram` holding all of the former, so
:class:`~repro.core.framework.CiphertextExecutor` becomes a thin interpreter
that performs only the latter. The compiled artifacts are plain
plaintext/array data — no key material and nothing secret — so a plan can be
built once, serialized (:mod:`repro.fhe.serialize`), cached on disk keyed by
``(model hash, params hash)``, and shared by every session that runs the
same model under the same parameters.

Bit-identity contract: a plan-driven run issues the *identical* homomorphic
op sequence as a plan-free run (the plan only moves the derivation of each
op's plaintext operand to compile time), so given the same keys and
randomness the outputs are bit-for-bit equal. ``tests/test_plan.py`` pins
this.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.encoding import encode_kernels, lane_span
from repro.core.program import AthenaProgram, LinearStep
from repro.errors import ParameterError
from repro.fhe.backend import current_backend
from repro.fhe.bfv import Plaintext
from repro.fhe.fbs import FbsLut, FbsPlan
from repro.fhe.params import FheParams
from repro.fhe.s2c import S2CPlan
from repro.fhe.serialize import params_fingerprint
from repro.fhe.slots import lane_positions

__all__ = [
    "CompiledLinear",
    "CompiledOpaque",
    "CompiledProgram",
    "LaneLayout",
    "TilePlan",
    "compile_program",
    "program_fingerprint",
]


def program_fingerprint(program: AthenaProgram) -> str:
    """Hex digest pinning a lowered model: structure, weights, LUT recipes.

    Two programs lowered from the same quantized model hash identically;
    any change to a weight, bias, scale, fusion decision, or quantization
    config changes the digest. Used (with the parameter fingerprint) as the
    on-disk plan-cache key.
    """
    h = hashlib.sha256()
    h.update(repr(program.config).encode())

    def feed(steps) -> None:
        for step in steps:
            h.update(f"|{step.kind}:{step.name}".encode())
            if step.kind == "linear":
                layer = step.layer
                stride = getattr(layer, "stride", 1)
                pad = getattr(layer, "pad", 0)
                h.update(
                    f":{step.op}:{step.s2c:d}:{stride}:{pad}"
                    f":{layer.activation}:{layer.out_scale}"
                    f":{step.fused_pool is not None:d}".encode()
                )
                h.update(np.ascontiguousarray(layer.weight).tobytes())
                h.update(np.ascontiguousarray(layer.bias).tobytes())
            elif step.kind == "remap":
                h.update(f":{step.lut.kind}:{step.lut.divisor}:{step.s2c:d}".encode())
            elif step.kind == "pool":
                h.update(f":{step.op}".encode())
            elif step.kind == "residual":
                h.update(f":{step.layer.skip_alpha}:{step.s2c:d}".encode())
                feed(step.body.steps)
                if step.shortcut:
                    feed(step.shortcut.steps)

    feed(program.steps)
    return h.hexdigest()


@dataclass(frozen=True)
class TilePlan:
    """One chunked five-step tile: its positions and exact corrections.

    ``correction`` is the slot-encoded ``-LUT(0)`` plaintext that zeroes the
    tile's dead pack slots before S2C (``None`` when LUT(0) = 0), making the
    later monomial shift-merge collision-free. The shift amount is
    ``offset`` — the tile's coefficient base in the merged layout.
    """

    offset: int
    positions: np.ndarray
    correction: Plaintext | None


@dataclass(frozen=True)
class LaneLayout:
    """Per-batch-size geometry of one linear round carrying ``lanes`` images.

    Lane ``d``'s input block sits at coefficient offset ``d * in_stride``
    (``in_stride`` = the step's :attr:`CompiledLinear.lane_span`), its MAC
    outputs at ``positions`` rows ``d*out_count .. (d+1)*out_count - 1``, and
    its refreshed LWE samples land at pack rows ``d * out_stride + i`` —
    spaced so that after S2C each lane's coefficients are exactly where the
    *next* layer's lane ``d`` expects its input (``out_stride`` = the next
    step's lane span; the tail packs compactly at ``out_stride = out_count``).
    Gap rows are trivial zero encryptions, exact zeros end to end.
    """

    lanes: int
    in_stride: int
    out_stride: int
    #: All lanes' extraction positions, lane-major (lanes * out_count).
    positions: np.ndarray
    #: Height of the zero-padded LWE batch handed to packing.
    pack_rows: int
    #: Target pack row of each extracted sample (aligned with ``positions``).
    pack_map: np.ndarray
    #: Bias replicated into every lane (``None`` when the bias is zero).
    bias: Plaintext | None


@dataclass
class CompiledLinear:
    """All request-invariant artifacts of one conv/FC five-step round."""

    index: int
    name: str
    op: str  # 'conv' | 'fc'
    s2c: bool
    kind: str = field(default="linear", init=False)
    #: Eq. 1 kernel polynomial, NTT operand pre-warmed.
    kernel: Plaintext = None
    #: Bias placed at the output positions (``None`` when the bias is zero).
    bias: Plaintext | None = None
    #: Coefficient indices of the valid outputs (extraction positions).
    positions: np.ndarray = None
    out_count: int = 0
    #: Materialized FBS table (interpolated once, shared via the cache).
    lut: FbsLut = None
    #: BSGS schedule of the LUT polynomial, constants pre-encoded.
    fbs: FbsPlan = None
    #: Chunked refresh layout; ``None`` when the round runs as one tile.
    tiles: tuple[TilePlan, ...] | None = None
    #: Coefficient span of one image through this round (Eq. 1 workspace).
    lane_span: int = 0
    #: Pack-row stride between lanes' outputs (annotated by the lane chain).
    lane_out_stride: int = 0
    #: Lazily built per-batch-size layouts, keyed by lane count.
    _lane_layouts: dict = field(
        default_factory=dict, init=False, repr=False, compare=False)

    def lane_layout(self, lanes: int, params: FheParams) -> LaneLayout:
        """Build (and cache) the geometry for a ``lanes``-image batch."""
        cached = self._lane_layouts.get(lanes)
        if cached is not None:
            return cached
        if lanes < 1:
            raise ParameterError(f"need at least one lane, got {lanes}")
        if self.tiles is not None:
            raise ParameterError("chunked rounds do not support lane batching")
        if self.lane_span <= 0 or self.lane_out_stride <= 0:
            raise ParameterError(
                f"step {self.name!r} carries no lane geometry (stale plan?)")
        n = params.n
        if lanes * self.lane_span > n:
            raise ParameterError(
                f"{lanes} lanes of span {self.lane_span} exceed n={n}")
        positions = lane_positions(self.positions, self.lane_span, lanes, n)
        pack_rows = (lanes - 1) * self.lane_out_stride + self.out_count
        if pack_rows > n:
            raise ParameterError(
                f"{lanes} output lanes need {pack_rows} pack rows, have {n}")
        pack_map = lane_positions(
            np.arange(self.out_count, dtype=np.int64),
            self.lane_out_stride, lanes, n)
        bias = None
        if self.bias is not None:
            coeffs = np.zeros(n, dtype=np.int64)
            for d in range(lanes):
                coeffs[self.positions + d * self.lane_span] = \
                    self.bias.coeffs[self.positions]
            bias = Plaintext.from_coeffs(coeffs, params)
            bias.add_operand()
        layout = LaneLayout(
            lanes=lanes,
            in_stride=self.lane_span,
            out_stride=self.lane_out_stride,
            positions=positions,
            pack_rows=pack_rows,
            pack_map=pack_map,
            bias=bias,
        )
        self._lane_layouts[lanes] = layout
        return layout


@dataclass(frozen=True)
class CompiledOpaque:
    """Placeholder for steps the ciphertext backend realizes without
    compile-time artifacts (reshape) or does not support at all (pooling,
    standalone remap, residual, MAC-domain fusion) — the executor raises
    its usual error when such a step is actually reached."""

    index: int
    name: str
    kind: str


@dataclass
class CompiledProgram:
    """A fully lowered + precomputed model for one parameter set.

    ``steps`` aligns 1:1 with the source program's top-level steps; the
    executor resolves each runtime step to its artifacts *by index*
    (never by object identity, so one plan serves any equivalent
    re-lowered program). Contains no key material.
    """

    steps: list
    params: FheParams
    chunk: int | None
    s2c: S2CPlan
    model_hash: str
    name: str = "model"
    #: Images one ciphertext can carry through the whole program (>= 1).
    #: 1 means single-image only — chunked plans, non-reshape opaque steps,
    #: and LUTs with LUT(0) != 0 (whose dead slots are not exact zeros)
    #: all disable lane batching.
    batch_capacity: int = 1

    def bind(self, program: AthenaProgram, params: FheParams) -> None:
        """Validate that this plan matches ``program`` under ``params``."""
        if params_fingerprint(params) != params_fingerprint(self.params):
            raise ParameterError("plan was compiled for different parameters")
        if len(self.steps) != len(program.steps):
            raise ParameterError(
                f"plan has {len(self.steps)} steps, program has "
                f"{len(program.steps)}"
            )
        for cstep, step in zip(self.steps, program.steps):
            want = "linear" if isinstance(cstep, CompiledLinear) else cstep.kind
            if want != step.kind:
                raise ParameterError(
                    f"plan step {cstep.index} is {want!r}, "
                    f"program has {step.kind!r}"
                )


def _annotate_lanes(steps: list, params: FheParams, chunk: int | None) -> int:
    """Chain lane geometry across the linear steps; return the batch capacity.

    Each interior layer's lanes must exit at the *next* layer's input stride
    (its lane span) so that S2C drops lane ``d``'s outputs exactly where lane
    ``d``'s next input block begins; the tail packs lanes compactly. Capacity
    is the ring-size bound ``min_j n // lane_span_j`` (and ``n // out_count``
    for the compact tail). The chain is re-derived after deserialization, so
    a loaded plan batches identically to a freshly compiled one.
    """
    linears = [s for s in steps if isinstance(s, CompiledLinear)]
    if not linears:
        return 1
    for cur, nxt in zip(linears, linears[1:]):
        cur.lane_out_stride = nxt.lane_span
    tail = linears[-1]
    tail.lane_out_stride = tail.out_count
    if chunk is not None:
        return 1
    capacity = params.n
    for step in steps:
        if isinstance(step, CompiledLinear):
            if step.tiles is not None or int(step.lut.values[0]) != 0:
                return 1
            capacity = min(capacity, params.n // max(1, step.lane_span))
        elif step.kind != "reshape":
            # Steps the ciphertext executor cannot run anyway.
            return 1
    capacity = min(capacity, params.n // max(1, tail.out_count))
    return max(1, capacity)


def _build_tiles(
    positions: np.ndarray, lut: FbsLut, params: FheParams, chunk: int | None
) -> tuple[TilePlan, ...] | None:
    """Tile layout of one round, or ``None`` for the single-tile case."""
    if chunk is None or positions.shape[0] <= chunk:
        return None
    lut0 = int(lut.values[0])
    tiles = []
    for off in range(0, positions.shape[0], chunk):
        pos = positions[off : off + chunk]
        correction = None
        if lut0:
            vals = np.zeros(params.n, dtype=np.int64)
            vals[pos.shape[0] :] = -lut0 % params.t
            correction = Plaintext.from_slots(vals, params)
            correction.add_operand()
        tiles.append(TilePlan(int(off), pos, correction))
    return tuple(tiles)


def _compile_linear(
    step: LinearStep,
    index: int,
    program: AthenaProgram,
    params: FheParams,
    chunk: int | None,
) -> CompiledLinear:
    layer = step.layer
    n = params.n
    if step.op == "conv":
        cin, h, w = layer.in_shape
        hp, wp = h + 2 * layer.pad, w + 2 * layer.pad
        kernel_coeffs = encode_kernels(layer.weight, hp, wp, n)
        span = lane_span(layer.weight.shape[0], cin, hp, wp, layer.weight.shape[-1])
    else:
        # An FC layer is the Wk = H = W = 1 case of the Eq. 1 encoding.
        kernel_coeffs = encode_kernels(layer.weight[:, :, None, None], 1, 1, n)
        span = lane_span(layer.weight.shape[0], layer.weight.shape[1], 1, 1, 1)
    kernel = Plaintext.from_coeffs(kernel_coeffs, params)
    kernel.pmult_operand()

    positions = step.output_positions()
    if positions.shape[0] > n:
        raise ParameterError("more outputs than slots")

    bias = None
    if np.any(layer.bias):
        bias_coeffs = np.zeros(n, dtype=np.int64)
        reps = positions.shape[0] // layer.bias.shape[0]
        bias_coeffs[positions] = np.repeat(layer.bias, reps)
        bias = Plaintext.from_coeffs(bias_coeffs, params)
        bias.add_operand()

    lut = step.lut.build(program.config, params.t)
    fbs = FbsPlan.from_lut(lut).materialize(params)
    return CompiledLinear(
        index=index,
        name=step.name,
        op=step.op,
        s2c=step.s2c,
        kernel=kernel,
        bias=bias,
        positions=positions,
        out_count=positions.shape[0],
        lut=lut,
        fbs=fbs,
        tiles=_build_tiles(positions, lut, params, chunk),
        lane_span=span,
    )


def compile_program(
    program: AthenaProgram,
    params: FheParams | None = None,
    chunk: int | None = None,
) -> CompiledProgram:
    """Precompute every request-invariant artifact of ``program``.

    ``chunk`` caps the LWE outputs per refresh round exactly as in
    :meth:`AthenaPipeline.run_program`; rounds exceeding the cap get a
    precomputed tile layout. Steps the ciphertext backend cannot execute
    compile to opaque placeholders so that compiling a program never fails
    where running it would have succeeded.
    """
    if params is None:
        params = program.params
    if chunk is not None and chunk < 1:
        raise ParameterError(f"chunk cap must be >= 1, got {chunk}")
    # Compile-time NTT transforms (cached plaintext operands) are labeled
    # so a counting backend separates them from per-request work.
    with current_backend().phase("compile"):
        steps: list = []
        for i, step in enumerate(program.steps):
            if step.kind == "linear" and step.fused_pool is None:
                steps.append(_compile_linear(step, i, program, params, chunk))
            else:
                steps.append(CompiledOpaque(i, step.name, step.kind))
        capacity = _annotate_lanes(steps, params, chunk)
        return CompiledProgram(
            steps=steps,
            params=params,
            chunk=chunk,
            s2c=S2CPlan.build(params),
            model_hash=program_fingerprint(program),
            name=program.name,
            batch_capacity=capacity,
        )
