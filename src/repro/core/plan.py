"""Compile-time plans: everything request-invariant, computed once.

The Athena loop splits naturally into two phases the original executor
interleaved on every request:

* **compile time** — work that depends only on the *model* and the
  *parameter set*: Eq. 1 kernel encoding (and its NTT operand form), bias
  placement, LUT tabulation + polynomial interpolation + BSGS schedule,
  the S2C evaluation-matrix diagonals, chunked-tile layouts with their
  exact LUT(0) dead-slot corrections, and the extraction position arrays.
* **run time** — ciphertext operations on the request's encrypted data.

:func:`compile_program` lowers an :class:`~repro.core.program.AthenaProgram`
into a :class:`CompiledProgram` holding all of the former, so
:class:`~repro.core.framework.CiphertextExecutor` becomes a thin interpreter
that performs only the latter. The compiled artifacts are plain
plaintext/array data — no key material and nothing secret — so a plan can be
built once, serialized (:mod:`repro.fhe.serialize`), cached on disk keyed by
``(model hash, params hash)``, and shared by every session that runs the
same model under the same parameters.

Feature layouts
---------------

Interior layers chain through :class:`FeatureLayout` descriptors: the
compiler walks the program once, computes the coefficient layout each
step *requires* of its input (a padded grid for a pad > 0 convolution,
compact rows for an FC head), and compiles every refresh round to pack
its LWE samples directly into the next consumer's layout
(:attr:`pack_rows`). The gap rows are trivial zero encryptions, and a
LUT(0) != 0 dead-slot correction keeps them *exact* zeros after S2C —
which is precisely what lets a placed layout's margin act as the next
convolution's zero padding. Compact targets keep the historical
pack-nothing path, so plain conv/FC chains compile to byte-identical
plans.

MAC-domain max-pool fusion compiles to a :class:`MaxRound` tree:
``max(a, b) = b + relu(a - b)`` evaluated with one exact monomial shift,
one ReLU refresh round placed back onto the kept grid cells, and one
ciphertext subtraction per round — ``2*log2(k)`` rounds for a ``k x k``
(kernel == stride, power of two) window, batched SIMD-wide across all
windows and channels.

Per-step encoding choices (:class:`repro.core.lowering.StepEncodingChoice`,
optionally overridden by a :class:`repro.core.lowering.TuningConfig` from
``repro.core.tune``) resolve here into concrete artifacts: the refresh
tile size, the FBS BSGS split, and the Table 2 strategy label the cost
model uses. The tuning config is folded into :func:`program_fingerprint`
so differently-tuned plans never collide in a cache.

Bit-identity contract: a plan-driven run issues the *identical* homomorphic
op sequence as a plan-free run (the plan only moves the derivation of each
op's plaintext operand to compile time), so given the same keys and
randomness the outputs are bit-for-bit equal. ``tests/test_plan.py`` pins
this.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.encoding import (
    encode_kernels,
    grid_output_positions,
    lane_span,
)
from repro.core.lowering import DEFAULT_ENCODING, StepEncodingChoice, TuningConfig
from repro.core.program import AthenaProgram, LinearStep
from repro.errors import EncodingError, ParameterError
from repro.fhe.backend import current_backend
from repro.fhe.bfv import Plaintext
from repro.fhe.fbs import FbsLut, FbsPlan
from repro.fhe.params import FheParams
from repro.fhe.s2c import S2CPlan
from repro.fhe.serialize import params_fingerprint
from repro.fhe.slots import lane_positions

__all__ = [
    "CompiledLinear",
    "CompiledOpaque",
    "CompiledPool",
    "CompiledProgram",
    "CompiledRemap",
    "CompiledResidual",
    "FeatureLayout",
    "LaneLayout",
    "MaxRound",
    "TilePlan",
    "compile_program",
    "program_fingerprint",
]


def program_fingerprint(program: AthenaProgram,
                        tuning: TuningConfig | None = None) -> str:
    """Hex digest pinning a lowered model: structure, weights, LUT recipes.

    Two programs lowered from the same quantized model hash identically;
    any change to a weight, bias, scale, fusion decision, grouped-conv
    topology, or quantization config changes the digest — and so does the
    ``tuning`` config (via its stable tag), so a plan cache keyed on this
    digest never serves a differently-tuned layout. Used (with the
    parameter fingerprint) as the on-disk plan-cache key.
    """
    h = hashlib.sha256()
    h.update(repr(program.config).encode())
    if tuning:
        h.update(f"|tuning:{tuning.tag()}".encode())

    def feed(steps) -> None:
        for step in steps:
            h.update(f"|{step.kind}:{step.name}".encode())
            if step.kind == "linear":
                layer = step.layer
                stride = getattr(layer, "stride", 1)
                pad = getattr(layer, "pad", 0)
                groups = getattr(layer, "groups", 1)
                h.update(
                    f":{step.op}:{step.s2c:d}:{stride}:{pad}"
                    f":{layer.activation}:{layer.out_scale}"
                    f":{step.fused_pool is not None:d}".encode()
                )
                if groups != 1:
                    h.update(f":g{groups}".encode())
                # Mixed-precision material is appended only when present so
                # digests of legacy single-config models are unchanged.
                bits = getattr(layer, "bits", None)
                lut_r = getattr(layer, "lut_range", None)
                if bits is not None or lut_r:
                    h.update(
                        f":mp:{bits.label if bits else '-'}:{lut_r or 0}".encode()
                    )
                h.update(np.ascontiguousarray(layer.weight).tobytes())
                h.update(np.ascontiguousarray(layer.bias).tobytes())
            elif step.kind == "remap":
                h.update(f":{step.lut.kind}:{step.lut.divisor}:{step.s2c:d}".encode())
                if step.lut.lut_range:
                    h.update(f":r{step.lut.lut_range}".encode())
            elif step.kind == "pool":
                h.update(f":{step.op}".encode())
            elif step.kind == "residual":
                h.update(f":{step.layer.skip_alpha}:{step.s2c:d}".encode())
                if getattr(step.layer, "lut_range", None):
                    h.update(f":r{step.layer.lut_range}".encode())
                feed(step.body.steps)
                if step.shortcut:
                    feed(step.shortcut.steps)

    feed(program.steps)
    return h.hexdigest()


# --------------------------------------------------------------------------
# Feature layouts
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FeatureLayout:
    """Where a logical feature tensor lives in a ciphertext's coefficients.

    ``grid=None`` is the compact layout: element ``i`` (C-order) at
    coefficient ``i`` — the historical layer-chaining convention. With a
    ``(gh, gw)`` grid, channel ``c``'s image sits inside an interior window
    at ``offset=(oy, ox)``: element ``(c, i, j)`` at coefficient
    ``c*gh*gw + (oy+i)*gw + (ox+j)``, with the margin coefficients *exact*
    zeros (the refresh-placement invariant). A padded-grid layout is how a
    pad > 0 interior convolution receives its zero padding for free.
    """

    shape: tuple
    grid: tuple | None = None
    offset: tuple = (0, 0)

    @property
    def count(self) -> int:
        return int(math.prod(self.shape))

    @property
    def span(self) -> int:
        """One-past-the-last coefficient the layout may occupy."""
        if self.grid is None:
            return self.count
        return self.shape[0] * self.grid[0] * self.grid[1]

    def is_compact(self) -> bool:
        if self.grid is None:
            return True
        return (
            len(self.shape) == 3
            and self.grid == tuple(self.shape[1:])
            and tuple(self.offset) == (0, 0)
        )

    def rows(self) -> np.ndarray:
        """Coefficient index of every logical element, C-order."""
        if self.is_compact():
            return np.arange(self.count, dtype=np.int64)
        if len(self.shape) != 3:
            raise ParameterError(
                f"grid layout needs a (C, H, W) shape, got {self.shape}")
        c, h, w = self.shape
        gh, gw = self.grid
        oy, ox = self.offset
        if oy < 0 or ox < 0 or oy + h > gh or ox + w > gw:
            raise ParameterError(
                f"image {h}x{w} at offset ({oy},{ox}) overflows grid {gh}x{gw}")
        cidx = np.arange(c, dtype=np.int64)[:, None, None] * (gh * gw)
        yidx = (np.arange(h, dtype=np.int64)[None, :, None] + oy) * gw
        xidx = np.arange(w, dtype=np.int64)[None, None, :] + ox
        return (cidx + yidx + xidx).reshape(-1)


def _compact(shape) -> FeatureLayout:
    return FeatureLayout(tuple(int(d) for d in shape))


def _is_plain(layout: FeatureLayout | None) -> bool:
    return layout is None or layout.is_compact()


@dataclass(frozen=True)
class TilePlan:
    """One chunked five-step tile: its positions and exact corrections.

    ``correction`` is the slot-encoded ``-LUT(0)`` plaintext that zeroes the
    tile's dead pack slots before S2C (``None`` when LUT(0) = 0), making the
    later monomial shift-merge collision-free. The shift amount is
    ``offset`` — the tile's coefficient base in the merged layout.
    """

    offset: int
    positions: np.ndarray
    correction: Plaintext | None


@dataclass(frozen=True)
class MaxRound:
    """One level of a MAC-domain max-pool tree.

    The executor evaluates ``max(a, b) = b + relu(a - b)`` across all
    windows at once: ``shifted = ct * X^(n - delta)`` holds ``-b`` on top
    of every ``a`` cell, ``add`` forms the differences, a ReLU refresh
    round placed back onto ``positions`` (the kept cells; relu(0) = 0
    keeps the off-row coefficients exact) rectifies them, and
    ``sub(relu_ct, shifted)`` adds ``b`` back. ``delta`` is the
    coefficient distance between a window cell and its round partner.
    """

    delta: int
    positions: np.ndarray


@dataclass(frozen=True)
class LaneLayout:
    """Per-batch-size geometry of one linear round carrying ``lanes`` images.

    Lane ``d``'s input block sits at coefficient offset ``d * in_stride``
    (``in_stride`` = the step's :attr:`CompiledLinear.lane_span`), its MAC
    outputs at ``positions`` rows ``d*out_count .. (d+1)*out_count - 1``, and
    its refreshed LWE samples land at pack rows ``d * out_stride + i`` —
    spaced so that after S2C each lane's coefficients are exactly where the
    *next* layer's lane ``d`` expects its input (``out_stride`` = the next
    step's lane span; the tail packs compactly at ``out_stride = out_count``).
    Gap rows are trivial zero encryptions, exact zeros end to end.
    """

    lanes: int
    in_stride: int
    out_stride: int
    #: All lanes' extraction positions, lane-major (lanes * out_count).
    positions: np.ndarray
    #: Height of the zero-padded LWE batch handed to packing.
    pack_rows: int
    #: Target pack row of each extracted sample (aligned with ``positions``).
    pack_map: np.ndarray
    #: Bias replicated into every lane (``None`` when the bias is zero).
    bias: Plaintext | None


@dataclass
class CompiledLinear:
    """All request-invariant artifacts of one conv/FC five-step round."""

    index: int
    name: str
    op: str  # 'conv' | 'fc'
    s2c: bool
    kind: str = field(default="linear", init=False)
    #: Eq. 1 kernel polynomial, NTT operand pre-warmed.
    kernel: Plaintext = None
    #: Bias placed at the (pre-pool) output positions (``None`` when zero).
    bias: Plaintext | None = None
    #: Coefficient indices of the valid outputs (extraction positions).
    #: With a fused pool these are the pooled winners, not all MAC outputs.
    positions: np.ndarray = None
    out_count: int = 0
    #: Materialized FBS table (interpolated once, shared via the cache).
    lut: FbsLut = None
    #: BSGS schedule of the LUT polynomial, constants pre-encoded.
    fbs: FbsPlan = None
    #: Chunked refresh layout; ``None`` when the round runs as one tile.
    tiles: tuple[TilePlan, ...] | None = None
    #: Coefficient span of one image through this round (Eq. 1 workspace).
    lane_span: int = 0
    #: Pack-row stride between lanes' outputs (annotated by the lane chain).
    lane_out_stride: int = 0
    #: Table 2 encoding strategy label ('athena' | 'cheetah') for the cost
    #: model; execution on the single-ciphertext backend is identical.
    strategy: str = "athena"
    #: Target pack rows of the next consumer's layout (``None`` = compact).
    pack_rows: np.ndarray | None = None
    #: Slot-encoded -LUT(0) over the placed layout's gap rows (``None``
    #: when LUT(0) = 0 or the target is compact).
    pack_correction: Plaintext | None = None
    #: MAC-domain max-pool tree (``None`` when no fused pool).
    pool_rounds: tuple[MaxRound, ...] | None = None
    #: Shared MAC-domain ReLU table + schedule for the tree rounds.
    pool_lut: FbsLut | None = None
    pool_fbs: FbsPlan | None = None
    #: Lazily built per-batch-size layouts, keyed by lane count.
    _lane_layouts: dict = field(
        default_factory=dict, init=False, repr=False, compare=False)

    def lane_layout(self, lanes: int, params: FheParams) -> LaneLayout:
        """Build (and cache) the geometry for a ``lanes``-image batch."""
        cached = self._lane_layouts.get(lanes)
        if cached is not None:
            return cached
        if lanes < 1:
            raise ParameterError(f"need at least one lane, got {lanes}")
        if self.tiles is not None:
            raise ParameterError("chunked rounds do not support lane batching")
        if self.pack_rows is not None or self.pool_rounds is not None:
            raise ParameterError(
                "placed layouts and fused pooling do not support lane batching")
        if self.lane_span <= 0 or self.lane_out_stride <= 0:
            raise ParameterError(
                f"step {self.name!r} carries no lane geometry (stale plan?)")
        n = params.n
        if lanes * self.lane_span > n:
            raise ParameterError(
                f"{lanes} lanes of span {self.lane_span} exceed n={n}")
        positions = lane_positions(self.positions, self.lane_span, lanes, n)
        pack_rows = (lanes - 1) * self.lane_out_stride + self.out_count
        if pack_rows > n:
            raise ParameterError(
                f"{lanes} output lanes need {pack_rows} pack rows, have {n}")
        pack_map = lane_positions(
            np.arange(self.out_count, dtype=np.int64),
            self.lane_out_stride, lanes, n)
        bias = None
        if self.bias is not None:
            coeffs = np.zeros(n, dtype=np.int64)
            for d in range(lanes):
                coeffs[self.positions + d * self.lane_span] = \
                    self.bias.coeffs[self.positions]
            bias = Plaintext.from_coeffs(coeffs, params)
            bias.add_operand()
        layout = LaneLayout(
            lanes=lanes,
            in_stride=self.lane_span,
            out_stride=self.lane_out_stride,
            positions=positions,
            pack_rows=pack_rows,
            pack_map=pack_map,
            bias=bias,
        )
        self._lane_layouts[lanes] = layout
        return layout


@dataclass
class CompiledPool:
    """A 'sum'/'gap' pooling window realized as one depthwise Eq. 1 PMult.

    The kernel is a dense block-diagonal all-ones stack — channel ``c``'s
    window sum accumulates only from input channel ``c`` — so the product
    carries every window total at :attr:`positions`, where the following
    :class:`CompiledRemap` refreshes through the division table.
    """

    index: int
    name: str
    kind: str = field(default="pool", init=False)
    kernel: Plaintext = None
    positions: np.ndarray = None
    out_count: int = 0


@dataclass
class CompiledRemap:
    """A bare LUT refresh round (the pooling division tables)."""

    index: int
    name: str
    s2c: bool
    kind: str = field(default="remap", init=False)
    positions: np.ndarray = None
    out_count: int = 0
    lut: FbsLut = None
    fbs: FbsPlan = None
    pack_rows: np.ndarray | None = None
    pack_correction: Plaintext | None = None


@dataclass
class CompiledResidual:
    """A residual block: compiled branches + the wide-scale join round.

    The branch tails pack into a shared join layout (the block input's
    layout for an identity skip, compact rows for projection shortcuts),
    so the join is one ciphertext addition (``main + alpha * skip``)
    followed by a post-add LUT refresh placed into the next consumer's
    layout.
    """

    index: int
    name: str
    s2c: bool
    kind: str = field(default="residual", init=False)
    alpha: int = 1
    positions: np.ndarray = None
    out_count: int = 0
    lut: FbsLut = None
    fbs: FbsPlan = None
    pack_rows: np.ndarray | None = None
    pack_correction: Plaintext | None = None
    body: list = field(default_factory=list)
    shortcut: list | None = None


@dataclass(frozen=True)
class CompiledOpaque:
    """Placeholder for steps with no compile-time artifacts (reshape), steps
    whose artifacts did not fit this parameter set (the executor raises its
    usual error when such a step is actually reached), or — with ``stub``
    set — complex steps elided from the wire form, which
    :meth:`CompiledProgram.needs_upgrade` flags for recompilation."""

    index: int
    name: str
    kind: str
    stub: bool = False


@dataclass
class CompiledProgram:
    """A fully lowered + precomputed model for one parameter set.

    ``steps`` aligns 1:1 with the source program's top-level steps; the
    executor resolves each runtime step to its artifacts *by index*
    (never by object identity, so one plan serves any equivalent
    re-lowered program). Contains no key material.
    """

    steps: list
    params: FheParams
    chunk: int | None
    s2c: S2CPlan
    model_hash: str
    name: str = "model"
    #: Images one ciphertext can carry through the whole program (>= 1).
    #: 1 means single-image only — chunked plans, placed layouts, pooling,
    #: residual joins, and LUTs with LUT(0) != 0 (whose dead slots are not
    #: exact zeros) all disable lane batching.
    batch_capacity: int = 1
    #: The per-step encoding overrides this plan was compiled under.
    tuning: TuningConfig | None = None

    def bind(self, program: AthenaProgram, params: FheParams) -> None:
        """Validate that this plan matches ``program`` under ``params``."""
        if params_fingerprint(params) != params_fingerprint(self.params):
            raise ParameterError("plan was compiled for different parameters")
        if len(self.steps) != len(program.steps):
            raise ParameterError(
                f"plan has {len(self.steps)} steps, program has "
                f"{len(program.steps)}"
            )
        for cstep, step in zip(self.steps, program.steps):
            want = cstep.kind
            if want != step.kind:
                raise ParameterError(
                    f"plan step {cstep.index} is {want!r}, "
                    f"program has {step.kind!r}"
                )

    def needs_upgrade(self) -> bool:
        """True when wire-form stubs must be recompiled before execution."""
        return any(getattr(s, "stub", False) for s in self.steps)


def _annotate_lanes(steps: list, params: FheParams, chunk: int | None) -> int:
    """Chain lane geometry across the linear steps; return the batch capacity.

    Each interior layer's lanes must exit at the *next* layer's input stride
    (its lane span) so that S2C drops lane ``d``'s outputs exactly where lane
    ``d``'s next input block begins; the tail packs lanes compactly. Capacity
    is the ring-size bound ``min_j n // lane_span_j`` (and ``n // out_count``
    for the compact tail). The chain is re-derived after deserialization, so
    a loaded plan batches identically to a freshly compiled one.
    """
    linears = [s for s in steps if isinstance(s, CompiledLinear)]
    if not linears:
        return 1
    for cur, nxt in zip(linears, linears[1:]):
        cur.lane_out_stride = nxt.lane_span
    tail = linears[-1]
    tail.lane_out_stride = tail.out_count
    if chunk is not None:
        return 1
    capacity = params.n
    for step in steps:
        if isinstance(step, CompiledLinear):
            if (
                step.tiles is not None
                or step.pack_rows is not None
                or step.pool_rounds is not None
                or int(step.lut.values[0]) != 0
            ):
                return 1
            capacity = min(capacity, params.n // max(1, step.lane_span))
        elif step.kind != "reshape":
            # Steps whose geometry is single-image by construction (pooling,
            # residual joins) or that the executor cannot run anyway.
            return 1
    capacity = min(capacity, params.n // max(1, tail.out_count))
    return max(1, capacity)


def _build_tiles(
    positions: np.ndarray, lut: FbsLut, params: FheParams, chunk: int | None
) -> tuple[TilePlan, ...] | None:
    """Tile layout of one round, or ``None`` for the single-tile case."""
    if chunk is None or positions.shape[0] <= chunk:
        return None
    lut0 = int(lut.values[0])
    tiles = []
    for off in range(0, positions.shape[0], chunk):
        pos = positions[off : off + chunk]
        correction = None
        if lut0:
            vals = np.zeros(params.n, dtype=np.int64)
            vals[pos.shape[0] :] = -lut0 % params.t
            correction = Plaintext.from_slots(vals, params)
            correction.add_operand()
        tiles.append(TilePlan(int(off), pos, correction))
    return tuple(tiles)


def _pack_rows_for(target: FeatureLayout | None, out_count: int,
                   params: FheParams) -> np.ndarray | None:
    """Resolve a refresh round's placement rows (``None`` = compact)."""
    if target is None or target.is_compact():
        return None
    if target.count != out_count:
        raise ParameterError(
            f"target layout holds {target.count} values, round produces "
            f"{out_count}")
    if target.span > params.n:
        raise ParameterError(
            f"target layout span {target.span} exceeds n={params.n}")
    return target.rows()


def _pack_correction(pack_rows: np.ndarray | None, lut: FbsLut,
                     params: FheParams) -> Plaintext | None:
    """Exact -LUT(0) plaintext over a placed layout's gap rows."""
    if pack_rows is None:
        return None
    lut0 = int(lut.values[0])
    if not lut0:
        return None
    vals = np.full(params.n, -lut0 % params.t, dtype=np.int64)
    vals[pack_rows] = 0
    correction = Plaintext.from_slots(vals, params)
    correction.add_operand()
    return correction


def _fbs_plan(lut: FbsLut, choice: StepEncodingChoice | None,
              params: FheParams) -> FbsPlan:
    bs = choice.bsgs if choice is not None else None
    return FbsPlan.from_lut(lut, bs=bs).materialize(params)


def _resolve_choice(step, tuning: TuningConfig | None) -> StepEncodingChoice:
    """Tuning override > rule default > global default."""
    if tuning is not None:
        override = tuning.get(step.name)
        if override is not None:
            return override
    return getattr(step, "encoding", None) or DEFAULT_ENCODING


def _step_chunk(choice: StepEncodingChoice, chunk: int | None) -> int | None:
    return choice.chunk if choice.chunk is not None else chunk


# --------------------------------------------------------------------------
# Layout-resolution walk: logical shapes and required layouts
# --------------------------------------------------------------------------


def _shape_after(step, shape: tuple | None) -> tuple | None:
    """Logical output shape of one step (``None`` when untrackable)."""
    if step.kind == "linear":
        if step.op == "conv":
            c, oh, ow = step.layer.out_shape
            if step.fused_pool is not None:
                k, s = step.fused_pool.kernel, step.fused_pool.stride
                oh, ow = (oh - k) // s + 1, (ow - k) // s + 1
            return (c, oh, ow)
        return (step.layer.out_features,)
    if shape is None:
        return None
    if step.kind == "pool":
        if step.op == "gap":
            return (shape[0],)
        c, h, w = shape
        k, s = step.layer.kernel, step.layer.stride
        return (c, (h - k) // s + 1, (w - k) // s + 1)
    if step.kind == "reshape":
        return (int(math.prod(shape)),)
    if step.kind == "residual":
        for sub in step.body.steps:
            shape = _shape_after(sub, shape)
        return shape
    return shape  # remap


def _initial_shape(steps: list) -> tuple | None:
    for step in steps:
        if step.kind == "linear":
            if step.op == "conv":
                return tuple(step.layer.in_shape)
            return (step.layer.in_features,)
        return None
    return None


def _required_layout(steps: list, j: int, shape: tuple | None,
                     final_target: FeatureLayout | None) -> FeatureLayout | None:
    """Input layout ``steps[j]`` needs (looking through free reshapes)."""
    while j < len(steps) and steps[j].kind == "reshape":
        shape = _shape_after(steps[j], shape)
        j += 1
    if j >= len(steps):
        return final_target
    step = steps[j]
    if step.kind == "linear":
        if step.op == "conv":
            layer = step.layer
            cin, h, w = layer.in_shape
            if layer.pad:
                p = layer.pad
                return FeatureLayout(
                    (cin, h, w), (h + 2 * p, w + 2 * p), (p, p))
            return FeatureLayout((cin, h, w))
        return FeatureLayout((step.layer.in_features,))
    if step.kind in ("pool", "remap"):
        return _compact(shape) if shape is not None else None
    if step.kind == "residual":
        inner = _required_layout(step.body.steps, 0, shape, None)
        if inner is None and shape is not None:
            return _compact(shape)
        return inner
    return final_target


# --------------------------------------------------------------------------
# Per-kind compilation
# --------------------------------------------------------------------------


def _mac_relu_lut(t: int) -> FbsLut:
    """The MAC-domain rectifier every max-tree round refreshes through."""
    return FbsLut.from_function(lambda v: np.maximum(v, 0), t, name="mac-relu")


def _pool_tree(layer, pool, gh: int, gw: int, oy: int, ox: int,
               n: int) -> tuple[tuple[MaxRound, ...], np.ndarray]:
    """Build the MAC-domain max rounds + final pooled extraction positions.

    Cell ``(cp, a, b)`` of the conv's output grid sits at coefficient
    ``t_index - cp*cin*gh*gw + (oy + a*s)*gw + (ox + b*s)``; window
    partners are therefore a *uniform* coefficient distance apart across
    all channels and rows, which is what lets one monomial shift serve
    the whole SIMD batch. Supported windows: kernel == stride, power of
    two (every zoo pool), full windows only (im2col semantics).
    """
    k, ps = pool.kernel, pool.stride
    if k != ps or k < 2 or k & (k - 1):
        raise ParameterError(
            f"fused max-pool needs kernel == stride, power of two; got "
            f"kernel={k} stride={ps}")
    cout = layer.weight.shape[0]
    cin = layer.in_shape[0]
    s = layer.stride
    _, oh, ow = layer.out_shape
    ghw = gh * gw
    wk = layer.weight.shape[2]
    t_index = ghw * (cout * cin - 1) + gw * (wk - 1) + wk - 1

    def cell(cp: int, a: int, b: int) -> int:
        return t_index - cp * cin * ghw + (oy + a * s) * gw + (ox + b * s)

    def positions_for(ys, xs) -> np.ndarray:
        out = np.empty(cout * len(ys) * len(xs), dtype=np.int64)
        pos = 0
        for cp in range(cout):
            for a in ys:
                for b in xs:
                    out[pos] = cell(cp, a, b)
                    pos += 1
        return out

    levels = k.bit_length() - 1
    origins_y = list(range(0, oh - k + 1, k))
    origins_x = list(range(0, ow - k + 1, k))
    rounds: list[MaxRound] = []
    for r in range(levels):  # column reduction, all rows still live
        stepw = 1 << (r + 1)
        xs = [w0 + o for w0 in origins_x for o in range(0, k, stepw)]
        rounds.append(MaxRound((1 << r) * s, positions_for(range(oh), xs)))
    for r in range(levels):  # row reduction over the window columns
        steph = 1 << (r + 1)
        ys = [y0 + o for y0 in origins_y for o in range(0, k, steph)]
        rounds.append(MaxRound((1 << r) * s * gw, positions_for(ys, origins_x)))
    final = positions_for(origins_y, origins_x)
    if final.size and int(final.max()) >= n:
        raise ParameterError("pooled positions overflow the ring")
    return tuple(rounds), final


def _compile_linear(
    step: LinearStep,
    index: int,
    config,
    params: FheParams,
    chunk: int | None,
    choice: StepEncodingChoice,
    in_layout: FeatureLayout | None,
    target: FeatureLayout | None,
) -> CompiledLinear:
    layer = step.layer
    n = params.n
    grid = None
    oy = ox = 0
    if step.op == "conv":
        cin, h, w = layer.in_shape
        hp, wp = h + 2 * layer.pad, w + 2 * layer.pad
        own_grid = FeatureLayout((cin, h, w), (hp, wp),
                                 (layer.pad, layer.pad))
        if (
            _is_plain(in_layout)
            or (in_layout.grid == own_grid.grid
                and tuple(in_layout.offset) == own_grid.offset)
        ):
            # The historical path: the input sits on the conv's own padded
            # grid (client-side np.pad for the entry step, or a placed
            # layout matching it exactly). Byte-identical artifacts.
            if layer.pad and not _is_plain(in_layout):
                grid = (hp, wp)
            elif layer.pad:
                grid = (hp, wp)  # entry step synthesizes the grid in plaintext
            else:
                grid = (h, w)
            kernel_coeffs = encode_kernels(layer.weight, hp, wp, n)
            span = lane_span(
                layer.weight.shape[0], cin, hp, wp, layer.weight.shape[-1])
            positions_full = step.output_positions()
        else:
            gh, gw = in_layout.grid
            loy, lox = in_layout.offset
            oy, ox = loy - layer.pad, lox - layer.pad
            if oy < 0 or ox < 0:
                raise ParameterError(
                    f"layout margin ({loy},{lox}) cannot cover pad "
                    f"{layer.pad} for step {step.name!r}")
            grid = (gh, gw)
            kernel_coeffs = encode_kernels(layer.weight, gh, gw, n)
            span = lane_span(
                layer.weight.shape[0], cin, gh, gw, layer.weight.shape[-1])
            if span > n:
                raise ParameterError(
                    f"step {step.name!r} needs span {span} on its placed "
                    f"grid, have n={n}")
            _, oh, ow = layer.out_shape
            positions_full = grid_output_positions(
                layer.weight.shape[0], cin, gh, gw, layer.weight.shape[-1],
                layer.stride, oh, ow, oy, ox)
    else:
        # An FC layer is the Wk = H = W = 1 case of the Eq. 1 encoding.
        kernel_coeffs = encode_kernels(layer.weight[:, :, None, None], 1, 1, n)
        span = lane_span(layer.weight.shape[0], layer.weight.shape[1], 1, 1, 1)
        positions_full = step.output_positions()
    kernel = Plaintext.from_coeffs(kernel_coeffs, params)
    kernel.pmult_operand()

    if positions_full.shape[0] > n:
        raise ParameterError("more outputs than slots")

    bias = None
    if np.any(layer.bias):
        bias_coeffs = np.zeros(n, dtype=np.int64)
        reps = positions_full.shape[0] // layer.bias.shape[0]
        bias_coeffs[positions_full] = np.repeat(layer.bias, reps)
        bias = Plaintext.from_coeffs(bias_coeffs, params)
        bias.add_operand()

    pool_rounds = pool_lut = pool_fbs = None
    positions = positions_full
    if step.fused_pool is not None:
        if step.op != "conv":
            raise ParameterError("fused pooling requires a convolution")
        pool_rounds, positions = _pool_tree(
            layer, step.fused_pool, grid[0], grid[1], oy, ox, n)
        pool_lut = _mac_relu_lut(params.t)
        pool_fbs = _fbs_plan(pool_lut, choice, params)

    lut = step.lut.build(config, params.t)
    fbs = _fbs_plan(lut, choice, params)
    pack_rows = _pack_rows_for(target, positions.shape[0], params)
    tiles = None
    if pack_rows is None and pool_rounds is None:
        tiles = _build_tiles(positions, lut, params, _step_chunk(choice, chunk))
    return CompiledLinear(
        index=index,
        name=step.name,
        op=step.op,
        s2c=step.s2c,
        kernel=kernel,
        bias=bias,
        positions=positions,
        out_count=positions.shape[0],
        lut=lut,
        fbs=fbs,
        tiles=tiles,
        lane_span=span,
        strategy=choice.strategy,
        pack_rows=pack_rows,
        pack_correction=_pack_correction(pack_rows, lut, params),
        pool_rounds=pool_rounds,
        pool_lut=pool_lut,
        pool_fbs=pool_fbs,
    )


def _compile_pool(step, index: int, params: FheParams,
                  layout: FeatureLayout | None) -> CompiledPool:
    if step.op == "max":
        raise ParameterError(
            f"standalone max-pool {step.name!r} has no ciphertext lowering "
            "(only MAC-domain fusion behind a monotone activation)")
    if layout is None or not layout.is_compact() or len(layout.shape) != 3:
        raise ParameterError(
            f"pool step {step.name!r} needs a compact (C, H, W) input layout")
    c, h, w = layout.shape
    if step.op == "gap":
        if h != w:
            raise ParameterError("global average pooling needs a square map")
        k, s = h, 1
    else:
        k, s = step.layer.kernel, step.layer.stride
    if k > min(h, w):
        raise ParameterError(
            f"pool window {k} exceeds the {h}x{w} feature map")
    if lane_span(c, c, h, w, k) > params.n:
        raise ParameterError(
            f"pool step {step.name!r} does not fit in degree {params.n}")
    weight = np.zeros((c, c, k, k), dtype=np.int64)
    weight[np.arange(c), np.arange(c)] = 1
    kernel = Plaintext.from_coeffs(
        encode_kernels(weight, h, w, params.n), params)
    kernel.pmult_operand()
    positions = grid_output_positions(
        c, c, h, w, k, s, (h - k) // s + 1, (w - k) // s + 1, 0, 0)
    return CompiledPool(
        index=index,
        name=step.name,
        kernel=kernel,
        positions=positions,
        out_count=positions.shape[0],
    )


def _compile_remap(
    step,
    index: int,
    config,
    params: FheParams,
    choice: StepEncodingChoice,
    pending: CompiledPool | None,
    target: FeatureLayout | None,
) -> CompiledRemap:
    if pending is None:
        raise ParameterError(
            f"remap step {step.name!r} has no preceding pool round")
    lut = step.lut.build(config, params.t)
    pack_rows = _pack_rows_for(target, pending.out_count, params)
    return CompiledRemap(
        index=index,
        name=step.name,
        s2c=step.s2c,
        positions=pending.positions,
        out_count=pending.out_count,
        lut=lut,
        fbs=_fbs_plan(lut, choice, params),
        pack_rows=pack_rows,
        pack_correction=_pack_correction(pack_rows, lut, params),
    )


def _compile_residual(
    step,
    index: int,
    config,
    params: FheParams,
    chunk: int | None,
    tuning: TuningConfig | None,
    choice: StepEncodingChoice,
    in_layout: FeatureLayout | None,
    target: FeatureLayout | None,
    shape: tuple | None,
) -> CompiledResidual:
    if in_layout is None:
        raise ParameterError(
            f"residual block {step.name!r} cannot be the ciphertext "
            "program's entry step")
    if shape is None:
        raise ParameterError(
            f"residual block {step.name!r} has no tracked input shape")
    body_out = shape
    for sub in step.body.steps:
        body_out = _shape_after(sub, body_out)
    if body_out is None:
        raise ParameterError(
            f"residual body of {step.name!r} has an untrackable shape")
    if step.shortcut is not None:
        join_layout = _compact(body_out)
        shortcut = _compile_block(
            step.shortcut.steps, config, params, chunk, tuning,
            shape, in_layout, join_layout)
    else:
        if tuple(in_layout.shape) != tuple(body_out):
            raise ParameterError(
                f"identity skip of {step.name!r} changes shape "
                f"{in_layout.shape} -> {body_out}")
        join_layout = in_layout
        shortcut = None
    body = _compile_block(
        step.body.steps, config, params, chunk, tuning,
        shape, in_layout, join_layout)
    if join_layout.span > params.n:
        raise ParameterError(
            f"join layout of {step.name!r} exceeds degree {params.n}")
    positions = join_layout.rows()
    lut = step.lut.build(config, params.t)
    pack_rows = _pack_rows_for(target, positions.shape[0], params)
    return CompiledResidual(
        index=index,
        name=step.name,
        s2c=step.s2c,
        alpha=int(step.skip_alpha),
        positions=positions,
        out_count=positions.shape[0],
        lut=lut,
        fbs=_fbs_plan(lut, choice, params),
        pack_rows=pack_rows,
        pack_correction=_pack_correction(pack_rows, lut, params),
        body=body,
        shortcut=shortcut,
    )


def _compile_block(
    steps: list,
    config,
    params: FheParams,
    chunk: int | None,
    tuning: TuningConfig | None,
    shape: tuple | None,
    in_layout: FeatureLayout | None,
    final_target: FeatureLayout | None,
) -> list:
    """Compile one step list, chaining layouts; degrade gracefully.

    Steps that only the *new* machinery could realize (placed layouts,
    fused pooling, pool/remap/residual rounds) compile to opaque
    placeholders when their artifacts do not fit the parameter set, so
    compiling a program never fails where running it would have
    succeeded. Plain conv/FC rounds keep their historical error behavior.
    """
    compiled: list = []
    cur_layout = in_layout
    pending_pool: CompiledPool | None = None
    for i, step in enumerate(steps):
        choice = _resolve_choice(step, tuning)
        out_shape = _shape_after(step, shape)
        target = _required_layout(steps, i + 1, out_shape, final_target)
        if step.kind == "linear":
            plain = (
                step.fused_pool is None
                and _is_plain(target)
                and (
                    _is_plain(cur_layout)
                    or (
                        step.op == "conv"
                        and cur_layout.grid == (
                            step.layer.in_shape[1] + 2 * step.layer.pad,
                            step.layer.in_shape[2] + 2 * step.layer.pad,
                        )
                        and tuple(cur_layout.offset) == (
                            step.layer.pad, step.layer.pad)
                    )
                )
            )
            if plain:
                compiled.append(_compile_linear(
                    step, i, config, params, chunk, choice, cur_layout, target))
            else:
                try:
                    compiled.append(_compile_linear(
                        step, i, config, params, chunk, choice, cur_layout,
                        target))
                except (EncodingError, ParameterError):
                    compiled.append(CompiledOpaque(i, step.name, step.kind))
            cur_layout = target
        elif step.kind == "pool":
            try:
                cstep = _compile_pool(step, i, params, cur_layout)
            except (EncodingError, ParameterError):
                cstep = CompiledOpaque(i, step.name, step.kind)
            pending_pool = cstep if isinstance(cstep, CompiledPool) else None
            compiled.append(cstep)
        elif step.kind == "remap":
            try:
                compiled.append(_compile_remap(
                    step, i, config, params, choice, pending_pool, target))
            except (EncodingError, ParameterError):
                compiled.append(CompiledOpaque(i, step.name, step.kind))
            pending_pool = None
            cur_layout = target
        elif step.kind == "residual":
            try:
                compiled.append(_compile_residual(
                    step, i, config, params, chunk, tuning, choice,
                    cur_layout, target, shape))
            except (EncodingError, ParameterError):
                compiled.append(CompiledOpaque(i, step.name, step.kind))
            cur_layout = target
        else:  # reshape
            compiled.append(CompiledOpaque(i, step.name, step.kind))
        shape = out_shape
    return compiled


def compile_program(
    program: AthenaProgram,
    params: FheParams | None = None,
    chunk: int | None = None,
    tuning: TuningConfig | None = None,
) -> CompiledProgram:
    """Precompute every request-invariant artifact of ``program``.

    ``chunk`` caps the LWE outputs per refresh round exactly as in
    :meth:`AthenaPipeline.run_program`; rounds exceeding the cap get a
    precomputed tile layout. ``tuning`` overrides individual steps'
    declarative encoding choices (strategy / chunk tile / BSGS split) and
    is folded into the plan's ``model_hash``. Steps the ciphertext
    backend cannot execute compile to opaque placeholders so that
    compiling a program never fails where running it would have
    succeeded.
    """
    if params is None:
        params = program.params
    if chunk is not None and chunk < 1:
        raise ParameterError(f"chunk cap must be >= 1, got {chunk}")
    # Compile-time NTT transforms (cached plaintext operands) are labeled
    # so a counting backend separates them from per-request work.
    with current_backend().phase("compile"):
        steps = _compile_block(
            program.steps, program.config, params, chunk, tuning,
            _initial_shape(program.steps), None, None)
        capacity = _annotate_lanes(steps, params, chunk)
        return CompiledProgram(
            steps=steps,
            params=params,
            chunk=chunk,
            s2c=S2CPlan.build(params).warm_automorphisms(params),
            model_hash=program_fingerprint(program, tuning),
            name=program.name,
            batch_capacity=capacity,
            tuning=tuning,
        )
