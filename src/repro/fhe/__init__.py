"""FHE substrate: BFV (exact), CKKS (approximate), LWE chain, FBS.

Public surface:

* :mod:`repro.fhe.params` — parameter sets (``ATHENA``, test presets)
* :class:`repro.fhe.bfv.BfvContext` — BFV keygen/encrypt/evaluate
* :mod:`repro.fhe.lwe` — modulus switching, sample extraction, keyswitch
* :mod:`repro.fhe.packing` — LWE -> RLWE homomorphic-decryption packing
* :mod:`repro.fhe.fbs` — LUT interpolation + Paterson-Stockmeyer evaluation
* :mod:`repro.fhe.s2c` — slot-to-coefficient transform
* :mod:`repro.fhe.ckks` — compact CKKS baseline
* :mod:`repro.fhe.backend` — pluggable op-dispatch backends
  (batched / serial / counting) with context-local selection
"""

from repro.fhe.backend import (
    Backend,
    BatchedBackend,
    CountingBackend,
    SerialBackend,
    current_backend,
    get_backend,
    use_backend,
)
from repro.fhe.bfv import BfvCiphertext, BfvContext, Plaintext
from repro.fhe.fbs import FbsCost, FbsLut, fbs_evaluate, interpolate_lut
from repro.fhe.lwe import (
    LweBatch,
    SmallRlwe,
    keyswitch,
    keyswitch_keygen,
    lwe_decrypt,
    lwe_mod_switch,
    rlwe_mod_switch,
    sample_extract,
)
from repro.fhe.packing import PackingKey, pack_lwe
from repro.fhe.params import (
    ATHENA,
    ATHENA_MEDIUM,
    TEST_FBS,
    TEST_LOOP,
    TEST_SMALL,
    TEST_TINY,
    FheParams,
    get_params,
)
from repro.fhe.poly import RnsPoly, rns_backend, use_serial_rns
from repro.fhe.s2c import S2CKey, slot_to_coeff
from repro.fhe.security import check_params, security_level

__all__ = [
    "ATHENA",
    "ATHENA_MEDIUM",
    "TEST_FBS",
    "TEST_LOOP",
    "TEST_SMALL",
    "TEST_TINY",
    "Backend",
    "BatchedBackend",
    "BfvCiphertext",
    "BfvContext",
    "CountingBackend",
    "SerialBackend",
    "FbsCost",
    "FbsLut",
    "FheParams",
    "LweBatch",
    "PackingKey",
    "Plaintext",
    "S2CKey",
    "SmallRlwe",
    "current_backend",
    "fbs_evaluate",
    "get_backend",
    "get_params",
    "interpolate_lut",
    "keyswitch",
    "keyswitch_keygen",
    "lwe_decrypt",
    "lwe_mod_switch",
    "pack_lwe",
    "rlwe_mod_switch",
    "RnsPoly",
    "rns_backend",
    "sample_extract",
    "check_params",
    "security_level",
    "slot_to_coeff",
    "use_backend",
    "use_serial_rns",
]
