"""Security estimation for the parameter sets (paper §3.3: ">128 bits").

Uses the Homomorphic Encryption Standard tables (ternary secret,
classical attacks): for each ring dimension they give the maximum log2(Q)
that still provides 128/192/256-bit security. A parameter set is judged by
interpolating those ceilings — the same quick check FHE papers use when
they cite the standard rather than running the full lattice estimator.
"""

from __future__ import annotations

import math

from repro.fhe.params import FheParams

#: HE-standard maximum log2(Q) for a ternary secret at (128, 192, 256)-bit
#: classical security, per ring dimension.
_HE_STANDARD = {
    1024: (27, 19, 14),
    2048: (54, 37, 29),
    4096: (109, 75, 58),
    8192: (218, 152, 118),
    16384: (438, 305, 237),
    32768: (881, 611, 476),
}

_LEVELS = (128, 192, 256)


def max_logq(n: int, level: int = 128) -> float:
    """Maximum log2(Q) at dimension n for the given security level."""
    idx = _LEVELS.index(level)
    if n in _HE_STANDARD:
        return float(_HE_STANDARD[n][idx])
    # The ceilings scale almost exactly linearly in n: interpolate.
    dims = sorted(_HE_STANDARD)
    if n < dims[0]:
        return _HE_STANDARD[dims[0]][idx] * n / dims[0]
    if n > dims[-1]:
        return _HE_STANDARD[dims[-1]][idx] * n / dims[-1]
    lo = max(d for d in dims if d <= n)
    hi = min(d for d in dims if d >= n)
    frac = (n - lo) / (hi - lo)
    return _HE_STANDARD[lo][idx] + frac * (_HE_STANDARD[hi][idx] - _HE_STANDARD[lo][idx])


def security_level(n: int, logq: float) -> float:
    """Approximate classical security (bits) of an (n, Q) RLWE/LWE instance.

    Security scales roughly linearly in n/log2(Q); anchor on the 128-bit
    ceiling for the dimension.
    """
    ceiling = max_logq(n, 128)
    if logq <= 0:
        return float("inf")
    return 128.0 * ceiling / logq


def check_params(params: FheParams, target: int = 128) -> dict[str, float]:
    """Security of both the RLWE and the LWE instances of a parameter set."""
    rlwe = security_level(params.n, params.q.bit_length())
    lwe = security_level(params.lwe_n, math.log2(params.lwe_q))
    return {
        "rlwe_bits": rlwe,
        "lwe_bits": lwe,
        "meets_target": float(min(rlwe, lwe) >= target),
    }
