"""Ring elements of Z_Q[X]/(X^N + 1) in RNS form.

:class:`RnsPoly` is the basic algebraic object underneath BFV ciphertexts and
keys: an (L, N) int64 residue matrix plus its modulus chain. Elements are
kept in the coefficient domain; multiplications run a negacyclic NTT
internally. Galois automorphisms x -> x^k are implemented as signed
index permutations of the coefficient vector.

Two interchangeable arithmetic backends exist:

* **batched** (default) — every op treats the (L, N) residue matrix as one
  stacked array, broadcasting an (L, 1) moduli column; multiplications go
  through :func:`repro.fhe.ntt.ntt_forward_rns`, so one butterfly pass per
  stage covers all limbs. This is the execution-engine hot path.
* **serial** — the original per-prime ``for i, p in enumerate(moduli)``
  loops, kept verbatim as the reference semantics. The equivalence test
  suite pins the batched path bit-identical to it, and the ``repro bench``
  harness measures the speedup between the two.

Switch with :func:`use_serial_rns` (a context manager); both backends honor
the same dtype-overflow contract (limb primes < 2**31, so products and
butterfly sums stay inside int64).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.fhe import rns
from repro.fhe.ntt import (
    negacyclic_mul_exact,
    ntt_forward,
    ntt_forward_rns,
    ntt_inverse,
    ntt_inverse_rns,
)
from repro.utils.modmath import inv_mod


@lru_cache(maxsize=None)
def automorphism_map(n: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Destination indices and signs for the map X -> X^k on degree-N rings.

    Coefficient j of the input lands at index (j*k mod 2N); indices >= N wrap
    negacyclically: X^(N+r) = -X^r. ``k`` must be odd so the map is a ring
    automorphism.
    """
    if k % 2 == 0:
        raise ParameterError(f"Galois element must be odd, got {k}")
    j = np.arange(n, dtype=np.int64)
    dest = (j * (k % (2 * n))) % (2 * n)
    sign = np.where(dest >= n, -1, 1).astype(np.int64)
    dest = np.where(dest >= n, dest - n, dest)
    return dest, sign


@lru_cache(maxsize=None)
def _moduli_column(moduli: tuple[int, ...]) -> np.ndarray:
    """(L, 1) int64 broadcast column for a modulus chain."""
    col = np.array(moduli, dtype=np.int64)[:, None]
    col.setflags(write=False)
    return col


class _BatchedOps:
    """Residue-stacked arithmetic: one numpy pass covers every limb."""

    @staticmethod
    def add(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        return (a + b) % _moduli_column(moduli)

    @staticmethod
    def sub(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        return (a - b) % _moduli_column(moduli)

    @staticmethod
    def neg(a: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        return -a % _moduli_column(moduli)

    @staticmethod
    def mul(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        mods = _moduli_column(moduli)
        fa = ntt_forward_rns(a, moduli)
        fb = ntt_forward_rns(b, moduli)
        return ntt_inverse_rns(fa * fb % mods, moduli)

    @staticmethod
    def ntt(a: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        return ntt_forward_rns(a, moduli)

    @staticmethod
    def mul_ntt(a: np.ndarray, fb: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        mods = _moduli_column(moduli)
        fa = ntt_forward_rns(a, moduli)
        return ntt_inverse_rns(fa * fb % mods, moduli)

    @staticmethod
    def scalar_mul(a: np.ndarray, value: int, moduli: tuple[int, ...]) -> np.ndarray:
        mods = _moduli_column(moduli)
        residues = np.array([value % p for p in moduli], dtype=np.int64)[:, None]
        return a * residues % mods

    @staticmethod
    def inv_scalar(a: np.ndarray, value: int, moduli: tuple[int, ...]) -> np.ndarray:
        mods = _moduli_column(moduli)
        invs = np.array([inv_mod(value, p) for p in moduli], dtype=np.int64)[:, None]
        return a * invs % mods

    @staticmethod
    def automorphism(a: np.ndarray, k: int, moduli: tuple[int, ...]) -> np.ndarray:
        n = a.shape[1]
        dest, sign = automorphism_map(n, k)
        out = np.empty_like(a)
        # |a * sign| < p < 2**31, so the signed product is int64-exact.
        out[:, dest] = a * sign % _moduli_column(moduli)
        return out

    @staticmethod
    def shift(a: np.ndarray, shift: int, moduli: tuple[int, ...]) -> np.ndarray:
        n = a.shape[1]
        mods = _moduli_column(moduli)
        rolled = np.roll(a, shift % n, axis=1)
        if shift % n:
            rolled[:, : shift % n] = -rolled[:, : shift % n] % mods
        if shift >= n:
            rolled = -rolled % mods
        return rolled


class _SerialOps:
    """The pre-batching per-prime loops, frozen as reference semantics."""

    @staticmethod
    def add(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        data = a + b
        for i, p in enumerate(moduli):
            data[i] %= p
        return data

    @staticmethod
    def sub(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        data = a - b
        for i, p in enumerate(moduli):
            data[i] %= p
        return data

    @staticmethod
    def neg(a: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        data = -a
        for i, p in enumerate(moduli):
            data[i] %= p
        return data

    @staticmethod
    def mul(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        out = np.empty_like(a)
        for i, p in enumerate(moduli):
            fa = ntt_forward(a[i].copy(), p)
            fb = ntt_forward(b[i].copy(), p)
            out[i] = ntt_inverse(fa * fb % p, p)
        return out

    @staticmethod
    def ntt(a: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        out = np.empty_like(a)
        for i, p in enumerate(moduli):
            out[i] = ntt_forward(a[i].copy(), p)
        return out

    @staticmethod
    def mul_ntt(a: np.ndarray, fb: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        out = np.empty_like(a)
        for i, p in enumerate(moduli):
            fa = ntt_forward(a[i].copy(), p)
            out[i] = ntt_inverse(fa * fb[i] % p, p)
        return out

    @staticmethod
    def scalar_mul(a: np.ndarray, value: int, moduli: tuple[int, ...]) -> np.ndarray:
        out = np.empty_like(a)
        for i, p in enumerate(moduli):
            out[i] = a[i] * (value % p) % p
        return out

    @staticmethod
    def inv_scalar(a: np.ndarray, value: int, moduli: tuple[int, ...]) -> np.ndarray:
        out = np.empty_like(a)
        for i, p in enumerate(moduli):
            out[i] = a[i] * inv_mod(value, p) % p
        return out

    @staticmethod
    def automorphism(a: np.ndarray, k: int, moduli: tuple[int, ...]) -> np.ndarray:
        n = a.shape[1]
        dest, sign = automorphism_map(n, k)
        out = np.zeros_like(a)
        signed = a * sign  # safe: |value| < p < 2**31
        for i, p in enumerate(moduli):
            out[i][dest] = signed[i] % p  # k odd => dest is a permutation
        return out

    @staticmethod
    def shift(a: np.ndarray, shift: int, moduli: tuple[int, ...]) -> np.ndarray:
        n = a.shape[1]
        out = np.empty_like(a)
        for i, p in enumerate(moduli):
            row = a[i]
            rolled = np.roll(row, shift % n)
            if shift % n:
                rolled[: shift % n] = (-rolled[: shift % n]) % p
            if shift >= n:
                rolled = (-rolled) % p
            out[i] = rolled
        return out


_OPS = _BatchedOps


@contextlib.contextmanager
def use_serial_rns():
    """Run RnsPoly arithmetic through the per-prime reference loops.

    Used by the equivalence tests and by ``repro bench`` to measure the
    batched path's speedup over the pre-batching implementation.
    """
    global _OPS
    prev = _OPS
    _OPS = _SerialOps
    try:
        yield
    finally:
        _OPS = prev


def rns_backend() -> str:
    """Name of the active RnsPoly arithmetic backend."""
    return "serial" if _OPS is _SerialOps else "batched"


@dataclass
class RnsPoly:
    """Element of Z_Q[X]/(X^N + 1), residues stored per RNS limb."""

    data: np.ndarray  # shape (L, N), int64, reduced per limb
    moduli: tuple[int, ...]

    # --- constructors ---------------------------------------------------

    @classmethod
    def zeros(cls, n: int, moduli: tuple[int, ...]) -> "RnsPoly":
        return cls(np.zeros((len(moduli), n), dtype=np.int64), moduli)

    @classmethod
    def from_int_coeffs(
        cls, coeffs: Sequence[int] | np.ndarray, moduli: tuple[int, ...]
    ) -> "RnsPoly":
        """Build from (possibly big / negative) integer coefficients."""
        return cls(rns.to_rns(coeffs, moduli), moduli)

    @classmethod
    def constant(cls, value: int, n: int, moduli: tuple[int, ...]) -> "RnsPoly":
        out = cls.zeros(n, moduli)
        out.data[:, 0] = [value % p for p in moduli]
        return out

    # --- basic properties ------------------------------------------------

    @property
    def n(self) -> int:
        return self.data.shape[1]

    @property
    def num_limbs(self) -> int:
        return self.data.shape[0]

    @property
    def modulus(self) -> int:
        return rns.rns_modulus(self.moduli)

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.data.copy(), self.moduli)

    def _check(self, other: "RnsPoly") -> None:
        if self.moduli != other.moduli or self.n != other.n:
            raise ParameterError("ring mismatch between operands")

    # --- arithmetic -------------------------------------------------------

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check(other)
        return RnsPoly(_OPS.add(self.data, other.data, self.moduli), self.moduli)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check(other)
        return RnsPoly(_OPS.sub(self.data, other.data, self.moduli), self.moduli)

    def __neg__(self) -> "RnsPoly":
        return RnsPoly(_OPS.neg(self.data, self.moduli), self.moduli)

    def __mul__(self, other: "RnsPoly") -> "RnsPoly":
        """Negacyclic product via the (batched) NTT."""
        self._check(other)
        return RnsPoly(_OPS.mul(self.data, other.data, self.moduli), self.moduli)

    def scalar_mul(self, value: int) -> "RnsPoly":
        return RnsPoly(_OPS.scalar_mul(self.data, value, self.moduli), self.moduli)

    def ntt_form(self) -> np.ndarray:
        """Forward-NTT residues (L, N), for reuse across many products.

        A plan-held operand (kernel plaintext, S2C diagonal) is transformed
        once at compile time; :meth:`mul_ntt` then skips that operand's
        forward butterfly pass on every request. Both backends produce the
        identical array, so a cached form is valid under either.
        """
        out = _OPS.ntt(self.data, self.moduli)
        out.setflags(write=False)
        return out

    def mul_ntt(self, other_ntt: np.ndarray) -> "RnsPoly":
        """Negacyclic product against a precomputed :meth:`ntt_form` operand.

        Bit-identical to ``self * other``: the same forward/pointwise/inverse
        pipeline, with the second forward transform amortized away.
        """
        return RnsPoly(_OPS.mul_ntt(self.data, other_ntt, self.moduli), self.moduli)

    def mul_exact_then_reduce(self, other: "RnsPoly") -> "RnsPoly":
        """Exact big-int negacyclic product, then reduction per limb.

        Reference path used in tests to validate the NTT product.
        """
        self._check(other)
        a = rns.from_rns_centered(self.data, self.moduli)
        b = rns.from_rns_centered(other.data, self.moduli)
        prod = negacyclic_mul_exact(a, b)
        return RnsPoly.from_int_coeffs(prod, self.moduli)

    # --- structure --------------------------------------------------------

    def automorphism(self, k: int) -> "RnsPoly":
        """Apply the Galois map X -> X^k."""
        return RnsPoly(_OPS.automorphism(self.data, k, self.moduli), self.moduli)

    def negacyclic_shift(self, shift: int) -> "RnsPoly":
        """Multiply by X^shift (shift may be negative)."""
        shift %= 2 * self.n
        return RnsPoly(_OPS.shift(self.data, shift, self.moduli), self.moduli)

    # --- conversions --------------------------------------------------------

    def to_int_coeffs(self, centered: bool = True) -> list[int]:
        """CRT-lift to exact integer coefficients."""
        if centered:
            return rns.from_rns_centered(self.data, self.moduli)
        return rns.from_rns(self.data, self.moduli)

    def mod_switch(self, new_modulus: int) -> np.ndarray:
        """Scale-and-round coefficients from Q to ``new_modulus``.

        Returns a plain int64 vector (the target modulus is word-sized in
        every use: the LWE modulus q' or the plaintext modulus t).
        """
        q = self.modulus
        coeffs = self.to_int_coeffs(centered=False)
        out = np.empty(self.n, dtype=np.int64)
        for j, c in enumerate(coeffs):
            out[j] = ((c * new_modulus + q // 2) // q) % new_modulus
        return out

    def inv_scalar(self, value: int) -> "RnsPoly":
        """Multiply by value^-1 mod Q (per limb)."""
        return RnsPoly(_OPS.inv_scalar(self.data, value, self.moduli), self.moduli)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RnsPoly):
            return NotImplemented
        return self.moduli == other.moduli and np.array_equal(self.data, other.data)
