"""Ring elements of Z_Q[X]/(X^N + 1) in RNS form.

:class:`RnsPoly` is the basic algebraic object underneath BFV ciphertexts and
keys: an (L, N) int64 residue matrix plus its modulus chain. Elements are
kept in the coefficient domain; multiplications run a per-limb negacyclic
NTT internally. Galois automorphisms x -> x^k are implemented as signed
index permutations of the coefficient vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.fhe import rns
from repro.fhe.ntt import negacyclic_mul_exact, ntt_forward, ntt_inverse
from repro.utils.modmath import inv_mod


@lru_cache(maxsize=None)
def automorphism_map(n: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Destination indices and signs for the map X -> X^k on degree-N rings.

    Coefficient j of the input lands at index (j*k mod 2N); indices >= N wrap
    negacyclically: X^(N+r) = -X^r. ``k`` must be odd so the map is a ring
    automorphism.
    """
    if k % 2 == 0:
        raise ParameterError(f"Galois element must be odd, got {k}")
    j = np.arange(n, dtype=np.int64)
    dest = (j * (k % (2 * n))) % (2 * n)
    sign = np.where(dest >= n, -1, 1).astype(np.int64)
    dest = np.where(dest >= n, dest - n, dest)
    return dest, sign


@dataclass
class RnsPoly:
    """Element of Z_Q[X]/(X^N + 1), residues stored per RNS limb."""

    data: np.ndarray  # shape (L, N), int64, reduced per limb
    moduli: tuple[int, ...]

    # --- constructors ---------------------------------------------------

    @classmethod
    def zeros(cls, n: int, moduli: tuple[int, ...]) -> "RnsPoly":
        return cls(np.zeros((len(moduli), n), dtype=np.int64), moduli)

    @classmethod
    def from_int_coeffs(
        cls, coeffs: Sequence[int] | np.ndarray, moduli: tuple[int, ...]
    ) -> "RnsPoly":
        """Build from (possibly big / negative) integer coefficients."""
        return cls(rns.to_rns(coeffs, moduli), moduli)

    @classmethod
    def constant(cls, value: int, n: int, moduli: tuple[int, ...]) -> "RnsPoly":
        out = cls.zeros(n, moduli)
        for i, p in enumerate(moduli):
            out.data[i, 0] = value % p
        return out

    # --- basic properties ------------------------------------------------

    @property
    def n(self) -> int:
        return self.data.shape[1]

    @property
    def num_limbs(self) -> int:
        return self.data.shape[0]

    @property
    def modulus(self) -> int:
        return rns.rns_modulus(self.moduli)

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.data.copy(), self.moduli)

    def _check(self, other: "RnsPoly") -> None:
        if self.moduli != other.moduli or self.n != other.n:
            raise ParameterError("ring mismatch between operands")

    # --- arithmetic -------------------------------------------------------

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check(other)
        data = self.data + other.data
        for i, p in enumerate(self.moduli):
            data[i] %= p
        return RnsPoly(data, self.moduli)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check(other)
        data = self.data - other.data
        for i, p in enumerate(self.moduli):
            data[i] %= p
        return RnsPoly(data, self.moduli)

    def __neg__(self) -> "RnsPoly":
        data = -self.data
        for i, p in enumerate(self.moduli):
            data[i] %= p
        return RnsPoly(data, self.moduli)

    def __mul__(self, other: "RnsPoly") -> "RnsPoly":
        """Negacyclic product via per-limb NTT."""
        self._check(other)
        out = np.empty_like(self.data)
        for i, p in enumerate(self.moduli):
            fa = ntt_forward(self.data[i].copy(), p)
            fb = ntt_forward(other.data[i].copy(), p)
            out[i] = ntt_inverse(fa * fb % p, p)
        return RnsPoly(out, self.moduli)

    def scalar_mul(self, value: int) -> "RnsPoly":
        out = np.empty_like(self.data)
        for i, p in enumerate(self.moduli):
            out[i] = self.data[i] * (value % p) % p
        return RnsPoly(out, self.moduli)

    def mul_exact_then_reduce(self, other: "RnsPoly") -> "RnsPoly":
        """Exact big-int negacyclic product, then reduction per limb.

        Reference path used in tests to validate the NTT product.
        """
        self._check(other)
        a = rns.from_rns_centered(self.data, self.moduli)
        b = rns.from_rns_centered(other.data, self.moduli)
        prod = negacyclic_mul_exact(a, b)
        return RnsPoly.from_int_coeffs(prod, self.moduli)

    # --- structure --------------------------------------------------------

    def automorphism(self, k: int) -> "RnsPoly":
        """Apply the Galois map X -> X^k."""
        dest, sign = automorphism_map(self.n, k)
        out = np.zeros_like(self.data)
        signed = self.data * sign  # safe: |value| < p < 2**31
        for i, p in enumerate(self.moduli):
            out[i][dest] = signed[i] % p  # k odd => dest is a permutation
        return RnsPoly(out, self.moduli)

    def negacyclic_shift(self, shift: int) -> "RnsPoly":
        """Multiply by X^shift (shift may be negative)."""
        n = self.n
        shift %= 2 * n
        out = np.empty_like(self.data)
        for i, p in enumerate(self.moduli):
            row = self.data[i]
            rolled = np.roll(row, shift % n)
            if shift % n:
                rolled[: shift % n] = (-rolled[: shift % n]) % p
            if shift >= n:
                rolled = (-rolled) % p
            out[i] = rolled
        return RnsPoly(out, self.moduli)

    # --- conversions --------------------------------------------------------

    def to_int_coeffs(self, centered: bool = True) -> list[int]:
        """CRT-lift to exact integer coefficients."""
        if centered:
            return rns.from_rns_centered(self.data, self.moduli)
        return rns.from_rns(self.data, self.moduli)

    def mod_switch(self, new_modulus: int) -> np.ndarray:
        """Scale-and-round coefficients from Q to ``new_modulus``.

        Returns a plain int64 vector (the target modulus is word-sized in
        every use: the LWE modulus q' or the plaintext modulus t).
        """
        q = self.modulus
        coeffs = self.to_int_coeffs(centered=False)
        out = np.empty(self.n, dtype=np.int64)
        for j, c in enumerate(coeffs):
            out[j] = ((c * new_modulus + q // 2) // q) % new_modulus
        return out

    def inv_scalar(self, value: int) -> "RnsPoly":
        """Multiply by value^-1 mod Q (per limb)."""
        out = np.empty_like(self.data)
        for i, p in enumerate(self.moduli):
            out[i] = self.data[i] * inv_mod(value, p) % p
        return RnsPoly(out, self.moduli)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RnsPoly):
            return NotImplemented
        return self.moduli == other.moduli and np.array_equal(self.data, other.data)
