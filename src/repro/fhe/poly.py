"""Ring elements of Z_Q[X]/(X^N + 1) in RNS form.

:class:`RnsPoly` is the basic algebraic object underneath BFV ciphertexts and
keys: an (L, N) int64 residue matrix plus its modulus chain. Elements are
kept in the coefficient domain; multiplications run a negacyclic NTT
internally. Galois automorphisms x -> x^k are implemented as signed
index permutations of the coefficient vector.

Every op dispatches through the context-active :class:`repro.fhe.backend.
Backend` (see that module for the batched/serial/counting backends and the
selection rules). The historical entry points survive as thin shims:

* :func:`use_serial_rns` — context manager selecting the per-prime
  reference loops, now backed by :func:`repro.fhe.backend.use_backend`
  (context-local, so concurrent threads no longer interfere). Prefer
  ``use_backend("serial")`` in new code.
* :func:`rns_backend` — reports the *current context's* RNS kernel name.

Both kernels honor the same dtype-overflow contract (limb primes < 2**31,
so products and butterfly sums stay inside int64) and are bit-identical.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.fhe import rns
from repro.fhe.backend import (
    automorphism_map,
    current_backend,
    use_backend,
)
from repro.fhe.ntt import negacyclic_mul_exact

__all__ = [
    "RnsPoly",
    "automorphism_map",
    "rns_backend",
    "use_serial_rns",
]


@contextlib.contextmanager
def use_serial_rns():
    """Run RnsPoly arithmetic through the per-prime reference loops.

    Deprecated shim over ``use_backend("serial")`` — selection is now
    context-local rather than a module-global flip, so other threads are
    unaffected. Kept for the equivalence tests and ``repro bench``.
    """
    with use_backend("serial"):
        yield


def rns_backend() -> str:
    """Name of the RNS arithmetic kernel active in the current context."""
    return current_backend().rns_name


@dataclass
class RnsPoly:
    """Element of Z_Q[X]/(X^N + 1), residues stored per RNS limb."""

    data: np.ndarray  # shape (L, N), int64, reduced per limb
    moduli: tuple[int, ...]

    # --- constructors ---------------------------------------------------

    @classmethod
    def zeros(cls, n: int, moduli: tuple[int, ...]) -> "RnsPoly":
        return cls(np.zeros((len(moduli), n), dtype=np.int64), moduli)

    @classmethod
    def from_int_coeffs(
        cls, coeffs: Sequence[int] | np.ndarray, moduli: tuple[int, ...]
    ) -> "RnsPoly":
        """Build from (possibly big / negative) integer coefficients."""
        return cls(rns.to_rns(coeffs, moduli), moduli)

    @classmethod
    def constant(cls, value: int, n: int, moduli: tuple[int, ...]) -> "RnsPoly":
        out = cls.zeros(n, moduli)
        out.data[:, 0] = [value % p for p in moduli]
        return out

    # --- basic properties ------------------------------------------------

    @property
    def n(self) -> int:
        return self.data.shape[1]

    @property
    def num_limbs(self) -> int:
        return self.data.shape[0]

    @property
    def modulus(self) -> int:
        return rns.rns_modulus(self.moduli)

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.data.copy(), self.moduli)

    def _check(self, other: "RnsPoly") -> None:
        if self.moduli != other.moduli or self.n != other.n:
            raise ParameterError("ring mismatch between operands")

    # --- arithmetic -------------------------------------------------------

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check(other)
        be = current_backend()
        return RnsPoly(be.add(self.data, other.data, self.moduli), self.moduli)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check(other)
        be = current_backend()
        return RnsPoly(be.sub(self.data, other.data, self.moduli), self.moduli)

    def __neg__(self) -> "RnsPoly":
        return RnsPoly(current_backend().neg(self.data, self.moduli), self.moduli)

    def __mul__(self, other: "RnsPoly") -> "RnsPoly":
        """Negacyclic product via the (batched) NTT."""
        self._check(other)
        be = current_backend()
        return RnsPoly(be.mul(self.data, other.data, self.moduli), self.moduli)

    def scalar_mul(self, value: int) -> "RnsPoly":
        be = current_backend()
        return RnsPoly(be.scalar_mul(self.data, value, self.moduli), self.moduli)

    def ntt_form(self) -> np.ndarray:
        """Forward-NTT residues (L, N), for reuse across many products.

        A plan-held operand (kernel plaintext, S2C diagonal) is transformed
        once at compile time; :meth:`mul_ntt` then skips that operand's
        forward butterfly pass on every request. Both backends produce the
        identical array, so a cached form is valid under either.
        """
        out = current_backend().ntt(self.data, self.moduli)
        out.setflags(write=False)
        return out

    def mul_ntt(self, other_ntt: np.ndarray) -> "RnsPoly":
        """Negacyclic product against a precomputed :meth:`ntt_form` operand.

        Bit-identical to ``self * other``: the same forward/pointwise/inverse
        pipeline, with the second forward transform amortized away.
        """
        be = current_backend()
        return RnsPoly(be.mul_ntt(self.data, other_ntt, self.moduli), self.moduli)

    def mul_exact_then_reduce(self, other: "RnsPoly") -> "RnsPoly":
        """Exact big-int negacyclic product, then reduction per limb.

        Reference path used in tests to validate the NTT product.
        """
        self._check(other)
        a = rns.from_rns_centered(self.data, self.moduli)
        b = rns.from_rns_centered(other.data, self.moduli)
        prod = negacyclic_mul_exact(a, b)
        return RnsPoly.from_int_coeffs(prod, self.moduli)

    # --- structure --------------------------------------------------------

    def automorphism(self, k: int) -> "RnsPoly":
        """Apply the Galois map X -> X^k."""
        be = current_backend()
        return RnsPoly(be.automorphism(self.data, k, self.moduli), self.moduli)

    def negacyclic_shift(self, shift: int) -> "RnsPoly":
        """Multiply by X^shift (shift may be negative)."""
        shift %= 2 * self.n
        return RnsPoly(current_backend().shift(self.data, shift, self.moduli), self.moduli)

    # --- conversions --------------------------------------------------------

    def to_int_coeffs(self, centered: bool = True) -> list[int]:
        """CRT-lift to exact integer coefficients."""
        if centered:
            return rns.from_rns_centered(self.data, self.moduli)
        return rns.from_rns(self.data, self.moduli)

    def mod_switch(self, new_modulus: int) -> np.ndarray:
        """Scale-and-round coefficients from Q to ``new_modulus``.

        Returns a plain int64 vector (the target modulus is word-sized in
        every use: the LWE modulus q' or the plaintext modulus t).
        """
        return current_backend().mod_switch(self.data, self.moduli, new_modulus)

    def inv_scalar(self, value: int) -> "RnsPoly":
        """Multiply by value^-1 mod Q (per limb)."""
        be = current_backend()
        return RnsPoly(be.inv_scalar(self.data, value, self.moduli), self.moduli)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RnsPoly):
            return NotImplemented
        return self.moduli == other.moduli and np.array_equal(self.data, other.data)
