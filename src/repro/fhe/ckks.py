"""Compact CKKS implementation — the baseline scheme Athena argues against.

Implements the approximate-arithmetic RNS-CKKS core: canonical-embedding
encoding, public-key encryption, addition, ciphertext multiplication with
relinearization, and rescaling down the modulus chain. This is enough to
run the paper's Figure 1 study (Taylor/Chebyshev approximations of ReLU and
sigmoid evaluated under encryption at various scale factors Delta) and to
unit-test the precision-vs-Delta behaviour that motivates Athena.

Rotations and bootstrapping are *not* implemented here — the baseline
accelerator simulations use the analytic CKKS workload model in
``repro.accel.workload`` instead (see DESIGN.md substitution #4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property, lru_cache

import numpy as np

from repro.errors import NoiseBudgetExhausted, ParameterError
from repro.fhe.keys import gadget_decompose
from repro.fhe.ntt import negacyclic_mul_exact
from repro.fhe.poly import RnsPoly
from repro.utils.modmath import find_ntt_primes, inv_mod
from repro.utils.sampling import Sampler


@dataclass(frozen=True)
class CkksParams:
    """CKKS parameter set: degree, per-limb scale bits, chain length."""

    name: str
    n: int
    scale_bits: int
    num_limbs: int
    decomp_bits: int = 8
    sigma: float = 3.2

    def __post_init__(self) -> None:
        if self.n & (self.n - 1) or self.n < 8:
            raise ParameterError("CKKS degree must be a power of two >= 8")
        if self.scale_bits > 30:
            raise ParameterError("limb primes must stay below 2**31")

    @cached_property
    def moduli(self) -> tuple[int, ...]:
        return tuple(find_ntt_primes(self.num_limbs, self.scale_bits, 2 * self.n))

    @property
    def scale(self) -> float:
        """Default encoding scale: 2**scale_bits (limbs are primes near it)."""
        return float(1 << self.scale_bits)

    @property
    def slots(self) -> int:
        return self.n // 2


#: Small CKKS preset for tests and the Fig. 1 study.
CKKS_SMALL = CkksParams("ckks-small", n=256, scale_bits=30, num_limbs=8)
CKKS_TINY = CkksParams("ckks-tiny", n=64, scale_bits=28, num_limbs=4)


@lru_cache(maxsize=None)
def _embedding_points(n: int) -> np.ndarray:
    """One evaluation point per conjugate pair: zeta^(2j+1), zeta=e^(i*pi/N)."""
    j = np.arange(n // 2)
    return np.exp(1j * np.pi * (2 * j + 1) / n)


def encode(values: np.ndarray, params: CkksParams, scale: float, level: int) -> RnsPoly:
    """Canonical-embedding encode of N/2 complex (or real) slot values."""
    z = np.asarray(values, dtype=np.complex128)
    if z.shape[0] > params.slots:
        raise ParameterError("too many slot values")
    if z.shape[0] < params.slots:
        z = np.concatenate([z, np.zeros(params.slots - z.shape[0])])
    pts = _embedding_points(params.n)
    k = np.arange(params.n)
    # coeffs_k = (2/N) * Re( sum_j conj(pts_j^k) * z_j ), the inverse of the
    # unitary-up-to-N evaluation map restricted to real polynomials.
    powers = pts[:, None] ** k[None, :]
    coeffs = (2.0 / params.n) * np.real(np.conj(powers).T @ z)
    scaled = np.rint(coeffs * scale).astype(object)
    return RnsPoly.from_int_coeffs([int(v) for v in scaled], params.moduli[: level + 1])


def decode(poly: RnsPoly, params: CkksParams, scale: float) -> np.ndarray:
    """Evaluate the (centered) polynomial at the embedding points / scale."""
    coeffs = np.array(poly.to_int_coeffs(centered=True), dtype=np.float64)
    pts = _embedding_points(params.n)
    k = np.arange(params.n)
    powers = pts[:, None] ** k[None, :]
    return (powers @ coeffs) / scale


@dataclass
class CkksCiphertext:
    c0: RnsPoly
    c1: RnsPoly
    scale: float
    level: int  # index of the highest active limb

    @property
    def moduli(self) -> tuple[int, ...]:
        return self.c0.moduli


class CkksContext:
    """Keygen and homomorphic evaluation for CKKS."""

    def __init__(self, params: CkksParams, seed: int | None = None):
        self.params = params
        self.sampler = Sampler(seed, sigma=params.sigma)

    # -- keys ---------------------------------------------------------------

    def keygen(self):
        p = self.params
        s = self.sampler.ternary(p.n)
        sk = RnsPoly.from_int_coeffs(s, p.moduli)
        a = self._uniform(p.moduli)
        e = RnsPoly.from_int_coeffs(self.sampler.gaussian(p.n), p.moduli)
        pk = (-(a * sk) + e, a)
        return sk, pk

    def relin_key(self, sk: RnsPoly):
        """Gadget KSK for s^2 -> s over the full modulus chain."""
        p = self.params
        target = sk * sk
        w = p.decomp_bits
        q = 1
        for m in p.moduli:
            q *= m
        digits = -(-q.bit_length() // w)
        k0, k1 = [], []
        power = 1
        for _ in range(digits):
            a = self._uniform(p.moduli)
            e = RnsPoly.from_int_coeffs(self.sampler.gaussian(p.n), p.moduli)
            k0.append(-(a * sk) + e + target.scalar_mul(power))
            k1.append(a)
            power <<= w
        return (k0, k1, w)

    def _uniform(self, moduli) -> RnsPoly:
        data = np.empty((len(moduli), self.params.n), dtype=np.int64)
        for i, m in enumerate(moduli):
            data[i] = self.sampler.uniform(m, self.params.n)
        return RnsPoly(data, tuple(moduli))

    # -- encryption -----------------------------------------------------------

    def encrypt(self, values: np.ndarray, pk, scale: float | None = None) -> CkksCiphertext:
        p = self.params
        scale = scale if scale is not None else p.scale
        level = p.num_limbs - 1
        pt = encode(values, p, scale, level)
        u = RnsPoly.from_int_coeffs(self.sampler.ternary(p.n), p.moduli)
        e0 = RnsPoly.from_int_coeffs(self.sampler.gaussian(p.n), p.moduli)
        e1 = RnsPoly.from_int_coeffs(self.sampler.gaussian(p.n), p.moduli)
        c0 = pk[0] * u + e0 + self._lift(pt, p.moduli)
        c1 = pk[1] * u + e1
        return CkksCiphertext(c0, c1, scale, level)

    def _lift(self, poly: RnsPoly, moduli) -> RnsPoly:
        """Re-express a lower-level poly at a (possibly longer) chain."""
        if poly.moduli == tuple(moduli):
            return poly
        return RnsPoly.from_int_coeffs(poly.to_int_coeffs(centered=True), tuple(moduli))

    def decrypt(self, ct: CkksCiphertext, sk: RnsPoly) -> np.ndarray:
        sk_level = self._truncate(sk, ct.level)
        phase = ct.c0 + ct.c1 * sk_level
        return decode(phase, self.params, ct.scale)[: self.params.slots]

    # -- ops ----------------------------------------------------------------

    def add(self, a: CkksCiphertext, b: CkksCiphertext) -> CkksCiphertext:
        self._align_check(a, b)
        return CkksCiphertext(a.c0 + b.c0, a.c1 + b.c1, a.scale, a.level)

    def sub(self, a: CkksCiphertext, b: CkksCiphertext) -> CkksCiphertext:
        self._align_check(a, b)
        return CkksCiphertext(a.c0 - b.c0, a.c1 - b.c1, a.scale, a.level)

    def add_plain(self, ct: CkksCiphertext, values: np.ndarray) -> CkksCiphertext:
        pt = encode(values, self.params, ct.scale, ct.level)
        return CkksCiphertext(ct.c0 + pt, ct.c1, ct.scale, ct.level)

    def mult_plain(self, ct: CkksCiphertext, values: np.ndarray, scale: float | None = None) -> CkksCiphertext:
        scale = scale if scale is not None else self.params.scale
        pt = encode(values, self.params, scale, ct.level)
        return CkksCiphertext(ct.c0 * pt, ct.c1 * pt, ct.scale * scale, ct.level)

    def mult(self, a: CkksCiphertext, b: CkksCiphertext, rlk) -> CkksCiphertext:
        """Tensor product + relinearization; result scale is the product."""
        self._align_check(a, b, same_scale=False)
        moduli = a.moduli
        a0 = a.c0.to_int_coeffs()
        a1 = a.c1.to_int_coeffs()
        b0 = b.c0.to_int_coeffs()
        b1 = b.c1.to_int_coeffs()
        e0 = RnsPoly.from_int_coeffs(negacyclic_mul_exact(a0, b0), moduli)
        e1 = RnsPoly.from_int_coeffs(
            [x + y for x, y in zip(negacyclic_mul_exact(a0, b1), negacyclic_mul_exact(a1, b0))],
            moduli,
        )
        e2 = RnsPoly.from_int_coeffs(negacyclic_mul_exact(a1, b1), moduli)
        d0, d1 = self._keyswitch(e2, rlk, a.level)
        return CkksCiphertext(e0 + d0, e1 + d1, a.scale * b.scale, a.level)

    def square(self, ct: CkksCiphertext, rlk) -> CkksCiphertext:
        return self.mult(ct, ct, rlk)

    def _keyswitch(self, component: RnsPoly, rlk, level: int):
        k0_full, k1_full, w = rlk
        q = 1
        for m in component.moduli:
            q *= m
        digits = -(-q.bit_length() // w)
        parts = gadget_decompose(component, w, digits)
        out0 = RnsPoly.zeros(component.n, component.moduli)
        out1 = RnsPoly.zeros(component.n, component.moduli)
        for d, key0, key1 in zip(parts, k0_full[:digits], k1_full[:digits]):
            out0 = out0 + d * self._truncate_poly(key0, level)
            out1 = out1 + d * self._truncate_poly(key1, level)
        return out0, out1

    def rescale(self, ct: CkksCiphertext) -> CkksCiphertext:
        """Drop the top limb, dividing the scale by that prime."""
        if ct.level == 0:
            raise NoiseBudgetExhausted("CKKS modulus chain exhausted")
        p_last = ct.moduli[-1]
        return CkksCiphertext(
            self._drop_limb(ct.c0),
            self._drop_limb(ct.c1),
            ct.scale / p_last,
            ct.level - 1,
        )

    def _drop_limb(self, poly: RnsPoly) -> RnsPoly:
        moduli = poly.moduli
        p_last = moduli[-1]
        last = poly.data[-1]
        out = np.empty((len(moduli) - 1, poly.n), dtype=np.int64)
        for i, m in enumerate(moduli[:-1]):
            inv = inv_mod(p_last, m)
            out[i] = (poly.data[i] - last) % m * inv % m
        return RnsPoly(out, moduli[:-1])

    def _truncate(self, sk: RnsPoly, level: int) -> RnsPoly:
        return RnsPoly(sk.data[: level + 1].copy(), sk.moduli[: level + 1])

    def _truncate_poly(self, poly: RnsPoly, level: int) -> RnsPoly:
        return RnsPoly(poly.data[: level + 1].copy(), poly.moduli[: level + 1])

    def _align_check(self, a: CkksCiphertext, b: CkksCiphertext, same_scale: bool = True) -> None:
        if a.level != b.level:
            raise ParameterError("ciphertexts at different levels")
        if same_scale and not math.isclose(a.scale, b.scale, rel_tol=1e-9):
            raise ParameterError("ciphertexts with different scales")
