"""Slot-to-Coefficient transform (paper Fig. 2, between Step 5 and Step 1).

After FBS the activation values live in plaintext *slots*; the next
convolution needs them as plaintext *coefficients*. Coefficients and slots
are related by the linear evaluation map P (slots = P @ coeffs, a permuted
NTT matrix over Z_t), so moving slot values into coefficients is the
homomorphic evaluation of P on the slot vector:

    slots(ct') = P @ slots(ct)   =>   coeffs(ct') = slots(ct).

P is N x N while the rotation group acts on a 2 x (N/2) hypercube, so P is
split into four (N/2)^2 blocks: the block-diagonal part applies directly and
the anti-diagonal part applies to the row-swapped ciphertext. Both passes
are BSGS Halevi-Shoup mat-vecs, giving the O(sqrt(N)) rotation cost the
framework's complexity table assumes (the paper's O(cbrt(N)) three-stage
factorization is a further constant-factor optimization of the same step).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ParameterError
from repro.fhe import slots as slotlib
from repro.fhe.backend import current_backend
from repro.fhe.bfv import BfvCiphertext, BfvContext
from repro.fhe.keys import KeySwitchKey, SecretKey
from repro.fhe.packing import MatvecPlan, hypercube_matvec
from repro.fhe.params import FheParams
from repro.utils.modmath import root_of_unity


@lru_cache(maxsize=None)
def _slot_points(n: int, t: int) -> np.ndarray:
    """Evaluation point of each hypercube slot (see repro.fhe.slots)."""
    zeta = root_of_unity(2 * n, t)
    points = np.empty(n, dtype=np.int64)
    exp = 1
    for j in range(n // 2):
        points[j] = pow(zeta, exp, t)
        points[n // 2 + j] = pow(zeta, 2 * n - exp, t)
        exp = exp * 3 % (2 * n)
    return points


@lru_cache(maxsize=None)
def _evaluation_matrix(n: int, t: int) -> np.ndarray:
    """P[s, j] = point_s^j over Z_t: slots = P @ coeffs."""
    points = _slot_points(n, t)
    mat = np.empty((n, n), dtype=np.int64)
    col = np.ones(n, dtype=np.int64)
    for j in range(n):
        mat[:, j] = col
        col = col * points % t
    return mat


def _block_diagonals(top: np.ndarray, bot: np.ndarray, half: int) -> np.ndarray:
    i = np.arange(half)
    out = np.empty((half, 2 * half), dtype=np.int64)
    for d in range(half):
        cols = (i + d) % half
        out[d, :half] = top[i, cols]
        out[d, half:] = bot[i, cols]
    return out


@dataclass
class S2CKey:
    """Galois keys for the two S2C mat-vec passes plus the row swap."""

    rotation_keys: dict[int, KeySwitchKey]
    baby_steps: int

    @classmethod
    def generate(
        cls, ctx: BfvContext, sk: SecretKey, baby_steps: int | None = None
    ) -> "S2CKey":
        half = ctx.params.n // 2
        if baby_steps is None:
            baby_steps = max(1, int(math.isqrt(half)))
        amounts = set(range(1, baby_steps))
        giant = -(-half // baby_steps)
        amounts |= {g * baby_steps for g in range(1, giant)}
        keys = ctx.rotation_keys(sk, amounts) if amounts else {}
        swap = slotlib.row_swap_element(ctx.params.n)
        keys.update(ctx.galois_keys(sk, [swap]))
        return cls(keys, baby_steps)


@dataclass
class S2CPlan:
    """Compile-time form of the S2C transform for one parameter set.

    The evaluation matrix P depends only on (N, t), so both mat-vec passes
    — diagonal extraction, giant-step rolls, slot encoding, and the NTT
    form of every diagonal plaintext — are request-invariant and built once
    here. A plan-driven :func:`slot_to_coeff` performs only ciphertext ops.
    """

    direct: MatvecPlan
    crossed: MatvecPlan

    @classmethod
    def build(cls, params: FheParams, baby_steps: int | None = None) -> "S2CPlan":
        n, t = params.n, params.t
        half = n // 2
        if baby_steps is None:
            baby_steps = max(1, int(math.isqrt(half)))
        p = _evaluation_matrix(n, t)
        p00, p01 = p[:half, :half], p[:half, half:]
        p10, p11 = p[half:, :half], p[half:, half:]
        return cls(
            MatvecPlan.build(_block_diagonals(p00, p11, half), params, baby_steps),
            MatvecPlan.build(_block_diagonals(p01, p10, half), params, baby_steps),
        )

    def warm_automorphisms(self, params: FheParams) -> "S2CPlan":
        """Precompute every automorphism index map both passes will use
        (baby/giant rotations plus the row swap), so plan-driven runs pay
        no map construction at request time."""
        from repro.fhe.backend import automorphism_map

        self.direct.warm_automorphisms(params)
        self.crossed.warm_automorphisms(params)
        automorphism_map(params.n, slotlib.row_swap_element(params.n))
        return self


def slot_to_coeff(
    ctx: BfvContext, ct: BfvCiphertext, key: S2CKey, plan: S2CPlan | None = None
) -> BfvCiphertext:
    """Return a ciphertext whose *coefficients* equal ``ct``'s slot values.

    Dispatches through the active backend's :meth:`Backend.s2c`. With a
    precomputed :class:`S2CPlan` the two Halevi-Shoup passes reuse
    compile-time diagonal plaintexts; the op sequence is unchanged, so the
    result is bit-identical to the per-request path.
    """
    be = current_backend()
    with be.phase("s2c"):
        return be.s2c(ctx, ct, key, plan=plan)


def slot_to_coeff_impl(
    ctx: BfvContext, ct: BfvCiphertext, key: S2CKey, plan: S2CPlan | None = None
) -> BfvCiphertext:
    """Default :meth:`Backend.s2c` implementation (two BSGS passes)."""
    params = ctx.params
    n, t = params.n, params.t
    half = n // 2
    if plan is not None:
        if plan.direct.baby_steps != key.baby_steps:
            raise ParameterError("S2C plan was built for different baby steps")
        direct = hypercube_matvec(
            ctx, ct, None, key.rotation_keys, key.baby_steps, plan=plan.direct
        )
        swapped = ctx.row_swap(ct, key.rotation_keys)
        crossed = hypercube_matvec(
            ctx, swapped, None, key.rotation_keys, key.baby_steps,
            plan=plan.crossed,
        )
        return ctx.add_many([direct, crossed])
    p = _evaluation_matrix(n, t)
    p00, p01 = p[:half, :half], p[:half, half:]
    p10, p11 = p[half:, :half], p[half:, half:]
    direct = hypercube_matvec(
        ctx, ct, _block_diagonals(p00, p11, half), key.rotation_keys, key.baby_steps
    )
    swapped = ctx.row_swap(ct, key.rotation_keys)
    crossed = hypercube_matvec(
        ctx,
        swapped,
        _block_diagonals(p01, p10, half),
        key.rotation_keys,
        key.baby_steps,
    )
    return ctx.add(direct, crossed)
