"""LWE side of the Athena noise-control chain (paper §3.2.2, Fig. 2 steps
2-3 and Fig. 3).

The chain implemented here:

1. :func:`rlwe_mod_switch` — rescale a BFV ciphertext from Q down to a
   word-sized modulus q' (we use the largest RNS limb prime). This is the
   noise-refresh: the error accumulated by the linear layer lives in the
   discarded Q/q' range, and only the small rounding term e_ms (distributed
   as N(0, (q' sigma / Q)^2 + (||s||^2 + 1)/12), §3.3) survives.
2. :func:`sample_extract` — Algorithm 1: coefficient i of an RLWE ciphertext
   becomes an independent LWE ciphertext (a_i, b_i) under the same secret,
   with b_i + <a_i, s> = phase coefficient i.
3. :func:`keyswitch` — LWE dimension switch N -> n with gadget decomposition
   (the paper uses ring field-switching [12] before extraction; switching
   after extraction is functionally identical and is done at modulus q' so
   the keyswitch noise is later crushed by the final modulus switch).
4. :func:`lwe_mod_switch` — final switch q' -> t. The message lands at
   scale Delta = 1: the MAC integer itself, perturbed by a few units of
   noise, exactly the regime Athena's LUT absorbs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.fhe.backend import current_backend
from repro.fhe.bfv import BfvCiphertext
from repro.utils.sampling import Sampler


@dataclass
class SmallRlwe:
    """RLWE ciphertext at a word-sized modulus (post modulus-switch)."""

    c0: np.ndarray  # int64 mod q
    c1: np.ndarray
    modulus: int

    @property
    def n(self) -> int:
        return self.c0.shape[0]


@dataclass
class LweBatch:
    """A batch of LWE ciphertexts sharing one secret and modulus.

    Decryption convention: m*Delta + e = b + <a, s> (mod q).
    """

    a: np.ndarray  # (count, dim) int64 mod q
    b: np.ndarray  # (count,) int64 mod q
    modulus: int

    @property
    def count(self) -> int:
        return self.a.shape[0]

    @property
    def dim(self) -> int:
        return self.a.shape[1]

    def phase(self, secret: np.ndarray) -> np.ndarray:
        """b + <a, s> mod q (int64-safe for q < 2**31 and dim < 2**31/q)."""
        acc = (self.a * secret[None, :]) % self.modulus
        return (acc.sum(axis=1) + self.b) % self.modulus

    def place(self, rows: np.ndarray, size: int) -> "LweBatch":
        """Scatter this batch's rows into a larger batch at indices ``rows``.

        The remaining rows are trivial encryptions of zero (a = 0, b = 0),
        whose phase is exactly 0 under any secret — after packing they become
        exact zero slots, the gap filler between output lanes of a batched
        linear layer.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.shape != (self.count,):
            raise ParameterError(
                f"need one target row per ciphertext: {rows.shape} vs {self.count}")
        if size < self.count or (rows.size and int(rows.max()) >= size):
            raise ParameterError(f"target rows do not fit in a batch of {size}")
        if np.unique(rows).size != rows.size:
            raise ParameterError("target rows collide")
        a = np.zeros((size, self.dim), dtype=np.int64)
        b = np.zeros(size, dtype=np.int64)
        a[rows] = self.a
        b[rows] = self.b
        return LweBatch(a, b, self.modulus)


def rlwe_mod_switch(ct: BfvCiphertext, new_modulus: int) -> SmallRlwe:
    """Scale-and-round both components of a BFV ciphertext to ``new_modulus``.

    Eq. 2 of the paper with t replaced by the intermediate modulus q'.
    """
    be = current_backend()
    with be.phase("se"):
        be.record("mod_switch")
        return SmallRlwe(
            ct.c0.mod_switch(new_modulus),
            ct.c1.mod_switch(new_modulus),
            new_modulus,
        )


def sample_extract(ct: SmallRlwe, indices: np.ndarray | None = None) -> LweBatch:
    """Algorithm 1: extract LWE ciphertexts from RLWE coefficients.

    Dispatches through the active backend; ``indices`` selects which
    coefficients to extract (default: all N).
    """
    be = current_backend()
    with be.phase("se"):
        return be.sample_extract(ct, indices)


def sample_extract_impl(ct: SmallRlwe, indices: np.ndarray | None = None) -> LweBatch:
    """Default :meth:`Backend.sample_extract` implementation (Algorithm 1)."""
    n = ct.n
    q = ct.modulus
    if indices is None:
        indices = np.arange(n, dtype=np.int64)
    else:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ParameterError("extraction index out of range")
    i = indices[:, None]
    j = np.arange(n, dtype=np.int64)[None, :]
    src = (i - j) % n
    sign = np.where(j <= i, 1, -1)
    a = (ct.c1[src] * sign) % q
    b = ct.c0[indices] % q
    return LweBatch(a.astype(np.int64), b.astype(np.int64), q)


@dataclass
class LweKeySwitchKey:
    """Gadget keyswitch key from a dim-N secret to a dim-n secret."""

    alpha: np.ndarray  # (N, digits, n) int64 mod q
    beta: np.ndarray  # (N, digits) int64 mod q
    base_bits: int
    modulus: int

    @property
    def num_digits(self) -> int:
        return self.alpha.shape[1]


def keyswitch_keygen(
    big_secret: np.ndarray,
    small_secret: np.ndarray,
    modulus: int,
    base_bits: int,
    sampler: Sampler,
) -> LweKeySwitchKey:
    """Generate the N -> n LWE keyswitch key at modulus q'.

    Entry (j, d) encrypts big_secret[j] * 2^(d * base_bits) under the small
    secret: beta = -<alpha, s'> + e + s_j * B^d.
    """
    big_n = big_secret.shape[0]
    small_n = small_secret.shape[0]
    digits = -(-modulus.bit_length() // base_bits)
    alpha = np.empty((big_n, digits, small_n), dtype=np.int64)
    beta = np.empty((big_n, digits), dtype=np.int64)
    for j in range(big_n):
        for d in range(digits):
            a = sampler.uniform(modulus, small_n)
            e = int(sampler.gaussian(1)[0])
            payload = int(big_secret[j]) * (1 << (d * base_bits))
            alpha[j, d] = a
            beta[j, d] = (-(int(np.dot(a, small_secret) % modulus)) + e + payload) % modulus
    return LweKeySwitchKey(alpha, beta, base_bits, modulus)


def keyswitch(batch: LweBatch, ksk: LweKeySwitchKey) -> LweBatch:
    """Switch a batch of LWE ciphertexts to the small secret dimension."""
    be = current_backend()
    with be.phase("se"):
        return be.lwe_keyswitch(batch, ksk)


def keyswitch_impl(batch: LweBatch, ksk: LweKeySwitchKey) -> LweBatch:
    """Default :meth:`Backend.lwe_keyswitch` implementation (gadget N -> n)."""
    if batch.modulus != ksk.modulus:
        raise ParameterError("keyswitch key modulus mismatch")
    q = batch.modulus
    digits = ksk.num_digits
    mask = (1 << ksk.base_bits) - 1
    count, big_n = batch.a.shape
    # Decompose every a-coefficient into non-negative digits.
    dig = np.empty((count, big_n, digits), dtype=np.int64)
    acc = batch.a % q
    for d in range(digits):
        dig[:, :, d] = acc & mask
        acc >>= ksk.base_bits
    # a' = sum_{j,d} dig[c,j,d] * alpha[j,d,:] mod q. Exact int64 matmuls:
    # each product is < 2^base_bits * q, so the safe chain length before a
    # reduction is the same lazy-accumulation bound the fused RNS kernels
    # use, taken at an effective modulus of 2^base_bits * q; chunk the
    # contraction accordingly (chunk boundaries are invisible mod q).
    from repro.fhe.backend import lazy_chain_limit

    flat_dig = dig.reshape(count, big_n * digits)
    flat_alpha = ksk.alpha.reshape(big_n * digits, -1)
    flat_beta = ksk.beta.reshape(big_n * digits)
    total = big_n * digits
    # -1 reserves one chain slot for the carried (already-reduced) accumulator.
    step = max(1, min(total, lazy_chain_limit(((1 << ksk.base_bits) * q,)) - 1))
    acc_a = np.zeros((count, ksk.alpha.shape[2]), dtype=np.int64)
    acc_b = np.zeros(count, dtype=np.int64)
    for start in range(0, total, step):
        end = min(total, start + step)
        acc_a = (acc_a + flat_dig[:, start:end] @ flat_alpha[start:end]) % q
        acc_b = (acc_b + flat_dig[:, start:end] @ flat_beta[start:end]) % q
    return LweBatch(acc_a, (acc_b + batch.b) % q, q)


def lwe_mod_switch(batch: LweBatch, new_modulus: int) -> LweBatch:
    """Scale-and-round a batch of LWE ciphertexts to ``new_modulus``."""
    be = current_backend()
    with be.phase("se"):
        return be.lwe_rescale(batch, new_modulus)


def lwe_mod_switch_impl(batch: LweBatch, new_modulus: int) -> LweBatch:
    """Default :meth:`Backend.lwe_rescale` implementation."""
    q = batch.modulus
    a = ((batch.a.astype(np.int64) * new_modulus + q // 2) // q) % new_modulus
    b = ((batch.b.astype(np.int64) * new_modulus + q // 2) // q) % new_modulus
    return LweBatch(a, b, new_modulus)


def lwe_decrypt(batch: LweBatch, secret: np.ndarray, delta: int = 1, t: int | None = None) -> np.ndarray:
    """Decrypt a batch: round(phase / delta) mod t (t defaults to q/delta)."""
    q = batch.modulus
    if t is None:
        t = q // delta
    phase = batch.phase(secret)
    if delta == 1:
        return phase % t
    centered = np.where(phase > q // 2, phase - q, phase)
    return np.mod(np.rint(centered / delta).astype(np.int64), t)


def expected_ems_std(params, secret_norm_sq: int) -> float:
    """Std of e_ms from §3.3: sqrt((t*sigma/Q)^2 + (||s||^2 + 1)/12).

    With our intermediate chain the dominant term is the rounding part
    (||s||^2 + 1)/12 — the scaled-ciphertext-noise term is negligible.
    """
    scaled = (params.t * params.sigma / params.q) ** 2
    rounding = (secret_norm_sq + 1) / 12.0
    return math.sqrt(scaled + rounding)
