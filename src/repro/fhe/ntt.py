"""Negacyclic Number-Theoretic Transform over word-sized primes.

This is the workhorse of the whole FHE substrate: polynomial multiplication
in Z_p[X]/(X^N + 1) for primes p = 1 (mod 2N), p < 2**31. All butterflies
are vectorized numpy int64 operations; since p < 2**31 every intermediate
product fits in an int64 (a*b < 2**62), so no Barrett/Montgomery machinery
is required in Python.

The transform is the standard "merged-psi" negacyclic NTT (Longa & Naehrig):
powers of the 2N-th root of unity are folded into the butterflies so no
separate pre/post scaling pass is needed.

:func:`negacyclic_mul_exact` provides an arbitrary-precision reference
multiplier (Kronecker substitution into Python big integers) used to verify
the NTT path and to implement BFV ciphertext multiplication, which needs the
exact integer product before scale-and-round.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ParameterError
from repro.utils.modmath import inv_mod, root_of_unity


@lru_cache(maxsize=None)
def _bit_reverse_indices(n: int) -> np.ndarray:
    """Indices 0..n-1 in bit-reversed order (n a power of two).

    Cached: callers (`_tables`, `_rns_tables`, `cyclic_ntt`) only ever use
    the array for read-only fancy indexing, and the LUT-interpolation path
    recomputes it at t-1 = 65536 elements otherwise.
    """
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    rev.setflags(write=False)
    return rev


@lru_cache(maxsize=None)
def _tables(n: int, p: int) -> tuple[np.ndarray, np.ndarray, int]:
    """Precomputed (psi_rev, inv_psi_rev, inv_n) tables for an (N, p) pair."""
    if n & (n - 1) or n < 2:
        raise ParameterError(f"NTT size must be a power of two >= 2, got {n}")
    if (p - 1) % (2 * n):
        raise ParameterError(f"prime {p} does not support negacyclic NTT of size {n}")
    psi = root_of_unity(2 * n, p)
    ipsi = inv_mod(psi, p)
    powers = np.empty(n, dtype=np.int64)
    ipowers = np.empty(n, dtype=np.int64)
    acc = iacc = 1
    for i in range(n):
        powers[i] = acc
        ipowers[i] = iacc
        acc = acc * psi % p
        iacc = iacc * ipsi % p
    rev = _bit_reverse_indices(n)
    return powers[rev], ipowers[rev], inv_mod(n, p)


def ntt_forward(a: np.ndarray, p: int) -> np.ndarray:
    """Forward negacyclic NTT of ``a`` (length N) modulo prime p.

    Input in natural order, output in bit-reversed order (which is fine:
    pointwise products and the matching inverse transform compose correctly).
    """
    a = np.mod(a, p).astype(np.int64)
    n = a.shape[-1]
    psi_rev, _, _ = _tables(n, p)
    t = n
    m = 1
    while m < n:
        t //= 2
        view = a.reshape(*a.shape[:-1], m, 2, t)
        s = psi_rev[m : 2 * m].reshape(m, 1)
        u = view[..., 0, :].copy()
        v = view[..., 1, :] * s % p
        view[..., 0, :] = (u + v) % p
        view[..., 1, :] = (u - v) % p
        m *= 2
    return a


def ntt_inverse(a: np.ndarray, p: int) -> np.ndarray:
    """Inverse of :func:`ntt_forward` (bit-reversed in, natural order out)."""
    a = np.mod(a, p).astype(np.int64)
    n = a.shape[-1]
    _, ipsi_rev, inv_n = _tables(n, p)
    t = 1
    m = n
    while m > 1:
        h = m // 2
        view = a.reshape(*a.shape[:-1], h, 2, t)
        s = ipsi_rev[h : 2 * h].reshape(h, 1)
        u = view[..., 0, :].copy()
        v = view[..., 1, :].copy()
        view[..., 0, :] = (u + v) % p
        view[..., 1, :] = (u - v) * s % p
        t *= 2
        m = h
    return a * inv_n % p


def ntt_mul(a: np.ndarray, b: np.ndarray, p: int) -> np.ndarray:
    """Negacyclic product of two length-N coefficient vectors modulo p."""
    fa = ntt_forward(a, p)
    fb = ntt_forward(b, p)
    return ntt_inverse(fa * fb % p, p)


# ---------------------------------------------------------------------------
# Residue-stacked transforms: one butterfly pass covers every RNS limb
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _rns_tables(
    n: int, moduli: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stacked (psi_rev, inv_psi_rev, inv_n, moduli-column) for a limb chain.

    Each row of the (L, N) twiddle stacks is the per-prime table from
    :func:`_tables`; the moduli come back as an (L, 1) int64 column ready to
    broadcast against (L, N) residue matrices.
    """
    psi = np.stack([_tables(n, p)[0] for p in moduli])
    ipsi = np.stack([_tables(n, p)[1] for p in moduli])
    inv_n = np.array([_tables(n, p)[2] for p in moduli], dtype=np.int64)[:, None]
    mods = np.array(moduli, dtype=np.int64)[:, None]
    for arr in (psi, ipsi, inv_n, mods):
        arr.setflags(write=False)
    return psi, ipsi, inv_n, mods


def ntt_forward_rns(a: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
    """Forward negacyclic NTT of an (..., L, N) residue stack, all limbs at once.

    Axis -2 indexes limbs: slice i is transformed modulo ``moduli[i]``; one
    butterfly pass per stage covers every limb (the per-prime loop this
    replaces ran log2(N) stages L times over). Leading axes batch freely —
    the fused-kernel layer stacks gadget digits (D, L, N) or whole giant-step
    groups (G, D, L, N) through a single call, amortizing the Python/numpy
    dispatch of every stage across the batch. Same ordering contract as
    :func:`ntt_forward`: natural in, bit-reversed out. Overflow-safe for
    primes < 2**31: every intermediate product is < 2**62.
    """
    n = a.shape[-1]
    psi_rev, _, _, mods = _rns_tables(n, moduli)
    a = np.mod(a, mods).astype(np.int64)
    mods3 = mods[:, :, None]
    t = n
    m = 1
    while m < n:
        t //= 2
        view = a.reshape(*a.shape[:-1], m, 2, t)
        s = psi_rev[:, m : 2 * m, None]
        u = view[..., 0, :].copy()
        v = view[..., 1, :] * s % mods3
        view[..., 0, :] = (u + v) % mods3
        view[..., 1, :] = (u - v) % mods3
        m *= 2
    return a


def ntt_inverse_rns(a: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`ntt_forward_rns` (bit-reversed in, natural out).

    Accepts the same (..., L, N) batched stacks as the forward transform.
    """
    n = a.shape[-1]
    _, ipsi_rev, inv_n, mods = _rns_tables(n, moduli)
    a = np.mod(a, mods).astype(np.int64)
    mods3 = mods[:, :, None]
    t = 1
    m = n
    while m > 1:
        h = m // 2
        view = a.reshape(*a.shape[:-1], h, 2, t)
        s = ipsi_rev[:, h : 2 * h, None]
        u = view[..., 0, :].copy()
        v = view[..., 1, :].copy()
        view[..., 0, :] = (u + v) % mods3
        view[..., 1, :] = (u - v) * s % mods3
        t *= 2
        m = h
    return a * inv_n % mods


def ntt_mul_rns(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
    """Negacyclic product of two (L, N) residue stacks, one pass per stage."""
    _, _, _, mods = _rns_tables(a.shape[-1], moduli)
    fa = ntt_forward_rns(a, moduli)
    fb = ntt_forward_rns(b, moduli)
    return ntt_inverse_rns(fa * fb % mods, moduli)


@lru_cache(maxsize=None)
def _exact_mul_basis(n: int, limbs: int) -> tuple[int, ...]:
    """Auxiliary RNS basis for exact products: ``limbs`` 31-bit NTT primes.

    Deterministic (largest qualifying primes downward), so every caller at
    the same (n, limbs) shares one cached twiddle set via :func:`_rns_tables`.
    """
    from repro.utils.modmath import find_ntt_primes

    return tuple(find_ntt_primes(limbs, 31, 2 * n))


def negacyclic_mul_exact(a, b) -> list[int]:
    """Exact product in Z[X]/(X^N + 1) over arbitrary-precision integers.

    ``a`` and ``b`` are sequences of (possibly large, possibly negative)
    Python integers. For power-of-two lengths the product is computed in an
    auxiliary RNS basis wide enough that the centered CRT lift recovers the
    true integer coefficients (|c_i| <= N * max|a| * max|b| < basis/2):
    vectorized int64 NTTs do the convolution, big-int work is confined to
    the basis conversion at the seams. Other lengths fall back to Kronecker
    substitution into Python big integers.
    """
    n = len(a)
    if len(b) != n:
        raise ParameterError("operands must have equal length")
    if n >= 2 and not (n & (n - 1)):
        arr_a = np.array([int(x) for x in a], dtype=object)
        arr_b = np.array([int(x) for x in b], dtype=object)
        max_a = max(1, int(max(arr_a.max(), -arr_a.min())))
        max_b = max(1, int(max(arr_b.max(), -arr_b.min())))
        # Basis product > 2 * N * max_a * max_b: centered lift is exact.
        bound_bits = (n * max_a * max_b).bit_length() + 2
        # find_ntt_primes(bits=31) yields primes in (2**30, 2**31).
        basis = _exact_mul_basis(n, -(-bound_bits // 30))
        from repro.fhe.rns import from_rns_centered, to_rns

        stacked = np.stack([to_rns(arr_a, basis), to_rns(arr_b, basis)])
        f = ntt_forward_rns(stacked, basis)
        mods = np.array(basis, dtype=np.int64)[:, None]
        prod = ntt_inverse_rns(f[0] * f[1] % mods, basis)
        return from_rns_centered(prod, basis)
    return _negacyclic_mul_kronecker([int(x) for x in a], [int(x) for x in b])


def _negacyclic_mul_kronecker(a: list[int], b: list[int]) -> list[int]:
    """Kronecker-substitution reference path (any length, pure big-int).

    The polynomials are evaluated at x = 2**bits with non-negative digit
    packing, multiplied as two big integers (Python's Karatsuba does the
    heavy lifting), unpacked, and reduced negacyclically. Retained as the
    fallback for non-power-of-two lengths and as the independent oracle the
    RNS-basis path is tested against.
    """
    n = len(a)
    # Shift to non-negative digits: offset each coefficient by M, multiply,
    # then subtract the cross terms. Cheaper: split into sign-free parts.
    # Split into non-negative parts so every packed digit stays non-negative
    # and unpacking needs no sign/carry handling. Four big-int products:
    # (a+ - a-)(b+ - b-) = (a+b+ + a-b-) - (a+b- + a-b+).
    a_pos = [x if x > 0 else 0 for x in a]
    a_neg = [-x if x < 0 else 0 for x in a]
    b_pos = [x if x > 0 else 0 for x in b]
    b_neg = [-x if x < 0 else 0 for x in b]
    max_a = max(max(a_pos, default=0), max(a_neg, default=0), 1)
    max_b = max(max(b_pos, default=0), max(b_neg, default=0), 1)
    # Each digit of a product of packed ints is at most n * max_a * max_b,
    # and we add two such products together: one extra bit covers the sum.
    bits = (max_a * max_b * n).bit_length() + 2
    mask = (1 << bits) - 1

    def pack(coeffs: list[int]) -> int:
        out = 0
        for c in reversed(coeffs):
            out = (out << bits) | c
        return out

    pp = pack(a_pos) * pack(b_pos) + pack(a_neg) * pack(b_neg)
    pm = pack(a_pos) * pack(b_neg) + pack(a_neg) * pack(b_pos)

    def unpack(value: int) -> list[int]:
        digits = []
        for _ in range(2 * n):
            digits.append(value & mask)
            value >>= bits
        return digits

    dp = unpack(pp)
    dm = unpack(pm)
    full = [dp[i] - dm[i] for i in range(2 * n)]
    return [full[i] - full[i + n] for i in range(n)]


def cyclic_ntt(a: np.ndarray, p: int, root: int) -> np.ndarray:
    """Cyclic DFT of size len(a) over Z_p with the given primitive root.

    Iterative radix-2 Cooley-Tukey with bit-reversed input ordering; output
    X[k] = sum_m a[m] * root^(k*m). Used for the O(t log t) LUT-polynomial
    interpolation at t = 65537 (whose multiplicative group has power-of-two
    order 2^16).
    """
    a = np.mod(np.asarray(a, dtype=np.int64), p)
    n = a.shape[0]
    if n & (n - 1):
        raise ParameterError("cyclic NTT size must be a power of two")
    if pow(root, n, p) != 1 or pow(root, n // 2, p) == 1:
        raise ParameterError("root is not a primitive n-th root of unity")
    rev = _bit_reverse_indices(n)
    a = a[rev].copy()
    length = 2
    while length <= n:
        w = pow(root, n // length, p)
        half = length // 2
        twiddle = np.empty(half, dtype=np.int64)
        acc = 1
        for i in range(half):
            twiddle[i] = acc
            acc = acc * w % p
        view = a.reshape(-1, length)
        u = view[:, :half].copy()
        v = view[:, half:] * twiddle % p
        view[:, :half] = (u + v) % p
        view[:, half:] = (u - v) % p
        length *= 2
    return a
