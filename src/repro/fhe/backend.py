"""Pluggable op-dispatch backends for every homomorphic primitive.

Every primitive the Athena loop executes — RNS NTT/INTT and limb
arithmetic, modulus switching, LWE sample extraction and dimension
switching, the packing matrix-vector product, FBS evaluation (baby and
giant halves), and the S2C transform — dispatches through the *active*
:class:`Backend`. Three backends ship:

* :class:`BatchedBackend` — the residue-stacked numpy engine (default):
  every RnsPoly op treats the (L, N) residue matrix as one stacked array,
  multiplications go through :func:`repro.fhe.ntt.ntt_forward_rns`.
* :class:`SerialBackend` — the original per-prime loops, frozen as the
  reference semantics. The equivalence suite pins the batched path
  bit-identical to it.
* :class:`CountingBackend` — a wrapper that executes through an inner
  backend while recording per-phase primitive counts compatible with the
  analytical :class:`repro.core.trace.OpCounts` model, so the trace
  model is verifiable against ops actually executed and the accelerator
  scheduler can consume *executed* traces.

Selection is **context-local** (:class:`contextvars.ContextVar`), not a
module global: two threads — or two :class:`repro.serve.InferenceSession`
requests — may run different backends concurrently without interfering.
The process-wide default honors the ``REPRO_BACKEND`` environment variable
(``batched`` | ``serial``), which is how CI runs the whole tier-1 suite
under the serial reference.

Bit-identity contract: all backends reduce the same integers modulo the
same primes — only loop structure and instrumentation differ — so every
primitive's output is bit-for-bit identical across backends. The
cross-backend equivalence suite (``tests/test_backend.py``) pins this at
the RnsPoly level and end-to-end through the five-step pipeline.

Fused tier: beyond the per-primitive RNS ops, the protocol carries four
coarse-grained ops that dominate the FBS hot path — :meth:`Backend.hadd_many`
(one deferred reduction across an HAdd chain), :meth:`Backend.keyswitch`
(gadget keyswitch of one component), :meth:`Backend.rotate_keyswitch`
(automorphism + keyswitch, the packing/S2C rotation), and
:meth:`Backend.giant_step_batch` (all giant-step CMult keyswitches of one
FBS batched through stacked ``(G, D, L, N)`` transforms). Base-class
defaults decompose to today's primitives (so :class:`SerialBackend`
semantics are unchanged); :class:`BatchedBackend` overrides them with
residue-stacked fused kernels built on cached NTT-domain key stacks and
lazy reduction (:func:`lazy_reduce_sum`, bounded by
:func:`lazy_chain_limit`); :class:`UnfusedBatchedBackend` pins the batched
kernels with fusion off, as the speedup baseline for the kernel-bench CI
gate. All default and fused implementations are *dispatch-free* — they
call ``self`` methods and module-level transforms, never
:func:`current_backend` — so :class:`CountingBackend` can count each fused
op exactly once in primitive-equivalent units and delegate execution to
its inner backend without double counting.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
from functools import lru_cache

import numpy as np

from repro.errors import ParameterError
from repro.fhe.ntt import (
    ntt_forward,
    ntt_forward_rns,
    ntt_inverse,
    ntt_inverse_rns,
)
from repro.utils.modmath import inv_mod

__all__ = [
    "Backend",
    "BatchedBackend",
    "CountingBackend",
    "SerialBackend",
    "UnfusedBatchedBackend",
    "current_backend",
    "default_backend",
    "get_backend",
    "lazy_chain_limit",
    "lazy_reduce_sum",
    "use_backend",
]


def lazy_chain_limit(moduli: tuple[int, ...]) -> int:
    """Max number of reduced residues that may be summed lazily in int64.

    Every reduced residue is <= max(moduli) - 1, so a chain of k deferred
    additions peaks at k * (max_p - 1); the accumulator stays below
    2**63 - 1 as long as k <= this bound. For 31-bit limb primes the bound
    is ~2**32 — far above any HAdd chain or gadget-digit count in the zoo
    models (the hypothesis suite in ``tests/test_fused_kernels.py`` pins
    this across all presets).
    """
    return (2**63 - 1) // (max(moduli) - 1)


def lazy_reduce_sum(stack: np.ndarray, moduli: tuple[int, ...], axis: int = 0) -> np.ndarray:
    """Sum already-reduced residue stacks along ``axis``, reducing once.

    The fused-kernel primitive behind :meth:`Backend.hadd_many` and the
    NTT-domain keyswitch accumulators: instead of reducing mod p after
    every addition, defer the reduction across the whole chain and apply
    one ``%`` at the end. Inputs must already be reduced (< max(moduli));
    chains longer than :func:`lazy_chain_limit` are folded in
    overflow-safe chunks. The limb axis of the *result* must be -2 so the
    (L, 1) modulus column broadcasts.
    """
    mods = _moduli_column(moduli)
    k = stack.shape[axis]
    limit = lazy_chain_limit(moduli)
    if k <= limit:
        return np.add.reduce(stack, axis=axis) % mods
    acc = None
    for start in range(0, k, limit):
        index = [slice(None)] * stack.ndim
        index[axis] = slice(start, start + limit)
        part = np.add.reduce(stack[tuple(index)], axis=axis) % mods
        acc = part if acc is None else (acc + part) % mods
    return acc


@lru_cache(maxsize=None)
def automorphism_map(n: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Destination indices and signs for the map X -> X^k on degree-N rings.

    Coefficient j of the input lands at index (j*k mod 2N); indices >= N wrap
    negacyclically: X^(N+r) = -X^r. ``k`` must be odd so the map is a ring
    automorphism.
    """
    if k % 2 == 0:
        raise ParameterError(f"Galois element must be odd, got {k}")
    j = np.arange(n, dtype=np.int64)
    dest = (j * (k % (2 * n))) % (2 * n)
    sign = np.where(dest >= n, -1, 1).astype(np.int64)
    dest = np.where(dest >= n, dest - n, dest)
    return dest, sign


@lru_cache(maxsize=None)
def _moduli_column(moduli: tuple[int, ...]) -> np.ndarray:
    """(L, 1) int64 broadcast column for a modulus chain."""
    col = np.array(moduli, dtype=np.int64)[:, None]
    col.setflags(write=False)
    return col


class _BatchedKernel:
    """Residue-stacked arithmetic: one numpy pass covers every limb."""

    name = "batched"

    @staticmethod
    def add(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        return (a + b) % _moduli_column(moduli)

    @staticmethod
    def sub(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        return (a - b) % _moduli_column(moduli)

    @staticmethod
    def neg(a: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        return -a % _moduli_column(moduli)

    @staticmethod
    def mul(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        mods = _moduli_column(moduli)
        fa = ntt_forward_rns(a, moduli)
        fb = ntt_forward_rns(b, moduli)
        return ntt_inverse_rns(fa * fb % mods, moduli)

    @staticmethod
    def ntt(a: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        return ntt_forward_rns(a, moduli)

    @staticmethod
    def mul_ntt(a: np.ndarray, fb: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        mods = _moduli_column(moduli)
        fa = ntt_forward_rns(a, moduli)
        return ntt_inverse_rns(fa * fb % mods, moduli)

    @staticmethod
    def scalar_mul(a: np.ndarray, value: int, moduli: tuple[int, ...]) -> np.ndarray:
        mods = _moduli_column(moduli)
        residues = np.array([value % p for p in moduli], dtype=np.int64)[:, None]
        return a * residues % mods

    @staticmethod
    def inv_scalar(a: np.ndarray, value: int, moduli: tuple[int, ...]) -> np.ndarray:
        mods = _moduli_column(moduli)
        invs = np.array([inv_mod(value, p) for p in moduli], dtype=np.int64)[:, None]
        return a * invs % mods

    @staticmethod
    def automorphism(a: np.ndarray, k: int, moduli: tuple[int, ...]) -> np.ndarray:
        # Accepts (..., L, N): leading axes batch, so the fused
        # rotate-keyswitch can permute both ciphertext components at once.
        n = a.shape[-1]
        dest, sign = automorphism_map(n, k)
        out = np.empty_like(a)
        # |a * sign| < p < 2**31, so the signed product is int64-exact.
        out[..., dest] = a * sign % _moduli_column(moduli)
        return out

    @staticmethod
    def shift(a: np.ndarray, shift: int, moduli: tuple[int, ...]) -> np.ndarray:
        n = a.shape[1]
        mods = _moduli_column(moduli)
        rolled = np.roll(a, shift % n, axis=1)
        if shift % n:
            rolled[:, : shift % n] = -rolled[:, : shift % n] % mods
        if shift >= n:
            rolled = -rolled % mods
        return rolled


class _SerialKernel:
    """The pre-batching per-prime loops, frozen as reference semantics."""

    name = "serial"

    @staticmethod
    def add(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        data = a + b
        for i, p in enumerate(moduli):
            data[i] %= p
        return data

    @staticmethod
    def sub(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        data = a - b
        for i, p in enumerate(moduli):
            data[i] %= p
        return data

    @staticmethod
    def neg(a: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        data = -a
        for i, p in enumerate(moduli):
            data[i] %= p
        return data

    @staticmethod
    def mul(a: np.ndarray, b: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        out = np.empty_like(a)
        for i, p in enumerate(moduli):
            fa = ntt_forward(a[i].copy(), p)
            fb = ntt_forward(b[i].copy(), p)
            out[i] = ntt_inverse(fa * fb % p, p)
        return out

    @staticmethod
    def ntt(a: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        out = np.empty_like(a)
        for i, p in enumerate(moduli):
            out[i] = ntt_forward(a[i].copy(), p)
        return out

    @staticmethod
    def mul_ntt(a: np.ndarray, fb: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
        out = np.empty_like(a)
        for i, p in enumerate(moduli):
            fa = ntt_forward(a[i].copy(), p)
            out[i] = ntt_inverse(fa * fb[i] % p, p)
        return out

    @staticmethod
    def scalar_mul(a: np.ndarray, value: int, moduli: tuple[int, ...]) -> np.ndarray:
        out = np.empty_like(a)
        for i, p in enumerate(moduli):
            out[i] = a[i] * (value % p) % p
        return out

    @staticmethod
    def inv_scalar(a: np.ndarray, value: int, moduli: tuple[int, ...]) -> np.ndarray:
        out = np.empty_like(a)
        for i, p in enumerate(moduli):
            out[i] = a[i] * inv_mod(value, p) % p
        return out

    @staticmethod
    def automorphism(a: np.ndarray, k: int, moduli: tuple[int, ...]) -> np.ndarray:
        n = a.shape[1]
        dest, sign = automorphism_map(n, k)
        out = np.zeros_like(a)
        signed = a * sign  # safe: |value| < p < 2**31
        for i, p in enumerate(moduli):
            out[i][dest] = signed[i] % p  # k odd => dest is a permutation
        return out

    @staticmethod
    def shift(a: np.ndarray, shift: int, moduli: tuple[int, ...]) -> np.ndarray:
        n = a.shape[1]
        out = np.empty_like(a)
        for i, p in enumerate(moduli):
            row = a[i]
            rolled = np.roll(row, shift % n)
            if shift % n:
                rolled[: shift % n] = (-rolled[: shift % n]) % p
            if shift >= n:
                rolled = (-rolled) % p
            out[i] = rolled
        return out


class Backend:
    """Dispatch point for every homomorphic primitive.

    Three tiers:

    * **RNS tier** — limb arithmetic on (L, N) residue matrices
      (:meth:`add` .. :meth:`shift`, :meth:`mod_switch`). Concrete
      backends plug a kernel here; this is where batched and serial
      differ.
    * **LWE tier** — the noise-control chain (:meth:`sample_extract`,
      :meth:`lwe_keyswitch`, :meth:`lwe_rescale`). Default
      implementations delegate to :mod:`repro.fhe.lwe`; a hardware
      backend may override them wholesale.
    * **composite tier** — :meth:`matvec` (packing / S2C diagonals),
      :meth:`fbs`, :meth:`s2c`. Defaults delegate to the module
      implementations, whose inner ops re-enter the active backend, so a
      wrapper (e.g. :class:`CountingBackend`) observes every sub-op.

    Plus two instrumentation hooks, no-ops except on counting backends:
    :meth:`record` (a primitive event) and :meth:`phase` (a phase label
    for subsequent events, used by the executed-trace model).
    """

    name = "base"
    kernel = _BatchedKernel

    @property
    def rns_name(self) -> str:
        """Name of the RNS arithmetic kernel actually executing."""
        return self.kernel.name

    # -- RNS tier ----------------------------------------------------------

    def add(self, a, b, moduli):
        return self.kernel.add(a, b, moduli)

    def sub(self, a, b, moduli):
        return self.kernel.sub(a, b, moduli)

    def neg(self, a, moduli):
        return self.kernel.neg(a, moduli)

    def mul(self, a, b, moduli):
        return self.kernel.mul(a, b, moduli)

    def ntt(self, a, moduli):
        return self.kernel.ntt(a, moduli)

    def mul_ntt(self, a, fb, moduli):
        return self.kernel.mul_ntt(a, fb, moduli)

    def scalar_mul(self, a, value, moduli):
        return self.kernel.scalar_mul(a, value, moduli)

    def inv_scalar(self, a, value, moduli):
        return self.kernel.inv_scalar(a, value, moduli)

    def automorphism(self, a, k, moduli):
        return self.kernel.automorphism(a, k, moduli)

    def shift(self, a, shift, moduli):
        return self.kernel.shift(a, shift, moduli)

    def mod_switch(self, data, moduli, new_modulus):
        """Scale-and-round an (L, N) residue stack from Q to ``new_modulus``.

        The RNS base-conversion seam of the loop (paper Eq. 2): an exact
        CRT lift followed by coefficient-wise scale-and-round. Returns a
        plain int64 vector (the target modulus is word-sized everywhere
        this is used: the LWE modulus q' or the plaintext modulus t).
        """
        from repro.fhe import rns

        q = rns.rns_modulus(moduli)
        coeffs = rns.from_rns_object(data, moduli)
        scaled = ((coeffs * new_modulus + q // 2) // q) % new_modulus
        return scaled.astype(np.int64)

    # -- fused tier --------------------------------------------------------
    #
    # Coarse-grained ops covering the FBS hot path. The defaults below
    # decompose to the RNS-tier primitives of *this* backend (``self``
    # methods only — never ``current_backend()``), which keeps serial
    # semantics unchanged and lets CountingBackend count each fused op
    # exactly once before delegating execution to its inner backend.

    def hadd_many(self, arrays, moduli):
        """Sum k reduced (L, N) residue stacks; one chain, one result.

        Default: the sequential left-fold the call sites used to spell
        out. BatchedBackend defers the modular reduction across the whole
        chain (:func:`lazy_reduce_sum`).
        """
        acc = arrays[0]
        for other in arrays[1:]:
            acc = self.add(acc, other, moduli)
        return acc

    def keyswitch(self, data, ksk, moduli):
        """Gadget keyswitch of one component's (L, N) residue stack.

        Returns the (delta_c0, delta_c1) residue stacks to be added to the
        ciphertext. Default: the classic digit loop — decompose, then one
        full polynomial product per digit per output component, exactly as
        ``repro.fhe.keys.apply_keyswitch`` historically inlined it.
        """
        from repro.fhe.keys import gadget_digit_rows

        digit_rows = gadget_digit_rows(data, moduli, ksk.base_bits, ksk.num_digits)
        mods = _moduli_column(moduli)
        out0 = np.zeros_like(data)
        out1 = np.zeros_like(data)
        for d in range(ksk.num_digits):
            dig = np.mod(digit_rows[d][None, :], mods)
            out0 = self.add(out0, self.mul(dig, ksk.k0[d].data, moduli), moduli)
            out1 = self.add(out1, self.mul(dig, ksk.k1[d].data, moduli), moduli)
        return out0, out1

    def rotate_keyswitch(self, c0, c1, k, ksk, moduli):
        """Fused automorphism + keyswitch: the packing/S2C rotation body.

        Takes the two component stacks of a ciphertext, applies X -> X^k to
        both, keyswitches the rotated c1 back under the base secret, and
        returns the new (c0, c1) stacks. Default decomposes to two
        automorphisms, a keyswitch, and the final correction add.
        """
        c0k = self.automorphism(c0, k, moduli)
        c1k = self.automorphism(c1, k, moduli)
        d0, d1 = self.keyswitch(c1k, ksk, moduli)
        return self.add(c0k, d0, moduli), d1

    def giant_step_batch(self, ctx, pairs, rlk):
        """Relinearized CMult for every giant-step pair of one FBS.

        ``pairs`` is a list of (inner, giant) BfvCiphertexts; returns the
        list of products in order. Default: per-pair tensor + keyswitch +
        correction adds — the exact op sequence ``ctx.cmult`` used to run,
        with the keyswitch routed through :meth:`keyswitch` so a batched
        override can stack all G gadget decompositions through single
        (G, D, L, N) transforms.
        """
        from repro.fhe.bfv import BfvCiphertext
        from repro.fhe.poly import RnsPoly

        out = []
        for a, b in pairs:
            moduli = a.params.moduli
            self.record("cmult")
            r0, r1, r2, noise = ctx.cmult_tensor(a, b)
            self.record("keyswitch")
            d0, d1 = self.keyswitch(r2.data, rlk, moduli)
            c0 = RnsPoly(self.add(r0.data, d0, moduli), moduli)
            c1 = RnsPoly(self.add(r1.data, d1, moduli), moduli)
            out.append(BfvCiphertext(c0, c1, a.params, noise))
        return out

    # -- LWE tier ----------------------------------------------------------

    def sample_extract(self, ct, indices=None):
        """Algorithm 1: RLWE coefficients -> independent LWE ciphertexts."""
        from repro.fhe import lwe

        return lwe.sample_extract_impl(ct, indices)

    def lwe_keyswitch(self, batch, ksk):
        """LWE dimension switch N -> n with gadget decomposition."""
        from repro.fhe import lwe

        return lwe.keyswitch_impl(batch, ksk)

    def lwe_rescale(self, batch, new_modulus):
        """Scale-and-round a batch of LWE ciphertexts to ``new_modulus``."""
        from repro.fhe import lwe

        return lwe.lwe_mod_switch_impl(batch, new_modulus)

    # -- composite tier ----------------------------------------------------

    def matvec(self, ctx, ct, diagonals, rotation_keys, baby_steps, plan=None):
        """BSGS Halevi-Shoup plaintext-matrix x ciphertext-vector product."""
        from repro.fhe import packing

        return packing.hypercube_matvec_impl(
            ctx, ct, diagonals, rotation_keys, baby_steps, plan=plan
        )

    def fbs(self, ctx, ct, lut, rlk, cost=None, plan=None):
        """Functional bootstrapping: evaluate a LUT polynomial on all slots."""
        from repro.fhe import fbs

        return fbs.fbs_evaluate_impl(ctx, ct, lut, rlk, cost=cost, plan=plan)

    def s2c(self, ctx, ct, key, plan=None):
        """Slot-to-coefficient transform."""
        from repro.fhe import s2c

        return s2c.slot_to_coeff_impl(ctx, ct, key, plan=plan)

    # -- instrumentation hooks ---------------------------------------------

    def record(self, op: str, k: int = 1) -> None:
        """Note ``k`` occurrences of primitive ``op`` (no-op here)."""

    def phase(self, name: str):
        """Label subsequent events with ``name`` (no-op context here)."""
        return contextlib.nullcontext()


class BatchedBackend(Backend):
    """Residue-stacked execution engine (the default hot path).

    Overrides the fused tier with stacked-array kernels: keyswitches run
    one batched forward NTT over all gadget digits against cached
    NTT-domain key stacks (:meth:`repro.fhe.keys.KeySwitchKey.ntt_stack`),
    accumulate in the NTT domain with lazy reduction, and pay two inverse
    transforms per keyswitch instead of two per digit. Bit-identical to
    the decomposed defaults: the NTT is linear mod p, so
    ``intt(sum(f_d * k_d mod p) mod p) == sum(intt(f_d * k_d)) mod p``
    exactly, and the cached key transforms are the same deterministic
    ``ntt_forward_rns`` values the per-digit path recomputes.
    """

    name = "batched"
    kernel = _BatchedKernel

    #: Soft element budget for one stacked (G', D, L, N) giant-step chunk
    #: (~128 MiB of int64); keeps large-parameter batches out of swap
    #: without changing results (chunk boundaries are invisible mod p).
    giant_batch_elems = 1 << 24

    def hadd_many(self, arrays, moduli):
        if len(arrays) == 1:
            return arrays[0]
        return lazy_reduce_sum(np.stack(arrays), moduli)

    def keyswitch(self, data, ksk, moduli):
        from repro.fhe.keys import gadget_digit_rows

        mods = _moduli_column(moduli)
        digit_rows = gadget_digit_rows(data, moduli, ksk.base_bits, ksk.num_digits)
        # Broadcast (D, N) digits across limbs, one batched forward pass.
        fd = ntt_forward_rns(np.mod(digit_rows[:, None, :], mods), moduli)
        k0, k1 = ksk.ntt_stack()
        # Products reduce below 2**31 before the lazy digit-axis sum.
        acc0 = lazy_reduce_sum(fd * k0 % mods, moduli)
        acc1 = lazy_reduce_sum(fd * k1 % mods, moduli)
        out = ntt_inverse_rns(np.stack([acc0, acc1]), moduli)
        return out[0], out[1]

    def rotate_keyswitch(self, c0, c1, k, ksk, moduli):
        rot = self.kernel.automorphism(np.stack([c0, c1]), k, moduli)
        d0, d1 = self.keyswitch(rot[1], ksk, moduli)
        return (rot[0] + d0) % _moduli_column(moduli), d1

    def giant_step_batch(self, ctx, pairs, rlk):
        from repro.fhe.bfv import BfvCiphertext
        from repro.fhe.keys import gadget_digit_rows
        from repro.fhe.poly import RnsPoly

        if not pairs:
            return []
        params = pairs[0][0].params
        moduli = params.moduli
        mods = _moduli_column(moduli)
        num_digits = rlk.num_digits
        k0, k1 = rlk.ntt_stack()
        per_pair = num_digits * len(moduli) * params.n
        chunk = max(1, self.giant_batch_elems // per_pair)
        out = []
        for start in range(0, len(pairs), chunk):
            group = pairs[start : start + chunk]
            tensors = [ctx.cmult_tensor(a, b) for a, b in group]
            digits = np.stack(
                [
                    gadget_digit_rows(r2.data, moduli, rlk.base_bits, num_digits)
                    for _, _, r2, _ in tensors
                ]
            )
            # (G, D, N) digits -> (G, D, L, N) residues, one forward pass.
            fd = ntt_forward_rns(np.mod(digits[:, :, None, :], mods), moduli)
            acc0 = lazy_reduce_sum(fd * k0 % mods, moduli, axis=1)
            acc1 = lazy_reduce_sum(fd * k1 % mods, moduli, axis=1)
            deltas = ntt_inverse_rns(np.stack([acc0, acc1]), moduli)
            for g, (r0, r1, _, noise) in enumerate(tensors):
                c0 = RnsPoly((r0.data + deltas[0, g]) % mods, moduli)
                c1 = RnsPoly((r1.data + deltas[1, g]) % mods, moduli)
                out.append(BfvCiphertext(c0, c1, params, noise))
        return out


class UnfusedBatchedBackend(BatchedBackend):
    """Batched RNS kernels with the fused tier decomposed to primitives.

    Same (L, N) stacked limb arithmetic as :class:`BatchedBackend`, but
    every fused op falls back to the base-class digit loops — the
    apples-to-apples baseline the kernel-bench CI gate measures fusion
    against, and the ``REPRO_BACKEND=batched-unfused`` tier-1 matrix leg.
    """

    name = "batched-unfused"

    hadd_many = Backend.hadd_many
    keyswitch = Backend.keyswitch
    rotate_keyswitch = Backend.rotate_keyswitch
    giant_step_batch = Backend.giant_step_batch


class SerialBackend(Backend):
    """Frozen per-prime reference loops (equivalence + speedup baseline)."""

    name = "serial"
    kernel = _SerialKernel


class CountingBackend(Backend):
    """Execute through ``inner`` while recording per-phase op counts.

    Counts two kinds of events into ``phase -> {op: count}`` records:

    * RNS-tier work, derived from the dispatched array shapes in the same
      units as the analytical trace model (:mod:`repro.core.trace`):
      ``ntt`` (limb transforms), ``mod_mul`` / ``mod_add`` (elements),
      ``automorph`` / ``shift`` (limb permutations), ``rnsconv``
      (mod-switch elements).
    * primitive events recorded by the dispatch sites: ``pmult``,
      ``smult``, ``hadd``, ``add_plain``, ``cmult``, ``rotation``,
      ``keyswitch``, ``extract``, ``lwe_keyswitch``, ``lwe_mod_switch``,
      ``mod_switch``, ``matvec``, ``pack``, ``fbs``, ``s2c``, ...

    The phase label is thread-local (each worker of a chunked-tile
    fan-out runs its five-step chain — and therefore opens its phases —
    in its own thread); the counter store is lock-protected, so one
    recorder may be shared across the fan-out. Use
    :func:`repro.core.trace.executed_trace` to view the records as a
    :class:`~repro.core.trace.WorkloadTrace` for the accel scheduler.
    """

    name = "counting"

    def __init__(self, inner: "Backend | str | None" = None):
        self.inner = get_backend(inner) if inner is not None else default_backend()
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.phase_ops: dict[str, dict[str, int]] = {}

    @property
    def rns_name(self) -> str:
        return self.inner.rns_name

    # -- recording ----------------------------------------------------------

    def current_phase(self) -> str:
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else "other"

    @contextlib.contextmanager
    def phase(self, name: str):
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append(name)
        try:
            yield
        finally:
            stack.pop()

    def record(self, op: str, k: int = 1) -> None:
        phase = self.current_phase()
        with self._lock:
            ops = self.phase_ops.setdefault(phase, {})
            ops[op] = ops.get(op, 0) + k

    def _bulk(self, **ops: int) -> None:
        phase = self.current_phase()
        with self._lock:
            store = self.phase_ops.setdefault(phase, {})
            for op, k in ops.items():
                store[op] = store.get(op, 0) + k

    # -- views --------------------------------------------------------------

    def ops_by_phase(self) -> dict[str, dict[str, int]]:
        """Snapshot of the per-phase records (phase -> {op: count})."""
        with self._lock:
            return {ph: dict(ops) for ph, ops in self.phase_ops.items()}

    def totals(self) -> dict[str, int]:
        """Op counts summed across phases."""
        out: dict[str, int] = {}
        for ops in self.ops_by_phase().values():
            for op, k in ops.items():
                out[op] = out.get(op, 0) + k
        return dict(sorted(out.items()))

    def summary(self) -> dict:
        """JSON-ready snapshot: per-phase records plus totals."""
        return {
            "backend": self.inner.name,
            "phase_ops": {
                ph: dict(sorted(ops.items()))
                for ph, ops in sorted(self.ops_by_phase().items())
            },
            "ops": self.totals(),
        }

    def reset(self) -> None:
        with self._lock:
            self.phase_ops.clear()

    # -- RNS tier (count, then delegate) ------------------------------------

    def add(self, a, b, moduli):
        self._bulk(mod_add=a.size)
        return self.inner.add(a, b, moduli)

    def sub(self, a, b, moduli):
        self._bulk(mod_add=a.size)
        return self.inner.sub(a, b, moduli)

    def neg(self, a, moduli):
        self._bulk(mod_add=a.size)
        return self.inner.neg(a, moduli)

    def mul(self, a, b, moduli):
        # Two forward transforms + one inverse, plus the pointwise product.
        self._bulk(ntt=3 * len(moduli), mod_mul=a.size)
        return self.inner.mul(a, b, moduli)

    def ntt(self, a, moduli):
        self._bulk(ntt=len(moduli))
        return self.inner.ntt(a, moduli)

    def mul_ntt(self, a, fb, moduli):
        # The plan-cached operand skips its forward transform.
        self._bulk(ntt=2 * len(moduli), mod_mul=a.size)
        return self.inner.mul_ntt(a, fb, moduli)

    def scalar_mul(self, a, value, moduli):
        self._bulk(mod_mul=a.size)
        return self.inner.scalar_mul(a, value, moduli)

    def inv_scalar(self, a, value, moduli):
        self._bulk(mod_mul=a.size)
        return self.inner.inv_scalar(a, value, moduli)

    def automorphism(self, a, k, moduli):
        self._bulk(automorph=len(moduli))
        return self.inner.automorphism(a, k, moduli)

    def shift(self, a, shift, moduli):
        self._bulk(shift=len(moduli))
        return self.inner.shift(a, shift, moduli)

    def mod_switch(self, data, moduli, new_modulus):
        self._bulk(rnsconv=data.size)
        return self.inner.mod_switch(data, moduli, new_modulus)

    # -- fused tier (count once in decomposed-equivalent units, delegate) ----
    #
    # Fused implementations are dispatch-free, so the inner backend's
    # execution records nothing here: each fused op is counted exactly
    # once, in the primitive units the decomposed path would have
    # dispatched — per digit, one full product (3L ntt + LN mod_mul) per
    # output component plus the accumulator add. That keeps executed
    # counts identical whether the inner backend fuses or not, so
    # ``compare_traces`` reconciliation and the trace ratio bands hold
    # unchanged under fusion.

    def _keyswitch_units(self, size: int, num_limbs: int, num_digits: int) -> dict:
        return {
            "ntt": 6 * num_limbs * num_digits,
            "mod_mul": 2 * num_digits * size,
            "mod_add": 2 * num_digits * size,
        }

    def hadd_many(self, arrays, moduli):
        if len(arrays) > 1:
            self._bulk(mod_add=(len(arrays) - 1) * arrays[0].size)
        return self.inner.hadd_many(arrays, moduli)

    def keyswitch(self, data, ksk, moduli):
        self._bulk(**self._keyswitch_units(data.size, len(moduli), ksk.num_digits))
        return self.inner.keyswitch(data, ksk, moduli)

    def rotate_keyswitch(self, c0, c1, k, ksk, moduli):
        units = self._keyswitch_units(c0.size, len(moduli), ksk.num_digits)
        units["automorph"] = 2 * len(moduli)
        units["mod_add"] += c0.size  # the c0 + delta_c0 correction
        self._bulk(**units)
        return self.inner.rotate_keyswitch(c0, c1, k, ksk, moduli)

    def giant_step_batch(self, ctx, pairs, rlk):
        if pairs:
            moduli = pairs[0][0].params.moduli
            size = pairs[0][0].c0.data.size
            g = len(pairs)
            units = self._keyswitch_units(size, len(moduli), rlk.num_digits)
            units = {op: k * g for op, k in units.items()}
            units["mod_add"] += 2 * size * g  # r0+d0, r1+d1 per pair
            self.record("cmult", g)
            self.record("keyswitch", g)
            self._bulk(**units)
        return self.inner.giant_step_batch(ctx, pairs, rlk)

    # -- LWE tier ------------------------------------------------------------

    def sample_extract(self, ct, indices=None):
        out = self.inner.sample_extract(ct, indices)
        self.record("extract", out.count)
        return out

    def lwe_keyswitch(self, batch, ksk):
        self.record("lwe_keyswitch", batch.count)
        return self.inner.lwe_keyswitch(batch, ksk)

    def lwe_rescale(self, batch, new_modulus):
        self.record("lwe_mod_switch", batch.count)
        return self.inner.lwe_rescale(batch, new_modulus)

    # -- composite tier ------------------------------------------------------

    def matvec(self, ctx, ct, diagonals, rotation_keys, baby_steps, plan=None):
        self.record("matvec")
        return self.inner.matvec(
            ctx, ct, diagonals, rotation_keys, baby_steps, plan=plan
        )

    def fbs(self, ctx, ct, lut, rlk, cost=None, plan=None):
        self.record("fbs")
        return self.inner.fbs(ctx, ct, lut, rlk, cost=cost, plan=plan)

    def s2c(self, ctx, ct, key, plan=None):
        self.record("s2c")
        return self.inner.s2c(ctx, ct, key, plan=plan)


#: Singleton executing backends (stateless; counting backends are per-use).
BATCHED = BatchedBackend()
BATCHED_UNFUSED = UnfusedBatchedBackend()
SERIAL = SerialBackend()

_NAMED: dict[str, Backend] = {
    "batched": BATCHED,
    "batched-unfused": BATCHED_UNFUSED,
    "serial": SERIAL,
}

_ACTIVE: contextvars.ContextVar[Backend | None] = contextvars.ContextVar(
    "repro_fhe_backend", default=None
)

_DEFAULT: Backend | None = None


def get_backend(backend: "Backend | str") -> Backend:
    """Resolve a backend instance or name.

    Names: ``batched`` (fused default) | ``batched-unfused`` | ``serial``
    | ``counting``. ``counting`` returns a *fresh* CountingBackend over
    the batched engine each call — counters are per-use state, so there
    is no counting singleton to share.
    """
    if isinstance(backend, Backend):
        return backend
    if backend == "counting":
        return CountingBackend("batched")
    try:
        return _NAMED[backend]
    except KeyError:
        raise ParameterError(
            f"unknown backend {backend!r}; options: "
            f"{sorted([*_NAMED, 'counting'])}"
        ) from None


def default_backend() -> Backend:
    """The process-wide default, honoring ``REPRO_BACKEND`` once at first use."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = get_backend(os.environ.get("REPRO_BACKEND", "batched"))
    return _DEFAULT


def current_backend() -> Backend:
    """The backend active in the *current context* (thread/task-local)."""
    active = _ACTIVE.get()
    return active if active is not None else default_backend()


@contextlib.contextmanager
def use_backend(backend: "Backend | str"):
    """Run the enclosed block with ``backend`` as the active dispatch target.

    Context-local: other threads (and other contexts on this thread) are
    unaffected, which is what makes concurrent sessions on different
    backends safe. Yields the resolved backend instance.
    """
    resolved = get_backend(backend)
    token = _ACTIVE.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.reset(token)
