"""SIMD slot batching for BFV plaintexts.

With a prime plaintext modulus t = 1 (mod 2N), R_t = Z_t[X]/(X^N+1) splits
completely into N linear factors: a plaintext polynomial is equivalent to the
vector of its evaluations at the odd powers of a primitive 2N-th root of
unity zeta. We order the N slots as a 2 x (N/2) hypercube

    slot (0, j) <-> evaluation at zeta^(3^j mod 2N)
    slot (1, j) <-> evaluation at zeta^(-3^j mod 2N)

so that the Galois automorphism X -> X^3 rotates both rows left by one and
X -> X^-1 swaps the rows — exactly the rotation structure the packing and S2C
matrix-vector products rely on.

Encode/decode are O(N log N): a negacyclic NTT over Z_t plus a precomputed
permutation that matches NTT output positions to hypercube slots.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ParameterError
from repro.fhe.ntt import ntt_forward, ntt_inverse
from repro.utils.modmath import root_of_unity


@lru_cache(maxsize=None)
def _slot_permutation(n: int, t: int) -> np.ndarray:
    """perm[slot_index] = NTT output position holding that slot's evaluation.

    Slot indices: 0..N/2-1 are row 0 (exponents 3^j), N/2..N-1 are row 1
    (exponents -3^j).
    """
    if (t - 1) % (2 * n):
        raise ParameterError(f"t={t} does not support {n} slots (need 2N | t-1)")
    zeta = root_of_unity(2 * n, t)
    # Evaluation points of each NTT output position: transform X (the monomial
    # of degree 1); output j then literally equals its evaluation point.
    x = np.zeros(n, dtype=np.int64)
    x[1] = 1
    points = ntt_forward(x, t)
    position_of_value = {int(v): i for i, v in enumerate(points)}
    if len(position_of_value) != n:
        raise ParameterError("NTT evaluation points are not distinct")
    perm = np.empty(n, dtype=np.int64)
    exp = 1  # 3^j mod 2N
    for j in range(n // 2):
        perm[j] = position_of_value[pow(zeta, exp, t)]
        perm[n // 2 + j] = position_of_value[pow(zeta, 2 * n - exp, t)]
        exp = exp * 3 % (2 * n)
    return perm


def slot_encode(values: np.ndarray, n: int, t: int) -> np.ndarray:
    """Encode a length-N vector over Z_t into plaintext polynomial coeffs."""
    values = np.mod(np.asarray(values, dtype=np.int64), t)
    if values.shape != (n,):
        raise ParameterError(f"expected {n} slot values, got shape {values.shape}")
    perm = _slot_permutation(n, t)
    ntt_domain = np.zeros(n, dtype=np.int64)
    ntt_domain[perm] = values
    return ntt_inverse(ntt_domain, t)


def slot_decode(coeffs: np.ndarray, n: int, t: int) -> np.ndarray:
    """Decode plaintext polynomial coefficients into the N slot values."""
    perm = _slot_permutation(n, t)
    return ntt_forward(np.asarray(coeffs, dtype=np.int64).copy(), t)[perm]


# ---------------------------------------------------------------------------
# Multi-image lane packing
#
# Coefficient-encoded linear layers use a contiguous span of coefficient
# indices per image: the input occupies [0, in_span) and every useful MAC
# output of Eq. 1 lands below t_index + 1 <= lane_span. Independent images can
# therefore share one ciphertext at stride ``lane_span`` — image d lives at
# coefficients [d*stride, d*stride + in_span) and its outputs at
# positions + d*stride. The product support of lane d is exactly
# [d*stride, (d+1)*stride): a lower lane's kernel terms cannot reach it
# (their shifted indices stay below stride) and a higher lane's would need a
# negative monomial degree, so lanes never mix. One PMult serves the batch.


def lane_capacity(span: int, n: int) -> int:
    """How many independent images of coefficient span ``span`` fit in R_n."""
    if span <= 0:
        raise ParameterError(f"lane span must be positive, got {span}")
    return max(1, n // span) if span <= n else 0


def lane_offsets(lanes: int, stride: int) -> np.ndarray:
    """Coefficient offset of each lane: d -> d*stride."""
    if lanes < 1:
        raise ParameterError(f"need at least one lane, got {lanes}")
    return np.arange(lanes, dtype=np.int64) * stride


def pack_lane_coeffs(blocks: list[np.ndarray], stride: int, n: int) -> np.ndarray:
    """Pack per-image coefficient blocks into one length-``n`` vector.

    Block ``d`` (width <= stride) is written at offset ``d*stride``; unused
    coefficients stay zero. Raises when the blocks collide or overflow R_n.
    """
    if not blocks:
        raise ParameterError("cannot pack zero lanes")
    out = np.zeros(n, dtype=np.int64)
    for d, block in enumerate(blocks):
        block = np.asarray(block, dtype=np.int64)
        if block.ndim != 1:
            raise ParameterError(f"lane {d} block must be 1-D, got {block.shape}")
        if block.shape[0] > stride:
            raise ParameterError(
                f"lane {d} block of width {block.shape[0]} exceeds stride {stride}")
        if d * stride + block.shape[0] > n:
            raise ParameterError(
                f"lane {d} overflows the ring: offset {d * stride} + width "
                f"{block.shape[0]} > n={n}")
        out[d * stride : d * stride + block.shape[0]] = block
    return out


def unpack_lane_coeffs(
    values: np.ndarray, stride: int, lanes: int, width: int
) -> np.ndarray:
    """Inverse of :func:`pack_lane_coeffs`: slice lanes back out, (lanes, width)."""
    values = np.asarray(values)
    if lanes < 1:
        raise ParameterError(f"need at least one lane, got {lanes}")
    if width > stride:
        raise ParameterError(f"lane width {width} exceeds stride {stride}")
    if (lanes - 1) * stride + width > values.shape[0]:
        raise ParameterError(
            f"{lanes} lanes of stride {stride} do not fit in {values.shape[0]} values")
    return np.stack(
        [values[d * stride : d * stride + width] for d in range(lanes)])


def lane_positions(base: np.ndarray, stride: int, lanes: int, n: int) -> np.ndarray:
    """Per-lane extraction positions: concat of ``base + d*stride`` for each lane."""
    base = np.asarray(base, dtype=np.int64)
    if lanes < 1:
        raise ParameterError(f"need at least one lane, got {lanes}")
    out = (base[None, :] + lane_offsets(lanes, stride)[:, None]).reshape(-1)
    if out.size and int(out.max()) >= n:
        raise ParameterError(
            f"lane positions overflow the ring: max {int(out.max())} >= n={n}")
    return out


def rotation_galois_element(n: int, amount: int) -> int:
    """Galois element k with sigma_k = rotate-rows-left-by-``amount``."""
    return pow(3, amount % (n // 2), 2 * n)


ROW_SWAP_GALOIS = -1  # sigma_{-1} (i.e. X -> X^(2N-1)) swaps the two rows


def row_swap_element(n: int) -> int:
    """Galois element performing the row swap on the 2 x (N/2) hypercube."""
    return 2 * n - 1
