"""Functional bootstrapping (paper §3.2.3): LUT -> polynomial -> evaluation.

A LUT over Z_t (t prime) is interpolated into the unique polynomial of
degree <= t-1 agreeing with it everywhere:

    F_0 = LUT(0),   F_j = - sum_{k=1}^{t-1} LUT(k) * k^(t-1-j)   (j >= 1)

(this is Eq. 3 of the paper with the index corrected to start at j=1; the
paper's own worked ReLU example at t=5 — FBS(x) = 3x + x^2 + 2x^4 — matches
this form). Since k^(t-1-j) = k^(-j), the coefficient vector is a DFT of the
LUT over the multiplicative group: for t-1 a power of two (t = 65537, 257,
17...) we compute it in O(t log t) with a cyclic NTT; any other prime t
falls back to a vectorized O(t^2) matrix product.

Evaluation uses the Paterson-Stockmeyer / BSGS split of Algorithm 2:
O(t) SMult + HAdd (baby sums with scalar coefficients) and O(sqrt(t)) CMult
(powers and giant-step combinations) — this asymmetry is exactly what the
Athena accelerator's FRU array and two-region dataflow exploit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable

import numpy as np

from repro.errors import ParameterError
from repro.fhe.backend import current_backend
from repro.fhe.bfv import BfvCiphertext, BfvContext, Plaintext
from repro.fhe.keys import KeySwitchKey
from repro.fhe.ntt import cyclic_ntt
from repro.utils.modmath import inv_mod, primitive_root

__all__ = [
    "FbsCost",
    "FbsLut",
    "FbsPlan",
    "evaluate_poly_all",
    "evaluate_poly_plain",
    "fbs_evaluate",
    "interpolate_lut",
    "interpolate_range",
    "register_interpolation",
]


def interpolate_lut(values: np.ndarray, t: int) -> np.ndarray:
    """Coefficients F_0..F_{t-1} of the interpolating polynomial over Z_t."""
    values = np.mod(np.asarray(values, dtype=np.int64), t)
    if values.shape != (t,):
        raise ParameterError(f"LUT must have exactly t={t} entries")
    if (t - 1) & (t - 2) == 0 and t > 3:  # t-1 is a power of two
        return _interpolate_ntt(values, t)
    return _interpolate_dense(values, t)


#: Interpolation results keyed on (table bytes, t). Repeated sessions build
#: the same ReLU / avgpool / remap tables over and over; at t = 65537 each
#: interpolation is a 65537-point NTT, so identical tables are resolved from
#: here. Bounded FIFO: real deployments cycle through a model's handful of
#: tables, so 64 entries is generous.
_INTERP_CACHE: dict[tuple[bytes, int], np.ndarray] = {}
_INTERP_CACHE_MAX = 64


def _interpolate_cached(values: np.ndarray, t: int) -> np.ndarray:
    key = (values.tobytes(), t)
    got = _INTERP_CACHE.get(key)
    if got is None:
        got = interpolate_lut(values, t)
        got.setflags(write=False)
        while len(_INTERP_CACHE) >= _INTERP_CACHE_MAX:
            _INTERP_CACHE.pop(next(iter(_INTERP_CACHE)))
        _INTERP_CACHE[key] = got
    return got


def register_interpolation(values: np.ndarray, t: int, coeffs: np.ndarray) -> None:
    """Seed the interpolation cache with known-good coefficients.

    Used when deserializing a compiled plan: the artifact carries the
    interpolated coefficient vector, so rebuilding its :class:`FbsLut`
    must not pay the interpolation again (or at all, in a fresh process).
    """
    values = np.mod(np.asarray(values, dtype=np.int64), t)
    coeffs = np.mod(np.asarray(coeffs, dtype=np.int64), t)
    if values.shape != (t,) or coeffs.shape != (t,):
        raise ParameterError(f"LUT and coefficients must both have t={t} entries")
    coeffs.setflags(write=False)
    while len(_INTERP_CACHE) >= _INTERP_CACHE_MAX:
        _INTERP_CACHE.pop(next(iter(_INTERP_CACHE)))
    _INTERP_CACHE[(values.tobytes(), t)] = coeffs


def _interpolate_ntt(values: np.ndarray, t: int) -> np.ndarray:
    """O(t log t) path via a multiplicative-group DFT (t-1 a power of two)."""
    g = primitive_root(t)
    # x_m = LUT(g^m); F_j = -sum_m x_m * (g^{-1})^{jm} for j in 1..t-1,
    # with index j = t-1 aliasing to DFT bin 0.
    order = t - 1
    perm = np.empty(order, dtype=np.int64)
    acc = 1
    for m in range(order):
        perm[m] = acc
        acc = acc * g % t
    x = values[perm]
    dft = cyclic_ntt(x, t, inv_mod(g, t))
    coeffs = np.empty(t, dtype=np.int64)
    coeffs[0] = values[0]
    coeffs[1:order] = (-dft[1:order]) % t
    # x^(t-1) also carries the zero-point indicator (1 - x^(t-1)): subtract
    # LUT(0) so that P(a) = LUT(a) on every nonzero a too.
    coeffs[order] = (-dft[0] - values[0]) % t
    return coeffs


def _interpolate_dense(values: np.ndarray, t: int) -> np.ndarray:
    """Vectorized O(t^2) interpolation for arbitrary prime t."""
    k = np.arange(1, t, dtype=np.int64)
    coeffs = np.empty(t, dtype=np.int64)
    coeffs[0] = values[0]
    # Iterate j from t-1 down to 1, keeping k^(t-1-j) as a running vector
    # that picks up one factor of k per step.
    running = np.ones(t - 1, dtype=np.int64)  # k^(t-1-j) at j = t-1
    # Fill from j = t-1 down to 1: running starts at k^0 = 1.
    vals = values[1:]
    for j in range(t - 1, 0, -1):
        coeffs[j] = (-np.dot(vals % t, running) % t + t) % t
        running = running * k % t
    # Zero-point indicator correction on the top coefficient (see above).
    coeffs[t - 1] = (coeffs[t - 1] - values[0]) % t
    return coeffs % t


def interpolate_range(values: np.ndarray, r: int, t: int) -> np.ndarray:
    """Coefficients (length t) of the degree <= 2r polynomial through the
    centered points x = -r..r, with ``values[x + r] = P(x) mod t``.

    The full-domain interpolation (:func:`interpolate_lut`) pins all t
    points and generically has degree t-1. When a layer's MACs only ever
    occupy [-r, r], the table is unconstrained outside that window, and
    the minimal agreeing polynomial has degree <= 2r — the paper's
    flexible per-layer LUT sizing (§3.3 / Fig. 12) realized at compile
    time: a lower degree means proportionally fewer baby-step SMults and
    a shorter giant-step ladder in Algorithm 2.

    Newton divided differences over the consecutive integer abscissae
    (the level-j denominators are all j, so one modular inverse per
    level), then an O(m^2) Horner expansion to monomial coefficients.
    """
    m = 2 * r + 1
    values = np.mod(np.asarray(values, dtype=np.int64), t)
    if r < 0 or values.shape != (m,):
        raise ParameterError(f"restricted LUT needs 2r+1={m} entries")
    if m > t:
        raise ParameterError(f"restricted range 2*{r}+1 exceeds t={t}")
    c = values.copy()
    for j in range(1, m):
        c[j:] = (c[j:] - c[j - 1 : m - 1]) * inv_mod(j, t) % t
    poly = np.zeros(t, dtype=np.int64)
    poly[0] = c[m - 1]
    deg = 0
    for k in range(m - 2, -1, -1):
        # poly <- poly * (x - x_k) + c[k], node x_k = k - r
        xk = (k - r) % t
        shifted = np.zeros(deg + 2, dtype=np.int64)
        shifted[1:] = poly[: deg + 1]
        poly[: deg + 2] = (shifted - xk * poly[: deg + 2]) % t
        poly[0] = (poly[0] + c[k]) % t
        deg += 1
    return poly


def evaluate_poly_all(coeffs: np.ndarray, t: int) -> np.ndarray:
    """Evaluate the LUT polynomial at every point: table[x] = P(x) mod t.

    The inverse of :func:`interpolate_lut`: for t-1 a power of two this
    is one multiplicative-group DFT (O(t log t)); otherwise vectorized
    Horner over the polynomial's actual degree. Used to materialize the
    full table of a range-restricted polynomial, so that re-interpolating
    the table recovers exactly the low-degree coefficients (the unique
    interpolant of degree <= t-1 through all t points *is* P).
    """
    coeffs = np.mod(np.asarray(coeffs, dtype=np.int64), t)
    if coeffs.shape != (t,):
        raise ParameterError(f"coefficient vector must have t={t} entries")
    if (t - 1) & (t - 2) == 0 and t > 3:  # t-1 is a power of two
        g = primitive_root(t)
        order = t - 1
        a = coeffs[:order].copy()
        # On Z_t^* the exponent t-1 aliases to the constant (x^(t-1) = 1).
        a[0] = (coeffs[0] + coeffs[order]) % t
        dft = cyclic_ntt(a, t, g)  # dft[m] = P(g^m) for nonzero points
        out = np.empty(t, dtype=np.int64)
        out[0] = coeffs[0]
        acc = 1
        for m in range(order):
            out[acc] = dft[m]
            acc = acc * g % t
        return out
    nz = np.nonzero(coeffs)[0]
    deg = int(nz[-1]) if nz.size else 0
    x = np.arange(t, dtype=np.int64)
    out = np.zeros(t, dtype=np.int64)
    for c in coeffs[deg::-1]:
        out = (out * x + int(c)) % t
    return out


def evaluate_poly_plain(coeffs: np.ndarray, x: np.ndarray, t: int) -> np.ndarray:
    """Reference Horner evaluation of the LUT polynomial over Z_t."""
    x = np.mod(np.asarray(x, dtype=np.int64), t)
    out = np.zeros_like(x)
    for c in coeffs[::-1]:
        out = (out * x + int(c)) % t
    return out


@dataclass
class FbsLut:
    """A functional-bootstrapping lookup table and its polynomial form."""

    values: np.ndarray  # length t, entries mod t
    t: int
    name: str = "lut"
    coeffs: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.values = np.mod(np.asarray(self.values, dtype=np.int64), self.t)
        self.coeffs = _interpolate_cached(self.values, self.t)

    @classmethod
    def from_function(
        cls, fn: Callable[[np.ndarray], np.ndarray], t: int, name: str = "lut"
    ) -> "FbsLut":
        """Tabulate fn over the *centered* domain (-t/2, t/2]."""
        raw = np.arange(t, dtype=np.int64)
        centered = np.where(raw > t // 2, raw - t, raw)
        return cls(np.asarray(fn(centered), dtype=np.int64), t, name)

    def apply_plain(self, x: np.ndarray) -> np.ndarray:
        """Plaintext table lookup (ground truth for tests); output mod t."""
        return self.values[np.mod(np.asarray(x, dtype=np.int64), self.t)]

    def apply_plain_signed(self, x: np.ndarray) -> np.ndarray:
        """Table lookup with the output re-centered into (-t/2, t/2]."""
        out = self.apply_plain(x)
        return np.where(out > self.t // 2, out - self.t, out)

    @cached_property
    def signed_range(self) -> int:
        """max |LUT(x)| over the centered output domain, computed once.

        Consumers (the simulated engine's flip threshold, trace levels)
        previously rescanned all t entries on every layer call — at
        t = 65537 that is a 65537-element reduction per LUT application.
        """
        centered = np.where(self.values > self.t // 2, self.values - self.t,
                            self.values)
        return int(np.abs(centered).max())

    @property
    def nonzero_terms(self) -> int:
        return int(np.count_nonzero(self.coeffs))


@dataclass
class FbsCost:
    """Operation counts of one FBS evaluation (drives the accelerator sim)."""

    smult: int = 0
    hadd: int = 0
    cmult: int = 0


@dataclass
class FbsPlan:
    """Compile-time BSGS schedule of one LUT polynomial (Algorithm 2).

    The schedule — polynomial degree, baby/giant split, and the nonzero
    (power, coefficient) terms of each giant group — depends only on the
    LUT, so a plan computed at compile time replaces the per-request scan
    over all t coefficients. The constant term of each group needs a
    slot-encoded plaintext; those are cached per parameter set so repeated
    evaluations (and plan-driven sessions) encode each constant once.
    """

    degree: int
    bs: int
    gs: int
    #: (g, constant, ((power j, coefficient), ...)) for non-empty groups,
    #: ascending g — exactly the iteration order of the per-request scan.
    groups: tuple[tuple[int, int, tuple[tuple[int, int], ...]], ...]
    _const_pts: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def from_lut(cls, lut: "FbsLut", bs: int | None = None) -> "FbsPlan":
        """BSGS schedule of ``lut``'s polynomial.

        ``bs`` overrides the baby-step count (the autotuner's knob); the
        default ``ceil(sqrt(degree + 1))`` split balances baby and giant
        steps. Any ``bs >= 2`` evaluates the same polynomial — only the
        op mix (SMult-heavy vs CMult-heavy) changes.
        """
        coeffs = lut.coeffs
        degree = int(np.max(np.nonzero(coeffs)[0])) if np.any(coeffs) else 0
        if bs is None:
            bs = max(2, math.ceil(math.sqrt(degree + 1)))
        elif bs < 2:
            raise ValueError(f"bs must be >= 2, got {bs}")
        gs = -(-(degree + 1) // bs)
        groups = []
        for g in range(gs):
            const = int(coeffs[g * bs]) if g * bs <= degree else 0
            terms = tuple(
                (j, int(coeffs[g * bs + j]))
                for j in range(1, bs)
                if g * bs + j <= degree and coeffs[g * bs + j] != 0
            )
            if const or terms:
                groups.append((g, const, terms))
        return cls(degree, bs, gs, tuple(groups))

    def const_plaintext(self, const: int, params) -> "Plaintext":
        key = (const, params)
        got = self._const_pts.get(key)
        if got is None:
            got = Plaintext.from_slots(np.full(params.n, const), params)
            self._const_pts[key] = got
        return got

    @cached_property
    def ladder(self) -> tuple[tuple[str, int, int, int], ...]:
        """CMult schedule of the power/giant ladder, in materialization order.

        Each step is (kind, exponent, lo, hi): kind ``"p"`` builds
        ct^e = ct^lo * ct^hi (minimal-depth split e//2 / e - e//2), kind
        ``"g"`` builds the giant power ct^(g*bs) from giants lo and hi
        (giant 1 aliases power bs). The order replays exactly the lazy
        recursion the evaluator historically ran — per group in ascending
        order, each needed power before the group's giant — so plan-driven
        evaluation stays bit-identical while the runtime loses the
        per-request recursion and the giant-step *combination* CMults can
        be batched after the ladder. Computed once per plan at compile
        time (``cached_property``).
        """
        steps: list[tuple[str, int, int, int]] = []
        have_p = {1}
        have_g: set[int] = set()

        def need_p(e: int) -> None:
            if e in have_p:
                return
            half = e // 2
            need_p(half)
            need_p(e - half)
            have_p.add(e)
            steps.append(("p", e, half, e - half))

        def need_g(g: int) -> None:
            if g == 1:
                need_p(self.bs)
                return
            if g in have_g:
                return
            half = g // 2
            need_g(half)
            need_g(g - half)
            have_g.add(g)
            steps.append(("g", g, half, g - half))

        for g, _, terms in self.groups:
            for j, _ in terms:
                need_p(j)
            if g:
                need_g(g)
        return tuple(steps)

    def materialize(self, params) -> "FbsPlan":
        """Pre-encode constants and the CMult ladder for one parameter set."""
        for _, const, _ in self.groups:
            if const:
                self.const_plaintext(const, params).add_operand()
        self.ladder  # noqa: B018 — force the cached schedule at compile time
        return self


def fbs_evaluate(
    ctx: BfvContext,
    ct: BfvCiphertext,
    lut: FbsLut,
    rlk: KeySwitchKey,
    cost: FbsCost | None = None,
    plan: FbsPlan | None = None,
) -> BfvCiphertext:
    """Algorithm 2: evaluate the LUT polynomial on every slot of ``ct``.

    Dispatches through the active backend's :meth:`Backend.fbs`. Baby
    steps: inner sums of scalar-multiplied ciphertext powers (SMult +
    HAdd). Giant steps: one CMult per group with the precomputed power
    ct^(bs*g). Returns a ciphertext whose slot i holds LUT(slot_i(ct)).

    ``plan`` supplies a precomputed BSGS schedule (see :class:`FbsPlan`);
    without one, the schedule is derived here. Either way the homomorphic
    op sequence is identical, so plan-driven evaluation is bit-identical.
    """
    be = current_backend()
    with be.phase("fbs"):
        return be.fbs(ctx, ct, lut, rlk, cost=cost, plan=plan)


def fbs_evaluate_impl(
    ctx: BfvContext,
    ct: BfvCiphertext,
    lut: FbsLut,
    rlk: KeySwitchKey,
    cost: FbsCost | None = None,
    plan: FbsPlan | None = None,
) -> BfvCiphertext:
    """Default :meth:`Backend.fbs` implementation (BSGS, Algorithm 2).

    CMult work — the power ladder and giant-step combinations — runs under
    the ``fbs_giant`` phase so a counting backend attributes it the same
    way the analytical trace model does; the scalar baby-step sums stay in
    the enclosing ``fbs`` phase.

    Structure: replay the plan's precomputed :attr:`FbsPlan.ladder` (the
    minimal-depth power/giant CMult schedule — depth ceil(log2 e) per
    power, which keeps FBS noise at ~log2(t) levels instead of sqrt(t)),
    then fold each group's baby terms through one fused
    :meth:`~repro.fhe.bfv.BfvContext.add_many`, and finally run every
    giant-step *combination* CMult through a single
    :meth:`~repro.fhe.backend.Backend.giant_step_batch` — the batched
    engine stacks all G gadget decompositions into one (G, D, L, N)
    transform set. The combinations are mutually independent (no group
    product feeds another group), so deferring them behind the group scan
    is bit-identical to the historical interleaved order.
    """
    be = current_backend()
    t = ctx.params.t
    if lut.t != t:
        raise ParameterError("LUT modulus does not match context")
    if plan is None:
        plan = FbsPlan.from_lut(lut)
    bs = plan.bs

    powers: dict[int, BfvCiphertext] = {1: ct}
    giants: dict[int, BfvCiphertext] = {}
    for kind, e, lo, hi in plan.ladder:
        with be.phase("fbs_giant"):
            if kind == "p":
                got = ctx.cmult(powers[lo], powers[hi], rlk)
                powers[e] = got
            else:
                a = powers[bs] if lo == 1 else giants[lo]
                b = powers[bs] if hi == 1 else giants[hi]
                giants[e] = ctx.cmult(a, b, rlk)
        if cost:
            cost.cmult += 1

    def giant(g: int) -> BfvCiphertext:
        return powers[bs] if g == 1 else giants[g]

    # Group scan: baby sums now, giant combinations deferred into one batch.
    combos: list[tuple[BfvCiphertext, BfvCiphertext]] = []
    slots: list[BfvCiphertext | None] = []  # result parts, group order
    for g, const, terms in plan.groups:
        parts = [ctx.smult(powers[j], coeff) for j, coeff in terms]
        if cost:
            cost.smult += len(terms)
            cost.hadd += max(0, len(parts) - 1)
        inner = ctx.add_many(parts) if parts else None
        if const:
            base = inner if inner is not None else ctx.encrypt_zero()
            inner = ctx.add_plain(base, plan.const_plaintext(const, ctx.params))
        if g:
            combos.append((inner, giant(g)))
            slots.append(None)  # filled from the batch below
        else:
            slots.append(inner)
    if combos:
        with be.phase("fbs_giant"):
            combined = be.giant_step_batch(ctx, combos, rlk)
        if cost:
            cost.cmult += len(combos)
        it = iter(combined)
        slots = [next(it) if s is None else s for s in slots]
    result_parts = [s for s in slots if s is not None]
    if not result_parts:
        # All-zero polynomial: the LUT is identically zero, so the answer is
        # a (transparent) zero ciphertext rather than SMult(ct, 0).
        return ctx.encrypt_zero()
    if cost:
        cost.hadd += len(result_parts) - 1
    return ctx.add_many(result_parts)
