"""The BFV homomorphic encryption scheme (RNS variant, textbook semantics).

A ciphertext (c0, c1) satisfies c0 + c1*s = Delta*m + e (mod Q) with
Delta = floor(Q/t). Supported operations (all used by the Athena framework):

* HAdd / HSub          — ciphertext addition/subtraction
* SMult                — scalar multiplication
* PMult                — plaintext-polynomial multiplication (used for the
                         coefficient-encoded convolution and all BSGS
                         matrix-vector products)
* CMult                — ciphertext-ciphertext multiplication with
                         relinearization (used by FBS giant steps)
* Galois automorphisms — slot rotations / row swap via keyswitching
* modulus switching    — the Q -> t noise-refresh step of the Athena loop

The per-op *analytic* noise accounting mirrors the paper's Table 4 rules
(PMult/CMult: log2 N + log2 t bits; SMult: log2 t bits; HAdd: 1 bit); the
*true* noise of any ciphertext can be measured against a secret key with
:meth:`BfvContext.true_noise_bits`, which the tests compare to the budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import NoiseBudgetExhausted, ParameterError
from repro.fhe import slots as slotlib
from repro.fhe.backend import current_backend
from repro.fhe.keys import (
    KeySwitchKey,
    PublicKey,
    SecretKey,
    apply_keyswitch,
)
from repro.fhe.ntt import negacyclic_mul_exact
from repro.fhe.params import FheParams
from repro.fhe.poly import RnsPoly
from repro.utils.modmath import centered_array
from repro.utils.sampling import Sampler


@dataclass
class Plaintext:
    """A BFV plaintext: coefficient vector modulo t.

    A plaintext that participates in many homomorphic ops (a plan-held
    kernel, an S2C diagonal, a bias vector) caches its operand forms lazily:
    the centered NTT-domain residues for :meth:`BfvContext.pmult` and the
    Delta-scaled residues for :meth:`BfvContext.add_plain` are computed on
    first use and reused afterwards, so a compiled program transforms each
    plaintext once instead of once per ciphertext op. ``coeffs`` must not be
    mutated after the first homomorphic use.
    """

    coeffs: np.ndarray
    params: FheParams
    _ntt_op: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )
    _scaled_op: RnsPoly | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_coeffs(cls, coeffs, params: FheParams) -> "Plaintext":
        arr = np.mod(np.asarray(coeffs, dtype=np.int64), params.t)
        if arr.shape != (params.n,):
            padded = np.zeros(params.n, dtype=np.int64)
            padded[: arr.shape[0]] = arr
            arr = padded
        return cls(arr, params)

    @classmethod
    def from_slots(cls, values, params: FheParams) -> "Plaintext":
        values = np.asarray(values, dtype=np.int64)
        if values.shape[0] < params.n:
            values = np.concatenate(
                [values, np.zeros(params.n - values.shape[0], dtype=np.int64)]
            )
        return cls(slotlib.slot_encode(values, params.n, params.t), params)

    def to_slots(self) -> np.ndarray:
        return slotlib.slot_decode(self.coeffs, self.params.n, self.params.t)

    def centered(self) -> np.ndarray:
        return centered_array(self.coeffs, self.params.t)

    # -- cached homomorphic-operand forms ---------------------------------

    def pmult_operand(self) -> np.ndarray:
        """Centered coefficients in NTT form, transformed once per plaintext."""
        if self._ntt_op is None:
            rns = RnsPoly.from_int_coeffs(
                centered_array(self.coeffs, self.params.t), self.params.moduli
            )
            self._ntt_op = rns.ntt_form()
        return self._ntt_op

    def add_operand(self) -> RnsPoly:
        """Delta-scaled residues, computed once per plaintext."""
        if self._scaled_op is None:
            self._scaled_op = RnsPoly.from_int_coeffs(
                self.coeffs, self.params.moduli
            ).scalar_mul(self.params.delta)
        return self._scaled_op


@dataclass
class BfvCiphertext:
    """BFV ciphertext with an analytic noise-bit estimate."""

    c0: RnsPoly
    c1: RnsPoly
    params: FheParams
    noise_bits: float

    @property
    def noise_budget_bits(self) -> float:
        """Remaining headroom: log2(Delta/2) - current noise estimate."""
        return math.log2(self.params.delta / 2) - self.noise_bits

    def assert_budget(self) -> None:
        if self.noise_budget_bits <= 0:
            raise NoiseBudgetExhausted(
                f"estimated noise {self.noise_bits:.1f} bits exceeds "
                f"Delta/2 = {math.log2(self.params.delta / 2):.1f} bits"
            )


class BfvContext:
    """Keygen and homomorphic evaluation for one parameter set."""

    def __init__(self, params: FheParams, seed: int | None = None):
        self.params = params
        self.sampler = Sampler(seed, sigma=params.sigma)
        self._log_nt = math.log2(params.n) + math.log2(params.t)
        self._log_t = math.log2(params.t)

    # ----- key generation -------------------------------------------------

    def keygen(self) -> tuple[SecretKey, PublicKey]:
        sk = SecretKey.generate(self.params, self.sampler)
        pk = PublicKey.generate(sk, self.sampler)
        return sk, pk

    def relin_key(self, sk: SecretKey) -> KeySwitchKey:
        """Keyswitch key from s^2 to s."""
        return KeySwitchKey.generate(sk.poly * sk.poly, sk, self.sampler)

    def galois_key(self, sk: SecretKey, k: int) -> KeySwitchKey:
        """Keyswitch key from s(X^k) to s."""
        return KeySwitchKey.generate(sk.poly.automorphism(k), sk, self.sampler)

    def galois_keys(self, sk: SecretKey, elements) -> dict[int, KeySwitchKey]:
        return {k: self.galois_key(sk, k) for k in set(elements)}

    def rotation_keys(self, sk: SecretKey, amounts) -> dict[int, KeySwitchKey]:
        """Galois keys for a set of row-rotation amounts (plus none extra)."""
        elements = {slotlib.rotation_galois_element(self.params.n, a) for a in amounts}
        return self.galois_keys(sk, elements)

    # ----- encryption -----------------------------------------------------

    def encrypt(self, pt: Plaintext, pk: PublicKey) -> BfvCiphertext:
        p = self.params
        current_backend().record("encrypt")
        u = RnsPoly.from_int_coeffs(self.sampler.ternary(p.n), p.moduli)
        e0 = RnsPoly.from_int_coeffs(self.sampler.gaussian(p.n), p.moduli)
        e1 = RnsPoly.from_int_coeffs(self.sampler.gaussian(p.n), p.moduli)
        scaled = RnsPoly.from_int_coeffs(pt.coeffs, p.moduli).scalar_mul(p.delta)
        c0 = pk.b * u + e0 + scaled
        c1 = pk.a * u + e1
        fresh = math.log2(p.sigma * math.sqrt(2 * p.n) + p.sigma) + 1
        return BfvCiphertext(c0, c1, p, fresh)

    def encrypt_symmetric(self, pt: Plaintext, sk: SecretKey) -> BfvCiphertext:
        p = self.params
        from repro.fhe.keys import _uniform_poly

        a = _uniform_poly(p, self.sampler)
        e = RnsPoly.from_int_coeffs(self.sampler.gaussian(p.n), p.moduli)
        scaled = RnsPoly.from_int_coeffs(pt.coeffs, p.moduli).scalar_mul(p.delta)
        c0 = -(a * sk.poly) + e + scaled
        return BfvCiphertext(c0, a, p, math.log2(p.sigma) + 2)

    def encrypt_zero(self) -> BfvCiphertext:
        """A transparent (noiseless) encryption of zero.

        (0, 0) decrypts to zero under any key and is the additive identity,
        so it serves as the neutral accumulator seed — e.g. the FBS
        zero-polynomial fallbacks, which previously burned an SMult-by-0 on
        a live ciphertext (paying log2(t) noise bits for a constant).
        """
        p = self.params
        zero = RnsPoly.zeros(p.n, p.moduli)
        return BfvCiphertext(zero, zero, p, 0.0)

    def decrypt(self, ct: BfvCiphertext, sk: SecretKey) -> Plaintext:
        p = self.params
        current_backend().record("decrypt")
        phase = ct.c0 + ct.c1 * sk.poly
        coeffs = np.asarray(phase.to_int_coeffs(centered=False), dtype=object)
        q = p.q
        out = (((coeffs * p.t + q // 2) // q) % p.t).astype(np.int64)
        return Plaintext(out, p)

    # ----- homomorphic operations ------------------------------------------

    def add(self, a: BfvCiphertext, b: BfvCiphertext) -> BfvCiphertext:
        current_backend().record("hadd")
        return BfvCiphertext(
            a.c0 + b.c0, a.c1 + b.c1, a.params, max(a.noise_bits, b.noise_bits) + 1
        )

    def sub(self, a: BfvCiphertext, b: BfvCiphertext) -> BfvCiphertext:
        current_backend().record("hadd")
        return BfvCiphertext(
            a.c0 - b.c0, a.c1 - b.c1, a.params, max(a.noise_bits, b.noise_bits) + 1
        )

    def add_many(self, cts: list[BfvCiphertext]) -> BfvCiphertext:
        """Sum a chain of ciphertexts through one fused HAdd per component.

        Equivalent to left-folding :meth:`add` (same noise estimate: the
        sequential ``max(acc, next) + 1`` fold), but both component chains
        go through the backend's :meth:`~repro.fhe.backend.Backend.hadd_many`,
        which on the batched engine defers the modular reduction across the
        whole chain.
        """
        if not cts:
            raise ParameterError("add_many needs at least one ciphertext")
        if len(cts) == 1:
            return cts[0]
        be = current_backend()
        be.record("hadd", len(cts) - 1)
        moduli = cts[0].params.moduli
        c0 = be.hadd_many([ct.c0.data for ct in cts], moduli)
        c1 = be.hadd_many([ct.c1.data for ct in cts], moduli)
        noise = cts[0].noise_bits
        for ct in cts[1:]:
            noise = max(noise, ct.noise_bits) + 1
        return BfvCiphertext(
            RnsPoly(c0, moduli), RnsPoly(c1, moduli), cts[0].params, noise
        )

    def add_plain(self, ct: BfvCiphertext, pt: Plaintext) -> BfvCiphertext:
        current_backend().record("add_plain")
        return BfvCiphertext(
            ct.c0 + pt.add_operand(), ct.c1, ct.params, ct.noise_bits
        )

    def smult(self, ct: BfvCiphertext, scalar: int) -> BfvCiphertext:
        """Scalar multiplication (scalar taken mod t, centered)."""
        t = ct.params.t
        scalar = int(scalar) % t
        if scalar > t // 2:
            scalar -= t
        current_backend().record("smult")
        return BfvCiphertext(
            ct.c0.scalar_mul(scalar),
            ct.c1.scalar_mul(scalar),
            ct.params,
            ct.noise_bits + self._log_t,
        )

    def pmult(self, ct: BfvCiphertext, pt: Plaintext) -> BfvCiphertext:
        """Multiply by a plaintext polynomial (weights stay unencrypted).

        The plaintext operand is used in NTT form (cached on the plaintext),
        so a plan-held kernel or diagonal pays its forward transform once
        across all requests; the result is bit-identical to the plain
        ``RnsPoly`` product.
        """
        current_backend().record("pmult")
        w = pt.pmult_operand()
        return BfvCiphertext(
            ct.c0.mul_ntt(w), ct.c1.mul_ntt(w), ct.params, ct.noise_bits + self._log_nt
        )

    def cmult_tensor(
        self, a: BfvCiphertext, b: BfvCiphertext
    ) -> tuple[RnsPoly, RnsPoly, RnsPoly, float]:
        """The tensor half of CMult: exact degree-2 product, scaled by t/Q.

        Returns (r0, r1, r2, noise_bits) — the three scaled components
        before relinearization. Deliberately dispatch-free (big-int
        Kronecker products and CRT lifts only, no backend calls), so the
        fused :meth:`~repro.fhe.backend.Backend.giant_step_batch` can run
        it for every pair and then batch all the keyswitches.
        """
        a0 = a.c0.to_int_coeffs()
        a1 = a.c1.to_int_coeffs()
        b0 = b.c0.to_int_coeffs()
        b1 = b.c1.to_int_coeffs()
        e0 = negacyclic_mul_exact(a0, b0)
        e1a = negacyclic_mul_exact(a0, b1)
        e1b = negacyclic_mul_exact(a1, b0)
        e2 = negacyclic_mul_exact(a1, b1)
        e1 = [x + y for x, y in zip(e1a, e1b)]
        r0 = self._scale_round(e0)
        r1 = self._scale_round(e1)
        r2 = self._scale_round(e2)
        noise = max(a.noise_bits, b.noise_bits) + self._log_nt
        return r0, r1, r2, noise

    def cmult(
        self, a: BfvCiphertext, b: BfvCiphertext, rlk: KeySwitchKey
    ) -> BfvCiphertext:
        """Ciphertext-ciphertext multiplication with relinearization.

        Tensor the ciphertexts exactly over the integers (centered lifts),
        scale each component by t/Q with rounding, then fold the quadratic
        term back to degree one with the relinearization key.
        """
        p = a.params
        current_backend().record("cmult")
        r0, r1, r2, noise = self.cmult_tensor(a, b)
        d0, d1 = apply_keyswitch(r2, rlk)
        return BfvCiphertext(r0 + d0, r1 + d1, p, noise)

    def _scale_round(self, coeffs: list[int]) -> RnsPoly:
        """round(t * x / Q) mod Q, coefficient-wise on exact integers."""
        p = self.params
        q = p.q
        arr = np.asarray(coeffs, dtype=object)
        scaled = (arr * (p.t * 2) + q) // (2 * q)
        return RnsPoly.from_int_coeffs(scaled, p.moduli)

    def square(self, ct: BfvCiphertext, rlk: KeySwitchKey) -> BfvCiphertext:
        return self.cmult(ct, ct, rlk)

    # ----- automorphisms ----------------------------------------------------

    def apply_galois(
        self, ct: BfvCiphertext, k: int, gk: KeySwitchKey
    ) -> BfvCiphertext:
        """sigma_k on the plaintext; keyswitch back to the original key.

        Runs through the backend's fused
        :meth:`~repro.fhe.backend.Backend.rotate_keyswitch` — one stacked
        automorphism over both components plus the batched keyswitch on
        the batched engine; the historical two-automorphism digit loop on
        serial. Both records land here so counting stays in one place.
        """
        k = k % (2 * ct.params.n)
        be = current_backend()
        be.record("rotation")
        be.record("keyswitch")
        moduli = ct.params.moduli
        c0, c1 = be.rotate_keyswitch(ct.c0.data, ct.c1.data, k, gk, moduli)
        noise = ct.noise_bits + math.log2(ct.params.n) / 2 + 2
        return BfvCiphertext(
            RnsPoly(c0, moduli), RnsPoly(c1, moduli), ct.params, noise
        )

    def rotate_slots(
        self, ct: BfvCiphertext, amount: int, gks: dict[int, KeySwitchKey]
    ) -> BfvCiphertext:
        """Rotate both hypercube rows left by ``amount`` slots."""
        k = slotlib.rotation_galois_element(ct.params.n, amount)
        if k == 1:
            return ct
        if k not in gks:
            raise ParameterError(f"missing Galois key for element {k}")
        return self.apply_galois(ct, k, gks[k])

    def row_swap(
        self, ct: BfvCiphertext, gks: dict[int, KeySwitchKey]
    ) -> BfvCiphertext:
        k = slotlib.row_swap_element(ct.params.n)
        if k not in gks:
            raise ParameterError(f"missing Galois key for row swap ({k})")
        return self.apply_galois(ct, k, gks[k])

    # ----- diagnostics --------------------------------------------------------

    def true_noise_bits(self, ct: BfvCiphertext, sk: SecretKey) -> float:
        """Measured noise: log2 of max |c0 + c1*s - Delta*m| over coefficients."""
        p = self.params
        phase = ct.c0 + ct.c1 * sk.poly
        coeffs = phase.to_int_coeffs(centered=False)
        q = p.q
        worst = 0
        for v in coeffs:
            m = ((v * p.t + q // 2) // q) % p.t
            residual = (v - p.delta * m) % q
            if residual > q // 2:
                residual -= q
            worst = max(worst, abs(residual))
        return math.log2(worst) if worst else 0.0
