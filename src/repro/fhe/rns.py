"""Residue Number System representation of big-modulus coefficient vectors.

A ring element modulo Q = p_0 * p_1 * ... * p_{L-1} is stored as an (L, N)
int64 matrix of residues. CRT lift/lower conversions go through Python big
integers (exact); they are only needed at the "seams" — decryption rounding,
ciphertext multiplication, modulus switching, and gadget decomposition — so
their O(N*L) big-int cost is acceptable at test-scale parameters.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.utils.modmath import crt_combine, inv_mod


@lru_cache(maxsize=None)
def _crt_constants(moduli: tuple[int, ...]) -> tuple[int, list[int], list[int]]:
    """(Q, Q/p_i, (Q/p_i)^-1 mod p_i) for a modulus chain."""
    q = 1
    for p in moduli:
        q *= p
    partials = [q // p for p in moduli]
    inverses = [inv_mod(part % p, p) for part, p in zip(partials, moduli)]
    return q, partials, inverses


@lru_cache(maxsize=None)
def _crt_weight_column(moduli: tuple[int, ...]) -> np.ndarray:
    """(L, 1) object column of CRT weights (Q/p_i) * (Q/p_i)^-1 mod p_i.

    Kept as a read-only object array so the lift is one broadcast multiply
    + sum instead of a per-coefficient Python loop; the entries are exact
    Python big ints, so nothing overflows regardless of chain length.
    """
    q, partials, inverses = _crt_constants(moduli)
    weights = np.array(
        [part * inv for part, inv in zip(partials, inverses)], dtype=object
    )[:, None]
    weights.setflags(write=False)
    return weights


def to_rns(values: Sequence[int] | np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
    """Reduce a vector of integers into an (L, N) residue matrix.

    Word-sized numpy inputs reduce in one broadcast against the stacked
    moduli column; big/negative Python ints go through a per-limb object
    broadcast (Python ``%`` semantics, so negatives land in [0, p)).
    """
    if isinstance(values, np.ndarray) and values.dtype != object:
        mods = np.array(moduli, dtype=np.int64)[:, None]
        return np.mod(values[None, :].astype(np.int64), mods)
    arr = np.asarray(values, dtype=object)
    out = np.empty((len(moduli), arr.shape[0]), dtype=np.int64)
    for i, p in enumerate(moduli):
        out[i] = arr % p
    return out


def from_rns_object(residues: np.ndarray, moduli: tuple[int, ...]) -> np.ndarray:
    """CRT-lift an (L, N) residue matrix to an (N,) object array in [0, Q).

    The vectorized core of :func:`from_rns`: one object-dtype broadcast
    against the cached weight column, so numpy drives the big-int loop
    instead of interpreted Python. Hot path of gadget decomposition and
    modulus switching.
    """
    if residues.shape[0] != len(moduli):
        raise ParameterError("residue matrix does not match modulus chain")
    q = _crt_constants(moduli)[0]
    weights = _crt_weight_column(moduli)
    return (residues.astype(object) * weights).sum(axis=0) % q


def from_rns(residues: np.ndarray, moduli: tuple[int, ...]) -> list[int]:
    """CRT-lift an (L, N) residue matrix to exact integers in [0, Q)."""
    return from_rns_object(residues, moduli).tolist()


def from_rns_centered(residues: np.ndarray, moduli: tuple[int, ...]) -> list[int]:
    """CRT-lift into the centered interval (-Q/2, Q/2]."""
    q, _, _ = _crt_constants(moduli)
    half = q // 2
    lifted = from_rns_object(residues, moduli)
    return np.where(lifted > half, lifted - q, lifted).tolist()


def rns_modulus(moduli: tuple[int, ...]) -> int:
    """Product of the modulus chain."""
    return _crt_constants(moduli)[0]


def crt_single(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """CRT for a single coefficient (thin wrapper for readability)."""
    return crt_combine(residues, moduli)
