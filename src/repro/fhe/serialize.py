"""Binary serialization of ciphertexts and key material.

In the paper's deployment model the client encrypts an image, ships
ciphertexts to the datacenter, and receives encrypted results back, so
stable wire formats matter. Formats are versioned, self-describing
(parameter fingerprint included), and numpy-native:

    [magic u32][version u16][kind u16][params fingerprint]
    [payload: shapes + int64 little-endian arrays]

Only public material round-trips by design: secret keys serialize behind
an explicit ``allow_secret`` flag so they are never written accidentally.
"""

from __future__ import annotations

import hashlib
import io
import struct

import numpy as np

from repro.errors import ParameterError
from repro.fhe.bfv import BfvCiphertext, Plaintext
from repro.fhe.fbs import FbsLut, FbsPlan, register_interpolation
from repro.fhe.lwe import LweBatch
from repro.fhe.params import PRESETS, FheParams
from repro.fhe.poly import RnsPoly
from repro.fhe.s2c import S2CPlan

_MAGIC = 0x41544E41  # "ATNA"
# v3: compiled plans carry the autotuner's encoding config, linear steps
# their strategy tag, and layout-bearing steps (placed packing, fused max
# trees, pool/remap/residual rounds) ship as *stub* markers that the
# executor recompiles from the program on first bind. v1/v2 artifacts are
# rejected; the plan cache recompiles on load failure, so stale caches
# self-heal.
_VERSION = 3

KIND_CIPHERTEXT = 1
KIND_LWE_BATCH = 2
KIND_SECRET_KEY = 3
KIND_PLAN = 4


def params_fingerprint(params: FheParams) -> bytes:
    """16-byte digest pinning (n, moduli, t, lwe_n)."""
    material = f"{params.n}|{params.moduli}|{params.t}|{params.lwe_n}".encode()
    return hashlib.sha256(material).digest()[:16]


def _write_array(buf: io.BytesIO, arr: np.ndarray) -> None:
    arr = np.ascontiguousarray(arr, dtype="<i8")
    buf.write(struct.pack("<B", arr.ndim))
    for dim in arr.shape:
        buf.write(struct.pack("<Q", dim))
    buf.write(arr.tobytes())


def _read_array(buf: io.BytesIO) -> np.ndarray:
    (ndim,) = struct.unpack("<B", buf.read(1))
    shape = tuple(struct.unpack("<Q", buf.read(8))[0] for _ in range(ndim))
    count = int(np.prod(shape)) if shape else 1
    data = buf.read(count * 8)
    if len(data) != count * 8:
        raise ParameterError("truncated serialized array")
    return np.frombuffer(data, dtype="<i8").reshape(shape).astype(np.int64)


def _write_str(buf: io.BytesIO, text: str) -> None:
    raw = text.encode()
    buf.write(struct.pack("<H", len(raw)))
    buf.write(raw)


def _read_str(buf: io.BytesIO) -> str:
    (length,) = struct.unpack("<H", buf.read(2))
    return buf.read(length).decode()


def _header(kind: int, params: FheParams) -> bytes:
    return struct.pack("<IHH", _MAGIC, _VERSION, kind) + params_fingerprint(params)


def _check_header(buf: io.BytesIO, expected_kind: int, params: FheParams) -> None:
    magic, version, kind = struct.unpack("<IHH", buf.read(8))
    if magic != _MAGIC:
        raise ParameterError("not a repro-serialized object")
    if version != _VERSION:
        raise ParameterError(f"unsupported serialization version {version}")
    if kind != expected_kind:
        raise ParameterError(f"expected kind {expected_kind}, found {kind}")
    if buf.read(16) != params_fingerprint(params):
        raise ParameterError("parameter fingerprint mismatch")


# -- ciphertexts -------------------------------------------------------------


def dump_ciphertext(ct: BfvCiphertext) -> bytes:
    buf = io.BytesIO()
    buf.write(_header(KIND_CIPHERTEXT, ct.params))
    buf.write(struct.pack("<d", ct.noise_bits))
    _write_array(buf, ct.c0.data)
    _write_array(buf, ct.c1.data)
    return buf.getvalue()


def load_ciphertext(raw: bytes, params: FheParams) -> BfvCiphertext:
    buf = io.BytesIO(raw)
    _check_header(buf, KIND_CIPHERTEXT, params)
    (noise_bits,) = struct.unpack("<d", buf.read(8))
    c0 = RnsPoly(_read_array(buf), params.moduli)
    c1 = RnsPoly(_read_array(buf), params.moduli)
    if c0.data.shape != (params.num_limbs, params.n):
        raise ParameterError("ciphertext shape does not match parameters")
    return BfvCiphertext(c0, c1, params, noise_bits)


# -- LWE batches ----------------------------------------------------------------


def dump_lwe_batch(batch: LweBatch) -> bytes:
    buf = io.BytesIO()
    buf.write(struct.pack("<IHH", _MAGIC, _VERSION, KIND_LWE_BATCH))
    buf.write(struct.pack("<Q", batch.modulus))
    _write_array(buf, batch.a)
    _write_array(buf, batch.b)
    return buf.getvalue()


def load_lwe_batch(raw: bytes) -> LweBatch:
    buf = io.BytesIO(raw)
    magic, version, kind = struct.unpack("<IHH", buf.read(8))
    if magic != _MAGIC or kind != KIND_LWE_BATCH:
        raise ParameterError("not a serialized LWE batch")
    (modulus,) = struct.unpack("<Q", buf.read(8))
    a = _read_array(buf)
    b = _read_array(buf)
    if a.shape[0] != b.shape[0]:
        raise ParameterError("inconsistent LWE batch")
    return LweBatch(a, b, int(modulus))


# -- compiled plans ----------------------------------------------------------


#: Wire tags for compiled-plan steps.
_STEP_OPAQUE = 0  # layout-only / degraded step: kind string only
_STEP_LINEAR = 1  # plain linear round: full artifact payload
_STEP_STUB = 2  # layout-bearing step: recompiled from the program on bind


def _write_tuning(buf: io.BytesIO, tuning) -> None:
    entries = tuning.choices if tuning else ()
    buf.write(struct.pack("<H", len(entries)))
    for step_name, choice in entries:
        _write_str(buf, step_name)
        _write_str(buf, choice.strategy)
        buf.write(struct.pack("<Q", 0 if choice.chunk is None else choice.chunk))
        buf.write(struct.pack("<Q", 0 if choice.bsgs is None else choice.bsgs))


def _read_tuning(buf: io.BytesIO):
    from repro.core.lowering import StepEncodingChoice, TuningConfig

    (count,) = struct.unpack("<H", buf.read(2))
    entries = []
    for _ in range(count):
        step_name = _read_str(buf)
        strategy = _read_str(buf)
        (chunk_raw,) = struct.unpack("<Q", buf.read(8))
        (bsgs_raw,) = struct.unpack("<Q", buf.read(8))
        entries.append((step_name, StepEncodingChoice(
            strategy=strategy,
            chunk=int(chunk_raw) or None,
            bsgs=int(bsgs_raw) or None,
        )))
    return TuningConfig(tuple(entries)) if entries else None


def dump_plan(plan) -> bytes:
    """Serialize a :class:`repro.core.plan.CompiledProgram`.

    The wire form carries only derived, non-secret model artifacts: kernel
    and bias coefficient vectors, extraction positions, LUT tables with
    their interpolated polynomials, the chunk cap, and the autotuner's
    encoding config. NTT operand forms, BSGS schedules, S2C diagonals, and
    tile corrections are deterministic functions of those (plus the
    parameter set) and are rebuilt at load. Layout-bearing steps — placed
    packing, fused max trees, pool/remap/residual rounds — are written as
    *stub* markers: their artifacts reference each other (a residual's
    body targets the join layout), so the loader ships the cheap identity
    and the executor recompiles the full plan from the program on first
    bind (:meth:`CompiledProgram.needs_upgrade`).
    """
    from repro.core.plan import CompiledLinear, CompiledOpaque

    buf = io.BytesIO()
    buf.write(_header(KIND_PLAN, plan.params))
    _write_str(buf, plan.name)
    _write_str(buf, plan.model_hash)
    buf.write(struct.pack("<Q", 0 if plan.chunk is None else plan.chunk))
    _write_tuning(buf, plan.tuning)
    buf.write(struct.pack("<I", len(plan.steps)))
    for cstep in plan.steps:
        plain_linear = (
            isinstance(cstep, CompiledLinear)
            and cstep.pack_rows is None
            and cstep.pool_rounds is None
        )
        if plain_linear:
            tag = _STEP_LINEAR
        elif isinstance(cstep, CompiledOpaque) and not cstep.stub:
            tag = _STEP_OPAQUE
        else:
            tag = _STEP_STUB
        buf.write(struct.pack("<B", tag))
        _write_str(buf, cstep.name)
        if tag != _STEP_LINEAR:
            _write_str(buf, cstep.kind)
            continue
        _write_str(buf, cstep.op)
        buf.write(struct.pack("<B", int(cstep.s2c)))
        _write_str(buf, cstep.strategy)
        _write_array(buf, cstep.positions)
        _write_array(buf, cstep.kernel.coeffs)
        buf.write(struct.pack("<B", int(cstep.bias is not None)))
        if cstep.bias is not None:
            _write_array(buf, cstep.bias.coeffs)
        _write_str(buf, cstep.lut.name)
        _write_array(buf, cstep.lut.values)
        _write_array(buf, cstep.lut.coeffs)
        buf.write(struct.pack("<Q", cstep.lane_span))
    return buf.getvalue()


def load_plan(raw: bytes, params: FheParams):
    """Rebuild a :class:`repro.core.plan.CompiledProgram` from wire bytes.

    LUT interpolations are seeded into the FBS cache from the artifact
    (never recomputed); plaintext operands are re-warmed so the loaded plan
    is immediately as fast as a freshly compiled one.
    """
    from repro.core.plan import (
        CompiledLinear,
        CompiledOpaque,
        CompiledProgram,
        _annotate_lanes,
        _build_tiles,
    )

    buf = io.BytesIO(raw)
    _check_header(buf, KIND_PLAN, params)
    name = _read_str(buf)
    model_hash = _read_str(buf)
    (chunk_raw,) = struct.unpack("<Q", buf.read(8))
    chunk = int(chunk_raw) or None
    tuning = _read_tuning(buf)
    (n_steps,) = struct.unpack("<I", buf.read(4))
    steps: list = []
    for index in range(n_steps):
        (tag,) = struct.unpack("<B", buf.read(1))
        step_name = _read_str(buf)
        if tag != _STEP_LINEAR:
            steps.append(CompiledOpaque(index, step_name, _read_str(buf),
                                        stub=tag == _STEP_STUB))
            continue
        op = _read_str(buf)
        (s2c,) = struct.unpack("<B", buf.read(1))
        strategy = _read_str(buf)
        choice = tuning.get(step_name) if tuning else None
        step_chunk = chunk
        if choice is not None and choice.chunk is not None:
            step_chunk = choice.chunk
        positions = _read_array(buf)
        kernel = Plaintext.from_coeffs(_read_array(buf), params)
        kernel.pmult_operand()
        (has_bias,) = struct.unpack("<B", buf.read(1))
        bias = None
        if has_bias:
            bias = Plaintext.from_coeffs(_read_array(buf), params)
            bias.add_operand()
        lut_name = _read_str(buf)
        values = _read_array(buf)
        coeffs = _read_array(buf)
        register_interpolation(values, params.t, coeffs)
        lut = FbsLut(values, params.t, lut_name)
        (span,) = struct.unpack("<Q", buf.read(8))
        bs = choice.bsgs if choice is not None else None
        steps.append(
            CompiledLinear(
                index=index,
                name=step_name,
                op=op,
                s2c=bool(s2c),
                strategy=strategy,
                kernel=kernel,
                bias=bias,
                positions=positions,
                out_count=positions.shape[0],
                lut=lut,
                fbs=FbsPlan.from_lut(lut, bs=bs).materialize(params),
                tiles=_build_tiles(positions, lut, params, step_chunk),
                lane_span=int(span),
            )
        )
    # Lane chaining (out strides + batch capacity) is a pure function of the
    # spans and the parameter set — re-derived rather than shipped.
    capacity = _annotate_lanes(steps, params, chunk)
    return CompiledProgram(
        steps=steps,
        params=params,
        chunk=chunk,
        tuning=tuning,
        s2c=S2CPlan.build(params),
        model_hash=model_hash,
        name=name,
        batch_capacity=capacity,
    )


# -- secret keys (explicit opt-in) -------------------------------------------------


def dump_secret_key(sk, allow_secret: bool = False) -> bytes:
    """Serialize a secret key. Requires ``allow_secret=True`` — exporting
    secrets must never happen by accident."""
    if not allow_secret:
        raise ParameterError(
            "refusing to serialize a secret key without allow_secret=True"
        )
    buf = io.BytesIO()
    buf.write(_header(KIND_SECRET_KEY, sk.params))
    _write_array(buf, sk.coeffs)
    return buf.getvalue()


def load_secret_key(raw: bytes, params: FheParams):
    from repro.fhe.keys import SecretKey

    buf = io.BytesIO(raw)
    _check_header(buf, KIND_SECRET_KEY, params)
    coeffs = _read_array(buf)
    if coeffs.shape != (params.n,):
        raise ParameterError("secret key length mismatch")
    return SecretKey(params, RnsPoly.from_int_coeffs(coeffs, params.moduli), coeffs)


def guess_params(raw: bytes) -> FheParams | None:
    """Identify which preset a serialized object was produced under."""
    if len(raw) < 24:
        return None
    fingerprint = raw[8:24]
    for params in PRESETS.values():
        if params_fingerprint(params) == fingerprint:
            return params
    return None
