"""Key material for the BFV scheme: secret/public keys and keyswitch keys.

Keyswitch keys (relinearization, Galois, and LWE packing keys) use the
classic base-2^w gadget decomposition over the full modulus Q: the key for a
target secret ``g`` is the list KSK_j = (-(a_j * s) + e_j + T^j * g, a_j),
so that sum_j digit_j(c) * KSK_j key-switches a component encrypted under
``g`` to one under ``s`` while adding only O(l * N * T * sigma) noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.fhe.backend import current_backend
from repro.fhe.params import FheParams
from repro.fhe.poly import RnsPoly
from repro.fhe.rns import from_rns
from repro.utils.sampling import Sampler


@dataclass
class SecretKey:
    """Ternary RLWE secret key."""

    params: FheParams
    poly: RnsPoly
    coeffs: np.ndarray  # ternary int64 vector, the "plain" view of the key

    @classmethod
    def generate(cls, params: FheParams, sampler: Sampler) -> "SecretKey":
        coeffs = sampler.ternary(params.n)
        return cls(params, RnsPoly.from_int_coeffs(coeffs, params.moduli), coeffs)

    @property
    def norm_sq(self) -> int:
        """||s||^2, used in the e_ms noise formula of paper §3.3."""
        return int(np.sum(self.coeffs * self.coeffs))


@dataclass
class PublicKey:
    """Standard RLWE public key (b, a) with b = -(a*s) + e."""

    b: RnsPoly
    a: RnsPoly

    @classmethod
    def generate(cls, sk: SecretKey, sampler: Sampler) -> "PublicKey":
        params = sk.params
        a = _uniform_poly(params, sampler)
        e = RnsPoly.from_int_coeffs(sampler.gaussian(params.n), params.moduli)
        b = -(a * sk.poly) + e
        return cls(b, a)


def _uniform_poly(params: FheParams, sampler: Sampler) -> RnsPoly:
    """Uniform element of R_Q, sampled limb-wise (valid: limbs independent)."""
    data = np.empty((len(params.moduli), params.n), dtype=np.int64)
    for i, p in enumerate(params.moduli):
        data[i] = sampler.uniform(p, params.n)
    return RnsPoly(data, params.moduli)


@dataclass
class KeySwitchKey:
    """Gadget-decomposed keyswitch key from secret ``g`` to secret ``s``."""

    k0: list[RnsPoly]  # -(a_j s) + e_j + T^j g
    k1: list[RnsPoly]  # a_j
    base_bits: int

    @classmethod
    def generate(
        cls, target: RnsPoly, sk: SecretKey, sampler: Sampler
    ) -> "KeySwitchKey":
        params = sk.params
        w = params.decomp_bits
        digits = -(-params.q.bit_length() // w)
        k0, k1 = [], []
        power = 1
        for _ in range(digits):
            a = _uniform_poly(params, sampler)
            e = RnsPoly.from_int_coeffs(sampler.gaussian(params.n), params.moduli)
            k0.append(-(a * sk.poly) + e + target.scalar_mul(power))
            k1.append(a)
            power <<= w
        return cls(k0, k1, w)

    @property
    def num_digits(self) -> int:
        return len(self.k0)


def gadget_decompose(poly: RnsPoly, base_bits: int, num_digits: int) -> list[RnsPoly]:
    """Decompose a ring element into base-2^w digit polynomials.

    Digits are non-negative integers < 2^w satisfying
    sum_j digit_j * 2^(w*j) = coeff (mod Q), computed on the exact CRT lift.
    """
    coeffs = from_rns(poly.data, poly.moduli)
    n = poly.n
    mask = (1 << base_bits) - 1
    digit_rows = np.zeros((num_digits, n), dtype=np.int64)
    for j, c in enumerate(coeffs):
        c = int(c)
        for d in range(num_digits):
            digit_rows[d, j] = c & mask
            c >>= base_bits
        if c:
            raise ParameterError("gadget decomposition ran out of digits")
    return [
        RnsPoly.from_int_coeffs(digit_rows[d], poly.moduli) for d in range(num_digits)
    ]


def apply_keyswitch(
    component: RnsPoly, ksk: KeySwitchKey
) -> tuple[RnsPoly, RnsPoly]:
    """Key-switch a single ciphertext component.

    Returns the (delta_c0, delta_c1) pair to be added to the ciphertext.
    """
    current_backend().record("keyswitch")
    digits = gadget_decompose(component, ksk.base_bits, ksk.num_digits)
    out0 = RnsPoly.zeros(component.n, component.moduli)
    out1 = RnsPoly.zeros(component.n, component.moduli)
    for d, (key0, key1) in zip(digits, zip(ksk.k0, ksk.k1)):
        out0 = out0 + d * key0
        out1 = out1 + d * key1
    return out0, out1
