"""Key material for the BFV scheme: secret/public keys and keyswitch keys.

Keyswitch keys (relinearization, Galois, and LWE packing keys) use the
classic base-2^w gadget decomposition over the full modulus Q: the key for a
target secret ``g`` is the list KSK_j = (-(a_j * s) + e_j + T^j * g, a_j),
so that sum_j digit_j(c) * KSK_j key-switches a component encrypted under
``g`` to one under ``s`` while adding only O(l * N * T * sigma) noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.fhe.backend import current_backend
from repro.fhe.ntt import ntt_forward_rns
from repro.fhe.params import FheParams
from repro.fhe.poly import RnsPoly
from repro.fhe.rns import from_rns_object
from repro.utils.sampling import Sampler


@dataclass
class SecretKey:
    """Ternary RLWE secret key."""

    params: FheParams
    poly: RnsPoly
    coeffs: np.ndarray  # ternary int64 vector, the "plain" view of the key

    @classmethod
    def generate(cls, params: FheParams, sampler: Sampler) -> "SecretKey":
        coeffs = sampler.ternary(params.n)
        return cls(params, RnsPoly.from_int_coeffs(coeffs, params.moduli), coeffs)

    @property
    def norm_sq(self) -> int:
        """||s||^2, used in the e_ms noise formula of paper §3.3."""
        return int(np.sum(self.coeffs * self.coeffs))


@dataclass
class PublicKey:
    """Standard RLWE public key (b, a) with b = -(a*s) + e."""

    b: RnsPoly
    a: RnsPoly

    @classmethod
    def generate(cls, sk: SecretKey, sampler: Sampler) -> "PublicKey":
        params = sk.params
        a = _uniform_poly(params, sampler)
        e = RnsPoly.from_int_coeffs(sampler.gaussian(params.n), params.moduli)
        b = -(a * sk.poly) + e
        return cls(b, a)


def _uniform_poly(params: FheParams, sampler: Sampler) -> RnsPoly:
    """Uniform element of R_Q, sampled limb-wise (valid: limbs independent)."""
    data = np.empty((len(params.moduli), params.n), dtype=np.int64)
    for i, p in enumerate(params.moduli):
        data[i] = sampler.uniform(p, params.n)
    return RnsPoly(data, params.moduli)


@dataclass
class KeySwitchKey:
    """Gadget-decomposed keyswitch key from secret ``g`` to secret ``s``."""

    k0: list[RnsPoly]  # -(a_j s) + e_j + T^j g
    k1: list[RnsPoly]  # a_j
    base_bits: int

    @classmethod
    def generate(
        cls, target: RnsPoly, sk: SecretKey, sampler: Sampler
    ) -> "KeySwitchKey":
        params = sk.params
        w = params.decomp_bits
        digits = -(-params.q.bit_length() // w)
        k0, k1 = [], []
        power = 1
        for _ in range(digits):
            a = _uniform_poly(params, sampler)
            e = RnsPoly.from_int_coeffs(sampler.gaussian(params.n), params.moduli)
            k0.append(-(a * sk.poly) + e + target.scalar_mul(power))
            k1.append(a)
            power <<= w
        return cls(k0, k1, w)

    @property
    def num_digits(self) -> int:
        return len(self.k0)

    def ntt_stack(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached (D, L, N) forward-NTT stacks of both key halves.

        The fused keyswitch kernels multiply every gadget digit against
        these in the NTT domain, so the per-digit key transforms (2 * 3 * L
        forwards per keyswitch in the decomposed path) are paid once per
        key lifetime instead of once per ciphertext op. Computed directly
        through :func:`ntt_forward_rns` — compile-time work, deliberately
        outside backend dispatch so counting backends never see it.
        Deterministic, so a benign compute-twice race needs no lock.
        """
        cached = getattr(self, "_ntt_stack_cache", None)
        if cached is None:
            moduli = self.k0[0].moduli
            k0 = ntt_forward_rns(np.stack([p.data for p in self.k0]), moduli)
            k1 = ntt_forward_rns(np.stack([p.data for p in self.k1]), moduli)
            for arr in (k0, k1):
                arr.setflags(write=False)
            cached = self._ntt_stack_cache = (k0, k1)
        return cached

    def warm(self) -> "KeySwitchKey":
        """Precompute the NTT stacks (key-generation/compile-time hook)."""
        self.ntt_stack()
        return self


def gadget_digit_rows(
    data: np.ndarray, moduli: tuple[int, ...], base_bits: int, num_digits: int
) -> np.ndarray:
    """Base-2^w digits of an (L, N) residue stack as a (D, N) int64 matrix.

    Row d holds digit d of every coefficient's exact CRT lift:
    non-negative integers < 2^w with sum_d row_d * 2^(w*d) = coeff (mod Q).
    Shared by the decomposed digit loop and the fused stacked kernels.
    """
    coeffs = from_rns_object(data, moduli)
    n = data.shape[-1]
    mask = (1 << base_bits) - 1
    digit_rows = np.empty((num_digits, n), dtype=np.int64)
    for d in range(num_digits):
        digit_rows[d] = coeffs & mask
        coeffs = coeffs >> base_bits
    if np.any(coeffs != 0):
        raise ParameterError("gadget decomposition ran out of digits")
    return digit_rows


def gadget_decompose(poly: RnsPoly, base_bits: int, num_digits: int) -> list[RnsPoly]:
    """Decompose a ring element into base-2^w digit polynomials.

    Digits are non-negative integers < 2^w satisfying
    sum_j digit_j * 2^(w*j) = coeff (mod Q), computed on the exact CRT lift.
    """
    digit_rows = gadget_digit_rows(poly.data, poly.moduli, base_bits, num_digits)
    return [
        RnsPoly.from_int_coeffs(digit_rows[d], poly.moduli) for d in range(num_digits)
    ]


def apply_keyswitch(
    component: RnsPoly, ksk: KeySwitchKey
) -> tuple[RnsPoly, RnsPoly]:
    """Key-switch a single ciphertext component.

    Returns the (delta_c0, delta_c1) pair to be added to the ciphertext.
    The digit arithmetic runs through the active backend's fused
    :meth:`~repro.fhe.backend.Backend.keyswitch` op (decomposed digit loop
    on serial, stacked NTT-domain accumulation on batched).
    """
    be = current_backend()
    be.record("keyswitch")
    d0, d1 = be.keyswitch(component.data, ksk, component.moduli)
    return RnsPoly(d0, component.moduli), RnsPoly(d1, component.moduli)
