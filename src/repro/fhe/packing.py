"""LWE -> RLWE packing via homomorphic decryption (paper §3.2.2, Step 4).

Given up to N LWE ciphertexts (a_i, b_i) at modulus t under the small secret
s', the packed BFV ciphertext must carry slot values

    y_i = b_i + <a_i, s'>  (mod t)  =  m_i + e_i.

The a-matrix and b-vector are *plaintext* (they are ciphertext material of
the LWE layer, public by definition), while s' is encrypted slot-wise in the
**packing key**. The computation is therefore a plaintext-matrix x
encrypted-vector product, evaluated with the Halevi-Shoup diagonal method;
the Baby-Step Giant-Step variant brings the rotation count down to
O(sqrt(N)) as in the paper's complexity table.

The slot hypercube is 2 x (N/2); row rotations act on both rows in parallel,
so one mat-vec pass computes N outputs at once: the top row of diagonals is
drawn from rows 0..N/2-1 of A and the bottom row from rows N/2..N-1, with
the packing key holding s' (zero-padded to N/2) replicated in both rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.fhe import slots as slotlib
from repro.fhe.backend import automorphism_map, current_backend
from repro.fhe.bfv import BfvCiphertext, BfvContext, Plaintext
from repro.fhe.keys import KeySwitchKey, PublicKey, SecretKey
from repro.fhe.lwe import LweBatch
from repro.utils.modmath import centered_array


@dataclass
class PackingKey:
    """Encrypted LWE secret plus the Galois keys its mat-vec needs."""

    encrypted_secret: BfvCiphertext  # slots: s' padded to N/2, both rows
    rotation_keys: dict[int, KeySwitchKey]
    lwe_dim: int
    baby_steps: int

    @classmethod
    def generate(
        cls,
        ctx: BfvContext,
        lwe_secret: np.ndarray,
        sk: SecretKey,
        pk: PublicKey,
        baby_steps: int | None = None,
    ) -> "PackingKey":
        params = ctx.params
        half = params.n // 2
        n_lwe = lwe_secret.shape[0]
        if n_lwe > half:
            raise ParameterError("LWE dimension exceeds N/2 slots per row")
        row = np.zeros(half, dtype=np.int64)
        row[:n_lwe] = np.mod(lwe_secret, params.t)
        enc = ctx.encrypt(
            Plaintext.from_slots(np.concatenate([row, row]), params), pk
        )
        if baby_steps is None:
            baby_steps = max(1, int(math.isqrt(half)))
        amounts = set(range(1, baby_steps))
        giant = -(-half // baby_steps)
        amounts |= {g * baby_steps for g in range(1, giant)}
        keys = ctx.rotation_keys(sk, amounts) if amounts else {}
        return cls(enc, keys, n_lwe, baby_steps)


def _hypercube_diagonals(
    a_top: np.ndarray, a_bot: np.ndarray, half: int
) -> np.ndarray:
    """All M diagonals of the 2-row block mat-vec, shape (M, N).

    diag_d slot i (top row) = a_top[i, (i+d) mod M]; bottom analogous.
    Matrices are zero-padded to (M, M).
    """

    def pad(m: np.ndarray) -> np.ndarray:
        out = np.zeros((half, half), dtype=np.int64)
        out[: m.shape[0], : m.shape[1]] = m
        return out

    top = pad(a_top)
    bot = pad(a_bot)
    i = np.arange(half)
    diags = np.empty((half, 2 * half), dtype=np.int64)
    for d in range(half):
        cols = (i + d) % half
        diags[d, :half] = top[i, cols]
        diags[d, half:] = bot[i, cols]
    return diags


@dataclass(frozen=True)
class MatvecPlan:
    """Compile-time form of one BSGS Halevi-Shoup mat-vec.

    The per-request path re-derives, for every call, which baby rotations
    are live, which diagonals are nonzero, and the giant-step roll of each
    diagonal — then slot-encodes every rolled diagonal into a fresh
    plaintext. For a fixed matrix (the S2C evaluation matrix, any plan-held
    weight matrix) all of that is request-invariant, so it is computed once
    here; the plaintexts additionally cache their NTT operand form, making
    each diagonal's forward transform a one-time cost.
    """

    baby_steps: int
    #: Baby rotation amounts that feed at least one nonzero diagonal.
    babies: tuple[int, ...]
    #: (g, ((b, rolled-diagonal plaintext), ...)) for non-empty groups.
    groups: tuple[tuple[int, tuple[tuple[int, Plaintext], ...]], ...]

    @classmethod
    def build(
        cls, diagonals: np.ndarray, params, baby_steps: int
    ) -> "MatvecPlan":
        half = params.n // 2
        if diagonals.shape != (half, params.n):
            raise ParameterError("diagonal matrix has wrong shape")
        giant = -(-half // baby_steps)
        babies = tuple(
            b for b in range(1, baby_steps) if np.any(diagonals[b::baby_steps])
        )
        groups = []
        for g in range(giant):
            terms = []
            for b in range(baby_steps):
                d = g * baby_steps + b
                if d >= half or not np.any(diagonals[d]):
                    continue
                # Rotate the diagonal right by g*baby_steps within each row
                # (plaintext-side correction for the later giant rotation).
                diag = diagonals[d]
                rolled = np.concatenate(
                    [
                        np.roll(diag[:half], g * baby_steps),
                        np.roll(diag[half:], g * baby_steps),
                    ]
                )
                pt = Plaintext.from_slots(rolled, params)
                pt.pmult_operand()  # NTT once at compile time
                terms.append((b, pt))
            if terms:
                groups.append((g, tuple(terms)))
        return cls(baby_steps, babies, tuple(groups))

    def warm_automorphisms(self, params) -> "MatvecPlan":
        """Precompute the automorphism index maps every rotation will use.

        The fused rotate-keyswitch permutes coefficients through the cached
        (dest, sign) tables of :func:`repro.fhe.backend.automorphism_map`;
        touching them here moves that one-time cost into compile time so
        warm serve runs pay none of it.
        """
        amounts = set(self.babies)
        amounts |= {g * self.baby_steps for g, _ in self.groups if g}
        for amount in amounts:
            k = slotlib.rotation_galois_element(params.n, amount)
            if k != 1:
                automorphism_map(params.n, k)
        return self


def hypercube_matvec(
    ctx: BfvContext,
    ct: BfvCiphertext,
    diagonals: np.ndarray | None,
    rotation_keys: dict[int, KeySwitchKey],
    baby_steps: int,
    plan: MatvecPlan | None = None,
) -> BfvCiphertext:
    """BSGS Halevi-Shoup product: slots(out)_i = sum_d diag[d][i] * v_{i+d}.

    Dispatches through the active backend's :meth:`Backend.matvec`.
    ``diagonals`` has shape (M, N) with M = N/2 (row length); index d of the
    first axis is the rotation amount. Zero diagonals are skipped. A
    precomputed :class:`MatvecPlan` replaces the diagonal scan and per-call
    plaintext encoding with the compile-time artifacts; the homomorphic op
    sequence — and therefore the result — is identical either way.
    """
    return current_backend().matvec(
        ctx, ct, diagonals, rotation_keys, baby_steps, plan=plan
    )


def hypercube_matvec_impl(
    ctx: BfvContext,
    ct: BfvCiphertext,
    diagonals: np.ndarray | None,
    rotation_keys: dict[int, KeySwitchKey],
    baby_steps: int,
    plan: MatvecPlan | None = None,
) -> BfvCiphertext:
    """Default :meth:`Backend.matvec` implementation (BSGS Halevi-Shoup).

    Rotations run through the backend's fused rotate-keyswitch (via
    :meth:`~repro.fhe.bfv.BfvContext.rotate_slots`); the per-group
    diagonal sums and the final group fold go through fused
    :meth:`~repro.fhe.bfv.BfvContext.add_many` chains.
    """
    params = ctx.params
    if plan is None:
        plan = MatvecPlan.build(diagonals, params, baby_steps)
    # Baby rotations of the encrypted vector.
    baby_cts: list[BfvCiphertext | None] = [ct] + [None] * (plan.baby_steps - 1)
    for b in plan.babies:
        baby_cts[b] = ctx.rotate_slots(ct, b, rotation_keys)
    result_parts: list[BfvCiphertext] = []
    for g, terms in plan.groups:
        inner = ctx.add_many([ctx.pmult(baby_cts[b], pt) for b, pt in terms])
        if g:
            inner = ctx.rotate_slots(inner, g * plan.baby_steps, rotation_keys)
        result_parts.append(inner)
    if not result_parts:
        # All-zero matrix: encrypt-free zero ciphertext via 0 * ct.
        return ctx.smult(ct, 0)
    return ctx.add_many(result_parts)


def pack_lwe(
    ctx: BfvContext, batch: LweBatch, packing_key: PackingKey
) -> BfvCiphertext:
    """Pack <= N LWE ciphertexts (modulus t) into one BFV ciphertext.

    Resulting slots: m_i + e_i in positions 0..count-1 (hypercube order:
    first N/2 in row 0, remainder in row 1), zeros elsewhere.
    """
    params = ctx.params
    if batch.modulus != params.t:
        raise ParameterError(
            f"LWE batch must be at modulus t={params.t}, got {batch.modulus}"
        )
    if batch.count > params.n:
        raise ParameterError("more LWE ciphertexts than slots")
    if batch.dim > params.n // 2:
        raise ParameterError("LWE dimension exceeds packing row capacity")
    be = current_backend()
    with be.phase("packing"):
        be.record("pack")
        half = params.n // 2
        a = centered_array(batch.a, params.t)
        a_top = a[: min(batch.count, half)]
        a_bot = (
            a[half:]
            if batch.count > half
            else np.zeros((0, batch.dim), dtype=np.int64)
        )
        diagonals = _hypercube_diagonals(a_top, a_bot, half)
        out = hypercube_matvec(
            ctx,
            packing_key.encrypted_secret,
            diagonals,
            packing_key.rotation_keys,
            packing_key.baby_steps,
        )
        b_slots = np.zeros(params.n, dtype=np.int64)
        b_slots[: min(batch.count, half)] = batch.b[: min(batch.count, half)]
        if batch.count > half:
            b_slots[half : half + batch.count - half] = batch.b[half:]
        return ctx.add_plain(out, Plaintext.from_slots(b_slots, params))
