"""FHE parameter sets.

Athena's production parameters (paper §3.3): RLWE degree N = 2**15,
ciphertext modulus log2 Q = 720, plaintext modulus t = 65537, LWE degree
n = 2048, LWE modulus q = t — chosen so that t-1 = 2**16 is divisible by 2N,
which is what makes full slot packing possible.

The modulus Q is realized as a product of NTT-friendly primes, each < 2**31
so that coefficient arithmetic stays inside numpy int64. 24 limbs of ~30
bits give the paper's 720-bit Q.

Reduced parameter sets (`TEST_*`) keep every algebraic property (prime
plaintext modulus with 2N | t-1, multi-limb Q, LWE chain) at sizes where the
pure-Python real backend runs in milliseconds; they are what the test suite
and the runnable examples use. The full `ATHENA` set is used analytically
(sizes, noise budget, op traces, the simulated backend).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import ParameterError
from repro.utils.modmath import find_ntt_primes, is_prime


@dataclass(frozen=True)
class FheParams:
    """A complete Athena parameter set (RLWE + LWE chain).

    Attributes:
        name: Human-readable identifier.
        n: RLWE ring degree N (power of two).
        limb_bits: Bit width of each RNS limb prime (< 31).
        num_limbs: Number of limb primes; log2(Q) ~= limb_bits * num_limbs.
        t: Plaintext modulus (prime, t = 1 mod 2N for slot packing).
        lwe_n: LWE dimension n after dimension switching.
        decomp_bits: Digit width for keyswitch gadget decomposition.
        sigma: Error standard deviation.
    """

    name: str
    n: int
    limb_bits: int
    num_limbs: int
    t: int
    lwe_n: int
    decomp_bits: int = 8
    sigma: float = 3.2

    def __post_init__(self) -> None:
        if self.n & (self.n - 1) or self.n < 8:
            raise ParameterError(f"ring degree must be a power of two >= 8, got {self.n}")
        if not is_prime(self.t):
            raise ParameterError(f"plaintext modulus must be prime, got {self.t}")
        if self.limb_bits > 30:
            raise ParameterError("limb primes must stay below 2**31")
        if self.lwe_n > self.n:
            raise ParameterError("LWE dimension cannot exceed ring degree")
        if self.lwe_n & (self.lwe_n - 1):
            raise ParameterError("LWE dimension must be a power of two")

    @cached_property
    def moduli(self) -> tuple[int, ...]:
        """RNS limb primes, each = 1 (mod 2N) and < 2**limb_bits."""
        return tuple(find_ntt_primes(self.num_limbs, self.limb_bits, 2 * self.n))

    @cached_property
    def q(self) -> int:
        """Full ciphertext modulus Q (product of limb primes)."""
        out = 1
        for p in self.moduli:
            out *= p
        return out

    @cached_property
    def delta(self) -> int:
        """BFV plaintext scaling factor Delta = floor(Q / t)."""
        return self.q // self.t

    @property
    def log2_q(self) -> float:
        return float(self.q.bit_length())

    @property
    def slots_supported(self) -> bool:
        """True when R_t fully splits so all N slots are available."""
        return (self.t - 1) % (2 * self.n) == 0

    @property
    def lwe_q(self) -> int:
        """Intermediate LWE modulus used between extraction and the final
        switch down to t: the first (largest) RNS limb prime."""
        return self.moduli[0]

    # ----- sizing helpers (used by Table 1 / Table 8 reproductions) -----

    @property
    def ciphertext_bytes(self) -> int:
        """Size of one fresh BFV ciphertext: two ring elements at full Q."""
        return 2 * self.n * self.q.bit_length() // 8

    def keyswitch_key_bytes(self, digits: int | None = None) -> int:
        """Size of one keyswitch (relin/galois) key."""
        if digits is None:
            digits = -(-self.q.bit_length() // self.decomp_bits)
        return digits * self.ciphertext_bytes

    def total_key_bytes(self, num_rotations: int = 0) -> int:
        """Relinearization key plus ``num_rotations`` Galois keys."""
        return (1 + num_rotations) * self.keyswitch_key_bytes()

    def describe(self) -> str:
        return (
            f"{self.name}: N=2^{self.n.bit_length() - 1}, log2Q~{self.limb_bits * self.num_limbs}, "
            f"t={self.t}, n_lwe={self.lwe_n}, ct={self.ciphertext_bytes / 2**20:.2f} MiB"
        )


# --- presets -----------------------------------------------------------------

#: Paper parameters (§3.3): N=2^15, log2 Q = 720 (24 x 30-bit limbs),
#: t = 65537, n = 2048. Used analytically and by the simulated backend.
ATHENA = FheParams("athena", n=1 << 15, limb_bits=30, num_limbs=24, t=65537, lwe_n=2048)

#: Mid-size set for heavier real-backend integration tests.
ATHENA_MEDIUM = FheParams("athena-medium", n=1 << 12, limb_bits=30, num_limbs=6, t=65537, lwe_n=512)

#: Small set: full algebra (t=257 keeps 2N | t-1 up to N=128).
TEST_SMALL = FheParams("test-small", n=128, limb_bits=30, num_limbs=3, t=257, lwe_n=64, decomp_bits=6)

#: Tiny set for exhaustive FBS / LUT tests.
TEST_TINY = FheParams("test-tiny", n=32, limb_bits=30, num_limbs=2, t=257, lwe_n=16, decomp_bits=6)

#: Deep-modulus tiny set: enough budget for a full-degree FBS evaluation
#: (log2(t) CMult levels) on the real backend.
TEST_FBS = FheParams("test-fbs", n=32, limb_bits=30, num_limbs=8, t=257, lwe_n=16, decomp_bits=12)

#: End-to-end loop set: room for one complete five-step Athena round
#: (conv + packing + full FBS + S2C) on the real backend.
TEST_LOOP = FheParams("test-loop", n=128, limb_bits=30, num_limbs=9, t=257, lwe_n=64, decomp_bits=14)

PRESETS: dict[str, FheParams] = {
    p.name: p
    for p in (ATHENA, ATHENA_MEDIUM, TEST_SMALL, TEST_TINY, TEST_FBS, TEST_LOOP)
}


def get_params(name: str) -> FheParams:
    """Look up a preset parameter set by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ParameterError(
            f"unknown parameter set {name!r}; available: {sorted(PRESETS)}"
        ) from None
