"""Quantized CNN framework: float training engine, PTQ, integer IR."""

from repro.quant.models import build, input_shape
from repro.quant.mp import (
    AllocationResult,
    MpConfig,
    allocate_bits,
    assign_lut_ranges,
    mp_micro_subject,
)
from repro.quant.quantize import (
    LayerQuantConfig,
    QConv,
    QLinear,
    QResidual,
    QuantConfig,
    QuantizedModel,
    fold_batchnorm,
    quantize_model,
)

__all__ = [
    "AllocationResult",
    "LayerQuantConfig",
    "MpConfig",
    "QConv",
    "QLinear",
    "QResidual",
    "QuantConfig",
    "QuantizedModel",
    "allocate_bits",
    "assign_lut_ranges",
    "build",
    "fold_batchnorm",
    "input_shape",
    "mp_micro_subject",
    "quantize_model",
]
