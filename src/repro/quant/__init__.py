"""Quantized CNN framework: float training engine, PTQ, integer IR."""

from repro.quant.models import build, input_shape
from repro.quant.quantize import (
    QConv,
    QLinear,
    QResidual,
    QuantConfig,
    QuantizedModel,
    fold_batchnorm,
    quantize_model,
)

__all__ = [
    "QConv",
    "QLinear",
    "QResidual",
    "QuantConfig",
    "QuantizedModel",
    "build",
    "fold_batchnorm",
    "input_shape",
    "quantize_model",
]
