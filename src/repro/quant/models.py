"""Benchmark model builders (paper §5.1).

* ``mnist_cnn``  — the small CryptoNets-style CNN [4]: one convolution and
  two fully-connected layers, ReLU activations.
* ``lenet``      — classic LeNet-5 [26] with the square activation replaced
  by ReLU and two max-pooling layers, as the paper does.
* ``resnet20`` / ``resnet56`` — CIFAR-style ResNets (3 stages x {3,9} basic
  blocks, projection shortcuts at stride-2 transitions, global average
  pooling), matching the shapes in the paper's Table 2.

Each builder accepts a ``width`` multiplier and ``rng`` so tests can train
miniature variants quickly; defaults give the paper's architectures.
"""

from __future__ import annotations

import numpy as np

from repro.quant.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
    Residual,
    Sequential,
)

MODEL_NAMES = ("mnist_cnn", "lenet", "resnet20", "resnet56")


def mnist_cnn(rng: np.random.Generator | None = None, width: float = 1.0) -> Sequential:
    """1 conv + 2 FC, for 1x28x28 inputs, 10 classes."""
    rng = rng or np.random.default_rng(0)
    c = max(2, int(5 * width))
    hidden = max(10, int(100 * width))
    # Exactly the paper's shape: one convolution and two FC layers. The
    # stride-4 convolution does the downsampling, keeping the FC fan-in
    # (and with it every MAC) comfortably inside the plaintext modulus.
    return Sequential(
        Conv2d(1, c, kernel=5, stride=4, pad=2, rng=rng),  # -> c x 7 x 7
        ReLU(),
        Flatten(),
        Linear(c * 7 * 7, hidden, rng=rng),
        ReLU(),
        Linear(hidden, 10, rng=rng),
    )


def lenet(rng: np.random.Generator | None = None, width: float = 1.0) -> Sequential:
    """LeNet-5 with ReLU and max-pooling, for 1x28x28 inputs."""
    rng = rng or np.random.default_rng(0)
    c1 = max(2, int(6 * width))
    c2 = max(4, int(16 * width))
    h1 = max(8, int(120 * width))
    h2 = max(8, int(84 * width))
    return Sequential(
        Conv2d(1, c1, kernel=5, stride=1, pad=2, rng=rng),  # -> c1 x 28 x 28
        ReLU(),
        MaxPool2d(2),  # -> 14 x 14
        Conv2d(c1, c2, kernel=5, stride=1, pad=0, rng=rng),  # -> c2 x 10 x 10
        ReLU(),
        MaxPool2d(2),  # -> 5 x 5
        Flatten(),
        Linear(c2 * 5 * 5, h1, rng=rng),
        ReLU(),
        Linear(h1, h2, rng=rng),
        ReLU(),
        Linear(h2, 10, rng=rng),
    )


def _basic_block(in_ch: int, out_ch: int, stride: int, rng) -> Residual:
    body = Sequential(
        Conv2d(in_ch, out_ch, kernel=3, stride=stride, pad=1, bias=False, rng=rng),
        BatchNorm2d(out_ch),
        ReLU(),
        Conv2d(out_ch, out_ch, kernel=3, stride=1, pad=1, bias=False, rng=rng),
        BatchNorm2d(out_ch),
    )
    shortcut = None
    if stride != 1 or in_ch != out_ch:
        shortcut = Sequential(
            Conv2d(in_ch, out_ch, kernel=1, stride=stride, pad=0, bias=False, rng=rng),
            BatchNorm2d(out_ch),
        )
    return Residual(body, shortcut)


def _cifar_resnet(blocks_per_stage: int, rng: np.random.Generator | None,
                  width: float, in_ch: int = 3, image: int = 32) -> Sequential:
    rng = rng or np.random.default_rng(0)
    widths = [max(4, int(16 * width)), max(8, int(32 * width)), max(8, int(64 * width))]
    layers: list = [
        Conv2d(in_ch, widths[0], kernel=3, stride=1, pad=1, bias=False, rng=rng),
        BatchNorm2d(widths[0]),
        ReLU(),
    ]
    current = widths[0]
    for stage, w in enumerate(widths):
        for b in range(blocks_per_stage):
            stride = 2 if (stage > 0 and b == 0) else 1
            layers.append(_basic_block(current, w, stride, rng))
            current = w
    layers += [GlobalAvgPool(), Linear(current, 10, rng=rng)]
    return Sequential(*layers)


def resnet20(rng: np.random.Generator | None = None, width: float = 1.0) -> Sequential:
    """19 convolutions + 1 FC (3 stages x 3 basic blocks)."""
    return _cifar_resnet(3, rng, width)


def resnet56(rng: np.random.Generator | None = None, width: float = 1.0) -> Sequential:
    """55 convolutions + 1 FC (3 stages x 9 basic blocks)."""
    return _cifar_resnet(9, rng, width)


def vgg_lite(rng: np.random.Generator | None = None, width: float = 1.0) -> Sequential:
    """A VGG-style plain CNN for 3x32x32 inputs — *not* one of the paper's
    benchmarks; included to exercise the framework's generality claim
    (§3.4: new models only need their layer mapping and LUTs)."""
    rng = rng or np.random.default_rng(0)
    c1 = max(4, int(16 * width))
    c2 = max(8, int(32 * width))
    h = max(16, int(128 * width))
    return Sequential(
        Conv2d(3, c1, kernel=3, stride=1, pad=1, rng=rng),
        BatchNorm2d(c1),
        ReLU(),
        MaxPool2d(2),  # 16x16
        Conv2d(c1, c2, kernel=3, stride=1, pad=1, rng=rng),
        BatchNorm2d(c2),
        ReLU(),
        MaxPool2d(2),  # 8x8
        Conv2d(c2, c2, kernel=3, stride=1, pad=1, rng=rng),
        BatchNorm2d(c2),
        ReLU(),
        AvgPool2d(4),  # 2x2 (keeps the FC fan-in, and its MACs, inside t)
        Flatten(),
        Linear(c2 * 2 * 2, h, rng=rng),
        ReLU(),
        Linear(h, 10, rng=rng),
    )


def mobile_cnn(rng: np.random.Generator | None = None, width: float = 1.0) -> Sequential:
    """A depthwise-separable CNN (MobileNet-style) for 1x28x28 inputs.

    Not one of the paper's benchmarks; it exercises the grouped-conv
    lowering rule: a stride-4 stem, then a depthwise 3x3 (``groups ==
    channels``) + pointwise 1x1 separable pair, then the FC head. Grouped
    convs lower through the dense-equivalent weight expansion, so this
    model is bit-identical to its dense twin on every executor.
    """
    rng = rng or np.random.default_rng(0)
    c = max(2, int(8 * width))
    c2 = max(4, int(16 * width))
    return Sequential(
        Conv2d(1, c, kernel=5, stride=4, pad=2, rng=rng),  # -> c x 7 x 7
        ReLU(),
        Conv2d(c, c, kernel=3, stride=2, pad=1, groups=c, rng=rng),  # dw -> c x 4 x 4
        ReLU(),
        Conv2d(c, c2, kernel=1, stride=1, pad=0, rng=rng),  # pw -> c2 x 4 x 4
        ReLU(),
        Flatten(),
        Linear(c2 * 4 * 4, 10, rng=rng),
    )


def build(name: str, rng: np.random.Generator | None = None, width: float = 1.0) -> Sequential:
    """Build a benchmark model by canonical name."""
    table = {
        "mnist_cnn": mnist_cnn,
        "lenet": lenet,
        "resnet20": resnet20,
        "resnet56": resnet56,
        "vgg_lite": vgg_lite,
        "mobile_cnn": mobile_cnn,
    }
    if name not in table:
        raise KeyError(f"unknown model {name!r}; options: {sorted(table)}")
    return table[name](rng=rng, width=width)


def input_shape(name: str) -> tuple[int, int, int]:
    """(C, H, W) expected by each model."""
    return (1, 28, 28) if name in ("mnist_cnn", "lenet", "mobile_cnn") else (3, 32, 32)
