"""Mixed-precision PTQ allocation driven by the FHE cost model.

Athena's premise is that quantization choices *are* FHE cost choices: a
layer's bit-widths bound its MAC range, the MAC range bounds the LUT
domain the functional bootstrap must cover, and the restricted-domain
interpolant's degree (<= 2r instead of t-1, see
``repro.fhe.fbs.interpolate_range``) sets the BSGS ladder the pipeline
actually executes. This module closes the loop CalibTIP opens on plain
hardware — per-layer bit allocation by integer programming with
layer-wise calibration and bias correction — but scores candidates with
the *FHE* trace model (``repro.core.tune``, composed with the PR-7
per-step encoding autotuner) instead of a FLOP proxy.

Pipeline
--------

1. :func:`allocate_bits` quantizes the model once per (layer, candidate
   bit-width) pair with only that layer overridden, measuring calibration
   accuracy and predicted tuned mod_mul cost — the sensitivity profile.
2. A multiple-choice knapsack — greedy saving/drop ratio by default, an
   exact drop-unit DP with ``mode="dp"`` — picks at most one override per
   layer maximizing predicted savings under a max accuracy-drop budget.
3. The combined assignment is *re-measured* (profiles assume additivity;
   the verification loop reverts the most damaging override until the
   measured drop fits the budget), so the returned config is certified on
   the calibration set, not estimated.

The all-uniform "floor" configuration — identical bits, restricted LUT
ranges from calibrated MAC peaks — is always admissible: it matches the
uniform baseline's accuracy exactly while strictly shrinking every LUT,
so the allocator can never do worse than the baseline it is gated
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ParameterError
from repro.fhe.params import TEST_FBS, FheParams
from repro.quant import nn
from repro.quant.quantize import (
    LayerQuantConfig,
    QConv,
    QLinear,
    QResidual,
    QuantConfig,
    QuantizedModel,
    quantize_model,
)

if TYPE_CHECKING:  # imported lazily at runtime: repro.core imports repro.quant
    from repro.core.tune import TuningResult

__all__ = [
    "DEFAULT_LUT_MARGIN",
    "AllocationResult",
    "LayerProfile",
    "MpConfig",
    "ProfileOption",
    "allocate_bits",
    "assign_lut_ranges",
    "mac_layer_names",
    "mp_micro_subject",
]

#: Default slack added to a calibrated MAC peak before freezing the
#: restricted LUT domain: covers calibration-vs-evaluation distribution
#: shift. The real-ciphertext pipeline feeds the LUT bit-exact wrapped
#: MACs (see the PlainIntExecutor equivalence suite), so the margin does
#: not need to absorb FHE noise.
DEFAULT_LUT_MARGIN = 8


@dataclass(frozen=True)
class MpConfig:
    """Immutable per-layer bit assignment, keyed by conversion-order name.

    Layer names follow :func:`mac_layer_names`: ``conv{i}``/``linear{i}``
    with one shared counter over MAC layers in conversion order (residual
    branches included, body before shortcut). Layers without an entry keep
    the model-global :class:`QuantConfig`. The empty config is falsy and
    means "uniform bits" — still useful, because quantizing with it (or
    any MpConfig) switches :func:`quantize_model` into tracking mode and
    calibrates the restricted LUT ranges.
    """

    assignments: tuple[tuple[str, LayerQuantConfig], ...] = ()

    def __post_init__(self) -> None:
        names = [n for n, _ in self.assignments]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate layer in MpConfig: {names}")

    @classmethod
    def from_dict(cls, assignments: dict[str, LayerQuantConfig]) -> "MpConfig":
        return cls(tuple(sorted(assignments.items(), key=lambda kv: kv[0])))

    def get(self, name: str) -> LayerQuantConfig | None:
        for n, cfg in self.assignments:
            if n == name:
                return cfg
        return None

    def items(self):
        return iter(self.assignments)

    def __bool__(self) -> bool:
        return bool(self.assignments)

    def __len__(self) -> int:
        return len(self.assignments)

    def tag(self) -> str:
        """Stable human-readable key (also used in reports and JSON)."""
        if not self.assignments:
            return "uniform"
        return ",".join(f"{n}={c.label}" for n, c in self.assignments)

    def to_json(self) -> dict:
        return {
            "assignments": {
                n: {"w_bits": c.w_bits, "a_bits": c.a_bits}
                for n, c in self.assignments
            }
        }

    @classmethod
    def from_json(cls, payload: dict) -> "MpConfig":
        raw = payload.get("assignments", {})
        return cls.from_dict(
            {
                n: LayerQuantConfig(int(v["w_bits"]), int(v["a_bits"]))
                for n, v in raw.items()
            }
        )


def mac_layer_names(layers: list) -> list[tuple[str, object]]:
    """(name, node) for every conv/linear, in conversion-order naming.

    Mirrors the counter in ``quantize_model``: one shared index over
    QConv/QLinear nodes, walking residual bodies before shortcuts.
    """
    out: list[tuple[str, object]] = []

    def walk(ir: list) -> None:
        for node in ir:
            if isinstance(node, QConv):
                out.append((f"conv{len(out)}", node))
            elif isinstance(node, QLinear):
                out.append((f"linear{len(out)}", node))
            elif isinstance(node, QResidual):
                walk(node.body)
                if node.shortcut:
                    walk(node.shortcut)

    walk(layers)
    return out


def assign_lut_ranges(qmodel: QuantizedModel, margin: int = DEFAULT_LUT_MARGIN) -> int:
    """Freeze restricted LUT domains from calibrated MAC peaks, post hoc.

    For models quantized through the legacy path (no tracking): run
    ``forward_int``/``accuracy`` over calibration data first so
    ``mac_peak`` is populated, then call this. Returns the number of
    LUT-bearing nodes annotated; resets the cached program so the next
    lowering captures the ranges. Plain integer inference is unchanged —
    only the compiled FBS tables shrink.
    """
    t = qmodel.config.t
    annotated = 0
    for layer in qmodel.mac_layers():
        peak = int(getattr(layer, "mac_peak", 0))
        if peak <= 0:
            continue
        r = peak + int(margin)
        if 2 * r + 1 < t:
            layer.lut_range = r
            annotated += 1
    qmodel._program = None
    return annotated


# --------------------------------------------------------------------------
# Sensitivity profile
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ProfileOption:
    """One (layer, candidate bits) measurement from the profiler."""

    bits: LayerQuantConfig
    accuracy: float  # calibration accuracy with only this layer overridden
    cost: float  # predicted tuned mod_muls of the whole model
    drop: float  # floor_accuracy - accuracy (may be negative)
    saving: float  # floor_cost - cost


@dataclass(frozen=True)
class LayerProfile:
    name: str
    kind: str  # 'conv' | 'linear'
    mac_peak: int
    options: tuple[ProfileOption, ...]


# --------------------------------------------------------------------------
# Allocation
# --------------------------------------------------------------------------


@dataclass
class AllocationResult:
    """Chosen mixed-precision config plus everything needed to audit it."""

    mp: MpConfig
    config: QuantConfig
    params_name: str
    mode: str
    budget: float
    bias_correct: bool
    lut_margin: int
    baseline_accuracy: float  # uniform bits, legacy quantization
    baseline_cost: float  # its predicted tuned mod_muls
    floor_accuracy: float  # uniform bits + restricted LUT ranges
    floor_cost: float
    accuracy: float  # the chosen config's calibration accuracy
    cost: float  # the chosen config's predicted tuned mod_muls
    profiles: tuple[LayerProfile, ...]
    model: QuantizedModel = field(repr=False, compare=False, default=None)
    tuning: TuningResult | None = field(repr=False, compare=False, default=None)

    @property
    def drop(self) -> float:
        return self.baseline_accuracy - self.accuracy

    @property
    def saving(self) -> float:
        return self.baseline_cost - self.cost

    def to_json(self) -> dict:
        return {
            "mp": self.mp.to_json(),
            "tag": self.mp.tag(),
            "config": self.config.label,
            "t": self.config.t,
            "params": self.params_name,
            "mode": self.mode,
            "budget": self.budget,
            "bias_correct": self.bias_correct,
            "lut_margin": self.lut_margin,
            "baseline_accuracy": self.baseline_accuracy,
            "baseline_cost_mod_muls": self.baseline_cost,
            "floor_accuracy": self.floor_accuracy,
            "floor_cost_mod_muls": self.floor_cost,
            "accuracy": self.accuracy,
            "cost_mod_muls": self.cost,
            "accuracy_drop": self.drop,
            "predicted_saving_mod_muls": self.saving,
            "layers": [
                {
                    "layer": p.name,
                    "kind": p.kind,
                    "mac_peak": p.mac_peak,
                    "chosen": (
                        self.mp.get(p.name).label if self.mp.get(p.name) else None
                    ),
                    "options": [
                        {
                            "bits": o.bits.label,
                            "accuracy": o.accuracy,
                            "cost_mod_muls": o.cost,
                            "drop": o.drop,
                            "saving_mod_muls": o.saving,
                        }
                        for o in p.options
                    ],
                }
                for p in self.profiles
            ],
        }

    def report(self) -> str:
        lines = [
            f"mixed-precision allocation [{self.mode}] for "
            f"{self.config.label} @ {self.params_name} "
            f"(budget {self.budget:.3f}, margin {self.lut_margin})",
            f"  baseline  acc {self.baseline_accuracy:.4f}  "
            f"cost {self.baseline_cost:.3e} mod_muls",
            f"  allocated acc {self.accuracy:.4f}  cost {self.cost:.3e} "
            f"mod_muls  (drop {self.drop:+.4f}, saving {self.saving:.3e})",
        ]
        for p in self.profiles:
            chosen = self.mp.get(p.name)
            lines.append(
                f"  {p.name:<10} peak {p.mac_peak:>6}  -> "
                f"{chosen.label if chosen else self.config.label}"
                f"{'' if chosen else ' (uniform)'}"
            )
        return "\n".join(lines)


def _greedy_assign(
    profiles: list[LayerProfile], budget: float
) -> dict[str, LayerQuantConfig]:
    """Multiple-choice knapsack, greedy by saving/drop ratio."""
    eps = 1e-9
    items = [
        (p.name, o)
        for p in profiles
        for o in p.options
        if o.saving > 0 and o.drop <= budget + eps
    ]
    items.sort(key=lambda it: (-it[1].saving / max(it[1].drop, eps), it[0]))
    assign: dict[str, LayerQuantConfig] = {}
    spent = 0.0
    for lname, opt in items:
        if lname in assign:
            continue
        est = max(opt.drop, 0.0)
        if spent + est > budget + eps:
            continue
        assign[lname] = opt.bits
        spent += est
    return assign


def _dp_assign(
    profiles: list[LayerProfile], budget: float, n_calib: int
) -> dict[str, LayerQuantConfig]:
    """Exact multiple-choice knapsack over accuracy-drop units.

    Calibration accuracies are multiples of ``1/n_calib``, so drops
    discretize exactly into sample counts — the DP is optimal for the
    profiled (additive) objective, not an approximation.
    """
    units = max(0, int(np.floor(budget * n_calib + 1e-9)))
    # dp[u] = best total predicted saving using at most u drop units.
    dp = [0.0] * (units + 1)
    parents: list[list[tuple[int, int] | None]] = []
    for prof in profiles:
        opts = [
            (o, max(0, int(round(o.drop * n_calib))))
            for o in prof.options
            if o.saving > 0
        ]
        parent: list[tuple[int, int] | None] = [None] * (units + 1)
        ndp = dp[:]
        for oi, (opt, d) in enumerate(opts):
            for u in range(d, units + 1):
                cand = dp[u - d] + opt.saving
                if cand > ndp[u] + 1e-12:
                    ndp[u] = cand
                    parent[u] = (oi, u - d)
        # Re-index parent options to the profile's full option tuple.
        remap = [prof.options.index(o) for o, _ in opts]
        parent = [
            (remap[entry[0]], entry[1]) if entry is not None else None
            for entry in parent
        ]
        parents.append(parent)
        dp = ndp
    assign: dict[str, LayerQuantConfig] = {}
    u = max(range(units + 1), key=lambda i: dp[i])
    for prof, parent in zip(reversed(profiles), reversed(parents)):
        entry = parent[u]
        if entry is not None:
            oi, u = entry
            assign[prof.name] = prof.options[oi].bits
    return assign


def allocate_bits(
    model: nn.Sequential,
    calib_x: np.ndarray,
    calib_y: np.ndarray,
    config: QuantConfig,
    params: FheParams = TEST_FBS,
    candidates: list[LayerQuantConfig] | None = None,
    budget: float = 0.02,
    mode: str = "greedy",
    bias_correct: bool = True,
    lut_margin: int = DEFAULT_LUT_MARGIN,
    chunk: int | None = None,
    name: str = "model",
) -> AllocationResult:
    """Search per-layer bit assignments minimizing predicted FHE cost.

    ``budget`` bounds the admissible calibration accuracy drop relative to
    the uniform-bits baseline; ``mode`` is ``"greedy"`` (saving/drop ratio
    knapsack) or ``"dp"`` (exact DP over drop units). The result's
    ``model`` is the fully quantized mixed-precision model (tracked MAC
    peaks, bias-corrected, restricted LUT ranges frozen), ready for
    ``compile_program``; its ``tuning`` is the composed encoding-autotuner
    config for the same program.
    """
    if mode not in ("greedy", "dp"):
        raise ParameterError(f"unknown allocation mode {mode!r}")
    if candidates is None:
        candidates = [
            LayerQuantConfig(b, b)
            for b in range(2, min(config.w_bits, config.a_bits))
        ]
    calib_x = np.asarray(calib_x, dtype=np.float64)
    calib_y = np.asarray(calib_y)

    def measure(mp: MpConfig | None, use_bc: bool):
        qm = quantize_model(
            model,
            calib_x,
            config,
            name=name,
            mp=mp,
            bias_correct=use_bc if mp is not None else False,
            lut_margin=lut_margin if mp is not None else None,
        )
        acc = qm.accuracy(calib_x, calib_y)
        qm.validate_t()
        tuning = tune_model(qm, params, chunk)
        return qm, acc, tuning

    from repro.core.tune import tune_model

    # Uniform baseline: the legacy quantization path, full-domain LUTs.
    base_qm, base_acc, base_tuning = measure(None, False)
    base_cost = base_tuning.tuned_cost

    # Floor: identical bits, tracking on — restricted LUT ranges and
    # (optionally) bias correction. If correction hurts more than the
    # budget allows, drop it: without it the floor is plain-identical to
    # the baseline, so the budget is satisfiable by construction.
    use_bc = bias_correct
    floor_qm, floor_acc, floor_tuning = measure(MpConfig(), use_bc)
    if use_bc and base_acc - floor_acc > budget + 1e-12:
        use_bc = False
        floor_qm, floor_acc, floor_tuning = measure(MpConfig(), use_bc)
    floor_cost = floor_tuning.tuned_cost

    # Sensitivity profile: one quantization per (layer, candidate).
    profiles: list[LayerProfile] = []
    for lname, node in mac_layer_names(floor_qm.layers):
        opts = []
        for cand in candidates:
            if cand.w_bits >= config.w_bits and cand.a_bits >= config.a_bits:
                continue
            _, acc, tuning = measure(MpConfig(((lname, cand),)), use_bc)
            opts.append(
                ProfileOption(
                    bits=cand,
                    accuracy=acc,
                    cost=tuning.tuned_cost,
                    drop=floor_acc - acc,
                    saving=floor_cost - tuning.tuned_cost,
                )
            )
        profiles.append(
            LayerProfile(
                name=lname,
                kind="conv" if isinstance(node, QConv) else "linear",
                mac_peak=int(node.mac_peak),
                options=tuple(opts),
            )
        )

    # Budget available for bit-narrowing on top of the floor's own drop.
    floor_drop = base_acc - floor_acc
    head = max(0.0, budget - max(floor_drop, 0.0))
    if mode == "dp":
        assign = _dp_assign(profiles, head, len(calib_y))
    else:
        assign = _greedy_assign(profiles, head)

    # Certify the combined config; profiles assume additivity, so revert
    # the most damaging override until the measured drop fits the budget.
    # Terminates at the floor, which satisfies the budget by construction.
    while True:
        mp = MpConfig.from_dict(assign)
        qm, acc, tuning = measure(mp, use_bc)
        if base_acc - acc <= budget + 1e-12 or not assign:
            break
        worst = max(
            assign,
            key=lambda n: next(
                (
                    o.drop
                    for p in profiles
                    if p.name == n
                    for o in p.options
                    if o.bits == assign[n]
                ),
                0.0,
            ),
        )
        del assign[worst]

    return AllocationResult(
        mp=mp,
        config=config,
        params_name=params.name,
        mode=mode,
        budget=budget,
        bias_correct=use_bc,
        lut_margin=lut_margin,
        baseline_accuracy=base_acc,
        baseline_cost=base_cost,
        floor_accuracy=floor_acc,
        floor_cost=floor_cost,
        accuracy=acc,
        cost=tuning.tuned_cost,
        profiles=tuple(profiles),
        model=qm,
        tuning=tuning,
    )


# --------------------------------------------------------------------------
# Micro subject
# --------------------------------------------------------------------------


def mp_micro_subject(seed: int = 7):
    """Tiny trained two-class subject whose MACs fit TEST_FBS's t = 257.

    Returns ``(model, x, y, config)``: a conv(1->1, k2) + ReLU + linear
    (9->2) net trained on Gaussian-template data, with a w3a3 base config
    (w4a4 would overflow t//2 = 128: the conv alone can reach 4*49 MACs).
    """
    rng = np.random.default_rng(seed)
    templates = rng.normal(size=(2, 1, 4, 4))
    y = rng.integers(0, 2, size=96)
    x = templates[y] + 0.4 * rng.normal(size=(96, 1, 4, 4))
    model = nn.Sequential(
        nn.Conv2d(1, 1, 2, rng=rng),
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(9, 2, rng=rng),
    )
    opt = nn.Sgd(lr=0.05)
    for _ in range(6):
        nn.train_epoch(model, x, y, opt, rng=rng)
    config = QuantConfig(w_bits=3, a_bits=3, t=TEST_FBS.t)
    return model, x, y, config
