"""Minimal float neural-network engine with hand-coded backprop.

This is the "plain-G" side of the paper's Table 5 pipeline: generic
full-precision training, after which models are calibrated and quantized
(:mod:`repro.quant.quantize`) and finally run under FHE by the Athena
framework. The engine supports everything the four benchmark CNNs need:
conv / linear / batch-norm / ReLU / max- and avg-pooling / residual blocks,
softmax cross-entropy, and SGD with momentum.

Layout convention: activations are (batch, channels, height, width) for
spatial layers and (batch, features) after ``Flatten``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np



class Layer:
    """Base class: forward caches whatever backward needs."""

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(param, grad) pairs for the optimizer."""
        return []


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    """(B, C, H, W) -> (B, out_h, out_w, C*kh*kw) patch matrix.

    The last axis is channel-major (c, then kh, then kw), matching the
    weight-matrix reshape used by the conv layers and the quantized IR.
    Shared by the float engine, the quantized integer forward, and the
    simulated Athena engine.
    """
    b, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    s = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(b, c, out_h, out_w, kh, kw),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(b, out_h, out_w, c * kh * kw)
    return cols, out_h, out_w


def __getattr__(name: str):
    # Backwards-compatible alias (pre-1.1 name), kept importable but
    # deprecated in favour of the public im2col.
    if name == "_im2col":
        import warnings

        warnings.warn(
            "repro.quant.nn._im2col is deprecated; use repro.quant.nn.im2col",
            DeprecationWarning,
            stacklevel=2,
        )
        return im2col
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _col2im(cols: np.ndarray, x_shape, kh, kw, stride, pad):
    """Adjoint of _im2col: scatter patch gradients back onto the image."""
    b, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    out = np.zeros((b, c, hp, wp), dtype=cols.dtype)
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    grads = cols.reshape(b, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += grads[
                :, :, :, :, i, j
            ]
    if pad:
        out = out[:, :, pad:-pad, pad:-pad]
    return out


def expand_grouped_weight(weight: np.ndarray, groups: int) -> np.ndarray:
    """Expand a grouped ``(out_ch, in_ch//groups, kh, kw)`` weight to dense.

    The dense equivalent has shape ``(out_ch, in_ch, kh, kw)`` with zeros
    outside the block diagonal: output channel ``o`` (in group
    ``g = o // (out_ch // groups)``) only connects to input channels
    ``[g * gin, (g + 1) * gin)``. Grouped and depthwise convolutions run
    through the dense path everywhere (float forward, integer forward, and
    the coefficient encoding) so they are *exactly* — not approximately —
    a sparse dense conv, which keeps Eq. 1 packing untouched.
    """
    if groups == 1:
        return weight
    out_ch, gin, kh, kw = weight.shape
    if out_ch % groups:
        raise ValueError(f"out_ch {out_ch} not divisible by groups {groups}")
    gout = out_ch // groups
    dense = np.zeros((out_ch, gin * groups, kh, kw), dtype=weight.dtype)
    for g in range(groups):
        rows = slice(g * gout, (g + 1) * gout)
        cols = slice(g * gin, (g + 1) * gin)
        dense[rows, cols] = weight[rows]
    return dense


class Conv2d(Layer):
    """2D convolution with He initialization.

    ``groups`` splits input and output channels into independent groups
    (``groups == in_ch == out_ch`` is a depthwise conv). The stored weight
    keeps the grouped shape ``(out_ch, in_ch // groups, k, k)``; compute
    runs through :func:`expand_grouped_weight`'s dense equivalent so every
    downstream consumer (quantizer, encoder) sees an ordinary conv.
    """

    def __init__(self, in_ch: int, out_ch: int, kernel: int, stride: int = 1,
                 pad: int = 0, bias: bool = True, rng: np.random.Generator | None = None,
                 groups: int = 1):
        rng = rng or np.random.default_rng()
        if in_ch % groups or out_ch % groups:
            raise ValueError(
                f"groups {groups} must divide in_ch {in_ch} and out_ch {out_ch}"
            )
        fan_in = (in_ch // groups) * kernel * kernel
        self.weight = rng.normal(
            0, np.sqrt(2.0 / fan_in), (out_ch, in_ch // groups, kernel, kernel)
        )
        self.bias = np.zeros(out_ch) if bias else None
        self.stride, self.pad, self.kernel = stride, pad, kernel
        self.in_ch, self.out_ch, self.groups = in_ch, out_ch, groups
        self.w_grad = np.zeros_like(self.weight)
        self.b_grad = np.zeros_like(self.bias) if bias else None
        self._cache = None

    def forward(self, x, train=False):
        cols, oh, ow = im2col(x, self.kernel, self.kernel, self.stride, self.pad)
        wmat = expand_grouped_weight(self.weight, self.groups).reshape(self.out_ch, -1)
        out = cols @ wmat.T
        if self.bias is not None:
            out = out + self.bias
        if train:
            self._cache = (x.shape, cols)
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad):
        x_shape, cols = self._cache
        g = grad.transpose(0, 2, 3, 1)  # (B, oh, ow, out_ch)
        wmat = expand_grouped_weight(self.weight, self.groups).reshape(self.out_ch, -1)
        dense_grad = (
            g.reshape(-1, self.out_ch).T @ cols.reshape(-1, cols.shape[-1])
        ).reshape(self.out_ch, self.in_ch, self.kernel, self.kernel)
        if self.groups == 1:
            self.w_grad[...] = dense_grad
        else:
            gout = self.out_ch // self.groups
            gin = self.in_ch // self.groups
            for gi in range(self.groups):
                rows = slice(gi * gout, (gi + 1) * gout)
                cols_g = slice(gi * gin, (gi + 1) * gin)
                self.w_grad[rows] = dense_grad[rows, cols_g]
        if self.bias is not None:
            self.b_grad[...] = g.sum(axis=(0, 1, 2))
        dcols = g @ wmat
        return _col2im(dcols, x_shape, self.kernel, self.kernel, self.stride, self.pad)

    def parameters(self):
        out = [(self.weight, self.w_grad)]
        if self.bias is not None:
            out.append((self.bias, self.b_grad))
        return out


class Linear(Layer):
    def __init__(self, in_f: int, out_f: int, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng()
        self.weight = rng.normal(0, np.sqrt(2.0 / in_f), (out_f, in_f))
        self.bias = np.zeros(out_f)
        self.w_grad = np.zeros_like(self.weight)
        self.b_grad = np.zeros_like(self.bias)
        self._x = None

    def forward(self, x, train=False):
        if train:
            self._x = x
        return x @ self.weight.T + self.bias

    def backward(self, grad):
        self.w_grad[...] = grad.T @ self._x
        self.b_grad[...] = grad.sum(axis=0)
        return grad @ self.weight

    def parameters(self):
        return [(self.weight, self.w_grad), (self.bias, self.b_grad)]


class ReLU(Layer):
    def __init__(self):
        self._mask = None

    def forward(self, x, train=False):
        if train:
            self._mask = x > 0
        return np.maximum(x, 0)

    def backward(self, grad):
        return grad * self._mask


class Sigmoid(Layer):
    """Logistic activation (Athena supports it exactly via its LUT)."""

    def __init__(self):
        self._out = None

    def forward(self, x, train=False):
        out = 1.0 / (1.0 + np.exp(-x))
        if train:
            self._out = out
        return out

    def backward(self, grad):
        return grad * self._out * (1.0 - self._out)


class Gelu(Layer):
    """tanh-approximation GELU."""

    _C = np.sqrt(2.0 / np.pi)

    def __init__(self):
        self._x = None

    def forward(self, x, train=False):
        if train:
            self._x = x
        inner = self._C * (x + 0.044715 * x**3)
        return 0.5 * x * (1.0 + np.tanh(inner))

    def backward(self, grad):
        x = self._x
        inner = self._C * (x + 0.044715 * x**3)
        tanh = np.tanh(inner)
        sech2 = 1.0 - tanh**2
        d_inner = self._C * (1.0 + 3 * 0.044715 * x**2)
        return grad * (0.5 * (1.0 + tanh) + 0.5 * x * sech2 * d_inner)


class Flatten(Layer):
    def __init__(self):
        self._shape = None

    def forward(self, x, train=False):
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return grad.reshape(self._shape)


class MaxPool2d(Layer):
    def __init__(self, kernel: int, stride: int | None = None):
        self.kernel = kernel
        self.stride = stride or kernel
        self._cache = None

    def forward(self, x, train=False):
        cols, oh, ow = im2col(x, self.kernel, self.kernel, self.stride, 0)
        b, c = x.shape[0], x.shape[1]
        patches = cols.reshape(b, oh, ow, c, self.kernel * self.kernel)
        idx = patches.argmax(axis=-1)
        out = np.take_along_axis(patches, idx[..., None], axis=-1)[..., 0]
        if train:
            self._cache = (x.shape, idx, oh, ow)
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad):
        x_shape, idx, oh, ow = self._cache
        b, c = x_shape[0], x_shape[1]
        g = grad.transpose(0, 2, 3, 1)  # (B, oh, ow, C)
        patches = np.zeros((b, oh, ow, c, self.kernel * self.kernel), dtype=grad.dtype)
        np.put_along_axis(patches, idx[..., None], g[..., None], axis=-1)
        cols = patches.reshape(b, oh, ow, c * self.kernel * self.kernel)
        return _col2im(cols, x_shape, self.kernel, self.kernel, self.stride, 0)


class AvgPool2d(Layer):
    def __init__(self, kernel: int, stride: int | None = None):
        self.kernel = kernel
        self.stride = stride or kernel
        self._shape = None

    def forward(self, x, train=False):
        cols, oh, ow = im2col(x, self.kernel, self.kernel, self.stride, 0)
        b, c = x.shape[0], x.shape[1]
        patches = cols.reshape(b, oh, ow, c, self.kernel * self.kernel)
        if train:
            self._shape = x.shape
        return patches.mean(axis=-1).transpose(0, 3, 1, 2)

    def backward(self, grad):
        b, c, oh, ow = grad.shape
        g = grad.transpose(0, 2, 3, 1)[..., None] / (self.kernel * self.kernel)
        patches = np.broadcast_to(
            g, (b, oh, ow, c, self.kernel * self.kernel)
        ).reshape(b, oh, ow, c * self.kernel * self.kernel)
        return _col2im(patches.copy(), self._shape, self.kernel, self.kernel, self.stride, 0)


class GlobalAvgPool(Layer):
    """Average over the full spatial extent -> (B, C)."""

    def __init__(self):
        self._shape = None

    def forward(self, x, train=False):
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad):
        b, c, h, w = self._shape
        return np.broadcast_to(grad[:, :, None, None] / (h * w), self._shape).copy()


class BatchNorm2d(Layer):
    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5):
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)
        self.g_grad = np.zeros(channels)
        self.b_grad = np.zeros(channels)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum, self.eps = momentum, eps
        self._cache = None

    def forward(self, x, train=False):
        if train:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
            xhat = (x - mean[None, :, None, None]) / np.sqrt(var[None, :, None, None] + self.eps)
            self._cache = (xhat, var)
            return self.gamma[None, :, None, None] * xhat + self.beta[None, :, None, None]
        xhat = (x - self.running_mean[None, :, None, None]) / np.sqrt(
            self.running_var[None, :, None, None] + self.eps
        )
        return self.gamma[None, :, None, None] * xhat + self.beta[None, :, None, None]

    def backward(self, grad):
        xhat, var = self._cache
        m = grad.shape[0] * grad.shape[2] * grad.shape[3]
        self.g_grad[...] = (grad * xhat).sum(axis=(0, 2, 3))
        self.b_grad[...] = grad.sum(axis=(0, 2, 3))
        g = self.gamma[None, :, None, None]
        dxhat = grad * g
        inv_std = 1.0 / np.sqrt(var[None, :, None, None] + self.eps)
        return inv_std / m * (
            m * dxhat
            - dxhat.sum(axis=(0, 2, 3), keepdims=True)
            - xhat * (dxhat * xhat).sum(axis=(0, 2, 3), keepdims=True)
        )

    def parameters(self):
        return [(self.gamma, self.g_grad), (self.beta, self.b_grad)]


class Sequential(Layer):
    def __init__(self, *layers: Layer):
        self.layers = list(layers)

    def forward(self, x, train=False):
        for layer in self.layers:
            x = layer.forward(x, train)
        return x

    def backward(self, grad):
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self):
        out = []
        for layer in self.layers:
            out.extend(layer.parameters())
        return out


class Residual(Layer):
    """y = relu(body(x) + shortcut(x)) — the ResNet basic-block skeleton."""

    def __init__(self, body: Sequential, shortcut: Layer | None = None):
        self.body = body
        self.shortcut = shortcut
        self.relu = ReLU()

    def forward(self, x, train=False):
        main = self.body.forward(x, train)
        skip = self.shortcut.forward(x, train) if self.shortcut else x
        return self.relu.forward(main + skip, train)

    def backward(self, grad):
        grad = self.relu.backward(grad)
        d_main = self.body.backward(grad)
        d_skip = self.shortcut.backward(grad) if self.shortcut else grad
        return d_main + d_skip

    def parameters(self):
        out = self.body.parameters()
        if self.shortcut:
            out.extend(self.shortcut.parameters())
        return out


def softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray):
    """(loss, dlogits) for softmax cross-entropy with integer labels."""
    probs = softmax(logits)
    b = logits.shape[0]
    loss = -np.log(probs[np.arange(b), labels] + 1e-12).mean()
    grad = probs
    grad[np.arange(b), labels] -= 1.0
    return loss, grad / b


@dataclass
class Sgd:
    """SGD with classical momentum and optional weight decay."""

    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    _velocity: dict[int, np.ndarray] = field(default_factory=dict)

    def step(self, params: list[tuple[np.ndarray, np.ndarray]]) -> None:
        for i, (p, g) in enumerate(params):
            update = g + self.weight_decay * p
            v = self._velocity.get(i)
            if v is None:
                v = np.zeros_like(p)
            v = self.momentum * v - self.lr * update
            self._velocity[i] = v
            p += v


def train_epoch(model: Layer, x: np.ndarray, y: np.ndarray, opt: Sgd,
                batch_size: int = 32, rng: np.random.Generator | None = None) -> float:
    """One epoch of SGD; returns mean loss."""
    rng = rng or np.random.default_rng()
    order = rng.permutation(x.shape[0])
    losses = []
    for start in range(0, x.shape[0], batch_size):
        idx = order[start : start + batch_size]
        logits = model.forward(x[idx], train=True)
        loss, grad = cross_entropy_grad(logits, y[idx])
        model.backward(grad)
        opt.step(model.parameters())
        losses.append(loss)
    return float(np.mean(losses))


def accuracy(model: Layer, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
    correct = 0
    for start in range(0, x.shape[0], batch_size):
        logits = model.forward(x[start : start + batch_size])
        correct += int((logits.argmax(axis=1) == y[start : start + batch_size]).sum())
    return correct / x.shape[0]
