"""Post-training quantization into the Athena integer IR (paper §3.1).

The pipeline follows the classic three-step procedure the paper cites:
activations quantized to ``a_bits`` with calibrated scales, integer multiply
-accumulate, and a *remapping* back to the activation range. The remapping
is expressed as a lookup table over the MAC value — exactly the object
Athena evaluates under FHE with functional bootstrapping (remap and
activation merged: ``LUT(x) = clip(round(act(x * scale_in * scale_w) /
scale_out))``).

The quantized model is an explicit IR (:class:`QConv`, :class:`QLinear`,
:class:`QResidual`, pool/flatten ops). Its integer inference
(:meth:`QuantizedModel.forward_int`) is bit-exact with what the Athena
framework computes on ciphertexts, so plain-vs-cipher accuracy comparisons
isolate precisely the FHE-induced noise — the property Table 5 measures.

Residual blocks requantize both branches to a shared scale before the
encrypted addition, then apply one post-add ReLU LUT; that is why the paper
counts at least two bootstraps per residual block.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModulusOverflow, QuantizationError
from repro.quant import nn
from repro.quant.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Gelu,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
)

#: Float activation layers that fuse into the remap LUT.
_ACTIVATION_LAYERS = {ReLU: "relu", Sigmoid: "sigmoid", Gelu: "gelu"}


def _merged_activation(layer) -> str | None:
    for cls, name in _ACTIVATION_LAYERS.items():
        if isinstance(layer, cls):
            return name
    return None


#: Merged activations the remap LUT supports (paper §3.2.3/§3.4: "any
#: non-linear function"): each maps a *float-domain* pre-activation to its
#: float output; the remap quantizes the result.
ACTIVATIONS: dict = {
    "identity": lambda z: z,
    "relu": lambda z: np.maximum(z, 0.0),
    "sigmoid": lambda z: 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60))),
    "gelu": lambda z: 0.5 * z * (1.0 + np.tanh(np.sqrt(2 / np.pi) * (z + 0.044715 * z**3))),
}


@dataclass(frozen=True)
class QuantConfig:
    """wXaY quantization configuration (paper evaluates w7a7 and w6a7)."""

    w_bits: int = 7
    a_bits: int = 7
    t: int = 65537  # plaintext modulus the MACs must fit into

    @property
    def w_max(self) -> int:
        return (1 << (self.w_bits - 1)) - 1

    @property
    def a_max(self) -> int:
        return (1 << (self.a_bits - 1)) - 1

    @property
    def label(self) -> str:
        return f"w{self.w_bits}a{self.a_bits}"


@dataclass(frozen=True)
class LayerQuantConfig:
    """Per-layer bit-width override (mixed-precision PTQ, CalibTIP-style).

    A model-global :class:`QuantConfig` fixes one ``(w_bits, a_bits)``
    pair; the mixed-precision allocator (:mod:`repro.quant.mp`) assigns
    one of these per MAC layer instead. The layer's weights quantize to
    ``w_max`` and its remap clips to ``a_max``, so the layer's MAC range
    — and with it the restricted LUT domain and the interpolated FBS
    degree — shrinks with the bits.
    """

    w_bits: int
    a_bits: int

    def __post_init__(self) -> None:
        if self.w_bits < 2 or self.a_bits < 2:
            raise QuantizationError(
                f"per-layer bit-widths must be >= 2, got {self.label}"
            )

    @property
    def w_max(self) -> int:
        return (1 << (self.w_bits - 1)) - 1

    @property
    def a_max(self) -> int:
        return (1 << (self.a_bits - 1)) - 1

    @property
    def label(self) -> str:
        return f"w{self.w_bits}a{self.a_bits}"


# --------------------------------------------------------------------------
# Quantized IR
# --------------------------------------------------------------------------


@dataclass
class QConv:
    """Integer convolution + merged remap/activation LUT parameters.

    ``out_max`` widens the remap range for pre-residual-add layers: both
    branches of a residual block remap into a shared *wide* scale (~2^13)
    so the encrypted addition happens at MAC-like magnitude, where the
    modulus-switch noise e_ms only perturbs LSBs (see QResidual).
    """

    weight: np.ndarray  # int64 (out_ch, in_ch, k, k)
    bias: np.ndarray  # int64 (out_ch,), in MAC scale
    stride: int
    pad: int
    in_scale: float
    w_scale: float
    out_scale: float
    activation: str  # 'relu' | 'identity'
    in_shape: tuple[int, int, int]
    out_shape: tuple[int, int, int]
    mac_peak: int = 0  # filled during integer inference (Fig. 4)
    out_max: int | None = None  # None -> quant config a_max
    #: Channel groups of the source conv. The stored ``weight`` is always
    #: the *dense equivalent* (zeros outside the group-diagonal blocks),
    #: so execution and encoding are group-agnostic; the count is kept for
    #: provenance and folded into ``program_fingerprint``.
    groups: int = 1
    #: Mixed-precision override this layer was quantized under (or None
    #: for the model-global config). Drives the remap clip bound.
    bits: LayerQuantConfig | None = None
    #: Restricted LUT domain radius: the layer's MAC provably stays within
    #: [-lut_range, lut_range], so the FBS table only needs to agree with
    #: the remap there (interpolated degree <= 2r instead of t-1).
    lut_range: int | None = None

    @property
    def remap_multiplier(self) -> float:
        return self.in_scale * self.w_scale / self.out_scale

    def remap(self, mac: np.ndarray, a_max: int) -> np.ndarray:
        """LUT(x) = clip(round(act(x * mac_scale) / out_scale)) elementwise.

        For relu/identity this reduces to the multiplier form; the general
        float-domain form admits any activation in :data:`ACTIVATIONS`.
        """
        bound = self.out_max or (self.bits.a_max if self.bits else a_max)
        z = ACTIVATIONS[self.activation](mac.astype(np.float64) * self.in_scale * self.w_scale)
        return np.clip(np.rint(z / self.out_scale), -bound, bound).astype(np.int64)


@dataclass
class QLinear:
    weight: np.ndarray  # int64 (out_f, in_f)
    bias: np.ndarray  # int64 (out_f,)
    in_scale: float
    w_scale: float
    out_scale: float
    activation: str
    in_features: int
    out_features: int
    mac_peak: int = 0
    out_max: int | None = None
    bits: LayerQuantConfig | None = None
    lut_range: int | None = None

    @property
    def remap_multiplier(self) -> float:
        return self.in_scale * self.w_scale / self.out_scale

    def remap(self, mac: np.ndarray, a_max: int) -> np.ndarray:
        bound = self.out_max or (self.bits.a_max if self.bits else a_max)
        z = ACTIVATIONS[self.activation](mac.astype(np.float64) * self.in_scale * self.w_scale)
        return np.clip(np.rint(z / self.out_scale), -bound, bound).astype(np.int64)


@dataclass
class QMaxPool:
    kernel: int
    stride: int


@dataclass
class QAvgPool:
    """Average pooling as a sum plus LUT(x) = round(x / k^2)."""

    kernel: int
    stride: int
    mac_peak: int = 0
    lut_range: int | None = None


@dataclass
class QGlobalAvgPool:
    spatial: int  # H*W being averaged
    mac_peak: int = 0
    lut_range: int | None = None


@dataclass
class QFlatten:
    pass


#: Wide intermediate range for pre-add branch remaps: large enough that
#: the e_ms perturbation (std ~43) only touches LSBs of the sum, small
#: enough that the two-branch sum stays far inside the plaintext modulus
#: (2 * 8192 * ~1.1 << t/2 = 32768).
RESIDUAL_WIDE_MAX = 8192


@dataclass
class QResidual:
    """Quantized basic block in the wide-add form.

    Both branches land at the shared ``add_scale`` with range ~2^13: the
    body's last conv remaps (identity LUT) into it; a projection shortcut
    does the same; an identity shortcut is lifted by the *exact* integer
    factor ``skip_alpha`` (a noise-free ciphertext SMult). The encrypted
    addition then happens at MAC-like magnitude and one post-add ReLU LUT
    folds everything back to activation precision.
    """

    body: list
    shortcut: list | None
    add_scale: float
    out_scale: float
    skip_alpha: int = 1  # identity-skip integer rescale (1 for projections)
    mac_peak: int = 0  # peak of the post-add sum (also a LUT input)
    lut_range: int | None = None

    @property
    def remap_multiplier(self) -> float:
        return self.add_scale / self.out_scale

    def remap(self, total: np.ndarray, a_max: int) -> np.ndarray:
        z = np.maximum(total.astype(np.float64), 0)
        return np.clip(np.rint(z * self.remap_multiplier), -a_max, a_max).astype(np.int64)


@dataclass
class QuantizedModel:
    layers: list
    config: QuantConfig
    input_scale: float
    input_shape: tuple[int, int, int]
    name: str = "model"
    _program: object = field(default=None, repr=False, compare=False)

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        q = np.rint(x / self.input_scale)
        return np.clip(q, -self.config.a_max, self.config.a_max).astype(np.int64)

    def program(self):
        """The lowered AthenaProgram (cached; see repro.core.program).

        Mutating ``layers`` structurally invalidates the cache — reset
        ``_program`` to None afterwards. Weight/scale edits on the existing
        IR nodes are picked up automatically (the program references them).
        """
        if self._program is None:
            from repro.core.program import lower

            self._program = lower(self)
        return self._program

    def forward_int(self, x_q: np.ndarray) -> np.ndarray:
        """Exact integer inference; returns integer logits."""
        from repro.core.program import PlainIntExecutor, run_program

        return run_program(self.program(), PlainIntExecutor(self.config), x_q)

    def forward_float(self, x: np.ndarray) -> np.ndarray:
        return self.forward_int(self.quantize_input(x))

    def accuracy(self, x: np.ndarray, y: np.ndarray, batch: int = 256) -> float:
        correct = 0
        for s in range(0, x.shape[0], batch):
            logits = self.forward_float(x[s : s + batch])
            correct += int((logits.argmax(axis=1) == y[s : s + batch]).sum())
        return correct / x.shape[0]

    def mac_layers(self):
        """All IR nodes that produce a MAC consumed by a LUT (Fig. 4 x-axis)."""
        return self.program().mac_sources()

    def max_mac(self) -> int:
        return max((l.mac_peak for l in self.mac_layers()), default=0)

    def validate_t(self) -> None:
        """Raise :class:`ModulusOverflow` naming the worst offending layer.

        ``mac_peak`` is a calibration observable — run ``forward_int`` (or
        ``accuracy``) over representative data first, otherwise all peaks
        are zero and validation trivially passes.
        """
        half = self.config.t // 2
        worst = None
        for idx, layer in enumerate(self.mac_layers()):
            peak = int(getattr(layer, "mac_peak", 0))
            if peak > half and (worst is None or peak > worst[1]):
                worst = (idx, peak, layer)
        if worst is not None:
            idx, peak, layer = worst
            raise ModulusOverflow(
                f"{type(layer).__name__.lower()}[{idx}] MAC peak {peak} "
                f"exceeds t//2 = {half} (t = {self.config.t}) by {peak - half}",
                layer=f"{type(layer).__name__.lower()}[{idx}]",
                mac_peak=peak,
                t=self.config.t,
                excess=peak - half,
            )

    def check_t(self) -> bool:
        """True when every observed MAC fits the plaintext modulus."""
        try:
            self.validate_t()
        except ModulusOverflow:
            return False
        return True


# --------------------------------------------------------------------------
# Integer primitives (per-step execution lives in repro.core.program)
# --------------------------------------------------------------------------


def _int_conv(x_q: np.ndarray, layer: QConv) -> np.ndarray:
    cols, oh, ow = nn.im2col(x_q, layer.weight.shape[2], layer.weight.shape[3],
                             layer.stride, layer.pad)
    wmat = layer.weight.reshape(layer.weight.shape[0], -1)
    mac = cols @ wmat.T + layer.bias
    return mac.transpose(0, 3, 1, 2)


def _wrap_t(mac: np.ndarray, t: int) -> np.ndarray:
    """Centered reduction mod t — the ciphertext MAC semantics.

    For models whose MACs fit t (the paper's Fig. 4 condition) this is the
    identity; when a MAC overflows it wraps exactly as it would in the BFV
    plaintext ring, keeping plain-quant and encrypted inference bit-exact.
    """
    return (mac + t // 2) % t - t // 2


def _ir_forward_int(ir: list, x_q: np.ndarray, config: QuantConfig) -> np.ndarray:
    """Integer forward over a raw IR list, mirroring PlainIntExecutor.

    Used by the calibration tracker to replay residual branches after
    their tails are retargeted (and by bias correction to recompute branch
    outputs): semantics — including where ``_wrap_t`` is and is not applied
    — match ``repro.core.program.PlainIntExecutor`` node for node.
    """
    t, a_max = config.t, config.a_max
    for node in ir:
        if isinstance(node, QConv):
            mac = _int_conv(x_q, node)
            node.mac_peak = max(node.mac_peak, int(np.abs(mac).max()))
            x_q = node.remap(_wrap_t(mac, t), a_max)
        elif isinstance(node, QLinear):
            mac = x_q @ node.weight.T + node.bias
            node.mac_peak = max(node.mac_peak, int(np.abs(mac).max()))
            x_q = node.remap(_wrap_t(mac, t), a_max)
        elif isinstance(node, QMaxPool):
            cols, oh, ow = nn.im2col(x_q, node.kernel, node.kernel, node.stride, 0)
            b, c = x_q.shape[0], x_q.shape[1]
            x_q = (
                cols.reshape(b, oh, ow, c, node.kernel**2)
                .max(axis=-1)
                .transpose(0, 3, 1, 2)
            )
        elif isinstance(node, QAvgPool):
            cols, oh, ow = nn.im2col(x_q, node.kernel, node.kernel, node.stride, 0)
            b, c = x_q.shape[0], x_q.shape[1]
            total = cols.reshape(b, oh, ow, c, node.kernel**2).sum(axis=-1)
            node.mac_peak = max(node.mac_peak, int(np.abs(total).max()))
            x_q = np.rint(total / node.kernel**2).astype(np.int64).transpose(0, 3, 1, 2)
        elif isinstance(node, QGlobalAvgPool):
            total = x_q.sum(axis=(2, 3))
            node.mac_peak = max(node.mac_peak, int(np.abs(total).max()))
            x_q = np.rint(total / node.spatial).astype(np.int64)
        elif isinstance(node, QFlatten):
            x_q = x_q.reshape(x_q.shape[0], -1)
        elif isinstance(node, QResidual):
            main = _ir_forward_int(node.body, x_q, config)
            skip = _ir_forward_int(node.shortcut, x_q, config) if node.shortcut else x_q
            total = main + skip * node.skip_alpha
            node.mac_peak = max(node.mac_peak, int(np.abs(total).max()))
            x_q = node.remap(_wrap_t(total, t), a_max)
        else:
            raise QuantizationError(f"cannot execute {type(node).__name__}")
    return x_q


# --------------------------------------------------------------------------
# BatchNorm folding
# --------------------------------------------------------------------------


def fold_batchnorm(model: Sequential) -> Sequential:
    """Return a copy of the model with every Conv+BN pair fused."""

    def fold_list(layers: list) -> list:
        out: list = []
        i = 0
        while i < len(layers):
            layer = layers[i]
            nxt = layers[i + 1] if i + 1 < len(layers) else None
            if isinstance(layer, Conv2d) and isinstance(nxt, BatchNorm2d):
                out.append(_fuse(layer, nxt))
                i += 2
            elif isinstance(layer, Residual):
                body = Sequential(*fold_list(layer.body.layers))
                shortcut = (
                    Sequential(*fold_list(layer.shortcut.layers))
                    if isinstance(layer.shortcut, Sequential)
                    else copy.deepcopy(layer.shortcut)
                )
                out.append(Residual(body, shortcut))
                i += 1
            elif isinstance(layer, Sequential):
                out.append(Sequential(*fold_list(layer.layers)))
                i += 1
            else:
                out.append(copy.deepcopy(layer))
                i += 1
        return out

    return Sequential(*fold_list(model.layers))


def _fuse(conv: Conv2d, bn: BatchNorm2d) -> Conv2d:
    scale = bn.gamma / np.sqrt(bn.running_var + bn.eps)
    fused = Conv2d(conv.in_ch, conv.out_ch, conv.kernel, conv.stride, conv.pad, bias=True)
    fused.weight = conv.weight * scale[:, None, None, None]
    base_bias = conv.bias if conv.bias is not None else 0.0
    fused.bias = (base_bias - bn.running_mean) * scale + bn.beta
    fused.w_grad = np.zeros_like(fused.weight)
    fused.b_grad = np.zeros_like(fused.bias)
    return fused


# --------------------------------------------------------------------------
# Calibration + quantization
# --------------------------------------------------------------------------


def _quantize_weights(w: np.ndarray, w_max: int) -> tuple[np.ndarray, float]:
    scale = max(float(np.abs(w).max()), 1e-12) / w_max
    return np.clip(np.rint(w / scale), -w_max, w_max).astype(np.int64), scale


def _act_scale(values: np.ndarray, a_max: int) -> float:
    return max(float(np.abs(values).max()), 1e-12) / a_max


def quantize_model(
    model: Sequential,
    calib_x: np.ndarray,
    config: QuantConfig,
    name: str = "model",
    mp=None,
    bias_correct: bool = False,
    lut_margin: int | None = None,
) -> QuantizedModel:
    """Fold BN, calibrate activation scales on ``calib_x``, emit integer IR.

    Mixed-precision extensions (all default-off; with none requested the
    legacy single-config path is unchanged):

    - ``mp``: an :class:`repro.quant.mp.MpConfig` (any mapping with
      ``.get`` works) assigning :class:`LayerQuantConfig` overrides by
      layer name — ``conv0``, ``linear1``, ... numbered over MAC layers
      in conversion order, residual branches included.
    - ``bias_correct``: CalibTIP-style bias correction — after quantizing
      each conv/linear, shift its integer bias by the per-channel mean
      discrepancy between the float pre-activation and the dequantized
      integer MAC observed on ``calib_x``.
    - ``lut_margin``: record each LUT-bearing node's calibrated MAC peak
      plus this safety margin as ``lut_range``, enabling restricted-domain
      LUT interpolation downstream (``repro.fhe.fbs.interpolate_range``).

    Any of the three switches the converter into *tracking* mode: the
    calibration batch is additionally threaded through the integer IR as
    it is built (mirroring ``PlainIntExecutor`` node for node), so MAC
    peaks and bias corrections reflect the quantized network the FHE
    pipeline will actually run.
    """
    folded = fold_batchnorm(model)
    a_max = config.a_max
    input_scale = _act_scale(calib_x, a_max)
    in_shape = tuple(calib_x.shape[1:])
    track = mp is not None or bias_correct or lut_margin is not None
    mac_nodes: list = []  # every LUT-bearing node, conversion order
    mac_index = [0]  # shared conv/linear naming counter (conversion order)

    def _layer_cfg(kind: str):
        lname = f"{kind}{mac_index[0]}"
        mac_index[0] += 1
        return mp.get(lname) if mp is not None else None

    def _correct_bias(node, z: np.ndarray, mac: np.ndarray, axes) -> np.ndarray:
        # CalibTIP bias correction: the per-channel mean of the float
        # pre-activation minus the dequantized integer MAC is a systematic
        # quantization bias; fold it into the integer bias exactly.
        s = node.in_scale * node.w_scale
        delta = z.mean(axis=axes) - mac.mean(axis=axes) * s
        shift = np.rint(delta / s).astype(np.int64)
        node.bias = node.bias + shift
        return shift

    def convert(layers: list, x_f: np.ndarray, in_scale: float, x_q=None):
        """Returns (ir_list, out_float, out_scale, out_q)."""
        ir: list = []
        i = 0
        scale = in_scale
        while i < len(layers):
            layer = layers[i]
            nxt = layers[i + 1] if i + 1 < len(layers) else None
            if isinstance(layer, Conv2d):
                act = _merged_activation(nxt) or "identity"
                z = layer.forward(x_f)
                a = ACTIVATIONS[act](z)
                lcfg = _layer_cfg("conv")
                out_scale = _act_scale(a, lcfg.a_max if lcfg else a_max)
                w_q, w_scale = _quantize_weights(
                    layer.weight, lcfg.w_max if lcfg else config.w_max
                )
                # Grouped convs quantize the grouped tensor (zeros in the
                # dense expansion quantize to exact zeros, so w_scale is
                # identical either way) and store the dense equivalent —
                # every downstream consumer sees an ordinary conv.
                w_q = nn.expand_grouped_weight(w_q, getattr(layer, "groups", 1))
                bias = layer.bias if layer.bias is not None else np.zeros(layer.out_ch)
                bias_q = np.rint(bias / (scale * w_scale)).astype(np.int64)
                node = QConv(
                    weight=w_q,
                    groups=getattr(layer, "groups", 1),
                    bias=bias_q,
                    stride=layer.stride,
                    pad=layer.pad,
                    in_scale=scale,
                    w_scale=w_scale,
                    out_scale=out_scale,
                    activation=act,
                    in_shape=tuple(x_f.shape[1:]),
                    out_shape=tuple(a.shape[1:]),
                    bits=lcfg,
                )
                ir.append(node)
                mac_nodes.append(node)
                if x_q is not None:
                    mac = _int_conv(x_q, node)
                    if bias_correct:
                        shift = _correct_bias(node, z, mac, (0, 2, 3))
                        mac = mac + shift[None, :, None, None]
                    node.mac_peak = max(node.mac_peak, int(np.abs(mac).max()))
                    x_q = node.remap(_wrap_t(mac, config.t), a_max)
                x_f, scale = a, out_scale
                i += 2 if act != "identity" else 1
            elif isinstance(layer, Linear):
                act = _merged_activation(nxt) or "identity"
                z = layer.forward(x_f)
                a = ACTIVATIONS[act](z)
                lcfg = _layer_cfg("linear")
                out_scale = _act_scale(a, lcfg.a_max if lcfg else a_max)
                w_q, w_scale = _quantize_weights(
                    layer.weight, lcfg.w_max if lcfg else config.w_max
                )
                bias_q = np.rint(layer.bias / (scale * w_scale)).astype(np.int64)
                node = QLinear(
                    weight=w_q,
                    bias=bias_q,
                    in_scale=scale,
                    w_scale=w_scale,
                    out_scale=out_scale,
                    activation=act,
                    in_features=layer.weight.shape[1],
                    out_features=layer.weight.shape[0],
                    bits=lcfg,
                )
                ir.append(node)
                mac_nodes.append(node)
                if x_q is not None:
                    mac = x_q @ node.weight.T + node.bias
                    if bias_correct:
                        shift = _correct_bias(node, z, mac, 0)
                        mac = mac + shift[None, :]
                    node.mac_peak = max(node.mac_peak, int(np.abs(mac).max()))
                    x_q = node.remap(_wrap_t(mac, config.t), a_max)
                x_f, scale = a, out_scale
                i += 2 if act != "identity" else 1
            elif isinstance(layer, MaxPool2d):
                node = QMaxPool(layer.kernel, layer.stride)
                ir.append(node)
                x_f = layer.forward(x_f)
                if x_q is not None:
                    x_q = _ir_forward_int([node], x_q, config)
                i += 1
            elif isinstance(layer, AvgPool2d):
                node = QAvgPool(layer.kernel, layer.stride)
                ir.append(node)
                mac_nodes.append(node)
                x_f = layer.forward(x_f)
                if x_q is not None:
                    x_q = _ir_forward_int([node], x_q, config)
                i += 1
            elif isinstance(layer, GlobalAvgPool):
                node = QGlobalAvgPool(spatial=x_f.shape[2] * x_f.shape[3])
                ir.append(node)
                mac_nodes.append(node)
                x_f = layer.forward(x_f)
                if x_q is not None:
                    x_q = _ir_forward_int([node], x_q, config)
                i += 1
            elif isinstance(layer, Flatten):
                ir.append(QFlatten())
                x_f = layer.forward(x_f)
                if x_q is not None:
                    x_q = x_q.reshape(x_q.shape[0], -1)
                i += 1
            elif isinstance(layer, Residual):
                node, x_f, scale, x_q = _convert_residual(layer, x_f, scale, x_q)
                ir.append(node)
                mac_nodes.append(node)
                i += 1
            elif _merged_activation(layer):
                raise QuantizationError(
                    "stray activation: must directly follow Conv2d/Linear"
                )
            else:
                raise QuantizationError(f"cannot quantize {type(layer).__name__}")
        return ir, x_f, scale, x_q

    def _convert_residual(block: Residual, x_f: np.ndarray, in_scale: float, x_q=None):
        # Both branches meet at a shared *wide* scale (see QResidual).
        main_f = block.body.forward(x_f)
        skip_f = block.shortcut.forward(x_f) if block.shortcut else x_f
        total_f = main_f + skip_f
        out_f = np.maximum(total_f, 0)
        branch_peak = max(
            float(np.abs(main_f).max()), float(np.abs(skip_f).max()), 1e-12
        )
        target_scale = branch_peak / RESIDUAL_WIDE_MAX
        skip_alpha = 1
        if block.shortcut is None:
            # Identity skip arrives at in_scale as small integers; lift it
            # with an exact integer factor so both branches share a scale
            # with zero approximation error (plain == cipher exactly).
            skip_alpha = max(1, round(in_scale / target_scale))
            add_scale = in_scale / skip_alpha
        else:
            add_scale = target_scale
        body_ir, _, _, _ = convert(block.body.layers, x_f, in_scale, x_q)
        _retarget_tail(body_ir, add_scale)
        shortcut_ir = None
        if block.shortcut:
            shortcut_ir, _, _, _ = convert(block.shortcut.layers, x_f, in_scale, x_q)
            _retarget_tail(shortcut_ir, add_scale)
        out_scale = _act_scale(out_f, a_max)
        node = QResidual(
            body=body_ir,
            shortcut=shortcut_ir,
            add_scale=add_scale,
            out_scale=out_scale,
            skip_alpha=skip_alpha,
        )
        out_q = None
        if x_q is not None:
            # Replay both branches: retargeting rewrote the tails' remap
            # (out_scale/out_max), so the outputs threaded during convert
            # are stale. Bias corrections and tail MAC peaks stay valid —
            # the retarget only changes what happens *after* the MAC.
            main_q = _ir_forward_int(body_ir, x_q, config)
            skip_q = _ir_forward_int(shortcut_ir, x_q, config) if shortcut_ir else x_q
            total = main_q + skip_q * skip_alpha
            node.mac_peak = max(node.mac_peak, int(np.abs(total).max()))
            out_q = node.remap(_wrap_t(total, config.t), a_max)
        return node, out_f, out_scale, out_q

    def _retarget_tail(ir: list, add_scale: float) -> None:
        tail = ir[-1]
        if not isinstance(tail, (QConv, QLinear)):
            raise QuantizationError("residual branch must end in conv/linear")
        if tail.activation != "identity":
            raise QuantizationError("pre-add layer must not carry an activation")
        tail.out_scale = add_scale
        tail.out_max = RESIDUAL_WIDE_MAX

    x_q0 = None
    if track:
        x_q0 = np.clip(
            np.rint(calib_x.astype(np.float64) / input_scale), -a_max, a_max
        ).astype(np.int64)
    ir, _, _, _ = convert(folded.layers, calib_x.astype(np.float64), input_scale, x_q0)
    # The classifier head keeps wide precision: softmax's exp LUT operates
    # on the logits, and at int-a granularity the e_ms perturbation would
    # swing exp() by whole quantization steps. Argmax is scale-invariant,
    # so plain accuracy is unaffected. The width is clamped to t//4 so the
    # logits stay inside the plaintext modulus at small-t test parameters.
    tail = ir[-1] if ir else None
    if isinstance(tail, QLinear) and tail.activation == "identity":
        wide = min(RESIDUAL_WIDE_MAX // 4, config.t // 4)
        eff_a = tail.bits.a_max if tail.bits else a_max
        tail.out_scale = tail.out_scale * eff_a / wide
        tail.out_max = wide
    qmodel = QuantizedModel(ir, config, input_scale, in_shape, name=name)
    if lut_margin is not None:
        # The MAC peaks were calibrated above; freeze the restricted LUT
        # domains before the first lowering so LutSpec captures them.
        for node in mac_nodes:
            peak = int(getattr(node, "mac_peak", 0))
            if peak <= 0:
                continue
            r = peak + int(lut_margin)
            if 2 * r + 1 < config.t:
                node.lut_range = r
    return qmodel
