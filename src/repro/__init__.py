"""Athena reproduction: quantized CNN inference under FHE + accelerator sim.

Subpackages:

* :mod:`repro.fhe` — BFV/LWE/CKKS cryptographic substrate
* :mod:`repro.quant` — quantized CNN training/inference framework
* :mod:`repro.data` — synthetic dataset generators
* :mod:`repro.core` — the Athena five-step inference framework
* :mod:`repro.perf` — perf counters, parallel executors, bench harness
* :mod:`repro.serve` — warm inference sessions + on-disk plan cache
* :mod:`repro.accel` — cycle-level accelerator simulator and baselines
* :mod:`repro.eval` — per-table / per-figure experiment drivers

The curated top-level surface (``repro.lower``, ``repro.run_program``,
``repro.AthenaPipeline``, ``repro.FbsLut``, ``repro.PerfRecorder``, ...) is
re-exported lazily (PEP 562) so that ``import repro`` stays free of the
numpy-heavy submodule imports until a symbol is actually touched.
"""

__version__ = "1.1.0"

#: Curated public API; everything else is reachable via the subpackages but
#: carries no top-level stability promise.
_EXPORTS = {
    "AthenaPipeline": ("repro.core.framework", "AthenaPipeline"),
    "AthenaProgram": ("repro.core.program", "AthenaProgram"),
    "AthenaService": ("repro.serve", "AthenaService"),
    "CompiledProgram": ("repro.core.plan", "CompiledProgram"),
    "ExecConfig": ("repro.perf", "ExecConfig"),
    "FbsLut": ("repro.fhe.fbs", "FbsLut"),
    "InferenceRequest": ("repro.serve", "InferenceRequest"),
    "InferenceResult": ("repro.serve", "InferenceResult"),
    "InferenceSession": ("repro.serve", "InferenceSession"),
    "ParallelMap": ("repro.perf", "ParallelMap"),
    "PerfRecorder": ("repro.perf", "PerfRecorder"),
    "PlanCache": ("repro.serve", "PlanCache"),
    "SessionCore": ("repro.serve", "SessionCore"),
    "SessionRuntime": ("repro.serve", "SessionRuntime"),
    "ShardedPlanCache": ("repro.serve", "ShardedPlanCache"),
    "Tenant": ("repro.serve", "Tenant"),
    "compile_program": ("repro.core.plan", "compile_program"),
    "lower": ("repro.core.program", "lower"),
    "run_program": ("repro.core.program", "run_program"),
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
