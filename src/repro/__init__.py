"""Athena reproduction: quantized CNN inference under FHE + accelerator sim.

Subpackages:

* :mod:`repro.fhe` — BFV/LWE/CKKS cryptographic substrate
* :mod:`repro.quant` — quantized CNN training/inference framework
* :mod:`repro.data` — synthetic dataset generators
* :mod:`repro.core` — the Athena five-step inference framework
* :mod:`repro.accel` — cycle-level accelerator simulator and baselines
* :mod:`repro.eval` — per-table / per-figure experiment drivers
"""

__version__ = "1.0.0"
