"""Tests for the evaluation-key inventory."""

import pytest

from repro.core.keyinventory import (
    athena_key_material_bytes,
    baby_giant_amounts,
    build_inventory,
    summarize,
)
from repro.fhe.params import ATHENA, TEST_TINY


class TestBabyGiant:
    def test_amounts_cover_range(self):
        amounts = baby_giant_amounts(64)
        # every diagonal index decomposes as g*bs + b with available keys
        bs = 8
        for d in range(1, 64):
            g, b = divmod(d, bs)
            assert (b == 0 or b in amounts) and (g == 0 or g * bs in amounts)

    def test_sqrt_scaling(self):
        small = len(baby_giant_amounts(64))
        large = len(baby_giant_amounts(4096))
        assert large < 64 * small  # O(sqrt) not O(n)


class TestInventory:
    def test_elements_are_odd(self):
        inv = build_inventory(TEST_TINY)
        assert all(e % 2 == 1 for e in inv.galois_elements)

    def test_row_swap_included(self):
        from repro.fhe.slots import row_swap_element

        inv = build_inventory(TEST_TINY)
        assert row_swap_element(TEST_TINY.n) in inv.galois_elements

    def test_athena_inventory_size(self):
        inv = build_inventory(ATHENA)
        # O(sqrt(N/2) + sqrt(n)) keys, a few hundred
        assert 100 < inv.num_galois_keys < 600

    def test_seed_compression_halves_galois(self):
        inv = build_inventory(TEST_TINY)
        assert inv.galois_key_bytes(True) * 2 == inv.galois_key_bytes(False)

    def test_lwe_ksk_compression(self):
        inv = build_inventory(TEST_TINY)
        assert inv.lwe_ksk_bytes(True) < inv.lwe_ksk_bytes(False) / 10


class TestSummary:
    def test_athena_total_same_order_as_paper(self):
        # Paper Table 1: 720 MB. Our inventory under hybrid keyswitching
        # lands within a small factor (documented in EXPERIMENTS.md).
        total_mb = summarize(ATHENA)["total_mb"]
        assert 300 < total_mb < 4000

    def test_key_bytes_helper(self):
        assert athena_key_material_bytes(ATHENA) == pytest.approx(
            summarize(ATHENA)["total_mb"] * 2**20
        )
