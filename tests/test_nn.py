"""Tests for the float NN engine: layers, gradients, training."""

import numpy as np
import pytest

from repro.quant import nn
from repro.quant.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
    Residual,
    Sequential,
    Sgd,
    accuracy,
    cross_entropy_grad,
    softmax,
    train_epoch,
)


def numerical_grad(f, x, eps=1e-5):
    """Central-difference gradient of scalar f wrt array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        fp = f()
        x[idx] = old - eps
        fm = f()
        x[idx] = old
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


def check_input_grad(layer, x, atol=1e-4):
    """Backprop input gradient vs numerical gradient of sum(output).

    The numeric probe must run in train mode too: BatchNorm computes a
    different function (batch stats vs running stats) per mode.
    """
    out = layer.forward(x, train=True)
    analytic = layer.backward(np.ones_like(out))
    numeric = numerical_grad(lambda: layer.forward(x, train=True).sum(), x)
    assert np.allclose(analytic, numeric, atol=atol), (
        f"max diff {np.abs(analytic - numeric).max()}"
    )


class TestConv2d:
    def test_output_shape(self, rng):
        conv = Conv2d(3, 8, kernel=3, stride=2, pad=1, rng=rng)
        out = conv.forward(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 8, 8, 8)

    def test_matches_direct_convolution(self, rng):
        conv = Conv2d(2, 3, kernel=3, stride=1, pad=1, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = conv.forward(x)
        # direct computation at one output position
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        manual = (xp[0, :, 2:5, 2:5] * conv.weight[1]).sum() + conv.bias[1]
        assert np.isclose(out[0, 1, 2, 2], manual)

    def test_input_gradient(self, rng):
        conv = Conv2d(2, 3, kernel=3, stride=1, pad=1, rng=rng)
        check_input_grad(conv, rng.normal(size=(2, 2, 5, 5)))

    def test_weight_gradient(self, rng):
        conv = Conv2d(2, 2, kernel=3, stride=2, pad=1, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6))
        out = conv.forward(x, train=True)
        conv.backward(np.ones_like(out))
        numeric = numerical_grad(lambda: conv.forward(x).sum(), conv.weight)
        assert np.allclose(conv.w_grad, numeric, atol=1e-4)

    def test_strided_no_pad(self, rng):
        conv = Conv2d(4, 8, kernel=1, stride=2, pad=0, rng=rng)
        out = conv.forward(rng.normal(size=(1, 4, 16, 16)))
        assert out.shape == (1, 8, 8, 8)


class TestLinear:
    def test_forward(self, rng):
        lin = Linear(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        assert np.allclose(lin.forward(x), x @ lin.weight.T + lin.bias)

    def test_gradients(self, rng):
        lin = Linear(5, 3, rng=rng)
        x = rng.normal(size=(4, 5))
        out = lin.forward(x, train=True)
        din = lin.backward(np.ones_like(out))
        assert np.allclose(din, np.ones((4, 3)) @ lin.weight)
        assert np.allclose(lin.w_grad, np.ones((4, 3)).T @ x)
        assert np.allclose(lin.b_grad, 4 * np.ones(3))


class TestActivationsAndPools:
    def test_relu(self, rng):
        layer = ReLU()
        x = rng.normal(size=(3, 4))
        out = layer.forward(x, train=True)
        assert np.array_equal(out, np.maximum(x, 0))
        grad = layer.backward(np.ones_like(out))
        assert np.array_equal(grad, (x > 0).astype(float))

    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_grad_routes_to_max(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool.forward(x, train=True)
        grad = pool.backward(np.ones_like(out))
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        assert np.array_equal(grad[0, 0], expected)

    def test_avgpool(self, rng):
        pool = AvgPool2d(2)
        x = rng.normal(size=(2, 3, 4, 4))
        out = pool.forward(x, train=True)
        assert np.isclose(out[0, 0, 0, 0], x[0, 0, :2, :2].mean())
        check_input_grad(pool, x)

    def test_global_avgpool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        layer = GlobalAvgPool()
        out = layer.forward(x, train=True)
        assert out.shape == (2, 3)
        assert np.allclose(out, x.mean(axis=(2, 3)))
        check_input_grad(layer, x)

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x, train=True)
        assert out.shape == (2, 48)
        assert layer.backward(out).shape == x.shape


class TestBatchNorm:
    def test_normalizes_in_train(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(2.0, 3.0, size=(8, 3, 4, 4))
        out = bn.forward(x, train=True)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0, atol=1e-6)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1, atol=1e-2)

    def test_running_stats_used_in_eval(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(1.0, 2.0, size=(16, 2, 4, 4))
        for _ in range(50):
            bn.forward(x, train=True)
        eval_out = bn.forward(x, train=False)
        train_out = bn.forward(x, train=True)
        assert np.allclose(eval_out, train_out, atol=0.3)

    def test_input_gradient(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(size=(4, 2, 3, 3))
        check_input_grad(bn, x, atol=1e-3)


class TestResidual:
    def test_identity_skip(self, rng):
        body = Sequential(Conv2d(4, 4, 3, 1, 1, rng=rng))
        block = Residual(body)
        x = rng.normal(size=(2, 4, 8, 8))
        out = block.forward(x, train=True)
        expected = np.maximum(body.layers[0].forward(x) + x, 0)
        assert np.allclose(out, expected)

    def test_projection_skip_shapes(self, rng):
        body = Sequential(Conv2d(4, 8, 3, 2, 1, rng=rng))
        short = Sequential(Conv2d(4, 8, 1, 2, 0, rng=rng))
        block = Residual(body, short)
        out = block.forward(rng.normal(size=(2, 4, 8, 8)))
        assert out.shape == (2, 8, 4, 4)

    def test_gradient_flows_both_paths(self, rng):
        body = Sequential(Conv2d(3, 3, 3, 1, 1, rng=rng))
        block = Residual(body)
        x = rng.normal(size=(1, 3, 5, 5))
        check_input_grad(block, x)


class TestLossAndTraining:
    def test_softmax_normalizes(self, rng):
        p = softmax(rng.normal(size=(5, 10)))
        assert np.allclose(p.sum(axis=1), 1)

    def test_cross_entropy_grad_direction(self):
        logits = np.zeros((1, 3))
        loss, grad = cross_entropy_grad(logits.copy(), np.array([1]))
        assert grad[0, 1] < 0 and grad[0, 0] > 0

    def test_cross_entropy_matches_numeric(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 1])
        _, grad = cross_entropy_grad(logits.copy(), labels)
        numeric = numerical_grad(
            lambda: cross_entropy_grad(logits.copy(), labels)[0], logits
        )
        assert np.allclose(grad, numeric, atol=1e-5)

    def test_sgd_reduces_loss_on_toy_problem(self, rng):
        x = rng.normal(size=(200, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        model = Sequential(Linear(4, 16, rng=rng), ReLU(), Linear(16, 2, rng=rng))
        opt = Sgd(lr=0.1)
        first = train_epoch(model, x, y, opt, rng=rng)
        for _ in range(10):
            last = train_epoch(model, x, y, opt, rng=rng)
        assert last < first
        assert accuracy(model, x, y) > 0.9

    def test_weight_decay_shrinks_weights(self, rng):
        lin = Linear(4, 4, rng=rng)
        norm0 = np.linalg.norm(lin.weight)
        opt = Sgd(lr=0.1, momentum=0.0, weight_decay=0.5)
        lin.w_grad[...] = 0
        lin.b_grad[...] = 0
        opt.step(lin.parameters())
        assert np.linalg.norm(lin.weight) < norm0


class TestIm2col:
    """Direct unit tests for the public patch-matrix primitive."""

    @staticmethod
    def _naive(x, kh, kw, stride, pad):
        b, c, h, w = x.shape
        if pad:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        oh = (h + 2 * pad - kh) // stride + 1
        ow = (w + 2 * pad - kw) // stride + 1
        cols = np.empty((b, oh, ow, c * kh * kw), dtype=x.dtype)
        for bi in range(b):
            for i in range(oh):
                for j in range(ow):
                    patch = x[bi, :, i * stride : i * stride + kh,
                              j * stride : j * stride + kw]
                    cols[bi, i, j] = patch.reshape(-1)
        return cols, oh, ow

    @pytest.mark.parametrize(
        "shape,kh,kw,stride,pad",
        [
            ((2, 3, 8, 8), 3, 3, 1, 0),
            ((2, 3, 8, 8), 3, 3, 1, 1),  # 'same' padding
            ((1, 2, 7, 7), 3, 3, 2, 1),  # stride 2, odd input
            ((1, 1, 6, 6), 2, 2, 2, 0),  # pooling-style tiling
            ((2, 4, 5, 9), 3, 3, 2, 2),  # non-square input, pad > 1
            ((1, 2, 5, 5), 1, 1, 1, 0),  # pointwise
            ((1, 1, 4, 4), 4, 4, 1, 0),  # kernel == input (single patch)
            ((1, 2, 3, 3), 3, 3, 1, 2),  # padding larger than border
            ((1, 3, 6, 6), 2, 3, 1, 0),  # non-square kernel
            ((1, 1, 9, 9), 3, 3, 3, 0),  # stride == kernel, exact tiling
            ((1, 1, 8, 8), 3, 3, 5, 0),  # stride > kernel (skipped pixels)
        ],
    )
    def test_matches_naive_reference(self, rng, shape, kh, kw, stride, pad):
        x = rng.integers(-9, 10, shape).astype(np.int64)
        cols, oh, ow = nn.im2col(x, kh, kw, stride, pad)
        ref, roh, row = self._naive(x, kh, kw, stride, pad)
        assert (oh, ow) == (roh, row)
        assert np.array_equal(cols, ref)

    def test_channel_major_last_axis(self, rng):
        """Last axis must be (c, kh, kw)-ordered — the weight reshape and the
        quantized engines' window reductions both rely on it."""
        x = rng.normal(size=(1, 3, 4, 4))
        cols, _, _ = nn.im2col(x, 2, 2, 1, 0)
        patch = cols[0, 1, 2].reshape(3, 2, 2)
        assert np.array_equal(patch, x[0, :, 1:3, 2:4])

    def test_single_patch_flattens_whole_image(self, rng):
        x = rng.normal(size=(2, 2, 3, 3))
        cols, oh, ow = nn.im2col(x, 3, 3, 1, 0)
        assert (oh, ow) == (1, 1)
        assert np.array_equal(cols[:, 0, 0], x.reshape(2, -1))

    def test_output_not_writeable_view_corruption(self, rng):
        """im2col must return patches that are safe to reshape/reduce."""
        x = rng.integers(0, 5, (1, 1, 4, 4)).astype(np.int64)
        cols, _, _ = nn.im2col(x, 2, 2, 2, 0)
        summed = cols.sum(axis=-1)
        assert summed.shape == (1, 2, 2)
        assert summed[0, 0, 0] == x[0, 0, :2, :2].sum()

    def test_legacy_alias_preserved(self):
        assert nn._im2col is nn.im2col
