"""Unit tests for repro.utils.modmath."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.utils import modmath


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 65537, 257, 17):
            assert modmath.is_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 6, 9, 15, 65536, 2**31):
            assert not modmath.is_prime(c)

    def test_carmichael_numbers_rejected(self):
        for c in (561, 1105, 1729, 41041, 825265):
            assert not modmath.is_prime(c)

    def test_large_ntt_prime(self):
        assert modmath.is_prime(1073479681)  # 30-bit, = 1 mod 2^16

    @given(st.integers(min_value=4, max_value=10**6))
    @settings(max_examples=200)
    def test_matches_trial_division(self, n):
        def trial(n):
            if n < 2:
                return False
            d = 2
            while d * d <= n:
                if n % d == 0:
                    return False
                d += 1
            return True

        assert modmath.is_prime(n) == trial(n)


class TestNttPrimes:
    def test_finds_requested_count(self):
        primes = modmath.find_ntt_primes(4, 30, 256)
        assert len(primes) == 4
        assert len(set(primes)) == 4
        for p in primes:
            assert modmath.is_prime(p)
            assert p % 256 == 1
            assert p < 2**30

    def test_athena_limb_count(self):
        primes = modmath.find_ntt_primes(24, 30, 2**16)
        assert len(primes) == 24
        assert all(p % 2**16 == 1 for p in primes)

    def test_rejects_too_wide(self):
        with pytest.raises(ParameterError):
            modmath.find_ntt_primes(1, 40, 256)

    def test_rejects_non_pow2_order(self):
        with pytest.raises(ParameterError):
            modmath.find_ntt_primes(1, 30, 100)


class TestRoots:
    def test_primitive_root_order(self):
        for p in (17, 257, 65537):
            g = modmath.primitive_root(p)
            seen = set()
            acc = 1
            for _ in range(p - 1):
                acc = acc * g % p
                seen.add(acc)
            assert len(seen) == p - 1

    def test_root_of_unity(self):
        w = modmath.root_of_unity(512, modmath.find_ntt_primes(1, 30, 512)[0])
        p = modmath.find_ntt_primes(1, 30, 512)[0]
        assert pow(w, 512, p) == 1
        assert pow(w, 256, p) != 1

    def test_root_of_unity_rejects_bad_order(self):
        with pytest.raises(ParameterError):
            modmath.root_of_unity(7, 17)


class TestInvMod:
    @given(st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=100)
    def test_inverse_property(self, a):
        p = 1073479681
        if a % p == 0:
            a += 1
        inv = modmath.inv_mod(a, p)
        assert a * inv % p == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ParameterError):
            modmath.inv_mod(6, 12)


class TestCrt:
    @given(st.integers(min_value=0, max_value=17 * 257 * 65537 - 1))
    @settings(max_examples=100)
    def test_roundtrip(self, x):
        moduli = [17, 257, 65537]
        residues = [x % m for m in moduli]
        assert modmath.crt_combine(residues, moduli) == x

    def test_mismatched_lengths(self):
        with pytest.raises(ParameterError):
            modmath.crt_combine([1, 2], [3])


class TestCentered:
    def test_scalar(self):
        assert modmath.centered(0, 7) == 0
        assert modmath.centered(3, 7) == 3
        assert modmath.centered(4, 7) == -3
        assert modmath.centered(6, 7) == -1

    def test_array_matches_scalar(self):
        m = 257
        x = np.arange(-300, 300)
        arr = modmath.centered_array(x, m)
        for xi, ai in zip(x, arr):
            assert ai == modmath.centered(int(xi), m)

    @given(st.integers(), st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=100)
    def test_range_and_congruence(self, x, m):
        c = modmath.centered(x, m)
        assert -m // 2 <= c <= m // 2
        assert (c - x) % m == 0
