"""Tests for LWE packing, slot-to-coefficient, and functional bootstrapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.fhe import lwe
from repro.fhe.bfv import Plaintext
from repro.fhe.fbs import (
    FbsCost,
    FbsLut,
    evaluate_poly_plain,
    fbs_evaluate,
    interpolate_lut,
)
from repro.fhe.packing import PackingKey, pack_lwe
from repro.fhe.s2c import S2CKey, slot_to_coeff, _evaluation_matrix, _slot_points
from repro.fhe.slots import slot_decode
from repro.utils.sampling import Sampler


def make_lwe_batch(rng, count, dim, t, secret, noise_std=1.0, messages=None):
    """Synthesize an LWE batch encrypting ``messages`` under ``secret``."""
    if messages is None:
        messages = rng.integers(0, t, count)
    a = rng.integers(0, t, (count, dim)).astype(np.int64)
    e = np.rint(rng.normal(0, noise_std, count)).astype(np.int64)
    b = (messages + e - (a @ secret)) % t
    return lwe.LweBatch(a, b.astype(np.int64), t), messages, e


@pytest.fixture(scope="module")
def packing_setup(tiny_ctx, tiny_keys):
    sk, pk = tiny_keys
    samp = Sampler(7)
    s_small = samp.ternary(tiny_ctx.params.lwe_n)
    pkey = PackingKey.generate(tiny_ctx, s_small, sk, pk)
    return tiny_ctx, sk, pk, s_small, pkey


class TestPacking:
    def test_full_batch_exact(self, packing_setup, rng):
        ctx, sk, _, s_small, pkey = packing_setup
        p = ctx.params
        batch, m, e = make_lwe_batch(rng, p.n, p.lwe_n, p.t, s_small)
        packed = pack_lwe(ctx, batch, pkey)
        dec = ctx.decrypt(packed, sk).to_slots()
        # Packing performs homomorphic decryption: slots hold m + e exactly.
        assert np.array_equal(dec, (m + e) % p.t)

    def test_partial_batch_zero_pads(self, packing_setup, rng):
        ctx, sk, _, s_small, pkey = packing_setup
        p = ctx.params
        count = p.n // 4
        batch, m, e = make_lwe_batch(rng, count, p.lwe_n, p.t, s_small)
        dec = ctx.decrypt(pack_lwe(ctx, batch, pkey), sk).to_slots()
        assert np.array_equal(dec[:count], (m + e) % p.t)

    def test_noiseless_lwe_packs_exactly(self, packing_setup, rng):
        ctx, sk, _, s_small, pkey = packing_setup
        p = ctx.params
        batch, m, _ = make_lwe_batch(rng, p.n, p.lwe_n, p.t, s_small, noise_std=0.0)
        dec = ctx.decrypt(pack_lwe(ctx, batch, pkey), sk).to_slots()
        assert np.array_equal(dec, m % p.t)

    def test_wrong_modulus_raises(self, packing_setup):
        ctx, *_, pkey = packing_setup
        bad = lwe.LweBatch(
            np.zeros((1, ctx.params.lwe_n), dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            31,
        )
        with pytest.raises(ParameterError):
            pack_lwe(ctx, bad, pkey)

    def test_too_many_ciphertexts_raises(self, packing_setup, rng):
        ctx, _, _, s_small, pkey = packing_setup
        p = ctx.params
        batch, *_ = make_lwe_batch(rng, p.n + 1, p.lwe_n, p.t, s_small)
        with pytest.raises(ParameterError):
            pack_lwe(ctx, batch, pkey)


class TestS2C:
    def test_evaluation_matrix_consistency(self):
        # slots = P @ coeffs must agree with the NTT-based slot_decode.
        n, t = 32, 257
        rng = np.random.default_rng(0)
        coeffs = rng.integers(0, t, n)
        p = _evaluation_matrix(n, t)
        via_matrix = (p @ coeffs) % t
        assert np.array_equal(via_matrix, slot_decode(coeffs, n, t))

    def test_slot_points_distinct(self):
        pts = _slot_points(32, 257)
        assert len(set(int(x) for x in pts)) == 32

    def test_s2c_moves_slots_to_coeffs(self, tiny_ctx, tiny_keys, rng):
        ctx = tiny_ctx
        sk, pk = tiny_keys
        p = ctx.params
        key = S2CKey.generate(ctx, sk)
        v = rng.integers(0, p.t, p.n)
        ct = ctx.encrypt(Plaintext.from_slots(v, p), pk)
        out = slot_to_coeff(ctx, ct, key)
        assert np.array_equal(ctx.decrypt(out, sk).coeffs, v % p.t)

    def test_s2c_linear(self, tiny_ctx, tiny_keys, rng):
        ctx = tiny_ctx
        sk, pk = tiny_keys
        p = ctx.params
        key = S2CKey.generate(ctx, sk)
        v1 = rng.integers(0, p.t, p.n)
        v2 = rng.integers(0, p.t, p.n)
        c1 = ctx.encrypt(Plaintext.from_slots(v1, p), pk)
        c2 = ctx.encrypt(Plaintext.from_slots(v2, p), pk)
        out = slot_to_coeff(ctx, ctx.add(c1, c2), key)
        assert np.array_equal(ctx.decrypt(out, sk).coeffs, (v1 + v2) % p.t)


class TestLutInterpolation:
    @pytest.mark.parametrize("t", [5, 17, 257])
    def test_exhaustive(self, t):
        rng = np.random.default_rng(t)
        vals = rng.integers(0, t, t)
        coeffs = interpolate_lut(vals, t)
        assert np.array_equal(evaluate_poly_plain(coeffs, np.arange(t), t), vals)

    def test_paper_relu_example(self):
        # Paper §3.2.3: t=5, ReLU LUT -> FBS(x) = 3x + x^2 + 2x^4.
        coeffs = interpolate_lut(np.array([0, 1, 2, 0, 0]), 5)
        assert list(coeffs) == [0, 3, 1, 0, 2]

    def test_constant_lut(self):
        coeffs = interpolate_lut(np.full(17, 5), 17)
        assert np.array_equal(evaluate_poly_plain(coeffs, np.arange(17), 17), np.full(17, 5))

    def test_identity_lut(self):
        t = 17
        coeffs = interpolate_lut(np.arange(t), t)
        # identity is the degree-1 polynomial x
        expected = np.zeros(t, dtype=np.int64)
        expected[1] = 1
        assert np.array_equal(coeffs, expected)

    def test_wrong_size_raises(self):
        with pytest.raises(ParameterError):
            interpolate_lut(np.zeros(5), 17)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_luts_interpolate(self, seed):
        t = 17
        vals = np.random.default_rng(seed).integers(0, t, t)
        coeffs = interpolate_lut(vals, t)
        assert np.array_equal(evaluate_poly_plain(coeffs, np.arange(t), t), vals)


class TestFbsLut:
    def test_from_function_centered_domain(self):
        lut = FbsLut.from_function(lambda x: np.maximum(x, 0), 257, "relu")
        assert lut.values[5] == 5  # positive stays
        assert lut.values[257 - 5] == 0  # -5 -> relu -> 0

    def test_apply_plain_matches_poly(self, rng):
        t = 257
        lut = FbsLut.from_function(lambda x: np.abs(x), t)
        x = rng.integers(0, t, 100)
        assert np.array_equal(
            lut.apply_plain(x), evaluate_poly_plain(lut.coeffs, x, t)
        )


@pytest.mark.slow
class TestFbsHomomorphic:
    def test_relu_lut_on_slots(self, fbs_ctx, fbs_keys, fbs_rlk, rng):
        ctx = fbs_ctx
        sk, pk = fbs_keys
        p = ctx.params
        lut = FbsLut.from_function(lambda x: np.maximum(x, 0), p.t, "relu")
        x = rng.integers(0, p.t, p.n)
        ct = ctx.encrypt(Plaintext.from_slots(x, p), pk)
        cost = FbsCost()
        out = fbs_evaluate(ctx, ct, lut, fbs_rlk, cost)
        assert np.array_equal(ctx.decrypt(out, sk).to_slots(), lut.apply_plain(x))
        # Alg. 2 cost shape: O(t) SMult, O(sqrt t) CMult.
        assert cost.smult <= p.t
        assert cost.cmult <= 3 * int(np.sqrt(p.t)) + 20

    def test_remap_lut(self, fbs_ctx, fbs_keys, fbs_rlk, rng):
        # LUT(x) = floor(relu(x) * scale) — remapping merged with activation.
        ctx = fbs_ctx
        sk, pk = fbs_keys
        p = ctx.params
        scale = 1 / 8
        lut = FbsLut.from_function(
            lambda v: np.floor(np.maximum(v, 0) * scale).astype(np.int64), p.t
        )
        x = rng.integers(0, p.t, p.n)
        ct = ctx.encrypt(Plaintext.from_slots(x, p), pk)
        out = fbs_evaluate(ctx, ct, lut, fbs_rlk)
        assert np.array_equal(ctx.decrypt(out, sk).to_slots(), lut.apply_plain(x))

    def test_low_degree_lut_is_cheap(self, fbs_ctx, fbs_keys, fbs_rlk, rng):
        # identity LUT => degree-1 polynomial => no CMult at all
        ctx = fbs_ctx
        sk, pk = fbs_keys
        p = ctx.params
        lut = FbsLut(np.arange(p.t), p.t, "identity")
        x = rng.integers(0, p.t, p.n)
        ct = ctx.encrypt(Plaintext.from_slots(x, p), pk)
        cost = FbsCost()
        out = fbs_evaluate(ctx, ct, lut, fbs_rlk, cost)
        assert cost.cmult == 0
        assert np.array_equal(ctx.decrypt(out, sk).to_slots(), x % p.t)
