"""Compile/runtime split: CompiledProgram artifacts, wire format, cache.

The fast tests here pin the *structure* of the split — what gets computed
at compile time, how plans fingerprint, serialize, and cache. The
end-to-end guarantee (plan-driven execution is bit-identical to plan-free
execution, including through a save -> load round trip) runs real
ciphertext loops and lives in ``tests/test_program.py`` under the ``slow``
marker.
"""

import numpy as np
import pytest

from repro.core.plan import (
    CompiledLinear,
    CompiledOpaque,
    compile_program,
    program_fingerprint,
)
from repro.core.program import lower
from repro.errors import ParameterError
from repro.fhe.params import TEST_LOOP, TEST_SMALL
from repro.fhe.serialize import dump_plan, load_plan
from repro.perf.bench import mnist_cnn_micro
from repro.serve import InferenceSession, PlanCache


def _program():
    rng = np.random.default_rng(5)
    qm = mnist_cnn_micro(rng)
    return qm, lower(qm, TEST_LOOP)


class TestFingerprint:
    def test_stable_across_relowering(self):
        _, program = _program()
        again = lower(mnist_cnn_micro(np.random.default_rng(5)), TEST_LOOP)
        assert program_fingerprint(program) == program_fingerprint(again)

    def test_sensitive_to_weights(self):
        qm, program = _program()
        before = program_fingerprint(program)
        qm.layers[0].weight = qm.layers[0].weight.copy()
        qm.layers[0].weight[0, 0, 0, 0] += 1
        assert program_fingerprint(lower(qm, TEST_LOOP)) != before


class TestCompileProgram:
    def test_compile_precomputes_everything_request_invariant(self):
        _, program = _program()
        plan = program.compile()
        assert [type(s) for s in plan.steps] == [
            CompiledLinear, CompiledOpaque, CompiledLinear,
        ]
        conv, reshape, fc = plan.steps
        assert reshape.kind == "reshape"
        assert (conv.out_count, fc.out_count) == (32, 3)
        assert conv.s2c is True and fc.s2c is False  # tail fusion preserved
        # Operand forms are warmed at compile time, not first request.
        assert conv.kernel._ntt_op is not None
        assert conv.bias is not None and conv.bias._scaled_op is not None
        assert conv.fbs.degree > 0 and conv.lut.t == TEST_LOOP.t
        assert conv.tiles is None  # unchunked round: one tile
        assert plan.s2c.direct.baby_steps == plan.s2c.crossed.baby_steps
        assert plan.model_hash == program_fingerprint(program)

    def test_chunked_tile_layout(self):
        _, program = _program()
        plan = compile_program(program, TEST_LOOP, chunk=16)
        conv, _, fc = plan.steps
        assert [t.offset for t in conv.tiles] == [0, 16]
        assert all(t.positions.shape[0] == 16 for t in conv.tiles)
        for tile in conv.tiles:
            assert (tile.correction is None) == (int(conv.lut.values[0]) == 0)
        assert fc.tiles is None  # 3 outputs <= chunk

    def test_bind_rejects_other_params(self):
        _, program = _program()
        plan = compile_program(program, TEST_LOOP)
        with pytest.raises(ParameterError):
            plan.bind(program, TEST_SMALL)

    def test_bad_chunk_rejected(self):
        _, program = _program()
        with pytest.raises(ParameterError):
            compile_program(program, TEST_LOOP, chunk=0)


class TestWireFormat:
    def test_round_trip_preserves_artifacts(self):
        _, program = _program()
        plan = compile_program(program, TEST_LOOP, chunk=16)
        loaded = load_plan(dump_plan(plan), TEST_LOOP)
        assert loaded.model_hash == plan.model_hash
        assert loaded.chunk == plan.chunk and loaded.name == plan.name
        assert len(loaded.steps) == len(plan.steps)
        for got, want in zip(loaded.steps, plan.steps):
            assert type(got) is type(want) and got.name == want.name
            if isinstance(want, CompiledLinear):
                assert np.array_equal(got.kernel.coeffs, want.kernel.coeffs)
                assert np.array_equal(got.positions, want.positions)
                assert np.array_equal(got.lut.values, want.lut.values)
                assert np.array_equal(got.lut.coeffs, want.lut.coeffs)
                assert got.s2c == want.s2c and got.op == want.op
                if want.bias is None:
                    assert got.bias is None
                else:
                    assert np.array_equal(got.bias.coeffs, want.bias.coeffs)
                assert got.fbs.groups == want.fbs.groups
        # The loaded plan binds to an equivalent re-lowered program.
        loaded.bind(lower(mnist_cnn_micro(np.random.default_rng(5)), TEST_LOOP),
                    TEST_LOOP)

    def test_wrong_params_rejected(self):
        _, program = _program()
        raw = dump_plan(compile_program(program, TEST_LOOP))
        with pytest.raises(ParameterError):
            load_plan(raw, TEST_SMALL)


class TestPlanCache:
    def test_miss_compiles_and_persists(self, tmp_path):
        _, program = _program()
        cache = PlanCache(tmp_path)
        plan = cache.get(program, TEST_LOOP)
        path = cache.path_for(plan.model_hash, TEST_LOOP)
        assert path.exists() and path.suffix == ".plan"

    def test_hit_loads_from_disk(self, tmp_path, monkeypatch):
        _, program = _program()
        cache = PlanCache(tmp_path)
        first = cache.get(program, TEST_LOOP)
        # A second lookup must not recompile: poison compile_program.
        import repro.serve.cache as cache_mod

        def boom(*a, **k):  # pragma: no cover - fails the test if reached
            raise AssertionError("cache hit must not recompile")

        monkeypatch.setattr(cache_mod, "compile_program", boom)
        second = cache.get(program, TEST_LOOP)
        assert second.model_hash == first.model_hash
        assert np.array_equal(
            second.steps[0].kernel.coeffs, first.steps[0].kernel.coeffs
        )

    def test_chunk_gets_its_own_entry(self, tmp_path):
        _, program = _program()
        cache = PlanCache(tmp_path)
        cache.get(program, TEST_LOOP)
        cache.get(program, TEST_LOOP, chunk=16)
        assert len(list(tmp_path.glob("*.plan"))) == 2


@pytest.mark.slow
class TestInferenceSession:
    def test_session_answers_requests_and_separates_phases(self):
        qm, program = _program()
        rng = np.random.default_rng(7)
        session = InferenceSession(program, TEST_LOOP, seed=41)
        for _ in range(2):
            x_q = rng.integers(-3, 4, (1, 6, 6)).astype(np.int64)
            got = session.run(x_q)
            want = qm.forward_int(x_q[None])[0]
            assert np.abs(got - want).max() <= 2
        stats = session.stats()
        assert stats.requests == 2
        assert stats.timings["compile_s"] > 0 and stats.timings["run_s"] > 0
        # Warm requests never pay the compile phase.
        assert "compile" not in session.last_perf.phase_s
