"""Batched (residue-stacked) RNS path vs the frozen per-prime serial loop.

The batched backend must be *bit-identical* to the serial reference for
every RnsPoly operation: both reduce the same integers modulo the same
primes, only the loop structure differs. These tests sweep random (L, N)
stacks through every op under both backends.
"""

import numpy as np
import pytest

from repro.fhe.ntt import (
    ntt_forward,
    ntt_forward_rns,
    ntt_inverse,
    ntt_inverse_rns,
    ntt_mul,
    ntt_mul_rns,
)
from repro.fhe.params import ATHENA_MEDIUM, TEST_LOOP
from repro.fhe.poly import RnsPoly, rns_backend, use_serial_rns
from repro.fhe.rns import from_rns, to_rns

PARAM_SETS = [TEST_LOOP, ATHENA_MEDIUM]


def _random_stack(rng, params):
    mods = np.array(params.moduli, dtype=np.int64)[:, None]
    return rng.integers(0, 2**31, (len(params.moduli), params.n)) % mods


@pytest.fixture(params=PARAM_SETS, ids=lambda p: f"n{p.n}L{len(p.moduli)}")
def params(request):
    return request.param


def _default_name() -> str:
    """What rns_backend() should report outside any use_backend context.

    The process default honors REPRO_BACKEND (the CI matrix legs set it to
    ``serial`` / ``batched-unfused``); with the variable unset it is the
    batched engine. ``rns_backend()`` names the RNS *kernel*, so both
    batched variants — fused or not, the fused tier sits above the kernel —
    report ``batched``.
    """
    import os

    from repro.fhe.backend import get_backend

    return get_backend(os.environ.get("REPRO_BACKEND") or "batched").rns_name


class TestBackendSwitch:
    def test_default_follows_env(self):
        assert rns_backend() == _default_name()

    def test_context_manager_swaps_and_restores(self):
        with use_serial_rns():
            assert rns_backend() == "serial"
            with use_serial_rns():
                assert rns_backend() == "serial"
        assert rns_backend() == _default_name()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_serial_rns():
                raise RuntimeError("boom")
        assert rns_backend() == _default_name()


class TestStackedNtt:
    """Residue-stacked transforms row-for-row match the per-prime ones."""

    def test_forward_matches_per_prime(self, params):
        rng = np.random.default_rng(1)
        a = _random_stack(rng, params)
        got = ntt_forward_rns(a.copy(), params.moduli)
        for i, p in enumerate(params.moduli):
            assert np.array_equal(got[i], ntt_forward(a[i].copy(), p))

    def test_inverse_matches_per_prime(self, params):
        rng = np.random.default_rng(2)
        a = _random_stack(rng, params)
        got = ntt_inverse_rns(a.copy(), params.moduli)
        for i, p in enumerate(params.moduli):
            assert np.array_equal(got[i], ntt_inverse(a[i].copy(), p))

    def test_roundtrip_is_identity(self, params):
        rng = np.random.default_rng(3)
        a = _random_stack(rng, params)
        back = ntt_inverse_rns(ntt_forward_rns(a.copy(), params.moduli),
                               params.moduli)
        assert np.array_equal(back, a)

    def test_mul_matches_per_prime(self, params):
        rng = np.random.default_rng(4)
        a = _random_stack(rng, params)
        b = _random_stack(rng, params)
        got = ntt_mul_rns(a.copy(), b.copy(), params.moduli)
        for i, p in enumerate(params.moduli):
            assert np.array_equal(got[i], ntt_mul(a[i].copy(), b[i].copy(), p))


class TestRnsPolyOpEquivalence:
    """Every RnsPoly op: batched result == serial result, bit for bit."""

    def _pair(self, params, seed):
        rng = np.random.default_rng(seed)
        a = RnsPoly(_random_stack(rng, params), params.moduli)
        b = RnsPoly(_random_stack(rng, params), params.moduli)
        return a, b

    @pytest.mark.parametrize(
        "op",
        [
            lambda a, b: a + b,
            lambda a, b: a - b,
            lambda a, b: -a,
            lambda a, b: a * b,
            lambda a, b: a.scalar_mul(12345),
            lambda a, b: a.scalar_mul(-7),
            lambda a, b: a.inv_scalar(3),
            lambda a, b: a.automorphism(3),
            lambda a, b: a.automorphism(2 * a.n - 1),
            lambda a, b: a.negacyclic_shift(1),
            lambda a, b: a.negacyclic_shift(a.n - 1),
            lambda a, b: a.negacyclic_shift(a.n + 5),
        ],
        ids=["add", "sub", "neg", "mul", "smul", "smul_neg", "inv_scalar",
             "auto3", "auto_conj", "shift1", "shift_nm1", "shift_wrap"],
    )
    def test_op_bit_identical(self, params, op):
        a, b = self._pair(params, 11)
        batched = op(a, b)
        with use_serial_rns():
            serial = op(a, b)
        assert np.array_equal(batched.data, serial.data)

    def test_constant_bit_identical(self, params):
        for value in (0, 1, -1, 12345, -(2**40)):
            batched = RnsPoly.constant(value, params.n, params.moduli)
            with use_serial_rns():
                serial = RnsPoly.constant(value, params.n, params.moduli)
            assert np.array_equal(batched.data, serial.data)

    def test_mul_matches_exact_reference(self, params):
        a, b = self._pair(params, 13)
        fast = a * b
        exact = a.mul_exact_then_reduce(b)
        assert np.array_equal(fast.data, exact.data)

    def test_crt_seams_unaffected_by_backend(self, params):
        a, _ = self._pair(params, 17)
        batched = a.to_int_coeffs()
        with use_serial_rns():
            serial = a.to_int_coeffs()
        assert batched == serial


class TestToRnsBroadcast:
    def test_ndarray_path_matches_int_path(self, params):
        rng = np.random.default_rng(19)
        values = rng.integers(-(2**40), 2**40, params.n)
        fast = to_rns(values, params.moduli)
        exact = to_rns([int(v) for v in values], params.moduli)
        assert np.array_equal(fast, exact)

    def test_roundtrip(self, params):
        rng = np.random.default_rng(23)
        values = rng.integers(0, 2**31, params.n)
        lifted = from_rns(to_rns(values, params.moduli), params.moduli)
        assert lifted == [int(v) for v in values]


class TestDtypeOverflowGuards:
    def test_moduli_fit_butterfly_int64(self, params):
        # a*b with a, b < p < 2**31 must fit int64 (< 2**62): the invariant
        # the batched butterflies rely on instead of Barrett reduction.
        for p in params.moduli:
            assert p < 2**31
            assert (p - 1) * (p - 1) < 2**62

    def test_batched_mul_no_overflow_at_max_residues(self, params):
        mods = np.array(params.moduli, dtype=np.int64)[:, None]
        top = np.broadcast_to(mods - 1, (len(params.moduli), params.n)).copy()
        a = RnsPoly(top.copy(), params.moduli)
        fast = a * a
        exact = a.mul_exact_then_reduce(a)
        assert np.array_equal(fast.data, exact.data)
