"""Tests for the op-trace generator and the CKKS workload model."""

import numpy as np
import pytest

from repro.core.trace import (
    OpCounts,
    effective_t,
    fbs_ops,
    fbs_ops_split,
    packing_ops,
    s2c_ops,
    se_chain_ops,
    trace_model,
)
from repro.data import synthetic_digits
from repro.fhe.params import ATHENA
from repro.quant.models import lenet, mnist_cnn
from repro.quant.quantize import QuantConfig, quantize_model


@pytest.fixture(scope="module")
def traced_model():
    rng = np.random.default_rng(0)
    x, _ = synthetic_digits(32, rng)
    qm = quantize_model(mnist_cnn(rng=np.random.default_rng(1)), x, QuantConfig(7, 7), "mnist_cnn")
    qm.forward_float(x[:16])
    return qm


class TestOpCounts:
    def test_iadd_accumulates(self):
        a = OpCounts(ntt=1, mod_mul=10)
        a += OpCounts(ntt=2, mod_mul=5, extract=7)
        assert a.ntt == 3 and a.mod_mul == 15 and a.extract == 7

    def test_scaled(self):
        a = OpCounts(ntt=2, mod_add=8).scaled(2.5)
        assert a.ntt == 5 and a.mod_add == 20


class TestPrimitiveShapes:
    def test_fbs_smult_linear_in_t(self):
        small = fbs_ops(ATHENA, 1 << 12)
        large = fbs_ops(ATHENA, 1 << 14)
        # Baby-half elementwise work scales ~linearly with t.
        assert 3.2 < large.mod_mul / small.mod_mul < 4.8

    def test_fbs_split_shapes(self):
        baby, giant = fbs_ops_split(ATHENA, 1 << 14)
        assert baby.mod_mul > giant.mod_mul  # O(t) vs O(sqrt t) elementwise
        assert giant.ntt > baby.ntt  # CMult relins live in the giant half

    def test_se_chain_scales_with_values(self):
        a = se_chain_ops(ATHENA, 1000)
        b = se_chain_ops(ATHENA, 2000)
        assert b.extract == 2 * a.extract
        assert b.mod_mul == 2 * a.mod_mul

    def test_packing_and_s2c_nonzero(self):
        for ops in (packing_ops(ATHENA), s2c_ops(ATHENA)):
            assert ops.mod_mul > 0 and ops.automorph > 0


class TestEffectiveT:
    def test_no_peak_falls_back_to_cap(self):
        layer = type("L", (), {"mac_peak": 0})()
        assert effective_t(layer, ATHENA) == ATHENA.t
        assert effective_t(layer, ATHENA, cap=1 << 12) == 1 << 12

    def test_peak_shrinks_table(self):
        # 2*peak + 1 = 2049 entries round up to the next power of two.
        layer = type("L", (), {"mac_peak": 1 << 10})()
        assert effective_t(layer, ATHENA) == 1 << 12
        layer2 = type("L", (), {"mac_peak": (1 << 10) - 1})()
        assert effective_t(layer2, ATHENA) == 1 << 11

    def test_floor_at_256(self):
        layer = type("L", (), {"mac_peak": 3})()
        assert effective_t(layer, ATHENA) == 256

    def test_cap_above_params_t_allowed(self):
        # w8a8 uses a larger plaintext prime.
        layer = type("L", (), {"mac_peak": 1 << 16})()
        assert effective_t(layer, ATHENA, cap=1 << 17) == 1 << 17


class TestTraceModel:
    def test_phases_cover_pipeline(self, traced_model):
        trace = trace_model(traced_model, ATHENA)
        phases = {p.phase for p in trace.phases}
        for expected in ("linear", "se", "packing", "fbs", "fbs_giant", "s2c", "softmax"):
            assert expected in phases

    def test_fbs_dominates_mod_muls(self, traced_model):
        by_phase = trace_model(traced_model, ATHENA).by_phase()
        fbs = by_phase["fbs"].mod_mul + by_phase.get("fbs_giant", OpCounts()).mod_mul
        assert fbs > by_phase["linear"].mod_mul

    def test_flexible_lut_reduces_work(self, traced_model):
        full = trace_model(traced_model, ATHENA, t_eff=ATHENA.t).totals()
        small = trace_model(traced_model, ATHENA, t_eff=1 << 12).totals()
        assert small.mod_mul < full.mod_mul

    def test_softmax_optional(self, traced_model):
        with_sm = trace_model(traced_model, ATHENA, softmax=True)
        without = trace_model(traced_model, ATHENA, softmax=False)
        assert len(with_sm.phases) > len(without.phases)
        assert not any(p.phase == "softmax" for p in without.phases)

    def test_lenet_has_pooling_phases(self):
        rng = np.random.default_rng(2)
        x, _ = synthetic_digits(16, rng)
        qm = quantize_model(lenet(rng=np.random.default_rng(3), width=0.5), x,
                            QuantConfig(7, 7), "lenet")
        trace = trace_model(qm, ATHENA)
        assert any(p.phase == "pooling" for p in trace.phases)

    def test_totals_equals_sum_of_phases(self, traced_model):
        trace = trace_model(traced_model, ATHENA)
        total = trace.totals()
        summed = OpCounts()
        for p in trace.phases:
            summed += p.ops
        assert total.mod_mul == summed.mod_mul
        assert total.ntt == summed.ntt
