"""Tests for the accelerator simulator: configs, scheduler, energy, tables."""

import pytest

from repro.accel import baselines as B
from repro.accel.configs import ALL_CONFIGS, ATHENA_ACCEL, SHARP, by_name
from repro.accel.energy import athena_energy, baseline_energy
from repro.accel.scheduler import schedule
from repro.accel.sensitivity import lane_sweep, precision_sweep_perf
from repro.accel.workload import MODEL_NAMES, ckks_trace
from repro.core.trace import WorkloadTrace
from repro.errors import ScheduleError


class TestConfigs:
    def test_lookup(self):
        assert by_name("athena") is ATHENA_ACCEL
        with pytest.raises(KeyError):
            by_name("tpu")

    def test_paper_table9_totals(self):
        assert ATHENA_ACCEL.area_mm2 == pytest.approx(116.4)
        assert ATHENA_ACCEL.power_w == pytest.approx(148.1)
        unit_area = sum(u.area_mm2 for u in ATHENA_ACCEL.units)
        assert unit_area == pytest.approx(116.42, abs=0.1)

    def test_table8_memory_values(self):
        assert ATHENA_ACCEL.scratchpad_mb == 45
        assert SHARP.scratchpad_mb == 180
        assert by_name("bts").scratchpad_bw_tbs == 330

    def test_athena_smaller_than_all_baselines(self):
        for cfg in ALL_CONFIGS[1:]:
            assert ATHENA_ACCEL.area_mm2 < cfg.area_mm2
            assert ATHENA_ACCEL.scratchpad_mb < cfg.scratchpad_mb


class TestCkksWorkload:
    def test_all_models_build(self):
        for name in MODEL_NAMES:
            trace = ckks_trace(name)
            assert trace.phases
            assert trace.totals().mod_mul > 0

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            ckks_trace("alexnet")

    def test_resnet56_heavier_than_resnet20(self):
        t20 = ckks_trace("resnet20").totals()
        t56 = ckks_trace("resnet56").totals()
        assert t56.mod_mul > 2 * t20.mod_mul
        assert t56.ntt > 2 * t20.ntt

    def test_bootstrap_dominates(self):
        by_phase = ckks_trace("resnet20").by_phase()
        assert by_phase["bootstrap"].mod_mul > by_phase["linear"].mod_mul


class TestScheduler:
    def test_empty_trace_raises(self):
        trace = WorkloadTrace("x", B.ATHENA_PARAMS)
        with pytest.raises(ScheduleError):
            schedule(trace, ATHENA_ACCEL)

    def test_more_resources_never_slower(self):
        from dataclasses import replace

        trace = ckks_trace("mnist_cnn")
        slow = schedule(trace, replace(SHARP, mod_mul_tput=1024, mod_add_tput=1024))
        fast = schedule(trace, replace(SHARP, mod_mul_tput=65536, mod_add_tput=65536))
        assert fast.total_ms <= slow.total_ms

    def test_phase_breakdown_sums_to_total(self):
        res = schedule(ckks_trace("lenet"), SHARP)
        assert sum(res.ms_by_phase().values()) == pytest.approx(res.total_ms)

    def test_region_overlap_helps(self):
        from dataclasses import replace

        trace = B.reference_athena_trace("resnet20")
        with_overlap = schedule(trace, replace(ATHENA_ACCEL, efficiency=1.0))
        without = schedule(
            trace, replace(ATHENA_ACCEL, efficiency=1.0, fbs_region_overlap=False)
        )
        assert with_overlap.total_ms < without.total_ms


class TestCalibration:
    def test_anchors_hit_exactly(self):
        for name in ("craterlake", "ark", "bts", "sharp"):
            ms = B.baseline_run(name, "resnet20").total_ms
            assert ms == pytest.approx(B.CALIBRATION_ANCHORS_MS[name], rel=1e-6)

    def test_athena_anchor(self):
        assert B.athena_run("resnet20").total_ms == pytest.approx(65.5, rel=1e-6)


class TestTable6:
    @pytest.fixture(scope="class")
    def t6(self):
        return B.table6()

    def test_athena_fastest_everywhere(self, t6):
        for m in MODEL_NAMES:
            best_baseline = min(t6[a][m] for a in ("craterlake", "ark", "bts", "sharp"))
            assert t6["athena-w7a7"][m] < best_baseline

    def test_speedup_range_vs_sharp(self, t6):
        # Paper: 1.5x - 2.3x over the best baseline (SHARP).
        for m in ("lenet", "resnet20", "resnet56"):
            speedup = t6["sharp"][m] / t6["athena-w7a7"][m]
            assert 1.2 < speedup < 3.5

    def test_w6a7_faster_than_w7a7(self, t6):
        for m in MODEL_NAMES:
            assert t6["athena-w6a7"][m] < t6["athena-w7a7"][m]

    def test_bts_slowest(self, t6):
        for m in MODEL_NAMES:
            assert t6["bts"][m] == max(t6[a][m] for a in ("craterlake", "ark", "bts", "sharp"))

    def test_predictions_within_2x_of_paper(self, t6):
        for arch, row in t6.items():
            paper = B.PAPER_TABLE6.get(arch, {})
            for m, v in row.items():
                if m in paper:
                    assert 0.4 < v / paper[m] < 2.5, (arch, m)


class TestEnergy:
    def test_athena_energy_positive_breakdown(self):
        res = B.athena_run("resnet20")
        en = athena_energy(res, B.calibrated_athena())
        assert en.energy_j > 0
        assert en.edp > 0
        assert all(v >= 0 for v in en.breakdown_j.values())

    def test_memory_share_near_half(self):
        # The Fig. 10 claim: memory ~50% of energy.
        res = B.athena_run("resnet20")
        en = athena_energy(res, B.calibrated_athena())
        mem = sum(en.breakdown_j.get(k, 0) for k in ("hbm", "scratchpad", "register_file"))
        assert 0.3 < mem / en.energy_j < 0.7

    def test_average_power_below_peak(self):
        res = B.athena_run("resnet20")
        en = athena_energy(res, B.calibrated_athena())
        avg_w = en.energy_j / (en.time_ms / 1e3)
        assert avg_w < ATHENA_ACCEL.power_w

    def test_baseline_energy_model(self):
        res = B.baseline_run("sharp", "resnet20")
        cfg = B.calibrated_baseline("sharp")
        en = baseline_energy(res, cfg)
        assert en.energy_j == pytest.approx(cfg.power_w * 0.7 * res.total_ms / 1e3)

    def test_table7_athena_wins(self):
        t7 = B.table7(("resnet20",))
        best_baseline = min(
            t7[a]["resnet20"] for a in ("craterlake", "ark", "bts", "sharp")
        )
        assert t7["athena-w7a7"]["resnet20"] < best_baseline

    def test_edap_includes_area_advantage(self):
        ed = B.edap(("resnet20",))
        edp = B.table7(("resnet20",))
        ratio_edp = edp["sharp"]["resnet20"] / edp["athena-w7a7"]["resnet20"]
        ratio_edap = ed["sharp"]["resnet20"] / ed["athena-w7a7"]["resnet20"]
        assert ratio_edap > ratio_edp  # area advantage compounds


class TestCrossDeployment:
    def test_fig8_ordering(self):
        data = B.cross_deployment()
        # Athena fastest; CraterLake (more MM/MA) beats SHARP on this workload.
        assert data["athena"] < data["craterlake"] < data["sharp"]

    def test_fig8_magnitudes(self):
        data = B.cross_deployment()
        assert data["sharp"] / data["athena"] > 3.0
        assert data["craterlake"] / data["athena"] > 2.0


class TestSensitivity:
    @pytest.fixture(scope="class")
    def sweep(self):
        return lane_sweep(lane_points=(256, 1024, 2048))

    def test_full_lanes_normalized_to_one(self, sweep):
        for p in sweep:
            if p.lanes == 2048:
                assert p.delay == pytest.approx(1.0)

    def test_fru_most_sensitive(self, sweep):
        # Paper Fig. 13: FRU dominates, then NTT; SE negligible.
        at256 = {p.unit: p.delay for p in sweep if p.lanes == 256}
        assert at256["fru"] >= at256["ntt"] > at256["automorphism"] >= at256["se"]
        assert at256["se"] < 1.1

    def test_delay_monotone_in_lanes(self, sweep):
        for unit in ("fru", "ntt"):
            series = sorted(
                (p for p in sweep if p.unit == unit), key=lambda p: p.lanes
            )
            delays = [p.delay for p in series]
            assert delays == sorted(delays, reverse=True)

    def test_precision_sweep_shape(self):
        perf = precision_sweep_perf()
        # Fig. 12: monotone cost in precision; biggest jump w7a7 -> w8a8.
        assert perf["w4a4"] < perf["w6a7"] < perf["w7a7"] < perf["w8a8"]
        assert perf["w8a8"] / perf["w7a7"] > 1.4
