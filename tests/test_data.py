"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import load_dataset, synthetic_cifar, synthetic_digits


class TestDigits:
    def test_shapes_and_range(self, rng):
        x, y = synthetic_digits(32, rng)
        assert x.shape == (32, 1, 28, 28)
        assert y.shape == (32,)
        assert x.min() >= 0 and x.max() <= 1
        assert y.min() >= 0 and y.max() <= 9

    def test_reproducible(self):
        x1, y1 = synthetic_digits(16, np.random.default_rng(5))
        x2, y2 = synthetic_digits(16, np.random.default_rng(5))
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)

    def test_classes_distinguishable(self):
        # Nearest-centroid classification must beat chance by a wide margin:
        # the classes carry real signal.
        rng = np.random.default_rng(0)
        x, y = synthetic_digits(600, rng)
        xt, yt = synthetic_digits(200, rng)
        centroids = np.stack([x[y == k].mean(axis=0).ravel() for k in range(10)])
        dists = ((xt.reshape(len(xt), -1)[:, None, :] - centroids[None]) ** 2).sum(-1)
        acc = (dists.argmin(axis=1) == yt).mean()
        # Nearest-centroid is a weak classifier; well above 10% chance is
        # enough to prove class signal (the trained CNN reaches ~98%).
        assert acc > 0.3

    def test_custom_size(self, rng):
        x, _ = synthetic_digits(4, rng, size=20)
        assert x.shape == (4, 1, 20, 20)

    def test_digits_vary_within_class(self, rng):
        x, y = synthetic_digits(100, rng)
        sevens = x[y == 7]
        if len(sevens) >= 2:
            assert not np.array_equal(sevens[0], sevens[1])


class TestCifar:
    def test_shapes_and_range(self, rng):
        x, y = synthetic_cifar(16, rng)
        assert x.shape == (16, 3, 32, 32)
        assert x.min() >= 0 and x.max() <= 1

    def test_classes_distinguishable(self):
        rng = np.random.default_rng(1)
        x, y = synthetic_cifar(600, rng)
        xt, yt = synthetic_cifar(200, rng)
        centroids = np.stack([x[y == k].mean(axis=0).ravel() for k in range(10)])
        dists = ((xt.reshape(len(xt), -1)[:, None, :] - centroids[None]) ** 2).sum(-1)
        acc = (dists.argmin(axis=1) == yt).mean()
        assert acc > 0.4

    def test_color_signal_present(self, rng):
        x, y = synthetic_cifar(200, rng)
        red_mean = x[y == 0][:, 0].mean()
        blue_mean = x[y == 0][:, 2].mean()
        assert red_mean > blue_mean  # class 0 palette is red-dominant


class TestLoader:
    def test_mnist_family(self):
        data = load_dataset("lenet", train=64, test=16, seed=3)
        assert data["x_train"].shape == (64, 1, 28, 28)
        assert data["x_test"].shape == (16, 1, 28, 28)

    def test_cifar_family(self):
        data = load_dataset("resnet20", train=32, test=8, seed=3)
        assert data["x_train"].shape == (32, 3, 32, 32)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")
