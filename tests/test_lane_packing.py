"""Multi-image lane packing: the geometry behind cross-user batching.

Fast tests pin the pure-numpy lane arithmetic — capacity, offsets,
pack/unpack round trips, position fan-out, trivial-row scatter — and the
compile-time lane annotations (``lane_span`` per linear step,
``batch_capacity`` per plan, wire-format round trip). The ``slow``-marked
tests drive real multi-lane ciphertexts through the full pipeline on the
TEST_FBS pack model and pin the edge cases batching must not bend:
partial final batches, lane-position symmetry (the same image computes the
same bits in lane 0 and lane k-1), and cross-lane isolation (one lane's
input never perturbs another lane's output).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoding import lane_span
from repro.core.framework import AthenaPipeline
from repro.core.plan import compile_program
from repro.core.program import lower
from repro.errors import ParameterError
from repro.fhe.lwe import LweBatch
from repro.fhe.params import TEST_FBS
from repro.fhe.serialize import dump_plan, load_plan
from repro.fhe.slots import (
    lane_capacity,
    lane_offsets,
    lane_positions,
    pack_lane_coeffs,
    unpack_lane_coeffs,
)
from repro.serve.loadgen import pack_cnn, serve_micro_cnn


# -- pure lane arithmetic -----------------------------------------------------


class TestLaneArithmetic:
    def test_capacity_floor_and_bounds(self):
        assert lane_capacity(13, 32) == 2
        assert lane_capacity(32, 32) == 1
        assert lane_capacity(16, 32) == 2
        assert lane_capacity(33, 32) == 0  # span exceeds the ring
        assert lane_capacity(40, 32) == 0
        with pytest.raises(ParameterError):
            lane_capacity(0, 32)

    def test_offsets_are_stride_multiples(self):
        assert lane_offsets(3, 11).tolist() == [0, 11, 22]
        with pytest.raises(ParameterError):
            lane_offsets(0, 11)

    def test_pack_unpack_round_trip(self):
        rng = np.random.default_rng(3)
        blocks = [rng.integers(-5, 6, 9).astype(np.int64) for _ in range(3)]
        packed = pack_lane_coeffs(blocks, stride=10, n=32)
        # Lane d occupies [d*stride, d*stride + width); the gap coefficient
        # of every stride stays zero.
        assert packed.shape == (32,)
        assert packed[9] == 0 and packed[19] == 0 and packed[29] == 0
        unpacked = unpack_lane_coeffs(packed, stride=10, lanes=3, width=9)
        assert np.array_equal(unpacked, np.stack(blocks))

    def test_pack_rejects_overflow_and_misfit(self):
        block = np.ones(9, dtype=np.int64)
        with pytest.raises(ParameterError):
            pack_lane_coeffs([], stride=10, n=32)
        with pytest.raises(ParameterError):
            pack_lane_coeffs([np.ones(11, dtype=np.int64)], stride=10, n=32)
        with pytest.raises(ParameterError):  # lane 3 starts at 30, width 9
            pack_lane_coeffs([block] * 4, stride=10, n=32)
        with pytest.raises(ParameterError):
            unpack_lane_coeffs(np.zeros(32), stride=10, lanes=4, width=9)

    def test_lane_positions_fan_out_and_bound(self):
        base = np.array([1, 4], dtype=np.int64)
        out = lane_positions(base, stride=10, lanes=3, n=32)
        assert out.tolist() == [1, 4, 11, 14, 21, 24]
        with pytest.raises(ParameterError):
            lane_positions(base, stride=10, lanes=4, n=32)

    def test_lwe_place_scatters_rows_into_trivial_zeros(self):
        a = np.arange(6, dtype=np.int64).reshape(2, 3)
        b = np.array([7, 9], dtype=np.int64)
        batch = LweBatch(a, b, modulus=257)
        placed = batch.place(np.array([1, 3]), size=5)
        assert placed.count == 5
        assert np.array_equal(placed.a[1], a[0])
        assert np.array_equal(placed.a[3], a[1])
        assert placed.b.tolist() == [0, 7, 0, 9, 0]
        # Gap rows are trivial zero encryptions: zero phase under any key.
        assert not placed.a[0].any() and not placed.a[2].any()
        with pytest.raises(ParameterError):
            batch.place(np.array([0, 0]), size=5)  # collision
        with pytest.raises(ParameterError):
            batch.place(np.array([0, 5]), size=5)  # out of range

    def test_lane_span_formula(self):
        # conv(1->1, k2) on padded 3x3: t_index = 9*0 + 3*1 + 1 = 4,
        # span = 4 + 9 = 13 — the pack model's conv step.
        assert lane_span(1, 1, 3, 3, 2) == 13
        # fc is the h=w=wk=1 case: span = cout*cin - 1 + cin.
        assert lane_span(2, 4, 1, 1, 1) == 11


# -- compile-time annotations -------------------------------------------------


class TestPlanLaneAnnotations:
    def test_pack_model_capacity_two(self):
        program = lower(pack_cnn(np.random.default_rng(5)), TEST_FBS)
        plan = compile_program(program, TEST_FBS)
        assert plan.batch_capacity == 2
        linear = [s for s in plan.steps if getattr(s, "lane_span", 0)]
        assert [s.lane_span for s in linear] == [13, 11]
        # Interior lane stride chains to the next layer's span; the tail
        # compacts to its own output count.
        assert [s.lane_out_stride for s in linear] == [11, 2]

    def test_micro_model_too_wide_to_batch(self):
        program = lower(serve_micro_cnn(np.random.default_rng(5)), TEST_FBS)
        plan = compile_program(program, TEST_FBS)
        assert plan.batch_capacity == 1

    def test_chunked_plans_never_batch(self):
        program = lower(pack_cnn(np.random.default_rng(5)), TEST_FBS)
        plan = compile_program(program, TEST_FBS, chunk=2)
        assert plan.batch_capacity == 1

    def test_wire_format_round_trips_lane_metadata(self):
        program = lower(pack_cnn(np.random.default_rng(5)), TEST_FBS)
        plan = compile_program(program, TEST_FBS)
        loaded = load_plan(dump_plan(plan), TEST_FBS)
        loaded.bind(program, TEST_FBS)
        assert loaded.batch_capacity == 2
        assert [getattr(s, "lane_span", None) for s in loaded.steps] == [
            getattr(s, "lane_span", None) for s in plan.steps
        ]
        assert [getattr(s, "lane_out_stride", None) for s in loaded.steps] == [
            getattr(s, "lane_out_stride", None) for s in plan.steps
        ]


# -- full-pipeline lane semantics ---------------------------------------------


def _pack_setup():
    qm = pack_cnn(np.random.default_rng(5))
    program = lower(qm, TEST_FBS)
    plan = compile_program(program, TEST_FBS)
    return qm, program, plan


def _inputs(seed: int, count: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [
        rng.integers(-2, 3, (1, 3, 3)).astype(np.int64) for _ in range(count)
    ]


@pytest.mark.slow
class TestBatchedPipeline:
    def test_full_batch_matches_plain_and_single(self):
        qm, program, plan = _pack_setup()
        xs = _inputs(101, 2)
        outs = AthenaPipeline(TEST_FBS, seed=3).run_batch(
            program, xs, plan=plan
        )
        for x, out in zip(xs, outs):
            want = qm.forward_int(x[None])[0]
            assert np.array_equal(out, want)
            single = AthenaPipeline(TEST_FBS, seed=3).run_program(
                program, x, plan=plan
            )
            assert np.array_equal(out, single)

    def test_partial_final_batch_single_lane(self):
        # A 1-image "batch" through the batched entry point is the exact
        # single-image op sequence — the shape a partial final batch takes.
        qm, program, plan = _pack_setup()
        (x,) = _inputs(103, 1)
        (out,) = AthenaPipeline(TEST_FBS, seed=4).run_batch(
            program, [x], plan=plan
        )
        direct = AthenaPipeline(TEST_FBS, seed=4).run_program(
            program, x, plan=plan
        )
        assert np.array_equal(out, direct)
        assert np.array_equal(out, qm.forward_int(x[None])[0])

    def test_lane_symmetry_first_vs_last(self):
        # The same image must compute the same bits from lane 0 and from
        # lane k-1: swap the batch order and the outputs swap with it.
        qm, program, plan = _pack_setup()
        x, y = _inputs(107, 2)
        fwd = AthenaPipeline(TEST_FBS, seed=5).run_batch(
            program, [x, y], plan=plan
        )
        rev = AthenaPipeline(TEST_FBS, seed=5).run_batch(
            program, [y, x], plan=plan
        )
        assert np.array_equal(fwd[0], rev[1])
        assert np.array_equal(fwd[1], rev[0])
        assert np.array_equal(fwd[0], qm.forward_int(x[None])[0])
        assert np.array_equal(fwd[1], qm.forward_int(y[None])[0])

    def test_cross_lane_isolation(self):
        # Perturbing lane 0's input must not move lane 1's output by a bit.
        qm, program, plan = _pack_setup()
        x, y = _inputs(109, 2)
        x2 = x.copy()
        x2[0, 0, 0] += 2
        base = AthenaPipeline(TEST_FBS, seed=6).run_batch(
            program, [x, y], plan=plan
        )
        bumped = AthenaPipeline(TEST_FBS, seed=6).run_batch(
            program, [x2, y], plan=plan
        )
        assert np.array_equal(base[1], bumped[1])
        assert np.array_equal(bumped[0], qm.forward_int(x2[None])[0])

    def test_overcapacity_batch_rejected(self):
        _, program, plan = _pack_setup()
        xs = _inputs(113, 3)
        with pytest.raises(ParameterError):
            AthenaPipeline(TEST_FBS, seed=7).run_batch(program, xs, plan=plan)
