"""Tests for the Fig. 1 polynomial-approximation study."""

import numpy as np
import pytest

from repro.baselines.approx import (
    GROUND_TRUTH_BITS,
    bit_accuracy,
    chebyshev_coeffs,
    eval_fixed_point,
    relu,
    sigmoid,
    sweep,
    taylor_coeffs,
)


class TestCoefficients:
    def test_chebyshev_interpolates_sigmoid(self):
        coeffs = chebyshev_coeffs(sigmoid, 16)
        x = np.linspace(-1, 1, 101)
        from numpy.polynomial import chebyshev as C

        assert np.abs(C.chebval(x, coeffs) - sigmoid(x)).max() < 1e-6

    def test_taylor_sigmoid_near_zero(self):
        coeffs = taylor_coeffs("sigmoid", 7)
        x = np.linspace(-0.3, 0.3, 31)
        approx = np.polynomial.polynomial.polyval(x, coeffs)
        assert np.abs(approx - sigmoid(x)).max() < 1e-6

    def test_relu_fit_reasonable(self):
        coeffs = taylor_coeffs("relu", 16)
        x = np.linspace(-1, 1, 101)
        approx = np.polynomial.polynomial.polyval(x, coeffs)
        assert np.abs(approx - relu(x)).max() < 0.1

    def test_unknown_function(self):
        with pytest.raises(KeyError):
            taylor_coeffs("tanh", 4)


class TestFixedPointModel:
    def test_high_delta_close_to_plain(self):
        coeffs = chebyshev_coeffs(sigmoid, 8)
        x = np.linspace(-1, 1, 101)
        from numpy.polynomial import chebyshev as C

        plain = C.chebval(x, coeffs)
        fp = eval_fixed_point(coeffs, x, 40, "chebyshev")
        assert np.abs(plain - fp).max() < 1e-4

    def test_low_delta_degrades(self):
        coeffs = chebyshev_coeffs(sigmoid, 8)
        x = np.linspace(-1, 1, 101)
        err25 = np.abs(eval_fixed_point(coeffs, x, 25, "chebyshev") - sigmoid(x)).max()
        err35 = np.abs(eval_fixed_point(coeffs, x, 35, "chebyshev") - sigmoid(x)).max()
        assert err25 > err35

    def test_bit_accuracy_caps_at_ground_truth(self):
        x = np.zeros(4)
        assert bit_accuracy(x, x) == GROUND_TRUTH_BITS

    def test_bit_accuracy_monotone(self):
        exact = np.zeros(4)
        assert bit_accuracy(exact + 1e-2, exact) < bit_accuracy(exact + 1e-6, exact)


class TestSweepClaims:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep(orders=(4, 16, 64), deltas=(None, 25, 30, 35))

    def _get(self, pts, fn, method, order, delta):
        for p in pts:
            if (p.function, p.method, p.order, p.delta_bits) == (fn, method, order, delta):
                return p.accuracy_bits
        raise KeyError

    def test_delta25_collapses(self, points):
        # Paper: "precision drops to around 2 bits" at Delta = 25.
        assert self._get(points, "relu", "chebyshev", 64, 25) < 4
        assert self._get(points, "sigmoid", "chebyshev", 64, 25) < 4

    def test_orders_help_in_plaintext(self, points):
        assert self._get(points, "sigmoid", "chebyshev", 64, None) > self._get(
            points, "sigmoid", "chebyshev", 4, None
        )

    def test_relu_worse_than_sigmoid(self, points):
        # "the gap ... is even larger for ReLU"
        for delta in (None, 30, 35):
            assert self._get(points, "relu", "chebyshev", 64, delta) < self._get(
                points, "sigmoid", "chebyshev", 64, delta
            )

    def test_delta_ordering(self, points):
        accs = [self._get(points, "sigmoid", "chebyshev", 16, d) for d in (25, 30, 35)]
        assert accs[0] < accs[1] <= accs[2]

    def test_gap_to_ground_truth_remains(self, points):
        # Even the best encrypted setting stays far from 40 bits.
        assert self._get(points, "relu", "chebyshev", 64, 35) < GROUND_TRUTH_BITS / 2
