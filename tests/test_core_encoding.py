"""Tests for the coefficient encoding (Eq. 1, Table 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import (
    TABLE2_SHAPES,
    ConvShape,
    athena_plan,
    cheetah_plan,
    conv_via_coefficients,
    encode_features,
    encode_kernels,
    valid_output_positions,
)
from repro.errors import EncodingError


def direct_conv(m, k, stride, pad):
    cout, cin, wk, _ = k.shape
    if pad:
        m = np.pad(m, ((0, 0), (pad, pad), (pad, pad)))
    _, h, w = m.shape
    oh = (h - wk) // stride + 1
    ow = (w - wk) // stride + 1
    out = np.zeros((cout, oh, ow), dtype=np.int64)
    for cp in range(cout):
        for a in range(oh):
            for b in range(ow):
                patch = m[:, a * stride : a * stride + wk, b * stride : b * stride + wk]
                out[cp, a, b] = (patch * k[cp]).sum()
    return out


class TestEq1Conv:
    @pytest.mark.parametrize(
        "cin,cout,hw,wk,stride,pad",
        [
            (1, 1, 4, 2, 1, 0),
            (2, 3, 6, 3, 1, 1),
            (3, 4, 5, 3, 1, 0),
            (2, 2, 8, 1, 2, 0),
            (1, 2, 6, 2, 2, 0),
        ],
    )
    def test_matches_direct_convolution(self, rng, cin, cout, hw, wk, stride, pad):
        m = rng.integers(-5, 6, (cin, hw, hw))
        k = rng.integers(-5, 6, (cout, cin, wk, wk))
        got = conv_via_coefficients(m, k, n=4096, stride=stride, pad=pad)
        assert np.array_equal(got, direct_conv(m, k, stride, pad))

    def test_fc_as_1x1(self, rng):
        # FC = conv with W = Wk = 1 on a (Cin, 1, 1) "image".
        cin, cout = 8, 4
        x = rng.integers(-10, 10, (cin, 1, 1))
        w = rng.integers(-10, 10, (cout, cin, 1, 1))
        got = conv_via_coefficients(x, w, n=256)
        expected = (w.reshape(cout, cin) @ x.reshape(cin)).reshape(cout, 1, 1)
        assert np.array_equal(got, expected)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_small_shapes(self, seed):
        rng = np.random.default_rng(seed)
        cin = int(rng.integers(1, 3))
        cout = int(rng.integers(1, 4))
        hw = int(rng.integers(3, 7))
        wk = int(rng.integers(1, min(4, hw + 1)))
        m = rng.integers(-4, 5, (cin, hw, hw))
        k = rng.integers(-4, 5, (cout, cin, wk, wk))
        got = conv_via_coefficients(m, k, n=4096)
        assert np.array_equal(got, direct_conv(m, k, 1, 0))

    def test_modulus_wrap(self, rng):
        m = rng.integers(-5, 6, (2, 4, 4))
        k = rng.integers(-5, 6, (2, 2, 3, 3))
        t = 17
        got = conv_via_coefficients(m, k, n=1024, modulus=t)
        exact = direct_conv(m, k, 1, 0)
        assert np.array_equal(got % t, exact % t)
        assert np.abs(got).max() <= t // 2

    def test_degree_overflow_raises(self):
        with pytest.raises(EncodingError):
            encode_features(np.zeros((4, 10, 10), dtype=np.int64), 256)
        with pytest.raises(EncodingError):
            encode_kernels(np.zeros((8, 8, 3, 3), dtype=np.int64), 16, 16, 1024)

    def test_valid_positions_point_at_outputs(self, rng):
        from repro.fhe.ntt import negacyclic_mul_exact

        cin, cout, hw, wk = 2, 2, 5, 2
        m = rng.integers(-3, 4, (cin, hw, hw))
        k = rng.integers(-3, 4, (cout, cin, wk, wk))
        mh = encode_features(m, 1024)
        kh = encode_kernels(k, hw, hw, 1024)
        prod = np.array(negacyclic_mul_exact(list(mh), list(kh)))
        pos = valid_output_positions(cout, cin, hw, hw, wk, 1)
        expected = direct_conv(m, k, 1, 0).reshape(-1)
        assert np.array_equal(prod[pos], expected)


class TestPackingPlans:
    def test_athena_beats_cheetah_everywhere(self):
        for shape in TABLE2_SHAPES:
            a = athena_plan(shape, 1 << 15)
            c = cheetah_plan(shape, 1 << 15)
            assert a.valid_ratio > c.valid_ratio

    def test_athena_single_result_ct_for_paper_shapes(self):
        # The §3.2.1 claim: results land in one ciphertext at N = 2^15.
        for shape in TABLE2_SHAPES:
            assert athena_plan(shape, 1 << 15).result_cts == 1

    def test_paper_athena_ratios(self):
        # 5 of 6 rows match the paper exactly (see EXPERIMENTS.md for row 5).
        expected = [0.50, 0.50, 0.25, 0.25, 0.125, 0.125]
        for shape, exp in zip(TABLE2_SHAPES, expected):
            assert athena_plan(shape, 1 << 15).valid_ratio == pytest.approx(exp)

    def test_cheetah_result_cts_scale_with_cout(self):
        shape = TABLE2_SHAPES[1]
        assert cheetah_plan(shape, 4096).result_cts == shape.cout

    def test_ratios_monotone_in_depth(self):
        # Deeper layers (smaller maps, more channels) have lower ratios.
        ratios = [athena_plan(s, 1 << 15).valid_ratio for s in TABLE2_SHAPES]
        assert ratios[0] >= ratios[2] >= ratios[4]

    def test_conv_shape_helpers(self):
        s = ConvShape(32, 3, 16, 3, 1, 1)
        assert s.h_padded == 34
        assert s.out_hw == 32
        assert s.valid_outputs == 16 * 32 * 32
