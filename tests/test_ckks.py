"""Tests for the compact CKKS baseline."""

import numpy as np
import pytest

from repro.errors import NoiseBudgetExhausted, ParameterError
from repro.fhe.ckks import (
    CKKS_TINY,
    CkksContext,
    CkksParams,
    decode,
    encode,
)


@pytest.fixture(scope="module")
def ckks():
    ctx = CkksContext(CKKS_TINY, seed=77)
    sk, pk = ctx.keygen()
    rlk = ctx.relin_key(sk)
    return ctx, sk, pk, rlk


class TestParams:
    def test_rejects_bad_degree(self):
        with pytest.raises(ParameterError):
            CkksParams("bad", n=100, scale_bits=30, num_limbs=2)

    def test_rejects_wide_limbs(self):
        with pytest.raises(ParameterError):
            CkksParams("bad", n=64, scale_bits=40, num_limbs=2)

    def test_moduli_are_ntt_friendly(self):
        for m in CKKS_TINY.moduli:
            assert m % (2 * CKKS_TINY.n) == 1


class TestEncoding:
    def test_roundtrip_real(self, rng):
        z = rng.uniform(-2, 2, CKKS_TINY.slots)
        pt = encode(z, CKKS_TINY, CKKS_TINY.scale, CKKS_TINY.num_limbs - 1)
        back = decode(pt, CKKS_TINY, CKKS_TINY.scale)[: CKKS_TINY.slots]
        assert np.abs(back.real - z).max() < 1e-5

    def test_roundtrip_complex(self, rng):
        z = rng.uniform(-1, 1, CKKS_TINY.slots) + 1j * rng.uniform(-1, 1, CKKS_TINY.slots)
        pt = encode(z, CKKS_TINY, CKKS_TINY.scale, CKKS_TINY.num_limbs - 1)
        back = decode(pt, CKKS_TINY, CKKS_TINY.scale)[: CKKS_TINY.slots]
        assert np.abs(back - z).max() < 1e-5

    def test_short_vector_padded(self):
        pt = encode(np.array([1.0]), CKKS_TINY, CKKS_TINY.scale, 0)
        back = decode(pt, CKKS_TINY, CKKS_TINY.scale)
        assert abs(back[0].real - 1.0) < 1e-5

    def test_too_many_values_raises(self):
        with pytest.raises(ParameterError):
            encode(np.zeros(CKKS_TINY.slots + 1), CKKS_TINY, CKKS_TINY.scale, 0)

    def test_precision_scales_with_delta(self, rng):
        # Core Fig. 1 mechanism: larger Delta => more precise encoding.
        z = rng.uniform(-1, 1, CKKS_TINY.slots)
        errs = []
        for bits in (10, 20, 28):
            pt = encode(z, CKKS_TINY, float(1 << bits), CKKS_TINY.num_limbs - 1)
            back = decode(pt, CKKS_TINY, float(1 << bits))[: CKKS_TINY.slots]
            errs.append(np.abs(back.real - z).max())
        assert errs[0] > errs[1] > errs[2]


class TestHomomorphic:
    def test_encrypt_decrypt(self, ckks, rng):
        ctx, sk, pk, _ = ckks
        z = rng.uniform(-1, 1, ctx.params.slots)
        assert np.abs(ctx.decrypt(ctx.encrypt(z, pk), sk).real - z).max() < 1e-4

    def test_add_sub(self, ckks, rng):
        ctx, sk, pk, _ = ckks
        z1 = rng.uniform(-1, 1, ctx.params.slots)
        z2 = rng.uniform(-1, 1, ctx.params.slots)
        c1, c2 = ctx.encrypt(z1, pk), ctx.encrypt(z2, pk)
        assert np.abs(ctx.decrypt(ctx.add(c1, c2), sk).real - (z1 + z2)).max() < 1e-4
        assert np.abs(ctx.decrypt(ctx.sub(c1, c2), sk).real - (z1 - z2)).max() < 1e-4

    def test_add_plain(self, ckks, rng):
        ctx, sk, pk, _ = ckks
        z1 = rng.uniform(-1, 1, ctx.params.slots)
        z2 = rng.uniform(-1, 1, ctx.params.slots)
        out = ctx.add_plain(ctx.encrypt(z1, pk), z2)
        assert np.abs(ctx.decrypt(out, sk).real - (z1 + z2)).max() < 1e-4

    def test_mult_rescale(self, ckks, rng):
        ctx, sk, pk, rlk = ckks
        z1 = rng.uniform(-1, 1, ctx.params.slots)
        z2 = rng.uniform(-1, 1, ctx.params.slots)
        prod = ctx.rescale(ctx.mult(ctx.encrypt(z1, pk), ctx.encrypt(z2, pk), rlk))
        assert np.abs(ctx.decrypt(prod, sk).real - z1 * z2).max() < 1e-4

    def test_mult_plain(self, ckks, rng):
        ctx, sk, pk, _ = ckks
        z1 = rng.uniform(-1, 1, ctx.params.slots)
        z2 = rng.uniform(-1, 1, ctx.params.slots)
        prod = ctx.rescale(ctx.mult_plain(ctx.encrypt(z1, pk), z2))
        assert np.abs(ctx.decrypt(prod, sk).real - z1 * z2).max() < 1e-4

    def test_depth_chain(self, ckks, rng):
        ctx, sk, pk, rlk = ckks
        z = rng.uniform(-1, 1, ctx.params.slots)
        x = ctx.encrypt(z, pk)
        for _ in range(2):
            x = ctx.rescale(ctx.square(x, rlk))
        assert np.abs(ctx.decrypt(x, sk).real - z**4).max() < 1e-3

    def test_chain_exhaustion_raises(self, ckks, rng):
        ctx, sk, pk, rlk = ckks
        x = ctx.encrypt(rng.uniform(-1, 1, ctx.params.slots), pk)
        for _ in range(ctx.params.num_limbs - 1):
            x = ctx.rescale(ctx.mult_plain(x, np.ones(ctx.params.slots) * 0.5))
        with pytest.raises(NoiseBudgetExhausted):
            ctx.rescale(ctx.mult_plain(x, np.ones(ctx.params.slots)))

    def test_level_mismatch_raises(self, ckks, rng):
        ctx, sk, pk, rlk = ckks
        z = rng.uniform(-1, 1, ctx.params.slots)
        a = ctx.encrypt(z, pk)
        b = ctx.rescale(ctx.mult_plain(ctx.encrypt(z, pk), z))
        with pytest.raises(ParameterError):
            ctx.add(a, b)
