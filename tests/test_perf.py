"""PerfRecorder accounting, ParallelMap executors, bench harness, CLI flags,
deprecation shims, and the chunked parallel five-step path."""

import json
import time
import warnings

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.errors import ParameterError
from repro.perf import ExecConfig, ParallelMap, PerfRecorder
from repro.perf.bench import BENCH_SCHEMA, bench_resnet20_block


class TestPerfRecorder:
    def test_phase_accounting_sums_to_total(self):
        perf = PerfRecorder()
        with perf.run():
            with perf.phase("pmult"):
                time.sleep(0.01)
            with perf.phase("fbs"):
                time.sleep(0.02)
            with perf.phase("pmult"):
                time.sleep(0.01)
        # Disjoint phases must sum to at most the run wall time, and the
        # sleeps bound the phase sum from below.
        assert perf.total_phase_s >= 0.04
        assert perf.total_phase_s <= perf.wall_s
        assert set(perf.phase_s) == {"pmult", "fbs"}
        assert perf.phase_s["pmult"] >= 0.02

    def test_counts_accumulate(self):
        perf = PerfRecorder()
        perf.count("pmult")
        perf.count("pmult", 4)
        perf.count("extract", 35)
        assert perf.ops == {"pmult": 5, "extract": 35}

    def test_wall_falls_back_to_phase_sum(self):
        perf = PerfRecorder()
        perf.add_time("fbs", 1.5)
        assert perf.wall_s == pytest.approx(1.5)

    def test_summary_schema(self):
        perf = PerfRecorder()
        with perf.run():
            with perf.phase("s2c"):
                pass
            perf.count("s2c")
        summary = perf.summary()
        assert set(summary) == {"wall_s", "phase_s", "ops"}
        assert summary["ops"] == {"s2c": 1}

    def test_merge_and_reset(self):
        a, b = PerfRecorder(), PerfRecorder()
        a.add_time("fbs", 1.0)
        b.add_time("fbs", 2.0)
        b.count("pack", 3)
        a.merge(b)
        assert a.phase_s["fbs"] == pytest.approx(3.0)
        assert a.ops == {"pack": 3}
        a.reset()
        assert a.phase_s == {} and a.ops == {} and a.wall_s == 0.0

    def test_merge_with_self_is_a_noop(self):
        # Regression: self-merge must not deadlock on the non-reentrant
        # lock, and must not double the counters.
        a = PerfRecorder()
        a.count("pack", 2)
        a.merge(a)
        assert a.ops == {"pack": 2}

    def test_pickle_roundtrip_recreates_lock(self):
        # Recorders cross process-executor boundaries; the lock is dropped
        # in transit and must come back usable.
        import pickle

        a = PerfRecorder()
        a.add_time("fbs", 1.0)
        a.count("pack", 3)
        b = pickle.loads(pickle.dumps(a))
        assert b.phase_s == {"fbs": 1.0} and b.ops == {"pack": 3}
        assert b.wall_s == pytest.approx(1.0)
        b.count("pack")  # fresh lock, still functional
        assert b.ops["pack"] == 4


class TestParallelMap:
    def test_exec_config_from_env(self):
        cfg = ExecConfig.from_env({"REPRO_EXECUTOR": "thread", "REPRO_WORKERS": "3"})
        assert cfg.mode == "thread" and cfg.workers == 3
        assert ExecConfig.from_env({}).mode == "serial"

    def test_exec_config_rejects_bad_mode(self):
        with pytest.raises(ParameterError):
            ExecConfig(mode="gpu")
        with pytest.raises(ParameterError):
            ExecConfig(workers=0)

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_map_preserves_order(self, mode):
        pmap = ParallelMap(ExecConfig(mode, workers=4))
        got = pmap.map(lambda x: x * x, range(20))
        assert got == [x * x for x in range(20)]

    def test_starmap(self):
        pmap = ParallelMap(ExecConfig("thread", workers=2))
        assert pmap.starmap(lambda a, b: a - b, [(5, 2), (9, 4)]) == [3, 5]

    def test_process_mode(self):
        pmap = ParallelMap(ExecConfig("process", workers=2))
        assert pmap.map(abs, [-1, -2, 3]) == [1, 2, 3]


class TestBenchHarness:
    def test_resnet20_block_record_schema_and_speedup(self):
        record = bench_resnet20_block(reps=2)
        assert all(key in record for key in BENCH_SCHEMA)
        assert record["bench"] == "resnet20_block"
        assert record["wall_s"] > 0
        assert record["ops"]["mul"] == 16
        # `repro bench` targets >= 2x here (measured ~2.4-2.9x); the test
        # bar is lower only to absorb loaded-CI timing noise.
        assert record["speedup_vs_serial"] >= 1.5

    @pytest.mark.slow
    def test_cli_bench_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_pipeline.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        records = json.loads(out.read_text())
        assert [r["bench"] for r in records] == ["mnist_cnn", "resnet20_block"]
        for record in records:
            assert all(key in record for key in BENCH_SCHEMA)
            assert record["speedup_vs_serial"] is not None
        assert "speedup" in capsys.readouterr().out


class TestCliJsonFlags:
    def test_experiment_json(self, capsys):
        assert main(["experiment", "table8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["experiment"] == "table8"
        assert "Table 8" in payload[0]["rendered"]

    def test_experiment_out_file(self, tmp_path):
        out = tmp_path / "t8.txt"
        assert main(["experiment", "table8", "--out", str(out)]) == 0
        assert "Table 8" in out.read_text()

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_repro_error_maps_to_exit_1(self, capsys):
        assert main(["params", "no-such-preset"]) == 1
        assert "error" in capsys.readouterr().err


class TestDeprecations:
    def test_legacy_run_layers_warns_and_matches(self):
        from repro.core.legacy import run_layers
        from repro.core.program import PlainIntExecutor, lower, run_program
        from repro.quant.quantize import QLinear, QuantConfig, QuantizedModel

        rng = np.random.default_rng(0)
        cfg = QuantConfig(4, 4, t=257)
        fc = QLinear(
            weight=rng.integers(-2, 3, (3, 8)).astype(np.int64),
            bias=np.zeros(3, dtype=np.int64),
            in_scale=1.0, w_scale=1.0, out_scale=2.0, activation="identity",
            in_features=8, out_features=3,
        )
        x_q = rng.integers(-3, 4, (1, 8)).astype(np.int64)
        with pytest.warns(DeprecationWarning, match="AthenaProgram"):
            got = run_layers([fc], x_q, cfg)
        qm = QuantizedModel([fc], cfg, 1.0, (8,))
        want = run_program(lower(qm), PlainIntExecutor(cfg), x_q)
        assert np.array_equal(got, want)

    def test_legacy_mac_layers_warns(self):
        from repro.core.legacy import mac_layers
        from repro.core.program import lower
        from repro.quant.quantize import QLinear, QuantConfig, QuantizedModel

        rng = np.random.default_rng(1)
        fc = QLinear(
            weight=rng.integers(-2, 3, (3, 8)).astype(np.int64),
            bias=np.zeros(3, dtype=np.int64),
            in_scale=1.0, w_scale=1.0, out_scale=2.0, activation="identity",
            in_features=8, out_features=3,
        )
        qm = QuantizedModel([fc], QuantConfig(4, 4, t=257), 1.0, (8,))
        with pytest.warns(DeprecationWarning):
            got = mac_layers(qm)
        assert got == lower(qm).mac_sources()

    def test_nn_im2col_alias_warns(self):
        from repro.quant import nn

        with pytest.warns(DeprecationWarning, match="im2col"):
            alias = nn._im2col
        assert alias is nn.im2col

    def test_curated_top_level_api(self):
        assert repro.lower is not None
        assert repro.PerfRecorder is PerfRecorder
        for name in ("AthenaPipeline", "FbsLut", "run_program", "lower",
                     "PerfRecorder"):
            assert name in repro.__all__
        with pytest.raises(AttributeError):
            repro.no_such_symbol


@pytest.mark.slow
class TestChunkedCiphertextPath:
    """Chunked five-step rounds: tile merge is exact and executor-agnostic."""

    def _setup(self):
        from repro.core.program import lower
        from repro.fhe.params import TEST_LOOP
        from repro.perf.bench import mnist_cnn_micro

        rng = np.random.default_rng(5)
        qm = mnist_cnn_micro(rng)
        x_q = rng.integers(-3, 4, (1, 6, 6)).astype(np.int64)
        return lower(qm, TEST_LOOP), qm, x_q

    def test_chunked_matches_plaintext_and_is_thread_safe(self):
        from repro.core.framework import AthenaPipeline, LoopCost
        from repro.fhe.params import TEST_LOOP

        program, qm, x_q = self._setup()
        want = qm.forward_int(x_q[None])[0]

        cost = LoopCost()
        serial_pipe = AthenaPipeline(TEST_LOOP, seed=41)
        got_serial = serial_pipe.run_program(program, x_q, cost, chunk=16)
        assert np.abs(got_serial - want).max() <= 2
        # The conv round (32 outputs) splits into two tiles; counts cover
        # the extra FBS round but the extraction total is unchanged.
        assert cost.extractions == 32 + 3

        thread_pipe = AthenaPipeline(TEST_LOOP, seed=41)
        got_thread = thread_pipe.run_program(
            program, x_q, chunk=16,
            pmap=ParallelMap(ExecConfig("thread", workers=4)),
        )
        # Evaluation is deterministic given the keys: thread scheduling must
        # not change a single bit of the result.
        assert np.array_equal(got_serial, got_thread)

    def test_chunk_validation(self):
        from repro.core.framework import AthenaPipeline, CiphertextExecutor
        from repro.fhe.params import TEST_LOOP

        program, _, _ = self._setup()
        pipe = AthenaPipeline(TEST_LOOP, seed=41)
        with pytest.raises(ParameterError):
            CiphertextExecutor(pipe, program, chunk=0)
