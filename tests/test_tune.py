"""Autotuner contract tests (:mod:`repro.core.tune`).

Three guarantees the bench gate and the plan cache rely on:

* the tuned plan's predicted cost is never worse than the default plan's
  (default-first enumeration, strict-improvement comparison);
* tuning is a pure function of the lowered program + parameter set, so
  repeated tunes produce byte-identical configs (hypothesis pins this
  across model seeds and chunk settings);
* a non-empty tuning config changes ``program_fingerprint`` (the plan
  cache key) while an empty one keeps the untuned fingerprint.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lowering import DEFAULT_ENCODING, StepEncodingChoice, TuningConfig
from repro.core.plan import compile_program, program_fingerprint
from repro.core.program import lower
from repro.core.tune import (
    step_candidates,
    strategy_costs,
    tune_model,
    tune_program,
)
from repro.fhe.params import ATHENA, TEST_LOOP
from repro.perf.bench import mnist_cnn_micro, resnet_block_micro


@pytest.fixture(scope="module")
def micro_program():
    return lower(mnist_cnn_micro(np.random.default_rng(5)), TEST_LOOP)


class TestCandidates:
    def test_default_candidate_first(self, micro_program):
        from repro.core.tune import _tunable_steps

        for step in _tunable_steps(micro_program.steps):
            cands = step_candidates(step, TEST_LOOP, chunk=16)
            default = getattr(step, "encoding", None) or DEFAULT_ENCODING
            assert cands[0] == default
            assert len(cands) == len(set(cands))  # no duplicates

    def test_chunk_opt_out_only_for_split_linear_steps(self, micro_program):
        from repro.core.tune import _tunable_steps

        for step in _tunable_steps(micro_program.steps):
            cands = step_candidates(step, TEST_LOOP, chunk=16)
            opted = [c for c in cands if c.chunk is not None]
            if step.kind != "linear" or step.out_values <= 16:
                assert not opted, (step.name, cands)
            else:
                # The opt-out candidate asks for the whole round in one tile.
                assert any(c.chunk == step.out_values for c in opted)

    def test_strategy_candidates_conv_only(self, micro_program):
        from repro.core.tune import _tunable_steps

        for step in _tunable_steps(micro_program.steps):
            cands = step_candidates(step, TEST_LOOP)
            cheetah = [c for c in cands if c.strategy == "cheetah"]
            if step.kind == "linear" and step.op == "conv":
                assert cheetah
            else:
                assert not cheetah, (step.name, cands)


class TestTuneProgram:
    def test_tuned_never_worse_with_chunk(self, micro_program):
        result = tune_program(micro_program, TEST_LOOP, chunk=16)
        assert result.tuned_cost <= result.default_cost
        for s in result.steps:
            assert s.chosen.cost <= s.default.cost
            if s.improved:
                assert s.saving > 0

    def test_micro_model_opts_conv_out_of_global_chunk(self, micro_program):
        # The headline bench win: the conv round's 32 outputs split into
        # two tiles under chunk=16, doubling FBS/packing/S2C; the tuner
        # opts it back into a single tile.
        result = tune_program(micro_program, TEST_LOOP, chunk=16)
        tuning = result.tuning
        assert tuning, result.report()
        conv = tuning.get("qconv0")
        assert conv is not None and conv.chunk == 32

    def test_untunable_program_tunes_to_empty_config(self):
        # Without a global chunk (and with full-t LUTs) nothing improves:
        # the config is empty and falsy, preserving the untuned fingerprint.
        qm = mnist_cnn_micro(np.random.default_rng(5))
        program = lower(qm, TEST_LOOP)
        result = tune_program(program, TEST_LOOP, chunk=None)
        improved = [s for s in result.steps if s.improved]
        assert bool(result.tuning) == bool(improved)
        if not improved:
            assert program_fingerprint(program, result.tuning) == \
                program_fingerprint(program)

    def test_residual_branches_are_tuned(self):
        qm = resnet_block_micro(np.random.default_rng(5))
        result = tune_program(lower(qm, TEST_LOOP), TEST_LOOP, chunk=16)
        names = [s.name for s in result.steps]
        assert any(".body." in n for n in names), names
        assert any(".skip." in n for n in names), names
        assert len(names) == len(set(names))  # flat config addresses all

    def test_report_shape(self, micro_program):
        report = tune_program(micro_program, TEST_LOOP, chunk=16).report()
        assert report["predicted_tuned_mod_muls"] <= \
            report["predicted_default_mod_muls"]
        assert report["predicted_saving_mod_muls"] == pytest.approx(
            report["predicted_default_mod_muls"]
            - report["predicted_tuned_mod_muls"])
        for row in report["steps"]:
            assert set(row) >= {"name", "kind", "default", "chosen",
                                "default_mod_muls", "chosen_mod_muls",
                                "candidates", "improved"}


class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        chunk=st.sampled_from([None, 8, 16, 32]),
    )
    def test_tune_is_pure(self, seed, chunk):
        """Same model + params + chunk -> byte-identical tuning, every time."""
        first = tune_model(
            mnist_cnn_micro(np.random.default_rng(seed)), TEST_LOOP, chunk=chunk)
        second = tune_model(
            mnist_cnn_micro(np.random.default_rng(seed)), TEST_LOOP, chunk=chunk)
        assert first.tuning.tag() == second.tuning.tag()
        assert first.report() == second.report()

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        chunk=st.sampled_from([None, 8, 16, 32]),
    )
    def test_tuned_never_worse_property(self, seed, chunk):
        result = tune_model(
            mnist_cnn_micro(np.random.default_rng(seed)), TEST_LOOP, chunk=chunk)
        assert result.tuned_cost <= result.default_cost


class TestFingerprint:
    def test_tuning_changes_fingerprint(self, micro_program):
        tuning = TuningConfig((("qconv0", StepEncodingChoice(chunk=32)),))
        assert program_fingerprint(micro_program, tuning) != \
            program_fingerprint(micro_program)

    def test_empty_tuning_keeps_fingerprint(self, micro_program):
        assert program_fingerprint(micro_program, TuningConfig()) == \
            program_fingerprint(micro_program)

    def test_distinct_tunings_distinct_fingerprints(self, micro_program):
        a = TuningConfig((("qconv0", StepEncodingChoice(chunk=32)),))
        b = TuningConfig((("qconv0", StepEncodingChoice(bsgs=4)),))
        assert program_fingerprint(micro_program, a) != \
            program_fingerprint(micro_program, b)

    def test_compiled_plan_hash_folds_tuning(self, micro_program):
        tuning = tune_program(micro_program, TEST_LOOP, chunk=16).tuning
        assert tuning
        default = compile_program(micro_program, TEST_LOOP, chunk=16)
        tuned = compile_program(micro_program, TEST_LOOP, chunk=16,
                                tuning=tuning)
        assert tuned.model_hash != default.model_hash
        assert tuned.model_hash == program_fingerprint(micro_program, tuning)


class TestCompileHonorsTuning:
    def test_chunk_opt_out_collapses_tiles(self, micro_program):
        tuning = TuningConfig((("qconv0", StepEncodingChoice(chunk=32)),))
        default = compile_program(micro_program, TEST_LOOP, chunk=16)
        tuned = compile_program(micro_program, TEST_LOOP, chunk=16,
                                tuning=tuning)
        conv_default = default.steps[0]
        conv_tuned = tuned.steps[0]
        assert conv_default.tiles is not None and len(conv_default.tiles) == 2
        assert conv_tuned.tiles is None  # single-tile layout restored

    def test_bsgs_override_reaches_fbs_plan(self, micro_program):
        tuning = TuningConfig((("qconv0", StepEncodingChoice(bsgs=4)),))
        plan = compile_program(micro_program, TEST_LOOP, tuning=tuning)
        assert plan.steps[0].fbs.bs == 4


class TestZooSweep:
    """Every zoo model (resnet56 and the grouped-conv mobile_cnn included)
    lowers through the registry and tunes never-worse at paper params."""

    @pytest.mark.parametrize(
        "name", ["mnist_cnn", "lenet", "resnet20", "resnet56", "mobile_cnn"])
    def test_lower_and_tune(self, name):
        from repro.data import synthetic_cifar, synthetic_digits
        from repro.quant.models import build, input_shape
        from repro.quant.quantize import QuantConfig, quantize_model

        rng = np.random.default_rng(7)
        shape = input_shape(name)
        x = (synthetic_digits(64, rng)[0] if shape == (1, 28, 28)
             else synthetic_cifar(64, rng)[0])
        width = 0.5 if name == "mobile_cnn" else 0.25
        model = build(name, rng=np.random.default_rng(11), width=width)
        qm = quantize_model(model, x[:32], QuantConfig(7, 7), name=name)
        program = lower(qm, ATHENA)
        result = tune_program(program, ATHENA, chunk=1024)
        assert result.tuned_cost <= result.default_cost
        again = tune_program(lower(qm, ATHENA), ATHENA, chunk=1024)
        assert result.tuning.tag() == again.tuning.tag()
        if name.startswith("resnet"):
            # The deep residual stacks have rounds the global chunk splits;
            # the tuner must find real wins there.
            assert result.tuning


class TestStrategyCosts:
    def test_athena_beats_cheetah_on_paper_shape(self):
        from repro.core.encoding import TABLE2_SHAPES

        row = strategy_costs(TABLE2_SHAPES[0], ATHENA)
        assert row["pick"] == "athena"
        assert row["cheetah"] > row["athena"]
