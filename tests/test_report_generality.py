"""Tests for the schedule report and the framework-generality extension
(a non-benchmark model run through the entire pipeline)."""

import numpy as np
import pytest

from repro.accel.baselines import calibrated_athena
from repro.accel.report import bound_census, phase_summary, render_schedule, utilization
from repro.accel.scheduler import schedule
from repro.core.inference import SimulatedAthenaEngine
from repro.core.trace import trace_model
from repro.data import synthetic_cifar
from repro.fhe.params import ATHENA
from repro.quant.models import build, vgg_lite
from repro.quant.nn import Sgd, train_epoch
from repro.quant.quantize import QuantConfig, quantize_model


@pytest.fixture(scope="module")
def vgg_setup():
    rng = np.random.default_rng(4)
    x, y = synthetic_cifar(500, rng)
    model = vgg_lite(rng=np.random.default_rng(5), width=0.5)
    opt = Sgd(lr=0.05)
    for _ in range(2):
        train_epoch(model, x, y, opt, batch_size=32, rng=rng)
    qm = quantize_model(model, x[:64], QuantConfig(7, 7), "vgg_lite")
    qm.forward_float(x[:64])
    return qm, x, y


class TestScheduleReport:
    @pytest.fixture(scope="class")
    def result(self, vgg_setup):
        qm, *_ = vgg_setup
        return schedule(trace_model(qm, ATHENA), calibrated_athena())

    def test_phase_summary_shares_sum_to_one(self, result):
        shares = [s for _, _, s in phase_summary(result)]
        assert sum(shares) == pytest.approx(1.0)

    def test_bound_census_sums_to_one(self, result):
        assert sum(bound_census(result).values()) == pytest.approx(1.0)

    def test_utilization_bounded(self, result):
        util = utilization(result)
        assert util
        assert all(0 <= v <= 1 for v in util.values())

    def test_render_contains_bars(self, result):
        text = render_schedule(result)
        assert "#" in text and "bound by:" in text
        assert "fbs" in text


class TestGeneralityVggLite:
    def test_builder_registered(self):
        model = build("vgg_lite", rng=np.random.default_rng(0), width=0.25)
        out = model.forward(np.random.default_rng(1).normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 10)

    def test_quantizes_and_fits_t(self, vgg_setup):
        qm, x, _ = vgg_setup
        assert qm.check_t()

    def test_cipher_gap_small(self, vgg_setup):
        # The §3.4 claim: a new model needs only its mapping + LUTs.
        qm, x, y = vgg_setup
        engine = SimulatedAthenaEngine(qm, ATHENA, seed=9)
        plain = qm.accuracy(x[:200], y[:200])
        cipher = engine.accuracy(x[:200], y[:200])
        assert abs(plain - cipher) < 0.04

    def test_schedulable_on_athena(self, vgg_setup):
        qm, *_ = vgg_setup
        res = schedule(trace_model(qm, ATHENA), calibrated_athena())
        assert 1.0 < res.total_ms < 200.0
