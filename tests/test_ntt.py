"""Unit tests for the NTT layer: transforms, exact multiplier, cyclic DFT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.fhe import ntt
from repro.utils.modmath import find_ntt_primes, inv_mod, primitive_root

P64 = find_ntt_primes(1, 30, 128)[0]  # supports N = 64


def naive_negacyclic(a, b, p):
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            if k < n:
                out[k] = (out[k] + int(a[i]) * int(b[j])) % p
            else:
                out[k - n] = (out[k - n] - int(a[i]) * int(b[j])) % p
    return np.array(out, dtype=np.int64)


class TestForwardInverse:
    def test_roundtrip(self, rng):
        a = rng.integers(0, P64, 64)
        back = ntt.ntt_inverse(ntt.ntt_forward(a.copy(), P64), P64)
        assert np.array_equal(back, a)

    def test_linear(self, rng):
        a = rng.integers(0, P64, 64)
        b = rng.integers(0, P64, 64)
        fa = ntt.ntt_forward(a.copy(), P64)
        fb = ntt.ntt_forward(b.copy(), P64)
        fsum = ntt.ntt_forward((a + b) % P64, P64)
        assert np.array_equal(fsum, (fa + fb) % P64)

    def test_batched_rows(self, rng):
        batch = rng.integers(0, P64, (5, 64))
        fwd = ntt.ntt_forward(batch.copy(), P64)
        for i in range(5):
            assert np.array_equal(fwd[i], ntt.ntt_forward(batch[i].copy(), P64))

    def test_rejects_bad_size(self):
        with pytest.raises(ParameterError):
            ntt.ntt_forward(np.zeros(48, dtype=np.int64), P64)


class TestMultiplication:
    def test_matches_naive(self, rng):
        a = rng.integers(0, P64, 64)
        b = rng.integers(0, P64, 64)
        assert np.array_equal(ntt.ntt_mul(a, b, P64), naive_negacyclic(a, b, P64))

    def test_x_times_xn_minus_1_wraps_negative(self):
        # X * X^(N-1) = X^N = -1 in the negacyclic ring.
        n = 64
        a = np.zeros(n, dtype=np.int64)
        b = np.zeros(n, dtype=np.int64)
        a[1] = 1
        b[n - 1] = 1
        out = ntt.ntt_mul(a, b, P64)
        expected = np.zeros(n, dtype=np.int64)
        expected[0] = P64 - 1
        assert np.array_equal(out, expected)

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30)
    def test_scalar_mul_consistency(self, c):
        rng = np.random.default_rng(c)
        a = rng.integers(0, P64, 64)
        b = np.zeros(64, dtype=np.int64)
        b[0] = c % P64
        assert np.array_equal(ntt.ntt_mul(a, b, P64), a * (c % P64) % P64)


class TestExactMultiplier:
    def test_matches_ntt_small_coeffs(self, rng):
        a = rng.integers(-1000, 1000, 64)
        b = rng.integers(-1000, 1000, 64)
        exact = np.mod(ntt.negacyclic_mul_exact(list(a), list(b)), P64)
        assert np.array_equal(exact.astype(np.int64), ntt.ntt_mul(a, b, P64))

    def test_big_coefficients(self):
        # Coefficients far beyond int64.
        a = [2**100 + i for i in range(8)]
        b = [-(2**90) + 7 * i for i in range(8)]
        got = ntt.negacyclic_mul_exact(a, b)
        exp = [0] * 8
        for i in range(8):
            for j in range(8):
                k = i + j
                if k < 8:
                    exp[k] += a[i] * b[j]
                else:
                    exp[k - 8] -= a[i] * b[j]
        assert got == exp

    def test_zero_operand(self):
        a = [0] * 16
        b = list(range(16))
        assert ntt.negacyclic_mul_exact(a, b) == [0] * 16

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            ntt.negacyclic_mul_exact([1, 2], [1, 2, 3])

    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), min_size=16, max_size=16),
           st.lists(st.integers(min_value=-(2**40), max_value=2**40), min_size=16, max_size=16))
    @settings(max_examples=30)
    def test_property_vs_schoolbook(self, a, b):
        got = ntt.negacyclic_mul_exact(a, b)
        exp = [0] * 16
        for i in range(16):
            for j in range(16):
                k = i + j
                if k < 16:
                    exp[k] += a[i] * b[j]
                else:
                    exp[k - 16] -= a[i] * b[j]
        assert got == exp


class TestCyclicNtt:
    @pytest.mark.parametrize("t", [17, 257])
    def test_matches_direct_dft(self, t):
        g = primitive_root(t)
        root = inv_mod(g, t)
        n = t - 1
        rng = np.random.default_rng(t)
        x = rng.integers(0, t, n)
        direct = np.array(
            [sum(int(x[m]) * pow(root, k * m, t) for m in range(n)) % t for k in range(n)]
        )
        assert np.array_equal(ntt.cyclic_ntt(x, t, root), direct)

    def test_rejects_non_pow2(self):
        with pytest.raises(ParameterError):
            ntt.cyclic_ntt(np.zeros(6, dtype=np.int64), 17, 2)

    def test_rejects_wrong_order_root(self):
        with pytest.raises(ParameterError):
            ntt.cyclic_ntt(np.zeros(16, dtype=np.int64), 17, 16)  # 16 has order 2
