"""Property-based tests: algebraic laws of the homomorphic operations.

These use hypothesis to check ring/vector-space laws of BFV over random
messages at tiny parameters — the invariants every downstream layer
(packing, FBS, the framework) silently relies on.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fhe.bfv import BfvContext, Plaintext
from repro.fhe.ntt import negacyclic_mul_exact
from repro.fhe.params import TEST_TINY

CTX = BfvContext(TEST_TINY, seed=7331)
SK, PK = CTX.keygen()
RLK = CTX.relin_key(SK)
T = TEST_TINY.t
N = TEST_TINY.n

messages = st.integers(min_value=0, max_value=2**32).map(
    lambda seed: np.random.default_rng(seed).integers(0, T, N)
)
scalars = st.integers(min_value=-T + 1, max_value=T - 1)

_slow = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def enc(m):
    return CTX.encrypt(Plaintext.from_coeffs(m, TEST_TINY), PK)


def dec(ct):
    return CTX.decrypt(ct, SK).coeffs


class TestAdditiveLaws:
    @given(messages, messages)
    @_slow
    def test_add_homomorphic(self, m1, m2):
        assert np.array_equal(dec(CTX.add(enc(m1), enc(m2))), (m1 + m2) % T)

    @given(messages, messages)
    @_slow
    def test_add_commutes(self, m1, m2):
        a, b = enc(m1), enc(m2)
        assert np.array_equal(dec(CTX.add(a, b)), dec(CTX.add(b, a)))

    @given(messages)
    @_slow
    def test_sub_self_is_zero(self, m):
        ct = enc(m)
        assert np.array_equal(dec(CTX.sub(ct, ct)), np.zeros(N, dtype=np.int64))

    @given(messages, scalars, scalars)
    @_slow
    def test_smult_distributes(self, m, a, b):
        ct = enc(m)
        left = CTX.smult(ct, a + b)
        right = CTX.add(CTX.smult(ct, a), CTX.smult(ct, b))
        assert np.array_equal(dec(left), dec(right))


class TestMultiplicativeLaws:
    @given(messages, messages)
    @_slow
    def test_cmult_homomorphic(self, m1, m2):
        got = dec(CTX.cmult(enc(m1), enc(m2), RLK))
        expected = np.mod(negacyclic_mul_exact(list(m1), list(m2)), T)
        assert np.array_equal(got, expected)

    @given(messages)
    @_slow
    def test_mult_by_one_is_identity(self, m):
        one = enc(np.concatenate([[1], np.zeros(N - 1, dtype=np.int64)]))
        assert np.array_equal(dec(CTX.cmult(enc(m), one, RLK)), m % T)

    @given(messages, scalars)
    @_slow
    def test_smult_matches_cmult_by_constant(self, m, s):
        const = np.zeros(N, dtype=np.int64)
        const[0] = s % T
        via_cmult = dec(CTX.cmult(enc(m), enc(const), RLK))
        via_smult = dec(CTX.smult(enc(m), s))
        assert np.array_equal(via_cmult, via_smult)


class TestSlotLaws:
    @given(messages)
    @_slow
    def test_slot_coeff_duality(self, m):
        # decode(encode(v)) == v for both views of the same data
        pt = Plaintext.from_slots(m, TEST_TINY)
        assert np.array_equal(pt.to_slots(), m % T)

    @given(messages, messages)
    @_slow
    def test_slotwise_product(self, v1, v2):
        out = CTX.cmult(
            CTX.encrypt(Plaintext.from_slots(v1, TEST_TINY), PK),
            CTX.encrypt(Plaintext.from_slots(v2, TEST_TINY), PK),
            RLK,
        )
        assert np.array_equal(CTX.decrypt(out, SK).to_slots(), v1 * v2 % T)


class TestNoiseMonotonicity:
    @given(messages)
    @_slow
    def test_ops_never_reduce_estimated_noise(self, m):
        ct = enc(m)
        assert CTX.add(ct, ct).noise_bits >= ct.noise_bits
        assert CTX.smult(ct, 3).noise_bits >= ct.noise_bits
        assert CTX.pmult(ct, Plaintext.from_coeffs(m, TEST_TINY)).noise_bits >= ct.noise_bits
