"""Tests for the eval layer: renderers, zoo, drivers, and the ablations."""

import numpy as np
import pytest

from repro.accel.ablation import run_ablations
from repro.core.inference import SimulatedAthenaEngine
from repro.eval.render import render_table
from repro.eval.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table8,
    render_table9,
    table1,
)
from repro.eval.zoo import RECIPES, get_benchmark
from repro.fhe.params import ATHENA


class TestRender:
    def test_basic_table(self):
        out = render_table(["a", "b"], [(1, 2.5), ("x", 0.001)], "T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "|" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        out = render_table(["v"], [(1234.5678,), (0.12345,), (0,)])
        assert "1235" in out and "0.1235" in out

    def test_column_alignment(self):
        out = render_table(["col", "other"], [("xx", "y"), ("longervalue", "z")])
        lines = out.splitlines()
        pipes = {line.index("|") for line in lines if "|" in line}
        seps = {line.index("+") for line in lines if "+" in line}
        assert len(pipes) == 1
        assert seps == pipes


class TestStaticTables:
    def test_table1_renders(self):
        text = render_table1()
        assert "Athena" in text and "5.62 MiB" in text

    def test_table1_athena_smallest_fhe_ciphertext(self):
        rows = table1()
        fhe_rows = [r for r in rows if "FHE" in r.method or "Athena" in r.method]
        athena = rows[-1]
        assert athena.ciphertext_bytes == min(
            r.ciphertext_bytes for r in fhe_rows
        )

    @pytest.mark.parametrize(
        "renderer", [render_table2, render_table3, render_table4, render_table8, render_table9]
    )
    def test_renderers_produce_tables(self, renderer):
        text = renderer()
        assert "|" in text and "\n" in text
        assert len(text.splitlines()) >= 4


class TestZoo:
    def test_recipes_cover_benchmarks(self):
        assert set(RECIPES) == {"mnist_cnn", "lenet", "resnet20", "resnet56"}

    def test_get_benchmark_caches(self, tmp_path, monkeypatch):
        import repro.eval.zoo as zoo

        monkeypatch.setattr(zoo, "ARTIFACTS", tmp_path)
        monkeypatch.setitem(zoo.RECIPES, "mnist_cnn", (0.5, 1, 0.05, 256))
        first = zoo.get_benchmark("mnist_cnn", seed=123)
        assert (tmp_path / "mnist_cnn-123.pkl").exists()
        second = zoo.get_benchmark("mnist_cnn", seed=123)
        assert first.float_accuracy == second.float_accuracy
        assert "w7a7" in first.quantized and "w6a7" in first.quantized


class TestAblations:
    def test_ablation_results(self):
        results = run_ablations("mnist_cnn")
        names = {r.name for r in results}
        assert names == {
            "no-two-region-dataflow", "no-flexible-lut",
            "no-prng-key-regen", "no-se-unit",
        }
        assert all(r.slowdown >= 0.999 for r in results)


class TestEncryptedSoftmax:
    def test_probs_rank_match_logits(self, tmp_path, monkeypatch):
        import repro.eval.zoo as zoo

        monkeypatch.setattr(zoo, "ARTIFACTS", tmp_path)
        monkeypatch.setitem(zoo.RECIPES, "mnist_cnn", (1.0, 3, 0.05, 800))
        entry = zoo.get_benchmark("mnist_cnn", seed=5)
        qm = entry.quantized["w7a7"]
        engine = SimulatedAthenaEngine(qm, ATHENA, seed=6)
        x = entry.data["x_test"][:32]
        probs = engine.infer_probs(x)
        logits = SimulatedAthenaEngine(qm, ATHENA, seed=6).infer(x)
        assert probs.shape == logits.shape
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
        agree = (probs.argmax(axis=-1) == logits.argmax(axis=-1)).mean()
        assert agree > 0.85
