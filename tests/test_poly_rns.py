"""Tests for RNS representation and RnsPoly ring arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.fhe import rns
from repro.fhe.params import TEST_SMALL, TEST_TINY
from repro.fhe.poly import RnsPoly, automorphism_map

MODULI = TEST_TINY.moduli
N = TEST_TINY.n


def random_poly(rng, lo=-(10**6), hi=10**6, n=N, moduli=MODULI):
    return RnsPoly.from_int_coeffs(rng.integers(lo, hi, n), moduli)


class TestRnsConversions:
    def test_roundtrip_small(self, rng):
        vals = rng.integers(0, 1000, 16)
        mat = rns.to_rns(vals, MODULI)
        back = rns.from_rns(mat, MODULI)
        assert list(vals) == back

    def test_roundtrip_big_values(self):
        q = rns.rns_modulus(MODULI)
        vals = [q - 1, q // 2, q // 3, 12345678901234567890 % q]
        mat = rns.to_rns(vals, MODULI)
        assert rns.from_rns(mat, MODULI) == vals

    def test_centered_range(self, rng):
        q = rns.rns_modulus(MODULI)
        vals = rng.integers(0, 10**9, 32)
        mat = rns.to_rns(vals, MODULI)
        for v in rns.from_rns_centered(mat, MODULI):
            assert -q // 2 <= v <= q // 2

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            rns.from_rns(np.zeros((1, 4), dtype=np.int64), MODULI)

    @given(st.integers(min_value=0))
    @settings(max_examples=50)
    def test_single_coeff_roundtrip(self, x):
        q = rns.rns_modulus(MODULI)
        x %= q
        mat = rns.to_rns([x], MODULI)
        assert rns.from_rns(mat, MODULI) == [x]


class TestRnsPolyArithmetic:
    def test_add_sub_neg(self, rng):
        a = random_poly(rng)
        b = random_poly(rng)
        assert (a + b) - b == a
        assert a + (-a) == RnsPoly.zeros(N, MODULI)

    def test_mul_commutes(self, rng):
        a = random_poly(rng)
        b = random_poly(rng)
        assert a * b == b * a

    def test_mul_distributes(self, rng):
        a, b, c = (random_poly(rng) for _ in range(3))
        assert a * (b + c) == a * b + a * c

    def test_mul_matches_exact(self, rng):
        a = random_poly(rng)
        b = random_poly(rng)
        assert a * b == a.mul_exact_then_reduce(b)

    def test_scalar_mul_big_scalar(self, rng):
        a = random_poly(rng)
        q = a.modulus
        s = q - 3  # equivalent to -3
        assert a.scalar_mul(s) == a.scalar_mul(-3)

    def test_constant_identity(self, rng):
        a = random_poly(rng)
        one = RnsPoly.constant(1, N, MODULI)
        assert a * one == a

    def test_inv_scalar(self, rng):
        a = random_poly(rng)
        assert a.scalar_mul(7).inv_scalar(7) == a

    def test_ring_mismatch_raises(self, rng):
        a = random_poly(rng)
        b = RnsPoly.zeros(TEST_SMALL.n, TEST_SMALL.moduli)
        with pytest.raises(ParameterError):
            _ = a + b


class TestAutomorphism:
    def test_composition(self, rng):
        a = random_poly(rng)
        assert a.automorphism(3).automorphism(3) == a.automorphism(9)

    def test_identity(self, rng):
        a = random_poly(rng)
        assert a.automorphism(1) == a

    def test_inverse_element(self, rng):
        a = random_poly(rng)
        # 3 * inv3 = 1 mod 2N => composition is identity
        inv3 = pow(3, -1, 2 * N)
        assert a.automorphism(3).automorphism(inv3) == a

    def test_even_element_rejected(self):
        with pytest.raises(ParameterError):
            automorphism_map(N, 2)

    def test_is_ring_homomorphism(self, rng):
        a = random_poly(rng)
        b = random_poly(rng)
        k = 5
        assert (a * b).automorphism(k) == a.automorphism(k) * b.automorphism(k)
        assert (a + b).automorphism(k) == a.automorphism(k) + b.automorphism(k)


class TestShiftAndModSwitch:
    def test_shift_roundtrip(self, rng):
        a = random_poly(rng)
        for s in (1, 5, N - 1, N, 2 * N - 1):
            assert a.negacyclic_shift(s).negacyclic_shift(-s) == a

    def test_shift_full_cycle_negates(self, rng):
        a = random_poly(rng)
        assert a.negacyclic_shift(N) == -a
        assert a.negacyclic_shift(2 * N) == a

    def test_shift_matches_monomial_mul(self, rng):
        a = random_poly(rng)
        x5 = np.zeros(N, dtype=np.int64)
        x5[5] = 1
        mono = RnsPoly.from_int_coeffs(x5, MODULI)
        assert a.negacyclic_shift(5) == a * mono

    def test_mod_switch_preserves_message(self, rng):
        # Scale a message up by Delta, switch down: recover it.
        q = rns.rns_modulus(MODULI)
        t = 257
        delta = q // t
        msg = rng.integers(0, t, N)
        a = RnsPoly.from_int_coeffs(msg * 0, MODULI).scalar_mul(0)
        scaled = RnsPoly.from_int_coeffs(msg, MODULI).scalar_mul(delta)
        switched = scaled.mod_switch(t)
        assert np.array_equal(switched % t, msg % t)
