"""Tests for LUT construction and the simulated Athena engine."""

import numpy as np
import pytest

from repro.core import lut as lutlib
from repro.core.inference import AthenaNoiseModel, SimulatedAthenaEngine
from repro.data import synthetic_digits
from repro.errors import QuantizationError
from repro.fhe.params import ATHENA
from repro.quant.models import mnist_cnn
from repro.quant.nn import Sgd, train_epoch
from repro.quant.quantize import QConv, QuantConfig, quantize_model

T = 257  # small prime for fast exhaustive LUT checks


class TestRemapLut:
    def test_identity_multiplier_one(self):
        lut = lutlib.remap_lut(1.0, "identity", 63, T)
        x = np.arange(-63, 64)
        assert np.array_equal(lut.apply_plain_signed(x), x)

    def test_relu_clips_negative(self):
        lut = lutlib.remap_lut(1.0, "relu", 63, T)
        assert lut.apply_plain_signed(np.array([-5]))[0] == 0
        assert lut.apply_plain_signed(np.array([5]))[0] == 5

    def test_clipping_at_amax(self):
        lut = lutlib.remap_lut(1.0, "identity", 63, T)
        assert lut.apply_plain_signed(np.array([100]))[0] == 63
        assert lut.apply_plain_signed(np.array([-100]))[0] == -63

    def test_scaling(self):
        lut = lutlib.remap_lut(0.5, "relu", 63, T)
        assert lut.apply_plain_signed(np.array([10]))[0] == 5
        assert lut.apply_plain_signed(np.array([9]))[0] == 4  # round(4.5) banker's

    def test_matches_qconv_remap(self, rng):
        # The LUT and QConv.remap must agree everywhere on the MAC domain.
        layer = QConv(
            weight=np.zeros((1, 1, 1, 1), dtype=np.int64),
            bias=np.zeros(1, dtype=np.int64),
            stride=1, pad=0, in_scale=0.1, w_scale=0.05, out_scale=0.2,
            activation="relu", in_shape=(1, 4, 4), out_shape=(1, 4, 4),
        )
        cfg = QuantConfig(7, 7, t=T)
        lut = lutlib.layer_lut(layer, cfg, T)
        macs = rng.integers(-T // 2, T // 2 + 1, 200)
        assert np.array_equal(
            lut.apply_plain_signed(macs), layer.remap(macs, cfg.a_max)
        )

    def test_unsupported_activation_raises(self):
        with pytest.raises(QuantizationError):
            lutlib.remap_lut(1.0, "swish", 63, T)


class TestActivationLuts:
    def test_relu_lut_centered(self):
        lut = lutlib.relu_lut(T)
        assert lut.apply_plain(np.array([T - 3]))[0] == 0  # -3 -> 0
        assert lut.apply_plain(np.array([3]))[0] == 3

    def test_sigmoid_monotone(self):
        lut = lutlib.sigmoid_lut(T, in_scale=0.1, out_levels=100)
        vals = lut.apply_plain_signed(np.arange(-100, 101))
        assert np.all(np.diff(vals) >= 0)
        assert vals[0] < 10 and vals[-1] > 90

    def test_gelu_shape(self):
        lut = lutlib.gelu_lut(T, in_scale=0.1, out_scale=0.1)
        out = lut.apply_plain_signed(np.array([-50, 0, 50]))
        assert out[0] <= 0 <= out[2]

    def test_avgpool_divides(self):
        lut = lutlib.avgpool_lut(2, T)
        assert lut.apply_plain_signed(np.array([100]))[0] == 25
        assert lut.apply_plain_signed(np.array([-100]))[0] == -25


class TestMaxTree:
    def test_matches_numpy_max(self, rng):
        relu = lutlib.relu_lut(T)
        vals = rng.integers(-60, 60, (10, 4))
        got = lutlib.max_tree_plain(vals, relu, T)
        assert np.array_equal(got, vals.max(axis=-1))

    def test_odd_width(self, rng):
        relu = lutlib.relu_lut(T)
        vals = rng.integers(-60, 60, (6, 5))
        assert np.array_equal(
            lutlib.max_tree_plain(vals, relu, T), vals.max(axis=-1)
        )


class TestSoftmax:
    def test_plain_softmax_ranks_match(self, rng):
        exp_lut, inv_lut, inv_levels = lutlib.softmax_luts(65537, in_scale=0.05)
        logits = rng.integers(-60, 60, (20, 10))
        probs = lutlib.softmax_plain(logits, exp_lut, inv_lut, inv_levels, 65537)
        assert np.allclose(probs.sum(axis=-1), 1, atol=1e-6)
        assert np.array_equal(probs.argmax(axis=-1), logits.argmax(axis=-1))


class TestNoiseModel:
    def test_paper_std_magnitude(self):
        nm = AthenaNoiseModel(ATHENA)
        # sqrt((2n/3 + 1)/12) ~ 10.7 for n = 2048 (the "~4 bits" of §3.3)
        assert 8 < nm.std < 14

    def test_disabled_is_zero(self, rng):
        nm = AthenaNoiseModel(ATHENA, enabled=False)
        assert not np.any(nm.sample(rng, (100,)))

    def test_sampling_std(self, rng):
        nm = AthenaNoiseModel(ATHENA)
        samples = nm.sample(rng, (20000,))
        assert nm.std * 0.9 < samples.std() < nm.std * 1.1


@pytest.fixture(scope="module")
def engine_setup():
    rng = np.random.default_rng(0)
    x, y = synthetic_digits(1200, rng)
    model = mnist_cnn(rng=np.random.default_rng(1))
    opt = Sgd(lr=0.05)
    for _ in range(5):
        train_epoch(model, x, y, opt, rng=rng)
    qm = quantize_model(model, x[:128], QuantConfig(7, 7), "mnist_cnn")
    return qm, x, y


class TestSimulatedEngine:
    def test_noiseless_equals_plain_quant(self, engine_setup):
        qm, x, y = engine_setup
        engine = SimulatedAthenaEngine(
            qm, ATHENA, noise=AthenaNoiseModel(ATHENA, enabled=False)
        )
        assert np.array_equal(engine.infer(x[:32]), qm.forward_float(x[:32]))

    def test_noisy_accuracy_close(self, engine_setup):
        qm, x, y = engine_setup
        engine = SimulatedAthenaEngine(qm, ATHENA, seed=5)
        plain = qm.accuracy(x[:300], y[:300])
        cipher = engine.accuracy(x[:300], y[:300])
        assert abs(plain - cipher) < 0.03  # the Table 5 property

    def test_stats_recorded(self, engine_setup):
        qm, x, _ = engine_setup
        engine = SimulatedAthenaEngine(qm, ATHENA, seed=5)
        _, stats = engine.infer_with_stats(x[:16])
        assert stats.total_lut_evals > 0
        mac_layers = [s for s in stats.layers if s.total > 0]
        assert all(s.mac_peak > 0 for s in mac_layers)
        # Fig. 4 regime: error ratios are bounded (paper: max ~11%)
        assert stats.max_error_ratio < 0.30

    def test_error_ratio_grows_with_noise(self, engine_setup):
        qm, x, _ = engine_setup
        quiet = SimulatedAthenaEngine(
            qm, ATHENA, seed=5, noise=AthenaNoiseModel(ATHENA, secret_norm_sq=100)
        )
        loud = SimulatedAthenaEngine(
            qm, ATHENA, seed=5, noise=AthenaNoiseModel(ATHENA, secret_norm_sq=900000)
        )
        _, s_quiet = quiet.infer_with_stats(x[:32])
        _, s_loud = loud.infer_with_stats(x[:32])
        assert s_loud.max_error_ratio > s_quiet.max_error_ratio

    def test_deterministic_given_seed(self, engine_setup):
        qm, x, _ = engine_setup
        a = SimulatedAthenaEngine(qm, ATHENA, seed=9).infer(x[:8])
        b = SimulatedAthenaEngine(qm, ATHENA, seed=9).infer(x[:8])
        assert np.array_equal(a, b)
