"""Tests for PTQ calibration, BN folding, and integer inference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthetic_cifar, synthetic_digits
from repro.quant.models import build, input_shape, lenet, mnist_cnn, resnet20
from repro.quant.nn import BatchNorm2d, Conv2d, ReLU, Sequential, Sgd, train_epoch
from repro.quant.quantize import (
    QConv,
    QLinear,
    QResidual,
    QuantConfig,
    _wrap_t,
    fold_batchnorm,
    quantize_model,
)


@pytest.fixture(scope="module")
def trained_mnist():
    rng = np.random.default_rng(0)
    x, y = synthetic_digits(1200, rng)
    model = mnist_cnn(rng=np.random.default_rng(1))
    opt = Sgd(lr=0.05)
    for _ in range(4):
        train_epoch(model, x, y, opt, rng=rng)
    return model, x, y


@pytest.fixture(scope="module")
def trained_resnet_tiny():
    rng = np.random.default_rng(2)
    x, y = synthetic_cifar(400, rng)
    model = resnet20(rng=np.random.default_rng(3), width=0.25)
    opt = Sgd(lr=0.05)
    train_epoch(model, x, y, opt, batch_size=32, rng=rng)
    return model, x, y


class TestQuantConfig:
    def test_ranges(self):
        cfg = QuantConfig(7, 7)
        assert cfg.w_max == 63 and cfg.a_max == 63
        assert cfg.label == "w7a7"

    def test_asymmetric(self):
        cfg = QuantConfig(6, 7)
        assert cfg.w_max == 31 and cfg.a_max == 63


class TestBatchNormFolding:
    def test_fold_preserves_function(self, rng):
        conv = Conv2d(3, 4, 3, 1, 1, bias=False, rng=rng)
        bn = BatchNorm2d(4)
        x = rng.normal(size=(8, 3, 6, 6))
        # give BN non-trivial running stats
        seq = Sequential(conv, bn, ReLU())
        for _ in range(30):
            seq.forward(x, train=True)
        bn.gamma[:] = rng.uniform(0.5, 1.5, 4)
        bn.beta[:] = rng.uniform(-0.5, 0.5, 4)
        folded = fold_batchnorm(seq)
        assert len(folded.layers) == 2  # conv+relu
        assert np.allclose(folded.forward(x), seq.forward(x, train=False), atol=1e-8)

    def test_fold_inside_residual(self, trained_resnet_tiny):
        model, x, _ = trained_resnet_tiny
        folded = fold_batchnorm(model)
        assert np.allclose(folded.forward(x[:8]), model.forward(x[:8]), atol=1e-6)


class TestQuantizedInference:
    def test_accuracy_close_to_float(self, trained_mnist):
        model, x, y = trained_mnist
        from repro.quant.nn import accuracy

        fa = accuracy(model, x[:400], y[:400])
        qm = quantize_model(model, x[:256], QuantConfig(7, 7))
        qa = qm.accuracy(x[:400], y[:400])
        assert abs(fa - qa) < 0.05

    def test_w6a7_close(self, trained_mnist):
        model, x, y = trained_mnist
        qm = quantize_model(model, x[:256], QuantConfig(6, 7))
        assert qm.accuracy(x[:400], y[:400]) > 0.8

    def test_weights_within_range(self, trained_mnist):
        model, x, _ = trained_mnist
        cfg = QuantConfig(7, 7)
        qm = quantize_model(model, x[:64], cfg)
        for layer in qm.layers:
            if isinstance(layer, (QConv, QLinear)):
                assert np.abs(layer.weight).max() <= cfg.w_max

    def test_activations_within_range(self, trained_mnist):
        model, x, _ = trained_mnist
        cfg = QuantConfig(7, 7)
        qm = quantize_model(model, x[:64], cfg)
        xq = qm.quantize_input(x[:16])
        assert np.abs(xq).max() <= cfg.a_max
        logits = qm.forward_int(xq)
        assert logits.dtype == np.int64

    def test_mac_peaks_recorded(self, trained_mnist):
        model, x, _ = trained_mnist
        qm = quantize_model(model, x[:64], QuantConfig(7, 7))
        qm.forward_float(x[:32])
        assert qm.max_mac() > 0
        assert all(l.mac_peak >= 0 for l in qm.mac_layers())

    def test_check_t_for_paper_config(self, trained_mnist):
        model, x, _ = trained_mnist
        qm = quantize_model(model, x[:64], QuantConfig(7, 7))
        qm.forward_float(x[:128])
        assert qm.check_t()

    def test_deterministic(self, trained_mnist):
        model, x, _ = trained_mnist
        qm = quantize_model(model, x[:64], QuantConfig(7, 7))
        a = qm.forward_float(x[:8])
        b = qm.forward_float(x[:8])
        assert np.array_equal(a, b)

    def test_residual_ir_structure(self, trained_resnet_tiny):
        model, x, _ = trained_resnet_tiny
        qm = quantize_model(model, x[:32], QuantConfig(7, 7))
        residuals = [l for l in qm.layers if isinstance(l, QResidual)]
        assert len(residuals) == 9  # 3 stages x 3 blocks
        # stride-2 stage transitions have projection shortcuts
        assert sum(1 for r in residuals if r.shortcut) == 2
        # pre-add branch tails remap with identity activation
        for r in residuals:
            assert r.body[-1].activation == "identity"

    def test_resnet_quant_accuracy(self, trained_resnet_tiny):
        model, x, y = trained_resnet_tiny
        from repro.quant.nn import accuracy

        fa = accuracy(model, x[:200], y[:200])
        qm = quantize_model(model, x[:64], QuantConfig(7, 7))
        assert abs(fa - qm.accuracy(x[:200], y[:200])) < 0.08

    def test_lenet_pipeline(self):
        rng = np.random.default_rng(5)
        x, y = synthetic_digits(400, rng)
        model = lenet(rng=np.random.default_rng(6), width=0.5)
        opt = Sgd(lr=0.05)
        train_epoch(model, x, y, opt, rng=rng)
        qm = quantize_model(model, x[:64], QuantConfig(7, 7))
        logits = qm.forward_float(x[:16])
        assert logits.shape == (16, 10)


class TestWrapSemantics:
    def test_wrap_identity_in_range(self):
        t = 65537
        mac = np.array([0, 100, -100, t // 2, -(t // 2)])
        assert np.array_equal(_wrap_t(mac, t), mac)

    def test_wrap_overflows(self):
        t = 65537
        assert _wrap_t(np.array([t // 2 + 1]), t)[0] == -(t // 2)
        assert _wrap_t(np.array([t]), t)[0] == 0

    def test_wrap_matches_ring_semantics(self, rng):
        t = 257
        vals = rng.integers(-10 * t, 10 * t, 100)
        wrapped = _wrap_t(vals, t)
        assert np.array_equal(wrapped % t, vals % t)
        assert np.abs(wrapped).max() <= t // 2


class TestModelBuilders:
    @pytest.mark.parametrize("name", ["mnist_cnn", "lenet", "resnet20", "resnet56"])
    def test_forward_shapes(self, name):
        model = build(name, rng=np.random.default_rng(0), width=0.25)
        c, h, w = input_shape(name)
        out = model.forward(np.random.default_rng(1).normal(size=(2, c, h, w)))
        assert out.shape == (2, 10)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build("vgg16")

    def test_resnet20_conv_count(self):
        from repro.quant.nn import Conv2d as C

        model = build("resnet20", rng=np.random.default_rng(0))

        def count(layers):
            n = 0
            for l in layers:
                if isinstance(l, C):
                    n += 1
                elif hasattr(l, "body"):
                    n += count(l.body.layers)
                    if l.shortcut:
                        n += count(l.shortcut.layers)
                elif hasattr(l, "layers"):
                    n += count(l.layers)
            return n

        # 19 backbone convolutions + 2 projection shortcuts
        assert count(model.layers) == 21


class TestFoldWithoutBatchNorm:
    def test_conv_only_model_unchanged(self, rng):
        """Folding is the identity on models with no BN layers."""
        from repro.quant.nn import Flatten, Linear

        seq = Sequential(
            Conv2d(2, 3, 3, 1, 1, rng=rng), ReLU(), Flatten(), Linear(48, 4, rng=rng)
        )
        folded = fold_batchnorm(seq)
        assert [type(l) for l in folded.layers] == [type(l) for l in seq.layers]
        x = rng.normal(size=(5, 2, 4, 4))
        assert np.array_equal(folded.forward(x), seq.forward(x))
        # The copy shares no mutable layer state with the original.
        folded.layers[0].weight[:] += 1.0
        assert not np.allclose(folded.forward(x), seq.forward(x))

    def test_residual_without_bn(self, rng):
        from repro.quant.nn import Residual

        body = Sequential(Conv2d(2, 2, 3, 1, 1, bias=True, rng=rng), ReLU())
        model = Sequential(Residual(body, None))
        folded = fold_batchnorm(model)
        x = rng.normal(size=(3, 2, 5, 5))
        assert np.allclose(folded.forward(x), model.forward(x))


class TestRemapMultiplierRounding:
    def _linear(self, out_scale, bits=None, activation="identity"):
        from repro.quant.quantize import LayerQuantConfig, QLinear

        return QLinear(
            weight=np.eye(1, dtype=np.int64),
            bias=np.zeros(1, dtype=np.int64),
            in_scale=0.5,
            w_scale=0.25,
            out_scale=out_scale,
            activation=activation,
            in_features=1,
            out_features=1,
            bits=LayerQuantConfig(*bits) if bits else None,
        )

    def test_two_bit_clips_to_unit_range(self):
        # multiplier = 0.5*0.25/0.125 = 1: the remap is the identity before
        # the clip, and a 2-bit activation clamps to {-1, 0, 1}.
        lin = self._linear(out_scale=0.125, bits=(2, 2))
        assert lin.remap_multiplier == pytest.approx(1.0)
        mac = np.arange(-5, 6)
        out = lin.remap(mac, a_max=63)  # per-layer bound must win over a_max
        assert np.array_equal(out, np.clip(mac, -1, 1))

    def test_ten_bit_preserves_exact_rounding(self):
        # multiplier = 0.5: half-integer products round to even (np.rint),
        # and the 10-bit bound (511) never clips in this range.
        lin = self._linear(out_scale=0.25, bits=(10, 10))
        assert lin.remap_multiplier == pytest.approx(0.5)
        mac = np.arange(-7, 8)
        out = lin.remap(mac, a_max=3)
        assert np.array_equal(out, np.rint(mac * 0.5).astype(np.int64))
        assert out.max() == 4  # exceeds the 3-bit model default: bits won
        # Explicit half-even cases: 1.5 -> 2, 0.5 -> 0, -2.5 -> -2.
        assert list(lin.remap(np.array([3, 1, -5]), a_max=3)) == [2, 0, -2]

    def test_relu_composes_with_bits(self):
        lin = self._linear(out_scale=0.125, bits=(2, 2), activation="relu")
        out = lin.remap(np.arange(-5, 6), a_max=63)
        assert out.min() == 0 and out.max() == 1


class TestPerLayerBitsAgreement:
    @pytest.fixture(scope="class")
    def linear_subject(self):
        from repro.quant.nn import Linear

        rng = np.random.default_rng(11)
        x = rng.normal(size=(96, 6))
        y = rng.integers(0, 3, size=96)
        model = Sequential(
            Linear(6, 5, rng=rng), ReLU(), Linear(5, 3, rng=rng)
        )
        opt = Sgd(lr=0.05)
        for _ in range(3):
            train_epoch(model, x, y, opt, rng=rng)
        return model, x, QuantConfig(6, 6, t=65537)

    @given(
        w0=st.integers(2, 6), a0=st.integers(2, 6),
        w1=st.integers(2, 6), a1=st.integers(2, 6),
    )
    @settings(max_examples=10, deadline=None)
    def test_int_forward_matches_float_emulation(self, linear_subject,
                                                 w0, a0, w1, a1):
        """Integer inference (mod-t) equals unwrapped float64 emulation.

        Under any per-layer bit assignment the tracked calibration must
        choose scales that keep every MAC inside t//2, so the wrapped
        integer pipeline and a float-domain replay of the same quantized
        nodes agree exactly.
        """
        from repro.quant.mp import MpConfig
        from repro.quant.quantize import LayerQuantConfig

        model, x, config = linear_subject
        mp = MpConfig.from_dict({
            "linear0": LayerQuantConfig(w0, a0),
            "linear1": LayerQuantConfig(w1, a1),
        })
        qm = quantize_model(model, x, config, name="m", mp=mp)
        x_q = qm.quantize_input(x[:16])
        got = qm.forward_int(x_q)

        h = x_q.astype(np.float64)
        for node in qm.layers:
            mac = h @ node.weight.T.astype(np.float64) + node.bias
            h = node.remap(mac, config.a_max).astype(np.float64)
        assert np.array_equal(got, h.astype(np.int64))
