"""Tests for the HE-standard security estimator."""

import pytest

from repro.fhe.params import ATHENA
from repro.fhe.security import check_params, max_logq, security_level


class TestMaxLogQ:
    def test_table_values(self):
        assert max_logq(32768, 128) == 881
        assert max_logq(2048, 128) == 54
        assert max_logq(4096, 256) == 58

    def test_interpolation_monotone(self):
        assert max_logq(1024) < max_logq(3000) < max_logq(4096)

    def test_levels_ordered(self):
        for n in (2048, 32768):
            assert max_logq(n, 128) > max_logq(n, 192) > max_logq(n, 256)


class TestSecurityLevel:
    def test_at_ceiling_is_128(self):
        assert security_level(32768, 881) == pytest.approx(128.0)

    def test_smaller_q_is_stronger(self):
        assert security_level(32768, 720) > security_level(32768, 881)


class TestAthenaClaim:
    def test_paper_claim_holds(self):
        # §3.3: "These parameters guarantee > 128 bits security."
        result = check_params(ATHENA)
        assert result["rlwe_bits"] > 128
        assert result["lwe_bits"] > 128
        assert result["meets_target"] == 1.0

    def test_rlwe_margin(self):
        # logQ = 720 under the 881-bit ceiling at N = 2^15.
        result = check_params(ATHENA)
        assert result["rlwe_bits"] == pytest.approx(128 * 881 / 720, rel=0.01)
