"""The pluggable lowering registry and its widened ciphertext-path coverage.

Fast tier: registry resolution (MRO walk, custom rules), the typed
:class:`~repro.errors.UnsupportedLayer` error and its CLI surface, the
declarative :class:`StepEncodingChoice` validation, and grouped/depthwise
conv equivalence across the plaintext and simulated executors.

Slow tier: the real-ciphertext pipeline over every layer shape the
registry refactor opened up — fused max-pool, interior padding, identity
and projection residuals, average/global-average pooling heads, grouped
convs, and a three-stage resnet56-style miniature — each checked against
the integer reference model.
"""

import numpy as np
import pytest

from repro.core import lowering
from repro.core.inference import AthenaNoiseModel, SimulatedAthenaEngine
from repro.core.lowering import (
    StepEncodingChoice,
    TuningConfig,
    lowering_rules,
    register_rule,
    rule_for,
)
from repro.core.plan import compile_program, program_fingerprint
from repro.core.program import ReshapeStep, lower
from repro.errors import QuantizationError, ReproError, UnsupportedLayer
from repro.fhe.params import TEST_LOOP
from repro.quant.quantize import (
    QAvgPool,
    QConv,
    QFlatten,
    QGlobalAvgPool,
    QLinear,
    QMaxPool,
    QResidual,
    QuantConfig,
    QuantizedModel,
)

CFG = QuantConfig(4, 4, t=TEST_LOOP.t)


def _conv(rng, cin, cout, k, stride, pad, hw, act="relu", out_scale=8.0,
          wmax=2, out_max=None, groups=1):
    oh = (hw + 2 * pad - k) // stride + 1
    weight = rng.integers(-wmax, wmax + 1, (cout, cin, k, k)).astype(np.int64)
    if groups > 1:
        # Zero outside the block diagonal: the Q-IR stores the dense
        # equivalent of a grouped conv (execution is group-agnostic).
        gout, gin = cout // groups, cin // groups
        for o in range(cout):
            g = o // gout
            weight[o, : g * gin] = 0
            weight[o, (g + 1) * gin:] = 0
    return QConv(
        weight=weight,
        bias=rng.integers(-2, 3, cout).astype(np.int64),
        stride=stride, pad=pad, in_scale=1.0, w_scale=1.0,
        out_scale=out_scale, activation=act, groups=groups,
        in_shape=(cin, hw, hw), out_shape=(cout, oh, oh), out_max=out_max)


def _fc(rng, fin, fout, out_scale=2.0):
    return QLinear(
        weight=rng.integers(-1, 2, (fout, fin)).astype(np.int64),
        bias=rng.integers(-2, 3, fout).astype(np.int64),
        in_scale=1.0, w_scale=1.0, out_scale=out_scale,
        activation="identity", in_features=fin, out_features=fout)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_stock_rules_cover_the_quantized_ir(self):
        rules = lowering_rules()
        for kind in (QConv, QLinear, QMaxPool, QAvgPool, QGlobalAvgPool,
                     QFlatten, QResidual):
            assert kind in rules, kind

    def test_subclass_inherits_rule_through_mro(self):
        class FancyConv(QConv):
            pass

        rng = np.random.default_rng(0)
        layer = FancyConv(**vars(_conv(rng, 1, 1, 3, 1, 0, 6)))
        assert rule_for(layer) is lowering_rules()[QConv]

    def test_unregistered_type_has_no_rule(self):
        class Mystery:
            pass

        assert rule_for(Mystery()) is None

    def test_custom_rule_registration(self):
        class PassThrough:
            pass

        try:
            @register_rule(PassThrough)
            def _lower_passthrough(ctx, layer, nxt, name):
                return [ReshapeStep(name=name)], 0

            steps = lowering.lower_layers(
                [PassThrough()], CFG, TEST_LOOP)
            assert len(steps) == 1
            assert isinstance(steps[0], ReshapeStep)
            assert steps[0].name == "passthrough0"
        finally:
            lowering._RULES.pop(PassThrough, None)


class TestUnsupportedLayer:
    def test_typed_error_carries_index_and_type(self):
        class Mystery:
            pass

        rng = np.random.default_rng(0)
        qm = QuantizedModel(
            [_conv(rng, 1, 1, 3, 1, 0, 6), Mystery()], CFG, 1.0, (1, 6, 6))
        with pytest.raises(UnsupportedLayer) as exc_info:
            lower(qm, TEST_LOOP)
        exc = exc_info.value
        assert exc.index == 1
        assert exc.layer_type == "Mystery"
        assert "register_rule" in str(exc)
        # The typed error slots into the existing hierarchy (CLI catch-all).
        assert isinstance(exc, QuantizationError)
        assert isinstance(exc, ReproError)

    def test_cli_surfaces_clean_one_liner(self, capsys, monkeypatch):
        from repro import cli

        class Mystery:
            pass

        rng = np.random.default_rng(0)
        qm = QuantizedModel(
            [_conv(rng, 1, 1, 3, 1, 0, 6), Mystery()], CFG, 1.0, (1, 6, 6))
        monkeypatch.setattr(cli, "_tune_subject", lambda name: qm)
        assert cli.main(["tune", "--params", "test-loop"]) == cli.EXIT_FAILURE
        err = capsys.readouterr().err
        assert "repro: error: unsupported layer at layer 1 (Mystery)" in err
        assert "Traceback" not in err


class TestStepEncodingChoice:
    def test_validation(self):
        with pytest.raises(ValueError):
            StepEncodingChoice(strategy="brutus")
        with pytest.raises(ValueError):
            StepEncodingChoice(chunk=0)
        with pytest.raises(ValueError):
            StepEncodingChoice(bsgs=1)

    def test_tag_is_stable(self):
        assert StepEncodingChoice().tag() == "athena:None:None"
        assert StepEncodingChoice("cheetah", 16, 4).tag() == "cheetah:16:4"

    def test_tuning_config_lookup_and_tag(self):
        cfg = TuningConfig((
            ("b", StepEncodingChoice(chunk=8)),
            ("a", StepEncodingChoice(bsgs=4)),
        ))
        assert cfg.get("b").chunk == 8
        assert cfg.get("missing") is None
        assert cfg.tag() == "a=athena:None:4|b=athena:8:None"  # sorted
        assert bool(cfg) and not bool(TuningConfig())


# ---------------------------------------------------------------------------
# Grouped / depthwise convs (fast: plaintext + simulated executors)
# ---------------------------------------------------------------------------


class TestGroupedConv:
    def _twins(self, groups):
        """A grouped conv model and its dense ``groups=1`` twin (identical
        dense-equivalent weights, so execution must be bit-identical)."""
        rng = np.random.default_rng(21)
        grouped = _conv(rng, 2, 2, 3, 1, 0, 5, out_scale=8.0, groups=groups)
        dense = QConv(**{**vars(grouped), "groups": 1})
        layers = lambda c: [c, QFlatten(), _fc(np.random.default_rng(22), 18, 3)]  # noqa: E731
        qm_g = QuantizedModel(layers(grouped), CFG, 1.0, (2, 5, 5))
        qm_d = QuantizedModel(layers(dense), CFG, 1.0, (2, 5, 5))
        return qm_g, qm_d

    @pytest.mark.parametrize("groups", [2])
    def test_plain_forward_matches_dense_twin(self, groups):
        qm_g, qm_d = self._twins(groups)
        x_q = np.random.default_rng(23).integers(-2, 3, (4, 2, 5, 5))
        assert np.array_equal(qm_g.forward_int(x_q), qm_d.forward_int(x_q))

    def test_depthwise_weight_shape_lowers(self):
        # Depthwise: groups == cin == cout, one 3x3 filter per channel.
        rng = np.random.default_rng(24)
        conv = _conv(rng, 2, 2, 3, 1, 0, 4, out_scale=8.0, groups=2)
        qm = QuantizedModel(
            [conv, QFlatten(), _fc(rng, 8, 3)], CFG, 1.0, (2, 4, 4))
        program = lower(qm, TEST_LOOP)
        assert program.steps[0].kind == "linear"
        compile_program(program, TEST_LOOP)  # artifacts fit TEST_LOOP

    def test_sim_engine_bit_identical_to_plain(self):
        qm_g, _ = self._twins(2)
        x = np.random.default_rng(25).integers(-2, 3, (4, 2, 5, 5))
        engine = SimulatedAthenaEngine(
            qm_g, params=TEST_LOOP, noise=AthenaNoiseModel(enabled=False))
        got = engine.infer(x.astype(np.float64))
        want = qm_g.forward_int(qm_g.quantize_input(x.astype(np.float64)))
        assert np.array_equal(got, want)

    def test_groups_fold_into_fingerprint(self):
        qm_g, qm_d = self._twins(2)
        fp_g = program_fingerprint(lower(qm_g, TEST_LOOP))
        fp_d = program_fingerprint(lower(qm_d, TEST_LOOP))
        # Same dense weights, different provenance: the topology is part
        # of the plan-cache key.
        assert fp_g != fp_d


# ---------------------------------------------------------------------------
# Real-ciphertext coverage of the widened lowering surface
# ---------------------------------------------------------------------------


def _run_ciphertext(layers, in_shape, seed=7, pipe_seed=41):
    """Lower, compile, and run one mini model through the real-ciphertext
    pipeline; return (absolute error vs the integer reference, plan)."""
    from repro.core.framework import AthenaPipeline

    rng = np.random.default_rng(seed)
    qm = QuantizedModel(layers, CFG, 1.0, in_shape)
    x_q = rng.integers(-2, 3, in_shape).astype(np.int64)
    ref = qm.forward_int(x_q[None])[0].reshape(-1)
    program = qm.program()
    plan = compile_program(program, TEST_LOOP)
    pipe = AthenaPipeline(TEST_LOOP, seed=pipe_seed)
    got = pipe.run_program(program, x_q, plan=plan)
    assert got.shape == ref.shape
    return int(np.abs(got - ref).max()), plan


@pytest.mark.slow
class TestCiphertextCoverage:
    """Every layer shape the registry opened up, end to end under TEST_LOOP.

    Tolerances: each five-step round's e_ms noise lands within ±2 LSB of
    the integer reference; projection residuals add the join refresh's
    positively-biased error into a downstream FC fan-in, so they get one
    extra LSB of headroom (see the noise notes in DESIGN.md).
    """

    def test_fused_conv_maxpool(self):
        r = np.random.default_rng(11)
        err, plan = _run_ciphertext([
            _conv(r, 1, 2, 3, 1, 1, 4, out_scale=6.0),
            QMaxPool(2, 2), QFlatten(), _fc(r, 8, 3),
        ], (1, 4, 4))
        assert err <= 2
        assert plan.steps[0].pool_rounds  # the pool fused into the conv

    def test_interior_padded_conv(self):
        r = np.random.default_rng(12)
        err, _ = _run_ciphertext([
            _conv(r, 1, 1, 3, 1, 0, 6, out_scale=6.0),
            _conv(r, 1, 2, 3, 1, 1, 4, out_scale=6.0),
            QFlatten(), _fc(r, 32, 3),
        ], (1, 6, 6))
        assert err <= 2

    def test_identity_residual(self):
        r = np.random.default_rng(13)
        err, _ = _run_ciphertext([
            _conv(r, 1, 1, 3, 1, 0, 6, out_scale=8.0),
            QResidual(
                body=[_conv(r, 1, 1, 3, 1, 1, 4, act="identity",
                            out_scale=6.0)],
                shortcut=None, add_scale=1.0, out_scale=2.0, skip_alpha=2),
            QFlatten(), _fc(r, 16, 3),
        ], (1, 6, 6))
        assert err <= 2

    def test_projection_residual(self):
        r = np.random.default_rng(14)
        err, _ = _run_ciphertext([
            _conv(r, 1, 1, 3, 1, 0, 6, out_scale=8.0),
            QResidual(
                body=[_conv(r, 1, 2, 3, 2, 1, 4, act="identity",
                            out_scale=6.0)],
                shortcut=[_conv(r, 1, 2, 1, 2, 0, 4, act="identity",
                                out_scale=6.0)],
                add_scale=1.0, out_scale=2.0, skip_alpha=1),
            QFlatten(), _fc(r, 8, 3),
        ], (1, 6, 6))
        assert err <= 3  # join noise summed by the FC fan-in

    def test_global_avgpool_head(self):
        r = np.random.default_rng(15)
        err, _ = _run_ciphertext([
            _conv(r, 1, 2, 3, 1, 0, 6, out_scale=12.0, out_max=6),
            QGlobalAvgPool(spatial=16), _fc(r, 2, 3),
        ], (1, 6, 6))
        assert err <= 2

    def test_avgpool(self):
        r = np.random.default_rng(16)
        err, _ = _run_ciphertext([
            _conv(r, 1, 2, 3, 1, 0, 6, out_scale=10.0),
            QAvgPool(kernel=2, stride=2), QFlatten(), _fc(r, 8, 3),
        ], (1, 6, 6))
        assert err <= 2

    def test_grouped_conv(self):
        r = np.random.default_rng(21)
        err, _ = _run_ciphertext([
            _conv(r, 2, 2, 3, 1, 0, 5, out_scale=8.0, groups=2),
            QFlatten(), _fc(np.random.default_rng(22), 18, 3),
        ], (2, 5, 5), seed=23)
        assert err <= 2

    def test_resnet56_style_mini(self):
        """Three-stage resnet56 topology in miniature: stem, identity
        residual, projection (stride-2) residual, GAP head, FC."""
        r = np.random.default_rng(31)
        err, _ = _run_ciphertext([
            _conv(r, 1, 1, 3, 1, 0, 6, out_scale=8.0),
            QResidual(
                body=[_conv(r, 1, 1, 3, 1, 1, 4, act="identity",
                            out_scale=6.0)],
                shortcut=None, add_scale=1.0, out_scale=2.0, skip_alpha=2),
            QResidual(
                body=[_conv(r, 1, 2, 3, 2, 1, 4, act="identity",
                            out_scale=6.0)],
                shortcut=[_conv(r, 1, 2, 1, 2, 0, 4, act="identity",
                                out_scale=6.0)],
                add_scale=1.0, out_scale=2.0, skip_alpha=1),
            QGlobalAvgPool(spatial=4), _fc(r, 2, 3),
        ], (1, 6, 6))
        assert err <= 3
